(* End-to-end tests of `mcmutants corpus`, driven through the real
   binary (a dune dep, so always the freshly built one). Contracts:

   - generate → certify → list → run is a working pipeline: a generated
     corpus re-proves clean under both oracle engines and runs through
     the campaign store, with a warm rerun served fully from cache;
   - seeded generation is byte-reproducible (same flags ⇒ same file),
     including across --jobs values;
   - a tampered corpus file is refused at load (content key mismatch);
   - malformed --shape / --bound values fail up front, naming the flag;
   - `version --json` carries the corpus generator version. *)

module Jsonp = Mcm_util.Jsonp

let exe =
  let candidates =
    [
      Filename.concat ".." (Filename.concat "bin" "mcmutants.exe");
      Filename.concat "_build" (Filename.concat "default" (Filename.concat "bin" "mcmutants.exe"));
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let check = Alcotest.check Alcotest.bool

let run_cli args =
  let out = Filename.temp_file "mcm_cli" ".out" in
  let code =
    Sys.command (Printf.sprintf "%s %s > %s 2>&1" (Filename.quote exe) args (Filename.quote out))
  in
  let ic = open_in_bin out in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove out;
  (code, text)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  at 0

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* Substring replace without Str (not a test dependency). *)
let replace_once ~needle ~by s =
  let n = String.length needle and h = String.length s in
  let rec at i = if i + n > h then None else if String.sub s i n = needle then Some i else at (i + 1) in
  match at 0 with
  | None -> None
  | Some i -> Some (String.sub s 0 i ^ by ^ String.sub s (i + n) (h - i - n))

(* A small, fast configuration shared by the pipeline tests. *)
let gen_flags ?(jobs = 2) out =
  Printf.sprintf "corpus generate --shape 2x3x2 --ops uoi --seed 7 --jobs %d -o %s" jobs
    (Filename.quote out)

let with_temp_dir f =
  let dir = Filename.temp_file "mcm_corpus" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () -> f dir)

let test_generate_certify_list () =
  with_temp_dir (fun dir ->
      let corpus = Filename.concat dir "c.json" in
      let code, output = run_cli (gen_flags corpus ^ " --cross-check") in
      if code <> 0 then Alcotest.failf "generate failed (exit %d):\n%s" code output;
      check "generate reports admissions" true (contains ~needle:"admitted:" output);
      check "generate reports cross-check" true
        (contains ~needle:"both oracle engines agree" output);
      check "generate prints the corpus key" true (contains ~needle:"corpus key:" output);
      let code, output =
        run_cli (Printf.sprintf "corpus certify --corpus %s --jobs 2" (Filename.quote corpus))
      in
      if code <> 0 then Alcotest.failf "certify failed (exit %d):\n%s" code output;
      check "certify reports zero divergences" true (contains ~needle:"0 divergence(s)" output);
      let code, output =
        run_cli (Printf.sprintf "corpus list --corpus %s" (Filename.quote corpus))
      in
      if code <> 0 then Alcotest.failf "list failed (exit %d):\n%s" code output;
      check "list shows polarity column" true (contains ~needle:"conformance" output);
      check "list shows operator origin" true (contains ~needle:"uoi of" output))

let test_run_store_warm_hits () =
  with_temp_dir (fun dir ->
      let corpus = Filename.concat dir "c.json" in
      let store = Filename.concat dir "store" in
      let code, output = run_cli (gen_flags corpus) in
      if code <> 0 then Alcotest.failf "generate failed (exit %d):\n%s" code output;
      let run_args =
        Printf.sprintf "corpus run --corpus %s --iterations 4 --store %s" (Filename.quote corpus)
          (Filename.quote store)
      in
      let code, cold = run_cli run_args in
      if code <> 0 then Alcotest.failf "cold run failed (exit %d):\n%s" code cold;
      check "cold run computes cells" true (not (contains ~needle:", 0 added this run" cold));
      let code, warm = run_cli run_args in
      if code <> 0 then Alcotest.failf "warm run failed (exit %d):\n%s" code warm;
      (* Every cell must be served from the store on the warm rerun. *)
      check "warm run adds no records" true (contains ~needle:", 0 added this run" warm);
      check "warm run compiles no kernels" true (contains ~needle:"0 kernel(s) compiled" warm))

let test_generate_reproducible_bytes () =
  with_temp_dir (fun dir ->
      let a = Filename.concat dir "a.json" in
      let b = Filename.concat dir "b.json" in
      let code, output = run_cli (gen_flags a) in
      if code <> 0 then Alcotest.failf "first generate failed (exit %d):\n%s" code output;
      let code, output = run_cli (gen_flags ~jobs:1 b) in
      if code <> 0 then Alcotest.failf "second generate failed (exit %d):\n%s" code output;
      check "same flags produce identical bytes (across --jobs)" true (read_file a = read_file b))

let test_tampered_corpus_refused () =
  with_temp_dir (fun dir ->
      let corpus = Filename.concat dir "c.json" in
      let code, output = run_cli (gen_flags corpus) in
      if code <> 0 then Alcotest.failf "generate failed (exit %d):\n%s" code output;
      let s = read_file corpus in
      let tampered =
        match replace_once ~needle:"\"seed\":7" ~by:"\"seed\":8" s with
        | Some t -> t
        | None -> Alcotest.fail "corpus file does not record its seed"
      in
      write_file corpus tampered;
      let code, output =
        run_cli (Printf.sprintf "corpus list --corpus %s" (Filename.quote corpus))
      in
      check "tampered corpus exits non-zero" true (code <> 0);
      check "error names the key mismatch" true (contains ~needle:"key mismatch" output))

let test_malformed_flags_name_the_flag () =
  let cases =
    [
      ("corpus generate --shape garbage", "--shape", "expected THREADSxEVENTSxLOCS");
      ("corpus generate --shape 5x2x9", "--shape", "threads must be in 2..3");
      ("corpus generate --shape 2x9x2", "--shape", "events must be in");
      ("corpus generate --bound nope", "--bound", "expected a positive integer");
      ("corpus generate --bound 0", "--bound", "expected a positive integer");
      ("corpus generate --ops bogus", "--ops", "unknown operator");
      ("corpus generate --model bogus", "--model", "unknown model");
    ]
  in
  List.iter
    (fun (args, flag, fragment) ->
      let code, output = run_cli args in
      check (args ^ " exits non-zero") true (code <> 0);
      check (args ^ " names the flag") true (contains ~needle:flag output);
      check (args ^ " explains the problem") true (contains ~needle:fragment output))
    cases

let test_version_reports_corpus_version () =
  let code, output = run_cli "version --json" in
  if code <> 0 then Alcotest.failf "version failed (exit %d):\n%s" code output;
  let report =
    match Jsonp.parse output with Ok j -> j | Error e -> Alcotest.failf "bad JSON: %s" e
  in
  check "corpusVersion present and matches the library" true
    (Option.bind (Jsonp.member "corpusVersion" report) Jsonp.to_string_opt
    = Some Mcm_corpus.Version.version);
  let code, output = run_cli "version" in
  if code <> 0 then Alcotest.failf "version failed (exit %d):\n%s" code output;
  check "plain output names the generator version" true
    (contains ~needle:Mcm_corpus.Version.version output)

let () =
  Alcotest.run "cli-corpus"
    [
      ( "pipeline",
        [
          Alcotest.test_case "generate, certify, list" `Quick test_generate_certify_list;
          Alcotest.test_case "run caches through the store" `Quick test_run_store_warm_hits;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "seeded generate is byte-reproducible" `Quick
            test_generate_reproducible_bytes;
          Alcotest.test_case "tampered corpus refused" `Quick test_tampered_corpus_refused;
        ] );
      ( "flags",
        [
          Alcotest.test_case "malformed values name the flag" `Quick
            test_malformed_flags_name_the_flag;
          Alcotest.test_case "version carries corpusVersion" `Quick
            test_version_reports_corpus_version;
        ] );
    ]
