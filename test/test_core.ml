(* Tests for mcm_core: the mutators, suite generation (Table 2), target
   derivation soundness, MCS test confidence, and Algorithm 1. The
   heavyweight invariant here is machine-checked mutant validity: every
   conformance target is disallowed under its model and every mutant
   target is allowed — by exhaustive candidate enumeration. *)

module Model = Mcm_memmodel.Model
module Litmus = Mcm_litmus.Litmus
module Instr = Mcm_litmus.Instr
module Enumerate = Mcm_litmus.Enumerate
module Library = Mcm_litmus.Library
module Template = Mcm_core.Template
module Mutator = Mcm_core.Mutator
module Suite = Mcm_core.Suite
module Confidence = Mcm_core.Confidence
module Merge = Mcm_core.Merge

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* -------------------------------------------------------------------- *)
(* Suite shape: Table 2.                                                  *)

let test_table2_counts () =
  Alcotest.(check (list (triple string int int)))
    "table 2"
    [
      ("reversing-po-loc", 8, 8);
      ("weakening-po-loc", 6, 6);
      ("weakening-sw", 6, 18);
      ("Combined", 20, 32);
    ]
    (Suite.table2 ())

let test_suite_sizes () =
  check_int "20 conformance tests" 20 (List.length (Suite.conformance_tests ()));
  check_int "32 mutants" 32 (List.length (Suite.mutants ()));
  check_int "52 entries" 52 (List.length (Suite.all ()))

let test_suite_names_unique () =
  let names = List.map (fun e -> e.Suite.test.Litmus.name) (Suite.all ()) in
  check_int "unique" (List.length names) (List.length (List.sort_uniq compare names))

let test_every_mutant_has_conformance () =
  List.iter
    (fun e ->
      match e.Suite.role with
      | Suite.Conformance -> ()
      | Suite.Mutant_of conf -> (
          match Suite.find conf with
          | Some parent -> check ("parent of " ^ e.Suite.test.Litmus.name) true
              (parent.Suite.role = Suite.Conformance)
          | None -> Alcotest.failf "missing conformance test %s" conf))
    (Suite.all ())

let test_mutants_of () =
  check_int "CoRR has one mutant" 1 (List.length (Suite.mutants_of "CoRR"));
  check_int "MP-relacq has three mutants" 3 (List.length (Suite.mutants_of "MP-relacq"));
  check_int "unknown has none" 0 (List.length (Suite.mutants_of "nope"))

let test_all_well_formed () =
  List.iter
    (fun e ->
      match Litmus.well_formed e.Suite.test with
      | Ok () -> ()
      | Error err -> Alcotest.failf "%s: %s" e.Suite.test.Litmus.name err)
    (Suite.all ())

(* -------------------------------------------------------------------- *)
(* Machine-checked mutant validity (the Sec. 3 soundness invariant).      *)

let test_conformance_targets_disallowed () =
  List.iter
    (fun e ->
      let t = e.Suite.test in
      check
        (Printf.sprintf "%s disallowed under %s" t.Litmus.name (Model.name t.Litmus.model))
        false
        (Enumerate.target_allowed t.Litmus.model t))
    (Suite.conformance_tests ())

let test_mutant_targets_allowed () =
  List.iter
    (fun e ->
      let t = e.Suite.test in
      check
        (Printf.sprintf "%s allowed under %s" t.Litmus.name (Model.name t.Litmus.model))
        true
        (Enumerate.target_allowed t.Litmus.model t))
    (Suite.mutants ())

let test_mutant_targets_disallowed_under_sc () =
  (* Weakening-po-loc and weakening-sw mutants exhibit genuinely weak
     behaviour: still forbidden by sequential consistency. (Reversing
     po-loc mutants are allowed even under SC — that is their point.) *)
  List.iter
    (fun e ->
      let t = e.Suite.test in
      match e.Suite.mutator with
      | Mutator.Reversing_po_loc ->
          check (t.Litmus.name ^ " SC-allowed") true (Enumerate.target_allowed Model.Sc t)
      | Mutator.Weakening_po_loc | Mutator.Weakening_sw ->
          check (t.Litmus.name ^ " SC-disallowed") false (Enumerate.target_allowed Model.Sc t))
    (Suite.mutants ())

let test_known_targets () =
  (* Spot-check derived targets against the paper's figures. *)
  let outcome_of name regs final =
    match Suite.find name with
    | None -> Alcotest.failf "missing %s" name
    | Some e ->
        let o = Litmus.empty_outcome e.Suite.test in
        List.iteri (fun tid rs -> List.iteri (fun r v -> o.Litmus.regs.(tid).(r) <- v) rs) regs;
        List.iteri (fun l v -> o.Litmus.final.(l) <- v) final;
        (e.Suite.test, o)
  in
  (* CoRR (Fig. 1a): r0 = 1 && r1 = 0. *)
  let t, o = outcome_of "CoRR" [ [ 1; 0 ]; [] ] [ 1 ] in
  check "CoRR target hit" true (t.Litmus.target o);
  let t, o = outcome_of "CoRR" [ [ 1; 1 ]; [] ] [ 1 ] in
  check "CoRR non-target" false (t.Litmus.target o);
  (* MP-relacq (Fig. 1b): flag seen, data stale. *)
  let t, o = outcome_of "MP-relacq" [ []; [ 1; 0 ] ] [ 1; 1 ] in
  check "MP-relacq target hit" true (t.Litmus.target o);
  (* MP-CO: the reading thread is canonicalised to thread 0; it observes
     2 then 1 while 2 stays coherence-last. *)
  let t, o = outcome_of "MP-CO" [ [ 2; 1 ]; [] ] [ 2 ] in
  check "MP-CO target hit" true (t.Litmus.target o)

let test_mutant_programs_differ () =
  (* A mutant's program must differ from its conformance test's, and for
     weakening-sw, by fence count. *)
  List.iter
    (fun e ->
      match e.Suite.role with
      | Suite.Conformance -> ()
      | Suite.Mutant_of conf_name ->
          let conf = (Option.get (Suite.find conf_name)).Suite.test in
          let mutant = e.Suite.test in
          check (mutant.Litmus.name ^ " differs") true
            (conf.Litmus.threads <> mutant.Litmus.threads);
          if e.Suite.mutator = Mutator.Weakening_sw then begin
            let fences t =
              Array.fold_left
                (fun acc instrs ->
                  acc + List.length (List.filter Instr.is_fence instrs))
                0 t.Litmus.threads
            in
            check (mutant.Litmus.name ^ " fewer fences") true (fences mutant < fences conf)
          end)
    (Suite.all ())

let test_weakening_po_loc_mutants_use_two_locations () =
  List.iter
    (fun e ->
      if e.Suite.mutator = Mutator.Weakening_po_loc then begin
        match e.Suite.role with
        | Suite.Conformance -> check_int (e.Suite.test.Litmus.name ^ " one loc") 1 e.Suite.test.Litmus.nlocs
        | Suite.Mutant_of _ -> check_int (e.Suite.test.Litmus.name ^ " two locs") 2 e.Suite.test.Litmus.nlocs
      end)
    (Suite.all ())

let test_corr_rmw_upgrades_second_read_only () =
  (* Sec. 3.1: CoRR's second read may become an RMW, never the first. *)
  match Suite.find "CoRR-rmw" with
  | None -> Alcotest.fail "missing CoRR-rmw"
  | Some e -> (
      match e.Suite.test.Litmus.threads.(0) with
      | [ first; second ] ->
          check "first stays a load" true
            (match first with Instr.Load _ -> true | _ -> false);
          check "second is an RMW" true
            (match second with Instr.Rmw _ -> true | _ -> false)
      | _ -> Alcotest.fail "CoRR-rmw thread 0 should have two instructions")

(* -------------------------------------------------------------------- *)
(* Template derivation machinery.                                         *)

let test_derive_rejects_ill_formed () =
  let threads = [| [ (Instr.store ~loc:5 ~value:1 ()) ] |] in
  match
    Template.derive ~name:"bad" ~family:"t" ~model:Model.Sc_per_location ~nlocs:1
      ~pattern:(fun _ _ -> true) ~polarity:Template.Conformance threads
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected ill-formed error"

let test_derive_empty_conformance_set () =
  (* A pattern nothing matches yields an empty conformance set. *)
  let threads = [| [ (Instr.load ~reg:0 ~loc:0 ()) ]; [ (Instr.store ~loc:0 ~value:1 ()) ] |] in
  match
    Template.derive ~name:"empty" ~family:"t" ~model:Model.Sc_per_location ~nlocs:1
      ~pattern:(fun _ _ -> false) ~polarity:Template.Conformance threads
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected empty target error"

let test_derive_first_falls_through () =
  let good = [| [ (Instr.load ~reg:0 ~loc:0 ()) ]; [ (Instr.store ~loc:0 ~value:1 ()) ] |] in
  let bad = [| [ (Instr.store ~loc:9 ~value:1 ()) ] |] in
  match
    Template.derive_first ~name:"fallthrough" ~family:"t" ~model:Model.Sc_per_location ~nlocs:1
      ~pattern:(fun x rels ->
        ignore x;
        Mcm_memmodel.Relation.cardinal rels.Mcm_memmodel.Execution.rf > 0)
      ~polarity:Template.Mutant [ bad; good ]
  with
  | Ok t -> check "derived from second variant" true (Array.length t.Litmus.threads = 2)
  | Error e -> Alcotest.failf "unexpected error: %s" e

let test_observer_ladder () =
  let threads = [| [ (Instr.store ~loc:0 ~value:1 ()) ] |] in
  let ladder = Template.observer_ladder ~obs_loc:0 threads in
  check_int "three variants" 3 (List.length ladder);
  let with_required = Template.observer_ladder ~require_observer:true ~obs_loc:0 threads in
  check_int "two variants when required" 2 (List.length with_required);
  match with_required with
  | first :: _ -> check_int "observer appended" 2 (Array.length first)
  | [] -> Alcotest.fail "empty ladder"

let test_instantiate_error_free () =
  List.iter
    (fun kind ->
      match Mutator.instantiate kind with
      | Ok pairs -> check (Mutator.kind_name kind) true (pairs <> [])
      | Error e -> Alcotest.failf "%s: %s" (Mutator.kind_name kind) e)
    Mutator.all_kinds

(* -------------------------------------------------------------------- *)
(* Pruning (Sec. 3.4).                                                    *)

module Cat = Mcm_memmodel.Cat
module Prune = Mcm_core.Prune

let test_prune_under_spec_model_keeps_everything () =
  (* An implementation exactly as weak as the specification can exhibit
     every mutant (the suite validity invariant says each mutant target
     is allowed under its own model, and SC-per-location is the weakest
     model in play). *)
  let verdict = Prune.prune_suite ~implementation:Cat.sc_per_location () in
  check_int "nothing pruned" 0 (List.length verdict.Prune.pruned);
  check_int "all mutants kept" 32 (List.length verdict.Prune.kept)

let test_prune_under_sc_keeps_only_interleavings () =
  (* A sequentially consistent implementation exhibits exactly the
     reversing-po-loc mutants. *)
  let verdict = Prune.prune_suite ~implementation:Cat.sc () in
  check_int "eight kept" 8 (List.length verdict.Prune.kept);
  List.iter
    (fun e -> check "kept are reversing-po-loc" true (e.Suite.mutator = Mutator.Reversing_po_loc))
    verdict.Prune.kept

let test_prune_under_tso () =
  (* On x86-TSO the interleaving mutants survive, plus exactly the
     store-buffering-shaped weak mutants (the paper's C++-on-x86
     example). *)
  let verdict = Prune.prune_suite ~implementation:Cat.tso () in
  let kept_names = List.map (fun e -> e.Suite.test.Litmus.name) verdict.Prune.kept in
  check_int "fifteen kept" 15 (List.length kept_names);
  List.iter
    (fun name -> check (name ^ " kept") true (List.mem name kept_names))
    [ "CoRR-m"; "SB-CO-m"; "R-CO-m"; "SB-relacq-m3"; "R-relacq-m2" ];
  List.iter
    (fun name -> check (name ^ " pruned") false (List.mem name kept_names))
    [ "MP-CO-m"; "LB-CO-m"; "2+2W-CO-m"; "MP-relacq-m3"; "R-relacq-m1" ]

let test_prune_never_touches_conformance () =
  let verdict = Prune.prune ~implementation:Cat.sc (Suite.all ()) in
  check_int "partition covers all mutants" 32
    (List.length verdict.Prune.kept + List.length verdict.Prune.pruned);
  List.iter
    (fun e ->
      check "only mutants in verdict" true
        (match e.Suite.role with Suite.Mutant_of _ -> true | Suite.Conformance -> false))
    (verdict.Prune.kept @ verdict.Prune.pruned)

(* -------------------------------------------------------------------- *)
(* Confidence (Sec. 4.2).                                                 *)

let test_reproducibility () =
  check_float "0 kills" 0. (Confidence.reproducibility ~kills:0.);
  check "3 kills ≈ 95%" true (abs_float (Confidence.reproducibility ~kills:3. -. 0.9502) < 1e-3);
  check "monotone" true
    (Confidence.reproducibility ~kills:5. > Confidence.reproducibility ~kills:2.)

let test_required_kills () =
  check_int "95% needs 3" 3 (Confidence.required_kills ~target:0.95);
  check_int "99.999% needs 12" 12 (Confidence.required_kills ~target:0.99999);
  Alcotest.check_raises "target 0 invalid"
    (Invalid_argument "Confidence.required_kills: target must be in (0,1)") (fun () ->
      ignore (Confidence.required_kills ~target:0.))

let test_ceiling_rate () =
  check_float "3 kills over 3s" 1. (Confidence.ceiling_rate ~target:0.95 ~budget:3.);
  check_float "12 kills over 64s" (12. /. 64.) (Confidence.ceiling_rate ~target:0.99999 ~budget:64.)

let test_budget_for () =
  check_float "rate 1 target 95%" 3. (Confidence.budget_for ~target:0.95 ~rate:1.);
  check "zero rate infinite" true (Confidence.budget_for ~target:0.95 ~rate:0. = infinity)

let test_total_reproducibility () =
  (* Sec. 4.2: 95% per test over 20 tests is ~35.8% total; 99.999% is
     ~99.98%. *)
  check "0.95^20" true
    (abs_float (Confidence.total_reproducibility ~per_test:0.95 ~tests:20 -. 0.358) < 1e-2);
  check "0.99999^20" true
    (Confidence.total_reproducibility ~per_test:0.99999 ~tests:20 > 0.9997)

let test_meets () =
  check "meets" true (Confidence.meets ~rate:1. ~target:0.95 ~budget:3.);
  check "misses" false (Confidence.meets ~rate:0.9 ~target:0.95 ~budget:3.)

(* -------------------------------------------------------------------- *)
(* Algorithm 1.                                                           *)

let rates_fn table ~env ~device = table.(env).(device)

let test_merge_picks_most_devices () =
  (* env 0 reaches the ceiling on one device, env 1 on two. *)
  let table = [| [| 10.; 0.; 0. |]; [| 5.; 5.; 0. |] |] in
  match Merge.choose ~rate:(rates_fn table) ~n_envs:2 ~n_devices:3 ~target:0.95 ~budget:3. with
  | Some c ->
      check_int "env 1 wins" 1 c.Merge.env;
      check_int "two devices" 2 c.Merge.devices_at_ceiling
  | None -> Alcotest.fail "expected a choice"

let test_merge_tie_breaks_on_min_rate () =
  (* Both reach the ceiling on one device; env 1 has the higher minimum
     non-zero rate. *)
  let table = [| [| 10.; 0.1; 0. |]; [| 10.; 0.5; 0. |] |] in
  match Merge.choose ~rate:(rates_fn table) ~n_envs:2 ~n_devices:3 ~target:0.95 ~budget:3. with
  | Some c -> check_int "env 1 wins tie" 1 c.Merge.env
  | None -> Alcotest.fail "expected a choice"

let test_merge_returns_none_when_never_killed () =
  let table = [| [| 0.; 0. |]; [| 0.; 0. |] |] in
  check "no choice" true
    (Merge.choose ~rate:(rates_fn table) ~n_envs:2 ~n_devices:2 ~target:0.95 ~budget:3. = None)

let test_merge_ignores_below_ceiling_only_envs () =
  (* Alg. 1 keeps e_r = ∅ when no environment reaches the ceiling on any
     device, even with positive rates. *)
  let table = [| [| 0.1; 0.2 |] |] in
  check "below ceiling everywhere" true
    (Merge.choose ~rate:(rates_fn table) ~n_envs:1 ~n_devices:2 ~target:0.95 ~budget:3. = None)

let test_merge_reproducible_on_all () =
  let table = [| [| 10.; 10. |] |] in
  check "all devices" true
    (Merge.reproducible_on_all ~rate:(rates_fn table) ~n_envs:1 ~n_devices:2 ~target:0.95
       ~budget:3.);
  let table = [| [| 10.; 0.5 |] |] in
  check "one device short" false
    (Merge.reproducible_on_all ~rate:(rates_fn table) ~n_envs:1 ~n_devices:2 ~target:0.95
       ~budget:3.)

let test_merge_stability () =
  (* If the chosen environment meets the ceiling on all devices, relaxing
     the target or extending the budget must not change the choice. *)
  let table = [| [| 5.; 4. |]; [| 3.; 2. |]; [| 0.; 9. |] |] in
  let choose ~target ~budget =
    Merge.choose ~rate:(rates_fn table) ~n_envs:3 ~n_devices:2 ~target ~budget
  in
  match (choose ~target:0.99999 ~budget:16., choose ~target:0.95 ~budget:64.) with
  | Some a, Some b ->
      check_int "stable env" a.Merge.env b.Merge.env;
      check_int "fully passing" 2 a.Merge.devices_at_ceiling
  | _ -> Alcotest.fail "expected choices"

(* -------------------------------------------------------------------- *)
(* Properties.                                                            *)

let prop_reproducibility_in_unit_interval =
  QCheck.Test.make ~count:300 ~name:"reproducibility is a probability"
    QCheck.(float_bound_inclusive 1000.)
    (fun kills ->
      let r = Confidence.reproducibility ~kills in
      r >= 0. && r <= 1.)

let prop_ceiling_rate_antitone_in_budget =
  QCheck.Test.make ~count:300 ~name:"ceiling rate decreases with budget"
    QCheck.(pair (float_range 0.01 0.999) (float_range 0.001 100.))
    (fun (target, budget) ->
      Confidence.ceiling_rate ~target ~budget
      >= Confidence.ceiling_rate ~target ~budget:(budget *. 2.))

let prop_merge_choice_in_range =
  QCheck.Test.make ~count:200 ~name:"merge picks a valid environment"
    QCheck.(list_of_size (Gen.int_range 1 6) (list_of_size (Gen.return 3) (float_bound_exclusive 10.)))
    (fun rows ->
      QCheck.assume (rows <> []);
      let table = Array.of_list (List.map Array.of_list rows) in
      let n_envs = Array.length table in
      match
        Merge.choose
          ~rate:(fun ~env ~device -> table.(env).(device))
          ~n_envs ~n_devices:3 ~target:0.95 ~budget:3.
      with
      | None -> true
      | Some c -> c.Merge.env >= 0 && c.Merge.env < n_envs)

let () =
  Alcotest.run "core"
    [
      ( "suite",
        [
          Alcotest.test_case "table 2 counts" `Quick test_table2_counts;
          Alcotest.test_case "suite sizes" `Quick test_suite_sizes;
          Alcotest.test_case "unique names" `Quick test_suite_names_unique;
          Alcotest.test_case "mutants have parents" `Quick test_every_mutant_has_conformance;
          Alcotest.test_case "mutants_of" `Quick test_mutants_of;
          Alcotest.test_case "all well-formed" `Quick test_all_well_formed;
        ] );
      ( "validity",
        [
          Alcotest.test_case "conformance targets disallowed" `Slow
            test_conformance_targets_disallowed;
          Alcotest.test_case "mutant targets allowed" `Slow test_mutant_targets_allowed;
          Alcotest.test_case "weak mutants disallowed under SC" `Slow
            test_mutant_targets_disallowed_under_sc;
          Alcotest.test_case "known targets" `Quick test_known_targets;
          Alcotest.test_case "mutant programs differ" `Quick test_mutant_programs_differ;
          Alcotest.test_case "weakening po-loc locations" `Quick
            test_weakening_po_loc_mutants_use_two_locations;
          Alcotest.test_case "CoRR-rmw structure" `Quick test_corr_rmw_upgrades_second_read_only;
        ] );
      ( "template",
        [
          Alcotest.test_case "rejects ill-formed" `Quick test_derive_rejects_ill_formed;
          Alcotest.test_case "empty conformance set" `Quick test_derive_empty_conformance_set;
          Alcotest.test_case "derive_first fallthrough" `Quick test_derive_first_falls_through;
          Alcotest.test_case "observer ladder" `Quick test_observer_ladder;
          Alcotest.test_case "mutators instantiate" `Quick test_instantiate_error_free;
        ] );
      ( "prune",
        [
          Alcotest.test_case "spec model keeps all" `Slow test_prune_under_spec_model_keeps_everything;
          Alcotest.test_case "SC keeps interleavings" `Slow test_prune_under_sc_keeps_only_interleavings;
          Alcotest.test_case "TSO keeps SB shapes" `Slow test_prune_under_tso;
          Alcotest.test_case "conformance untouched" `Slow test_prune_never_touches_conformance;
        ] );
      ( "confidence",
        [
          Alcotest.test_case "reproducibility" `Quick test_reproducibility;
          Alcotest.test_case "required kills" `Quick test_required_kills;
          Alcotest.test_case "ceiling rate" `Quick test_ceiling_rate;
          Alcotest.test_case "budget_for" `Quick test_budget_for;
          Alcotest.test_case "total reproducibility" `Quick test_total_reproducibility;
          Alcotest.test_case "meets" `Quick test_meets;
        ] );
      ( "merge",
        [
          Alcotest.test_case "most devices wins" `Quick test_merge_picks_most_devices;
          Alcotest.test_case "tie-break on min rate" `Quick test_merge_tie_breaks_on_min_rate;
          Alcotest.test_case "none when never killed" `Quick test_merge_returns_none_when_never_killed;
          Alcotest.test_case "none below ceiling" `Quick test_merge_ignores_below_ceiling_only_envs;
          Alcotest.test_case "reproducible on all" `Quick test_merge_reproducible_on_all;
          Alcotest.test_case "stability" `Quick test_merge_stability;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_reproducibility_in_unit_interval; prop_ceiling_rate_antitone_in_budget;
            prop_merge_choice_in_range;
          ] );
    ]
