(* Tests for mcm_memmodel: relation algebra, derived execution relations,
   and the three MCS consistency checkers. *)

module Event = Mcm_memmodel.Event
module Relation = Mcm_memmodel.Relation
module Execution = Mcm_memmodel.Execution
module Model = Mcm_memmodel.Model

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* -------------------------------------------------------------------- *)
(* Event helpers                                                          *)

let ev id tid idx kind =
  { Event.id; tid; idx; wg = tid; scope = Mcm_memmodel.Scope.Device; kind }

let test_event_predicates () =
  let r = ev 0 0 0 (Event.Read { loc = 0 }) in
  let w = ev 1 0 1 (Event.Write { loc = 0; value = 1 }) in
  let u = ev 2 1 0 (Event.Rmw { loc = 0; value = 2 }) in
  let f = ev 3 1 1 Event.Fence in
  check "read is read" true (Event.is_read r);
  check "read not write" false (Event.is_write r);
  check "write is write" true (Event.is_write w);
  check "rmw is read" true (Event.is_read u);
  check "rmw is write" true (Event.is_write u);
  check "rmw is rmw" true (Event.is_rmw u);
  check "fence is fence" true (Event.is_fence f);
  check "fence no loc" true (Event.loc f = None);
  check "write value" true (Event.written_value w = Some 1);
  check "read no value" true (Event.written_value r = None);
  check "same loc" true (Event.same_loc r w);
  check "fence same_loc false" false (Event.same_loc r f)

let test_event_pp () =
  let w = ev 1 0 1 (Event.Write { loc = 0; value = 1 }) in
  Alcotest.(check string) "pp" "[t0.1 W x=1]" (Event.to_string w)

(* -------------------------------------------------------------------- *)
(* Relation algebra                                                       *)

let test_relation_basics () =
  let r = Relation.of_list 4 [ (0, 1); (1, 2) ] in
  check "mem" true (Relation.mem r 0 1);
  check "not mem" false (Relation.mem r 1 0);
  check_int "cardinal" 2 (Relation.cardinal r);
  check_int "size" 4 (Relation.size r);
  Alcotest.(check (list (pair int int))) "to_list" [ (0, 1); (1, 2) ] (Relation.to_list r)

let test_relation_add_immutable () =
  let r = Relation.empty 3 in
  let r' = Relation.add r 0 1 in
  check "original unchanged" false (Relation.mem r 0 1);
  check "new has pair" true (Relation.mem r' 0 1)

let test_relation_union_inter () =
  let r = Relation.of_list 3 [ (0, 1) ] in
  let s = Relation.of_list 3 [ (0, 1); (1, 2) ] in
  check_int "union" 2 (Relation.cardinal (Relation.union r s));
  check_int "inter" 1 (Relation.cardinal (Relation.inter r s));
  check "subset" true (Relation.subset r s);
  check "not subset" false (Relation.subset s r)

let test_relation_compose () =
  let r = Relation.of_list 4 [ (0, 1); (2, 3) ] in
  let s = Relation.of_list 4 [ (1, 2) ] in
  let c = Relation.compose r s in
  Alcotest.(check (list (pair int int))) "compose" [ (0, 2) ] (Relation.to_list c)

let test_relation_inverse () =
  let r = Relation.of_list 3 [ (0, 1); (1, 2) ] in
  Alcotest.(check (list (pair int int)))
    "inverse" [ (1, 0); (2, 1) ]
    (Relation.to_list (Relation.inverse r))

let test_relation_closure () =
  let r = Relation.of_list 4 [ (0, 1); (1, 2); (2, 3) ] in
  let c = Relation.transitive_closure r in
  check "0 reaches 3" true (Relation.mem c 0 3);
  check "3 unreaches 0" false (Relation.mem c 3 0);
  check_int "closure size" 6 (Relation.cardinal c)

let test_relation_acyclicity () =
  check "chain acyclic" true (Relation.is_acyclic (Relation.of_list 3 [ (0, 1); (1, 2) ]));
  check "cycle detected" false (Relation.is_acyclic (Relation.of_list 3 [ (0, 1); (1, 0) ]));
  check "self-loop cyclic" false (Relation.is_acyclic (Relation.of_list 2 [ (1, 1) ]));
  check "empty acyclic" true (Relation.is_acyclic (Relation.empty 0))

let test_relation_find_cycle () =
  let r = Relation.of_list 4 [ (0, 1); (1, 2); (2, 0); (2, 3) ] in
  (match Relation.find_cycle r with
  | None -> Alcotest.fail "expected cycle"
  | Some cycle ->
      check_int "cycle length" 3 (List.length cycle);
      (* Each consecutive pair must be an edge, wrapping around. *)
      let arr = Array.of_list cycle in
      let n = Array.length arr in
      for i = 0 to n - 1 do
        check "cycle edge" true (Relation.mem r arr.(i) arr.((i + 1) mod n))
      done);
  check "acyclic finds none" true (Relation.find_cycle (Relation.of_list 2 [ (0, 1) ]) = None)

let test_relation_total_order () =
  let r = Relation.of_list 3 [ (0, 1); (1, 2); (0, 2) ] in
  check "total order" true (Relation.is_total_order_on r [ 0; 1; 2 ]);
  let partial = Relation.of_list 3 [ (0, 1) ] in
  check "partial not total" false (Relation.is_total_order_on partial [ 0; 1; 2 ]);
  check "subset still total" true (Relation.is_total_order_on partial [ 0; 1 ])

let test_relation_restrict () =
  let r = Relation.of_list 4 [ (0, 1); (1, 2); (2, 3) ] in
  let even = Relation.restrict r (fun a _ -> a mod 2 = 0) in
  Alcotest.(check (list (pair int int))) "restricted" [ (0, 1); (2, 3) ] (Relation.to_list even)

let test_relation_bounds_checked () =
  let r = Relation.empty 2 in
  Alcotest.check_raises "out of bounds" (Invalid_argument "Relation: index out of bounds")
    (fun () -> ignore (Relation.mem r 0 5))

(* -------------------------------------------------------------------- *)
(* Executions: the MP example from Fig. 2b without fences.                *)

(* Events: 0:Wx=1 1:Wy=1 (thread 0); 2:Ry 3:Rx (thread 1). *)
let mp_events =
  [|
    ev 0 0 0 (Event.Write { loc = 0; value = 1 });
    ev 1 0 1 (Event.Write { loc = 1; value = 1 });
    ev 2 1 0 (Event.Read { loc = 1 });
    ev 3 1 1 (Event.Read { loc = 0 });
  |]

let mp_weak =
  (* Ry reads the flag (1), Rx reads the initial state: the weak MP
     execution. *)
  {
    Execution.events = mp_events;
    rf = [| None; None; Some 1; None |];
    co = [ (0, [ 0 ]); (1, [ 1 ]) ];
  }

let test_execution_well_formed () =
  check "well-formed" true (Execution.well_formed mp_weak = Ok ())

let test_execution_rejects_bad_rf () =
  let bad = { mp_weak with Execution.rf = [| None; None; Some 0; None |] } in
  (* event 2 reads y but rf source writes x *)
  check "bad rf loc" true (Result.is_error (Execution.well_formed bad))

let test_execution_rejects_bad_co () =
  let bad = { mp_weak with Execution.co = [ (0, [ 0 ]) ] } in
  check "missing co loc" true (Result.is_error (Execution.well_formed bad))

let test_value_read () =
  check_int "flag read" 1 (Execution.value_read mp_weak 2);
  check_int "stale read" 0 (Execution.value_read mp_weak 3)

let test_derived_relations () =
  let r = Execution.relations mp_weak in
  check "po within t0" true (Relation.mem r.Execution.po 0 1);
  check "po within t1" true (Relation.mem r.Execution.po 2 3);
  check "no cross-thread po" false (Relation.mem r.Execution.po 1 2);
  check "po_loc empty here" true (Relation.cardinal r.Execution.po_loc = 0);
  check "rf edge" true (Relation.mem r.Execution.rf 1 2);
  check "fr: stale read before write" true (Relation.mem r.Execution.fr 3 0);
  check "com contains rf" true (Relation.subset r.Execution.rf r.Execution.com);
  check "com contains fr" true (Relation.subset r.Execution.fr r.Execution.com);
  check "no fences, no sw" true (Relation.cardinal r.Execution.sw = 0)

let test_mp_weak_consistency () =
  (* The weak MP execution violates SC but satisfies SC-per-location. *)
  check "inconsistent under SC" false (Model.consistent Model.Sc mp_weak);
  check "consistent under SC-per-loc" true (Model.consistent Model.Sc_per_location mp_weak);
  check "consistent under rel-acq (no fences)" true
    (Model.consistent Model.Relacq_sc_per_location mp_weak)

(* MP with fences: events 0:Wx 1:F 2:Wy (t0); 3:Ry 4:F 5:Rx (t1). *)
let mp_fence_events =
  [|
    ev 0 0 0 (Event.Write { loc = 0; value = 1 });
    ev 1 0 1 Event.Fence;
    ev 2 0 2 (Event.Write { loc = 1; value = 1 });
    ev 3 1 0 (Event.Read { loc = 1 });
    ev 4 1 1 Event.Fence;
    ev 5 1 2 (Event.Read { loc = 0 });
  |]

let mp_fence_weak =
  {
    Execution.events = mp_fence_events;
    rf = [| None; None; None; Some 2; None; None |];
    co = [ (0, [ 0 ]); (1, [ 2 ]) ];
  }

let test_sw_derived () =
  let r = Execution.relations mp_fence_weak in
  check "sw between fences" true (Relation.mem r.Execution.sw 1 4);
  check "sw not reversed" false (Relation.mem r.Execution.sw 4 1);
  check "po;sw;po orders data" true (Relation.mem r.Execution.po_sw_po 0 5)

let test_mp_fence_weak_consistency () =
  (* Fig. 2b: the stale data read is allowed under SC-per-location but
     disallowed once the fences' sw enters hb. *)
  check "consistent under SC-per-loc" true (Model.consistent Model.Sc_per_location mp_fence_weak);
  check "inconsistent under rel-acq" false
    (Model.consistent Model.Relacq_sc_per_location mp_fence_weak)

let test_hb_cycle_description () =
  match Model.hb_cycle Model.Relacq_sc_per_location mp_fence_weak with
  | None -> Alcotest.fail "expected a cycle"
  | Some s -> check "cycle non-empty" true (String.length s > 0)

(* RMW atomicity: x: W(1) at event 0, RMW(2) at event 1 (thread 1 reads
   initial state), W(3) at event 2. *)
let test_rmw_atomicity () =
  let events =
    [|
      ev 0 0 0 (Event.Write { loc = 0; value = 1 });
      ev 1 1 0 (Event.Rmw { loc = 0; value = 2 });
      ev 2 2 0 (Event.Write { loc = 0; value = 3 });
    |]
  in
  (* RMW reads init: must be first in co. *)
  let atomic =
    { Execution.events; rf = [| None; None; None |]; co = [ (0, [ 1; 0; 2 ]) ] }
  in
  check "rmw first ok" true (Model.rmw_atomic atomic);
  let broken =
    { Execution.events; rf = [| None; None; None |]; co = [ (0, [ 0; 1; 2 ]) ] }
  in
  check "write intervenes" false (Model.rmw_atomic broken);
  (* RMW reads event 0: must be immediately after it. *)
  let chained =
    { Execution.events; rf = [| None; Some 0; None |]; co = [ (0, [ 0; 1; 2 ]) ] }
  in
  check "rmw after source ok" true (Model.rmw_atomic chained);
  let separated =
    { Execution.events; rf = [| None; Some 0; None |]; co = [ (0, [ 0; 2; 1 ]) ] }
  in
  check "separated from source" false (Model.rmw_atomic separated)

let test_model_names_roundtrip () =
  List.iter
    (fun m -> check (Model.name m) true (Model.of_string (Model.name m) = Some m))
    Model.all;
  check "unknown name" true (Model.of_string "tso" = None)

let test_model_strength_chain () =
  check "sc-per-loc weaker than relacq" true
    (Model.weaker_or_equal Model.Sc_per_location Model.Relacq_sc_per_location);
  check "relacq weaker than sc" true
    (Model.weaker_or_equal Model.Relacq_sc_per_location Model.Sc);
  check "sc not weaker than sc-per-loc" false
    (Model.weaker_or_equal Model.Sc Model.Sc_per_location)

(* -------------------------------------------------------------------- *)
(* CAT: parameterized models                                              *)

module Cat = Mcm_memmodel.Cat

let test_cat_matches_direct_models () =
  (* The CAT formulations agree with the direct implementations on the
     example executions of this file. *)
  List.iter
    (fun x ->
      List.iter
        (fun m ->
          check
            (Printf.sprintf "%s agrees" (Model.name m))
            true
            (Model.consistent m x = Cat.consistent (Cat.of_model m) x))
        Model.all)
    [ mp_weak; mp_fence_weak ]

let test_cat_eval_algebra () =
  let r = Execution.relations mp_weak in
  check "union" true
    (Relation.equal (Cat.eval (Cat.Union (Cat.Po, Cat.Rf)) mp_weak)
       (Relation.union r.Execution.po r.Execution.rf));
  check "diff removes" true
    (Relation.cardinal (Cat.eval (Cat.Diff (Cat.Po, Cat.Po)) mp_weak) = 0);
  check "seq" true
    (Relation.equal
       (Cat.eval (Cat.Seq (Cat.Po, Cat.Po)) mp_weak)
       (Relation.compose r.Execution.po r.Execution.po));
  check "inverse" true
    (Relation.equal (Cat.eval (Cat.Inverse Cat.Rf) mp_weak) (Relation.inverse r.Execution.rf));
  check "internal po is po" true
    (Relation.equal (Cat.eval (Cat.Internal Cat.Po) mp_weak) r.Execution.po);
  check "external po empty" true
    (Relation.cardinal (Cat.eval (Cat.External Cat.Po) mp_weak) = 0);
  check "external rf is rf here" true
    (Relation.equal (Cat.eval (Cat.External Cat.Rf) mp_weak) r.Execution.rf);
  (* Restrict: po pairs from writes to writes = the (Wx, Wy) pair. *)
  check "restrict" true
    (Relation.to_list (Cat.eval (Cat.Restrict (Cat.Writes, Cat.Po, Cat.Writes)) mp_weak)
    = [ (0, 1) ])

let test_cat_tso_allows_store_buffering () =
  (* SB events: 0:Wx 1:Ry (t0); 2:Wy 3:Rx (t1); both reads from the
     initial state. *)
  let events =
    [|
      ev 0 0 0 (Event.Write { loc = 0; value = 1 });
      ev 1 0 1 (Event.Read { loc = 1 });
      ev 2 1 0 (Event.Write { loc = 1; value = 1 });
      ev 3 1 1 (Event.Read { loc = 0 });
    |]
  in
  let sb_weak =
    { Execution.events; rf = [| None; None; None; None |]; co = [ (0, [ 0 ]); (1, [ 2 ]) ] }
  in
  check "SC forbids SB" false (Cat.consistent Cat.sc sb_weak);
  check "TSO allows SB" true (Cat.consistent Cat.tso sb_weak);
  (* A fence between the store and the load of each thread restores SC:
     0:Wx 1:F 2:Ry (t0); 3:Wy 4:F 5:Rx (t1). *)
  let fenced =
    [|
      ev 0 0 0 (Event.Write { loc = 0; value = 1 });
      ev 1 0 1 Event.Fence;
      ev 2 0 2 (Event.Read { loc = 1 });
      ev 3 1 0 (Event.Write { loc = 1; value = 1 });
      ev 4 1 1 Event.Fence;
      ev 5 1 2 (Event.Read { loc = 0 });
    |]
  in
  let sb_fenced =
    {
      Execution.events = fenced;
      rf = [| None; None; None; None; None; None |];
      co = [ (0, [ 0 ]); (1, [ 3 ]) ];
    }
  in
  check "TSO forbids fenced SB" false (Cat.consistent Cat.tso sb_fenced)

let test_cat_tso_forbids_mp () =
  check "TSO forbids weak MP" false (Cat.consistent Cat.tso mp_weak);
  match Cat.failing_axiom Cat.tso mp_weak with
  | Some name -> Alcotest.(check string) "ghb axiom" "ghb" name
  | None -> Alcotest.fail "expected a failing axiom"

let test_cat_failing_axiom_names () =
  check "consistent has none" true (Cat.failing_axiom Cat.sc_per_location mp_weak = None);
  let broken_atomicity =
    {
      Execution.events =
        [|
          ev 0 0 0 (Event.Write { loc = 0; value = 1 });
          ev 1 1 0 (Event.Rmw { loc = 0; value = 2 });
        |];
      rf = [| None; None |];
      (* The RMW reads the initial state but sits after the write. *)
      co = [ (0, [ 0; 1 ]) ];
    }
  in
  check "atomicity reported" true (Cat.failing_axiom Cat.tso broken_atomicity = Some "atomicity")

let test_cat_find () =
  check "find tso" true (Cat.find "tso" <> None);
  check "find sc" true (Cat.find "SC" <> None);
  check "find nothing" true (Cat.find "power" = None)

let test_cat_pretty_printing () =
  Alcotest.(check string) "base" "po-loc" (Cat.expr_to_string Cat.Po_loc);
  Alcotest.(check string) "union" "po | com" (Cat.expr_to_string (Cat.Union (Cat.Po, Cat.Com)));
  Alcotest.(check string) "restrict" "[W];po;[R]"
    (Cat.expr_to_string (Cat.Restrict (Cat.Writes, Cat.Po, Cat.Reads)));
  Alcotest.(check string) "diff parenthesises" "po \\ ([W];po;[R])"
    (Cat.expr_to_string (Cat.Diff (Cat.Po, Cat.Restrict (Cat.Writes, Cat.Po, Cat.Reads))));
  Alcotest.(check string) "external" "ext(rf)" (Cat.expr_to_string (Cat.External Cat.Rf));
  let rendered = Format.asprintf "%a" Cat.pp Cat.tso in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check "tso renders ghb" true (contains rendered "ghb");
  check "tso renders atomicity note" true (contains rendered "RMW atomicity")

(* -------------------------------------------------------------------- *)
(* Properties                                                             *)

let arbitrary_relation =
  QCheck.make
    ~print:(fun pairs -> QCheck.Print.(list (pair int int)) pairs)
    QCheck.Gen.(
      let n = 6 in
      list_size (int_bound 12) (pair (int_bound (n - 1)) (int_bound (n - 1))))

let rel_of pairs = Relation.of_list 6 pairs

let prop_closure_idempotent =
  QCheck.Test.make ~count:300 ~name:"transitive closure is idempotent" arbitrary_relation
    (fun pairs ->
      let c = Relation.transitive_closure (rel_of pairs) in
      Relation.equal c (Relation.transitive_closure c))

let prop_closure_contains =
  QCheck.Test.make ~count:300 ~name:"closure contains the relation" arbitrary_relation
    (fun pairs ->
      let r = rel_of pairs in
      Relation.subset r (Relation.transitive_closure r))

let prop_union_commutative =
  QCheck.Test.make ~count:300 ~name:"union commutes"
    (QCheck.pair arbitrary_relation arbitrary_relation) (fun (p1, p2) ->
      Relation.equal (Relation.union (rel_of p1) (rel_of p2))
        (Relation.union (rel_of p2) (rel_of p1)))

let prop_inverse_involutive =
  QCheck.Test.make ~count:300 ~name:"inverse is involutive" arbitrary_relation (fun pairs ->
      let r = rel_of pairs in
      Relation.equal r (Relation.inverse (Relation.inverse r)))

let prop_compose_associative =
  QCheck.Test.make ~count:200 ~name:"composition associates"
    (QCheck.triple arbitrary_relation arbitrary_relation arbitrary_relation)
    (fun (p1, p2, p3) ->
      let a = rel_of p1 and b = rel_of p2 and c = rel_of p3 in
      Relation.equal
        (Relation.compose (Relation.compose a b) c)
        (Relation.compose a (Relation.compose b c)))

let prop_acyclic_iff_no_cycle_found =
  QCheck.Test.make ~count:300 ~name:"find_cycle agrees with is_acyclic" arbitrary_relation
    (fun pairs ->
      let r = rel_of pairs in
      Relation.is_acyclic r = (Relation.find_cycle r = None))

(* -------------------------------------------------------------------- *)
(* Incremental closure (Relation.Closure): the propagation engine's
   workhorse. Its contract is checked against the immutable relation
   algebra as the reference implementation.                              *)

let test_closure_basics () =
  let c = Relation.Closure.create 4 in
  check "add 0->1" true (Relation.Closure.add c 0 1);
  check "add 1->2" true (Relation.Closure.add c 1 2);
  check "reaches transitively" true (Relation.Closure.reaches c 0 2);
  check "no reverse reach" false (Relation.Closure.reaches c 2 0);
  check "cycle-closing add refused" false (Relation.Closure.add c 2 0);
  check "refused add left state unchanged" false (Relation.Closure.reaches c 2 0);
  check "self edge refused" false (Relation.Closure.add c 3 3);
  check "duplicate add is a no-op success" true (Relation.Closure.add c 0 1);
  check "copy is independent" true
    (let d = Relation.Closure.copy c in
     ignore (Relation.Closure.add d 0 3);
     Relation.Closure.reaches d 0 3 && not (Relation.Closure.reaches c 0 3))

let test_closure_of_relation () =
  let acyclic = rel_of [ (0, 1); (1, 2); (3, 4) ] in
  (match Relation.Closure.of_relation acyclic with
  | None -> Alcotest.fail "of_relation rejected an acyclic relation"
  | Some c ->
      check "to_relation = transitive_closure" true
        (Relation.equal (Relation.Closure.to_relation c) (Relation.transitive_closure acyclic)));
  check "cyclic relation rejected" true
    (Relation.Closure.of_relation (rel_of [ (0, 1); (1, 0) ]) = None)

(* Replay a random edge list through the incremental closure and through
   the immutable algebra side by side: each add must succeed exactly
   when the edge keeps the accumulated graph acyclic (and is not a
   self-loop), and the final closure must be the transitive closure of
   the accepted edges. *)
let prop_closure_add_tracks_acyclicity =
  QCheck.Test.make ~count:300 ~name:"Closure.add accepts exactly the acyclicity-preserving edges"
    arbitrary_relation (fun pairs ->
      let c = Relation.Closure.create 6 in
      let kept = ref [] in
      List.for_all
        (fun (a, b) ->
          let expected =
            a <> b && Relation.is_acyclic (rel_of ((a, b) :: !kept))
          in
          let got = Relation.Closure.add c a b in
          if got then kept := (a, b) :: !kept;
          got = expected)
        pairs
      && Relation.equal (Relation.Closure.to_relation c)
           (Relation.transitive_closure (rel_of !kept)))

let prop_closure_roundtrip =
  QCheck.Test.make ~count:300 ~name:"of_relation/to_relation is the transitive closure"
    arbitrary_relation (fun pairs ->
      let r = rel_of pairs in
      match Relation.Closure.of_relation r with
      | Some c -> Relation.equal (Relation.Closure.to_relation c) (Relation.transitive_closure r)
      | None -> not (Relation.is_acyclic r))

(* static_po must agree with the po/po_loc the full relation derivation
   computes — it is the piece the propagation engine precomputes once
   per test instead of once per candidate. *)
let test_static_po_agrees_with_relations () =
  List.iter
    (fun t ->
      let x =
        match
          Mcm_litmus.Enumerate.candidates t
        with
        | x :: _ -> x
        | [] -> Alcotest.failf "%s has no candidates" t.Mcm_litmus.Litmus.name
      in
      let r = Execution.relations x in
      let po, po_loc = Execution.static_po x.Execution.events in
      check (t.Mcm_litmus.Litmus.name ^ ": static po") true (Relation.equal po r.Execution.po);
      check
        (t.Mcm_litmus.Litmus.name ^ ": static po_loc")
        true
        (Relation.equal po_loc r.Execution.po_loc))
    Mcm_litmus.Library.all

let () =
  Alcotest.run "memmodel"
    [
      ( "event",
        [
          Alcotest.test_case "predicates" `Quick test_event_predicates;
          Alcotest.test_case "pretty-printing" `Quick test_event_pp;
        ] );
      ( "relation",
        [
          Alcotest.test_case "basics" `Quick test_relation_basics;
          Alcotest.test_case "add is immutable" `Quick test_relation_add_immutable;
          Alcotest.test_case "union/inter/subset" `Quick test_relation_union_inter;
          Alcotest.test_case "compose" `Quick test_relation_compose;
          Alcotest.test_case "inverse" `Quick test_relation_inverse;
          Alcotest.test_case "transitive closure" `Quick test_relation_closure;
          Alcotest.test_case "acyclicity" `Quick test_relation_acyclicity;
          Alcotest.test_case "find_cycle" `Quick test_relation_find_cycle;
          Alcotest.test_case "total order" `Quick test_relation_total_order;
          Alcotest.test_case "restrict" `Quick test_relation_restrict;
          Alcotest.test_case "bounds" `Quick test_relation_bounds_checked;
        ] );
      ( "execution",
        [
          Alcotest.test_case "well-formed" `Quick test_execution_well_formed;
          Alcotest.test_case "rejects bad rf" `Quick test_execution_rejects_bad_rf;
          Alcotest.test_case "rejects bad co" `Quick test_execution_rejects_bad_co;
          Alcotest.test_case "value_read" `Quick test_value_read;
          Alcotest.test_case "derived relations" `Quick test_derived_relations;
          Alcotest.test_case "sw derivation" `Quick test_sw_derived;
        ] );
      ( "model",
        [
          Alcotest.test_case "MP weak consistency" `Quick test_mp_weak_consistency;
          Alcotest.test_case "MP fence weak consistency" `Quick test_mp_fence_weak_consistency;
          Alcotest.test_case "hb cycle description" `Quick test_hb_cycle_description;
          Alcotest.test_case "RMW atomicity" `Quick test_rmw_atomicity;
          Alcotest.test_case "model names" `Quick test_model_names_roundtrip;
          Alcotest.test_case "strength chain" `Quick test_model_strength_chain;
        ] );
      ( "cat",
        [
          Alcotest.test_case "matches direct models" `Quick test_cat_matches_direct_models;
          Alcotest.test_case "expression algebra" `Quick test_cat_eval_algebra;
          Alcotest.test_case "TSO allows SB" `Quick test_cat_tso_allows_store_buffering;
          Alcotest.test_case "TSO forbids MP" `Quick test_cat_tso_forbids_mp;
          Alcotest.test_case "failing axiom names" `Quick test_cat_failing_axiom_names;
          Alcotest.test_case "find" `Quick test_cat_find;
          Alcotest.test_case "pretty-printing" `Quick test_cat_pretty_printing;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_closure_idempotent; prop_closure_contains; prop_union_commutative;
            prop_inverse_involutive; prop_compose_associative; prop_acyclic_iff_no_cycle_found;
          ] );
      ( "incremental-closure",
        Alcotest.test_case "basics" `Quick test_closure_basics
        :: Alcotest.test_case "of_relation" `Quick test_closure_of_relation
        :: Alcotest.test_case "static_po agrees with relations" `Quick
             test_static_po_agrees_with_relations
        :: List.map QCheck_alcotest.to_alcotest
             [ prop_closure_add_tracks_acyclicity; prop_closure_roundtrip ] );
    ]
