(* Tests for mcm_util: PRNG determinism and distribution sanity, number
   theory behind the parallel permutation, table/JSON rendering. *)

module Prng = Mcm_util.Prng
module Numbers = Mcm_util.Numbers
module Table = Mcm_util.Table
module Jsonw = Mcm_util.Jsonw

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* -------------------------------------------------------------------- *)
(* PRNG                                                                   *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check "same stream" true (Prng.next_int64 a = Prng.next_int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let differs = ref false in
  for _ = 1 to 16 do
    if Prng.next_int64 a <> Prng.next_int64 b then differs := true
  done;
  check "different seeds differ" true !differs

let test_prng_split_independent () =
  let g = Prng.create 7 in
  let h = Prng.split g in
  let a = Prng.next_int64 g and b = Prng.next_int64 h in
  check "split streams differ" true (a <> b)

let test_prng_copy () =
  let g = Prng.create 9 in
  ignore (Prng.next_int64 g);
  let h = Prng.copy g in
  check "copy continues identically" true (Prng.next_int64 g = Prng.next_int64 h)

let test_prng_int_range () =
  let g = Prng.create 3 in
  for _ = 1 to 1000 do
    let v = Prng.int g 7 in
    check "int in range" true (v >= 0 && v < 7)
  done

let test_prng_int_invalid () =
  let g = Prng.create 3 in
  Alcotest.check_raises "non-positive bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g 0))

let test_prng_int_covers () =
  let g = Prng.create 5 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Prng.int g 5) <- true
  done;
  Array.iteri (fun i s -> check (Printf.sprintf "value %d seen" i) true s) seen

let test_prng_float_range () =
  let g = Prng.create 11 in
  for _ = 1 to 1000 do
    let v = Prng.float g 2.5 in
    check "float in range" true (v >= 0. && v < 2.5)
  done

let test_prng_bernoulli_extremes () =
  let g = Prng.create 13 in
  for _ = 1 to 50 do
    check "p=0 never true" false (Prng.bernoulli g 0.);
    check "p=1 always true" true (Prng.bernoulli g 1.);
    check "p<0 never true" false (Prng.bernoulli g (-0.5));
    check "p>1 always true" true (Prng.bernoulli g 1.5)
  done

let test_prng_bernoulli_rate () =
  let g = Prng.create 17 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Prng.bernoulli g 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  check "rate near 0.3" true (abs_float (rate -. 0.3) < 0.02)

let test_prng_exponential () =
  let g = Prng.create 19 in
  check "mean<=0 gives 0" true (Prng.exponential g 0. = 0.);
  check "mean<0 gives 0" true (Prng.exponential g (-1.) = 0.);
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    let v = Prng.exponential g 4.0 in
    check "non-negative" true (v >= 0.);
    sum := !sum +. v
  done;
  let mean = !sum /. float_of_int n in
  check "sample mean near 4" true (abs_float (mean -. 4.0) < 0.25)

let test_prng_shuffle_permutes () =
  let g = Prng.create 23 in
  let a = Array.init 20 (fun i -> i) in
  Prng.shuffle_in_place g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 20 (fun i -> i)) sorted

let test_prng_pick () =
  let g = Prng.create 29 in
  let a = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    check "picked element" true (Array.mem (Prng.pick g a) a)
  done;
  Alcotest.check_raises "empty array" (Invalid_argument "Prng.pick: empty array") (fun () ->
      ignore (Prng.pick g [||]))

let test_prng_mix_deterministic () =
  check_int "mix stable" (Prng.mix 1 2) (Prng.mix 1 2);
  check "mix distinguishes" true (Prng.mix 1 2 <> Prng.mix 2 1)

(* -------------------------------------------------------------------- *)
(* Number theory / permutation                                            *)

let test_gcd () =
  check_int "gcd 12 18" 6 (Numbers.gcd 12 18);
  check_int "gcd 7 13" 1 (Numbers.gcd 7 13);
  check_int "gcd 0 5" 5 (Numbers.gcd 0 5);
  check_int "gcd 5 0" 5 (Numbers.gcd 5 0);
  check_int "gcd 0 0" 0 (Numbers.gcd 0 0);
  check_int "gcd negative" 6 (Numbers.gcd (-12) 18)

let test_coprime () =
  check "3 coprime 8" true (Numbers.coprime 3 8);
  check "6 not coprime 8" false (Numbers.coprime 6 8)

let test_random_coprime () =
  let g = Prng.create 31 in
  for _ = 1 to 200 do
    let n = 2 + Prng.int g 100 in
    let p = Numbers.random_coprime g n in
    check "coprime result" true (n <= 2 || Numbers.coprime p n);
    check "in range" true (p >= 1 && (n <= 2 || p < n))
  done

let test_permute_bijection () =
  (* The paper's permutation (v*P) mod N is a bijection iff gcd(P,N)=1. *)
  let g = Prng.create 37 in
  for _ = 1 to 50 do
    let n = 2 + Prng.int g 64 in
    let p = Numbers.random_coprime g n in
    let seen = Array.make n false in
    for v = 0 to n - 1 do
      seen.(Numbers.permute ~p ~n v) <- true
    done;
    Array.iteri (fun i s -> check (Printf.sprintf "image covers %d" i) true s) seen
  done

let test_permute_not_bijection_when_not_coprime () =
  let n = 8 and p = 6 in
  check "not a permutation" false (Numbers.is_permutation ~p ~n);
  let seen = Array.make n false in
  for v = 0 to n - 1 do
    seen.(Numbers.permute ~p ~n v) <- true
  done;
  check "image misses something" true (Array.exists not seen)

let test_ceil_div () =
  check_int "exact" 3 (Numbers.ceil_div 9 3);
  check_int "round up" 4 (Numbers.ceil_div 10 3);
  check_int "one" 1 (Numbers.ceil_div 1 256)

(* -------------------------------------------------------------------- *)
(* Table rendering                                                        *)

let test_table_render () =
  let t = Table.create [ "name"; "score" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "20" ];
  let s = Table.render t in
  let lines = String.split_on_char '\n' s in
  check_int "line count" 5 (List.length lines);
  (* header, rule, 2 rows, trailing empty *)
  check_str "header" "name   score" (List.nth lines 0);
  check_str "row right-aligned" "alpha      1" (List.nth lines 2)

let test_table_pads_short_rows () =
  let t = Table.create [ "a"; "b"; "c" ] in
  Table.add_row t [ "x" ];
  let s = Table.render t in
  check "renders" true (String.length s > 0)

let test_table_rejects_long_rows () =
  let t = Table.create [ "a" ] in
  Alcotest.check_raises "too many cells" (Invalid_argument "Table.add_row: too many cells")
    (fun () -> Table.add_row t [ "1"; "2" ])

let test_table_cells () =
  check_str "float" "3.14" (Table.float_cell ~decimals:2 3.14159);
  check_str "nan" "nan" (Table.float_cell Float.nan);
  check_str "inf" "inf" (Table.float_cell Float.infinity);
  check_str "rate zero" "0" (Table.rate_cell 0.);
  check_str "rate small" "0.0042" (Table.rate_cell 0.0042);
  check_str "rate plain" "12.3" (Table.rate_cell 12.34);
  check_str "rate K" "35.0K" (Table.rate_cell 35_000.);
  check_str "rate M" "1.2M" (Table.rate_cell 1_200_000.);
  check_str "pct" "83.6%" (Table.pct_cell 0.836)

(* -------------------------------------------------------------------- *)
(* JSON                                                                   *)

let test_json_scalars () =
  check_str "null" "null" (Jsonw.to_string Jsonw.Null);
  check_str "true" "true" (Jsonw.to_string (Jsonw.Bool true));
  check_str "int" "42" (Jsonw.to_string (Jsonw.Int 42));
  check_str "string" "\"hi\"" (Jsonw.to_string (Jsonw.String "hi"))

let test_json_escaping () =
  check_str "quotes" "\"a\\\"b\"" (Jsonw.to_string (Jsonw.String "a\"b"));
  check_str "newline" "\"a\\nb\"" (Jsonw.to_string (Jsonw.String "a\nb"));
  check_str "control" "\"\\u0001\"" (Jsonw.to_string (Jsonw.String "\001"))

let test_json_structures () =
  let v = Jsonw.Obj [ ("xs", Jsonw.List [ Jsonw.Int 1; Jsonw.Int 2 ]); ("ok", Jsonw.Bool false) ] in
  check_str "object" "{\"xs\":[1,2],\"ok\":false}" (Jsonw.to_string v)

let test_json_nonfinite_floats () =
  check_str "nan" "\"nan\"" (Jsonw.to_string (Jsonw.Float Float.nan));
  check_str "inf" "\"inf\"" (Jsonw.to_string (Jsonw.Float Float.infinity))

(* -------------------------------------------------------------------- *)
(* JSON parsing                                                           *)

module Jsonp = Mcm_util.Jsonp

let test_parse_scalars () =
  check "null" true (Jsonp.parse "null" = Ok Jsonw.Null);
  check "true" true (Jsonp.parse "true" = Ok (Jsonw.Bool true));
  check "false" true (Jsonp.parse "false" = Ok (Jsonw.Bool false));
  check "int" true (Jsonp.parse "42" = Ok (Jsonw.Int 42));
  check "negative int" true (Jsonp.parse "-7" = Ok (Jsonw.Int (-7)));
  check "float" true (Jsonp.parse "2.5" = Ok (Jsonw.Float 2.5));
  check "exponent" true (Jsonp.parse "1e3" = Ok (Jsonw.Float 1000.));
  check "string" true (Jsonp.parse "\"hi\"" = Ok (Jsonw.String "hi"))

let test_parse_structures () =
  check "empty array" true (Jsonp.parse "[]" = Ok (Jsonw.List []));
  check "empty object" true (Jsonp.parse "{}" = Ok (Jsonw.Obj []));
  check "nested" true
    (Jsonp.parse "{\"a\": [1, 2], \"b\": {\"c\": null}}"
    = Ok
        (Jsonw.Obj
           [
             ("a", Jsonw.List [ Jsonw.Int 1; Jsonw.Int 2 ]);
             ("b", Jsonw.Obj [ ("c", Jsonw.Null) ]);
           ]));
  check "whitespace tolerated" true
    (Jsonp.parse "  [ 1 ,\n 2 ]  " = Ok (Jsonw.List [ Jsonw.Int 1; Jsonw.Int 2 ]))

let test_parse_escapes () =
  check "escaped quote" true (Jsonp.parse "\"a\\\"b\"" = Ok (Jsonw.String "a\"b"));
  check "newline" true (Jsonp.parse "\"a\\nb\"" = Ok (Jsonw.String "a\nb"));
  check "unicode" true (Jsonp.parse "\"\\u0041\"" = Ok (Jsonw.String "A"));
  check "two-byte unicode" true (Jsonp.parse "\"\\u00e9\"" = Ok (Jsonw.String "\xc3\xa9"))

let test_parse_errors () =
  List.iter
    (fun src -> check ("rejects " ^ src) true (Result.is_error (Jsonp.parse src)))
    [ ""; "{"; "[1,"; "\"unterminated"; "tru"; "1 2"; "{\"a\" 1}"; "{1: 2}"; "[1,]x" ]

let test_json_accessors () =
  let v = Jsonw.Obj [ ("n", Jsonw.Int 3); ("f", Jsonw.Float 1.5); ("s", Jsonw.String "x") ] in
  check "member" true (Jsonp.member "n" v = Some (Jsonw.Int 3));
  check "missing member" true (Jsonp.member "zz" v = None);
  check "to_float of int" true (Jsonp.to_float (Jsonw.Int 3) = Some 3.);
  check "to_float of float" true (Jsonp.to_float (Jsonw.Float 1.5) = Some 1.5);
  check "to_int" true (Jsonp.to_int (Jsonw.Int 3) = Some 3);
  check "to_int rejects float" true (Jsonp.to_int (Jsonw.Float 1.5) = None);
  check "to_string_opt" true (Jsonp.to_string_opt (Jsonw.String "x") = Some "x");
  check "to_list of non-list" true (Jsonp.to_list Jsonw.Null = [])

(* -------------------------------------------------------------------- *)
(* Properties                                                             *)

let prop_permute_bijective =
  QCheck.Test.make ~count:200 ~name:"coprime multiplication permutes [0,n)"
    QCheck.(pair (int_range 1 97) (int_range 1 96))
    (fun (n, p0) ->
      let p = 1 + (p0 mod n) in
      QCheck.assume (Numbers.coprime p n);
      let image = List.init n (fun v -> Numbers.permute ~p ~n v) in
      List.sort_uniq compare image = List.init n (fun i -> i))

let prop_gcd_divides =
  QCheck.Test.make ~count:500 ~name:"gcd divides both arguments"
    QCheck.(pair (int_range 1 10_000) (int_range 1 10_000))
    (fun (a, b) ->
      let g = Numbers.gcd a b in
      g > 0 && a mod g = 0 && b mod g = 0)

let prop_prng_int_in_range =
  QCheck.Test.make ~count:500 ~name:"Prng.int stays in range"
    QCheck.(pair int (int_range 1 1_000_000))
    (fun (seed, n) ->
      let g = Prng.create seed in
      let v = Prng.int g n in
      v >= 0 && v < n)

let prop_json_roundtrip_ints =
  QCheck.Test.make ~count:200 ~name:"ints print as themselves" QCheck.int (fun i ->
      Jsonw.to_string (Jsonw.Int i) = string_of_int i)

(* A generator of arbitrary JSON values for the write-then-parse
   round-trip property. Floats include the non-finite values (written as
   the strings "nan"/"inf"/"-inf" — the store's codecs rely on that) and
   strings include control characters, which the writer must escape as
   \uXXXX for the parser to recover. *)
let arbitrary_json =
  let open QCheck.Gen in
  let any_float =
    frequency
      [
        (6, float_range (-1e6) 1e6);
        (2, float);
        (1, oneofl [ Float.nan; Float.infinity; Float.neg_infinity; -0.; 1e-310 ]);
      ]
  in
  let json_string =
    string_size
      ~gen:(frequency [ (8, printable); (1, map Char.chr (int_bound 0x1f)) ])
      (int_bound 12)
  in
  let scalar =
    oneof
      [
        return Jsonw.Null;
        map (fun b -> Jsonw.Bool b) bool;
        map (fun i -> Jsonw.Int i) small_signed_int;
        map (fun f -> Jsonw.Float f) any_float;
        map (fun s -> Jsonw.String s) json_string;
      ]
  in
  let value =
    sized (fun budget ->
        fix
          (fun self budget ->
            if budget <= 0 then scalar
            else
              frequency
                [
                  (3, scalar);
                  (1, map (fun items -> Jsonw.List items) (list_size (int_bound 4) (self (budget / 2))));
                  ( 1,
                    map
                      (fun kvs -> Jsonw.Obj kvs)
                      (list_size (int_bound 4)
                         (pair (string_size ~gen:printable (int_bound 8)) (self (budget / 2)))) );
                ])
          budget)
  in
  QCheck.make ~print:Jsonw.to_string value

let prop_json_write_parse_roundtrip =
  QCheck.Test.make ~count:300 ~name:"write/parse round-trip" arbitrary_json (fun v ->
      match Mcm_util.Jsonp.parse (Jsonw.to_string v) with
      | Ok v' ->
          (* Floats that print without fraction re-parse as ints, and
             non-finite floats are written as the strings "nan"/"inf"/
             "-inf"; compare through a normalising reprint. *)
          Jsonw.to_string v' = Jsonw.to_string v
          ||
          let norm = function
            | Jsonw.Int i -> Jsonw.Float (float_of_int i)
            | Jsonw.Float f when Float.is_nan f -> Jsonw.String "nan"
            | Jsonw.Float f when f = Float.infinity -> Jsonw.String "inf"
            | Jsonw.Float f when f = Float.neg_infinity -> Jsonw.String "-inf"
            | x -> x
          in
          let rec eq a b =
            match (norm a, norm b) with
            | Jsonw.List xs, Jsonw.List ys -> List.length xs = List.length ys && List.for_all2 eq xs ys
            | Jsonw.Obj xs, Jsonw.Obj ys ->
                List.length xs = List.length ys
                && List.for_all2 (fun (k, x) (l, y) -> k = l && eq x y) xs ys
            | a, b -> a = b
          in
          eq v v'
      | Error _ -> false)

(* Differential property: the unboxed Prng.Raw kernel must draw the
   exact stream of the boxed generator, op for op — the compiled
   instance kernel's results are only bit-identical to the interpreter's
   because of this. *)
type raw_op = Draw | FloatDraw of float | Bernoulli of float | Exponential of float | Split

let arbitrary_raw_ops =
  let open QCheck.Gen in
  let op =
    frequency
      [
        (4, return Draw);
        (2, map (fun b -> FloatDraw b) (float_range 0.001 1000.));
        (2, map (fun p -> Bernoulli p) (float_range 0. 1.));
        (2, map (fun m -> Exponential m) (float_range 0. 50.));
        (1, return Split);
      ]
  in
  QCheck.make
    ~print:(fun (seed, ops) ->
      Printf.sprintf "seed %d, %d ops" seed (List.length ops))
    (pair int (list_size (int_range 1 64) op))

let prop_prng_raw_differential =
  QCheck.Test.make ~count:300 ~name:"Prng.Raw draws the boxed generator's exact stream"
    arbitrary_raw_ops
    (fun (seed, ops) ->
      let g = Prng.create seed in
      let st = Prng.Raw.make () in
      Prng.Raw.load st g;
      List.for_all
        (fun op ->
          match op with
          | Draw -> Prng.next_int64 g = Prng.Raw.next_int64 st
          | FloatDraw b -> Prng.float g b = Prng.Raw.float st b
          | Bernoulli p -> Prng.bernoulli g p = Prng.Raw.bernoulli st p
          | Exponential m -> Prng.exponential g m = Prng.Raw.exponential st m
          | Split ->
              let child_boxed = Prng.split g in
              let child_raw = Prng.Raw.make () in
              Prng.Raw.split_into ~child:child_raw ~parent:st;
              (* The children must agree with each other, and consuming
                 them must not disturb the parents' agreement. *)
              Prng.next_int64 child_boxed = Prng.Raw.next_int64 child_raw
              && Prng.next_int64 g = Prng.Raw.next_int64 st)
        ops)

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "split" `Quick test_prng_split_independent;
          Alcotest.test_case "copy" `Quick test_prng_copy;
          Alcotest.test_case "int range" `Quick test_prng_int_range;
          Alcotest.test_case "int invalid" `Quick test_prng_int_invalid;
          Alcotest.test_case "int covers" `Quick test_prng_int_covers;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "bernoulli extremes" `Quick test_prng_bernoulli_extremes;
          Alcotest.test_case "bernoulli rate" `Quick test_prng_bernoulli_rate;
          Alcotest.test_case "exponential" `Quick test_prng_exponential;
          Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutes;
          Alcotest.test_case "pick" `Quick test_prng_pick;
          Alcotest.test_case "mix" `Quick test_prng_mix_deterministic;
        ] );
      ( "numbers",
        [
          Alcotest.test_case "gcd" `Quick test_gcd;
          Alcotest.test_case "coprime" `Quick test_coprime;
          Alcotest.test_case "random coprime" `Quick test_random_coprime;
          Alcotest.test_case "permute bijection" `Quick test_permute_bijection;
          Alcotest.test_case "permute non-coprime" `Quick test_permute_not_bijection_when_not_coprime;
          Alcotest.test_case "ceil_div" `Quick test_ceil_div;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "short rows padded" `Quick test_table_pads_short_rows;
          Alcotest.test_case "long rows rejected" `Quick test_table_rejects_long_rows;
          Alcotest.test_case "cell formatting" `Quick test_table_cells;
        ] );
      ( "json",
        [
          Alcotest.test_case "scalars" `Quick test_json_scalars;
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "structures" `Quick test_json_structures;
          Alcotest.test_case "non-finite floats" `Quick test_json_nonfinite_floats;
        ] );
      ( "json-parse",
        [
          Alcotest.test_case "scalars" `Quick test_parse_scalars;
          Alcotest.test_case "structures" `Quick test_parse_structures;
          Alcotest.test_case "escapes" `Quick test_parse_escapes;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_permute_bijective; prop_gcd_divides; prop_prng_int_in_range;
            prop_json_roundtrip_ints; prop_json_write_parse_roundtrip;
            prop_prng_raw_differential;
          ]
      );
    ]
