(* First-class memory scopes, end to end.

   - MP/LB/SB at workgroup vs device scope certified through BOTH
     oracle engines: device-scope fences synchronize under every
     layout; workgroup-scope fences synchronize only intra-workgroup,
     so the narrowed tests flip from conformance to weak mutant when
     the threads land in distinct workgroups.
   - The Scope_dropped bug injection is caught by device-scope mutants
     run inter-workgroup and is invisible intra-workgroup.
   - interpreter ≡ kernel ≡ schema over random SCOPED programs:
     bit-identical outcomes and PRNG draw consumption.
   - Fsn (fence scope narrowing) mutates with stable positional labels
     and admits through the oracle gate under cross-check.
   - --shard slices of candidate enumeration are deterministic,
     pairwise disjoint and union-complete.
   - Scoped programs survive print ∘ parse with their scopes. *)

module Prng = Mcm_util.Prng
module Scope = Mcm_memmodel.Scope
module Model = Mcm_memmodel.Model
module Litmus = Mcm_litmus.Litmus
module Instr = Mcm_litmus.Instr
module Parse = Mcm_litmus.Parse
module Library = Mcm_litmus.Library
module Mutator = Mcm_core.Mutator
module Profile = Mcm_gpu.Profile
module Bug = Mcm_gpu.Bug
module Instance = Mcm_gpu.Instance
module Kernel = Mcm_gpu.Kernel
module Engine = Mcm_oracle.Engine
module Certify = Mcm_oracle.Certify
module Outcome = Mcm_oracle.Outcome
module Shape = Mcm_corpus.Shape
module Admit = Mcm_corpus.Admit
module Corpus = Mcm_corpus.Corpus

let check = Alcotest.(check bool)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* Narrow every fence of a test to workgroup scope. *)
let narrowed t =
  {
    t with
    Litmus.name = t.Litmus.name ^ "-wg";
    threads =
      Array.map
        (List.map (fun i ->
             if Instr.is_fence i then Instr.with_scope Scope.Workgroup i else i))
        t.Litmus.threads;
  }

(* ------------------------------------------------------------------ *)
(* MP/LB/SB at wg vs device scope, through both oracle engines.        *)

let scoped_suite = [ Library.mp_relacq; Library.lb_relacq; Library.sb_relacq_rmw ]

let test_certified_at_both_scopes () =
  List.iter
    (fun engine ->
      let en = Engine.name engine in
      List.iter
        (fun t ->
          (* Device-scope fences reach every workgroup: the target stays
             forbidden under both layouts. *)
          List.iter
            (fun layout ->
              let v = Certify.conformance ~engine ~layout t in
              check
                (Printf.sprintf "%s/%s device-scope conformance (%s)" en t.Litmus.name
                   (Scope.layout_name layout))
                true v.Certify.ok)
            [ Scope.Inter; Scope.Intra ];
          let wg = narrowed t in
          (* Workgroup-scope fences still synchronize when all threads
             share workgroup 0... *)
          let intra = Certify.conformance ~engine ~layout:Scope.Intra wg in
          check (Printf.sprintf "%s/%s wg-scope conformance intra" en wg.Litmus.name) true
            intra.Certify.ok;
          (* ...but not across workgroups: the target becomes reachable
             weak behaviour, i.e. a certified mutant. *)
          let inter = Certify.conformance ~engine ~layout:Scope.Inter wg in
          check (Printf.sprintf "%s/%s wg-scope conformance inter fails" en wg.Litmus.name)
            false inter.Certify.ok;
          let m = Certify.mutant ~engine ~layout:Scope.Inter wg in
          check (Printf.sprintf "%s/%s wg-scope mutant inter" en wg.Litmus.name) true
            m.Certify.ok)
        scoped_suite)
    Engine.all

let test_engines_agree_on_scoped_verdicts () =
  List.iter
    (fun t ->
      List.iter
        (fun layout ->
          List.iter
            (fun certify ->
              let ve = certify ~engine:Engine.Enumerate ~layout t in
              let vp = certify ~engine:Engine.Propagate ~layout t in
              check
                (Printf.sprintf "engines agree on %s (%s)" t.Litmus.name
                   (Scope.layout_name layout))
                true
                (ve.Certify.ok = vp.Certify.ok && ve.Certify.detail = vp.Certify.detail))
            [
              (fun ~engine ~layout t -> Certify.conformance ~engine ~layout t);
              (fun ~engine ~layout t -> Certify.mutant ~engine ~layout t);
            ])
        [ Scope.Inter; Scope.Intra ])
    (scoped_suite @ List.map narrowed scoped_suite)

(* The all-device-scope corner IS the pre-scope semantics: layout must
   not matter when no instruction is workgroup-scoped. *)
let test_device_scope_layout_invariant () =
  List.iter
    (fun engine ->
      List.iter
        (fun t ->
          let inter = Outcome.elements (Outcome.allowed ~engine ~layout:Scope.Inter t.Litmus.model t) in
          let intra = Outcome.elements (Outcome.allowed ~engine ~layout:Scope.Intra t.Litmus.model t) in
          let default = Outcome.elements (Outcome.allowed ~engine t.Litmus.model t) in
          check (Printf.sprintf "%s layout-invariant" t.Litmus.name) true
            (inter = intra && inter = default))
        (Library.all |> List.filter (fun t -> Litmus.nthreads t <= 3)))
    Engine.all

(* ------------------------------------------------------------------ *)
(* Scope_dropped: caught inter-workgroup, invisible intra-workgroup.   *)

let wild =
  {
    Instance.instr_latency_ns = 2.;
    issue_jitter = 0.5;
    p_ooo = 0.35;
    vis_delay_mean_ns = 40.;
    p_stale = 0.35;
    stale_mean_ns = 40.;
  }

let kills ~layout ~bugs test n =
  let g = Prng.create 7 in
  let count = ref 0 in
  for _ = 1 to n do
    let starts = Array.init (Litmus.nthreads test) (fun _ -> Prng.float g 30.) in
    let o = Instance.run ~layout ~prng:(Prng.split g) ~weak:wild ~bugs ~test ~starts () in
    if test.Litmus.target o then incr count
  done;
  !count

let test_scope_drop_visibility () =
  let bug = Bug.effect_of [ Bug.Scope_dropped 1.0 ] in
  List.iter
    (fun t ->
      Alcotest.(check int)
        (Printf.sprintf "%s correct inter-workgroup without the bug" t.Litmus.name)
        0
        (kills ~layout:Scope.Inter ~bugs:Bug.none t 3000);
      (* Demoted device fences stop synchronizing across workgroups:
         the device-scope mutant catches the bug. *)
      check
        (Printf.sprintf "%s catches Scope_dropped inter-workgroup" t.Litmus.name)
        true
        (kills ~layout:Scope.Inter ~bugs:bug t 3000 > 0);
      (* All threads in one workgroup: workgroup scope is enough, the
         demotion changes nothing — the bug is invisible. *)
      Alcotest.(check int)
        (Printf.sprintf "%s blind to Scope_dropped intra-workgroup" t.Litmus.name)
        0
        (kills ~layout:Scope.Intra ~bugs:bug t 3000))
    (* MP and SB: their weak behaviours come from store-visibility
       delay, which a (de-scoped, hence inactive) fence stops capping.
       LB's weakness is adjacent out-of-order issue, which a fence
       blocks positionally whether or not it synchronizes — so LB
       cannot see this bug operationally. *)
    [ Library.mp_relacq; Library.sb_relacq_rmw ]

(* ------------------------------------------------------------------ *)
(* interpreter ≡ kernel ≡ schema over random scoped programs.          *)

let arbitrary_scoped_program =
  let open QCheck.Gen in
  let gen =
    let* nthreads = int_range 1 3 in
    let* nlocs = int_range 1 2 in
    let value_counter = ref 0 in
    let gen_instr tid_regs =
      let* choice = int_range 0 3 in
      let* loc = int_range 0 (nlocs - 1) in
      let* scope = oneofl [ Scope.Workgroup; Scope.Device ] in
      match choice with
      | 0 ->
          let reg = !tid_regs in
          incr tid_regs;
          return (Instr.load ~scope ~reg ~loc ())
      | 1 ->
          incr value_counter;
          return (Instr.store ~scope ~loc ~value:!value_counter ())
      | 2 ->
          let reg = !tid_regs in
          incr tid_regs;
          incr value_counter;
          return (Instr.rmw ~scope ~reg ~loc ~value:!value_counter ())
      | _ -> return (Instr.fence ~scope ())
    in
    let gen_thread =
      let* len = int_range 1 4 in
      let regs = ref 0 in
      let rec go n acc =
        if n = 0 then return (List.rev acc) else gen_instr regs >>= fun i -> go (n - 1) (i :: acc)
      in
      go len []
    in
    let rec threads n acc =
      if n = 0 then return (Array.of_list (List.rev acc))
      else gen_thread >>= fun t -> threads (n - 1) (t :: acc)
    in
    let* ts = threads nthreads [] in
    return
      {
        Litmus.name = "random-scoped";
        family = "random";
        model = Model.Relacq_sc_per_location;
        threads = ts;
        nlocs;
        target = (fun _ -> false);
        target_desc = "-";
      }
  in
  QCheck.make ~print:Litmus.to_string gen

let profiles = Array.of_list Profile.all

let random_config g =
  let p = profiles.(Prng.int g (Array.length profiles)) in
  let weak = Instance.effective_params p ~amplification:(Prng.float g 40.) in
  let bugs =
    match Prng.int g 3 with
    | 0 -> Bug.none
    | 1 -> Bug.effect_of [ Bug.Scope_dropped (Prng.float g 1.) ]
    | _ -> Bug.effect_of [ Bug.Fence_weakened (Prng.float g 1.); Bug.Scope_dropped (Prng.float g 1.) ]
  in
  let layout = if Prng.int g 2 = 0 then Scope.Inter else Scope.Intra in
  (weak, bugs, layout)

let prop_three_engines_bit_identical =
  QCheck.Test.make ~count:300 ~name:"interpreter == kernel == schema on scoped programs"
    (QCheck.pair arbitrary_scoped_program QCheck.small_int)
    (fun (test, seed) ->
      QCheck.assume (Litmus.well_formed test = Ok ());
      let g = Prng.create seed in
      let weak, bugs, layout = random_config g in
      let kernel = Kernel.compile ~layout ~weak ~bugs ~test () in
      let ws = Kernel.workspace kernel in
      let schema = Kernel.Schema.compile ~layout ~variants:[| (weak, bugs, test) |] () in
      let sws = Kernel.Schema.workspace schema in
      let ok = ref true in
      for _ = 1 to 20 do
        let starts = Array.init (Litmus.nthreads test) (fun _ -> Prng.float g 60.) in
        let g_int = Prng.of_int64 (Prng.state g) in
        let g_ker = Prng.of_int64 (Prng.state g) in
        let g_sch = Prng.of_int64 (Prng.state g) in
        ignore (Prng.next_int64 g);
        let o_int = Instance.run ~layout ~prng:g_int ~weak ~bugs ~test ~starts () in
        let o_ker = Kernel.run kernel ws ~prng:g_ker ~starts in
        if o_int <> o_ker then begin
          Printf.eprintf "interp/kernel mismatch (%s) on:\n%s\n%!"
            (Scope.layout_name layout) (Litmus.to_string test);
          ok := false
        end;
        let o_sch = Kernel.Schema.run schema sws ~variant:0 ~prng:g_sch ~starts in
        if o_int <> o_sch then begin
          Printf.eprintf "interp/schema mismatch (%s) on:\n%s\n%!"
            (Scope.layout_name layout) (Litmus.to_string test);
          ok := false
        end;
        if Prng.state g_int <> Prng.state g_ker || Prng.state g_int <> Prng.state g_sch then begin
          Printf.eprintf "draw-count mismatch on:\n%s\n%!" (Litmus.to_string test);
          ok := false
        end
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Fsn: scope narrowing with stable positional labels, through          *)
(* oracle admission.                                                    *)

let test_fsn_labels () =
  let variants = Mutator.apply_op Mutator.Fsn Library.mp_relacq.Litmus.threads in
  Alcotest.(check (list string))
    "one variant per device-scope fence, positional labels"
    [ "t0.1"; "t1.1" ] (List.map fst variants);
  List.iter
    (fun (label, threads) ->
      let narrowed_fences =
        Array.to_list threads
        |> List.concat_map (List.filter (fun i -> Instr.is_fence i && Instr.scope i = Scope.Workgroup))
      in
      check (label ^ " narrows exactly one fence") true (List.length narrowed_fences = 1))
    variants;
  (* Workgroup-scope fences are already narrow: nothing to do. *)
  Alcotest.(check int)
    "fixpoint on fully narrowed test" 0
    (List.length (Mutator.apply_op Mutator.Fsn (narrowed Library.mp_relacq).Litmus.threads))

let test_fsn_admission () =
  let entries, stats =
    Admit.operator_mutants ~cross_check:true ~ops:[ Mutator.Fsn ] [ Library.mp_relacq ]
  in
  Alcotest.(check int) "no engine disagreements" 0 stats.Admit.disagreements;
  Alcotest.(check int) "no uncertified" 0 stats.Admit.uncertified;
  check "narrowed variants admitted" true (List.length entries > 0);
  List.iter
    (fun (e : Admit.entry) ->
      check "entry is a weak mutant" true (e.Admit.polarity = Admit.Mutant_weak);
      check "entry records the operator" true (e.Admit.op = Some "fsn");
      check "entry name carries the positional label" true
        (contains ~needle:"fsn-t" e.Admit.test.Litmus.name);
      check "skeleton carries a workgroup fence" true (contains ~needle:"Fw" e.Admit.skeleton))
    entries

(* ------------------------------------------------------------------ *)
(* Sharding: deterministic, disjoint, union-complete.                   *)

let shard_shape =
  { Shape.threads = 2; events = 4; locs = 2; rmw = false; fence = true; wg_fence = true }

let entry_id (e : Admit.entry) =
  (e.Admit.skeleton, Admit.polarity_name e.Admit.polarity, e.Admit.test.Litmus.name)

let test_shard_partition () =
  let model = Model.Sc_per_location in
  let full, _ = Admit.generated ~model shard_shape in
  let n = 3 in
  let shards = List.init n (fun k -> fst (Admit.generated ~shard:(k, n) ~model shard_shape)) in
  (* Deterministic: a rerun of a shard is identical. *)
  let again = fst (Admit.generated ~shard:(1, n) ~model shard_shape) in
  check "shard rerun identical" true
    (List.map entry_id (List.nth shards 1) = List.map entry_id again);
  (* Disjoint: no admitted entry appears in two shards. *)
  let ids = List.map (fun es -> List.map entry_id es) shards in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i < j then
            check
              (Printf.sprintf "shards %d and %d disjoint" i j)
              true
              (not (List.exists (fun x -> List.mem x b) a)))
        ids)
    ids;
  (* Union-complete: the shards together admit exactly the full run. *)
  let union = List.sort compare (List.concat ids) in
  let full_ids = List.sort compare (List.map entry_id full) in
  check "shard union equals full run" true (union = full_ids)

let test_shard_validation () =
  let model = Model.Sc_per_location in
  List.iter
    (fun shard ->
      Alcotest.check_raises "bad shard rejected"
        (Invalid_argument
           (Printf.sprintf "Admit: bad shard %d/%d (want 0 <= index < count)" (fst shard)
              (snd shard)))
        (fun () -> ignore (Admit.generated ~shard ~model shard_shape)))
    [ (3, 3); (-1, 2); (0, 0) ]

let test_shard_in_corpus_meta () =
  let meta =
    {
      Corpus.default_meta with
      Corpus.shape = shard_shape;
      model = Model.Sc_per_location;
      ops = [];
      shard = Some (1, 3);
    }
  in
  let c = Corpus.generate meta in
  let s = Corpus.to_string c in
  check "serialized meta records the shard" true
    (contains ~needle:"\"shard\":{\"index\":1,\"of\":3}" s);
  (match Corpus.of_string s with
  | Ok c' ->
      check "shard survives the round-trip" true (c'.Corpus.meta.Corpus.shard = Some (1, 3));
      check "round-trip reproduces the bytes" true (Corpus.to_string c' = s)
  | Error e -> Alcotest.fail e);
  (* The shard is part of the content key: a shard's corpus can never
     masquerade as the full corpus. *)
  let full = Corpus.generate { meta with Corpus.shard = None } in
  check "sharded and full corpora have distinct keys" true (Corpus.key c <> Corpus.key full)

let test_pre_scope_corpus_refused () =
  let meta =
    { Corpus.default_meta with Corpus.shape = shard_shape; model = Model.Sc_per_location; ops = [] }
  in
  let s = Corpus.to_string (Corpus.generate meta) in
  let needle = "\"formatVersion\":2" in
  check "format version serialized" true (contains ~needle s);
  let i =
    let rec find i = if String.sub s i (String.length needle) = needle then i else find (i + 1) in
    find 0
  in
  let tampered =
    String.sub s 0 i ^ "\"formatVersion\":1"
    ^ String.sub s (i + String.length needle) (String.length s - i - String.length needle)
  in
  match Corpus.of_string tampered with
  | Ok _ -> Alcotest.fail "pre-scope formatVersion accepted"
  | Error e ->
      check "error names both format versions" true
        (contains ~needle:"formatVersion 1" e && contains ~needle:"formatVersion 2" e)

(* ------------------------------------------------------------------ *)
(* Scoped print ∘ parse round-trips.                                    *)

let test_scoped_round_trip () =
  List.iter
    (fun t ->
      let src = Parse.to_source t in
      match Parse.parse src with
      | Error e -> Alcotest.fail (t.Litmus.name ^ ": " ^ e)
      | Ok back ->
          (* Structural thread equality covers the scopes: Instr.t
             carries the scope, so a dropped ` wg` token would differ. *)
          check (t.Litmus.name ^ " threads survive print/parse") true
            (back.Litmus.threads = t.Litmus.threads))
    (scoped_suite @ List.map narrowed scoped_suite)

let () =
  Alcotest.run "scope"
    [
      ( "oracle",
        [
          Alcotest.test_case "MP/LB/SB at wg vs device scope" `Slow test_certified_at_both_scopes;
          Alcotest.test_case "engines agree on scoped verdicts" `Slow
            test_engines_agree_on_scoped_verdicts;
          Alcotest.test_case "device scope is layout-invariant" `Slow
            test_device_scope_layout_invariant;
        ] );
      ( "bug",
        [ Alcotest.test_case "Scope_dropped visibility" `Slow test_scope_drop_visibility ] );
      ( "engines",
        [ QCheck_alcotest.to_alcotest ~long:true prop_three_engines_bit_identical ] );
      ( "mutator",
        [
          Alcotest.test_case "fsn labels" `Quick test_fsn_labels;
          Alcotest.test_case "fsn admission" `Slow test_fsn_admission;
        ] );
      ( "shard",
        [
          Alcotest.test_case "partition" `Slow test_shard_partition;
          Alcotest.test_case "validation" `Quick test_shard_validation;
          Alcotest.test_case "corpus meta" `Slow test_shard_in_corpus_meta;
          Alcotest.test_case "pre-scope corpus refused" `Slow test_pre_scope_corpus_refused;
        ] );
      ( "syntax",
        [ Alcotest.test_case "scoped round trip" `Quick test_scoped_round_trip ] );
    ]
