(* Tests for Mcm_util.Pool: the fixed-size domain pool every parallel
   code path in the reproduction runs on. The properties mirror the
   pool's contract — map_array/map_reduce agree with the sequential
   loop/fold for any domain count (including non-commutative folds), a
   task exception neither poisons the pool nor loses the remaining
   tasks, and pools degrade gracefully to the serial loop. *)

module Pool = Mcm_util.Pool

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* -------------------------------------------------------------------- *)
(* Unit tests                                                             *)

let test_map_array_identity () =
  Pool.with_pool ~domains:4 (fun p ->
      let a = Pool.map_array p ~n:1000 ~f:(fun i -> i * i) in
      check_int "length" 1000 (Array.length a);
      Array.iteri (fun i v -> check_int "slot i holds f i" (i * i) v) a)

let test_map_array_empty () =
  Pool.with_pool ~domains:4 (fun p ->
      check_int "n = 0 gives [||]" 0 (Array.length (Pool.map_array p ~n:0 ~f:(fun i -> i))))

let test_map_reduce_sum () =
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun p ->
          let total = Pool.map_reduce p ~n:500 ~map:Fun.id ~fold:( + ) ~init:0 in
          check_int (Printf.sprintf "sum at %d domains" domains) (500 * 499 / 2) total))
    [ 1; 2; 3; 4; 8 ]

let test_map_reduce_fold_order () =
  (* String concatenation is not commutative: equality with the serial
     fold proves results are folded in index order, not arrival order. *)
  let expected = String.concat "" (List.init 100 string_of_int) in
  Pool.with_pool ~domains:8 (fun p ->
      let s = Pool.map_reduce p ~n:100 ~map:string_of_int ~fold:( ^ ) ~init:"" in
      Alcotest.(check string) "index-order fold" expected s)

let test_exception_reraised_and_pool_survives () =
  Pool.with_pool ~domains:4 (fun p ->
      (match Pool.map_array p ~n:64 ~f:(fun i -> if i mod 7 = 3 then failwith "boom" else i) with
      | exception Failure msg -> check "failure propagated" true (msg = "boom")
      | _ -> Alcotest.fail "expected the task exception to re-raise");
      (* The same pool keeps scheduling correctly afterwards. *)
      let a = Pool.map_array p ~n:64 ~f:(fun i -> i + 1) in
      check_int "pool survives" 64 (Array.fold_left max 0 a))

let test_lowest_index_exception_wins () =
  (* Whichever domain fails first in wall-clock time, the caller sees the
     lowest-indexed task's exception — determinism extends to errors. *)
  Pool.with_pool ~domains:4 (fun p ->
      match
        Pool.map_array p ~n:50 ~f:(fun i -> if i >= 10 then failwith (string_of_int i) else i)
      with
      | exception Failure msg -> Alcotest.(check string) "first failing index" "10" msg
      | _ -> Alcotest.fail "expected a failure")

let test_pool_reuse_across_jobs () =
  Pool.with_pool ~domains:3 (fun p ->
      for round = 1 to 20 do
        let total = Pool.map_reduce p ~n:round ~map:Fun.id ~fold:( + ) ~init:0 in
        check_int "round total" (round * (round - 1) / 2) total
      done)

let test_domains_accessor () =
  Pool.with_pool ~domains:5 (fun p -> check_int "domains" 5 (Pool.domains p));
  Pool.with_pool ~domains:0 (fun p -> check_int "clamped to 1" 1 (Pool.domains p));
  check "default >= 1" true (Pool.default_domains () >= 1)

let test_shutdown_idempotent_and_degrades () =
  let p = Pool.create ~domains:4 () in
  Pool.shutdown p;
  Pool.shutdown p;
  (* A shut-down pool still runs jobs, in the caller alone. *)
  let a = Pool.map_array p ~n:10 ~f:(fun i -> 2 * i) in
  check_int "runs after shutdown" 18 a.(9)

let test_default_chunk () =
  Pool.with_pool ~domains:4 (fun p ->
      check_int "four claims per domain" 62 (Pool.default_chunk p ~n:1000);
      check_int "clamped to 1" 1 (Pool.default_chunk p ~n:3);
      check_int "n = 0 still 1" 1 (Pool.default_chunk p ~n:0))

let test_chunk_does_not_change_results () =
  (* The chunk size is purely a lock-traffic knob: any value, including
     degenerate ones, must produce the identity result. *)
  let expected = Array.init 257 (fun i -> (i * 31) mod 19) in
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun p ->
          List.iter
            (fun chunk ->
              let a = Pool.map_array ~chunk p ~n:257 ~f:(fun i -> (i * 31) mod 19) in
              check
                (Printf.sprintf "chunk %d at %d domains" chunk domains)
                true (a = expected))
            [ 1; 2; 7; 64; 257; 100000; 0; -5 ]))
    [ 1; 2; 4 ]

let test_chunked_exception_still_lowest_index () =
  Pool.with_pool ~domains:4 (fun p ->
      match
        Pool.map_array ~chunk:3 p ~n:50 ~f:(fun i -> if i >= 10 then failwith (string_of_int i) else i)
      with
      | exception Failure msg -> Alcotest.(check string) "first failing index" "10" msg
      | _ -> Alcotest.fail "expected a failure")

let test_workers_actually_used () =
  (* With worker domains present, tasks that block until another task
     runs concurrently would deadlock a serial executor; instead of
     relying on timing, just record which domains executed tasks. On a
     single-core box all tasks may still land on one domain, so assert
     only that every task ran and the set is non-empty. *)
  Pool.with_pool ~domains:4 (fun p ->
      let ids = Pool.map_array p ~n:200 ~f:(fun _ -> (Domain.self () :> int)) in
      check "every task ran on some domain" true (Array.length ids = 200))

(* -------------------------------------------------------------------- *)
(* Properties                                                             *)

let domains_gen = QCheck.Gen.int_range 1 8

let prop_map_reduce_equals_fold =
  QCheck.Test.make ~count:50 ~name:"map_reduce == sequential fold (any domains)"
    QCheck.(pair (make domains_gen) (small_list small_int))
    (fun (domains, xs) ->
      let arr = Array.of_list xs in
      let n = Array.length arr in
      let seq = Array.fold_left (fun acc v -> (31 * acc) + v) 7 arr in
      Pool.with_pool ~domains (fun p ->
          Pool.map_reduce p ~n ~map:(fun i -> arr.(i)) ~fold:(fun acc v -> (31 * acc) + v) ~init:7
          = seq))

let prop_map_array_equals_init =
  QCheck.Test.make ~count:50 ~name:"map_array == Array.init (any domains)"
    QCheck.(pair (make domains_gen) small_nat)
    (fun (domains, n) ->
      let f i = (i * 17) mod 13 in
      Pool.with_pool ~domains (fun p -> Pool.map_array p ~n ~f = Array.init n f))

let () =
  Alcotest.run "pool"
    [
      ( "unit",
        [
          Alcotest.test_case "map_array identity" `Quick test_map_array_identity;
          Alcotest.test_case "map_array empty" `Quick test_map_array_empty;
          Alcotest.test_case "map_reduce sum" `Quick test_map_reduce_sum;
          Alcotest.test_case "fold order" `Quick test_map_reduce_fold_order;
          Alcotest.test_case "exception survives" `Quick test_exception_reraised_and_pool_survives;
          Alcotest.test_case "lowest-index exception" `Quick test_lowest_index_exception_wins;
          Alcotest.test_case "pool reuse" `Quick test_pool_reuse_across_jobs;
          Alcotest.test_case "domains accessor" `Quick test_domains_accessor;
          Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent_and_degrades;
          Alcotest.test_case "default chunk" `Quick test_default_chunk;
          Alcotest.test_case "chunk result-invariant" `Quick test_chunk_does_not_change_results;
          Alcotest.test_case "chunked exception" `Quick test_chunked_exception_still_lowest_index;
          Alcotest.test_case "workers used" `Quick test_workers_actually_used;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_map_reduce_equals_fold; prop_map_array_equals_init ] );
    ]
