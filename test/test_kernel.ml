(* Differential tests for the compiled instance kernel: Kernel.run must
   be bit-identical to Instance.run — same outcomes AND same PRNG draw
   consumption — across random programs, device profiles, environments
   and seeds; and campaigns through the kernel engine must reproduce the
   interpreter engine exactly at every domain count. *)

module Prng = Mcm_util.Prng
module Litmus = Mcm_litmus.Litmus
module Instr = Mcm_litmus.Instr
module Library = Mcm_litmus.Library
module Profile = Mcm_gpu.Profile
module Bug = Mcm_gpu.Bug
module Device = Mcm_gpu.Device
module Instance = Mcm_gpu.Instance
module Kernel = Mcm_gpu.Kernel
module Params = Mcm_testenv.Params
module Runner = Mcm_testenv.Runner

let check = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Random inputs                                                       *)

(* Random well-formed litmus programs, a little wider than the
   simulator's own generator: up to 4 threads, 4 instructions, 3
   locations. *)
let arbitrary_program =
  let open QCheck.Gen in
  let gen =
    let* nthreads = int_range 1 4 in
    let* nlocs = int_range 1 3 in
    let value_counter = ref 0 in
    let gen_instr tid_regs =
      let* choice = int_range 0 3 in
      let* loc = int_range 0 (nlocs - 1) in
      match choice with
      | 0 ->
          let reg = !tid_regs in
          incr tid_regs;
          return ((Instr.load ~reg ~loc ()))
      | 1 ->
          incr value_counter;
          return ((Instr.store ~loc ~value:!value_counter ()))
      | 2 ->
          let reg = !tid_regs in
          incr tid_regs;
          incr value_counter;
          return ((Instr.rmw ~reg ~loc ~value:!value_counter ()))
      | _ -> return (Instr.fence ())
    in
    let gen_thread =
      let* len = int_range 1 4 in
      let regs = ref 0 in
      let rec go n acc =
        if n = 0 then return (List.rev acc) else gen_instr regs >>= fun i -> go (n - 1) (i :: acc)
      in
      go len []
    in
    let rec threads n acc =
      if n = 0 then return (Array.of_list (List.rev acc))
      else gen_thread >>= fun t -> threads (n - 1) (t :: acc)
    in
    let* ts = threads nthreads [] in
    return
      {
        Litmus.name = "random";
        family = "random";
        model = Mcm_memmodel.Model.Relacq_sc_per_location;
        threads = ts;
        nlocs;
        target = (fun _ -> false);
        target_desc = "-";
      }
  in
  QCheck.make ~print:Litmus.to_string gen

let profiles = Array.of_list Profile.all

(* Derive weak params, bug effects and starts from one auxiliary
   generator so a single (program, seed) pair covers the whole input
   space. *)
let random_config g =
  let p = profiles.(Prng.int g (Array.length profiles)) in
  let weak = Instance.effective_params p ~amplification:(Prng.float g 40.) in
  let bugs =
    match Prng.int g 4 with
    | 0 -> Bug.none
    | 1 -> Bug.effect_of [ Bug.Corr_reorder (Prng.float g 1.) ]
    | 2 -> Bug.effect_of [ Bug.Fence_weakened (Prng.float g 1.) ]
    | _ -> Bug.effect_of [ Bug.Coherence_alias (Prng.float g 1.) ]
  in
  (weak, bugs)

(* ------------------------------------------------------------------ *)
(* Engine-level differential property                                  *)

let prop_kernel_bit_identical =
  QCheck.Test.make ~count:400 ~name:"kernel bit-identical to interpreter"
    (QCheck.pair arbitrary_program QCheck.small_int)
    (fun (test, seed) ->
      QCheck.assume (Litmus.well_formed test = Ok ());
      let g = Prng.create seed in
      let weak, bugs = random_config g in
      let kernel = Kernel.compile ~weak ~bugs ~test () in
      let ws = Kernel.workspace kernel in
      let ok = ref true in
      for _ = 1 to 30 do
        let starts = Array.init (Litmus.nthreads test) (fun _ -> Prng.float g 60.) in
        let g_int = Prng.of_int64 (Prng.state g) in
        let g_ker = Prng.of_int64 (Prng.state g) in
        ignore (Prng.next_int64 g);
        let o_int = Instance.run ~prng:g_int ~weak ~bugs ~test ~starts () in
        let o_ker = Kernel.run kernel ws ~prng:g_ker ~starts in
        if o_int <> o_ker then begin
          Printf.eprintf "outcome mismatch on:\n%s\ninterp: %s\nkernel: %s\n%!"
            (Litmus.to_string test) (Litmus.outcome_to_string o_int)
            (Litmus.outcome_to_string o_ker);
          ok := false
        end;
        if Prng.state g_int <> Prng.state g_ker then begin
          Printf.eprintf "draw-count mismatch on:\n%s\n%!" (Litmus.to_string test);
          ok := false
        end
      done;
      !ok)

let prop_run_next_matches_split =
  (* Kernel.set_parent + run_next must replicate the runner's
     per-instance [Instance.run ~prng:(Prng.split parent)] discipline. *)
  QCheck.Test.make ~count:150 ~name:"run_next matches split-per-instance"
    (QCheck.pair arbitrary_program QCheck.small_int)
    (fun (test, seed) ->
      QCheck.assume (Litmus.well_formed test = Ok ());
      let g = Prng.create seed in
      let weak, bugs = random_config g in
      let kernel = Kernel.compile ~weak ~bugs ~test () in
      let ws = Kernel.workspace kernel in
      let starts = Array.init (Litmus.nthreads test) (fun _ -> Prng.float g 60.) in
      let parent_int = Prng.of_int64 (Prng.state g) in
      let parent_ker = Prng.of_int64 (Prng.state g) in
      Kernel.set_parent ws parent_ker;
      let ok = ref true in
      for _ = 1 to 10 do
        let o_int = Instance.run ~prng:(Prng.split parent_int) ~weak ~bugs ~test ~starts () in
        let o_ker = Kernel.run_next kernel ws ~starts in
        if o_int <> o_ker then ok := false
      done;
      !ok)

let test_snapshot_is_deep_copy () =
  let test = Library.mp in
  let weak = Instance.effective_params Profile.nvidia ~amplification:1. in
  let kernel = Kernel.compile ~weak ~bugs:Bug.none ~test () in
  let ws = Kernel.workspace kernel in
  let o1 = Kernel.run kernel ws ~prng:(Prng.create 1) ~starts:[| 0.; 0. |] in
  let snap = Kernel.snapshot ws in
  check "snapshot equals live outcome" true (snap = o1);
  let o2 = Kernel.run kernel ws ~prng:(Prng.create 999) ~starts:[| 0.; 1000. |] in
  check "live outcome is reused storage" true (o1 == o2);
  check "snapshot unaffected by later runs" true (snap.Litmus.regs.(1) != o2.Litmus.regs.(1))

let test_workspace_ownership_checked () =
  let weak = Instance.effective_params Profile.amd ~amplification:0. in
  let k1 = Kernel.compile ~weak ~bugs:Bug.none ~test:Library.mp () in
  let k2 = Kernel.compile ~weak ~bugs:Bug.none ~test:Library.sb () in
  let ws2 = Kernel.workspace k2 in
  Alcotest.check_raises "foreign workspace rejected"
    (Invalid_argument "Kernel.run: workspace belongs to another kernel") (fun () ->
      ignore (Kernel.run k1 ws2 ~prng:(Prng.create 1) ~starts:[| 0.; 0. |]))

let test_starts_length_checked () =
  let weak = Instance.effective_params Profile.amd ~amplification:0. in
  let k = Kernel.compile ~weak ~bugs:Bug.none ~test:Library.mp () in
  let ws = Kernel.workspace k in
  Alcotest.check_raises "wrong starts" (Invalid_argument "Kernel.run: starts length mismatch")
    (fun () -> ignore (Kernel.run k ws ~prng:(Prng.create 1) ~starts:[| 0. |]))

(* ------------------------------------------------------------------ *)
(* Campaign-level differential: both engines, several domain counts    *)

let campaign_result ~engine ~domains ~seed test =
  let device = Device.make ~bugs:[ Bug.Fence_weakened 0.3 ] Profile.nvidia in
  let env = Params.scaled Params.pte_baseline 0.05 in
  let hist =
    Runner.run_with_histogram ~engine ~domains ~seed ~iterations:25 ~env ~device ~test ()
  in
  let outs = Runner.run_with_outcomes ~engine ~domains ~seed ~iterations:25 ~env ~device ~test () in
  (hist, outs)

let prop_campaign_engines_agree =
  QCheck.Test.make ~count:10 ~name:"campaign identical across engines and domains"
    QCheck.small_int
    (fun case ->
      let tests = [| Library.mp; Library.mp_relacq; Library.sb; Library.corr; Library.mp_co |] in
      let test = tests.(case mod Array.length tests) in
      let seed = 4242 + case in
      let reference = campaign_result ~engine:Runner.Interpreter ~domains:1 ~seed test in
      List.for_all
        (fun domains ->
          campaign_result ~engine:Runner.Interpreter ~domains ~seed test = reference
          && campaign_result ~engine:Runner.Kernel ~domains ~seed test = reference)
        [ 1; 2; 4; 8 ])

let () =
  Alcotest.run "kernel"
    [
      ( "differential",
        List.map QCheck_alcotest.to_alcotest
          [ prop_kernel_bit_identical; prop_run_next_matches_split ] );
      ( "workspace",
        [
          Alcotest.test_case "snapshot deep copy" `Quick test_snapshot_is_deep_copy;
          Alcotest.test_case "ownership checked" `Quick test_workspace_ownership_checked;
          Alcotest.test_case "starts checked" `Quick test_starts_length_checked;
        ] );
      ("campaign", List.map QCheck_alcotest.to_alcotest [ prop_campaign_engines_agree ]);
    ]
