(* Tests for mcm_wgsl: the generated WebGPU shaders must be structurally
   sound, contain exactly the test's atomic operations, honour the
   environment's layout, and expose a stable host-side results
   contract. *)

module Litmus = Mcm_litmus.Litmus
module Instr = Mcm_litmus.Instr
module Library = Mcm_litmus.Library
module Suite = Mcm_core.Suite
module Params = Mcm_testenv.Params
module Wgsl = Mcm_wgsl.Wgsl

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let count hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i acc =
    if i + n > h then acc else go (i + 1) (if String.sub hay i n = needle then acc + 1 else acc)
  in
  go 0 0

let env = Params.pte_baseline

let test_every_suite_shader_validates () =
  List.iter
    (fun (e : Suite.entry) ->
      let src = Wgsl.shader e.Suite.test ~env in
      match Wgsl.validate src with
      | Ok () -> ()
      | Error err -> Alcotest.failf "%s: %s" e.Suite.test.Litmus.name err)
    (Suite.all ())

let test_every_classic_shader_validates () =
  List.iter
    (fun t ->
      match Wgsl.validate (Wgsl.shader t ~env) with
      | Ok () -> ()
      | Error err -> Alcotest.failf "%s: %s" t.Litmus.name err)
    Library.all

let test_workgroup_size_from_env () =
  let src = Wgsl.shader Library.mp ~env:{ env with Params.threads_per_workgroup = 128 } in
  check "workgroup size 128" true (contains src "@workgroup_size(128)")

let test_operations_match_program () =
  (* MP-relacq: 2 stores, 2 loads, 2 fences; plus the results stores. *)
  let src = Wgsl.shader Library.mp_relacq ~env in
  check_int "storageBarrier count" 2 (count src "storageBarrier();");
  check_int "atomicLoad count" 2 (count src "atomicLoad(&test_locations");
  (* 2 data stores + 2 result stores *)
  check_int "test stores" 2 (count src "atomicStore(&test_locations");
  check_int "result stores" 2 (count src "atomicStore(&results")

let test_rmw_lowering () =
  let src = Wgsl.shader Library.sb_relacq_rmw ~env in
  check_int "atomicExchange count" 2 (count src "atomicExchange(&test_locations");
  check "validates" true (Wgsl.validate src = Ok ())

let test_role_count_matches_threads () =
  let src = Wgsl.shader Library.iriw ~env in
  check_int "four role slices" 4 (count src "// role ")

let test_result_slots_contract () =
  let slots = Wgsl.result_slots Library.mp_relacq in
  (* Thread 1 has registers 0 and 1; slots are dense from 0. *)
  Alcotest.(check (list (triple int int int))) "slots" [ (1, 0, 0); (1, 1, 1) ] slots;
  let slots = Wgsl.result_slots Library.iriw in
  check_int "iriw has four slots" 4 (List.length slots);
  List.iteri (fun i (_, _, slot) -> check_int "dense" i slot) slots

let test_instruction_lowering () =
  let loc_exprs l = Printf.sprintf "loc_%d" l in
  Alcotest.(check string)
    "load" "let r0 = atomicLoad(&test_locations.value[loc_0]);"
    (Wgsl.instruction ~loc_exprs ((Instr.load ~reg:0 ~loc:0 ())));
  Alcotest.(check string)
    "store" "atomicStore(&test_locations.value[loc_1], 2u);"
    (Wgsl.instruction ~loc_exprs ((Instr.store ~loc:1 ~value:2 ())));
  Alcotest.(check string)
    "rmw" "let r1 = atomicExchange(&test_locations.value[loc_0], 3u);"
    (Wgsl.instruction ~loc_exprs ((Instr.rmw ~reg:1 ~loc:0 ~value:3 ())));
  Alcotest.(check string) "fence" "storageBarrier();" (Wgsl.instruction ~loc_exprs (Instr.fence ()))

let test_permutation_in_shader () =
  let src = Wgsl.shader Library.mp ~env in
  check "uses the pairing permutation" true (contains src "stress_params.permute_second");
  check "spreads the second location" true (contains src "stress_params.permute_first");
  check "declares the permutation function" true (contains src "fn permute_id(")

let test_stress_harness_present () =
  let src = Wgsl.shader Library.mp ~env in
  check "stress function" true (contains src "fn do_stress(");
  check "spin barrier" true (contains src "fn spin(");
  check "non-testing workgroups stress" true (contains src "stress_params.mem_stress == 1u")

let test_rejects_ill_formed () =
  let bad = { Library.mp with Litmus.nlocs = 0 } in
  Alcotest.check_raises "invalid test"
    (Invalid_argument "Wgsl.shader: thread 0 uses location 0 >= nlocs 0") (fun () ->
      ignore (Wgsl.shader bad ~env))

let test_validate_catches_imbalance () =
  check "unbalanced braces" true (Wgsl.validate "fn main() {" = Error "unbalanced braces");
  check "unbalanced parens" true (Wgsl.validate "fn main( {}" = Error "unbalanced parentheses");
  check "no entry point" true (Result.is_error (Wgsl.validate "fn main() {}"));
  check "good shader ok" true (Wgsl.validate (Wgsl.shader Library.mp ~env) = Ok ())

let prop_all_values_emitted =
  QCheck.Test.make ~count:50 ~name:"every stored value appears in the shader"
    (QCheck.make (QCheck.Gen.oneofl (List.map (fun (e : Suite.entry) -> e.Suite.test) (Suite.all ()))))
    (fun test ->
      let src = Wgsl.shader test ~env in
      Array.for_all
        (fun instrs ->
          List.for_all
            (fun i ->
              match i with
              | Instr.Store { value; _ } | Instr.Rmw { value; _ } ->
                  contains src (Printf.sprintf "%du" value)
              | Instr.Load _ | Instr.Fence _ -> true)
            instrs)
        test.Litmus.threads)

let () =
  Alcotest.run "wgsl"
    [
      ( "generation",
        [
          Alcotest.test_case "suite shaders validate" `Quick test_every_suite_shader_validates;
          Alcotest.test_case "classic shaders validate" `Quick test_every_classic_shader_validates;
          Alcotest.test_case "workgroup size" `Quick test_workgroup_size_from_env;
          Alcotest.test_case "operations match program" `Quick test_operations_match_program;
          Alcotest.test_case "rmw lowering" `Quick test_rmw_lowering;
          Alcotest.test_case "role count" `Quick test_role_count_matches_threads;
          Alcotest.test_case "result slots" `Quick test_result_slots_contract;
          Alcotest.test_case "instruction lowering" `Quick test_instruction_lowering;
          Alcotest.test_case "permutation plumbing" `Quick test_permutation_in_shader;
          Alcotest.test_case "stress harness" `Quick test_stress_harness_present;
          Alcotest.test_case "rejects ill-formed" `Quick test_rejects_ill_formed;
          Alcotest.test_case "validate catches imbalance" `Quick test_validate_catches_imbalance;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_all_values_emitted ]);
    ]
