(* Golden regression test for the campaign runner.

   Pins kill counts and full behaviour histograms for a fixed matrix of
   (suite test × mutator × device profile × seed) campaigns, so a future
   runner/assignment/instance refactor cannot silently change the
   simulated weak-memory behaviour: any such drift shows up here as an
   exact-count diff, not as a statistical wobble a directional test
   might absorb.

   The matrix covers one conformance test and one mutant of each of the
   paper's three mutators, on all four device profiles, plus one
   bug-injected device. Everything is bit-deterministic (seeded PRNG,
   integer tallies), so exact equality is the right check.

   To regenerate after an *intentional* semantic change:
     MCM_GOLDEN_REGEN=1 dune exec test/test_golden.exe
   and paste the printed rows over [expected] below. *)

module Suite = Mcm_core.Suite
module Profile = Mcm_gpu.Profile
module Device = Mcm_gpu.Device
module Bug = Mcm_gpu.Bug
module Params = Mcm_testenv.Params
module Runner = Mcm_testenv.Runner

let seed = 20230325
let iterations = 3
let env = Params.scaled Params.pte_baseline 0.02

(* name, device label, kills, sequential, interleaved, weak, forbidden,
   skipped — one row per campaign of the matrix. *)
type row = string * string * int * int * int * int * int * int

let devices =
  List.map (fun p -> (p.Profile.short_name, Device.make p)) Profile.all
  @ [ ("Intel+corr-bug", Device.make ~bugs:[ Bug.Corr_reorder 0.5 ] Profile.intel) ]

(* CoRR: conformance; CoRR-m: reversing po-loc; MP-CO-m: weakening
   po-loc; MP-relacq-m3: weakening sw. *)
let tests = [ "CoRR"; "CoRR-m"; "MP-CO-m"; "MP-relacq-m3" ]

let rows ~engine () : row list =
  List.concat_map
    (fun name ->
      let test = (Option.get (Suite.find name)).Suite.test in
      List.map
        (fun (label, device) ->
          let r, h = Runner.run_with_histogram ~engine ~device ~env ~test ~iterations ~seed () in
          ( name,
            label,
            r.Runner.kills,
            h.Runner.sequential,
            h.Runner.interleaved,
            h.Runner.weak,
            h.Runner.forbidden,
            h.Runner.skipped ))
        devices)
    tests

let expected : row list =
  [
    ("CoRR", "NVIDIA", 0, 7448, 20, 0, 0, 7892);
    ("CoRR", "AMD", 0, 13520, 65, 0, 0, 1775);
    ("CoRR", "Intel", 0, 14781, 579, 0, 0, 0);
    ("CoRR", "M1", 0, 5454, 14, 0, 0, 9892);
    ("CoRR", "Intel+corr-bug", 308, 14765, 287, 0, 308, 0);
    ("CoRR-m", "NVIDIA", 20, 7448, 20, 0, 0, 7892);
    ("CoRR-m", "AMD", 65, 13520, 65, 0, 0, 1775);
    ("CoRR-m", "Intel", 579, 14781, 579, 0, 0, 0);
    ("CoRR-m", "M1", 14, 5454, 14, 0, 0, 9892);
    ("CoRR-m", "Intel+corr-bug", 287, 14765, 287, 0, 308, 0);
    ("MP-CO-m", "NVIDIA", 39, 7408, 50, 39, 0, 7863);
    ("MP-CO-m", "AMD", 36, 13461, 95, 36, 0, 1768);
    ("MP-CO-m", "Intel", 131, 14310, 919, 131, 0, 0);
    ("MP-CO-m", "M1", 2, 5467, 40, 2, 0, 9851);
    ("MP-CO-m", "Intel+corr-bug", 131, 14310, 919, 131, 0, 0);
    ("MP-relacq-m3", "NVIDIA", 32, 7416, 49, 32, 0, 7863);
    ("MP-relacq-m3", "AMD", 47, 13444, 101, 47, 0, 1768);
    ("MP-relacq-m3", "Intel", 191, 14150, 1019, 191, 0, 0);
    ("MP-relacq-m3", "M1", 7, 5455, 47, 7, 0, 9851);
    ("MP-relacq-m3", "Intel+corr-bug", 191, 14150, 1019, 191, 0, 0);
  ]

let pp_row (name, dev, k, s, i, w, f, sk) =
  Printf.sprintf "(%S, %S, %d, %d, %d, %d, %d, %d);" name dev k s i w f sk

(* The pinned counts predate the compiled kernel, so running the matrix
   through both engines also golden-checks the kernel's bit-identity on
   real campaigns, not just the qcheck differential suite. *)
let test_golden_matrix engine () =
  List.iter2
    (fun actual exp ->
      if actual <> exp then
        Alcotest.failf "golden drift:\n  expected %s\n  actual   %s" (pp_row exp) (pp_row actual))
    (rows ~engine ()) expected

let test_matrix_shape () =
  Alcotest.(check int) "rows = tests x devices" (List.length tests * List.length devices)
    (List.length expected)

let () =
  if Sys.getenv_opt "MCM_GOLDEN_REGEN" <> None then begin
    List.iter
      (fun r -> Printf.printf "    %s\n" (pp_row r))
      (rows ~engine:Runner.Interpreter ());
    exit 0
  end;
  Alcotest.run "golden"
    [
      ( "runner",
        [
          Alcotest.test_case "matrix shape" `Quick test_matrix_shape;
          Alcotest.test_case "pinned campaigns (interpreter)" `Quick
            (test_golden_matrix Runner.Interpreter);
          Alcotest.test_case "pinned campaigns (kernel)" `Quick
            (test_golden_matrix Runner.Kernel);
        ] );
    ]
