(* Differential tests for mutant schemata (Kernel.Schema) and the
   schema execution plan: running variant [v] through a shared schema
   image + pooled workspace must be bit-identical — same outcomes AND
   same PRNG draw consumption — to compiling variant [v] alone with
   Kernel.compile and running it in its own workspace; compile_cached
   must be indistinguishable from compile; and a campaign under
   [Request.Schema] must reproduce [Request.Per_cell] exactly for every
   collector and domain count. *)

module Prng = Mcm_util.Prng
module Litmus = Mcm_litmus.Litmus
module Instr = Mcm_litmus.Instr
module Library = Mcm_litmus.Library
module Profile = Mcm_gpu.Profile
module Bug = Mcm_gpu.Bug
module Device = Mcm_gpu.Device
module Instance = Mcm_gpu.Instance
module Kernel = Mcm_gpu.Kernel
module Params = Mcm_testenv.Params
module Runner = Mcm_testenv.Runner
module Request = Mcm_testenv.Request

let check = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Random inputs (same program space as test_kernel.ml)                *)

let arbitrary_program =
  let open QCheck.Gen in
  let gen =
    let* nthreads = int_range 1 4 in
    let* nlocs = int_range 1 3 in
    let value_counter = ref 0 in
    let gen_instr tid_regs =
      let* choice = int_range 0 3 in
      let* loc = int_range 0 (nlocs - 1) in
      match choice with
      | 0 ->
          let reg = !tid_regs in
          incr tid_regs;
          return ((Instr.load ~reg ~loc ()))
      | 1 ->
          incr value_counter;
          return ((Instr.store ~loc ~value:!value_counter ()))
      | 2 ->
          let reg = !tid_regs in
          incr tid_regs;
          incr value_counter;
          return ((Instr.rmw ~reg ~loc ~value:!value_counter ()))
      | _ -> return (Instr.fence ())
    in
    let gen_thread =
      let* len = int_range 1 4 in
      let regs = ref 0 in
      let rec go n acc =
        if n = 0 then return (List.rev acc) else gen_instr regs >>= fun i -> go (n - 1) (i :: acc)
      in
      go len []
    in
    let rec threads n acc =
      if n = 0 then return (Array.of_list (List.rev acc))
      else gen_thread >>= fun t -> threads (n - 1) (t :: acc)
    in
    let* ts = threads nthreads [] in
    return
      {
        Litmus.name = "random";
        family = "random";
        model = Mcm_memmodel.Model.Relacq_sc_per_location;
        threads = ts;
        nlocs;
        target = (fun _ -> false);
        target_desc = "-";
      }
  in
  QCheck.make ~print:Litmus.to_string gen

let profiles = Array.of_list Profile.all

let random_config g =
  let p = profiles.(Prng.int g (Array.length profiles)) in
  let weak = Instance.effective_params p ~amplification:(Prng.float g 40.) in
  let bugs =
    match Prng.int g 4 with
    | 0 -> Bug.none
    | 1 -> Bug.effect_of [ Bug.Corr_reorder (Prng.float g 1.) ]
    | 2 -> Bug.effect_of [ Bug.Fence_weakened (Prng.float g 1.) ]
    | _ -> Bug.effect_of [ Bug.Coherence_alias (Prng.float g 1.) ]
  in
  (weak, bugs)

(* A random schema column: 1–4 variants over 1–2 distinct programs
   (shared images + heterogeneous shapes in one schema), each with an
   independent weak/bugs configuration. *)
let column_arb = QCheck.(triple arbitrary_program arbitrary_program small_int)

let variants_of (t1, t2) g =
  let n = 1 + Prng.int g 4 in
  Array.init n (fun _ ->
      let test = if Prng.int g 2 = 0 then t1 else t2 in
      let weak, bugs = random_config g in
      (weak, bugs, test))

(* ------------------------------------------------------------------ *)
(* Schema vs per-variant compile                                       *)

let prop_schema_bit_identical =
  QCheck.Test.make ~count:300 ~name:"Schema.run bit-identical to per-variant compile"
    (QCheck.pair column_arb QCheck.small_int)
    (fun ((t1, t2, _), seed) ->
      QCheck.assume (Litmus.well_formed t1 = Ok () && Litmus.well_formed t2 = Ok ());
      let g = Prng.create seed in
      let variants = variants_of (t1, t2) g in
      let schema = Kernel.Schema.compile ~variants () in
      let sws = Kernel.Schema.workspace schema in
      let refs =
        Array.map
          (fun (weak, bugs, test) ->
            let k = Kernel.compile ~weak ~bugs ~test () in
            (k, Kernel.workspace k))
          variants
      in
      let ok = ref true in
      (* Interleave variants across runs so scratch left by one variant
         is live when the next executes — exactly the sharing the
         bit-identity argument has to survive. *)
      for run = 1 to 20 do
        let v = (run * 7) mod Array.length variants in
        let _, _, test = variants.(v) in
        let starts = Array.init (Litmus.nthreads test) (fun _ -> Prng.float g 60.) in
        let g_ref = Prng.of_int64 (Prng.state g) in
        let g_sch = Prng.of_int64 (Prng.state g) in
        ignore (Prng.next_int64 g);
        let k, kws = refs.(v) in
        let o_ref = Kernel.run k kws ~prng:g_ref ~starts in
        let o_sch = Kernel.Schema.run schema sws ~variant:v ~prng:g_sch ~starts in
        if o_ref <> o_sch then begin
          Printf.eprintf "schema outcome mismatch (variant %d) on:\n%s\nref: %s\nschema: %s\n%!" v
            (Litmus.to_string test) (Litmus.outcome_to_string o_ref)
            (Litmus.outcome_to_string o_sch);
          ok := false
        end;
        if Prng.state g_ref <> Prng.state g_sch then begin
          Printf.eprintf "schema draw-count mismatch (variant %d) on:\n%s\n%!" v
            (Litmus.to_string test);
          ok := false
        end;
        (* The snapshot must capture the variant's outcome, not a
           neighbour's shared scratch. *)
        if Kernel.Schema.snapshot sws ~variant:v <> o_sch then ok := false
      done;
      !ok)

let prop_schema_run_next_matches_split =
  (* Schema.set_parent + run_next shares ONE parent stream across all
     variants, as a runner interleaving variants within an iteration
     would: the reference is Instance.run ~prng:(Prng.split parent) in
     the same interleaved order. *)
  QCheck.Test.make ~count:150 ~name:"Schema.run_next matches split-per-instance"
    (QCheck.pair column_arb QCheck.small_int)
    (fun ((t1, t2, _), seed) ->
      QCheck.assume (Litmus.well_formed t1 = Ok () && Litmus.well_formed t2 = Ok ());
      let g = Prng.create seed in
      let variants = variants_of (t1, t2) g in
      let schema = Kernel.Schema.compile ~variants () in
      let sws = Kernel.Schema.workspace schema in
      let starts_of test = Array.init (Litmus.nthreads test) (fun _ -> Prng.float g 60.) in
      let starts = Array.map (fun (_, _, test) -> starts_of test) variants in
      let parent_ref = Prng.of_int64 (Prng.state g) in
      let parent_sch = Prng.of_int64 (Prng.state g) in
      Kernel.Schema.set_parent sws parent_sch;
      let ok = ref true in
      for run = 1 to 12 do
        let v = (run * 5) mod Array.length variants in
        let weak, bugs, test = variants.(v) in
        let o_ref =
          Instance.run ~prng:(Prng.split parent_ref) ~weak ~bugs ~test ~starts:starts.(v) ()
        in
        let o_sch = Kernel.Schema.run_next schema sws ~variant:v ~starts:starts.(v) in
        if o_ref <> o_sch then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* compile_cached                                                      *)

let prop_compile_cached_identical =
  QCheck.Test.make ~count:150 ~name:"compile_cached bit-identical to compile, shares images"
    (QCheck.pair arbitrary_program QCheck.small_int)
    (fun (test, seed) ->
      QCheck.assume (Litmus.well_formed test = Ok ());
      let g = Prng.create seed in
      let weak1, bugs1 = random_config g in
      let weak2, bugs2 = random_config g in
      let fresh = Kernel.compile ~weak:weak1 ~bugs:bugs1 ~test () in
      let cached1 = Kernel.compile_cached ~weak:weak1 ~bugs:bugs1 ~test () in
      (* A second cell differing only in scalars must rebind onto the
         same image. *)
      let cached2 = Kernel.compile_cached ~weak:weak2 ~bugs:bugs2 ~test () in
      let shares = Kernel.image_id cached1 = Kernel.image_id cached2 in
      let ws_fresh = Kernel.workspace fresh in
      let ws_cached = Kernel.workspace cached1 in
      let ok = ref shares in
      for _ = 1 to 10 do
        let starts = Array.init (Litmus.nthreads test) (fun _ -> Prng.float g 60.) in
        let g_f = Prng.of_int64 (Prng.state g) in
        let g_c = Prng.of_int64 (Prng.state g) in
        ignore (Prng.next_int64 g);
        let o_f = Kernel.run fresh ws_fresh ~prng:g_f ~starts in
        let o_c = Kernel.run cached1 ws_cached ~prng:g_c ~starts in
        if not (o_f = o_c && Prng.state g_f = Prng.state g_c) then ok := false
      done;
      (* adopt: a workspace sized for one kernel of the image fits the
         other; running after adoption stays identical. *)
      Kernel.adopt ws_cached cached2;
      let k2 = Kernel.compile ~weak:weak2 ~bugs:bugs2 ~test () in
      let ws2 = Kernel.workspace k2 in
      for _ = 1 to 5 do
        let starts = Array.init (Litmus.nthreads test) (fun _ -> Prng.float g 60.) in
        let g_a = Prng.of_int64 (Prng.state g) in
        let g_b = Prng.of_int64 (Prng.state g) in
        ignore (Prng.next_int64 g);
        let o_a = Kernel.run cached2 ws_cached ~prng:g_a ~starts in
        let o_b = Kernel.run k2 ws2 ~prng:g_b ~starts in
        if not (o_a = o_b && Prng.state g_a = Prng.state g_b) then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Plan equivalence: Schema campaigns == Per_cell campaigns            *)

let plan_point_arb =
  (* (seed, iterations 0..3, domains 1|2|4) *)
  QCheck.(triple small_int (make (Gen.int_range 0 3)) (make (Gen.oneofl [ 1; 2; 4 ])))

let suite_test name = (Option.get (Mcm_core.Suite.find name)).Mcm_core.Suite.test

let random_request ~seed ~iterations =
  let g = Prng.create seed in
  let tests = [| "MP-CO-m"; "CoRR-m"; "MP-relacq-m3" |] in
  let test = suite_test tests.(Prng.int g (Array.length tests)) in
  let devices =
    [|
      Device.make Profile.nvidia;
      Device.make Profile.intel;
      Device.make ~bugs:[ Bug.Corr_reorder 0.5 ] Profile.amd;
    |]
  in
  let device = devices.(Prng.int g (Array.length devices)) in
  let env = Params.scaled (Params.random g Params.Parallel) 0.01 in
  Request.make ~device ~env ~test ~iterations ~seed ()

let prop_plan_equivalent =
  QCheck.Test.make ~count:40 ~name:"Schema plan == Per_cell plan (all collectors, domains)"
    plan_point_arb
    (fun (seed, iterations, domains) ->
      let r = random_request ~seed ~iterations in
      let agree : type a. a Runner.collect -> bool =
       fun c ->
        let per_cell = Runner.exec c r (Request.context ~plan:Request.Per_cell ~domains ()) in
        let schema = Runner.exec c r (Request.context ~plan:Request.Schema ~domains ()) in
        per_cell = schema
      in
      agree Runner.Rate && agree Runner.Histogram && agree Runner.Outcomes)

let test_plan_names_roundtrip () =
  List.iter
    (fun (name, plan) ->
      Alcotest.(check string) "plan name" name (Request.plan_name plan);
      check "plan_of_name inverts" true (Request.plan_of_name name = Some plan))
    Request.plans;
  check "unknown plan rejected" true (Request.plan_of_name "banana" = None)

let test_engine_counters_monotone () =
  let s0 = Runner.engine_stats () in
  (* A fresh, uniquely named program: earlier properties have warmed the
     domain-local caches for every suite test, and a cached image would
     (correctly) not count as a compile. *)
  let probe =
    {
      Litmus.name = "counters-probe";
      family = "probe";
      model = Mcm_memmodel.Model.Relacq_sc_per_location;
      threads = [| [ (Instr.store ~loc:0 ~value:1 ()) ]; [ (Instr.load ~reg:0 ~loc:0 ()) ] |];
      nlocs = 1;
      target = (fun _ -> false);
      target_desc = "-";
    }
  in
  let device = Device.make Profile.nvidia in
  let env = Params.scaled Params.pte_baseline 0.02 in
  let r = Request.make ~device ~env ~test:probe ~iterations:2 ~seed:99 () in
  ignore (Runner.exec Runner.Rate r (Request.context ~plan:Request.Schema ()));
  ignore (Runner.exec Runner.Rate r (Request.context ~plan:Request.Schema ()));
  let d = Runner.engine_stats_sub (Runner.engine_stats ()) s0 in
  check "compiles counted" true (d.Runner.kernels_compiled >= 1);
  (* The second identical cell must be answered by the prefab cache. *)
  check "reuse counted" true (d.Runner.schema_reuses >= 1);
  check "counters non-negative" true
    (d.Runner.workspaces_built >= 0 && d.Runner.workspace_reuses >= 0);
  ignore (Format.asprintf "%a" Runner.pp_engine_stats d)

(* ------------------------------------------------------------------ *)
(* API errors                                                          *)

let test_schema_errors () =
  Alcotest.check_raises "empty column rejected"
    (Invalid_argument "Kernel.Schema.compile: no variants") (fun () ->
      ignore (Kernel.Schema.compile ~variants:[||] ()));
  let weak = Instance.effective_params Profile.amd ~amplification:0. in
  let schema = Kernel.Schema.compile ~variants:[| (weak, Bug.none, Library.mp) |] () in
  let ws = Kernel.Schema.workspace schema in
  Alcotest.check_raises "variant out of range"
    (Invalid_argument "Kernel.Schema: variant out of range") (fun () ->
      ignore (Kernel.Schema.kernel schema 1));
  Alcotest.check_raises "run variant out of range"
    (Invalid_argument "Kernel.Schema: variant out of range") (fun () ->
      ignore
        (Kernel.Schema.run schema ws ~variant:1 ~prng:(Prng.create 1) ~starts:[| 0.; 0. |]));
  let other = Kernel.Schema.compile ~variants:[| (weak, Bug.none, Library.sb) |] () in
  let foreign = Kernel.Schema.workspace other in
  Alcotest.check_raises "foreign schema workspace rejected"
    (Invalid_argument "Kernel.run: workspace belongs to another kernel") (fun () ->
      ignore
        (Kernel.Schema.run schema foreign ~variant:0 ~prng:(Prng.create 1) ~starts:[| 0.; 0. |]));
  check "schema length" true (Kernel.Schema.length schema = 1);
  check "schema kernel exposes the variant's test" true
    (Kernel.test (Kernel.Schema.kernel schema 0) == Library.mp)

let () =
  Alcotest.run "schema"
    [
      ( "differential",
        List.map QCheck_alcotest.to_alcotest
          [ prop_schema_bit_identical; prop_schema_run_next_matches_split;
            prop_compile_cached_identical ] );
      ( "plans",
        List.map QCheck_alcotest.to_alcotest [ prop_plan_equivalent ]
        @ [
            Alcotest.test_case "plan names" `Quick test_plan_names_roundtrip;
            Alcotest.test_case "engine counters" `Quick test_engine_counters_monotone;
          ] );
      ("api", [ Alcotest.test_case "schema errors" `Quick test_schema_errors ]);
    ]
