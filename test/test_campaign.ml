(* Tests for mcm_campaign: content keys, the on-disk store's durability
   and recovery rules, the crash-safe journal, the cache-aware scheduler,
   and the end-to-end kill-and-resume contract (a sweep interrupted
   mid-run and resumed through the store reproduces the uninterrupted
   sweep bit-identically). *)

module Key = Mcm_campaign.Key
module Store = Mcm_campaign.Store
module Journal = Mcm_campaign.Journal
module Sched = Mcm_campaign.Sched
module Jsonw = Mcm_util.Jsonw
module Suite = Mcm_core.Suite
module Device = Mcm_gpu.Device
module Profile = Mcm_gpu.Profile
module Litmus = Mcm_litmus.Litmus
module Params = Mcm_testenv.Params
module Runner = Mcm_testenv.Runner
module Request = Mcm_testenv.Request
module Tuning = Mcm_harness.Tuning

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* Unique scratch directories; cleaned eagerly so repeated `dune runtest`
   runs never see each other's stores. *)
let dir_counter = ref 0

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun name -> rm_rf (Filename.concat path name)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_temp_dir f =
  incr dir_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mcm-campaign-test-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let append_raw path s =
  let oc = open_out_gen [ Open_append; Open_wronly; Open_binary; Open_creat ] 0o644 path in
  output_string oc s;
  close_out oc

let first_segment dir =
  let segs =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun n -> Filename.check_suffix n ".jsonl" && n <> "journal.jsonl")
    |> List.sort compare
  in
  Filename.concat dir (List.hd segs)

(* -------------------------------------------------------------------- *)
(* Keys                                                                   *)

let test_fnv_vectors () =
  (* Published FNV-1a/64 vectors. *)
  check "empty" true (Key.fnv1a64 "" = 0xcbf29ce484222325L);
  check "a" true (Key.fnv1a64 "a" = 0xaf63dc4c8601ec8cL);
  check "foobar" true (Key.fnv1a64 "foobar" = 0x85944171f73967e8L)

let test_key_of_fields () =
  let k1 = Key.of_fields [ ("x", Jsonw.Int 1) ] in
  let k2 = Key.of_fields [ ("x", Jsonw.Int 1) ] in
  let k3 = Key.of_fields [ ("x", Jsonw.Int 2) ] in
  let k4 = Key.of_fields [ ("y", Jsonw.Int 1) ] in
  check "deterministic" true (Key.equal k1 k2);
  check "value-sensitive" false (Key.equal k1 k3);
  check "name-sensitive" false (Key.equal k1 k4);
  (* code_version is baked in: the same object hashed raw differs. *)
  check "versioned" false
    (Key.equal k1 (Key.of_string (Jsonw.to_string (Jsonw.Obj [ ("x", Jsonw.Int 1) ]))))

let test_key_hex_roundtrip () =
  List.iter
    (fun s ->
      let k = Key.of_string s in
      check_str "16 hex digits" (Printf.sprintf "%016Lx" (Key.fnv1a64 (s))) (Key.to_hex k);
      match Key.of_hex (Key.to_hex k) with
      | Ok k' -> check "round-trips" true (Key.equal k k')
      | Error e -> Alcotest.failf "of_hex failed: %s" e)
    [ ""; "a"; "foobar"; String.make 100 'z' ];
  List.iter
    (fun bad -> check ("rejects " ^ bad) true (Result.is_error (Key.of_hex bad)))
    [ ""; "xyz"; "0123456789abcde"; "0123456789abcdef0"; "0123456789abcdeg" ]

let nvidia = lazy (Device.make Profile.nvidia)
let mp_co_m = lazy (Option.get (Suite.find "MP-CO-m")).Suite.test

let test_cell_key_sensitivity () =
  let device = Lazy.force nvidia in
  let test = Lazy.force mp_co_m in
  let env = Params.to_json Params.site_baseline in
  let base ?(kind = "run") ?(engine = "kernel") ?(iterations = 3) ?(seed = 1) () =
    Key.cell ~kind ~engine ~test ~device ~env ~iterations ~seed ()
  in
  check "deterministic" true (Key.equal (base ()) (base ()));
  check "kind" false (Key.equal (base ()) (base ~kind:"histogram" ()));
  check "engine" false (Key.equal (base ()) (base ~engine:"interpreter" ()));
  check "iterations" false (Key.equal (base ()) (base ~iterations:4 ()));
  check "seed" false (Key.equal (base ()) (base ~seed:2 ()));
  (* SITE's baseline is scale-invariant (nothing to scale), so compare
     against a different baseline instead. *)
  let env' = Params.to_json (Params.scaled Params.pte_baseline 0.5) in
  check "env" false
    (Key.equal (base ())
       (Key.cell ~kind:"run" ~engine:"kernel" ~test ~device ~env:env' ~iterations:3 ~seed:1 ()));
  let buggy = Device.make ~bugs:[ Mcm_gpu.Bug.Fence_weakened 0.1 ] Profile.nvidia in
  check "device bugs" false
    (Key.equal (base ())
       (Key.cell ~kind:"run" ~engine:"kernel" ~test ~device:buggy ~env ~iterations:3 ~seed:1 ()))

(* -------------------------------------------------------------------- *)
(* Store                                                                  *)

let k_of_int i = Key.of_string (string_of_int i)
let v_of_int i = Jsonw.Obj [ ("i", Jsonw.Int i) ]

let test_store_roundtrip () =
  with_temp_dir (fun dir ->
      Store.with_store dir (fun s ->
          check "empty" true (Store.find s (k_of_int 0) = None);
          for i = 0 to 9 do
            Store.add s (k_of_int i) (v_of_int i)
          done;
          check_int "count" 10 (Store.count s);
          check "mem" true (Store.mem s (k_of_int 3));
          check "find" true (Store.find s (k_of_int 3) = Some (v_of_int 3));
          check "miss" true (Store.find s (k_of_int 99) = None)))

let test_store_first_write_wins () =
  with_temp_dir (fun dir ->
      Store.with_store dir (fun s ->
          Store.add s (k_of_int 1) (v_of_int 1);
          Store.add s (k_of_int 1) (v_of_int 999);
          check_int "no duplicate" 1 (Store.count s);
          check "first wins" true (Store.find s (k_of_int 1) = Some (v_of_int 1))))

let test_store_persistence () =
  with_temp_dir (fun dir ->
      Store.with_store dir (fun s ->
          for i = 0 to 4 do
            Store.add s (k_of_int i) (v_of_int i)
          done);
      Store.with_store dir (fun s ->
          check_int "reloaded" 5 (Store.count s);
          check "payload intact" true (Store.find s (k_of_int 2) = Some (v_of_int 2));
          check "no warnings" true (Store.warnings s = [])))

let test_store_torn_tail () =
  with_temp_dir (fun dir ->
      Store.with_store dir (fun s ->
          for i = 0 to 4 do
            Store.add s (k_of_int i) (v_of_int i)
          done);
      let seg = first_segment dir in
      append_raw seg "{\"k\":\"00000000000000";
      (* Verify (read-only) sees the tear; reopening repairs it. *)
      (match Store.verify dir with
      | Ok r ->
          check_int "verify sees torn tail" 1 r.Store.v_torn;
          check "verify not ok" false (Store.verify_ok r)
      | Error e -> Alcotest.failf "verify: %s" e);
      Store.with_store dir (fun s ->
          check_int "records survive" 5 (Store.count s);
          check_int "torn tail counted" 1 (Store.stats s).Store.s_torn_tails;
          check "warned" true (Store.warnings s <> []));
      (* The tear was truncated away: a fresh open is clean. *)
      Store.with_store dir (fun s ->
          check_int "clean after repair" 0 (Store.stats s).Store.s_torn_tails);
      match Store.verify dir with
      | Ok r -> check "verify clean after repair" true (Store.verify_ok r)
      | Error e -> Alcotest.failf "verify: %s" e)

let test_store_bad_record_and_gc () =
  with_temp_dir (fun dir ->
      Store.with_store dir (fun s ->
          for i = 0 to 4 do
            Store.add s (k_of_int i) (v_of_int i)
          done);
      let seg = first_segment dir in
      (* A complete-but-garbage line, and an on-disk duplicate of key 0. *)
      append_raw seg "this is not json\n";
      append_raw seg
        (Jsonw.to_string
           (Jsonw.Obj [ ("k", Jsonw.String (Key.to_hex (k_of_int 0))); ("v", v_of_int 666) ])
        ^ "\n");
      (match Store.verify dir with
      | Ok r ->
          check_int "verify sees bad record" 1 r.Store.v_bad;
          check_int "verify sees duplicate" 1 r.Store.v_duplicates
      | Error e -> Alcotest.failf "verify: %s" e);
      Store.with_store dir (fun s ->
          check_int "live records" 5 (Store.count s);
          check "duplicate kept first" true (Store.find s (k_of_int 0) = Some (v_of_int 0));
          let st = Store.stats s in
          check_int "bad counted" 1 st.Store.s_disk_bad;
          check_int "duplicate counted" 1 st.Store.s_disk_duplicates;
          check_int "gc drops stale" 2 (Store.gc s);
          check_int "gc preserves live" 5 (Store.count s);
          check "payloads intact" true (Store.find s (k_of_int 3) = Some (v_of_int 3)));
      match Store.verify dir with
      | Ok r ->
          check "verify clean after gc" true (Store.verify_ok r);
          check_int "one segment after gc" 1 r.Store.v_segments
      | Error e -> Alcotest.failf "verify: %s" e)

let test_store_segment_roll () =
  with_temp_dir (fun dir ->
      (* max_segment_bytes clamps to 4096, so write ~300-byte payloads
         to force a roll within a few dozen records. *)
      let big i = Jsonw.Obj [ ("i", Jsonw.Int i); ("pad", Jsonw.String (String.make 300 'x')) ] in
      let s = Store.open_store ~max_segment_bytes:4096 dir in
      Fun.protect
        ~finally:(fun () -> Store.close s)
        (fun () ->
          for i = 0 to 29 do
            Store.add s (k_of_int i) (big i)
          done;
          check "rolled" true ((Store.stats s).Store.s_segments > 1));
      Store.with_store dir (fun s ->
          check_int "all records across segments" 30 (Store.count s);
          check "payload intact across segments" true (Store.find s (k_of_int 17) = Some (big 17));
          check_int "gc compacts" 1 (ignore (Store.gc s); (Store.stats s).Store.s_segments))
      )

let test_store_add_after_close () =
  with_temp_dir (fun dir ->
      let s = Store.open_store dir in
      Store.close s;
      check "add after close raises" true
        (match Store.add s (k_of_int 1) (v_of_int 1) with
        | () -> false
        | exception _ -> true))

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* The writer lock is per-process (POSIX lockf): a second process
   opening the same store directory must fail fast with an error that
   names the lock file, and closing the store releases the lock. The
   second process is a real fork — same-process reopens share the lock
   by design (crash-resume reopens the store it just closed). *)
let test_store_writer_lock () =
  with_temp_dir (fun dir ->
      Store.with_store dir (fun _store ->
          match Unix.fork () with
          | 0 ->
              (* Child: must be refused. [Unix._exit] skips atexit and
                 buffered-channel flushing inherited from the parent. *)
              let code =
                match Store.with_store dir (fun _ -> ()) with
                | () -> 1
                | exception Failure msg ->
                    if contains msg (Filename.concat dir "LOCK") then 0 else 2
                | exception _ -> 3
              in
              Unix._exit code
          | pid -> (
              match snd (Unix.waitpid [] pid) with
              | Unix.WEXITED 0 -> ()
              | Unix.WEXITED 1 -> Alcotest.fail "second process acquired the writer lock"
              | Unix.WEXITED 2 -> Alcotest.fail "lock error does not name the lock file"
              | _ -> Alcotest.fail "lock-probe child crashed"));
      (* Close released the lock: reopening succeeds, and the LOCK file
         is not mistaken for a segment. *)
      Store.with_store dir (fun store -> check_int "reopen after close" 0 (Store.count store));
      match Store.verify dir with
      | Ok r -> check "verifies clean with LOCK present" true (Store.verify_ok r)
      | Error e -> Alcotest.failf "verify: %s" e)

(* -------------------------------------------------------------------- *)
(* Journal                                                                *)

let sweep_a = Key.of_string "sweep-a"
let sweep_b = Key.of_string "sweep-b"

let test_journal_fresh_and_finish () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "journal.jsonl" in
      Journal.with_journal path (fun j ->
          check "absent file loads empty" true (Journal.header j = None);
          check "fresh" true (Journal.start j ~sweep:sweep_a ~cells:10 = `Fresh);
          Journal.record j ~done_:4;
          Journal.record j ~done_:8;
          Journal.finish j);
      Journal.with_journal path (fun j ->
          (match Journal.header j with
          | Some h ->
              check "sweep persisted" true (Key.equal h.Journal.sweep sweep_a);
              check_int "cells persisted" 10 h.Journal.cells
          | None -> Alcotest.fail "no header after reload");
          check_int "progress persisted" 8 (Journal.progress j);
          check "finished persisted" true (Journal.finished j);
          (* A finished sweep restarts fresh, not resumed. *)
          check "finished restarts fresh" true (Journal.start j ~sweep:sweep_a ~cells:10 = `Fresh)))

let test_journal_resume_and_mismatch () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "journal.jsonl" in
      Journal.with_journal path (fun j ->
          ignore (Journal.start j ~sweep:sweep_a ~cells:10);
          Journal.record j ~done_:6);
      Journal.with_journal path (fun j ->
          check "same sweep resumes" true (Journal.start j ~sweep:sweep_a ~cells:10 = `Resumed 6));
      Journal.with_journal path (fun j ->
          check "different sweep is fresh" true (Journal.start j ~sweep:sweep_b ~cells:10 = `Fresh);
          check_int "progress reset" 0 (Journal.progress j)))

let test_journal_torn_tail () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "journal.jsonl" in
      Journal.with_journal path (fun j ->
          ignore (Journal.start j ~sweep:sweep_a ~cells:10);
          Journal.record j ~done_:3;
          Journal.record j ~done_:7);
      (* A crash mid-append: partial record, no newline. *)
      append_raw path "{\"done\":9";
      Journal.with_journal path (fun j ->
          check_int "torn record ignored" 7 (Journal.progress j);
          check "still resumable" true (Journal.start j ~sweep:sweep_a ~cells:10 = `Resumed 7)))

(* -------------------------------------------------------------------- *)
(* Scheduler                                                              *)

let sched_key i = k_of_int i

let encode_int i = Jsonw.Int i

let decode_int = function Jsonw.Int i -> Ok i | v -> Error ("not an int: " ^ Jsonw.to_string v)

let test_sched_cold_then_warm () =
  with_temp_dir (fun dir ->
      Store.with_store dir (fun store ->
          let calls = ref 0 in
          let f i =
            incr calls;
            i * i
          in
          let out, stats =
            Sched.run ~store ~key:sched_key ~encode:encode_int ~decode:decode_int ~f ~n:10 ()
          in
          check "cold results" true (out = Array.init 10 (fun i -> i * i));
          check_int "cold misses" 10 stats.Sched.misses;
          check_int "cold hits" 0 stats.Sched.hits;
          check_int "cold calls f" 10 !calls;
          let out2, stats2 =
            Sched.run ~store ~key:sched_key ~encode:encode_int ~decode:decode_int ~f ~n:10 ()
          in
          check "warm results identical" true (out = out2);
          check_int "warm hits" 10 stats2.Sched.hits;
          check_int "warm misses" 0 stats2.Sched.misses;
          check_int "warm never calls f" 10 !calls))

let test_sched_decode_failure_recomputes () =
  with_temp_dir (fun dir ->
      Store.with_store dir (fun store ->
          let f i = i + 1 in
          ignore (Sched.run ~store ~key:sched_key ~encode:encode_int ~decode:decode_int ~f ~n:5 ());
          let count_before = Store.count store in
          (* A decoder that rejects everything: every hit demotes to a
             miss, is recomputed, and is NOT re-stored (first write
             wins). *)
          let reject _ = Error "stale codec" in
          let out, stats =
            Sched.run ~store ~key:sched_key ~encode:encode_int ~decode:reject ~f ~n:5 ()
          in
          check "recomputed results" true (out = Array.init 5 (fun i -> i + 1));
          check_int "all decode failures" 5 stats.Sched.decode_failures;
          check_int "all misses" 5 stats.Sched.misses;
          check_int "store unchanged" count_before (Store.count store)))

let prop_sched_family_grouping_invisible =
  (* The schema plan's dispatch hook: grouping misses by family may
     change dispatch order only — same results at the same grid indices
     and the same hit/miss/decode stats, over a mixed warm/cold store
     and through the decode-failure demotion path. *)
  QCheck.Test.make ~count:25 ~name:"family grouping: bit-identical results and stats"
    QCheck.(triple small_int (make (Gen.int_range 1 25)) bool)
    (fun (seed, n, reject_all) ->
      let f i = (i * i) + seed in
      let family i = Hashtbl.hash (seed, i mod 4) land max_int in
      let prepopulate store =
        (* A deterministic subset is already cached, so both runs see the
           same hit/miss mix. *)
        for i = 0 to n - 1 do
          if (i + seed) mod 3 = 0 then Store.add store (sched_key i) (encode_int (f i))
        done
      in
      let decode = if reject_all then fun _ -> Error "stale codec" else decode_int in
      let run ?family () =
        with_temp_dir (fun dir ->
            Store.with_store dir (fun store ->
                prepopulate store;
                Sched.run ?family ~store ~key:sched_key ~encode:encode_int ~decode ~f ~n ()))
      in
      let out_u, stats_u = run () in
      let out_g, stats_g = run ~family () in
      out_u = out_g && stats_u = stats_g)

let test_sched_journal_checkpoints () =
  with_temp_dir (fun dir ->
      Store.with_store dir (fun store ->
          Journal.with_journal (Filename.concat dir "journal.jsonl") (fun j ->
              let f i = i in
              let _, _ =
                Sched.run ~shard:4 ~journal:(j, sweep_a) ~store ~key:sched_key
                  ~encode:encode_int ~decode:decode_int ~f ~n:10 ()
              in
              check_int "journal at full progress" 10 (Journal.progress j);
              check "journal finished" true (Journal.finished j))))

(* -------------------------------------------------------------------- *)
(* Kill-and-resume: the end-to-end contract                               *)

(* Simulate a SIGKILL mid-sweep: run a tiny tuning sweep through a
   store, then corrupt the artefacts the way a kill would (store segment
   truncated mid-record, journal left with a torn tail and no completion
   record), then resume. The resumed sweep must (a) resume rather than
   restart, (b) reproduce the uninterrupted sweep's tallies
   bit-identically, and (c) leave a store that verifies clean. *)
let test_kill_and_resume () =
  let config =
    { Tuning.n_envs = 2; site_iterations = 4; pte_iterations = 2; scale = 0.01; seed = 7 }
  in
  let devices = [ Lazy.force nvidia ] in
  let tests =
    List.filter
      (fun (e : Suite.entry) ->
        List.mem e.Suite.test.Litmus.name [ "MP-CO-m"; "CoRR-m" ])
      (Suite.mutants ())
  in
  let fingerprint runs =
    List.map
      (fun (r : Tuning.run) ->
        (r.Tuning.category, r.Tuning.env_index, r.Tuning.test_name, r.Tuning.result))
      runs
  in
  let baseline = fingerprint (Tuning.sweep ~devices ~tests config) in
  with_temp_dir (fun dir ->
      let jpath = Filename.concat dir "journal.jsonl" in
      let stored () =
        Store.with_store dir (fun store ->
            Journal.with_journal jpath (fun journal ->
                Tuning.sweep ~ctx:(Request.context ~store ~journal ()) ~devices ~tests config))
      in
      check "uninterrupted stored sweep identical" true (fingerprint (stored ()) = baseline);
      (* The kill: tear the store's last record and the journal's tail,
         and erase the completion record so the sweep reads as
         interrupted. *)
      let seg = first_segment dir in
      let len = (Unix.stat seg).Unix.st_size in
      Unix.truncate seg (len - 7);
      let jlines =
        In_channel.with_open_bin jpath In_channel.input_all
        |> String.split_on_char '\n'
        |> List.filter (fun l -> l <> "" && not (String.length l >= 11 && String.sub l 0 11 = "{\"finished\""))
      in
      let oc = open_out_bin jpath in
      List.iter (fun l -> output_string oc (l ^ "\n")) jlines;
      output_string oc "{\"done\":";
      close_out oc;
      (* Resume: the journal must report the sweep as resumable, the
         sweep must recompute only the torn-away cell(s), and the tallies
         must match the uninterrupted run exactly. *)
      Journal.with_journal jpath (fun j ->
          check "interrupted journal is unfinished" false (Journal.finished j));
      let resumed = stored () in
      check "resumed sweep bit-identical" true (fingerprint resumed = baseline);
      Journal.with_journal jpath (fun j ->
          check "journal finished after resume" true (Journal.finished j));
      (match Store.verify dir with
      | Ok r -> check "store verifies clean after resume" true (Store.verify_ok r)
      | Error e -> Alcotest.failf "verify: %s" e);
      (* And a third run is all hits — still identical. *)
      check "warm rerun identical" true (fingerprint (stored ()) = baseline))

(* -------------------------------------------------------------------- *)
(* Runner codecs: what the store persists must decode to what was
   computed, through an actual write-then-parse cycle.                    *)

let roundtrip to_json of_json v =
  match Mcm_util.Jsonp.parse (Jsonw.to_string (to_json v)) with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok json -> (
      match of_json json with
      | Ok v' -> v' = v
      | Error e -> Alcotest.failf "decode failed: %s" e)

let test_runner_codecs () =
  let device = Lazy.force nvidia in
  let test = Lazy.force mp_co_m in
  let env = Params.scaled Params.pte_baseline 0.01 in
  let result = Runner.run ~device ~env ~test ~iterations:3 ~seed:42 () in
  check "result round-trips" true (roundtrip Runner.result_to_json Runner.result_of_json result);
  let hist = Runner.run_with_histogram ~device ~env ~test ~iterations:3 ~seed:42 () in
  check "histogram cell round-trips" true
    (roundtrip Runner.histogram_cell_to_json Runner.histogram_cell_of_json hist);
  let outc = Runner.run_with_outcomes ~device ~env ~test ~iterations:3 ~seed:42 () in
  check "outcomes cell round-trips" true
    (roundtrip Runner.outcomes_cell_to_json Runner.outcomes_cell_of_json outc)

let test_runner_store_memoizes () =
  with_temp_dir (fun dir ->
      Store.with_store dir (fun store ->
          let device = Lazy.force nvidia in
          let test = Lazy.force mp_co_m in
          let env = Params.scaled Params.pte_baseline 0.01 in
          let r1 = Runner.run ~store ~device ~env ~test ~iterations:3 ~seed:42 () in
          check "campaign cached" true (Store.count store > 0);
          let n = Store.count store in
          let r2 = Runner.run ~store ~device ~env ~test ~iterations:3 ~seed:42 () in
          check "cached result identical" true (r1 = r2);
          check_int "no new records on warm run" n (Store.count store);
          (* A different seed is a different cell. *)
          ignore (Runner.run ~store ~device ~env ~test ~iterations:3 ~seed:43 ());
          check "new cell stored" true (Store.count store > n)))

let () =
  Alcotest.run "campaign"
    [
      ( "key",
        [
          Alcotest.test_case "fnv vectors" `Quick test_fnv_vectors;
          Alcotest.test_case "of_fields" `Quick test_key_of_fields;
          Alcotest.test_case "hex round-trip" `Quick test_key_hex_roundtrip;
          Alcotest.test_case "cell sensitivity" `Quick test_cell_key_sensitivity;
        ] );
      ( "store",
        [
          Alcotest.test_case "round-trip" `Quick test_store_roundtrip;
          Alcotest.test_case "first write wins" `Quick test_store_first_write_wins;
          Alcotest.test_case "persistence" `Quick test_store_persistence;
          Alcotest.test_case "torn tail" `Quick test_store_torn_tail;
          Alcotest.test_case "bad record + gc" `Quick test_store_bad_record_and_gc;
          Alcotest.test_case "segment roll" `Quick test_store_segment_roll;
          Alcotest.test_case "add after close" `Quick test_store_add_after_close;
          Alcotest.test_case "writer lock" `Quick test_store_writer_lock;
        ] );
      ( "journal",
        [
          Alcotest.test_case "fresh and finish" `Quick test_journal_fresh_and_finish;
          Alcotest.test_case "resume and mismatch" `Quick test_journal_resume_and_mismatch;
          Alcotest.test_case "torn tail" `Quick test_journal_torn_tail;
        ] );
      ( "sched",
        [
          Alcotest.test_case "cold then warm" `Quick test_sched_cold_then_warm;
          Alcotest.test_case "decode failure" `Quick test_sched_decode_failure_recomputes;
          Alcotest.test_case "journal checkpoints" `Quick test_sched_journal_checkpoints;
          QCheck_alcotest.to_alcotest prop_sched_family_grouping_invisible;
        ] );
      ( "resume",
        [ Alcotest.test_case "kill and resume" `Quick test_kill_and_resume ] );
      ( "runner",
        [
          Alcotest.test_case "codecs round-trip" `Quick test_runner_codecs;
          Alcotest.test_case "store memoizes" `Quick test_runner_store_memoizes;
        ] );
    ]
