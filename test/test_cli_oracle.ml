(* End-to-end tests of the `mcmutants oracle` engine selection, driven
   through the real binary (declared as a dune dep, so it is always the
   freshly built one). Three contracts:

   - `--engine {enumerate,propagate}` is accepted and round-trips into
     the `--json` report, so downstream tooling can tell which engine
     produced a given artifact;
   - an unknown engine is rejected up front with a message naming the
     valid choices, not a crash mid-run;
   - `--inject-bug` makes the run exit non-zero under BOTH engines — the
     self-test of the checker is engine-independent. *)

module Jsonp = Mcm_util.Jsonp

(* Under `dune runtest` the cwd is the test directory inside _build and
   the dep sits at ../bin/; under a bare `dune exec` from the project
   root it sits under _build/default/bin/. *)
let exe =
  let candidates =
    [
      Filename.concat ".." (Filename.concat "bin" "mcmutants.exe");
      Filename.concat "_build" (Filename.concat "default" (Filename.concat "bin" "mcmutants.exe"));
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates
let check = Alcotest.check Alcotest.bool
let engines = [ "enumerate"; "propagate" ]

(* Run [exe args], capturing combined stdout+stderr and the exit code. *)
let run_cli args =
  let out = Filename.temp_file "mcm_cli" ".out" in
  let code =
    Sys.command (Printf.sprintf "%s %s > %s 2>&1" (Filename.quote exe) args (Filename.quote out))
  in
  let ic = open_in_bin out in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove out;
  (code, text)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  at 0

let test_engine_round_trips_in_json () =
  List.iter
    (fun engine ->
      let json = Filename.temp_file "mcm_cli" ".json" in
      let code, output =
        run_cli
          (Printf.sprintf "oracle --engine %s --no-certify --smoke --test CoRR --json %s" engine
             (Filename.quote json))
      in
      if code <> 0 then Alcotest.failf "%s run failed (exit %d):\n%s" engine code output;
      let report =
        match Jsonp.parse_file json with
        | Ok j -> j
        | Error e -> Alcotest.failf "%s: bad JSON report: %s" engine e
      in
      Sys.remove json;
      check (engine ^ " recorded in report") true
        (Option.bind (Jsonp.member "engine" report) Jsonp.to_string_opt = Some engine);
      check (engine ^ " soundness present") true (Jsonp.member "soundness" report <> None))
    engines

let test_unknown_engine_rejected () =
  let code, output = run_cli "oracle --engine bogus --no-certify --no-soundness" in
  check "unknown engine exits non-zero" true (code <> 0);
  (* cmdliner's enum error names every valid choice. *)
  check "error names the bad value" true (contains ~needle:"bogus" output);
  check "error lists enumerate" true (contains ~needle:"enumerate" output);
  check "error lists propagate" true (contains ~needle:"propagate" output)

let test_injected_bug_fails_both_engines () =
  List.iter
    (fun engine ->
      let code, output =
        run_cli
          (Printf.sprintf "oracle --engine %s --no-certify --smoke --test CoRR --inject-bug" engine)
      in
      check (engine ^ " exits non-zero on injected bug") true (code = 1);
      check (engine ^ " reports the failure") true (contains ~needle:"failure" output))
    engines

let () =
  Alcotest.run "cli-oracle"
    [
      ( "engine",
        [
          Alcotest.test_case "round-trips in --json" `Quick test_engine_round_trips_in_json;
          Alcotest.test_case "unknown engine rejected" `Quick test_unknown_engine_rejected;
          Alcotest.test_case "injected bug fails both engines" `Quick
            test_injected_bug_fails_both_engines;
        ] );
    ]
