(* Tests for mcm_harness: tuning sweeps and the experiment drivers. These
   run tiny sweeps and check the structural and directional claims the
   paper's evaluation rests on (PTE beats SITE, bugs correlate with
   mutants, table shapes). *)

module Tuning = Mcm_harness.Tuning
module Experiments = Mcm_harness.Experiments
module Suite = Mcm_core.Suite
module Mutator = Mcm_core.Mutator
module Device = Mcm_gpu.Device
module Profile = Mcm_gpu.Profile
module Litmus = Mcm_litmus.Litmus
module Runner = Mcm_testenv.Runner
module Request = Mcm_testenv.Request
module Table = Mcm_util.Table

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tiny_config =
  { Tuning.n_envs = 3; site_iterations = 20; pte_iterations = 3; scale = 0.01; seed = 99 }

(* A pruned sweep shared by the tests below: two devices, six mutants. *)
let shared_runs =
  lazy
    (let devices = [ Device.make Profile.nvidia; Device.make Profile.intel ] in
     let tests =
       List.filter
         (fun (e : Suite.entry) ->
           List.mem e.Suite.test.Litmus.name
             [ "CoRR-m"; "CoWR-m"; "MP-CO-m"; "SB-CO-m"; "MP-relacq-m2"; "MP-relacq-m3" ])
         (Suite.mutants ())
     in
     Tuning.sweep ~devices ~tests tiny_config)

let test_sweep_shape () =
  let runs = Lazy.force shared_runs in
  (* categories: 2 baselines (1 env) + 2 tuned (3 envs) = 8 envs; x 2
     devices x 6 tests. *)
  check_int "run count" (8 * 2 * 6) (List.length runs);
  List.iter
    (fun (r : Tuning.run) ->
      check "instances positive" true (r.Tuning.result.Runner.instances > 0);
      check "sim time positive" true (r.Tuning.result.Runner.sim_time_s > 0.))
    runs

let test_sweep_deterministic () =
  let devices = [ Device.make Profile.amd ] in
  let tests =
    List.filter
      (fun (e : Suite.entry) -> e.Suite.test.Litmus.name = "MP-CO-m")
      (Suite.mutants ())
  in
  let go () =
    List.map
      (fun (r : Tuning.run) -> (r.Tuning.test_name, r.Tuning.env_index, r.Tuning.result))
      (Tuning.sweep ~devices ~tests tiny_config)
  in
  check "deterministic" true (go () = go ())

let test_sweep_parallel_equals_serial () =
  (* The sweep's grid points fan out over the pool; list order and every
     result must match the serial sweep for any domain count. *)
  let devices = [ Device.make Profile.nvidia; Device.make Profile.intel ] in
  let tests =
    List.filter
      (fun (e : Suite.entry) -> List.mem e.Suite.test.Litmus.name [ "CoRR-m"; "MP-CO-m" ])
      (Suite.mutants ())
  in
  let fingerprint ctx =
    List.map
      (fun (r : Tuning.run) ->
        (r.Tuning.category, r.Tuning.env_index, r.Tuning.test_name, r.Tuning.result))
      (Tuning.sweep ?ctx ~devices ~tests tiny_config)
  in
  let serial = fingerprint None in
  List.iter
    (fun k ->
      if fingerprint (Some (Request.context ~domains:k ())) <> serial then
        Alcotest.failf "sweep diverged at %d domains" k)
    [ 1; 2; 4; 8 ]

let test_table4_parallel_equals_serial () =
  let go ctx = Experiments.Table4.compute ?ctx ~n_envs:6 ~iterations:2 ~scale:0.01 () in
  let strip rows =
    (* %h keeps the comparison bit-exact while letting nan equal nan. *)
    List.map
      (fun (r : Experiments.Table4.row) ->
        ( r.Experiments.Table4.vendor,
          r.Experiments.Table4.best_mutant,
          Printf.sprintf "%h" r.Experiments.Table4.pcc ))
      rows
  in
  let serial = strip (go None) in
  check "table4 identical at 4 domains" true
    (strip (go (Some (Request.context ~domains:4 ()))) = serial)

let test_envs_for () =
  check_int "baseline has one env" 1 (List.length (Tuning.envs_for tiny_config Tuning.Site_baseline));
  check_int "tuned has n_envs" 3 (List.length (Tuning.envs_for tiny_config Tuning.Pte));
  (* Environments are drawn deterministically. *)
  check "stable" true (Tuning.envs_for tiny_config Tuning.Pte = Tuning.envs_for tiny_config Tuning.Pte)

let test_rate_lookup () =
  let runs = Lazy.force shared_runs in
  let found =
    List.exists
      (fun (r : Tuning.run) ->
        Tuning.rate runs r.Tuning.category ~test:r.Tuning.test_name
          ~device:(Device.name r.Tuning.device) ~env_index:r.Tuning.env_index
        = r.Tuning.result.Runner.rate)
      runs
  in
  check "lookup matches" true found;
  check "missing is zero" true
    (Tuning.rate runs Tuning.Pte ~test:"nope" ~device:"NVIDIA" ~env_index:0 = 0.)

let test_category_names () =
  Alcotest.(check (list string))
    "names"
    [ "SITE-baseline"; "SITE"; "PTE-baseline"; "PTE" ]
    (List.map Tuning.category_name Tuning.all_categories)

(* -------------------------------------------------------------------- *)
(* Experiment drivers                                                     *)

let test_table2_renders () =
  let s = Table.render (Experiments.table2 ()) in
  check "mentions combined row" true
    (String.split_on_char '\n' s |> List.exists (fun l -> String.length l > 0));
  List.iter
    (fun needle ->
      let contains hay needle =
        let n = String.length needle and h = String.length hay in
        let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
        go 0
      in
      check ("table2 has " ^ needle) true (contains s needle))
    [ "reversing-po-loc"; "weakening-sw"; "Combined"; "20"; "32" ]

let test_table3_renders () =
  let s = Table.render (Experiments.table3 ()) in
  List.iter
    (fun needle ->
      let contains hay needle =
        let n = String.length needle and h = String.length hay in
        let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
        go 0
      in
      check ("table3 has " ^ needle) true (contains s needle))
    [ "GeForce RTX 2080"; "Radeon Pro 5500M"; "Iris Plus Graphics"; "M1"; "Discrete"; "Integrated" ]

let test_fig5_scores_within_bounds () =
  let runs = Lazy.force shared_runs in
  List.iter
    (fun category ->
      let s = Experiments.Fig5.mutation_score runs category in
      check "score in unit interval" true (s >= 0. && s <= 1.);
      let r = Experiments.Fig5.avg_death_rate runs category in
      check "rate non-negative" true (r >= 0.))
    Tuning.all_categories

let test_fig5_pte_beats_site_baseline () =
  let runs = Lazy.force shared_runs in
  check "PTE-baseline score >= SITE-baseline score" true
    (Experiments.Fig5.mutation_score runs Tuning.Pte_baseline
    >= Experiments.Fig5.mutation_score runs Tuning.Site_baseline);
  check "PTE-baseline rate > SITE-baseline rate" true
    (Experiments.Fig5.avg_death_rate runs Tuning.Pte_baseline
    > Experiments.Fig5.avg_death_rate runs Tuning.Site_baseline)

let test_fig5_tables_render () =
  let runs = Lazy.force shared_runs in
  let tables = Experiments.Fig5.all_tables runs in
  check_int "eight panels" 8 (List.length tables);
  List.iter (fun (title, t) -> check title true (String.length (Table.render t) > 0)) tables

let test_fig5_device_filter () =
  let runs = Lazy.force shared_runs in
  let nv = Experiments.Fig5.mutation_score runs ~device:"NVIDIA" Tuning.Pte_baseline in
  check "per-device score valid" true (nv >= 0. && nv <= 1.)

let test_tuning_time_positive () =
  let runs = Lazy.force shared_runs in
  List.iter
    (fun (name, t) -> check (name ^ " time positive") true (t > 0.))
    (Experiments.Fig5.tuning_time runs)

let test_fig6_monotone_in_budget () =
  let runs = Lazy.force shared_runs in
  List.iter
    (fun target ->
      let prev = ref 0. in
      List.iter
        (fun budget ->
          let s = Experiments.Fig6.score runs Tuning.Pte ~target ~budget in
          check "monotone in budget" true (s >= !prev -. 1e-9);
          prev := s)
        Experiments.Fig6.budgets)
    Experiments.Fig6.targets

let test_fig6_lower_target_easier () =
  let runs = Lazy.force shared_runs in
  List.iter
    (fun budget ->
      check "95% >= 99.999%" true
        (Experiments.Fig6.score runs Tuning.Pte ~target:0.95 ~budget
        >= Experiments.Fig6.score runs Tuning.Pte ~target:0.99999 ~budget -. 1e-9))
    Experiments.Fig6.budgets

let test_fig6_table_renders () =
  let runs = Lazy.force shared_runs in
  check "renders" true (String.length (Table.render (Experiments.Fig6.table runs)) > 0)

let test_table4_correlations () =
  (* A small correlation study: high PCC for each of the paper's three
     bug cases, each statistically significant. *)
  let rows = Experiments.Table4.compute ~n_envs:24 ~iterations:6 ~scale:0.02 () in
  check_int "three cases" 3 (List.length rows);
  List.iter
    (fun (r : Experiments.Table4.row) ->
      (* The NVIDIA/MP-CO case is the weakest correlation in the paper
         too (.893); at test scale we accept anything strongly positive. *)
      check (r.Experiments.Table4.vendor ^ " strong correlation") true
        (r.Experiments.Table4.pcc > 0.75);
      check (r.Experiments.Table4.vendor ^ " significant") true
        (r.Experiments.Table4.p_value < 0.01))
    rows;
  check "renders" true (String.length (Table.render (Experiments.Table4.table rows)) > 0)

(* -------------------------------------------------------------------- *)
(* Results store (the artifact's JSON pipeline)                           *)

module Results = Mcm_harness.Results

let shared_records = lazy (Results.of_runs (Lazy.force shared_runs))

let test_results_roundtrip () =
  let records = Lazy.force shared_records in
  let path = Filename.temp_file "mcm" ".json" in
  (match Results.save path records with
  | Ok () -> ()
  | Error e -> Alcotest.failf "save: %s" e);
  (match Results.load path with
  | Ok loaded -> check "round-trip" true (loaded = records)
  | Error e -> Alcotest.failf "load: %s" e);
  Sys.remove path

let test_results_of_json_rejects_garbage () =
  check "not an object" true (Result.is_error (Results.of_json Mcm_util.Jsonw.Null));
  check "runs not records" true
    (Result.is_error (Results.of_json (Mcm_util.Jsonw.Obj [ ("runs", Mcm_util.Jsonw.List [ Mcm_util.Jsonw.Int 3 ]) ])))

let test_results_distinct () =
  let records = Lazy.force shared_records in
  Alcotest.(check (list string)) "devices" [ "NVIDIA"; "Intel" ] (Results.devices records);
  check_int "six tests" 6 (List.length (Results.tests records))

let test_results_rate_lookup_matches_tuning () =
  let runs = Lazy.force shared_runs in
  let records = Lazy.force shared_records in
  List.iter
    (fun (r : Tuning.run) ->
      let category = Tuning.category_name r.Tuning.category in
      check "rates agree" true
        (Results.rate records ~category ~test:r.Tuning.test_name
           ~device:(Device.name r.Tuning.device) ~env_index:r.Tuning.env_index
        = r.Tuning.result.Runner.rate))
    runs

let test_results_mutation_score () =
  let records = Lazy.force shared_records in
  let rows = Results.mutation_score records ~category:"PTE-baseline" in
  check "has combined row" true (List.exists (fun (l, _, _) -> l = "Combined") rows);
  List.iter
    (fun (label, score, rate) ->
      check (label ^ " score in unit") true (score >= 0. && score <= 1.);
      check (label ^ " rate non-negative") true (rate >= 0.))
    rows;
  (* The combined row averages over all mutants of the pruned sweep. *)
  match List.find_opt (fun (l, _, _) -> l = "Combined") rows with
  | Some (_, score, _) -> check "some mutants killed" true (score > 0.)
  | None -> Alcotest.fail "missing combined row"

let test_results_merge_score () =
  let records = Lazy.force shared_records in
  let score = Results.merge_score records ~category:"PTE" ~target:0.95 ~budget:64. in
  check "in unit interval" true (score >= 0. && score <= 1.);
  let strict = Results.merge_score records ~category:"PTE" ~target:0.99999 ~budget:(1. /. 1024.) in
  check "stricter never higher" true (strict <= score)

let test_results_correlation_matrix () =
  let records = Lazy.force shared_records in
  let tests = [ "CoRR-m"; "MP-CO-m" ] in
  let m = Results.correlation_matrix records ~category:"PTE" ~tests in
  check_int "square" 2 (Array.length m);
  check "diagonal is 1 (or nan)" true
    (Float.is_nan m.(0).(0) || abs_float (m.(0).(0) -. 1.) < 1e-9);
  check "symmetric" true
    ((Float.is_nan m.(0).(1) && Float.is_nan m.(1).(0)) || abs_float (m.(0).(1) -. m.(1).(0)) < 1e-9)

(* -------------------------------------------------------------------- *)
(* Environment-variable parsing: a malformed value must fail loudly,
   naming the variable — not silently fall back to the default. *)

let with_env name value f =
  let old = Sys.getenv_opt name in
  Unix.putenv name value;
  Fun.protect
    ~finally:(fun () -> Unix.putenv name (Option.value old ~default:""))
    f

let contains_sub msg sub =
  let n = String.length sub in
  let found = ref false in
  for i = 0 to String.length msg - n do
    if String.sub msg i n = sub then found := true
  done;
  !found

let test_env_var_valid () =
  with_env "MCM_TEST_FLOAT" "0.25" (fun () ->
      check "parsed float" true (Tuning.env_float "MCM_TEST_FLOAT" 1.0 = 0.25));
  with_env "MCM_TEST_INT" "42" (fun () ->
      check_int "parsed int" 42 (Tuning.env_int "MCM_TEST_INT" 7))

let test_env_var_default () =
  (* Unset and empty both mean "use the default". *)
  check "unset float" true (Tuning.env_float "MCM_TEST_UNSET_F" 1.5 = 1.5);
  check_int "unset int" 7 (Tuning.env_int "MCM_TEST_UNSET_I" 7);
  with_env "MCM_TEST_EMPTY" "" (fun () ->
      check "empty float" true (Tuning.env_float "MCM_TEST_EMPTY" 2.5 = 2.5);
      check_int "empty int" 9 (Tuning.env_int "MCM_TEST_EMPTY" 9))

let test_env_var_malformed () =
  let expect_failure name kind value f =
    with_env name value (fun () ->
        match f () with
        | _ -> Alcotest.failf "%s=%S should have been rejected" name value
        | exception Failure msg ->
            check (Printf.sprintf "%s error names the variable" name) true
              (contains_sub msg name);
            check (Printf.sprintf "%s error names the expected type" name) true
              (contains_sub msg kind))
  in
  expect_failure "MCM_SCALE" "float" "bogus" (fun () -> Tuning.env_float "MCM_SCALE" 0.02);
  expect_failure "MCM_ENVS" "int" "3.5" (fun () -> Tuning.env_int "MCM_ENVS" 150);
  expect_failure "MCM_ENVS" "int" "12abc" (fun () -> Tuning.env_int "MCM_ENVS" 150);
  expect_failure "MCM_SITE_ITERS" "int" " " (fun () -> Tuning.env_int "MCM_SITE_ITERS" 1000)

let test_env_var_default_config_strict () =
  with_env "MCM_SCALE" "not-a-number" (fun () ->
      match Tuning.default_config () with
      | _ -> Alcotest.fail "default_config should reject a malformed MCM_SCALE"
      | exception Failure msg -> check "mentions MCM_SCALE" true (contains_sub msg "MCM_SCALE"))

let () =
  Alcotest.run "harness"
    [
      ( "env",
        [
          Alcotest.test_case "valid values parse" `Quick test_env_var_valid;
          Alcotest.test_case "unset/empty use default" `Quick test_env_var_default;
          Alcotest.test_case "malformed values rejected" `Quick test_env_var_malformed;
          Alcotest.test_case "default_config is strict" `Quick test_env_var_default_config_strict;
        ] );
      ( "tuning",
        [
          Alcotest.test_case "sweep shape" `Quick test_sweep_shape;
          Alcotest.test_case "sweep deterministic" `Quick test_sweep_deterministic;
          Alcotest.test_case "sweep parallel == serial" `Quick test_sweep_parallel_equals_serial;
          Alcotest.test_case "table4 parallel == serial" `Slow test_table4_parallel_equals_serial;
          Alcotest.test_case "envs_for" `Quick test_envs_for;
          Alcotest.test_case "rate lookup" `Quick test_rate_lookup;
          Alcotest.test_case "category names" `Quick test_category_names;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "table2 renders" `Quick test_table2_renders;
          Alcotest.test_case "table3 renders" `Quick test_table3_renders;
          Alcotest.test_case "fig5 bounds" `Quick test_fig5_scores_within_bounds;
          Alcotest.test_case "fig5 PTE beats SITE baseline" `Quick test_fig5_pte_beats_site_baseline;
          Alcotest.test_case "fig5 tables render" `Quick test_fig5_tables_render;
          Alcotest.test_case "fig5 device filter" `Quick test_fig5_device_filter;
          Alcotest.test_case "tuning time" `Quick test_tuning_time_positive;
          Alcotest.test_case "fig6 monotone in budget" `Quick test_fig6_monotone_in_budget;
          Alcotest.test_case "fig6 target ordering" `Quick test_fig6_lower_target_easier;
          Alcotest.test_case "fig6 table renders" `Quick test_fig6_table_renders;
          Alcotest.test_case "table4 correlations" `Slow test_table4_correlations;
        ] );
      ( "results",
        [
          Alcotest.test_case "round-trip" `Quick test_results_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_results_of_json_rejects_garbage;
          Alcotest.test_case "distinct" `Quick test_results_distinct;
          Alcotest.test_case "rate lookup" `Quick test_results_rate_lookup_matches_tuning;
          Alcotest.test_case "mutation score" `Quick test_results_mutation_score;
          Alcotest.test_case "merge score" `Quick test_results_merge_score;
          Alcotest.test_case "correlation matrix" `Quick test_results_correlation_matrix;
        ] );
    ]
