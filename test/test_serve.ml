(* Tests for mcm_serve: the JSONL wire protocol (qcheck round-trip
   properties over hostile strings and non-finite floats, incremental
   framing under arbitrary chunking), the read-only store snapshot that
   backs lock-free `cache stats` while a daemon writes, and the daemon
   itself — forked as a real process and driven over its Unix socket:
   warm hits, cross-client dedup with bit-identical payloads,
   kill-and-resume (SIGKILL mid-grid, restart, only missing cells
   recompute), drain and graceful shutdown. *)

module Proto = Mcm_serve.Proto
module Server = Mcm_serve.Server
module Client = Mcm_serve.Client
module Key = Mcm_campaign.Key
module Store = Mcm_campaign.Store
module Jsonw = Mcm_util.Jsonw
module Params = Mcm_testenv.Params
module Request = Mcm_testenv.Request

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let dir_counter = ref 0

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun name -> rm_rf (Filename.concat path name)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_temp_dir f =
  incr dir_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mcm-serve-test-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let append_raw path s =
  let oc = open_out_gen [ Open_append; Open_wronly; Open_binary; Open_creat ] 0o644 path in
  output_string oc s;
  close_out oc

(* -------------------------------------------------------------------- *)
(* Protocol round-trips                                                   *)

(* Strings with every hostile byte class the escaper handles: control
   characters, quotes, backslashes, newlines (the framing delimiter
   itself) and high bytes. *)
let gen_string =
  QCheck2.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (int_bound 30))

let gen_float =
  QCheck2.Gen.(
    oneof
      [
        float;
        oneofl [ nan; infinity; neg_infinity; 0.; -0.; 1e-300; 1.7976931348623157e308 ];
      ])

let gen_json =
  QCheck2.Gen.(
    sized @@ fix (fun self n ->
        let scalar =
          oneof
            [
              return Jsonw.Null;
              map (fun b -> Jsonw.Bool b) bool;
              map (fun i -> Jsonw.Int i) int;
              map (fun f -> Jsonw.Float f) gen_float;
              map (fun s -> Jsonw.String s) gen_string;
            ]
        in
        if n <= 0 then scalar
        else
          oneof
            [
              scalar;
              map (fun l -> Jsonw.List l) (list_size (int_bound 3) (self (n / 2)));
              map
                (fun l -> Jsonw.Obj l)
                (list_size (int_bound 3) (pair gen_string (self (n / 2))));
            ]))

let gen_env = QCheck2.Gen.oneofl [ Params.site_baseline; Params.scaled Params.pte_baseline 0.02 ]

let gen_cell =
  QCheck2.Gen.(
    map
      (fun (test, (device, bugs, env, iterations, seed, engine)) ->
        {
          Proto.c_test = test;
          c_device = device;
          c_bugs = bugs;
          c_env = env;
          c_iterations = iterations;
          c_seed = seed;
          c_engine = engine;
        })
      (pair
         (oneof
            [
              map (fun s -> Proto.Name s) gen_string;
              map (fun s -> Proto.Source s) gen_string;
            ])
         (tup6 gen_string bool gen_env nat nat
            (oneofl [ Request.Interpreter; Request.Kernel ]))))

let gen_client_msg =
  QCheck2.Gen.(
    oneof
      [
        map (fun (c, p) -> Proto.Hello { client = c; protocol = p }) (pair gen_string nat);
        map
          (fun (id, kind, priority, cells) -> Proto.Submit { id; kind; priority; cells })
          (tup4 gen_string gen_string int (list_size (int_bound 4) gen_cell));
        oneofl [ Proto.Watch; Proto.Report; Proto.Queue; Proto.Drain; Proto.Shutdown; Proto.Ping ];
      ])

let gen_server_msg =
  QCheck2.Gen.(
    oneof
      [
        map
          (fun (p, k, s) -> Proto.Welcome { protocol = p; key_version = k; server = s })
          (tup3 nat gen_string gen_string);
        map
          (fun (id, total, hits, queued, joined) -> Proto.Ack { id; total; hits; queued; joined })
          (tup5 gen_string nat nat nat nat);
        map
          (fun (id, cell, key, cached, payload) ->
            Proto.Result { id; cell; key; cached; payload })
          (tup5 gen_string nat gen_string bool gen_json);
        map (fun id -> Proto.Done { id }) gen_string;
        map
          (fun (queued, inflight, clients, served, computed) ->
            Proto.Progress { queued; inflight; clients; served; computed })
          (tup5 nat nat nat nat nat);
        map (fun (op, data) -> Proto.Reply { op; data }) (pair gen_string gen_json);
        return Proto.Pong;
        map (fun reason -> Proto.Bye { reason }) gen_string;
        map
          (fun (id, message) -> Proto.Error { id; message })
          (pair (option gen_string) gen_string);
      ])

(* Print/parse idempotence is the protocol's stability contract: decoded
   values need not compare equal (a NaN payload never does), but the
   line they re-serialize to must be byte-identical. *)
let prop_client_roundtrip =
  QCheck2.Test.make ~name:"client line round-trip" ~count:500 gen_client_msg (fun msg ->
      let line = Proto.client_to_line msg in
      (String.length line > 0 && line.[String.length line - 1] = '\n')
      &&
      match Proto.client_of_line line with
      | Error e -> QCheck2.Test.fail_reportf "parse failed: %s on %s" e line
      | Ok msg' -> Proto.client_to_line msg' = line)

let prop_server_roundtrip =
  QCheck2.Test.make ~name:"server line round-trip" ~count:500
    ~print:(fun m -> String.escaped (Proto.server_to_line m))
    gen_server_msg (fun msg ->
      let line = Proto.server_to_line msg in
      (not (String.contains (String.sub line 0 (String.length line - 1)) '\n'))
      &&
      match Proto.server_of_line line with
      | Error e -> QCheck2.Test.fail_reportf "parse failed: %s on %s" e line
      | Ok msg' -> Proto.server_to_line msg' = line)

(* Framing: any chunking of a message stream reassembles exactly the
   original lines, in order, regardless of where the cuts fall. *)
let prop_frame_chunking =
  QCheck2.Test.make ~name:"frame reassembles any chunking" ~count:200
    QCheck2.Gen.(pair (list_size (int_range 1 6) gen_server_msg) (list_size (int_bound 20) (int_range 1 7)))
    (fun (msgs, cuts) ->
      let stream = String.concat "" (List.map Proto.server_to_line msgs) in
      let frame = Proto.Frame.create () in
      let lines = ref [] in
      let pos = ref 0 in
      let cuts = ref cuts in
      while !pos < String.length stream do
        let step =
          match !cuts with
          | c :: rest ->
              cuts := rest;
              min c (String.length stream - !pos)
          | [] -> String.length stream - !pos
        in
        lines := !lines @ Proto.Frame.feed frame (String.sub stream !pos step);
        pos := !pos + step
      done;
      Proto.Frame.pending frame = 0
      && List.map (fun m -> Proto.server_to_line m) msgs
         = List.map (fun l -> l ^ "\n") !lines)

(* -------------------------------------------------------------------- *)
(* Read-only store snapshots                                              *)

let k_of i = Key.of_string (Printf.sprintf "key-%d" i)
let v_of i = Jsonw.Obj [ ("v", Jsonw.Int i) ]

(* The regression this PR fixes: a reader must be able to open a store
   while a writer (sweep or daemon) holds DIR/LOCK. The reader is a real
   fork so the POSIX lock is actually foreign to it. *)
let test_ro_open_while_locked () =
  with_temp_dir (fun dir ->
      Store.with_store dir (fun store ->
          Store.add store (k_of 1) (v_of 1);
          Store.add store (k_of 2) (v_of 2);
          Store.flush store;
          match Unix.fork () with
          | 0 ->
              let code =
                match Store.Ro.open_ro dir with
                | ro ->
                    if
                      Store.Ro.count ro = 2
                      && Store.Ro.find ro (k_of 1) = Some (v_of 1)
                      && Store.Ro.mem ro (k_of 2)
                      && not (Store.Ro.mem ro (k_of 3))
                    then 0
                    else 1
                | exception _ -> 2
              in
              Unix._exit code
          | pid -> (
              match snd (Unix.waitpid [] pid) with
              | Unix.WEXITED 0 -> ()
              | Unix.WEXITED 1 -> Alcotest.fail "snapshot saw wrong contents"
              | Unix.WEXITED 2 -> Alcotest.fail "read-only open failed under the writer lock"
              | _ -> Alcotest.fail "reader child crashed")))

(* Mid-append: a torn trailing line (the writer is between write and
   flush, or crashed) is skipped — never repaired — and everything
   before it is served. *)
let test_ro_torn_tail () =
  with_temp_dir (fun dir ->
      Store.with_store dir (fun store ->
          Store.add store (k_of 1) (v_of 1);
          Store.flush store);
      let seg = Filename.concat dir "segment-000000.jsonl" in
      let before = (Unix.stat seg).Unix.st_size in
      append_raw seg "{\"k\":\"0123456789abcdef\",\"v\":{\"half";
      let ro = Store.Ro.open_ro dir in
      check_int "only the complete record" 1 (Store.Ro.count ro);
      check "warns about the tail" true (Store.Ro.warnings ro <> []);
      check "tail left for the writer" true ((Unix.stat seg).Unix.st_size > before))

(* -------------------------------------------------------------------- *)
(* The daemon, forked                                                     *)

let test_env = Params.scaled Params.pte_baseline 0.02

let mk_cell ?(iterations = 60) ?(seed = 11) name =
  {
    Proto.c_test = Proto.Name name;
    c_device = "nvidia";
    c_bugs = false;
    c_env = test_env;
    c_iterations = iterations;
    c_seed = seed;
    c_engine = Request.Kernel;
  }

let spawn_daemon ?(jobs = 2) ~dir () =
  let socket = Filename.concat dir "serve.sock" in
  let store = Filename.concat dir "store" in
  match Unix.fork () with
  | 0 ->
      (* Child: run the daemon; _exit skips the parent's atexit and
         alcotest reporting. Quiet stderr keeps test output readable. *)
      let code =
        try
          let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
          Unix.dup2 devnull Unix.stderr;
          ignore
            (Server.run
               { Server.store_dir = store; socket_path = socket; port = None; jobs; verbose = false });
          0
        with _ -> 1
      in
      Unix._exit code
  | pid -> (pid, socket, store)

let wait_daemon pid =
  match snd (Unix.waitpid [] pid) with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED n -> Alcotest.failf "daemon exited %d" n
  | _ -> Alcotest.fail "daemon crashed"

let connect_ok ?name socket =
  match Client.connect ?name socket with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect: %s" e

let shutdown_daemon socket pid =
  let c = connect_ok ~name:"shutdown" socket in
  Client.send c Proto.Shutdown;
  (match Client.recv c with Ok (Proto.Bye _) | Error _ -> () | Ok _ -> ());
  Client.close c;
  wait_daemon pid

let payload_str r = Jsonw.to_string r.Client.payload

(* A raw submission driven by hand (Client.submit hides the Ack split
   timing we need): send, then collect Ack/Result/Done for [id]. *)
let collect client id n =
  let results = Array.make n None in
  let ack = ref None in
  let rec wait () =
    match Client.recv client with
    | Error e -> Alcotest.failf "recv: %s" e
    | Ok (Proto.Ack { id = aid; hits; queued; joined; _ }) when aid = id ->
        ack := Some (hits, queued, joined);
        wait ()
    | Ok (Proto.Result { id = rid; cell; key; cached; payload }) when rid = id ->
        results.(cell) <- Some { Client.key; cached; payload };
        wait ()
    | Ok (Proto.Done { id = did }) when did = id -> ()
    | Ok (Proto.Error { message; _ }) -> Alcotest.failf "daemon error: %s" message
    | Ok _ -> wait ()
  in
  wait ();
  match !ack with
  | None -> Alcotest.fail "no ack"
  | Some (hits, queued, joined) ->
      (hits, queued, joined, Array.map (fun r -> Option.get r) results)

(* Two clients submit the same 2-cell grid back to back. Whatever the
   interleaving — B joins A's queued cells, or warm-hits ones A already
   forced — each distinct cell is computed exactly once and both clients
   receive bit-identical payloads. *)
let test_two_clients_dedup () =
  with_temp_dir (fun dir ->
      let pid, socket, _store = spawn_daemon ~dir () in
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists socket then shutdown_daemon socket pid)
        (fun () ->
          let a = connect_ok ~name:"a" socket in
          let b = connect_ok ~name:"b" socket in
          let cells = [ mk_cell "MP-CO-m"; mk_cell "LB-CO-m" ] in
          Client.send a (Proto.Submit { id = "grid-a"; kind = "run"; priority = 0; cells });
          Client.send b (Proto.Submit { id = "grid-b"; kind = "run"; priority = 0; cells });
          let a_hits, a_queued, a_joined, a_res = collect a "grid-a" 2 in
          let b_hits, b_queued, b_joined, b_res = collect b "grid-b" 2 in
          check_int "A misses cold" 0 a_hits;
          check_int "A queues both" 2 a_queued;
          check_int "A joins nothing" 0 a_joined;
          check_int "B queues nothing (dedup)" 0 b_queued;
          check_int "B fully deduplicated" 2 (b_hits + b_joined);
          check "A computed, not cached" true (Array.for_all (fun r -> not r.Client.cached) a_res);
          for i = 0 to 1 do
            check_str
              (Printf.sprintf "cell %d bit-identical across clients" i)
              (payload_str a_res.(i))
              (payload_str b_res.(i));
            check_str
              (Printf.sprintf "cell %d same key" i)
              a_res.(i).Client.key b_res.(i).Client.key
          done;
          (* The daemon's own ledger agrees: 4 cells served, 2 computed. *)
          Client.send a Proto.Report;
          let rec reply () =
            match Client.recv a with
            | Ok (Proto.Reply { op = "report"; data }) -> data
            | Ok _ -> reply ()
            | Error e -> Alcotest.failf "report: %s" e
          in
          let data = reply () in
          let module Jsonp = Mcm_util.Jsonp in
          let total name =
            Option.value ~default:(-1)
              (Option.bind
                 (Option.bind (Jsonp.member "totals" data) (Jsonp.member name))
                 Jsonp.to_int)
          in
          check_int "4 cells submitted" 4 (total "cells");
          check_int "each distinct cell computed once" 2 (total "computed");
          check_int "dedup accounted" 2 (total "hits" + total "joined");
          Client.close a;
          Client.close b;
          shutdown_daemon socket pid))

(* Warm restart: a second daemon over the same store answers the whole
   grid from disk. *)
let test_warm_across_restart () =
  with_temp_dir (fun dir ->
      let cells = [ mk_cell "MP-CO-m"; mk_cell "SB-CO-m" ] in
      let pid, socket, _store = spawn_daemon ~dir () in
      let a = connect_ok socket in
      let _, _, _, cold =
        Client.send a (Proto.Submit { id = "g1"; kind = "run"; priority = 0; cells });
        collect a "g1" 2
      in
      Client.close a;
      shutdown_daemon socket pid;
      let pid, socket, _store = spawn_daemon ~dir () in
      let b = connect_ok socket in
      Client.send b (Proto.Submit { id = "g2"; kind = "run"; priority = 0; cells });
      let hits, queued, _, warm = collect b "g2" 2 in
      check_int "all warm" 2 hits;
      check_int "nothing queued" 0 queued;
      check "served from cache" true (Array.for_all (fun r -> r.Client.cached) warm);
      for i = 0 to 1 do
        check_str "restart-stable payload" (payload_str cold.(i)) (payload_str warm.(i))
      done;
      Client.close b;
      shutdown_daemon socket pid)

(* SIGKILL mid-grid. Every result a client saw was fsynced first, so a
   restarted daemon warm-hits exactly those cells (the stale socket file
   the kill left behind must not stop it from binding). *)
let test_kill_and_resume () =
  with_temp_dir (fun dir ->
      let cells =
        [ mk_cell "MP-CO-m"; mk_cell "LB-CO-m"; mk_cell "SB-CO-m"; mk_cell "S-CO-m" ]
      in
      let pid, socket, store = spawn_daemon ~dir () in
      let a = connect_ok socket in
      Client.send a (Proto.Submit { id = "g1"; kind = "run"; priority = 0; cells });
      (* Take the first delivered result, then kill the daemon cold. *)
      let first = ref None in
      let rec until_first () =
        match Client.recv a with
        | Ok (Proto.Result { cell; payload; _ }) -> first := Some (cell, payload)
        | Ok _ -> until_first ()
        | Error e -> Alcotest.failf "recv: %s" e
      in
      until_first ();
      Unix.kill pid Sys.sigkill;
      ignore (Unix.waitpid [] pid);
      Client.close a;
      check "socket file left behind by SIGKILL" true (Sys.file_exists socket);
      (* The delivered cell is on disk despite the kill. *)
      let ro = Store.Ro.open_ro store in
      let stored = Store.Ro.count ro in
      check "delivered results were durable" true (stored >= 1);
      (* Restart over the stale socket; resubmit the same grid. *)
      let pid, socket, _store = spawn_daemon ~dir () in
      let b = connect_ok socket in
      Client.send b (Proto.Submit { id = "g2"; kind = "run"; priority = 0; cells });
      let hits, queued, joined, res = collect b "g2" 4 in
      check_int "stored cells warm-hit" stored hits;
      check_int "only missing cells re-execute" (4 - stored) queued;
      check_int "no joins" 0 joined;
      (* The pre-kill result is bit-identical on resume. *)
      (match !first with
      | Some (cell, payload) ->
          check "pre-kill cell served from cache" true res.(cell).Client.cached;
          check_str "bit-identical across the kill" (Jsonw.to_string payload)
            (payload_str res.(cell))
      | None -> Alcotest.fail "no result before the kill");
      Client.close b;
      shutdown_daemon socket pid)

(* Drain refuses new submissions but still serves admin traffic;
   shutdown farewells cleanly. *)
let test_drain_and_shutdown () =
  with_temp_dir (fun dir ->
      let pid, socket, _store = spawn_daemon ~dir () in
      let c = connect_ok socket in
      Client.send c Proto.Drain;
      (let rec drained () =
         match Client.recv c with
         | Ok (Proto.Reply { op = "drain"; _ }) -> ()
         | Ok _ -> drained ()
         | Error e -> Alcotest.failf "drain: %s" e
       in
       drained ());
      Client.send c (Proto.Submit { id = "late"; kind = "run"; priority = 0; cells = [ mk_cell "MP-CO-m" ] });
      (match Client.recv c with
      | Ok (Proto.Error { id = Some "late"; _ }) -> ()
      | Ok m -> Alcotest.failf "draining daemon accepted a submission: %s" (Proto.server_to_line m)
      | Error e -> Alcotest.failf "recv: %s" e);
      Client.send c Proto.Ping;
      (match Client.recv c with
      | Ok Proto.Pong -> ()
      | _ -> Alcotest.fail "draining daemon must still pong");
      Client.send c Proto.Shutdown;
      (match Client.recv c with
      | Ok (Proto.Bye _) | Error _ -> ()
      | Ok m -> Alcotest.failf "expected bye, got %s" (Proto.server_to_line m));
      Client.close c;
      wait_daemon pid;
      check "socket removed on graceful exit" false (Sys.file_exists socket))

(* A client speaking the wrong protocol version is refused at hello. *)
let test_protocol_mismatch () =
  with_temp_dir (fun dir ->
      let pid, socket, _store = spawn_daemon ~dir () in
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let rec dial tries =
        match Unix.connect fd (Unix.ADDR_UNIX socket) with
        | () -> ()
        | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) when tries > 0 ->
            Unix.sleepf 0.05;
            dial (tries - 1)
      in
      dial 100;
      let line = Proto.client_to_line (Proto.Hello { client = "old"; protocol = 999 }) in
      ignore (Unix.write_substring fd line 0 (String.length line));
      let buf = Bytes.create 4096 in
      let n = Unix.read fd buf 0 4096 in
      let frame = Proto.Frame.create () in
      let lines = Proto.Frame.feed frame (Bytes.sub_string buf 0 n) in
      (match List.map Proto.server_of_line lines with
      | Ok (Proto.Error { message; _ }) :: _ ->
          check "names the mismatch" true
            (String.length message > 0
            && Option.is_some
                 (String.index_opt message '9') (* "client sent 999" *))
      | _ -> Alcotest.fail "expected an error for a protocol mismatch");
      Unix.close fd;
      shutdown_daemon socket pid)

let () =
  Alcotest.run "serve"
    [
      ( "proto",
        [
          QCheck_alcotest.to_alcotest prop_client_roundtrip;
          QCheck_alcotest.to_alcotest prop_server_roundtrip;
          QCheck_alcotest.to_alcotest prop_frame_chunking;
        ] );
      ( "ro-store",
        [
          Alcotest.test_case "open while locked" `Quick test_ro_open_while_locked;
          Alcotest.test_case "torn tail" `Quick test_ro_torn_tail;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "two clients dedup" `Quick test_two_clients_dedup;
          Alcotest.test_case "warm across restart" `Quick test_warm_across_restart;
          Alcotest.test_case "kill and resume" `Quick test_kill_and_resume;
          Alcotest.test_case "drain and shutdown" `Quick test_drain_and_shutdown;
          Alcotest.test_case "protocol mismatch" `Quick test_protocol_mismatch;
        ] );
    ]
