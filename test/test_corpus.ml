(* The generated-corpus subsystem: shape parsing, enumerator soundness
   (rediscovery of the classic two-location tests from the bare 2x4x2
   space), the oracle-certified admission gate (both engines must agree
   on every verdict), the operator layer, print/parse round-trips that
   preserve store identity, and corpus serialization. *)

module Model = Mcm_memmodel.Model
module Litmus = Mcm_litmus.Litmus
module Library = Mcm_litmus.Library
module Parse = Mcm_litmus.Parse
module Enumerate = Mcm_litmus.Enumerate
module Mutator = Mcm_core.Mutator
module Suite = Mcm_core.Suite
module Engine = Mcm_oracle.Engine
module Outcome = Mcm_oracle.Outcome
module Key = Mcm_campaign.Key
module Shape = Mcm_corpus.Shape
module Generate = Mcm_corpus.Generate
module Admit = Mcm_corpus.Admit
module Corpus = Mcm_corpus.Corpus
module Version = Mcm_corpus.Version

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Shape                                                                *)

let test_shape_parse () =
  (match Shape.of_spec "2x4x2" with
  | Ok s ->
      check_int "threads" 2 s.Shape.threads;
      check_int "events" 4 s.Shape.events;
      check_int "locs" 2 s.Shape.locs;
      check_bool "no rmw" false s.Shape.rmw
  | Error e -> Alcotest.failf "2x4x2 rejected: %s" e);
  (match Shape.of_spec ~rmw:true ~fence:true "3x6x3" with
  | Ok s ->
      check_bool "rmw" true s.Shape.rmw;
      check_bool "fence" true s.Shape.fence
  | Error e -> Alcotest.failf "3x6x3 rejected: %s" e);
  check_string "spec round-trip" "2x4x2" (Shape.to_spec Shape.default)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  at 0

let test_shape_strict () =
  let fails ~mentions spec =
    match Shape.of_spec spec with
    | Ok _ -> Alcotest.failf "%S accepted" spec
    | Error e ->
        check_bool (Printf.sprintf "%S error mentions %S (got %S)" spec mentions e) true
          (contains ~needle:mentions e)
  in
  fails ~mentions:"THREADSxEVENTSxLOCS" "2x4";
  fails ~mentions:"THREADSxEVENTSxLOCS" "banana";
  fails ~mentions:"threads" "axbxc";
  fails ~mentions:"threads must be in" "7x4x2";
  fails ~mentions:"events must be in" "2x9x2";
  fails ~mentions:"events must be in" "3x2x2";
  fails ~mentions:"locations must be in" "2x4x0";
  (* JSON round-trip *)
  let s = { Shape.threads = 3; events = 5; locs = 2; rmw = true; fence = false; wg_fence = false } in
  match Shape.of_json (Mcm_util.Jsonw.Obj (Shape.fields s)) with
  | Ok s' -> check_bool "json round-trip" true (s = s')
  | Error e -> Alcotest.failf "shape json round-trip: %s" e

(* ------------------------------------------------------------------ *)
(* Generator                                                            *)

let test_enumerate_deterministic () =
  let shape = Shape.default in
  let a, raw_a = Generate.enumerate shape in
  let b, raw_b = Generate.enumerate shape in
  check_bool "same skeletons" true (a = b);
  check_int "same raw count" raw_a raw_b;
  check_bool "nonempty" true (a <> []);
  check_bool "raw >= canonical" true (raw_a >= List.length a);
  (* every canonical skeleton is a fixpoint of canonicalization *)
  List.iter
    (fun sk ->
      check_bool
        ("canonical fixpoint: " ^ Generate.to_string sk)
        true
        (Generate.canonical sk = sk))
    a

let test_canonical_modulo_renaming () =
  (* mp and its thread/location relabellings collapse to one skeleton *)
  let open Generate in
  let mp = [| [ St 0; St 1 ]; [ Ld 1; Ld 0 ] |] in
  let swapped_threads = [| [ Ld 1; Ld 0 ]; [ St 0; St 1 ] |] in
  let swapped_locs = [| [ St 1; St 0 ]; [ Ld 0; Ld 1 ] |] in
  let c = canonical mp in
  check_bool "thread perm" true (canonical swapped_threads = c);
  check_bool "loc perm" true (canonical swapped_locs = c);
  (* concretization is well-formed *)
  let test =
    {
      Litmus.name = "c";
      family = "t";
      model = Model.Sc_per_location;
      threads = concretize c;
      nlocs = nlocs c;
      target = (fun _ -> false);
      target_desc = "false";
    }
  in
  match Litmus.well_formed test with
  | Ok () -> ()
  | Error e -> Alcotest.failf "concretized canonical mp not well-formed: %s" e

let test_sample_deterministic () =
  let xs = List.init 100 Fun.id in
  let a = Generate.sample ~seed:7 ~bound:10 xs in
  let b = Generate.sample ~seed:7 ~bound:10 xs in
  check_bool "same sample" true (a = b);
  check_int "bound respected" 10 (List.length a);
  check_bool "order preserved" true (List.sort compare a = a);
  check_bool "different seed, different sample" true (Generate.sample ~seed:8 ~bound:10 xs <> a);
  check_bool "bound >= n is identity" true (Generate.sample ~seed:7 ~bound:200 xs = xs)

(* ------------------------------------------------------------------ *)
(* Rediscovery of the classics                                          *)

(* The corpus of the bare classic space, admission-gated. Computed once:
   the 2x4x2 derivation is the expensive part of this file. *)
let classic_entries =
  lazy
    (Admit.generated ~model:Model.Sc_per_location ~domains:2 Shape.default)

let satisfying_outcomes test =
  List.filter test.Litmus.target
    (List.sort_uniq compare
       (List.map (Litmus.outcome_of_execution test) (Enumerate.candidates test)))

let test_rediscovers_classics () =
  let entries, _ = Lazy.force classic_entries in
  List.iter
    (fun classic ->
      let ck = Generate.to_string (Generate.canonical (Generate.of_threads classic.Litmus.threads)) in
      match
        List.find_opt
          (fun (e : Admit.entry) -> e.skeleton = ck && e.polarity = Admit.Mutant_weak)
          entries
      with
      | None ->
          Alcotest.failf "classic %s (skeleton %s) not rediscovered as a weak mutant"
            classic.Litmus.name ck
      | Some e ->
          (* Same weak behaviour, modulo renaming: the classic's target
             denotes the same number of outcomes as the generated one,
             and the generated target is exactly the weak set. *)
          check_int
            (classic.Litmus.name ^ " target size")
            (List.length (satisfying_outcomes classic))
            (List.length (satisfying_outcomes e.test)))
    [ Library.mp; Library.lb; Library.sb; Library.s; Library.r; Library.two_plus_two_w ]

let test_admission_gate () =
  let entries, stats = Lazy.force classic_entries in
  check_bool "admitted something" true (stats.Admit.admitted > 0);
  check_int "every admitted entry is certified" 0 stats.Admit.uncertified;
  check_int "entries match admitted count" stats.Admit.admitted (List.length entries);
  List.iter
    (fun (e : Admit.entry) ->
      check_bool (e.test.Litmus.name ^ " verdict ok") true e.verdict.Mcm_oracle.Certify.ok;
      (match e.polarity with
      | Admit.Conformance ->
          check_bool
            (e.test.Litmus.name ^ " target disallowed")
            false
            (Outcome.target_allowed e.test.Litmus.model e.test)
      | Admit.Mutant_weak | Admit.Mutant_interleaved ->
          check_bool
            (e.test.Litmus.name ^ " target allowed")
            true
            (Outcome.target_allowed e.test.Litmus.model e.test));
      match Litmus.well_formed e.test with
      | Ok () -> ()
      | Error err -> Alcotest.failf "%s not well-formed: %s" e.test.Litmus.name err)
    entries

let test_both_engines_agree () =
  (* Re-run the whole admission of a small shape under cross-check: any
     divergence between Enumerate and Propagate counts. *)
  let shape = { Shape.default with Shape.events = 3 } in
  let _, stats = Admit.generated ~cross_check:true ~model:Model.Sc_per_location shape in
  check_int "no cross-engine disagreements" 0 stats.Admit.disagreements;
  check_int "no uncertified" 0 stats.Admit.uncertified

(* ------------------------------------------------------------------ *)
(* Operator layer                                                       *)

let test_apply_op () =
  let mp_threads = Library.mp.Litmus.threads in
  let sdl = Mutator.apply_op Mutator.Sdl mp_threads in
  check_int "sdl variants on mp" 4 (List.length sdl);
  let ror = Mutator.apply_op Mutator.Ror mp_threads in
  check_int "ror variants on mp" 2 (List.length ror);
  check_int "uoi on fence-free mp" 0 (List.length (Mutator.apply_op Mutator.Uoi mp_threads));
  let relacq = Library.mp_relacq.Litmus.threads in
  check_int "uoi variants on mp_relacq" 2 (List.length (Mutator.apply_op Mutator.Uoi relacq));
  (* determinism + labels *)
  check_bool "deterministic" true (Mutator.apply_op Mutator.Sdl mp_threads = sdl);
  (match sdl with
  | (label, threads) :: _ ->
      check_string "first label" "t0.0" label;
      check_int "thread count preserved" (Array.length mp_threads) (Array.length threads)
  | [] -> Alcotest.fail "no sdl variants");
  (* no variant empties a thread *)
  List.iter
    (fun (_, threads) ->
      Array.iter (fun t -> check_bool "thread nonempty" true (t <> [])) threads)
    (sdl @ ror)

let test_operator_mutants_certified () =
  let parents =
    List.filter
      (fun t ->
        List.mem t.Litmus.name [ "CoRR"; "MP-relacq"; "MP-CO" ])
      (List.map (fun e -> e.Suite.test) (Suite.conformance_tests ()))
  in
  check_int "three parents found" 3 (List.length parents);
  let entries, stats =
    Admit.operator_mutants ~cross_check:true ~domains:2 ~ops:Mutator.all_ops parents
  in
  check_int "no disagreements" 0 stats.Admit.disagreements;
  check_int "no uncertified" 0 stats.Admit.uncertified;
  check_bool "operators produced mutants" true (entries <> []);
  List.iter
    (fun (e : Admit.entry) ->
      check_bool (e.test.Litmus.name ^ " certified") true e.verdict.Mcm_oracle.Certify.ok;
      check_bool (e.test.Litmus.name ^ " has parent") true (e.parent <> None);
      check_bool (e.test.Litmus.name ^ " has op") true (e.op <> None);
      check_bool
        (e.test.Litmus.name ^ " family records operator")
        true
        (contains ~needle:"/op-" e.test.Litmus.family))
    entries;
  (* uoi on MP-relacq rediscovers the weakening-sw disruption: a weak
     mutant from fence removal. *)
  check_bool "uoi on MP-relacq yields a weak mutant" true
    (List.exists
       (fun (e : Admit.entry) ->
         e.parent = Some "MP-relacq" && e.op = Some "uoi" && e.polarity = Admit.Mutant_weak)
       entries);
  (* sdl on MP-CO (one location) yields an interleaving-killed mutant. *)
  check_bool "sdl on MP-CO yields a mutant" true
    (List.exists
       (fun (e : Admit.entry) -> e.parent = Some "MP-CO" && e.op = Some "sdl")
       entries)

(* ------------------------------------------------------------------ *)
(* Print/parse round-trip                                               *)

let roundtrip_entry (e : Admit.entry) =
  let test = e.test in
  let src = Parse.to_source test in
  match Parse.parse src with
  | Error err -> Alcotest.failf "%s: parse of printed source failed: %s" test.Litmus.name err
  | Ok parsed ->
      check_string (test.Litmus.name ^ " name") test.Litmus.name parsed.Litmus.name;
      check_bool (test.Litmus.name ^ " threads") true
        (parsed.Litmus.threads = test.Litmus.threads);
      check_int (test.Litmus.name ^ " nlocs") test.Litmus.nlocs parsed.Litmus.nlocs;
      check_bool (test.Litmus.name ^ " model") true (parsed.Litmus.model = test.Litmus.model);
      (* target agreement over the whole candidate outcome space *)
      let outcomes =
        List.sort_uniq compare
          (List.map (Litmus.outcome_of_execution test) (Enumerate.candidates test))
      in
      List.iter
        (fun o ->
          check_bool
            (test.Litmus.name ^ " target agrees on " ^ Litmus.outcome_to_string o)
            (test.Litmus.target o) (parsed.Litmus.target o))
        outcomes;
      (* print is a fixpoint: print (parse (print t)) == print t *)
      check_string (test.Litmus.name ^ " print fixpoint") src (Parse.to_source parsed);
      (* store identity survives the round-trip once family is restored *)
      let restored = { parsed with Litmus.family = test.Litmus.family } in
      check_string
        (test.Litmus.name ^ " test blob stable")
        (Key.test_blob test) (Key.test_blob restored)

let test_roundtrip_generated () =
  let entries, _ = Lazy.force classic_entries in
  (* a deterministic sample keeps the candidate-space re-enumeration
     affordable; the corpus bench round-trips entire corpora by bytes *)
  List.iter roundtrip_entry (Generate.sample ~seed:11 ~bound:40 entries)

let test_roundtrip_operator_mutants () =
  let parents =
    List.filter
      (fun t -> List.mem t.Litmus.name [ "MP-relacq"; "CoWW" ])
      (List.map (fun e -> e.Suite.test) (Suite.conformance_tests ()))
  in
  let entries, _ = Admit.operator_mutants ~ops:Mutator.all_ops parents in
  List.iter roundtrip_entry entries

(* ------------------------------------------------------------------ *)
(* Corpus format                                                        *)

let small_meta =
  {
    Corpus.default_meta with
    Corpus.shape = { Shape.default with Shape.events = 3 };
    ops = [ Mutator.Uoi ];
  }

let test_corpus_reproducible () =
  let a = Corpus.generate small_meta in
  let b = Corpus.generate ~domains:2 small_meta in
  check_string "byte-identical across runs and domain counts" (Corpus.to_string a)
    (Corpus.to_string b);
  check_bool "keys equal" true (Key.equal (Corpus.key a) (Corpus.key b))

let test_corpus_save_load () =
  let c = Corpus.generate small_meta in
  let path = Filename.temp_file "mcm_corpus" ".json" in
  Corpus.save ~path c;
  (match Corpus.load ~path with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok loaded ->
      check_bool "key survives load" true (Key.equal (Corpus.key c) (Corpus.key loaded));
      check_int "entry count" (List.length c.Corpus.entries) (List.length loaded.Corpus.entries);
      List.iter2
        (fun (a : Admit.entry) (b : Admit.entry) ->
          check_string "name" a.test.Litmus.name b.test.Litmus.name;
          check_string "blob" (Key.test_blob a.test) (Key.test_blob b.test);
          check_bool "verdict" true (a.verdict = b.verdict))
        c.Corpus.entries loaded.Corpus.entries;
      check_string "save/load bytes stable" (Corpus.to_string c) (Corpus.to_string loaded));
  Sys.remove path

let test_corpus_tamper_detected () =
  let c = Corpus.generate small_meta in
  let s = Corpus.to_string c in
  (* flip the recorded seed without recomputing the key *)
  let needle = "\"seed\":0" in
  let i =
    let rec find i =
      if i + String.length needle > String.length s then -1
      else if String.sub s i (String.length needle) = needle then i
      else find (i + 1)
    in
    find 0
  in
  check_bool "seed field present" true (i >= 0);
  let tampered =
    String.sub s 0 i ^ "\"seed\":1" ^ String.sub s (i + String.length needle)
        (String.length s - i - String.length needle)
  in
  match Corpus.of_string tampered with
  | Ok _ -> Alcotest.fail "tampered corpus accepted"
  | Error e -> check_bool "error names the key mismatch" true (contains ~needle:"key mismatch" e)

let test_corpus_recertify () =
  let c = Corpus.generate small_meta in
  let rechecks = Corpus.recertify ~domains:2 c in
  check_int "every entry rechecked" (List.length c.Corpus.entries) (List.length rechecks);
  List.iter
    (fun (r : Corpus.recheck) ->
      check_bool (r.Corpus.name ^ " engines agree") true r.Corpus.engines_agree;
      check_bool (r.Corpus.name ^ " matches stored") true r.Corpus.matches_stored)
    rechecks

let test_version_in_family () =
  let entries, _ = Lazy.force classic_entries in
  List.iter
    (fun (e : Admit.entry) ->
      check_bool
        (e.test.Litmus.name ^ " family carries corpus version")
        true
        (contains ~needle:Version.version e.test.Litmus.family))
    entries

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "corpus"
    [
      ( "shape",
        [
          Alcotest.test_case "parse" `Quick test_shape_parse;
          Alcotest.test_case "strict errors" `Quick test_shape_strict;
        ] );
      ( "generate",
        [
          Alcotest.test_case "deterministic" `Quick test_enumerate_deterministic;
          Alcotest.test_case "canonical modulo renaming" `Quick test_canonical_modulo_renaming;
          Alcotest.test_case "seeded sampling" `Quick test_sample_deterministic;
        ] );
      ( "admission",
        [
          Alcotest.test_case "rediscovers the classics" `Slow test_rediscovers_classics;
          Alcotest.test_case "gate invariants" `Slow test_admission_gate;
          Alcotest.test_case "both engines agree" `Slow test_both_engines_agree;
        ] );
      ( "operators",
        [
          Alcotest.test_case "apply_op" `Quick test_apply_op;
          Alcotest.test_case "certified operator mutants" `Slow test_operator_mutants_certified;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "generated programs" `Slow test_roundtrip_generated;
          Alcotest.test_case "operator mutants" `Slow test_roundtrip_operator_mutants;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "reproducible bytes" `Slow test_corpus_reproducible;
          Alcotest.test_case "save/load" `Slow test_corpus_save_load;
          Alcotest.test_case "tamper detection" `Slow test_corpus_tamper_detected;
          Alcotest.test_case "recertify" `Slow test_corpus_recertify;
          Alcotest.test_case "version in family" `Slow test_version_in_family;
        ] );
    ]
