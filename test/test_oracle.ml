(* Tests for the axiomatic oracle (lib/oracle).

   Four layers of assurance:

   1. Engine cross-checks — the oracle's streaming enumerator must agree
      candidate-for-candidate and outcome-for-outcome with the older
      list-based enumerator in Mcm_litmus, and its analytic candidate
      count with actual enumeration.
   2. Golden allowed-outcome counts — for every shipped test (classic
      library + generated suite) and every model, the size of the
      allowed-outcome set is pinned. A model or enumerator change that
      shifts any set shows up as an exact diff. Regenerate after an
      intentional change with:
        MCM_GOLDEN_REGEN=1 dune exec test/test_oracle.exe
   3. Certification — every conformance test is provably disallowed,
      every mutant provably allowed and non-vacuous; the certifier also
      rejects hand-built vacuous/inverted tests.
   4. Soundness — the simulator's observed outcomes are axiomatically
      allowed on correct devices, and the checker catches an injected
      coherence bug with a counter-example trace.

   Plus qcheck properties: allowed-set monotonicity along the model
   lattice for random programs, and bit-identity of the pool-sharded
   grid enumeration for any domain count. *)

module Model = Mcm_memmodel.Model
module Litmus = Mcm_litmus.Litmus
module Instr = Mcm_litmus.Instr
module Library = Mcm_litmus.Library
module LEnum = Mcm_litmus.Enumerate
module Suite = Mcm_core.Suite
module Profile = Mcm_gpu.Profile
module Device = Mcm_gpu.Device
module Bug = Mcm_gpu.Bug
module Params = Mcm_testenv.Params
module Enumerate = Mcm_oracle.Enumerate
module Outcome = Mcm_oracle.Outcome
module Certify = Mcm_oracle.Certify
module Soundness = Mcm_oracle.Soundness

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let all_tests () =
  Library.all @ List.map (fun (e : Suite.entry) -> e.Suite.test) (Suite.all ())

(* -------------------------------------------------------------------- *)
(* 1. Engine cross-checks.                                               *)

let test_count_agrees_with_enumeration () =
  List.iter
    (fun t ->
      let folded = Enumerate.fold t ~init:0 ~f:(fun k _ -> k + 1) in
      check_int (t.Litmus.name ^ ": analytic count = fold count") (Enumerate.count t) folded)
    (all_tests ())

let test_fold_agrees_with_list_enumerator () =
  List.iter
    (fun t ->
      let old_cands = LEnum.candidates t in
      check_int
        (t.Litmus.name ^ ": same candidate-space size")
        (List.length old_cands) (Enumerate.count t);
      (* Same candidates as sets (orders differ): compare canonicalised
         (rf, co) witnesses. *)
      let key (x : Mcm_memmodel.Execution.t) = (Array.to_list x.rf, x.co) in
      let new_keys =
        Enumerate.fold t ~init:[] ~f:(fun acc x -> key x :: acc) |> List.sort compare
      in
      let old_keys = List.map key old_cands |> List.sort compare in
      check (t.Litmus.name ^ ": same candidates") true (new_keys = old_keys))
    Library.all

let test_allowed_agrees_with_list_enumerator () =
  List.iter
    (fun t ->
      List.iter
        (fun m ->
          let ours = Outcome.elements (Outcome.allowed m t) in
          let theirs = List.sort_uniq compare (LEnum.consistent_outcomes m t) in
          check
            (Printf.sprintf "%s under %s: same allowed set" t.Litmus.name (Model.name m))
            true (ours = theirs))
        Model.all)
    Library.all

let test_target_allowed_agrees () =
  List.iter
    (fun t ->
      List.iter
        (fun m ->
          check
            (Printf.sprintf "%s under %s: target_allowed agrees" t.Litmus.name (Model.name m))
            (LEnum.target_allowed m t) (Outcome.target_allowed m t))
        Model.all)
    Library.all

(* -------------------------------------------------------------------- *)
(* 2. Golden allowed-outcome counts: name, |allowed| under SC,
      rel-acq-SC-per-loc, SC-per-loc (the Model.all order).              *)

type row = string * int * int * int

let rows () : row list =
  List.map
    (fun t ->
      match List.map (fun m -> Outcome.size (Outcome.allowed m t)) Model.all with
      | [ sc; relacq; scpl ] -> (t.Litmus.name, sc, relacq, scpl)
      | _ -> assert false)
    (all_tests ())

let expected : row list =
  [
    ("CoRR", 3, 3, 3);
    ("CoWR", 3, 3, 3);
    ("CoRW", 3, 3, 3);
    ("CoWW", 21, 21, 21);
    ("MP", 3, 4, 4);
    ("MP-relacq", 3, 3, 4);
    ("MP-CO", 6, 6, 6);
    ("LB", 3, 4, 4);
    ("LB-relacq", 3, 3, 4);
    ("SB", 3, 4, 4);
    ("SB-relacq-rmw", 3, 3, 4);
    ("S", 3, 4, 4);
    ("S-relacq", 3, 3, 4);
    ("R", 3, 4, 4);
    ("R-relacq-rmw", 3, 3, 4);
    ("2+2W", 3, 4, 4);
    ("2+2W-relacq-rmw", 3, 3, 4);
    ("IRIW", 15, 16, 16);
    ("WRC", 7, 8, 8);
    ("ISA2", 7, 8, 8);
    ("RWC", 7, 8, 8);
    ("CoRR", 3, 3, 3);
    ("CoRR-m", 3, 3, 3);
    ("CoRR-rmw", 3, 3, 3);
    ("CoRR-rmw-m", 3, 3, 3);
    ("CoWR", 3, 3, 3);
    ("CoWR-m", 3, 3, 3);
    ("CoWR-rmw", 3, 3, 3);
    ("CoWR-rmw-m", 3, 3, 3);
    ("CoRW", 3, 3, 3);
    ("CoRW-m", 3, 3, 3);
    ("CoRW-rmw", 3, 3, 3);
    ("CoRW-rmw-m", 3, 3, 3);
    ("CoWW", 21, 21, 21);
    ("CoWW-m", 21, 21, 21);
    ("CoWW-rmw", 3, 3, 3);
    ("CoWW-rmw-m", 3, 3, 3);
    ("MP-CO", 6, 6, 6);
    ("MP-CO-m", 3, 4, 4);
    ("LB-CO", 4, 4, 4);
    ("LB-CO-m", 3, 4, 4);
    ("S-CO", 5, 5, 5);
    ("S-CO-m", 3, 4, 4);
    ("SB-CO", 4, 4, 4);
    ("SB-CO-m", 3, 4, 4);
    ("R-CO", 4, 4, 4);
    ("R-CO-m", 3, 4, 4);
    ("2+2W-CO", 34, 34, 34);
    ("2+2W-CO-m", 3, 4, 4);
    ("MP-relacq", 3, 3, 4);
    ("MP-relacq-m1", 3, 4, 4);
    ("MP-relacq-m2", 3, 4, 4);
    ("MP-relacq-m3", 3, 4, 4);
    ("LB-relacq", 3, 3, 4);
    ("LB-relacq-m1", 3, 4, 4);
    ("LB-relacq-m2", 3, 4, 4);
    ("LB-relacq-m3", 3, 4, 4);
    ("S-relacq", 3, 3, 4);
    ("S-relacq-m1", 3, 4, 4);
    ("S-relacq-m2", 3, 4, 4);
    ("S-relacq-m3", 3, 4, 4);
    ("SB-relacq", 3, 3, 4);
    ("SB-relacq-m1", 3, 4, 4);
    ("SB-relacq-m2", 3, 4, 4);
    ("SB-relacq-m3", 3, 4, 4);
    ("R-relacq", 3, 3, 4);
    ("R-relacq-m1", 3, 4, 4);
    ("R-relacq-m2", 3, 4, 4);
    ("R-relacq-m3", 3, 4, 4);
    ("2+2W-relacq", 3, 3, 4);
    ("2+2W-relacq-m1", 3, 4, 4);
    ("2+2W-relacq-m2", 3, 4, 4);
    ("2+2W-relacq-m3", 3, 4, 4);
  ]

let pp_row (name, sc, relacq, scpl) = Printf.sprintf "(%S, %d, %d, %d);" name sc relacq scpl

let test_golden_counts () =
  let actual = rows () in
  check_int "row count" (List.length expected) (List.length actual);
  List.iter2
    (fun a e ->
      if a <> e then
        Alcotest.failf "allowed-set drift:\n  expected %s\n  actual   %s" (pp_row e) (pp_row a))
    actual expected

let test_monotone_along_lattice () =
  (* Permissiveness chain: allowed(SC) ⊆ allowed(rel-acq) ⊆ allowed(SC-per-loc),
     pointwise on every shipped test — the outcome-set image of
     Model.weaker_or_equal. *)
  List.iter
    (fun t ->
      let sets = List.map (fun m -> (m, Outcome.allowed m t)) Model.all in
      List.iter
        (fun (m, s) ->
          List.iter
            (fun (m', s') ->
              if Model.weaker_or_equal m m' then
                check
                  (Printf.sprintf "%s: allowed(%s) includes allowed(%s)" t.Litmus.name
                     (Model.name m) (Model.name m'))
                  true (Outcome.subset s' s))
            sets)
        sets)
    (all_tests ())

(* -------------------------------------------------------------------- *)
(* 3. Certification.                                                     *)

let test_certify_suite () =
  let r = Certify.suite () in
  check_int "suite size" (List.length (Suite.all ())) (List.length r.Certify.verdicts);
  List.iter
    (fun (v : Certify.verdict) ->
      if not v.Certify.ok then
        Alcotest.failf "suite certificate failed: %s (%s): %s" v.Certify.test v.Certify.role
          v.Certify.detail)
    r.Certify.verdicts;
  check_int "no failures" 0 r.Certify.failures

let test_certify_library () =
  let r = Certify.library () in
  check_int "library size" (List.length Library.all) (List.length r.Certify.verdicts);
  check_int "no failures" 0 r.Certify.failures

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_certify_rejects_allowed_conformance () =
  (* MP's weak target is allowed under SC-per-loc: as a conformance test
     it must fail certification, with the witness in the verdict. *)
  let v = Certify.conformance Library.mp in
  check "not ok" false v.Certify.ok;
  check "mentions ALLOWED" true (contains v.Certify.detail "ALLOWED")

let test_certify_rejects_vacuous_mutant () =
  (* A "mutant" whose target a serial execution exhibits is vacuous. *)
  let vacuous =
    {
      Library.mp with
      Litmus.name = "MP-vacuous";
      target = (fun o -> o.Litmus.regs.(1).(0) = 1 && o.Litmus.regs.(1).(1) = 1);
      target_desc = "t1.r0 = 1 && t1.r1 = 1";
    }
  in
  let v = Certify.mutant vacuous in
  check "not ok" false v.Certify.ok;
  check "flagged vacuous" true (contains v.Certify.detail "vacuous")

let test_certify_rejects_disallowed_mutant () =
  (* CoRR's target is disallowed: as a mutant it must fail. *)
  let v = Certify.mutant Library.corr in
  check "not ok" false v.Certify.ok;
  check "mentions DISALLOWED" true (contains v.Certify.detail "DISALLOWED")

let test_conformance_evidence_is_a_cycle () =
  let v = Certify.conformance Library.corr in
  check "ok" true v.Certify.ok;
  check "cycle evidence" true (contains v.Certify.detail "hb cycle")

(* -------------------------------------------------------------------- *)
(* 4. Soundness.                                                         *)

let small_tests () =
  List.map
    (fun n -> (Option.get (Suite.find n)).Suite.test)
    [ "CoRR"; "CoRR-m"; "MP-CO-m"; "MP-relacq-m3" ]

let small_env = [ ("pte@0.02", Params.scaled Params.pte_baseline 0.02) ]

let test_soundness_correct_devices () =
  let r =
    Soundness.check ~iterations:2 ~devices:(Device.all_correct ()) ~envs:small_env
      ~tests:(small_tests ()) ()
  in
  check_int "grid points" (4 * 4) (List.length r.Soundness.points);
  List.iter
    (fun (p : Soundness.point) ->
      List.iter
        (fun (v : Soundness.violation) ->
          Alcotest.failf "unsound: %s on %s: %s — %s" v.Soundness.v_test v.Soundness.v_device
            (Litmus.outcome_to_string v.Soundness.v_outcome)
            v.Soundness.v_explanation)
        p.Soundness.p_violations)
    r.Soundness.points;
  check "ok" true (Soundness.ok r)

let test_soundness_catches_injected_bug () =
  (* The Kepler-style coherence bug makes the simulator produce CoRR
     violations; the checker must catch them and explain each with a
     counter-example trace. *)
  let buggy = Device.make ~bugs:[ Bug.Corr_reorder 0.5 ] Profile.intel in
  let corr = (Option.get (Suite.find "CoRR")).Suite.test in
  let r =
    Soundness.check ~iterations:2 ~devices:[ buggy ] ~envs:small_env ~tests:[ corr ] ()
  in
  check "violations found" true (r.Soundness.total_violations > 0);
  check "not ok" false (Soundness.ok r);
  let v =
    List.concat_map (fun (p : Soundness.point) -> p.Soundness.p_violations) r.Soundness.points
    |> List.hd
  in
  check "explained by a forbidden cycle" true (contains v.Soundness.v_explanation "cycle")

let test_soundness_jobs_invariant () =
  let run domains =
    Soundness.check
      ~ctx:(Mcm_testenv.Request.context ~domains ())
      ~iterations:1 ~devices:[ Device.make Profile.intel ] ~envs:small_env
      ~tests:(small_tests ()) ()
  in
  let serial = run 1 in
  List.iter
    (fun d -> check (Printf.sprintf "report identical at %d domains" d) true (run d = serial))
    [ 2; 3; 8 ]

(* -------------------------------------------------------------------- *)
(* qcheck: random programs.                                              *)

(* Random well-formed litmus programs: two threads of 1–2 instructions
   over ≤ 2 locations, values distinct and non-zero per location (the
   well-formedness concretisation), registers distinct per thread. Small
   enough that the candidate space stays ≤ a few thousand. *)
let gen_program st =
  let open QCheck.Gen in
  let nlocs = 1 + int_bound 1 st in
  let next_value = Array.make nlocs 0 in
  let fresh_value l =
    next_value.(l) <- next_value.(l) + 1;
    next_value.(l)
  in
  let thread _ =
    let n = 1 + int_bound 1 st in
    let reg = ref 0 in
    List.init n (fun _ ->
        match int_bound 3 st with
        | 0 ->
            let r = !reg in
            incr reg;
            Instr.Load { reg = r; loc = int_bound (nlocs - 1) st }
        | 1 ->
            let l = int_bound (nlocs - 1) st in
            Instr.Store { loc = l; value = fresh_value l }
        | 2 ->
            let r = !reg in
            incr reg;
            let l = int_bound (nlocs - 1) st in
            Instr.Rmw { reg = r; loc = l; value = fresh_value l }
        | _ -> Instr.Fence)
  in
  let threads = Array.init 2 thread in
  {
    Litmus.name = "rand";
    family = "qcheck";
    model = Model.Sc_per_location;
    threads;
    nlocs;
    target = (fun _ -> false);
    target_desc = "none";
  }

let program_arb =
  QCheck.make ~print:(fun t -> Litmus.to_string t) gen_program

let prop_random_programs_well_formed =
  QCheck.Test.make ~count:200 ~name:"random programs are well-formed" program_arb (fun t ->
      Litmus.well_formed t = Ok ())

let prop_monotone_random =
  QCheck.Test.make ~count:120
    ~name:"allowed sets monotone along weaker_or_equal (random programs)" program_arb (fun t ->
      let sets = List.map (fun m -> (m, Outcome.allowed m t)) Model.all in
      List.for_all
        (fun (m, s) ->
          List.for_all
            (fun (m', s') -> (not (Model.weaker_or_equal m m')) || Outcome.subset s' s)
            sets)
        sets)

let prop_grid_jobs_identical =
  QCheck.Test.make ~count:30 ~name:"allowed_grid bit-identical for domains 1..8"
    QCheck.(pair (make (QCheck.Gen.int_range 1 8)) program_arb)
    (fun (domains, t) ->
      let points = List.map (fun m -> (m, t)) Model.all in
      let serial = Outcome.allowed_grid points in
      let sharded = Outcome.allowed_grid ~domains points in
      List.for_all2 Outcome.equal serial sharded)

let prop_consistent_count_bounded =
  QCheck.Test.make ~count:120 ~name:"consistent candidates never exceed the analytic total"
    program_arb (fun t ->
      let total = Enumerate.count t in
      List.for_all
        (fun m ->
          let c = Enumerate.count_consistent m t in
          c >= 0 && c <= total)
        Model.all)

let () =
  if Sys.getenv_opt "MCM_GOLDEN_REGEN" <> None then begin
    List.iter (fun r -> Printf.printf "    %s\n" (pp_row r)) (rows ());
    exit 0
  end;
  let qcheck = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "oracle"
    [
      ( "engine",
        [
          Alcotest.test_case "analytic count = fold count" `Quick test_count_agrees_with_enumeration;
          Alcotest.test_case "fold = list enumerator (candidates)" `Slow
            test_fold_agrees_with_list_enumerator;
          Alcotest.test_case "allowed = list enumerator (outcomes)" `Slow
            test_allowed_agrees_with_list_enumerator;
          Alcotest.test_case "target_allowed agrees" `Slow test_target_allowed_agrees;
        ] );
      ( "goldens",
        [
          Alcotest.test_case "allowed-outcome counts" `Quick test_golden_counts;
          Alcotest.test_case "monotone along the lattice" `Slow test_monotone_along_lattice;
        ] );
      ( "certify",
        [
          Alcotest.test_case "whole generated suite" `Quick test_certify_suite;
          Alcotest.test_case "whole classic library" `Quick test_certify_library;
          Alcotest.test_case "rejects allowed conformance" `Quick
            test_certify_rejects_allowed_conformance;
          Alcotest.test_case "rejects vacuous mutant" `Quick test_certify_rejects_vacuous_mutant;
          Alcotest.test_case "rejects disallowed mutant" `Quick
            test_certify_rejects_disallowed_mutant;
          Alcotest.test_case "conformance evidence is a cycle" `Quick
            test_conformance_evidence_is_a_cycle;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "correct devices are sound" `Quick test_soundness_correct_devices;
          Alcotest.test_case "injected bug is caught" `Quick test_soundness_catches_injected_bug;
          Alcotest.test_case "jobs-invariant report" `Quick test_soundness_jobs_invariant;
        ] );
      ( "properties",
        qcheck
          [
            prop_random_programs_well_formed;
            prop_monotone_random;
            prop_grid_jobs_identical;
            prop_consistent_count_bounded;
          ] );
    ]
