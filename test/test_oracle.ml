(* Tests for the axiomatic oracle (lib/oracle).

   Five layers of assurance:

   1. Engine cross-checks — the oracle's streaming enumerator must agree
      candidate-for-candidate and outcome-for-outcome with the older
      list-based enumerator in Mcm_litmus, and its analytic candidate
      count with actual enumeration; and the constraint-propagation
      engine must reproduce the brute-force engine's consistent stream
      in order, execution for execution, over the whole corpus and the
      benchmark ladder.
   2. Golden allowed-outcome counts — for every shipped test (classic
      library + generated suite) and every model, the size of the
      allowed-outcome set is pinned, through BOTH engines. A model or
      engine change that shifts any set shows up as an exact diff.
      Regenerate after an intentional change with:
        MCM_GOLDEN_REGEN=1 dune exec test/test_oracle.exe
   3. Certification — every conformance test is provably disallowed,
      every mutant provably allowed and non-vacuous, with identical
      verdict reports from both engines; the certifier also rejects
      hand-built vacuous/inverted tests, and a deliberately weakened
      model (the po;sw;po / po -> po_loc hb edge dropped) is flagged
      identically by both engines.
   4. Soundness — the simulator's observed outcomes are axiomatically
      allowed on correct devices, and the checker catches an injected
      coherence bug with the same counter-example traces through either
      engine.
   5. qcheck properties — allowed-set monotonicity along the model
      lattice, bit-identity of the pool-sharded grid for any domain
      count, and the engine differential on random wide programs
      (2–3 threads, fences, RMWs): identical ordered streams, allowed
      sets, witnesses and certification verdicts, with Enumerate as the
      reference. *)

module Model = Mcm_memmodel.Model
module Litmus = Mcm_litmus.Litmus
module Instr = Mcm_litmus.Instr
module Library = Mcm_litmus.Library
module LEnum = Mcm_litmus.Enumerate
module Suite = Mcm_core.Suite
module Profile = Mcm_gpu.Profile
module Device = Mcm_gpu.Device
module Bug = Mcm_gpu.Bug
module Params = Mcm_testenv.Params
module Enumerate = Mcm_oracle.Enumerate
module Propagate = Mcm_oracle.Propagate
module Engine = Mcm_oracle.Engine
module Outcome = Mcm_oracle.Outcome
module Certify = Mcm_oracle.Certify
module Soundness = Mcm_oracle.Soundness

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let all_tests () =
  Library.all @ List.map (fun (e : Suite.entry) -> e.Suite.test) (Suite.all ())

(* -------------------------------------------------------------------- *)
(* 1. Engine cross-checks.                                               *)

let test_count_agrees_with_enumeration () =
  List.iter
    (fun t ->
      let folded = Enumerate.fold t ~init:0 ~f:(fun k _ -> k + 1) in
      check_int (t.Litmus.name ^ ": analytic count = fold count") (Enumerate.count t) folded)
    (all_tests ())

let test_fold_agrees_with_list_enumerator () =
  List.iter
    (fun t ->
      let old_cands = LEnum.candidates t in
      check_int
        (t.Litmus.name ^ ": same candidate-space size")
        (List.length old_cands) (Enumerate.count t);
      (* Same candidates as sets (orders differ): compare canonicalised
         (rf, co) witnesses. *)
      let key (x : Mcm_memmodel.Execution.t) = (Array.to_list x.rf, x.co) in
      let new_keys =
        Enumerate.fold t ~init:[] ~f:(fun acc x -> key x :: acc) |> List.sort compare
      in
      let old_keys = List.map key old_cands |> List.sort compare in
      check (t.Litmus.name ^ ": same candidates") true (new_keys = old_keys))
    Library.all

let test_allowed_agrees_with_list_enumerator () =
  List.iter
    (fun t ->
      List.iter
        (fun m ->
          let ours = Outcome.elements (Outcome.allowed m t) in
          let theirs = List.sort_uniq compare (LEnum.consistent_outcomes m t) in
          check
            (Printf.sprintf "%s under %s: same allowed set" t.Litmus.name (Model.name m))
            true (ours = theirs))
        Model.all)
    Library.all

let test_target_allowed_agrees () =
  List.iter
    (fun t ->
      List.iter
        (fun m ->
          check
            (Printf.sprintf "%s under %s: target_allowed agrees" t.Litmus.name (Model.name m))
            (LEnum.target_allowed m t) (Outcome.target_allowed m t))
        Model.all)
    Library.all

(* -------------------------------------------------------------------- *)
(* 1b. Engine differential: the constraint-propagation engine must agree
      with the brute-force enumerator not just on sets but on the exact
      ordered stream of consistent executions — the contract that makes
      witnesses, fold orders and certification verdicts
      engine-independent. *)

(* The closure-free identity of a candidate: its rf assignment and
   coherence order. *)
let exec_key (x : Mcm_memmodel.Execution.t) =
  (Array.to_list x.Mcm_memmodel.Execution.rf, x.Mcm_memmodel.Execution.co)

let stream engine m t =
  Engine.fold_consistent engine m t ~init:[] ~f:(fun acc x -> exec_key x :: acc) |> List.rev

let test_corpus_streams_identical () =
  List.iter
    (fun t ->
      List.iter
        (fun m ->
          check
            (Printf.sprintf "%s under %s: identical ordered consistent streams" t.Litmus.name
               (Model.name m))
            true
            (stream Engine.Propagate m t = stream Engine.Enumerate m t))
        Model.all)
    (all_tests ())

let test_propagate_stats_consistent_matches () =
  List.iter
    (fun t ->
      List.iter
        (fun m ->
          let st = Propagate.stats m t in
          check_int
            (Printf.sprintf "%s under %s: stats.consistent = enumerate count" t.Litmus.name
               (Model.name m))
            (Enumerate.count_consistent m t) st.Propagate.consistent;
          check
            (Printf.sprintf "%s under %s: explored bounded by candidate work" t.Litmus.name
               (Model.name m))
            true
            (st.Propagate.consistent <= st.Propagate.explored))
        Model.all)
    Library.all

(* -------------------------------------------------------------------- *)
(* 2. Golden allowed-outcome counts: name, |allowed| under SC,
      rel-acq-SC-per-loc, SC-per-loc (the Model.all order). Pinned
      through BOTH engines — a pruning bug that shifts any set shows up
      as an exact diff against the same table. *)

type row = string * int * int * int

let rows ?engine () : row list =
  List.map
    (fun t ->
      match List.map (fun m -> Outcome.size (Outcome.allowed ?engine m t)) Model.all with
      | [ sc; relacq; scpl ] -> (t.Litmus.name, sc, relacq, scpl)
      | _ -> assert false)
    (all_tests ())

let expected : row list =
  [
    ("CoRR", 3, 3, 3);
    ("CoWR", 3, 3, 3);
    ("CoRW", 3, 3, 3);
    ("CoWW", 21, 21, 21);
    ("MP", 3, 4, 4);
    ("MP-relacq", 3, 3, 4);
    ("MP-CO", 6, 6, 6);
    ("LB", 3, 4, 4);
    ("LB-relacq", 3, 3, 4);
    ("SB", 3, 4, 4);
    ("SB-relacq-rmw", 3, 3, 4);
    ("S", 3, 4, 4);
    ("S-relacq", 3, 3, 4);
    ("R", 3, 4, 4);
    ("R-relacq-rmw", 3, 3, 4);
    ("2+2W", 3, 4, 4);
    ("2+2W-relacq-rmw", 3, 3, 4);
    ("IRIW", 15, 16, 16);
    ("WRC", 7, 8, 8);
    ("ISA2", 7, 8, 8);
    ("RWC", 7, 8, 8);
    ("CoRR", 3, 3, 3);
    ("CoRR-m", 3, 3, 3);
    ("CoRR-rmw", 3, 3, 3);
    ("CoRR-rmw-m", 3, 3, 3);
    ("CoWR", 3, 3, 3);
    ("CoWR-m", 3, 3, 3);
    ("CoWR-rmw", 3, 3, 3);
    ("CoWR-rmw-m", 3, 3, 3);
    ("CoRW", 3, 3, 3);
    ("CoRW-m", 3, 3, 3);
    ("CoRW-rmw", 3, 3, 3);
    ("CoRW-rmw-m", 3, 3, 3);
    ("CoWW", 21, 21, 21);
    ("CoWW-m", 21, 21, 21);
    ("CoWW-rmw", 3, 3, 3);
    ("CoWW-rmw-m", 3, 3, 3);
    ("MP-CO", 6, 6, 6);
    ("MP-CO-m", 3, 4, 4);
    ("LB-CO", 4, 4, 4);
    ("LB-CO-m", 3, 4, 4);
    ("S-CO", 5, 5, 5);
    ("S-CO-m", 3, 4, 4);
    ("SB-CO", 4, 4, 4);
    ("SB-CO-m", 3, 4, 4);
    ("R-CO", 4, 4, 4);
    ("R-CO-m", 3, 4, 4);
    ("2+2W-CO", 34, 34, 34);
    ("2+2W-CO-m", 3, 4, 4);
    ("MP-relacq", 3, 3, 4);
    ("MP-relacq-m1", 3, 4, 4);
    ("MP-relacq-m2", 3, 4, 4);
    ("MP-relacq-m3", 3, 4, 4);
    ("LB-relacq", 3, 3, 4);
    ("LB-relacq-m1", 3, 4, 4);
    ("LB-relacq-m2", 3, 4, 4);
    ("LB-relacq-m3", 3, 4, 4);
    ("S-relacq", 3, 3, 4);
    ("S-relacq-m1", 3, 4, 4);
    ("S-relacq-m2", 3, 4, 4);
    ("S-relacq-m3", 3, 4, 4);
    ("SB-relacq", 3, 3, 4);
    ("SB-relacq-m1", 3, 4, 4);
    ("SB-relacq-m2", 3, 4, 4);
    ("SB-relacq-m3", 3, 4, 4);
    ("R-relacq", 3, 3, 4);
    ("R-relacq-m1", 3, 4, 4);
    ("R-relacq-m2", 3, 4, 4);
    ("R-relacq-m3", 3, 4, 4);
    ("2+2W-relacq", 3, 3, 4);
    ("2+2W-relacq-m1", 3, 4, 4);
    ("2+2W-relacq-m2", 3, 4, 4);
    ("2+2W-relacq-m3", 3, 4, 4);
  ]

let pp_row (name, sc, relacq, scpl) = Printf.sprintf "(%S, %d, %d, %d);" name sc relacq scpl

let golden_counts engine () =
  let actual = rows ~engine () in
  check_int "row count" (List.length expected) (List.length actual);
  List.iter2
    (fun a e ->
      if a <> e then
        Alcotest.failf "allowed-set drift (%s engine):\n  expected %s\n  actual   %s"
          (Engine.name engine) (pp_row e) (pp_row a))
    actual expected

let test_golden_counts_enumerate () = golden_counts Engine.Enumerate ()
let test_golden_counts_propagate () = golden_counts Engine.Propagate ()

let test_monotone_along_lattice () =
  (* Permissiveness chain: allowed(SC) ⊆ allowed(rel-acq) ⊆ allowed(SC-per-loc),
     pointwise on every shipped test — the outcome-set image of
     Model.weaker_or_equal. *)
  List.iter
    (fun t ->
      let sets = List.map (fun m -> (m, Outcome.allowed m t)) Model.all in
      List.iter
        (fun (m, s) ->
          List.iter
            (fun (m', s') ->
              if Model.weaker_or_equal m m' then
                check
                  (Printf.sprintf "%s: allowed(%s) includes allowed(%s)" t.Litmus.name
                     (Model.name m) (Model.name m'))
                  true (Outcome.subset s' s))
            sets)
        sets)
    (all_tests ())

(* -------------------------------------------------------------------- *)
(* 3. Certification.                                                     *)

let test_certify_suite () =
  let r = Certify.suite () in
  check_int "suite size" (List.length (Suite.all ())) (List.length r.Certify.verdicts);
  List.iter
    (fun (v : Certify.verdict) ->
      if not v.Certify.ok then
        Alcotest.failf "suite certificate failed: %s (%s): %s" v.Certify.test v.Certify.role
          v.Certify.detail)
    r.Certify.verdicts;
  check_int "no failures" 0 r.Certify.failures

let test_certify_library () =
  let r = Certify.library () in
  check_int "library size" (List.length Library.all) (List.length r.Certify.verdicts);
  check_int "no failures" 0 r.Certify.failures

(* The golden certification counts (52/52 suite + 21/21 library) through
   both engines, and verdict-for-verdict equality between them — the
   evidence strings embed witness outcomes, so equality here also pins
   the engines to the same witnesses. *)
let test_certify_reports_engine_independent () =
  let se = Certify.suite ~engine:Engine.Enumerate () in
  let sp = Certify.suite ~engine:Engine.Propagate () in
  check_int "suite 52/52 via enumerate" 0 se.Certify.failures;
  check_int "suite 52/52 via propagate" 0 sp.Certify.failures;
  check "identical suite reports" true (se = sp);
  let le = Certify.library ~engine:Engine.Enumerate () in
  let lp = Certify.library ~engine:Engine.Propagate () in
  check_int "library 21/21 via enumerate" 0 le.Certify.failures;
  check_int "library 21/21 via propagate" 0 lp.Certify.failures;
  check "identical library reports" true (le = lp)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_certify_rejects_allowed_conformance () =
  (* MP's weak target is allowed under SC-per-loc: as a conformance test
     it must fail certification, with the witness in the verdict. *)
  let v = Certify.conformance Library.mp in
  check "not ok" false v.Certify.ok;
  check "mentions ALLOWED" true (contains v.Certify.detail "ALLOWED")

let test_certify_rejects_vacuous_mutant () =
  (* A "mutant" whose target a serial execution exhibits is vacuous. *)
  let vacuous =
    {
      Library.mp with
      Litmus.name = "MP-vacuous";
      target = (fun o -> o.Litmus.regs.(1).(0) = 1 && o.Litmus.regs.(1).(1) = 1);
      target_desc = "t1.r0 = 1 && t1.r1 = 1";
    }
  in
  let v = Certify.mutant vacuous in
  check "not ok" false v.Certify.ok;
  check "flagged vacuous" true (contains v.Certify.detail "vacuous")

let test_certify_rejects_disallowed_mutant () =
  (* CoRR's target is disallowed: as a mutant it must fail. *)
  let v = Certify.mutant Library.corr in
  check "not ok" false v.Certify.ok;
  check "mentions DISALLOWED" true (contains v.Certify.detail "DISALLOWED")

let test_conformance_evidence_is_a_cycle () =
  let v = Certify.conformance Library.corr in
  check "ok" true v.Certify.ok;
  check "cycle evidence" true (contains v.Certify.detail "hb cycle")

(* ------------------------------------------------------------------ *)
(* 3b. Negative differential: weaken the model under a known-disallowed
      test and both engines must flag the SAME certification failures —
      the propagation engine must not "rescue" a broken rule by pruning
      differently than brute force filters. *)

let test_weakened_model_same_failure_both_engines () =
  (* MP-relacq's target is disallowed only because rel-acq adds the
     po;sw;po edge; re-pinning the test to plain SC-per-location drops
     that hb edge, so the conformance certificate must fail (target
     becomes allowed) — identically through both engines, including the
     witness embedded in the verdict. *)
  let weakened =
    { Library.mp_relacq with Litmus.name = "MP-relacq-weakened"; model = Model.Sc_per_location }
  in
  let ve = Certify.conformance ~engine:Engine.Enumerate weakened in
  let vp = Certify.conformance ~engine:Engine.Propagate weakened in
  check "enumerate flags the failure" false ve.Certify.ok;
  check "propagate flags the failure" false vp.Certify.ok;
  check "mentions ALLOWED" true (contains vp.Certify.detail "ALLOWED");
  check "identical verdicts" true (ve = vp);
  (* The same drop seen from the coherence side: SC forbids SB's target
     through full po; relaxing to SC-per-location keeps only same-
     location program order, and the target becomes allowed. *)
  let sb_sc = { Library.sb with Litmus.name = "SB-as-SC"; model = Model.Sc } in
  let sb_weak = { Library.sb with Litmus.name = "SB-weakened" } in
  check "SB disallowed under SC (enumerate)" true
    (Certify.conformance ~engine:Engine.Enumerate sb_sc).Certify.ok;
  check "SB disallowed under SC (propagate)" true
    (Certify.conformance ~engine:Engine.Propagate sb_sc).Certify.ok;
  let we = Certify.conformance ~engine:Engine.Enumerate sb_weak in
  let wp = Certify.conformance ~engine:Engine.Propagate sb_weak in
  check "weakened SB fails both engines" true ((not we.Certify.ok) && not wp.Certify.ok);
  check "identical weakened-SB verdicts" true (we = wp)

let test_vacuity_rejection_same_both_engines () =
  let vacuous =
    {
      Library.mp with
      Litmus.name = "MP-vacuous";
      target = (fun o -> o.Litmus.regs.(1).(0) = 1 && o.Litmus.regs.(1).(1) = 1);
      target_desc = "t1.r0 = 1 && t1.r1 = 1";
    }
  in
  let ve = Certify.mutant ~engine:Engine.Enumerate vacuous in
  let vp = Certify.mutant ~engine:Engine.Propagate vacuous in
  check "both reject" true ((not ve.Certify.ok) && not vp.Certify.ok);
  check "both flag vacuous" true
    (contains ve.Certify.detail "vacuous" && contains vp.Certify.detail "vacuous");
  check "identical verdicts" true (ve = vp)

(* ------------------------------------------------------------------ *)
(* 3c. The ladder: the bench's scalable rungs stay honest in the test
      suite — well-formed, certifiable, and counted identically by both
      engines on the rungs cheap enough for CI. *)

let test_ladder_well_formed_and_certifiable () =
  List.iter
    (fun (stores, loads) ->
      let t = Library.ladder ~stores ~loads in
      check (t.Litmus.name ^ " well-formed") true (Litmus.well_formed t = Ok ());
      check (t.Litmus.name ^ " not in Library.all") true (Library.expectation t = None))
    [ (1, 1); (1, 2); (2, 1); (2, 2) ];
  (* stores >= 2 makes the target non-vacuous (a serial thread's
     non-final store is shadowed), so the rung certifies as a mutant. *)
  let v = Certify.mutant ~engine:Engine.Propagate (Library.ladder ~stores:2 ~loads:1) in
  check "s2-l1 certifies as allowed + non-vacuous" true v.Certify.ok

let test_ladder_small_rung_streams_identical () =
  let t = Library.ladder ~stores:1 ~loads:2 in
  check "s1-l2: identical ordered streams" true
    (stream Engine.Propagate t.Litmus.model t = stream Engine.Enumerate t.Litmus.model t)

let test_ladder_medium_rung_counts_agree () =
  let t = Library.ladder ~stores:2 ~loads:1 in
  check_int "s2-l1: identical consistent counts"
    (Engine.count_consistent Engine.Enumerate t.Litmus.model t)
    (Engine.count_consistent Engine.Propagate t.Litmus.model t)

(* -------------------------------------------------------------------- *)
(* 4. Soundness.                                                         *)

let small_tests () =
  List.map
    (fun n -> (Option.get (Suite.find n)).Suite.test)
    [ "CoRR"; "CoRR-m"; "MP-CO-m"; "MP-relacq-m3" ]

let small_env = [ ("pte@0.02", Params.scaled Params.pte_baseline 0.02) ]

let test_soundness_correct_devices () =
  let r =
    Soundness.check ~iterations:2 ~devices:(Device.all_correct ()) ~envs:small_env
      ~tests:(small_tests ()) ()
  in
  check_int "grid points" (4 * 4) (List.length r.Soundness.points);
  List.iter
    (fun (p : Soundness.point) ->
      List.iter
        (fun (v : Soundness.violation) ->
          Alcotest.failf "unsound: %s on %s: %s — %s" v.Soundness.v_test v.Soundness.v_device
            (Litmus.outcome_to_string v.Soundness.v_outcome)
            v.Soundness.v_explanation)
        p.Soundness.p_violations)
    r.Soundness.points;
  check "ok" true (Soundness.ok r)

let test_soundness_catches_injected_bug () =
  (* The Kepler-style coherence bug makes the simulator produce CoRR
     violations; the checker must catch them and explain each with a
     counter-example trace. *)
  let buggy = Device.make ~bugs:[ Bug.Corr_reorder 0.5 ] Profile.intel in
  let corr = (Option.get (Suite.find "CoRR")).Suite.test in
  let r =
    Soundness.check ~iterations:2 ~devices:[ buggy ] ~envs:small_env ~tests:[ corr ] ()
  in
  check "violations found" true (r.Soundness.total_violations > 0);
  check "not ok" false (Soundness.ok r);
  let v =
    List.concat_map (fun (p : Soundness.point) -> p.Soundness.p_violations) r.Soundness.points
    |> List.hd
  in
  check "explained by a forbidden cycle" true (contains v.Soundness.v_explanation "cycle")

let test_soundness_injected_bug_same_both_engines () =
  (* The injected-bug failure path, differentially: the violation set and
     every counter-example explanation must be identical whichever
     engine computed the allowed sets. *)
  let buggy = Device.make ~bugs:[ Bug.Corr_reorder 0.5 ] Profile.intel in
  let corr = (Option.get (Suite.find "CoRR")).Suite.test in
  let run engine =
    Soundness.check ~engine ~iterations:2 ~devices:[ buggy ] ~envs:small_env ~tests:[ corr ] ()
  in
  let re = run Engine.Enumerate and rp = run Engine.Propagate in
  check "enumerate finds violations" true (re.Soundness.total_violations > 0);
  check "propagate finds violations" true (rp.Soundness.total_violations > 0);
  check "identical reports" true (re = rp)

let test_soundness_jobs_invariant () =
  let run domains =
    Soundness.check
      ~ctx:(Mcm_testenv.Request.context ~domains ())
      ~iterations:1 ~devices:[ Device.make Profile.intel ] ~envs:small_env
      ~tests:(small_tests ()) ()
  in
  let serial = run 1 in
  List.iter
    (fun d -> check (Printf.sprintf "report identical at %d domains" d) true (run d = serial))
    [ 2; 3; 8 ]

(* -------------------------------------------------------------------- *)
(* qcheck: random programs.                                              *)

(* Random well-formed litmus programs: two threads of 1–2 instructions
   over ≤ 2 locations, values distinct and non-zero per location (the
   well-formedness concretisation), registers distinct per thread. Small
   enough that the candidate space stays ≤ a few thousand. *)
let gen_program st =
  let open QCheck.Gen in
  let nlocs = 1 + int_bound 1 st in
  let next_value = Array.make nlocs 0 in
  let fresh_value l =
    next_value.(l) <- next_value.(l) + 1;
    next_value.(l)
  in
  let thread _ =
    let n = 1 + int_bound 1 st in
    let reg = ref 0 in
    List.init n (fun _ ->
        match int_bound 3 st with
        | 0 ->
            let r = !reg in
            incr reg;
            Instr.load ~reg:r ~loc:(int_bound (nlocs - 1) st) ()
        | 1 ->
            let l = int_bound (nlocs - 1) st in
            Instr.store ~loc:l ~value:(fresh_value l) ()
        | 2 ->
            let r = !reg in
            incr reg;
            let l = int_bound (nlocs - 1) st in
            Instr.rmw ~reg:r ~loc:l ~value:(fresh_value l) ()
        | _ -> Instr.fence ())
  in
  let threads = Array.init 2 thread in
  {
    Litmus.name = "rand";
    family = "qcheck";
    model = Model.Sc_per_location;
    threads;
    nlocs;
    target = (fun _ -> false);
    target_desc = "none";
  }

let program_arb =
  QCheck.make ~print:(fun t -> Litmus.to_string t) gen_program

let prop_random_programs_well_formed =
  QCheck.Test.make ~count:200 ~name:"random programs are well-formed" program_arb (fun t ->
      Litmus.well_formed t = Ok ())

let prop_monotone_random =
  QCheck.Test.make ~count:120
    ~name:"allowed sets monotone along weaker_or_equal (random programs)" program_arb (fun t ->
      let sets = List.map (fun m -> (m, Outcome.allowed m t)) Model.all in
      List.for_all
        (fun (m, s) ->
          List.for_all
            (fun (m', s') -> (not (Model.weaker_or_equal m m')) || Outcome.subset s' s)
            sets)
        sets)

let prop_grid_jobs_identical =
  QCheck.Test.make ~count:30 ~name:"allowed_grid bit-identical for domains 1..8"
    QCheck.(pair (make (QCheck.Gen.int_range 1 8)) program_arb)
    (fun (domains, t) ->
      let points = List.map (fun m -> (m, t)) Model.all in
      let serial = Outcome.allowed_grid points in
      let sharded = Outcome.allowed_grid ~domains points in
      List.for_all2 Outcome.equal serial sharded)

let prop_consistent_count_bounded =
  QCheck.Test.make ~count:120 ~name:"consistent candidates never exceed the analytic total"
    program_arb (fun t ->
      let total = Enumerate.count t in
      List.for_all
        (fun m ->
          let c = Enumerate.count_consistent m t in
          c >= 0 && c <= total)
        Model.all)

(* ------------------------------------------------------------------ *)
(* qcheck: engine differential on random programs.

   A wider generator than [gen_program]: 2–3 threads of 1–3
   instructions. Two-instruction threads can never form the po;sw;po
   shape (a fence needs a neighbour on each side), so the differential
   properties need three-instruction threads to exercise the propagation
   engine's release/acquire edges at all. Budgets keep the candidate
   space enumerable: at most 3 stores per location, at most 4 reads in
   the whole program, at most 2 locations. *)
let gen_program_wide st =
  let open QCheck.Gen in
  let nthreads = 2 + int_bound 1 st in
  let nlocs = 1 + int_bound 1 st in
  let next_value = Array.make nlocs 0 in
  let stores_left = Array.make nlocs 3 in
  let reads_left = ref 4 in
  let fresh_value l =
    next_value.(l) <- next_value.(l) + 1;
    next_value.(l)
  in
  let thread _ =
    let n = 1 + int_bound 2 st in
    let reg = ref 0 in
    List.init n (fun _ ->
        let loc = int_bound (nlocs - 1) st in
        match int_bound 3 st with
        | 0 when !reads_left > 0 ->
            decr reads_left;
            let r = !reg in
            incr reg;
            Instr.load ~reg:r ~loc ()
        | 1 when stores_left.(loc) > 0 ->
            stores_left.(loc) <- stores_left.(loc) - 1;
            Instr.store ~loc ~value:(fresh_value loc) ()
        | 2 when !reads_left > 0 && stores_left.(loc) > 0 ->
            decr reads_left;
            stores_left.(loc) <- stores_left.(loc) - 1;
            let r = !reg in
            incr reg;
            Instr.rmw ~reg:r ~loc ~value:(fresh_value loc) ()
        | _ -> Instr.fence ())
  in
  let threads = Array.init nthreads thread in
  {
    Litmus.name = "rand-wide";
    family = "qcheck";
    model = Model.Sc_per_location;
    threads;
    nlocs;
    target = (fun _ -> false);
    target_desc = "none";
  }

let program_wide_arb = QCheck.make ~print:(fun t -> Litmus.to_string t) gen_program_wide

(* The strongest differential claim, from which set/witness/verdict
   agreement all follow: both engines produce the SAME consistent
   executions in the SAME order, under every model. *)
let prop_streams_identical =
  QCheck.Test.make ~count:80
    ~name:"propagate stream = enumerate stream (ordered, every model)" program_wide_arb (fun t ->
      List.for_all (fun m -> stream Engine.Propagate m t = stream Engine.Enumerate m t) Model.all)

let prop_allowed_sets_identical =
  QCheck.Test.make ~count:80 ~name:"allowed sets identical through both engines"
    program_wide_arb (fun t ->
      List.for_all
        (fun m ->
          Outcome.equal
            (Outcome.allowed ~engine:Engine.Propagate m t)
            (Outcome.allowed ~engine:Engine.Enumerate m t))
        Model.all)

(* Random targets: point the test at the outcome of one of its own
   candidate executions (index chosen by qcheck), so roughly half the
   targets are allowed and the rest exercise the no-witness path. *)
let with_random_target (t, idx) =
  let outcomes =
    Enumerate.fold t ~init:[] ~f:(fun acc x -> Litmus.outcome_of_execution t x :: acc)
    |> List.sort_uniq compare
  in
  match outcomes with
  | [] -> None
  | _ ->
      let o = List.nth outcomes (idx mod List.length outcomes) in
      Some { t with Litmus.target = (fun o' -> o' = o); target_desc = "random candidate outcome" }

let prop_witnesses_identical =
  QCheck.Test.make ~count:60 ~name:"witness identical through both engines (random targets)"
    QCheck.(pair program_wide_arb (make (QCheck.Gen.int_bound 1000)))
    (fun (t, idx) ->
      match with_random_target (t, idx) with
      | None -> QCheck.assume_fail ()
      | Some t ->
          List.for_all
            (fun m ->
              Option.map exec_key (Outcome.witness ~engine:Engine.Propagate m t)
              = Option.map exec_key (Outcome.witness ~engine:Engine.Enumerate m t))
            Model.all)

let prop_certification_verdicts_identical =
  QCheck.Test.make ~count:40
    ~name:"certification verdicts identical through both engines (random targets)"
    QCheck.(pair program_wide_arb (make (QCheck.Gen.int_bound 1000)))
    (fun (t, idx) ->
      match with_random_target (t, idx) with
      | None -> QCheck.assume_fail ()
      | Some t ->
          Certify.mutant ~engine:Engine.Propagate t = Certify.mutant ~engine:Engine.Enumerate t
          && Certify.conformance ~engine:Engine.Propagate t
             = Certify.conformance ~engine:Engine.Enumerate t)

let () =
  if Sys.getenv_opt "MCM_GOLDEN_REGEN" <> None then begin
    List.iter (fun r -> Printf.printf "    %s\n" (pp_row r)) (rows ());
    exit 0
  end;
  let qcheck = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "oracle"
    [
      ( "engine",
        [
          Alcotest.test_case "analytic count = fold count" `Quick test_count_agrees_with_enumeration;
          Alcotest.test_case "fold = list enumerator (candidates)" `Slow
            test_fold_agrees_with_list_enumerator;
          Alcotest.test_case "allowed = list enumerator (outcomes)" `Slow
            test_allowed_agrees_with_list_enumerator;
          Alcotest.test_case "target_allowed agrees" `Slow test_target_allowed_agrees;
        ] );
      ( "engine-differential",
        [
          Alcotest.test_case "corpus streams identical (73 tests x 3 models)" `Slow
            test_corpus_streams_identical;
          Alcotest.test_case "propagate stats agree with enumerate counts" `Quick
            test_propagate_stats_consistent_matches;
          Alcotest.test_case "ladder s1-l2 streams identical" `Quick
            test_ladder_small_rung_streams_identical;
          Alcotest.test_case "ladder s2-l1 counts agree" `Slow test_ladder_medium_rung_counts_agree;
          Alcotest.test_case "ladder rungs well-formed and certifiable" `Quick
            test_ladder_well_formed_and_certifiable;
        ] );
      ( "goldens",
        [
          Alcotest.test_case "allowed-outcome counts (enumerate)" `Quick
            test_golden_counts_enumerate;
          Alcotest.test_case "allowed-outcome counts (propagate)" `Quick
            test_golden_counts_propagate;
          Alcotest.test_case "monotone along the lattice" `Slow test_monotone_along_lattice;
        ] );
      ( "certify",
        [
          Alcotest.test_case "whole generated suite" `Quick test_certify_suite;
          Alcotest.test_case "whole classic library" `Quick test_certify_library;
          Alcotest.test_case "reports engine-independent (52/52 + 21/21 both ways)" `Slow
            test_certify_reports_engine_independent;
          Alcotest.test_case "rejects allowed conformance" `Quick
            test_certify_rejects_allowed_conformance;
          Alcotest.test_case "rejects vacuous mutant" `Quick test_certify_rejects_vacuous_mutant;
          Alcotest.test_case "rejects disallowed mutant" `Quick
            test_certify_rejects_disallowed_mutant;
          Alcotest.test_case "conformance evidence is a cycle" `Quick
            test_conformance_evidence_is_a_cycle;
          Alcotest.test_case "weakened model flagged identically by both engines" `Quick
            test_weakened_model_same_failure_both_engines;
          Alcotest.test_case "vacuity rejected identically by both engines" `Quick
            test_vacuity_rejection_same_both_engines;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "correct devices are sound" `Quick test_soundness_correct_devices;
          Alcotest.test_case "injected bug is caught" `Quick test_soundness_catches_injected_bug;
          Alcotest.test_case "injected bug reported identically by both engines" `Quick
            test_soundness_injected_bug_same_both_engines;
          Alcotest.test_case "jobs-invariant report" `Quick test_soundness_jobs_invariant;
        ] );
      ( "properties",
        qcheck
          [
            prop_random_programs_well_formed;
            prop_monotone_random;
            prop_grid_jobs_identical;
            prop_consistent_count_bounded;
          ] );
      ( "properties-differential",
        qcheck
          [
            prop_streams_identical;
            prop_allowed_sets_identical;
            prop_witnesses_identical;
            prop_certification_verdicts_identical;
          ] );
    ]
