(* Tests for mcm_gpu: device profiles, bug injections, the timing model,
   and — most importantly — the operational instance semantics: correct
   devices never produce MCS-disallowed outcomes, fences enforce
   release/acquire ordering under adversarial weak parameters, and each
   bug injection produces exactly its associated violation. *)

module Prng = Mcm_util.Prng
module Litmus = Mcm_litmus.Litmus
module Library = Mcm_litmus.Library
module Enumerate = Mcm_litmus.Enumerate
module Model = Mcm_memmodel.Model
module Profile = Mcm_gpu.Profile
module Bug = Mcm_gpu.Bug
module Device = Mcm_gpu.Device
module Instance = Mcm_gpu.Instance
module Timing = Mcm_gpu.Timing

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Aggressive weak parameters used to hammer the semantics. *)
let wild =
  {
    Instance.instr_latency_ns = 4.;
    issue_jitter = 0.3;
    p_ooo = 0.5;
    vis_delay_mean_ns = 20.;
    p_stale = 0.5;
    stale_mean_ns = 30.;
  }

let near_starts test =
  Array.make (Litmus.nthreads test) 0.

let run_many ?(n = 4000) ?(bugs = Bug.none) ?(weak = wild) ?(starts = None) test =
  let g = Prng.create 7 in
  List.init n (fun i ->
      let starts =
        match starts with
        | Some s -> s
        | None ->
            (* Randomise starts within a tight window so threads overlap. *)
            Array.map (fun _ -> Prng.float g 30.) (near_starts test)
      in
      ignore i;
      Instance.run ~prng:(Prng.split g) ~weak ~bugs ~test ~starts ())

(* -------------------------------------------------------------------- *)
(* Profiles                                                               *)

let test_profiles_table3 () =
  let rows = Profile.table3 () in
  check_int "four devices" 4 (List.length rows);
  Alcotest.(check (list string))
    "vendors in paper order"
    [ "NVIDIA"; "AMD"; "Intel"; "Apple" ]
    (List.map (fun (v, _, _, _) -> v) rows);
  List.iter
    (fun (v, _, cus, ty) ->
      check (v ^ " CUs positive") true (cus > 0);
      check (v ^ " type") true (ty = "Discrete" || ty = "Integrated"))
    rows

let test_profile_find () =
  check "find nvidia" true (Profile.find "nvidia" = Some Profile.nvidia);
  check "find M1" true (Profile.find "m1" = Some Profile.m1);
  check "find nothing" true (Profile.find "voodoo" = None)

let test_occupancy_amplifier_monotone () =
  List.iter
    (fun p ->
      check (p.Profile.short_name ^ " zero at zero") true
        (Profile.occupancy_amplifier p ~instances:0 = 0.);
      let prev = ref 0. in
      List.iter
        (fun i ->
          let a = Profile.occupancy_amplifier p ~instances:i in
          check (p.Profile.short_name ^ " monotone") true (a >= !prev);
          prev := a)
        [ 1; 10; 100; 1000; 10000 ];
      check (p.Profile.short_name ^ " bounded") true (!prev <= p.Profile.occupancy_gain))
    Profile.all

let test_stress_amplifier_clamped () =
  let p = Profile.intel in
  check "negative clamps" true (Profile.stress_amplifier p ~intensity:(-1.) = 0.);
  check "above one clamps" true
    (Profile.stress_amplifier p ~intensity:2. = Profile.stress_amplifier p ~intensity:1.)

(* -------------------------------------------------------------------- *)
(* Bugs                                                                   *)

let test_bug_effects_combine () =
  let e = Bug.effect_of [ Bug.Corr_reorder 0.5; Bug.Corr_reorder 0.5 ] in
  check "independent combination" true (abs_float (e.Bug.p_corr_reorder -. 0.75) < 1e-9);
  let e = Bug.effect_of [ Bug.Fence_weakened 0.3; Bug.Coherence_alias 0.2 ] in
  let close a b = abs_float (a -. b) < 1e-9 in
  check "separate channels" true
    (close e.Bug.p_fence_drop 0.3 && close e.Bug.p_coherence_alias 0.2 && e.Bug.p_corr_reorder = 0.)

let test_paper_bugs () =
  check "intel gets corr" true
    (match Bug.paper_bug Profile.intel with Some (Bug.Corr_reorder _) -> true | _ -> false);
  check "amd gets fence" true
    (match Bug.paper_bug Profile.amd with Some (Bug.Fence_weakened _) -> true | _ -> false);
  check "nvidia gets alias" true
    (match Bug.paper_bug Profile.nvidia with Some (Bug.Coherence_alias _) -> true | _ -> false);
  check "m1 correct" true (Bug.paper_bug Profile.m1 = None)

let test_device_names () =
  check "bare name" true (Device.name (Device.make Profile.amd) = "AMD");
  check "bug suffix" true
    (Device.name (Device.make ~bugs:[ Bug.Fence_weakened 0.1 ] Profile.amd) = "AMD+bugs")

(* -------------------------------------------------------------------- *)
(* Instance semantics: conformance on correct devices.                    *)

(* Every outcome a correct simulated device produces must be consistent
   with the test's MCS — checked against the enumerated allowed set. *)
let assert_all_outcomes_allowed test =
  let allowed = Enumerate.consistent_outcomes test.Litmus.model test in
  List.iter
    (fun o ->
      if not (List.mem o allowed) then
        Alcotest.failf "%s: disallowed outcome %s" test.Litmus.name (Litmus.outcome_to_string o))
    (run_many test)

let test_correct_device_respects_mcs () =
  (* The simulator is adversarial (huge delays, staleness, reordering)
     yet must stay within each test's MCS envelope. *)
  List.iter assert_all_outcomes_allowed
    [
      Library.corr; Library.cowr; Library.corw; Library.mp_relacq; Library.mp_co;
      Library.lb_relacq; Library.s_relacq;
    ]

let test_weak_behaviours_do_occur () =
  (* On unfenced tests the weak outcomes must actually be observable —
     otherwise the simulator could pass the check above trivially. *)
  let hits test =
    List.length (List.filter test.Litmus.target (run_many test))
  in
  check "MP weak observed" true (hits Library.mp > 0);
  check "SB weak observed" true (hits Library.sb > 0);
  check "LB weak observed" true (hits Library.lb > 0);
  check "R weak observed" true (hits Library.r > 0);
  check "2+2W weak observed" true (hits Library.two_plus_two_w > 0)

let test_fences_block_weak_mp () =
  (* MP-relacq's target must never fire on a correct device, while plain
     MP's does — the fence semantics carry the difference. *)
  let count test = List.length (List.filter test.Litmus.target (run_many test)) in
  check_int "MP-relacq never" 0 (count Library.mp_relacq);
  check "MP often" true (count Library.mp > 0)

let test_sequential_when_separated () =
  (* Threads far apart in time read each other's final values. *)
  let test = Library.mp in
  let outcomes = run_many ~starts:(Some [| 0.; 1_000_000. |]) test in
  List.iter
    (fun o ->
      check "reader sees everything" true
        (o.Litmus.regs.(1).(0) = 1 && o.Litmus.regs.(1).(1) = 1))
    outcomes

let test_determinism () =
  let test = Library.mp in
  let run seed =
    let g = Prng.create seed in
    List.init 100 (fun _ ->
        Instance.run ~prng:(Prng.split g) ~weak:wild ~bugs:Bug.none ~test ~starts:[| 0.; 10. |] ())
  in
  check "same seed same outcomes" true (run 5 = run 5);
  check "different seeds differ somewhere" true (run 5 <> run 6)

let test_rmw_reads_captured () =
  (* SB-relacq-rmw: thread 1's RMW must read thread 0's RMW value or the
     initial state; never its own write. *)
  List.iter
    (fun o ->
      let r0 = o.Litmus.regs.(1).(0) in
      check "rmw read value sane" true (r0 = 0 || r0 = 1))
    (run_many Library.sb_relacq_rmw)

let test_final_memory_reported () =
  List.iter
    (fun o ->
      check "final x written" true (o.Litmus.final.(0) = 1 || o.Litmus.final.(0) = 2);
      check "final y written" true (o.Litmus.final.(1) = 1 || o.Litmus.final.(1) = 2))
    (run_many Library.two_plus_two_w)

let test_starts_length_checked () =
  Alcotest.check_raises "wrong starts" (Invalid_argument "Instance.run: starts length mismatch")
    (fun () ->
      ignore
        (Instance.run ~prng:(Prng.create 1) ~weak:wild ~bugs:Bug.none ~test:Library.mp
           ~starts:[| 0. |] ()))

(* -------------------------------------------------------------------- *)
(* Bug injections produce their violations.                               *)

let test_corr_bug_fires () =
  let bugs = Bug.effect_of [ Bug.Corr_reorder 0.5 ] in
  let kills = List.filter Library.corr.Litmus.target (run_many ~bugs Library.corr) in
  check "CoRR violations observed" true (kills <> [])

let test_fence_bug_fires () =
  let bugs = Bug.effect_of [ Bug.Fence_weakened 0.5 ] in
  let kills = List.filter Library.mp_relacq.Litmus.target (run_many ~bugs Library.mp_relacq) in
  check "MP-relacq violations observed" true (kills <> [])

let test_alias_bug_fires () =
  let bugs = Bug.effect_of [ Bug.Coherence_alias 0.5 ] in
  let kills = List.filter Library.mp_co.Litmus.target (run_many ~bugs Library.mp_co) in
  check "MP-CO violations observed" true (kills <> [])

let test_bugs_do_not_cross_fire () =
  (* The fence bug must not make coherence tests fail, and the alias bug
     must not break fenced message passing. *)
  let count bugs test = List.length (List.filter test.Litmus.target (run_many ~bugs test)) in
  check_int "fence bug leaves MP-CO alone" 0
    (count (Bug.effect_of [ Bug.Fence_weakened 0.9 ]) Library.mp_co);
  check_int "corr bug leaves MP-relacq alone" 0
    (count (Bug.effect_of [ Bug.Corr_reorder 0.9 ]) Library.mp_relacq)

(* -------------------------------------------------------------------- *)
(* Timing model                                                           *)

let test_timing_positive_and_monotone () =
  List.iter
    (fun p ->
      let t wg stress =
        Timing.iteration_time_ns p ~workgroups:wg ~threads_per_workgroup:64 ~instrs_per_thread:8
          ~stress_intensity:stress
      in
      check (p.Profile.short_name ^ " positive") true (t 2 0. > 0.);
      check (p.Profile.short_name ^ " more wgs slower") true (t 1024 0. > t 2 0.);
      check (p.Profile.short_name ^ " stress slower") true (t 64 1. > t 64 0.))
    Profile.all

let test_timing_waves () =
  let p = Profile.nvidia in
  let t wg =
    Timing.iteration_time_ns p ~workgroups:wg ~threads_per_workgroup:32 ~instrs_per_thread:4
      ~stress_intensity:0.
  in
  (* Same wave count, same duration. *)
  check "within one wave" true (t 2 = t 64);
  check "next wave costs" true (t 65 > t 64)

let test_to_seconds () =
  Alcotest.(check (float 1e-12)) "ns to s" 1.5e-3 (Timing.to_seconds 1_500_000.)

(* -------------------------------------------------------------------- *)
(* Effective parameters                                                   *)

let test_effective_params () =
  let p = Profile.amd in
  let base = Instance.effective_params p ~amplification:0. in
  let amped = Instance.effective_params p ~amplification:10. in
  check "ooo grows" true (amped.Instance.p_ooo > base.Instance.p_ooo);
  check "vis grows" true (amped.Instance.vis_delay_mean_ns > base.Instance.vis_delay_mean_ns);
  check "stale prob grows" true (amped.Instance.p_stale > base.Instance.p_stale);
  check "probabilities clamped" true
    ((Instance.effective_params p ~amplification:1e9).Instance.p_ooo <= 0.95);
  check "negative amplification clamps to base" true
    (Instance.effective_params p ~amplification:(-5.) = base)

(* -------------------------------------------------------------------- *)
(* Properties                                                             *)

let prop_outcome_shape =
  QCheck.Test.make ~count:100 ~name:"outcomes have the test's shape" QCheck.int (fun seed ->
      let test = Library.mp_relacq in
      let o =
        Instance.run ~prng:(Prng.create seed) ~weak:wild ~bugs:Bug.none ~test ~starts:[| 0.; 5. |] ()
      in
      Array.length o.Litmus.regs = 2 && Array.length o.Litmus.final = 2)

let prop_corr_coherent_without_bug =
  QCheck.Test.make ~count:500 ~name:"CoRR never violated without bugs" QCheck.int (fun seed ->
      let g = Prng.create seed in
      let starts = [| Prng.float g 20.; Prng.float g 20. |] in
      let o =
        Instance.run ~prng:g ~weak:wild ~bugs:Bug.none ~test:Library.corr ~starts ()
      in
      not (Library.corr.Litmus.target o))

(* Random well-formed litmus programs: 2-3 threads, 1-3 instructions
   each, up to 2 locations, unique store values, optional fences. *)
let arbitrary_program =
  let open QCheck.Gen in
  let gen =
    let* nthreads = int_range 2 3 in
    let* nlocs = int_range 1 2 in
    let value_counter = ref 0 in
    let gen_instr tid_regs =
      let* choice = int_range 0 3 in
      let* loc = int_range 0 (nlocs - 1) in
      match choice with
      | 0 ->
          let reg = !tid_regs in
          incr tid_regs;
          return (Mcm_litmus.(Instr.load ~reg ~loc ()))
      | 1 ->
          incr value_counter;
          return (Mcm_litmus.(Instr.store ~loc ~value:!value_counter ()))
      | 2 ->
          let reg = !tid_regs in
          incr tid_regs;
          incr value_counter;
          return (Mcm_litmus.(Instr.rmw ~reg ~loc ~value:!value_counter ()))
      | _ -> return (Mcm_litmus.Instr.fence ())
    in
    let gen_thread =
      let* len = int_range 1 3 in
      let regs = ref 0 in
      let rec go n acc = if n = 0 then return (List.rev acc) else gen_instr regs >>= fun i -> go (n - 1) (i :: acc) in
      go len []
    in
    let rec threads n acc =
      if n = 0 then return (Array.of_list (List.rev acc)) else gen_thread >>= fun t -> threads (n - 1) (t :: acc)
    in
    let* ts = threads nthreads [] in
    return
      {
        Litmus.name = "random";
        family = "random";
        model = Mcm_memmodel.Model.Relacq_sc_per_location;
        threads = ts;
        nlocs;
        target = (fun _ -> false);
        target_desc = "-";
      }
  in
  QCheck.make ~print:Litmus.to_string gen

let prop_simulator_within_model =
  (* The central soundness property of the substrate: on a correct
     device, every outcome the operational simulator produces for a
     random program is allowed by the axiomatic rel-acq model. *)
  QCheck.Test.make ~count:60 ~name:"simulator outcomes within the axiomatic model"
    (QCheck.pair arbitrary_program QCheck.small_int)
    (fun (test, seed) ->
      QCheck.assume (Litmus.well_formed test = Ok ());
      let allowed = Enumerate.consistent_outcomes test.Litmus.model test in
      let g = Prng.create seed in
      let ok = ref true in
      for _ = 1 to 60 do
        let starts =
          Array.init (Litmus.nthreads test) (fun _ -> Prng.float g 60.)
        in
        let o = Instance.run ~prng:(Prng.split g) ~weak:wild ~bugs:Bug.none ~test ~starts () in
        if not (List.mem o allowed) then ok := false
      done;
      !ok)

let prop_values_from_program =
  QCheck.Test.make ~count:300 ~name:"read values come from the program's writes" QCheck.int
    (fun seed ->
      let g = Prng.create seed in
      let test = Library.mp_co in
      let o =
        Instance.run ~prng:g ~weak:wild ~bugs:Bug.none ~test
          ~starts:[| Prng.float g 40.; Prng.float g 40. |] ()
      in
      let ok v = v = 0 || v = 1 || v = 2 in
      ok o.Litmus.regs.(1).(0) && ok o.Litmus.regs.(1).(1) && ok o.Litmus.final.(0))

let () =
  Alcotest.run "gpu"
    [
      ( "profile",
        [
          Alcotest.test_case "table 3" `Quick test_profiles_table3;
          Alcotest.test_case "find" `Quick test_profile_find;
          Alcotest.test_case "occupancy amplifier" `Quick test_occupancy_amplifier_monotone;
          Alcotest.test_case "stress amplifier clamp" `Quick test_stress_amplifier_clamped;
        ] );
      ( "bug",
        [
          Alcotest.test_case "effects combine" `Quick test_bug_effects_combine;
          Alcotest.test_case "paper bugs" `Quick test_paper_bugs;
          Alcotest.test_case "device names" `Quick test_device_names;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "correct device respects MCS" `Slow test_correct_device_respects_mcs;
          Alcotest.test_case "weak behaviours occur" `Quick test_weak_behaviours_do_occur;
          Alcotest.test_case "fences block weak MP" `Quick test_fences_block_weak_mp;
          Alcotest.test_case "sequential when separated" `Quick test_sequential_when_separated;
          Alcotest.test_case "deterministic" `Quick test_determinism;
          Alcotest.test_case "rmw reads" `Quick test_rmw_reads_captured;
          Alcotest.test_case "final memory" `Quick test_final_memory_reported;
          Alcotest.test_case "starts checked" `Quick test_starts_length_checked;
        ] );
      ( "bugs-fire",
        [
          Alcotest.test_case "corr bug" `Quick test_corr_bug_fires;
          Alcotest.test_case "fence bug" `Quick test_fence_bug_fires;
          Alcotest.test_case "alias bug" `Quick test_alias_bug_fires;
          Alcotest.test_case "no cross-fire" `Quick test_bugs_do_not_cross_fire;
        ] );
      ( "timing",
        [
          Alcotest.test_case "positive and monotone" `Quick test_timing_positive_and_monotone;
          Alcotest.test_case "waves" `Quick test_timing_waves;
          Alcotest.test_case "to_seconds" `Quick test_to_seconds;
        ] );
      ("params", [ Alcotest.test_case "effective params" `Quick test_effective_params ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_outcome_shape; prop_corr_coherent_without_bug; prop_simulator_within_model;
            prop_values_from_program;
          ] );
    ]
