(* Tests for the litmus IR, the classic test library, and the candidate
   execution enumerator. The key facts checked here are semantic: each
   classic test's target behaviour is allowed/disallowed under its model
   exactly as the literature says. *)

module Model = Mcm_memmodel.Model
module Litmus = Mcm_litmus.Litmus
module Instr = Mcm_litmus.Instr
module Library = Mcm_litmus.Library
module Enumerate = Mcm_litmus.Enumerate

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* -------------------------------------------------------------------- *)
(* Well-formedness of the whole library.                                 *)

let test_library_well_formed () =
  let assert_wf t =
    match Litmus.well_formed t with
    | Ok () -> ()
    | Error e -> Alcotest.failf "%s not well-formed: %s" t.Litmus.name e
  in
  List.iter assert_wf Library.all

let test_library_names_unique () =
  let names = List.map (fun t -> t.Litmus.name) Library.all in
  check_int "unique names" (List.length names) (List.length (List.sort_uniq compare names))

let test_find () =
  check "find corr" true (Library.find "corr" <> None);
  check "find CoRR" true (Library.find "CoRR" <> None);
  check "find nonsense" true (Library.find "does-not-exist" = None)

(* -------------------------------------------------------------------- *)
(* Allowed / disallowed classification of the classics. The comments in
   library.mli are enforced here by enumeration.                         *)

let disallowed_under_own_model =
  [
    Library.corr; Library.cowr; Library.corw; Library.coww; Library.mp_relacq; Library.mp_co;
    Library.lb_relacq; Library.sb_relacq_rmw; Library.s_relacq; Library.r_relacq_rmw;
    Library.two_plus_two_w_relacq_rmw;
  ]

let allowed_under_own_model =
  [
    Library.mp; Library.lb; Library.sb; Library.s; Library.r; Library.two_plus_two_w;
    Library.iriw; Library.wrc; Library.isa2; Library.rwc;
  ]

let test_disallowed () =
  List.iter
    (fun t ->
      check
        (Printf.sprintf "%s target disallowed under %s" t.Litmus.name (Model.name t.Litmus.model))
        false
        (Enumerate.target_allowed t.Litmus.model t))
    disallowed_under_own_model

let test_allowed () =
  List.iter
    (fun t ->
      check
        (Printf.sprintf "%s target allowed under %s" t.Litmus.name (Model.name t.Litmus.model))
        true
        (Enumerate.target_allowed t.Litmus.model t))
    allowed_under_own_model

let test_weak_tests_disallowed_under_sc () =
  (* Every weak behaviour of the classic 4-event tests is forbidden by
     sequential consistency. *)
  List.iter
    (fun t ->
      check (Printf.sprintf "%s target disallowed under SC" t.Litmus.name) false
        (Enumerate.target_allowed Model.Sc t))
    (allowed_under_own_model @ disallowed_under_own_model)

let test_relacq_tests_allowed_without_fences () =
  (* The fence tests' targets are allowed under plain SC-per-location:
     that is exactly why removing fences (mutator 3) creates mutants. *)
  List.iter
    (fun t ->
      check
        (Printf.sprintf "%s target allowed under SC-per-loc" t.Litmus.name)
        true
        (Enumerate.target_allowed Model.Sc_per_location t))
    [
      Library.mp_relacq; Library.lb_relacq; Library.sb_relacq_rmw; Library.s_relacq;
      Library.r_relacq_rmw; Library.two_plus_two_w_relacq_rmw;
    ]

let test_forbidden_cycle_reported () =
  List.iter
    (fun t ->
      match Enumerate.forbidden_cycle t with
      | Some _ -> ()
      | None -> Alcotest.failf "%s: no forbidden cycle found" t.Litmus.name)
    disallowed_under_own_model

let test_corr_cycle_matches_paper () =
  (* Fig. 2a: the CoRR violation's cycle is b -> c -> a -> b. *)
  match Enumerate.forbidden_cycle Library.corr with
  | None -> Alcotest.fail "CoRR: no cycle"
  | Some cycle ->
      (* Cycle rotation may differ; check it mentions all three events. *)
      List.iter
        (fun ev -> check (Printf.sprintf "cycle mentions %s" ev) true
            (String.length cycle >= 1 && String.contains cycle ev.[0]))
        [ "a"; "b"; "c" ]

(* -------------------------------------------------------------------- *)
(* Candidate enumeration sanity.                                         *)

let test_corr_candidate_count () =
  (* CoRR: two reads with rf in {init, W} each = 4, one write so one co
     order: 4 candidates. *)
  let total, consistent = Enumerate.count_candidates Library.corr in
  check_int "total candidates" 4 total;
  (* Outcomes (r0, r1): (0,0) (0,1) (1,1) allowed; (1,0) not. *)
  check_int "consistent candidates" 3 consistent

let test_corr_consistent_outcomes () =
  let outs = Enumerate.consistent_outcomes Model.Sc_per_location Library.corr in
  let pairs = List.map (fun o -> (o.Litmus.regs.(0).(0), o.Litmus.regs.(0).(1))) outs in
  Alcotest.(check (list (pair int int)))
    "outcomes" [ (0, 0); (0, 1); (1, 1) ] (List.sort compare pairs)

let test_mp_sc_outcomes () =
  (* Under SC the weak MP outcome (1, 0) must be absent; three SC
     outcomes remain. *)
  let outs = Enumerate.consistent_outcomes Model.Sc Library.mp in
  let pairs = List.map (fun o -> (o.Litmus.regs.(1).(0), o.Litmus.regs.(1).(1))) outs in
  check "no (1,0)" false (List.mem (1, 0) pairs);
  Alcotest.(check (list (pair int int)))
    "outcomes" [ (0, 0); (0, 1); (1, 1) ] (List.sort compare pairs)

let test_mp_scperloc_outcomes () =
  (* SC-per-location additionally allows the weak (1, 0). *)
  let outs = Enumerate.consistent_outcomes Model.Sc_per_location Library.mp in
  let pairs = List.map (fun o -> (o.Litmus.regs.(1).(0), o.Litmus.regs.(1).(1))) outs in
  Alcotest.(check (list (pair int int)))
    "outcomes" [ (0, 0); (0, 1); (1, 0); (1, 1) ] (List.sort compare pairs)

let test_model_strength_lattice () =
  (* Over every candidate execution of every library test, consistency
     respects the model-strength lattice:
     SC ⊆ TSO ⊆ SC-per-loc and SC ⊆ rel-acq ⊆ SC-per-loc. *)
  let module Cat = Mcm_memmodel.Cat in
  List.iter
    (fun t ->
      List.iter
        (fun x ->
          let sc = Cat.consistent Cat.sc x in
          let tso = Cat.consistent Cat.tso x in
          let relacq = Cat.consistent Cat.relacq x in
          let coherence = Cat.consistent Cat.sc_per_location x in
          check (t.Litmus.name ^ ": SC implies TSO") true ((not sc) || tso);
          check (t.Litmus.name ^ ": TSO implies coherence") true ((not tso) || coherence);
          check (t.Litmus.name ^ ": SC implies rel-acq") true ((not sc) || relacq);
          check (t.Litmus.name ^ ": rel-acq implies coherence") true ((not relacq) || coherence))
        (Enumerate.candidates t))
    Library.all

let test_cat_agrees_with_direct_models_on_candidates () =
  let module Cat = Mcm_memmodel.Cat in
  List.iter
    (fun t ->
      List.iter
        (fun x ->
          List.iter
            (fun m ->
              check
                (t.Litmus.name ^ ": " ^ Model.name m ^ " agrees")
                true
                (Model.consistent m x = Cat.consistent (Cat.of_model m) x))
            Model.all)
        (Enumerate.candidates t))
    Library.all

let test_witness_is_consistent () =
  match Enumerate.witness Model.Sc_per_location Library.mp with
  | None -> Alcotest.fail "MP: no witness"
  | Some x ->
      check "witness consistent" true (Model.consistent Model.Sc_per_location x);
      check "witness exhibits target" true
        (Library.mp.Litmus.target (Litmus.outcome_of_execution Library.mp x))

let test_final_memory_in_outcome () =
  (* 2+2W: the final-state condition distinguishes coherence orders. *)
  let outs = Enumerate.consistent_outcomes Model.Sc Library.two_plus_two_w in
  List.iter
    (fun o ->
      check "final x is 1 or 2" true (o.Litmus.final.(0) = 1 || o.Litmus.final.(0) = 2);
      check "final y is 1 or 2" true (o.Litmus.final.(1) = 1 || o.Litmus.final.(1) = 2))
    outs;
  check "SC forbids x=1 && y=2" false
    (List.exists (fun o -> o.Litmus.final.(0) = 1 && o.Litmus.final.(1) = 2) outs)

(* -------------------------------------------------------------------- *)
(* IR helpers.                                                           *)

let test_instr_helpers () =
  check "load uses loc" true (Instr.uses_loc ((Instr.load ~reg:0 ~loc:3 ())) = Some 3);
  check "fence uses no loc" true (Instr.uses_loc (Instr.fence ()) = None);
  check "store defines no reg" true (Instr.defines_reg ((Instr.store ~loc:0 ~value:1 ())) = None);
  check "rmw defines reg" true (Instr.defines_reg ((Instr.rmw ~reg:2 ~loc:0 ~value:1 ())) = Some 2);
  check "fence not memory access" false (Instr.is_memory_access (Instr.fence ()));
  check "rmw is memory access" true (Instr.is_memory_access ((Instr.rmw ~reg:0 ~loc:0 ~value:1 ())))

let test_instr_pp () =
  let names l = Litmus.loc_name l in
  Alcotest.(check string)
    "load" "r0 = atomicLoad(x)"
    (Instr.to_string ~loc_names:names ((Instr.load ~reg:0 ~loc:0 ())));
  Alcotest.(check string)
    "store" "atomicStore(y, 2)"
    (Instr.to_string ~loc_names:names ((Instr.store ~loc:1 ~value:2 ())));
  Alcotest.(check string) "fence" "storageBarrier()" (Instr.to_string ~loc_names:names (Instr.fence ()))

let test_nregs () =
  let nregs = Litmus.nregs Library.corr in
  Alcotest.(check (list int)) "corr regs" [ 2; 0 ] (Array.to_list nregs)

let test_well_formed_rejects () =
  let bad_loc =
    { Library.corr with Litmus.nlocs = 0 }
  in
  check "loc out of range" true (Litmus.well_formed bad_loc |> Result.is_error);
  let double_reg =
    {
      Library.corr with
      Litmus.threads =
        [| [ (Instr.load ~reg:0 ~loc:0 ()); (Instr.load ~reg:0 ~loc:0 ()) ]; [] |];
    }
  in
  check "register written twice" true (Litmus.well_formed double_reg |> Result.is_error);
  let dup_value =
    {
      Library.corr with
      Litmus.threads =
        [| [ (Instr.store ~loc:0 ~value:1 ()); (Instr.store ~loc:0 ~value:1 ()) ] |];
    }
  in
  check "duplicate stored value" true (Litmus.well_formed dup_value |> Result.is_error);
  let zero_value =
    { Library.corr with Litmus.threads = [| [ (Instr.store ~loc:0 ~value:0 ()) ] |] }
  in
  check "stored zero" true (Litmus.well_formed zero_value |> Result.is_error)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* -------------------------------------------------------------------- *)
(* Textual format: parser and printer.                                    *)

module Parse = Mcm_litmus.Parse
module Classify = Mcm_litmus.Classify

let mp_source =
  {|# message passing, fenced
test MP-relacq
model relacq
locations x y
thread P0
  store x 1
  fence
  store y 1
thread P1
  r0 = load y
  fence
  r1 = load x
target P1:r0 == 1 && P1:r1 == 0
|}

let test_parse_mp () =
  match Parse.parse mp_source with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok t ->
      Alcotest.(check string) "name" "MP-relacq" t.Litmus.name;
      check "model" true (t.Litmus.model = Model.Relacq_sc_per_location);
      check_int "threads" 2 (Litmus.nthreads t);
      check_int "locations" 2 t.Litmus.nlocs;
      (* Behaviourally identical to the hand-written library test. *)
      let reference = Library.mp_relacq in
      check "same classification" true
        (Enumerate.target_allowed t.Litmus.model t
        = Enumerate.target_allowed reference.Litmus.model reference);
      let outcomes =
        List.sort_uniq compare
          (List.map (Litmus.outcome_of_execution reference) (Enumerate.candidates reference))
      in
      List.iter
        (fun o ->
          check "targets agree" true (t.Litmus.target o = reference.Litmus.target o))
        outcomes

let test_parse_rmw_and_exchange () =
  let src =
    "test t\nthread P0\n  r0 = exchange x 1\nthread P1\n  store x 2\ntarget P0:r0 == 2\n"
  in
  match Parse.parse src with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok t -> (
      match t.Litmus.threads.(0) with
      | [ Instr.Rmw { reg = 0; loc = 0; value = 1; _ } ] -> ()
      | _ -> Alcotest.fail "expected an exchange instruction")

let test_parse_condition_operators () =
  let src thread_cond =
    "test t\nthread P0\n  r0 = load x\nthread P1\n  store x 1\ntarget " ^ thread_cond ^ "\n"
  in
  let outcome_with r0 final =
    match Parse.parse (src "true") with
    | Error e -> Alcotest.failf "setup: %s" e
    | Ok t ->
        let o = Litmus.empty_outcome t in
        o.Litmus.regs.(0).(0) <- r0;
        o.Litmus.final.(0) <- final;
        o
  in
  let target cond o =
    match Parse.parse (src cond) with
    | Error e -> Alcotest.failf "parse %S: %s" cond e
    | Ok t -> t.Litmus.target o
  in
  check "conjunction" true (target "P0:r0 == 1 && x == 1" (outcome_with 1 1));
  check "conjunction fails" false (target "P0:r0 == 1 && x == 1" (outcome_with 0 1));
  check "disjunction" true (target "P0:r0 == 1 || x == 9" (outcome_with 1 1));
  check "negation" true (target "!(P0:r0 == 1)" (outcome_with 0 1));
  check "precedence: ! binds tightest" true (target "!P0:r0 == 1 || x == 1" (outcome_with 1 1));
  check "parens" false (target "!(P0:r0 == 1 || x == 1)" (outcome_with 1 1));
  check "constants" true (target "true" (outcome_with 0 0));
  check "false constant" false (target "false" (outcome_with 0 0))

let test_parse_errors_report () =
  let cases =
    [
      ("", "missing test");
      ("test t\n", "missing target");
      ("test t\ntarget true\n", "no threads");
      ("test t\nthread P0\n  bogus op\ntarget true\n", "unrecognised");
      ("test t\nthread P0\n  store x 1\ntarget P9:r0 == 1\n", "unknown thread");
      ("test t\nthread P0\n  store x 1\ntarget y == 1\n", "unknown location");
      ("test t\nmodel tso\nthread P0\n  store x 1\ntarget true\n", "unknown model");
      ("test t\nthread P0\nthread P0\ntarget true\n", "duplicate thread");
      ("test t\nthread P0\n  store x 1\ntarget x == \n", "value");
      ("test t\nthread P0\n  store x 0\ntarget true\n", "reserved");
    ]
  in
  List.iter
    (fun (src, _hint) ->
      match Parse.parse src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected a parse error for %S" src)
    cases

let test_roundtrip_library () =
  (* print-then-parse preserves behaviour for every hand-written test. *)
  List.iter
    (fun reference ->
      let src = Parse.to_source reference in
      match Parse.parse src with
      | Error e -> Alcotest.failf "%s: reparse failed: %s" reference.Litmus.name e
      | Ok t ->
          check (reference.Litmus.name ^ " same program") true
            (t.Litmus.threads = reference.Litmus.threads && t.Litmus.model = reference.Litmus.model);
          let outcomes =
            List.sort_uniq compare
              (List.map (Litmus.outcome_of_execution reference) (Enumerate.candidates reference))
          in
          List.iter
            (fun o ->
              check (reference.Litmus.name ^ " targets agree") true
                (t.Litmus.target o = reference.Litmus.target o))
            outcomes)
    Library.all

(* -------------------------------------------------------------------- *)
(* Behaviour classification.                                              *)

let test_sequential_outcomes_mp () =
  let outs = Classify.sequential_outcomes Library.mp in
  (* Two thread orders: writer first -> (1,1); reader first -> (0,0). *)
  check_int "two sequential outcomes" 2 (List.length outs);
  let pairs = List.map (fun o -> (o.Litmus.regs.(1).(0), o.Litmus.regs.(1).(1))) outs in
  Alcotest.(check (list (pair int int))) "pairs" [ (0, 0); (1, 1) ] (List.sort compare pairs)

let test_classify_mp () =
  let classify = Classify.classifier Library.mp in
  let outcome r0 r1 =
    let o = Litmus.empty_outcome Library.mp in
    o.Litmus.regs.(1).(0) <- r0;
    o.Litmus.regs.(1).(1) <- r1;
    o.Litmus.final.(0) <- 1;
    o.Litmus.final.(1) <- 1;
    o
  in
  check "both-new is sequential" true (classify (outcome 1 1) = Classify.Sequential);
  check "flag-miss data-hit is interleaved" true (classify (outcome 0 1) = Classify.Interleaved);
  check "weak MP outcome" true (classify (outcome 1 0) = Classify.Weak)

let test_classify_forbidden () =
  let classify = Classify.classifier Library.corr in
  let o = Litmus.empty_outcome Library.corr in
  o.Litmus.regs.(0).(0) <- 1;
  o.Litmus.regs.(0).(1) <- 0;
  o.Litmus.final.(0) <- 1;
  check "CoRR violation is forbidden" true (classify o = Classify.Forbidden);
  (* An outcome outside the candidate space is forbidden too. *)
  let garbage = Litmus.empty_outcome Library.corr in
  garbage.Litmus.regs.(0).(0) <- 999;
  check "garbage is forbidden" true (classify garbage = Classify.Forbidden)

let test_classify_relacq_weak_vs_forbidden () =
  (* The same weak outcome is Weak for plain MP but Forbidden for the
     fenced version — the model field decides. *)
  let weak_of test =
    let o = Litmus.empty_outcome test in
    o.Litmus.regs.(1).(0) <- 1;
    o.Litmus.regs.(1).(1) <- 0;
    o.Litmus.final.(0) <- 1;
    o.Litmus.final.(1) <- 1;
    o
  in
  check "weak under MP" true (Classify.classifier Library.mp (weak_of Library.mp) = Classify.Weak);
  check "forbidden under MP-relacq" true
    (Classify.classifier Library.mp_relacq (weak_of Library.mp_relacq) = Classify.Forbidden)

let test_sequential_subset_of_sc () =
  List.iter
    (fun t ->
      let seq = Classify.sequential_outcomes t in
      let sc = Enumerate.consistent_outcomes Model.Sc t in
      List.iter
        (fun o ->
          check (t.Litmus.name ^ " sequential is SC") true (List.mem o sc))
        seq)
    [ Library.mp; Library.sb; Library.corr; Library.iriw; Library.sb_relacq_rmw ]

let test_pp_contains_program () =
  let s = Litmus.to_string Library.mp_relacq in
  check "mentions storageBarrier" true (contains s "storageBarrier()");
  check "mentions the data store" true (contains s "atomicStore(x, 1)");
  check "mentions the target" true (contains s "t1.r0 = 1 && t1.r1 = 0")

let () =
  Alcotest.run "litmus"
    [
      ( "library",
        [
          Alcotest.test_case "well-formed" `Quick test_library_well_formed;
          Alcotest.test_case "unique names" `Quick test_library_names_unique;
          Alcotest.test_case "find" `Quick test_find;
        ] );
      ( "classification",
        [
          Alcotest.test_case "disallowed targets" `Quick test_disallowed;
          Alcotest.test_case "allowed targets" `Quick test_allowed;
          Alcotest.test_case "weak targets disallowed under SC" `Quick
            test_weak_tests_disallowed_under_sc;
          Alcotest.test_case "relacq targets allowed without fences" `Quick
            test_relacq_tests_allowed_without_fences;
          Alcotest.test_case "forbidden cycles reported" `Quick test_forbidden_cycle_reported;
          Alcotest.test_case "CoRR cycle mentions a b c" `Quick test_corr_cycle_matches_paper;
        ] );
      ( "enumeration",
        [
          Alcotest.test_case "CoRR candidate count" `Quick test_corr_candidate_count;
          Alcotest.test_case "CoRR consistent outcomes" `Quick test_corr_consistent_outcomes;
          Alcotest.test_case "MP outcomes under SC" `Quick test_mp_sc_outcomes;
          Alcotest.test_case "MP outcomes under SC-per-loc" `Quick test_mp_scperloc_outcomes;
          Alcotest.test_case "model strength lattice" `Slow test_model_strength_lattice;
          Alcotest.test_case "CAT agrees with direct models" `Slow
            test_cat_agrees_with_direct_models_on_candidates;
          Alcotest.test_case "witness consistency" `Quick test_witness_is_consistent;
          Alcotest.test_case "final memory in outcomes" `Quick test_final_memory_in_outcome;
        ] );
      ( "parse",
        [
          Alcotest.test_case "MP source" `Quick test_parse_mp;
          Alcotest.test_case "exchange instruction" `Quick test_parse_rmw_and_exchange;
          Alcotest.test_case "condition operators" `Quick test_parse_condition_operators;
          Alcotest.test_case "errors reported" `Quick test_parse_errors_report;
          Alcotest.test_case "library round-trip" `Slow test_roundtrip_library;
        ] );
      ( "classify",
        [
          Alcotest.test_case "sequential outcomes of MP" `Quick test_sequential_outcomes_mp;
          Alcotest.test_case "MP classification" `Quick test_classify_mp;
          Alcotest.test_case "forbidden outcomes" `Quick test_classify_forbidden;
          Alcotest.test_case "weak vs forbidden by model" `Quick
            test_classify_relacq_weak_vs_forbidden;
          Alcotest.test_case "sequential subset of SC" `Quick test_sequential_subset_of_sc;
        ] );
      ( "ir",
        [
          Alcotest.test_case "instr helpers" `Quick test_instr_helpers;
          Alcotest.test_case "instr pretty-printing" `Quick test_instr_pp;
          Alcotest.test_case "nregs" `Quick test_nregs;
          Alcotest.test_case "well-formed rejections" `Quick test_well_formed_rejects;
          Alcotest.test_case "test pretty-printing" `Quick test_pp_contains_program;
        ] );
    ]
