(* Tests for the unified request -> plan -> execute pipeline (PR 5):
   Request serialization, cell-key stability against pinned hex vectors
   (the warm-store compatibility contract), and [Runner.exec]'s
   bit-identity with the pre-pipeline entry points under every
   collector — serial, sharded, and through a store. *)

module Prng = Mcm_util.Prng
module Jsonw = Mcm_util.Jsonw
module Jsonp = Mcm_util.Jsonp
module Suite = Mcm_core.Suite
module Profile = Mcm_gpu.Profile
module Device = Mcm_gpu.Device
module Bug = Mcm_gpu.Bug
module Params = Mcm_testenv.Params
module Runner = Mcm_testenv.Runner
module Request = Mcm_testenv.Request
module Key = Mcm_campaign.Key
module Store = Mcm_campaign.Store

let check_str = Alcotest.(check string)

let dir_counter = ref 0

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun name -> rm_rf (Filename.concat path name)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_temp_dir f =
  incr dir_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mcm-pipeline-test-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* A small pool of (test, device) material for random requests: two
   correct devices, one buggy one (so outcome sets and histograms carry
   forbidden behaviour too), three mutants of different families. *)
let tests_pool =
  lazy
    (List.map
       (fun n -> (Option.get (Suite.find n)).Suite.test)
       [ "MP-CO-m"; "CoRR-m"; "MP-relacq-m3" ])

let devices_pool =
  lazy
    [
      Device.make Profile.nvidia;
      Device.make Profile.intel;
      Device.make ~bugs:[ Bug.Corr_reorder 0.5 ] Profile.amd;
    ]

let random_request ~seed ~iterations ~engine =
  let g = Prng.create seed in
  let tests = Lazy.force tests_pool in
  let devices = Lazy.force devices_pool in
  let test = List.nth tests (Prng.int g (List.length tests)) in
  let device = List.nth devices (Prng.int g (List.length devices)) in
  let env = Params.scaled (Params.random g Params.Parallel) 0.01 in
  Request.make ~engine ~device ~env ~test ~iterations ~seed ()

let point_arb =
  (* (seed, iterations 0..3, domains 1..4, kernel engine?) *)
  QCheck.(
    quad small_int
      (make (Gen.int_range 0 3))
      (make (Gen.int_range 1 4))
      bool)

let engine_of_bool kernel = if kernel then Request.Kernel else Request.Interpreter

(* -------------------------------------------------------------------- *)
(* Request serialization.                                                 *)

let prop_request_json_roundtrips =
  (* The canonical cell serialization must survive a print/parse/print
     cycle at the string level — what key stability and the store's
     human-auditable payloads rest on. (String level: Jsonw prints 1.0
     as "1", which reparses as an Int — tree equality is the wrong
     contract for floats.) *)
  QCheck.Test.make ~count:100 ~name:"Request.to_json survives print/parse/print" point_arb
    (fun (seed, iterations, _domains, kernel) ->
      let r = random_request ~seed ~iterations ~engine:(engine_of_bool kernel) in
      List.for_all
        (fun kind ->
          let s = Jsonw.to_string (Request.to_json ~kind r) in
          match Jsonp.parse s with
          | Error _ -> false
          | Ok j -> Jsonw.to_string j = s)
        [ "run"; "histogram"; "outcomes" ])

let prop_engine_names_roundtrip =
  QCheck.Test.make ~count:10 ~name:"engine_of_name inverts engine_name" QCheck.bool
    (fun kernel ->
      let e = engine_of_bool kernel in
      Request.engine_of_name (Request.engine_name e) = Some e)

let prop_key_matches_legacy_cell_key =
  (* Request.key must coincide with the pre-pipeline Runner.cell_key for
     every cell — the invariant that keeps existing stores warm. *)
  QCheck.Test.make ~count:100 ~name:"Request.key == Runner.cell_key" point_arb
    (fun (seed, iterations, _domains, kernel) ->
      let engine = engine_of_bool kernel in
      let r = random_request ~seed ~iterations ~engine in
      List.for_all
        (fun kind ->
          Request.key ~kind r
          = Runner.cell_key ~engine ~kind ~device:r.Request.device ~env:r.Request.env
              ~test:r.Request.test ~iterations ~seed ())
        [ "run"; "histogram"; "outcomes" ])

(* -------------------------------------------------------------------- *)
(* Key stability: pinned hex vectors.                                     *)

(* These hashes are the on-disk contract: they freeze Key.code_version,
   Kernel.code_version (v3: scoped instructions, the scope event lane
   and the layout scalar — the deliberate re-addressing that keeps
   scoped results distinct from pre-scope stores), the canonical field
   order, and every serialized component. If one of these changes
   value, every existing campaign store goes cold — bump a code version
   deliberately rather than chasing the new hex. *)
let test_pinned_key_vectors () =
  (* The vectors below embed kernelVersion:3; freezing the version here
     makes an accidental bump (which would cold every store) explicit. *)
  Alcotest.(check int) "kernel code version" 3 Mcm_gpu.Kernel.code_version;
  Alcotest.(check string) "key code version" "mcm-cell-v2" Key.code_version;
  let device = Device.make Profile.nvidia in
  let env = Params.scaled Params.pte_baseline 0.02 in
  let test = (Option.get (Suite.find "MP-CO-m")).Suite.test in
  let req engine = Request.make ~engine ~device ~env ~test ~iterations:3 ~seed:42 () in
  List.iter
    (fun (kind, engine, expected) ->
      check_str
        (Printf.sprintf "%s/%s key" kind (Request.engine_name engine))
        expected
        (Key.to_hex (Request.key ~kind (req engine))))
    [
      ("run", Request.Kernel, "5de209034e1279ab");
      ("histogram", Request.Kernel, "591379a9abf17eb2");
      ("outcomes", Request.Kernel, "68f73b6798747693");
      ("run", Request.Interpreter, "aa9ffae92502a120");
    ]

(* -------------------------------------------------------------------- *)
(* exec vs the pre-pipeline entry points.                                 *)

let prop_exec_rate_equals_run =
  QCheck.Test.make ~count:25 ~name:"exec Rate == Runner.run (and raw run_campaign)" point_arb
    (fun (seed, iterations, domains, kernel) ->
      let engine = engine_of_bool kernel in
      let r = random_request ~seed ~iterations ~engine in
      let { Request.device; env; test; _ } = r in
      let via_exec = Runner.exec Runner.Rate r (Request.context ~domains ()) in
      let via_wrapper = Runner.run ~engine ~domains ~device ~env ~test ~iterations ~seed () in
      let via_engine =
        fst (Runner.run_campaign ~engine ~classify:None ~device ~env ~test ~iterations ~seed ())
      in
      via_exec = via_wrapper && via_exec = via_engine)

let prop_exec_histogram_equals_wrapper =
  QCheck.Test.make ~count:25 ~name:"exec Histogram == run_with_histogram" point_arb
    (fun (seed, iterations, domains, kernel) ->
      let engine = engine_of_bool kernel in
      let r = random_request ~seed ~iterations ~engine in
      let { Request.device; env; test; _ } = r in
      Runner.exec Runner.Histogram r (Request.context ~domains ())
      = Runner.run_with_histogram ~engine ~domains ~device ~env ~test ~iterations ~seed ())

let prop_exec_outcomes_equals_wrapper =
  QCheck.Test.make ~count:25 ~name:"exec Outcomes == run_with_outcomes" point_arb
    (fun (seed, iterations, domains, kernel) ->
      let engine = engine_of_bool kernel in
      let r = random_request ~seed ~iterations ~engine in
      let { Request.device; env; test; _ } = r in
      Runner.exec Runner.Outcomes r (Request.context ~domains ())
      = Runner.run_with_outcomes ~engine ~domains ~device ~env ~test ~iterations ~seed ())

let prop_exec_store_transparent =
  (* Under every collector: a cold store run equals the uncached run,
     and the warm rerun (served entirely from disk, through the codec)
     equals both — the end-to-end bit-identity contract. *)
  QCheck.Test.make ~count:15 ~name:"exec through a store == exec without one" point_arb
    (fun (seed, iterations, domains, kernel) ->
      let r = random_request ~seed ~iterations ~engine:(engine_of_bool kernel) in
      let agree : type a. a Runner.collect -> bool =
       fun c ->
        let bare = Runner.exec c r (Request.context ~domains ()) in
        with_temp_dir (fun dir ->
            Store.with_store dir (fun store ->
                let ctx = Request.context ~domains ~store () in
                let cold = Runner.exec c r ctx in
                let warm = Runner.exec c r ctx in
                cold = bare && warm = bare))
      in
      agree Runner.Rate && agree Runner.Histogram && agree Runner.Outcomes)

let () =
  Alcotest.run "pipeline"
    [
      ( "request",
        List.map QCheck_alcotest.to_alcotest
          [ prop_request_json_roundtrips; prop_engine_names_roundtrip;
            prop_key_matches_legacy_cell_key ] );
      ("keys", [ Alcotest.test_case "pinned hex vectors" `Quick test_pinned_key_vectors ]);
      ( "exec",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_exec_rate_equals_run;
            prop_exec_histogram_equals_wrapper;
            prop_exec_outcomes_equals_wrapper;
            prop_exec_store_transparent;
          ] );
    ]
