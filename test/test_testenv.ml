(* Tests for mcm_testenv: the 17 parameters and their derived views, the
   coprime thread↔instance assignment of Sec. 4.1, and the campaign
   runner (determinism, conformance safety, PTE vs SITE dynamics). *)

module Prng = Mcm_util.Prng
module Numbers = Mcm_util.Numbers
module Litmus = Mcm_litmus.Litmus
module Library = Mcm_litmus.Library
module Enumerate = Mcm_litmus.Enumerate
module Suite = Mcm_core.Suite
module Profile = Mcm_gpu.Profile
module Device = Mcm_gpu.Device
module Params = Mcm_testenv.Params
module Assignment = Mcm_testenv.Assignment
module Runner = Mcm_testenv.Runner

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* -------------------------------------------------------------------- *)
(* Params                                                                 *)

let test_baselines_are_stress_free () =
  List.iter
    (fun env ->
      check "no stress" true (Params.stress_intensity env = 0.);
      check "no alignment" true (Params.alignment env = 0.);
      check "no extra instructions" true (Params.extra_instrs_per_thread env = 0))
    [ Params.site_baseline; Params.pte_baseline ]

let test_baseline_shapes () =
  check_int "SITE baseline wgs" 32 Params.site_baseline.Params.testing_workgroups;
  check_int "PTE baseline wgs" 1024 Params.pte_baseline.Params.testing_workgroups;
  check_int "PTE baseline tpw" 256 Params.pte_baseline.Params.threads_per_workgroup;
  check "modes" true
    (Params.site_baseline.Params.mode = Params.Single
    && Params.pte_baseline.Params.mode = Params.Parallel)

let test_random_envs_valid () =
  let g = Prng.create 11 in
  for _ = 1 to 100 do
    List.iter
      (fun mode ->
        let env = Params.random g mode in
        check "mode respected" true (env.Params.mode = mode);
        check "positive layout" true
          (env.Params.testing_workgroups > 0 && env.Params.threads_per_workgroup > 0);
        check "percentages" true
          (env.Params.shuffle_pct >= 0 && env.Params.shuffle_pct <= 100
          && env.Params.barrier_pct >= 0
          && env.Params.barrier_pct <= 100);
        let total = env.Params.testing_workgroups * env.Params.threads_per_workgroup in
        check "permute_second coprime" true (Numbers.coprime env.Params.permute_second (max 2 total));
        check "intensity in unit" true
          (Params.stress_intensity env >= 0. && Params.stress_intensity env <= 1.);
        check "jitter scale >= 1" true (Params.jitter_scale env >= 1.);
        check "contention in unit" true
          (Params.location_contention env >= 0. && Params.location_contention env <= 1.))
      [ Params.Single; Params.Parallel ]
  done

let test_scaled () =
  let env = Params.pte_baseline in
  let s = Params.scaled env 0.05 in
  check_int "wgs scaled" 51 s.Params.testing_workgroups;
  check_int "tpw preserved" 256 s.Params.threads_per_workgroup;
  check "scale >= 1 is identity" true (Params.scaled env 1.0 = env);
  check "single mode untouched" true (Params.scaled Params.site_baseline 0.01 = Params.site_baseline)

let test_instances_per_iteration () =
  check_int "single" 1 (Params.instances_per_iteration Params.site_baseline ~roles:2);
  check_int "parallel = threads" (1024 * 256)
    (Params.instances_per_iteration Params.pte_baseline ~roles:2)

let test_stress_intensity_drivers () =
  let base = { Params.site_baseline with Params.mem_stress_pct = 100; mem_stress_iterations = 1024 } in
  let lighter = { base with Params.mem_stress_pct = 10 } in
  check "pct raises intensity" true (Params.stress_intensity base > Params.stress_intensity lighter);
  let spread = { base with Params.stress_target_lines = 32 } in
  check "spread lines dilute" true (Params.stress_intensity base > Params.stress_intensity spread)

let test_pp_and_json () =
  let env = Params.pte_baseline in
  let s = Format.asprintf "%a" Params.pp env in
  check "pp mentions layout" true (String.length s > 0);
  match Params.to_json env with
  | Mcm_util.Jsonw.Obj fields -> check_int "17 parameters + mode + scope" 19 (List.length fields)
  | _ -> Alcotest.fail "expected an object"

(* -------------------------------------------------------------------- *)
(* Assignment                                                             *)

let test_role_starts_shape () =
  let g = Prng.create 3 in
  let env = Params.scaled Params.pte_baseline 0.01 in
  let instances = Params.instances_per_iteration env ~roles:2 in
  let starts =
    Assignment.role_starts ~prng:g ~profile:Profile.nvidia ~env ~slice_instrs:[| 2; 2 |]
      ~instances
  in
  check_int "one row per instance" instances (Array.length starts);
  Array.iter
    (fun row ->
      check_int "one start per role" 2 (Array.length row);
      Array.iter (fun s -> check "non-negative" true (s >= 0.)) row)
    starts

let test_single_mode_roles_spread () =
  let g = Prng.create 4 in
  let starts =
    Assignment.role_starts ~prng:g ~profile:Profile.nvidia ~env:Params.site_baseline
      ~slice_instrs:[| 2; 1 |] ~instances:1
  in
  check_int "one instance" 1 (Array.length starts);
  check "different wg starts differ" true (starts.(0).(0) <> starts.(0).(1))

let test_parallel_pairing_uses_permutation () =
  (* With the identity permutation every instance's two roles run on the
     same thread back to back, so the role-1 start is always role-0 start
     plus the slice; a coprime permutation breaks that lockstep. *)
  let profile = Profile.intel in
  let env0 =
    { (Params.scaled Params.pte_baseline 0.01) with Params.permute_second = 1; shuffle_pct = 0 }
  in
  let instances = Params.instances_per_iteration env0 ~roles:2 in
  let starts p2 =
    let env = { env0 with Params.permute_second = p2 } in
    Assignment.role_starts ~prng:(Prng.create 9) ~profile ~env ~slice_instrs:[| 2; 2 |] ~instances
  in
  let identity = starts 1 in
  let gaps = Array.map (fun row -> row.(1) -. row.(0)) identity in
  let first = gaps.(0) in
  check "identity pairing is lockstep" true (Array.for_all (fun g -> abs_float (g -. first) < 1e-6) gaps);
  let p = Numbers.random_coprime (Prng.create 1) instances in
  if p > 1 then begin
    let permuted = Array.map (fun row -> row.(1) -. row.(0)) (starts p) in
    check "coprime pairing varies" true (Array.exists (fun g -> abs_float (g -. first) > 1e-6) permuted)
  end

let test_alignment_tightens_starts () =
  let profile = Profile.nvidia in
  let spread env =
    let g = Prng.create 21 in
    let values = Array.init 512 (fun i ->
        Assignment.physical_start ~prng:g ~profile ~env ~wg:(i mod 32) ~lane:0)
    in
    Array.fold_left Float.max Float.neg_infinity values
    -. Array.fold_left Float.min Float.infinity values
  in
  let plain = { Params.site_baseline with Params.testing_workgroups = 32 } in
  let aligned = { plain with Params.barrier_pct = 100 } in
  check "barrier collapses spread" true (spread aligned < spread plain /. 2.)

let test_pairing_quality () =
  check "single is 1" true (Assignment.pairing_quality Params.site_baseline = 1.);
  check "trivial multiplier penalised" true
    (Assignment.pairing_quality { Params.pte_baseline with Params.permute_second = 1 } < 1.);
  check "coprime multiplier full" true (Assignment.pairing_quality Params.pte_baseline = 1.)

(* -------------------------------------------------------------------- *)
(* Runner                                                                 *)

let pte_small = Params.scaled Params.pte_baseline 0.02

let nvidia = Device.make Profile.nvidia

let test_runner_deterministic () =
  let mutant = (Option.get (Suite.find "MP-CO-m")).Suite.test in
  let run () = Runner.run ~device:nvidia ~env:pte_small ~test:mutant ~iterations:5 ~seed:77 () in
  check "reproducible" true (run () = run ())

let test_runner_counts () =
  let mutant = (Option.get (Suite.find "CoRR-m")).Suite.test in
  let r = Runner.run ~device:nvidia ~env:pte_small ~test:mutant ~iterations:5 ~seed:1 () in
  check_int "iterations recorded" 5 r.Runner.iterations;
  check_int "instances = threads x iterations"
    (5 * Params.instances_per_iteration pte_small ~roles:2)
    r.Runner.instances;
  check "time positive" true (r.Runner.sim_time_s > 0.);
  check "kills bounded" true (r.Runner.kills >= 0 && r.Runner.kills <= r.Runner.instances);
  check "rate consistent" true
    (abs_float (r.Runner.rate -. (float_of_int r.Runner.kills /. r.Runner.sim_time_s)) < 1e-6)

let test_conformance_never_killed_on_correct_devices () =
  (* The cornerstone: on bug-free devices no conformance test is ever
     violated, in parallel or single-instance environments. *)
  List.iter
    (fun (entry : Suite.entry) ->
      List.iter
        (fun device ->
          let r =
            Runner.run ~device ~env:pte_small ~test:entry.Suite.test ~iterations:3
              ~seed:(Hashtbl.hash entry.Suite.test.Litmus.name) ()
          in
          if r.Runner.kills > 0 then
            Alcotest.failf "%s violated on %s" entry.Suite.test.Litmus.name (Device.name device))
        (Device.all_correct ()))
    (Suite.conformance_tests ())

let test_no_forbidden_outcomes_anywhere () =
  (* The strongest end-to-end invariant: across the whole generated suite
     (conformance tests AND mutants), a correct simulated device never
     produces an outcome outside the test's memory model. *)
  List.iter
    (fun device ->
      List.iter
        (fun (entry : Suite.entry) ->
          let _, h =
            Runner.run_with_histogram ~device ~env:pte_small ~test:entry.Suite.test ~iterations:2
              ~seed:(Hashtbl.hash (Device.name device, entry.Suite.test.Litmus.name)) ()
          in
          if h.Runner.forbidden > 0 then
            Alcotest.failf "%s produced %d forbidden outcomes on %s" entry.Suite.test.Litmus.name
              h.Runner.forbidden (Device.name device))
        (Suite.all ()))
    [ Device.make Profile.nvidia; Device.make Profile.intel ]

let test_pte_kills_mutants () =
  let killed =
    List.filter
      (fun (entry : Suite.entry) ->
        let r =
          Runner.run ~device:nvidia ~env:pte_small ~test:entry.Suite.test ~iterations:5
            ~seed:(Hashtbl.hash entry.Suite.test.Litmus.name) ()
        in
        r.Runner.kills > 0)
      (Suite.mutants ())
  in
  (* The PTE baseline should kill well over half the mutants (Sec. 5.2:
     72.7% at full scale). *)
  check "most mutants killed" true (List.length killed * 2 > List.length (Suite.mutants ()))

let test_site_weaker_than_pte () =
  let mutant = (Option.get (Suite.find "MP-CO-m")).Suite.test in
  let site = Runner.run ~device:nvidia ~env:Params.site_baseline ~test:mutant ~iterations:50 ~seed:3 () in
  let pte = Runner.run ~device:nvidia ~env:pte_small ~test:mutant ~iterations:5 ~seed:3 () in
  check "PTE rate dominates SITE baseline on NVIDIA" true (pte.Runner.rate > site.Runner.rate)

let test_bugged_device_caught () =
  let corr = (Option.get (Suite.find "CoRR")).Suite.test in
  let buggy = Device.make ~bugs:[ Mcm_gpu.Bug.Corr_reorder 0.5 ] Profile.intel in
  let r = Runner.run ~device:buggy ~env:pte_small ~test:corr ~iterations:5 ~seed:5 () in
  check "violations observed" true (r.Runner.kills > 0)

let test_histogram_consistent_with_run () =
  let mutant = (Option.get (Suite.find "MP-CO-m")).Suite.test in
  let run () = Runner.run ~device:nvidia ~env:pte_small ~test:mutant ~iterations:4 ~seed:55 () in
  let r, h = Runner.run_with_histogram ~device:nvidia ~env:pte_small ~test:mutant ~iterations:4 ~seed:55 () in
  check "same result as run" true (run () = r);
  check_int "buckets cover all instances" r.Runner.instances
    (h.Runner.sequential + h.Runner.interleaved + h.Runner.weak + h.Runner.forbidden
    + h.Runner.skipped);
  (* For this mutant every kill is a weak behaviour. *)
  check_int "kills are weak" r.Runner.kills h.Runner.weak;
  check_int "no forbidden on a correct device" 0 h.Runner.forbidden

let test_histogram_forbidden_on_buggy_device () =
  let corr = (Option.get (Suite.find "CoRR")).Suite.test in
  let buggy = Device.make ~bugs:[ Mcm_gpu.Bug.Corr_reorder 0.5 ] Profile.intel in
  let r, h = Runner.run_with_histogram ~device:buggy ~env:pte_small ~test:corr ~iterations:4 ~seed:56 () in
  check "violations observed" true (r.Runner.kills > 0);
  check "violations classified forbidden" true (h.Runner.forbidden >= r.Runner.kills)

let test_amplification_monotone_in_stress () =
  let stressed =
    { pte_small with Params.mem_stress_pct = 100; mem_stress_iterations = 1024 }
  in
  check "stress raises amplification" true
    (Runner.amplification (Device.make Profile.intel) stressed ~roles:2
    > Runner.amplification (Device.make Profile.intel) pte_small ~roles:2)

(* -------------------------------------------------------------------- *)
(* Intra-workgroup scope (the paper's future-work extension)              *)

let test_scope_default_inter () =
  check "baselines are inter-workgroup" true
    (Params.site_baseline.Params.scope = Params.Inter_workgroup
    && Params.pte_baseline.Params.scope = Params.Inter_workgroup);
  let g = Prng.create 42 in
  check "random envs are inter-workgroup" true
    ((Params.random g Params.Parallel).Params.scope = Params.Inter_workgroup)

let test_with_scope () =
  let intra = Params.with_scope Params.pte_baseline Params.Intra_workgroup in
  check "scope set" true (intra.Params.scope = Params.Intra_workgroup);
  check "rest untouched" true
    (intra.Params.testing_workgroups = Params.pte_baseline.Params.testing_workgroups)

let test_intra_single_roles_close () =
  (* Intra-workgroup roles share a workgroup: their start gap is lanes
     plus jitter, far tighter than cross-workgroup placement. *)
  let gap scope =
    let env = Params.with_scope Params.site_baseline scope in
    let g = Prng.create 5 in
    let total = ref 0. in
    for _ = 1 to 200 do
      let starts =
        Assignment.role_starts ~prng:g ~profile:Profile.m1 ~env ~slice_instrs:[| 2; 2 |]
          ~instances:1
      in
      total := !total +. abs_float (starts.(0).(1) -. starts.(0).(0))
    done;
    !total /. 200.
  in
  check "intra gap smaller" true (gap Params.Intra_workgroup < gap Params.Inter_workgroup)

let test_intra_pairing_stays_in_workgroup () =
  (* In parallel intra-workgroup mode, role 1 of an instance runs on a
     thread of the same workgroup — its start differs from role 0's by
     less than a workgroup wave. *)
  let env =
    Params.with_scope
      { (Params.scaled Params.pte_baseline 0.01) with Params.shuffle_pct = 0; barrier_pct = 100 }
      Params.Intra_workgroup
  in
  let instances = Params.instances_per_iteration env ~roles:2 in
  let starts =
    Assignment.role_starts ~prng:(Prng.create 8) ~profile:Profile.nvidia ~env
      ~slice_instrs:[| 2; 2 |] ~instances
  in
  check_int "instances" instances (Array.length starts);
  Array.iter
    (fun row -> check "roles temporally close" true (abs_float (row.(1) -. row.(0)) < 5_000.))
    starts

let test_intra_amplification_halved () =
  let inter = Params.scaled Params.pte_baseline 0.02 in
  let intra = Params.with_scope inter Params.Intra_workgroup in
  let amp env = Runner.amplification (Device.make Profile.amd) env ~roles:2 in
  check "intra halves amplification" true (abs_float (amp intra -. (0.5 *. amp inter)) < 1e-9)

let test_intra_kills_interleaving_mutants () =
  (* Intra-workgroup scheduling is tight: the reversing-po-loc mutants
     (pure interleaving) die at least as readily on the hardest device. *)
  let mutant = (Option.get (Suite.find "CoRR-m")).Suite.test in
  let env = Params.scaled Params.pte_baseline 0.02 in
  let m1 = Device.make Profile.m1 in
  let intra =
    Runner.run ~device:m1 ~env:(Params.with_scope env Params.Intra_workgroup) ~test:mutant
      ~iterations:8 ~seed:31 ()
  in
  check "intra kills interleavings" true (intra.Runner.kills > 0);
  check "conformance still safe intra" true
    ((Runner.run ~device:m1
        ~env:(Params.with_scope env Params.Intra_workgroup)
        ~test:(Option.get (Suite.find "CoRR")).Suite.test ~iterations:5 ~seed:32 ())
       .Runner.kills = 0)

(* -------------------------------------------------------------------- *)
(* Parallel runner: ?domains must be invisible in the results             *)

let test_parallel_equals_serial_fixed_matrix () =
  (* The acceptance matrix: k ∈ {1,2,4,8} domains, several tests and
     devices, results and histograms bit-identical to the serial oracle
     (structural equality covers the floats too). *)
  let tests = [ "MP-CO-m"; "CoRR"; "MP-relacq-m3" ] in
  let devices = [ Device.make Profile.nvidia; Device.make Profile.intel ] in
  List.iter
    (fun name ->
      let test = (Option.get (Suite.find name)).Suite.test in
      List.iter
        (fun device ->
          let seed = Prng.mix 20230325 (Hashtbl.hash name) in
          let serial = Runner.run ~device ~env:pte_small ~test ~iterations:6 ~seed () in
          let serial_h =
            Runner.run_with_histogram ~device ~env:pte_small ~test ~iterations:6 ~seed ()
          in
          List.iter
            (fun k ->
              if Runner.run ~domains:k ~device ~env:pte_small ~test ~iterations:6 ~seed ()
                 <> serial
              then Alcotest.failf "%s: result diverged at %d domains" name k;
              if Runner.run_with_histogram ~domains:k ~device ~env:pte_small ~test ~iterations:6
                   ~seed ()
                 <> serial_h
              then Alcotest.failf "%s: histogram diverged at %d domains" name k)
            [ 1; 2; 4; 8 ])
        devices)
    tests

let test_parallel_zero_iterations () =
  let test = (Option.get (Suite.find "CoRR-m")).Suite.test in
  let serial = Runner.run ~device:nvidia ~env:pte_small ~test ~iterations:0 ~seed:1 () in
  let parallel = Runner.run ~domains:4 ~device:nvidia ~env:pte_small ~test ~iterations:0 ~seed:1 () in
  check "empty campaign identical" true (serial = parallel);
  check_int "no instances" 0 serial.Runner.instances

let test_parallel_more_domains_than_iterations () =
  let test = (Option.get (Suite.find "MP-CO-m")).Suite.test in
  let serial = Runner.run ~device:nvidia ~env:pte_small ~test ~iterations:2 ~seed:9 () in
  let parallel = Runner.run ~domains:8 ~device:nvidia ~env:pte_small ~test ~iterations:2 ~seed:9 () in
  check "starved workers are harmless" true (serial = parallel)

(* -------------------------------------------------------------------- *)
(* Properties                                                             *)

let prop_rate_nonnegative =
  QCheck.Test.make ~count:25 ~name:"runner rates are non-negative" QCheck.small_int (fun seed ->
      let env = Params.scaled (Params.random (Prng.create seed) Params.Parallel) 0.02 in
      let mutant = (Option.get (Suite.find "MP-relacq-m3")).Suite.test in
      let r = Runner.run ~device:nvidia ~env ~test:mutant ~iterations:2 ~seed () in
      r.Runner.rate >= 0. && r.Runner.kills <= r.Runner.instances)

let prop_parallel_equals_serial =
  (* For arbitrary seeds, iteration counts and domains ∈ {1..8}, the
     sharded runner is indistinguishable from the serial oracle — kills,
     instance counts, rates and every histogram bucket. *)
  QCheck.Test.make ~count:30 ~name:"Runner.run ?domains == serial oracle"
    QCheck.(
      triple small_int (make (Gen.int_range 0 8)) (make (Gen.int_range 1 8)))
    (fun (seed, iterations, domains) ->
      let env = Params.scaled (Params.random (Prng.create seed) Params.Parallel) 0.01 in
      let test = (Option.get (Suite.find "MP-CO-m")).Suite.test in
      let serial = Runner.run_with_histogram ~device:nvidia ~env ~test ~iterations ~seed () in
      let parallel =
        Runner.run_with_histogram ~domains ~device:nvidia ~env ~test ~iterations ~seed ()
      in
      serial = parallel)

let prop_role_starts_deterministic =
  QCheck.Test.make ~count:50 ~name:"role starts are deterministic" QCheck.small_int (fun seed ->
      let env = Params.scaled Params.pte_baseline 0.01 in
      let instances = Params.instances_per_iteration env ~roles:2 in
      let go () =
        Assignment.role_starts ~prng:(Prng.create seed) ~profile:Profile.amd ~env
          ~slice_instrs:[| 2; 2 |] ~instances
      in
      go () = go ())

let () =
  Alcotest.run "testenv"
    [
      ( "params",
        [
          Alcotest.test_case "baselines stress-free" `Quick test_baselines_are_stress_free;
          Alcotest.test_case "baseline shapes" `Quick test_baseline_shapes;
          Alcotest.test_case "random envs valid" `Quick test_random_envs_valid;
          Alcotest.test_case "scaled" `Quick test_scaled;
          Alcotest.test_case "instances per iteration" `Quick test_instances_per_iteration;
          Alcotest.test_case "stress intensity drivers" `Quick test_stress_intensity_drivers;
          Alcotest.test_case "pp and json" `Quick test_pp_and_json;
        ] );
      ( "assignment",
        [
          Alcotest.test_case "role starts shape" `Quick test_role_starts_shape;
          Alcotest.test_case "single mode spread" `Quick test_single_mode_roles_spread;
          Alcotest.test_case "coprime pairing" `Quick test_parallel_pairing_uses_permutation;
          Alcotest.test_case "alignment tightens" `Quick test_alignment_tightens_starts;
          Alcotest.test_case "pairing quality" `Quick test_pairing_quality;
        ] );
      ( "runner",
        [
          Alcotest.test_case "deterministic" `Quick test_runner_deterministic;
          Alcotest.test_case "counts" `Quick test_runner_counts;
          Alcotest.test_case "conformance never killed" `Slow
            test_conformance_never_killed_on_correct_devices;
          Alcotest.test_case "no forbidden outcomes anywhere" `Slow
            test_no_forbidden_outcomes_anywhere;
          Alcotest.test_case "PTE kills mutants" `Quick test_pte_kills_mutants;
          Alcotest.test_case "SITE weaker than PTE" `Quick test_site_weaker_than_pte;
          Alcotest.test_case "bugged device caught" `Quick test_bugged_device_caught;
          Alcotest.test_case "histogram consistent" `Quick test_histogram_consistent_with_run;
          Alcotest.test_case "histogram forbidden on bugs" `Quick
            test_histogram_forbidden_on_buggy_device;
          Alcotest.test_case "amplification monotone" `Quick test_amplification_monotone_in_stress;
        ] );
      ( "scope",
        [
          Alcotest.test_case "default inter" `Quick test_scope_default_inter;
          Alcotest.test_case "with_scope" `Quick test_with_scope;
          Alcotest.test_case "intra single roles close" `Quick test_intra_single_roles_close;
          Alcotest.test_case "intra pairing in workgroup" `Quick test_intra_pairing_stays_in_workgroup;
          Alcotest.test_case "intra amplification" `Quick test_intra_amplification_halved;
          Alcotest.test_case "intra kills interleavings" `Quick test_intra_kills_interleaving_mutants;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "k in {1,2,4,8} equals serial" `Quick
            test_parallel_equals_serial_fixed_matrix;
          Alcotest.test_case "zero iterations" `Quick test_parallel_zero_iterations;
          Alcotest.test_case "domains > iterations" `Quick
            test_parallel_more_domains_than_iterations;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_rate_nonnegative; prop_parallel_equals_serial; prop_role_starts_deterministic ]
      );
    ]
