.PHONY: all build test bench bench-smoke oracle oracle-smoke check clean

all: build

build:
	dune build

test:
	dune runtest

# Full benchmark suite (bechamel micro-benchmarks + serial-vs-parallel
# campaign benchmark; writes BENCH_parallel.json).
bench:
	dune exec bench/main.exe

# Parallel benchmark only, at 1 iteration per campaign — fast enough for
# CI; still checks bit-identity between serial and every domain count.
bench-smoke:
	MCM_BENCH_SMOKE=1 dune exec bench/main.exe

# Full axiomatic oracle: certify every generated/classic test and run
# the simulator soundness matrix over the whole library (minutes).
oracle:
	dune exec bin/mcmutants.exe -- oracle --jobs 4

# Oracle at CI speed: reduced device/env matrix, 1 iteration. Still
# certifies all 73 tests and exits non-zero on any violation.
oracle-smoke:
	dune exec bin/mcmutants.exe -- oracle --smoke --jobs 2

# The one target CI needs: build, full test suite, smoke benchmark,
# smoke oracle.
check: build test bench-smoke oracle-smoke

clean:
	dune clean
	rm -f BENCH_parallel.json BENCH_oracle.json
