.PHONY: all build test bench bench-smoke bench-instance bench-instance-smoke bench-oracle bench-oracle-smoke bench-store bench-store-smoke bench-pipeline bench-pipeline-smoke bench-serve bench-serve-smoke bench-schemata bench-schemata-smoke bench-corpus bench-corpus-smoke bench-scope bench-scope-smoke oracle oracle-smoke check clean

all: build

build:
	dune build

test:
	dune runtest

# Full benchmark suite (bechamel micro-benchmarks + serial-vs-parallel
# campaign benchmark + compiled-kernel benchmark; writes BENCH_*.json).
bench:
	dune exec bench/main.exe

# Parallel benchmark only, at 1 iteration per campaign — fast enough for
# CI; still checks bit-identity between serial and every domain count.
bench-smoke:
	MCM_BENCH_SMOKE=1 dune exec bench/main.exe

# Compiled instance kernel vs interpreter (writes BENCH_instance.json).
# Built with --profile release: the kernel's zero-allocation steady
# state needs cross-module inlining, which the dev profile's -opaque
# disables. Fails if the engines diverge or the kernel allocates.
bench-instance:
	MCM_BENCH_PART=instance dune exec --profile release bench/main.exe

# Same contract at CI speed (small instance counts).
bench-instance-smoke:
	MCM_BENCH_SMOKE=1 MCM_BENCH_PART=instance dune exec --profile release bench/main.exe

# Axiomatic-oracle benchmark (writes BENCH_oracle.json): enumeration
# throughput, the sharded allowed-set grid, and the engine ladder —
# both oracle engines count growing Library.ladder rungs (exact
# agreement asserted, speedup and asymptotic gap recorded), then race a
# certification on a 4-thread/16-instruction rung the brute-force
# engine cannot finish within a 10x budget. Fails if the engines
# disagree on any rung.
bench-oracle:
	MCM_BENCH_PART=oracle dune exec bench/main.exe

# Same agreement contract at CI speed: fast ladder rungs only, and the
# race runs on a smaller rung (its timeout is recorded, not asserted).
bench-oracle-smoke:
	MCM_BENCH_SMOKE=1 MCM_BENCH_PART=oracle dune exec bench/main.exe

# Campaign store: cold vs warm sweep plus crash recovery (writes
# BENCH_store.json into a scratch _bench_store/ directory). Fails if a
# stored sweep diverges from the uncached one, if the recovered store
# does not verify clean, or (non-smoke) if the warm rerun is under the
# 10x speedup contract.
bench-store:
	MCM_BENCH_PART=store dune exec bench/main.exe

# Same contracts at CI speed (the 10x floor is not asserted — smoke
# sweeps are too small to time meaningfully).
bench-store-smoke:
	MCM_BENCH_SMOKE=1 MCM_BENCH_PART=store dune exec bench/main.exe

# Unified pipeline dispatch overhead: the request -> plan -> execute
# path vs direct dispatch over the same campaign grid (writes
# BENCH_pipeline.json, scratch dir _bench_pipeline/). Fails if results
# diverge or (non-smoke) if cold/warm overhead exceeds 3%.
bench-pipeline:
	MCM_BENCH_PART=pipeline dune exec bench/main.exe

# Same bit-identity contract at CI speed (overhead is not asserted —
# one rep over a tiny grid measures timer noise, not dispatch cost).
bench-pipeline-smoke:
	MCM_BENCH_SMOKE=1 MCM_BENCH_PART=pipeline dune exec bench/main.exe

# Campaign service: the multi-client daemon vs the direct store path
# (writes BENCH_serve.json, scratch dir _bench_serve/). Fails if dedup
# computes any cell twice, if a warm grid misses, or (non-smoke) if
# 2-client aggregate throughput drops below 0.95x of the direct path or
# warm-hit latency exceeds 10 ms/cell.
bench-serve:
	MCM_BENCH_PART=serve dune exec bench/main.exe

# Same functional contracts (dedup, warm hits) at CI speed; the timing
# floors are not asserted.
bench-serve-smoke:
	MCM_BENCH_SMOKE=1 MCM_BENCH_PART=serve dune exec bench/main.exe

# Mutant-schemata plan vs per-cell compilation over a Table-4-shaped
# matrix (writes BENCH_schemata.json). Built with --profile release for
# the same inlining reasons as bench-instance. Fails if any cell's
# result diverges from the per-cell reference or (non-smoke) if the
# schema plan's sweep speedup is under the 2x contract.
bench-schemata:
	MCM_BENCH_PART=schemata dune exec --profile release bench/main.exe

# Same bit-identity contract at CI speed (the 2x floor is not asserted
# — the smoke matrix is too small to time meaningfully).
bench-schemata-smoke:
	MCM_BENCH_SMOKE=1 MCM_BENCH_PART=schemata dune exec --profile release bench/main.exe

# Generated litmus corpus: synthesis + oracle-certified admission
# throughput, byte-reproducibility across domain counts, and a
# generated-corpus campaign through the schemata plan with a store
# (writes BENCH_corpus.json, scratch dir _bench_corpus/). Fails if the
# two oracle engines disagree on any admission verdict, if seeded
# generation is not byte-reproducible, or if the warm campaign rerun is
# not served 100% from cache bit-identically.
bench-corpus:
	MCM_BENCH_PART=corpus dune exec bench/main.exe

# Same contracts at CI speed (a smaller shape; every contract is still
# asserted — none of them are timing floors).
bench-corpus-smoke:
	MCM_BENCH_SMOKE=1 MCM_BENCH_PART=corpus dune exec bench/main.exe

# Memory-scope bench (writes BENCH_scope.json): scoped allowed-sets
# bit-identical under both oracle engines across layouts, and the
# Scope_dropped bug injection detected by a device-scope conformance
# test exactly when testing spans workgroups, with both execution
# engines bit-identical. Exits 1 on any disagreement.
bench-scope:
	MCM_BENCH_PART=scope dune exec bench/main.exe

# Same contracts at CI speed (fewer iterations; every contract is still
# asserted).
bench-scope-smoke:
	MCM_BENCH_SMOKE=1 MCM_BENCH_PART=scope dune exec bench/main.exe

# Full axiomatic oracle: certify every generated/classic test and run
# the simulator soundness matrix over the whole library (minutes).
oracle:
	dune exec bin/mcmutants.exe -- oracle --jobs 4

# Oracle at CI speed: reduced device/env matrix, 1 iteration. Still
# certifies all 73 tests and exits non-zero on any violation.
oracle-smoke:
	dune exec bin/mcmutants.exe -- oracle --smoke --jobs 2

# The one target CI needs: build, full test suite, smoke benchmarks,
# smoke oracle.
check: build test bench-smoke bench-instance-smoke bench-oracle-smoke bench-store-smoke bench-pipeline-smoke bench-serve-smoke bench-schemata-smoke bench-corpus-smoke bench-scope-smoke oracle-smoke

clean:
	dune clean
	rm -f BENCH_parallel.json BENCH_oracle.json BENCH_instance.json BENCH_store.json BENCH_pipeline.json BENCH_serve.json BENCH_schemata.json BENCH_corpus.json BENCH_scope.json
	rm -rf _bench_store _bench_pipeline _bench_serve _bench_corpus
