.PHONY: all build test bench bench-smoke check clean

all: build

build:
	dune build

test:
	dune runtest

# Full benchmark suite (bechamel micro-benchmarks + serial-vs-parallel
# campaign benchmark; writes BENCH_parallel.json).
bench:
	dune exec bench/main.exe

# Parallel benchmark only, at 1 iteration per campaign — fast enough for
# CI; still checks bit-identity between serial and every domain count.
bench-smoke:
	MCM_BENCH_SMOKE=1 dune exec bench/main.exe

# The one target CI needs: build, full test suite, smoke benchmark.
check: build test bench-smoke

clean:
	dune clean
	rm -f BENCH_parallel.json
