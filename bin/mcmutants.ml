(* The mcmutants command-line interface.

   Subcommands mirror the paper's workflow: inspect the generated suite
   (list/show/enumerate), run individual tests in chosen environments on
   simulated devices (run), and regenerate every table and figure of the
   evaluation (table2/table3/fig5/fig6/table4), plus the CTS-curation
   story of Sec. 4.2 (cts). *)

module Model = Mcm_memmodel.Model
module Litmus = Mcm_litmus.Litmus
module Enumerate = Mcm_litmus.Enumerate
module Library = Mcm_litmus.Library
module Suite = Mcm_core.Suite
module Mutator = Mcm_core.Mutator
module Confidence = Mcm_core.Confidence
module MergeAlg = Mcm_core.Merge
module Profile = Mcm_gpu.Profile
module Device = Mcm_gpu.Device
module Bug = Mcm_gpu.Bug
module Params = Mcm_testenv.Params
module Runner = Mcm_testenv.Runner
module Request = Mcm_testenv.Request
module Tuning = Mcm_harness.Tuning
module Experiments = Mcm_harness.Experiments
module Table = Mcm_util.Table
module Prng = Mcm_util.Prng
module CKey = Mcm_campaign.Key
module Store = Mcm_campaign.Store
module Journal = Mcm_campaign.Journal

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                     *)

let test_arg =
  let doc = "Test name (generated suite first, then the classic library)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TEST" ~doc)

let find_test name =
  match Suite.find name with
  | Some e -> Ok e.Suite.test
  | None -> (
      match Library.find name with
      | Some t -> Ok t
      | None -> Error (Printf.sprintf "unknown test %S (try `mcmutants list`)" name))

let device_arg =
  let doc = "Simulated device: nvidia, amd, intel or m1." in
  Arg.(value & opt string "nvidia" & info [ "d"; "device" ] ~docv:"DEVICE" ~doc)

let find_device name =
  match Profile.find name with
  | Some p -> Ok p
  | None -> Error (Printf.sprintf "unknown device %S (nvidia|amd|intel|m1)" name)

let env_arg =
  let doc =
    "Testing environment: site-baseline, pte-baseline, site:N or pte:N (the Nth random \
     environment of that kind)."
  in
  Arg.(value & opt string "pte-baseline" & info [ "e"; "env" ] ~docv:"ENV" ~doc)

let seed_arg =
  let doc = "Random seed (all runs are deterministic in it)." in
  Arg.(value & opt int 20230325 & info [ "seed" ] ~docv:"SEED" ~doc)

let iterations_arg =
  let doc = "Testing iterations (kernel launches)." in
  Arg.(value & opt int 10 & info [ "n"; "iterations" ] ~docv:"N" ~doc)

let scale_arg =
  let doc = "Environment size scale factor in (0,1]; 1.0 is paper scale." in
  Arg.(value & opt (some float) None & info [ "scale" ] ~docv:"S" ~doc)

let bugs_arg =
  let doc = "Inject the vendor's paper bug into the device (Sec. 5.4)." in
  Arg.(value & flag & info [ "bugs" ] ~doc)

let histogram_arg =
  let doc = "Classify every executed instance (sequential/interleaved/weak/forbidden)." in
  Arg.(value & flag & info [ "histogram" ] ~doc)

let jobs_arg =
  let doc =
    "Worker domains for parallel execution (campaign iterations and sweep grid points are \
     sharded across them; results are bit-identical for any value). Defaults to the \
     machine's recommended domain count."
  in
  Arg.(value & opt int (Mcm_util.Pool.default_domains ()) & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let or_die = function
  | Ok v -> v
  | Error msg ->
      prerr_endline ("mcmutants: " ^ msg);
      exit 1

(* [Tuning.env_float] raises on a set-but-malformed variable; surface
   that as a normal CLI error rather than an exception trace. *)
let effective_scale scale =
  match scale with
  | Some s -> s
  | None -> ( try Tuning.env_float "MCM_SCALE" 0.02 with Failure msg -> or_die (Error msg))

let parse_env name seed scale =
  let scale = effective_scale scale in
  let lower = String.lowercase_ascii name in
  let random mode index =
    let g = Prng.create (Prng.mix seed (Hashtbl.hash (lower, "env"))) in
    let envs = List.init (index + 1) (fun _ -> Params.random g mode) in
    Params.scaled (List.nth envs index) scale
  in
  match String.split_on_char ':' lower with
  | [ "site-baseline" ] -> Ok Params.site_baseline
  | [ "pte-baseline" ] -> Ok (Params.scaled Params.pte_baseline scale)
  | [ "site" ] -> Ok (random Params.Single 0)
  | [ "pte" ] -> Ok (random Params.Parallel 0)
  | [ "site"; n ] | [ "pte"; n ] as parts -> (
      match int_of_string_opt n with
      | Some i when i >= 0 ->
          let mode = if List.hd parts = "site" then Params.Single else Params.Parallel in
          Ok (random mode i)
      | _ -> Error (Printf.sprintf "bad environment index in %S" name))
  | _ -> Error (Printf.sprintf "unknown environment %S" name)

(* ------------------------------------------------------------------ *)
(* Campaign store plumbing                                              *)

let store_arg =
  let doc =
    "Campaign store directory: cache every campaign cell content-addressed on disk and serve \
     repeats from the cache (results are bit-identical either way)."
  in
  Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)

let resume_arg =
  let doc =
    "Resume an interrupted sweep from the store's journal (requires $(b,--store)); errors out \
     unless the journal matches this exact sweep configuration."
  in
  Arg.(value & flag & info [ "resume" ] ~doc)

let journal_path dir = Filename.concat dir "journal.jsonl"

let print_store_warnings store =
  List.iter (fun w -> Printf.eprintf "store: %s\n" w) (Store.warnings store)

(* Build the execution context around [f]: [jobs] worker domains, the
   compile/memoization plan, plus the store and journal when a store
   directory was given. The journal is also passed separately for the
   --resume contract check. Cache traffic and the engine's
   compile/memoization counters go to stderr so stdout stays
   byte-identical with and without a store (and across plans). *)
let with_ctx ?(plan = Request.Schema) ~jobs store_dir f =
  let engine0 = Runner.engine_stats () in
  let print_engine_stats () =
    let d = Runner.engine_stats_sub (Runner.engine_stats ()) engine0 in
    Printf.eprintf "engine: %s\n%!" (Format.asprintf "%a" Runner.pp_engine_stats d)
  in
  match store_dir with
  | None ->
      let result = f (Request.context ~domains:jobs ~plan ()) None in
      print_engine_stats ();
      result
  | Some dir ->
      Store.with_store dir (fun store ->
          print_store_warnings store;
          Journal.with_journal (journal_path dir) (fun journal ->
              let before = Store.count store in
              let result =
                f (Request.context ~domains:jobs ~store ~journal ~plan ()) (Some journal)
              in
              let computed = Store.count store - before in
              Printf.eprintf "store: %d record(s), %d added this run\n%!" (Store.count store)
                computed;
              print_engine_stats ();
              result))

(* --resume contract: the journal must already describe this sweep. *)
let check_resume ~resume ~sweep journal =
  if resume then
    match Journal.header journal with
    | Some h when CKey.equal h.Journal.sweep sweep && not (Journal.finished journal) ->
        Printf.eprintf "resume: journal matches sweep %s, %d/%d cell(s) already durable\n%!"
          (CKey.to_hex sweep) (Journal.progress journal) h.Journal.cells
    | Some h when CKey.equal h.Journal.sweep sweep ->
        Printf.eprintf "resume: sweep %s already finished; serving it from the store\n%!"
          (CKey.to_hex sweep)
    | _ ->
        or_die
          (Error
             "--resume: the store's journal does not match this sweep configuration (run \
              without --resume first)")

(* ------------------------------------------------------------------ *)
(* list                                                                 *)

let list_cmd =
  let run () =
    let t =
      Table.create
        ~aligns:[ Table.Left; Table.Left; Table.Left; Table.Left ]
        [ "Name"; "Role"; "Mutator"; "Model" ]
    in
    List.iter
      (fun (e : Suite.entry) ->
        Table.add_row t
          [
            e.Suite.test.Litmus.name;
            (match e.Suite.role with
            | Suite.Conformance -> "conformance"
            | Suite.Mutant_of c -> "mutant of " ^ c);
            Mutator.kind_name e.Suite.mutator;
            Model.name e.Suite.test.Litmus.model;
          ])
      (Suite.all ());
    Table.print t;
    Printf.printf "\nClassic library: %s\n"
      (String.concat ", " (List.map (fun t -> t.Litmus.name) Library.all))
  in
  Cmd.v (Cmd.info "list" ~doc:"List the generated suite (20 conformance tests, 32 mutants)")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* show                                                                 *)

let show_cmd =
  let run name =
    let test = or_die (find_test name) in
    print_endline (Litmus.to_string test);
    let total, consistent = Enumerate.count_candidates test in
    Printf.printf "\ncandidate executions: %d (%d consistent under %s)\n" total consistent
      (Model.name test.Litmus.model);
    (match Enumerate.forbidden_cycle test with
    | Some cycle -> Printf.printf "target disallowed; forbidden hb cycle: %s\n" cycle
    | None ->
        if Enumerate.target_allowed test.Litmus.model test then
          print_endline "target allowed under the test's model (a mutant-style behaviour)")
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Print a test's program, target and enumeration facts")
    Term.(const run $ test_arg)

(* ------------------------------------------------------------------ *)
(* enumerate                                                            *)

let enumerate_cmd =
  let run name =
    let test = or_die (find_test name) in
    List.iter
      (fun m ->
        let outcomes = Enumerate.consistent_outcomes m test in
        Printf.printf "%-20s %d allowed outcomes:\n" (Model.name m) (List.length outcomes);
        List.iter (fun o -> Printf.printf "  %s\n" (Litmus.outcome_to_string o)) outcomes)
      Model.all
  in
  Cmd.v
    (Cmd.info "enumerate" ~doc:"Enumerate allowed outcomes under each memory model")
    Term.(const run $ test_arg)

(* ------------------------------------------------------------------ *)
(* run                                                                  *)

let engine_arg =
  let doc = "Simulation engine: kernel (compiled, default) or interpreter (reference)." in
  Arg.(value & opt string "kernel" & info [ "engine" ] ~docv:"ENGINE" ~doc)

let find_engine name =
  match Request.engine_of_name name with
  | Some e -> Ok e
  | None ->
      Error
        (Printf.sprintf "unknown engine %S (%s)" name
           (String.concat "|" (List.map fst Request.engines)))

let plan_arg =
  let doc =
    "Compile/memoization plan: $(b,schema) (compile-once kernel images shared across cells + \
     cross-cell memoization, the default) or $(b,per-cell) (fresh compilation per cell, the \
     reference path). Results are bit-identical either way; only wall clock differs."
  in
  Arg.(value & opt string "schema" & info [ "plan" ] ~docv:"PLAN" ~doc)

let find_plan name =
  match Request.plan_of_name name with
  | Some p -> Ok p
  | None ->
      Error
        (Printf.sprintf "unknown plan %S (%s)" name
           (String.concat "|" (List.map fst Request.plans)))

let run_cmd =
  let run name device env iterations seed bugs scale histogram jobs engine plan store_dir =
    let test = or_die (find_test name) in
    let profile = or_die (find_device device) in
    let env = or_die (parse_env env seed scale) in
    let engine = or_die (find_engine engine) in
    let plan = or_die (find_plan plan) in
    let device =
      if bugs then
        match Bug.paper_bug profile with
        | Some b ->
            Printf.printf "injected: %s\n" (Bug.describe b);
            Device.make ~bugs:[ b ] profile
        | None ->
            Printf.printf "(%s has no associated paper bug; running correct device)\n"
              profile.Profile.short_name;
            Device.make profile
      else Device.make profile
    in
    Printf.printf "device: %s\nenvironment: %s\n" (Device.name device)
      (Format.asprintf "%a" Params.pp env);
    let mw0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    let request = Request.make ~engine ~device ~env ~test ~iterations ~seed () in
    let r, breakdown, chunk =
      with_ctx ~plan ~jobs store_dir (fun ctx _journal ->
          let chunk = Request.chunk_for ctx ~n:iterations in
          if histogram then
            let r, h = Runner.exec Runner.Histogram request ctx in
            (r, Some h, chunk)
          else (Runner.exec Runner.Rate request ctx, None, chunk))
    in
    let wall_s = Unix.gettimeofday () -. t0 in
    let minor = Gc.minor_words () -. mw0 in
    Printf.printf
      "iterations: %d\ninstances: %d\ntarget observed: %d\nsimulated time: %.6f s\nrate: %s /s\n"
      r.Runner.iterations r.Runner.instances r.Runner.kills r.Runner.sim_time_s
      (Table.rate_cell r.Runner.rate);
    (* Perf diagnostics: enough to spot an allocation or scheduling
       regression from the transcript alone. On stderr, so stdout stays
       byte-identical across --jobs values and repeated runs. *)
    let stat = Gc.quick_stat () in
    Printf.eprintf "wall time: %.3f s (%.0f instances/s)\n" wall_s
      (if wall_s > 0. then float_of_int r.Runner.instances /. wall_s else 0.);
    Printf.eprintf "pool: %d domain%s, chunk %d of %d iterations per claim\n" jobs
      (if jobs = 1 then "" else "s")
      chunk iterations;
    Printf.eprintf "gc: %.0f minor words (%.1f per instance), %d minor / %d major collections\n"
      minor
      (if r.Runner.instances > 0 then minor /. float_of_int r.Runner.instances else 0.)
      stat.Gc.minor_collections stat.Gc.major_collections;
    (match breakdown with
    | None -> ()
    | Some h ->
        Printf.printf
          "behaviours: %d sequential, %d interleaved, %d weak, %d forbidden (%d skipped as \
           non-overlapping)\n"
          h.Runner.sequential h.Runner.interleaved h.Runner.weak h.Runner.forbidden
          h.Runner.skipped);
    if r.Runner.kills > 0 then
      Printf.printf "reproducibility of this campaign: %.5f\n"
        (Confidence.reproducibility ~kills:(float_of_int r.Runner.kills))
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one test in a testing environment on a simulated device")
    Term.(const run $ test_arg $ device_arg $ env_arg $ iterations_arg $ seed_arg $ bugs_arg
          $ scale_arg $ histogram_arg $ jobs_arg $ engine_arg $ plan_arg $ store_arg)

(* ------------------------------------------------------------------ *)
(* parse / export: the textual litmus format                            *)

let parse_cmd =
  let run path =
    match Mcm_litmus.Parse.parse_file path with
    | Error e ->
        prerr_endline ("mcmutants: " ^ path ^ ": " ^ e);
        exit 1
    | Ok test ->
        print_endline (Litmus.to_string test);
        let total, consistent = Enumerate.count_candidates test in
        Printf.printf "\ncandidate executions: %d (%d consistent under %s)\n" total consistent
          (Model.name test.Litmus.model);
        (match Enumerate.forbidden_cycle test with
        | Some cycle -> Printf.printf "target disallowed; forbidden hb cycle: %s\n" cycle
        | None ->
            if Enumerate.target_allowed test.Litmus.model test then
              print_endline "target allowed under the test's model")
  in
  let path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Litmus source file.")
  in
  Cmd.v
    (Cmd.info "parse" ~doc:"Parse a litmus test from its textual format and analyse it")
    Term.(const run $ path)

let export_cmd =
  let run name =
    let test = or_die (find_test name) in
    print_string (Mcm_litmus.Parse.to_source test)
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Print a test in the parseable textual litmus format")
    Term.(const run $ test_arg)

(* ------------------------------------------------------------------ *)
(* wgsl                                                                 *)

let wgsl_cmd =
  let run name env seed scale =
    let test = or_die (find_test name) in
    let env = or_die (parse_env env seed scale) in
    let src = Mcm_wgsl.Wgsl.shader test ~env in
    let invalid =
      match Mcm_wgsl.Wgsl.validate src with
      | Ok () -> false
      | Error e ->
          prerr_endline ("mcmutants: generated shader failed validation: " ^ e);
          true
    in
    print_string src;
    if invalid then exit 1
  in
  Cmd.v
    (Cmd.info "wgsl" ~doc:"Emit the WebGPU (WGSL) compute shader for a test in a PTE")
    Term.(const run $ test_arg $ env_arg $ seed_arg $ scale_arg)

(* ------------------------------------------------------------------ *)
(* tables and figures                                                   *)

let table2_cmd =
  let run () = Table.print (Experiments.table2 ()) in
  Cmd.v (Cmd.info "table2" ~doc:"Reproduce Table 2 (mutator inventory)") Term.(const run $ const ())

let table3_cmd =
  let run () = Table.print (Experiments.table3 ()) in
  Cmd.v (Cmd.info "table3" ~doc:"Reproduce Table 3 (device inventory)") Term.(const run $ const ())

let sweep_of_config ?store_dir ?(resume = false) ?plan jobs =
  let config = try Tuning.default_config () with Failure msg -> or_die (Error msg) in
  Printf.printf
    "tuning sweep: %d envs/category, %d SITE iters, %d PTE iters, scale %.3f, seed %d, %d jobs\n%!"
    config.Tuning.n_envs config.Tuning.site_iterations config.Tuning.pte_iterations
    config.Tuning.scale config.Tuning.seed jobs;
  if resume && store_dir = None then or_die (Error "--resume requires --store DIR");
  with_ctx ?plan ~jobs store_dir (fun ctx journal ->
      (match journal with
      | None -> ()
      | Some journal ->
          let sweep =
            Tuning.sweep_key config ~devices:(Device.all_correct ()) ~tests:(Suite.mutants ())
          in
          check_resume ~resume ~sweep journal);
      Tuning.sweep ~ctx config)

let fig5_cmd =
  let run jobs store_dir resume plan =
    let plan = or_die (find_plan plan) in
    let runs = sweep_of_config ?store_dir ~resume ~plan jobs in
    List.iter
      (fun (title, t) ->
        print_newline ();
        print_endline title;
        Table.print t)
      (Experiments.Fig5.all_tables runs);
    print_newline ();
    print_endline "Simulated tuning time per category (Sec. 5.1):";
    List.iter
      (fun (name, s) -> Printf.printf "  %-14s %10.1f simulated seconds\n" name s)
      (Experiments.Fig5.tuning_time runs)
  in
  Cmd.v
    (Cmd.info "fig5" ~doc:"Reproduce Figure 5 (mutation scores and death rates)")
    Term.(const run $ jobs_arg $ store_arg $ resume_arg $ plan_arg)

let fig6_cmd =
  let run jobs store_dir resume plan =
    let plan = or_die (find_plan plan) in
    let runs = sweep_of_config ?store_dir ~resume ~plan jobs in
    print_newline ();
    print_endline "Figure 6: mutation score vs per-test time budget (merged environments, Alg. 1)";
    Table.print (Experiments.Fig6.table runs)
  in
  Cmd.v
    (Cmd.info "fig6" ~doc:"Reproduce Figure 6 (reproducible mutation score vs time budget)")
    Term.(const run $ jobs_arg $ store_arg $ resume_arg $ plan_arg)

let table4_cmd =
  let run scale jobs store_dir plan =
    let plan = or_die (find_plan plan) in
    let rows =
      with_ctx ~plan ~jobs store_dir (fun ctx _journal ->
          Experiments.Table4.compute ~ctx ?scale ())
    in
    Table.print (Experiments.Table4.table rows)
  in
  Cmd.v
    (Cmd.info "table4" ~doc:"Reproduce Table 4 (mutant kills vs real-bug correlation)")
    Term.(const run $ scale_arg $ jobs_arg $ store_arg $ plan_arg)

(* ------------------------------------------------------------------ *)
(* oracle: certification and simulator soundness                        *)

let oracle_cmd =
  let run engine jobs json_path no_certify no_soundness smoke inject_bug iterations seed tests
      store_dir resume =
    let module Certify = Mcm_oracle.Certify in
    let module Soundness = Mcm_oracle.Soundness in
    let module Engine = Mcm_oracle.Engine in
    let module Jsonw = Mcm_util.Jsonw in
    let failures = ref 0 in
    let json_fields = ref [ ("engine", Jsonw.String (Engine.name engine)) ] in
    let certify_reports =
      if no_certify then []
      else begin
        Printf.printf "certifying the generated suite (%d tests, %d jobs, %s engine)...\n%!"
          (List.length (Suite.all ())) jobs (Engine.name engine);
        let suite_report = Certify.suite ~engine ~domains:jobs () in
        Format.printf "%a" Certify.pp_report suite_report;
        Printf.printf "certifying the classic library (%d tests)...\n%!" (List.length Library.all);
        let library_report = Certify.library ~engine ~domains:jobs () in
        Format.printf "%a" Certify.pp_report library_report;
        failures := !failures + suite_report.Certify.failures + library_report.Certify.failures;
        [ ("certify_suite", suite_report); ("certify_library", library_report) ]
      end
    in
    List.iter
      (fun (name, r) -> json_fields := (name, Certify.report_to_json r) :: !json_fields)
      certify_reports;
    if not no_soundness then begin
      let tests =
        match tests with
        | [] -> None
        | names -> Some (List.map (fun n -> or_die (find_test n)) names)
      in
      let devices, envs, iterations =
        if smoke then
          ( Some [ Device.make Profile.nvidia; Device.make Profile.intel ],
            Some [ ("pte-baseline@0.01", Params.scaled Params.pte_baseline 0.01) ],
            1 )
        else (None, None, iterations)
      in
      (* A deliberately broken device: the soundness check must fail on
         it, which is how the checker (and both engines' counter-example
         paths) are exercised end to end. *)
      let devices =
        if inject_bug then
          Some
            (Option.value devices ~default:(Device.all_correct ())
            @ [ Device.make ~bugs:[ Bug.Coherence_alias 1.0 ] Profile.intel ])
        else devices
      in
      let n_tests =
        match tests with
        | Some t -> List.length t
        | None -> List.length (Soundness.default_tests ())
      in
      Printf.printf "soundness: replaying %d tests across the device/env matrix (%d jobs)...\n%!"
        n_tests jobs;
      if resume && store_dir = None then or_die (Error "--resume requires --store DIR");
      let report =
        with_ctx ~jobs store_dir (fun ctx journal ->
            (match journal with
            | None -> ()
            | Some journal ->
                let sweep = Soundness.check_key ~iterations ~seed ?devices ?envs ?tests () in
                check_resume ~resume ~sweep journal);
            Soundness.check ~engine ~ctx ~iterations ~seed ?devices ?envs ?tests ())
      in
      Format.printf "%a" Soundness.pp_report report;
      failures := !failures + report.Soundness.total_violations;
      json_fields := ("soundness", Soundness.report_to_json report) :: !json_fields
    end;
    (match json_path with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        Jsonw.to_channel oc (Jsonw.Obj (List.rev !json_fields));
        output_char oc '\n';
        close_out oc;
        Printf.printf "wrote %s\n" path);
    if !failures > 0 then begin
      Printf.eprintf "mcmutants: oracle found %d failure(s)\n" !failures;
      exit 1
    end
    else print_endline "oracle: all checks passed"
  in
  let json_path =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc:"Write the full report as JSON.")
  in
  let no_certify = Arg.(value & flag & info [ "no-certify" ] ~doc:"Skip mutant/conformance certification.") in
  let no_soundness = Arg.(value & flag & info [ "no-soundness" ] ~doc:"Skip the simulator soundness matrix.") in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"Shrink the soundness matrix (2 devices, 1 small PTE env, 1 iteration) for CI.")
  in
  let oracle_tests =
    Arg.(
      value & opt_all string []
      & info [ "test" ] ~docv:"TEST" ~doc:"Restrict the soundness matrix to these tests (repeatable).")
  in
  let engine_arg =
    let module Engine = Mcm_oracle.Engine in
    let engine_conv = Arg.enum (List.map (fun e -> (Engine.name e, e)) Engine.all) in
    Arg.(
      value
      & opt engine_conv Engine.default
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Oracle engine: $(b,propagate) (constraint propagation, the default) or \
             $(b,enumerate) (the brute-force reference). Both give identical results; \
             enumerate is the always-available cross-check.")
  in
  let inject_bug =
    Arg.(
      value & flag
      & info [ "inject-bug" ]
          ~doc:
            "Add a deliberately buggy device (coherence disabled) to the soundness matrix; the \
             oracle must then report violations and exit non-zero — a self-test of the checker.")
  in
  Cmd.v
    (Cmd.info "oracle"
       ~doc:
         "Certify every conformance test and mutant against the axiomatic oracle, and check the \
          simulator's observed outcomes are axiomatically allowed")
    Term.(
      const run $ engine_arg $ jobs_arg $ json_path $ no_certify $ no_soundness $ smoke
      $ inject_bug $ iterations_arg $ seed_arg $ oracle_tests $ store_arg $ resume_arg)

(* ------------------------------------------------------------------ *)
(* models: print the axiomatic models in CAT style                      *)

let models_cmd =
  let run () =
    List.iter
      (fun m ->
        Format.printf "%a@.@." Mcm_memmodel.Cat.pp m)
      Mcm_memmodel.Cat.all
  in
  Cmd.v
    (Cmd.info "models" ~doc:"Print the axiomatic memory models (CAT style)")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* emit-suite: write the CTS artifact (litmus sources + WGSL shaders)   *)

let emit_suite_cmd =
  let run dir env_name seed scale =
    let env = or_die (parse_env env_name seed scale) in
    (try if not (Sys.is_directory dir) then failwith (dir ^ " is not a directory")
     with Sys_error _ -> Sys.mkdir dir 0o755);
    let sanitise name = String.map (fun c -> if c = '/' || c = '+' then '_' else c) name in
    let write path contents =
      let oc = open_out_bin path in
      output_string oc contents;
      close_out oc
    in
    let count = ref 0 and invalid = ref 0 in
    List.iter
      (fun (e : Suite.entry) ->
        let test = e.Suite.test in
        let base = Filename.concat dir (sanitise test.Litmus.name) in
        write (base ^ ".litmus") (Mcm_litmus.Parse.to_source test);
        let shader = Mcm_wgsl.Wgsl.shader test ~env in
        (match Mcm_wgsl.Wgsl.validate shader with
        | Ok () -> ()
        | Error err ->
            Printf.eprintf "mcmutants: %s shader failed validation: %s\n" test.Litmus.name err;
            incr invalid);
        write (base ^ ".wgsl") shader;
        incr count)
      (Suite.all ());
    Printf.printf "wrote %d tests (litmus + wgsl) to %s/\n" !count dir;
    if !invalid > 0 then begin
      Printf.eprintf "mcmutants: %d shader(s) failed validation\n" !invalid;
      exit 1
    end
  in
  let dir =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc:"Output directory.")
  in
  Cmd.v
    (Cmd.info "emit-suite"
       ~doc:"Write the full generated suite as .litmus sources and PTE .wgsl shaders")
    Term.(const run $ dir $ env_arg $ seed_arg $ scale_arg)

(* ------------------------------------------------------------------ *)
(* prune: Sec. 3.4 — drop mutants the implementation cannot exhibit     *)

let prune_cmd =
  let run impl =
    let implementation =
      match Mcm_memmodel.Cat.find impl with
      | Some m -> m
      | None ->
          prerr_endline
            ("mcmutants: unknown implementation model " ^ impl
           ^ " (sc|tso|rel-acq-sc-per-loc|sc-per-loc)");
          exit 1
    in
    let verdict = Mcm_core.Prune.prune_suite ~implementation () in
    let t =
      Table.create ~aligns:[ Table.Left; Table.Left; Table.Left ]
        [ "Mutant"; "Mutator"; "Verdict" ]
    in
    let add verdict_name (e : Suite.entry) =
      Table.add_row t
        [ e.Suite.test.Litmus.name; Mutator.kind_name e.Suite.mutator; verdict_name ]
    in
    List.iter (add "kept") verdict.Mcm_core.Prune.kept;
    List.iter (add "pruned") verdict.Mcm_core.Prune.pruned;
    Table.print t;
    Printf.printf
      "\n%d mutants kept, %d pruned: their behaviours are unobservable under %s (Sec. 3.4)\n"
      (List.length verdict.Mcm_core.Prune.kept)
      (List.length verdict.Mcm_core.Prune.pruned)
      implementation.Mcm_memmodel.Cat.name
  in
  let impl =
    Arg.(
      value & opt string "tso"
      & info [ "impl" ] ~docv:"MODEL" ~doc:"Implementation architecture model (e.g. tso).")
  in
  Cmd.v
    (Cmd.info "prune"
       ~doc:"Prune mutants whose behaviour an implementation model cannot exhibit (Sec. 3.4)")
    Term.(const run $ impl)

(* ------------------------------------------------------------------ *)
(* tune: run the sweep and save the artifact-style JSON                 *)

let tune_cmd =
  let run save jobs =
    let runs = sweep_of_config jobs in
    let records = Mcm_harness.Results.of_runs runs in
    Printf.printf "%d measurements\n" (List.length records);
    match save with
    | None -> print_endline "(use --save FILE to write the JSON results)"
    | Some path -> (
        match Mcm_harness.Results.save path records with
        | Ok () -> Printf.printf "saved %s\n" path
        | Error e ->
            prerr_endline ("mcmutants: " ^ e);
            exit 1)
  in
  let save =
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE" ~doc:"Write results JSON.")
  in
  Cmd.v
    (Cmd.info "tune" ~doc:"Run the tuning sweep and optionally save results as JSON")
    Term.(const run $ save $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* analysis: the artifact's analysis.py, over saved JSON                *)

let analysis_cmd =
  let run action stats_path category rep budget tests =
    let records =
      match Mcm_harness.Results.load stats_path with
      | Ok r -> r
      | Error e ->
          prerr_endline ("mcmutants: " ^ stats_path ^ ": " ^ e);
          exit 1
    in
    match action with
    | "mutation-score" ->
        let t = Table.create [ "Mutator"; "Mutation score"; "Avg death rate (/s)" ] in
        List.iter
          (fun (label, score, rate) ->
            Table.add_row t [ label; Table.pct_cell score; Table.rate_cell rate ])
          (Mcm_harness.Results.mutation_score records ~category);
        Table.print t
    | "merge" ->
        let score =
          Mcm_harness.Results.merge_score records ~category ~target:(rep /. 100.) ~budget
        in
        Printf.printf
          "%s of tests reproducible on all devices at %g%% within %gs per test (category %s)\n"
          (Table.pct_cell score) rep budget category
    | "correlation" ->
        let tests =
          match tests with
          | [] -> Mcm_harness.Results.tests records
          | ts -> ts
        in
        let matrix = Mcm_harness.Results.correlation_matrix records ~category ~tests in
        let t = Table.create ("" :: tests) in
        List.iteri
          (fun i name ->
            Table.add_row t
              (name
              :: Array.to_list (Array.map (fun r -> Table.float_cell ~decimals:3 r) matrix.(i))))
          tests;
        Table.print t
    | other ->
        prerr_endline ("mcmutants: unknown action " ^ other ^ " (mutation-score|merge|correlation)");
        exit 1
  in
  let action =
    Arg.(
      value
      & opt string "mutation-score"
      & info [ "action" ] ~docv:"ACTION" ~doc:"mutation-score, merge or correlation.")
  in
  let stats =
    Arg.(
      required
      & opt (some string) None
      & info [ "stats" ] ~docv:"FILE" ~doc:"Results JSON written by `mcmutants tune --save`.")
  in
  let category =
    Arg.(value & opt string "PTE" & info [ "category" ] ~docv:"CAT" ~doc:"Environment category.")
  in
  let rep =
    Arg.(value & opt float 95. & info [ "rep" ] ~docv:"R" ~doc:"Reproducibility target in percent.")
  in
  let budget =
    Arg.(value & opt float 1.0 & info [ "budget" ] ~docv:"B" ~doc:"Per-test budget in seconds.")
  in
  let tests =
    Arg.(value & opt_all string [] & info [ "test" ] ~docv:"TEST" ~doc:"Tests to correlate.")
  in
  Cmd.v
    (Cmd.info "analysis" ~doc:"Analyse saved tuning results (the artifact's analysis.py)")
    Term.(const run $ action $ stats $ category $ rep $ budget $ tests)

(* ------------------------------------------------------------------ *)
(* cts: the Sec. 4.2 curation story                                     *)

let cts_cmd =
  let run target budget jobs =
    let runs = sweep_of_config jobs in
    let devices = List.map (fun p -> p.Profile.short_name) Profile.all in
    let n_devices = List.length devices in
    let n_envs =
      List.length (Tuning.envs_for (Tuning.default_config ()) Tuning.Pte)
    in
    let t =
      Table.create
        ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
        [ "Mutant"; "Chosen env"; "Devices at ceiling"; "Min rate (/s)" ]
    in
    let chosen =
      List.filter_map
        (fun (e : Suite.entry) ->
          let name = e.Suite.test.Litmus.name in
          let rate ~env ~device =
            Tuning.rate runs Tuning.Pte ~test:name ~device:(List.nth devices device)
              ~env_index:env
          in
          match MergeAlg.choose ~rate ~n_envs ~n_devices ~target ~budget with
          | None ->
              Table.add_row t [ name; "-"; "0"; "0" ];
              None
          | Some c ->
              Table.add_row t
                [
                  name;
                  string_of_int c.MergeAlg.env;
                  string_of_int c.MergeAlg.devices_at_ceiling;
                  Table.rate_cell c.MergeAlg.min_positive_rate;
                ];
              Some c)
        (Suite.mutants ())
    in
    Table.print t;
    let full = List.filter (fun c -> c.MergeAlg.devices_at_ceiling = n_devices) chosen in
    let mutants = List.length (Suite.mutants ()) in
    Printf.printf
      "\n%d/%d mutants reproducible on all devices at %.5g%% within %gs per test\n"
      (List.length full) mutants (100. *. target) budget;
    Printf.printf "total suite budget: %g s for %d conformance tests\n"
      (budget *. float_of_int (List.length (Suite.conformance_tests ())))
      (List.length (Suite.conformance_tests ()));
    Printf.printf "total reproducibility across the suite: %.4f%%\n"
      (100. *. Confidence.total_reproducibility ~per_test:target ~tests:mutants)
  in
  let target =
    Arg.(value & opt float 0.99999 & info [ "rep" ] ~docv:"R" ~doc:"Reproducibility target in (0,1).")
  in
  let budget =
    Arg.(value & opt float 4.0 & info [ "budget" ] ~docv:"B" ~doc:"Per-test time budget in seconds.")
  in
  Cmd.v
    (Cmd.info "cts" ~doc:"Curate per-test environments for a conformance test suite (Alg. 1)")
    Term.(const run $ target $ budget $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* cache: inspect and maintain a campaign store                         *)

let cache_cmd =
  let store_req =
    Arg.(
      required
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR" ~doc:"Campaign store directory.")
  in
  let stats_cmd =
    (* A read-only snapshot, not a writer open: stats must work while a
       daemon or sweep holds the writer lock and appends. *)
    let run dir =
      let ro = try Store.Ro.open_ro dir with Failure msg -> or_die (Error msg) in
      List.iter (fun w -> Printf.eprintf "store: %s\n" w) (Store.Ro.warnings ro);
      Printf.printf "store: %s (read-only snapshot)\n" (Store.Ro.dir ro);
      Printf.printf "records: %d\n" (Store.Ro.count ro);
      Printf.printf "segments: %d (%d bytes)\n" (Store.Ro.segments ro) (Store.Ro.bytes ro);
      let j = Journal.open_ (journal_path dir) in
      (match Journal.header j with
      | None -> print_endline "journal: none"
      | Some h ->
          Printf.printf "journal: sweep %s, %d/%d cell(s) durable%s\n"
            (CKey.to_hex h.Journal.sweep) (Journal.progress j) h.Journal.cells
            (if Journal.finished j then " (finished)" else " (interrupted — resumable)"));
      Journal.close j
    in
    Cmd.v
      (Cmd.info "stats"
         ~doc:
           "Report a store's records, segments and journal, from a lock-free read-only \
            snapshot (safe while a daemon or sweep is writing)")
      Term.(const run $ store_req)
  in
  let gc_cmd =
    let run dir =
      Store.with_store dir (fun store ->
          print_store_warnings store;
          let before = Store.stats store in
          let dropped = Store.gc store in
          let after = Store.stats store in
          Printf.printf "compacted %d segment(s) into 1: %d record(s), %d -> %d bytes, %d \
                         stale record(s) dropped\n"
            before.Store.s_segments after.Store.s_records before.Store.s_bytes
            after.Store.s_bytes dropped)
    in
    Cmd.v
      (Cmd.info "gc"
         ~doc:"Compact a store into one deduplicated, corruption-free segment (atomic rename)")
      Term.(const run $ store_req)
  in
  let verify_cmd =
    let run dir =
      match Store.verify dir with
      | Error e -> or_die (Error e)
      | Ok report ->
          Format.printf "%a@." Store.pp_verify report;
          if not (Store.verify_ok report) then begin
            prerr_endline "mcmutants: store integrity check failed";
            exit 1
          end
    in
    Cmd.v
      (Cmd.info "verify"
         ~doc:
           "Check a store's on-disk integrity read-only; exit non-zero on any bad record, \
            torn tail or duplicate")
      Term.(const run $ store_req)
  in
  Cmd.group
    (Cmd.info "cache" ~doc:"Inspect and maintain a campaign store (stats, gc, verify)")
    [ stats_cmd; gc_cmd; verify_cmd ]

(* ------------------------------------------------------------------ *)
(* serve / submit / watch / report / admin: the campaign service        *)

module Proto = Mcm_serve.Proto
module Server = Mcm_serve.Server
module Client = Mcm_serve.Client

let socket_arg =
  let doc = "Daemon socket path (defaults to STORE/serve.sock on the serve side)." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let socket_req =
  let doc = "Daemon socket path." in
  Arg.(required & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let serve_cmd =
  let run store_dir socket port jobs verbose =
    let socket =
      match socket with Some s -> s | None -> Filename.concat store_dir "serve.sock"
    in
    match
      Server.run { Server.store_dir; socket_path = socket; port; jobs; verbose }
    with
    | summary ->
        Printf.printf
          "serve: done — %d session(s), %d warm hit(s), %d computed, %d deduplicated\n"
          summary.Server.sessions summary.Server.served summary.Server.computed
          summary.Server.joined
    | exception Failure msg -> or_die (Error msg)
  in
  let store_req =
    Arg.(
      required
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR" ~doc:"Campaign store directory (the daemon is its single writer).")
  in
  let port =
    Arg.(
      value
      & opt (some int) None
      & info [ "port" ] ~docv:"N" ~doc:"Also listen on TCP 127.0.0.1:$(docv).")
  in
  let verbose = Arg.(value & flag & info [ "verbose" ] ~doc:"Log every service event to stderr.") in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the campaign daemon: serve warm hits from the store instantly, deduplicate \
          identical in-flight requests across clients, execute misses with per-client fair \
          scheduling, stream results back incrementally")
    Term.(const run $ store_req $ socket_arg $ port $ jobs_arg $ verbose)

(* Build the submit grid client-side: name-or-file tests crossed with
   one device/env/engine configuration, the environment shipped as full
   canonical params so the daemon needs no tuning context. *)
let submit_cells tests litmus_files device env_name iterations seed bugs scale engine =
  let env = or_die (parse_env env_name seed scale) in
  let engine = or_die (find_engine engine) in
  (match Profile.find device with
  | Some _ -> ()
  | None -> or_die (Error (Printf.sprintf "unknown device %S (nvidia|amd|intel|m1)" device)));
  let named =
    List.map
      (fun name ->
        (* Resolve locally first for a friendly error; send the name so
           the daemon's key matches direct CLI runs over the same suite. *)
        ignore (or_die (find_test name));
        {
          Proto.c_test = Proto.Name name;
          c_device = device;
          c_bugs = bugs;
          c_env = env;
          c_iterations = iterations;
          c_seed = seed;
          c_engine = engine;
        })
      tests
  in
  let sourced =
    List.map
      (fun path ->
        let src =
          try In_channel.with_open_bin path In_channel.input_all
          with Sys_error e -> or_die (Error e)
        in
        (match Mcm_litmus.Parse.parse src with
        | Ok _ -> ()
        | Error e -> or_die (Error (path ^ ": " ^ e)));
        {
          Proto.c_test = Proto.Source src;
          c_device = device;
          c_bugs = bugs;
          c_env = env;
          c_iterations = iterations;
          c_seed = seed;
          c_engine = engine;
        })
      litmus_files
  in
  match named @ sourced with
  | [] -> or_die (Error "nothing to submit (give TEST names or --litmus FILE)")
  | cells -> cells

let submit_cmd =
  let run socket tests litmus_files device env_name iterations seed bugs scale engine kind
      priority json =
    let cells = submit_cells tests litmus_files device env_name iterations seed bugs scale engine in
    let client = or_die (Client.connect ~name:"submit" socket) in
    let on_event msg = if json then print_endline (String.trim (Proto.server_to_line msg)) in
    (match Client.submit ~priority ~on_event ~kind client cells with
    | Error e ->
        Client.close client;
        or_die (Error e)
    | Ok grid ->
        Client.close client;
        if not json then begin
          Printf.printf "submitted %d cell(s): %d warm hit(s), %d queued, %d deduplicated\n"
            grid.Client.total grid.Client.hits grid.Client.queued grid.Client.joined;
          Array.iteri
            (fun i r ->
              let label =
                match (List.nth cells i).Proto.c_test with
                | Proto.Name n -> n
                | Proto.Source _ -> List.nth litmus_files (i - List.length tests)
              in
              match (kind, Runner.result_of_json r.Client.payload) with
              | "run", Ok res ->
                  Printf.printf "%-24s %s  kills %d/%d  rate %s /s  key %s\n" label
                    (if r.Client.cached then "cached " else "computed")
                    res.Runner.kills res.Runner.instances
                    (Table.rate_cell res.Runner.rate)
                    r.Client.key
              | _ ->
                  Printf.printf "%-24s %s  key %s  %s\n" label
                    (if r.Client.cached then "cached " else "computed")
                    r.Client.key
                    (Mcm_util.Jsonw.to_string r.Client.payload))
            grid.Client.cells
        end)
  in
  let tests =
    Arg.(value & pos_all string [] & info [] ~docv:"TEST" ~doc:"Test names to submit.")
  in
  let litmus_files =
    Arg.(
      value & opt_all string []
      & info [ "litmus" ] ~docv:"FILE" ~doc:"Submit a textual litmus source file (repeatable).")
  in
  let kind =
    Arg.(
      value
      & opt (enum [ ("run", "run"); ("histogram", "histogram"); ("outcomes", "outcomes") ]) "run"
      & info [ "kind" ] ~docv:"KIND" ~doc:"Result payload: run, histogram or outcomes.")
  in
  let priority =
    Arg.(
      value & opt int 0
      & info [ "priority" ] ~docv:"N" ~doc:"Scheduling priority (higher runs first).")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Stream the raw protocol events as JSONL instead.")
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit campaign cells to a running daemon and stream the results back (warm hits \
          answer instantly; identical in-flight cells are deduplicated across clients)")
    Term.(
      const run $ socket_req $ tests $ litmus_files $ device_arg $ env_arg $ iterations_arg
      $ seed_arg $ bugs_arg $ scale_arg $ engine_arg $ kind $ priority $ json)

let watch_cmd =
  let run socket =
    let client = or_die (Client.connect ~name:"watch" socket) in
    Client.send client Proto.Watch;
    let rec loop () =
      match Client.recv client with
      | Error e ->
          Client.close client;
          or_die (Error e)
      | Ok (Proto.Progress { queued; inflight; clients; served; computed }) ->
          Printf.printf "queued %d  inflight %d  clients %d  served %d  computed %d\n%!" queued
            inflight clients served computed;
          loop ()
      | Ok (Proto.Bye { reason }) ->
          Printf.printf "daemon: bye (%s)\n" reason;
          Client.close client
      | Ok _ -> loop ()
    in
    loop ()
  in
  Cmd.v
    (Cmd.info "watch" ~doc:"Attach to a daemon and stream queue/progress events until it exits")
    Term.(const run $ socket_req)

let report_cmd =
  let run socket json =
    let client = or_die (Client.connect ~name:"report" socket) in
    Client.send client Proto.Report;
    let rec next () =
      match Client.recv client with
      | Error e ->
          Client.close client;
          or_die (Error e)
      | Ok (Proto.Reply { op = "report"; data }) ->
          Client.close client;
          data
      | Ok _ -> next ()
    in
    let data = next () in
    if json then print_endline (Mcm_util.Jsonw.to_string data)
    else begin
      let module Jsonp = Mcm_util.Jsonp in
      let int path v = Option.value ~default:0 (Option.bind (Jsonp.member path v) Jsonp.to_int) in
      let str path v =
        Option.value ~default:"" (Option.bind (Jsonp.member path v) Jsonp.to_string_opt)
      in
      (match Jsonp.member "totals" data with
      | Some t ->
          Printf.printf
            "daemon totals: %d session(s), %d submission(s), %d cell(s) — %d hit(s), %d \
             joined, %d computed\n"
            (int "sessions" t) (int "submissions" t) (int "cells" t) (int "hits" t)
            (int "joined" t) (int "computed" t)
      | None -> ());
      (match Jsonp.member "store" data with
      | Some s -> Printf.printf "store: %s (%d record(s))\n" (str "dir" s) (int "records" s)
      | None -> ());
      (match Jsonp.member "engine" data with
      | Some e ->
          Printf.printf
            "engine: %d kernel(s) compiled, %d schema reuse(s), %d workspace reuse(s)\n"
            (int "kernelsCompiled" e) (int "schemaReuses" e) (int "workspaceReuses" e)
      | None -> ());
      let rows = match Jsonp.member "rows" data with Some r -> Jsonp.to_list r | None -> [] in
      if rows <> [] then begin
        let t =
          Table.create
            ~aligns:
              [ Table.Left; Table.Left; Table.Left; Table.Right; Table.Right; Table.Right;
                Table.Right; Table.Right ]
            [ "Test"; "Device"; "Env"; "Cells"; "Hits"; "Joined"; "Computed"; "Hit rate" ]
        in
        List.iter
          (fun r ->
            let cells = int "cells" r in
            let hits = int "hits" r in
            Table.add_row t
              [
                str "test" r;
                str "device" r;
                str "env" r;
                string_of_int cells;
                string_of_int hits;
                string_of_int (int "joined" r);
                string_of_int (int "computed" r);
                (if cells > 0 then Table.pct_cell (float_of_int hits /. float_of_int cells)
                 else "-");
              ])
          rows;
        Table.print t
      end
    end
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Print the raw report JSON.") in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Per-test/per-device/per-environment service counters of a running daemon: hit \
          rates, dedup joins, computed cells and outcome totals")
    Term.(const run $ socket_req $ json)

let admin_cmd =
  let run socket action =
    let client = or_die (Client.connect ~name:"admin" socket) in
    let finish () = Client.close client in
    (match action with
    | "ping" -> (
        Client.send client Proto.Ping;
        match Client.recv client with
        | Ok Proto.Pong ->
            print_endline "pong";
            finish ()
        | Ok _ | Error _ ->
            finish ();
            or_die (Error "no pong from daemon"))
    | "queue" -> (
        Client.send client Proto.Queue;
        let rec next () =
          match Client.recv client with
          | Ok (Proto.Reply { op = "queue"; data }) ->
              print_endline (Mcm_util.Jsonw.to_string data);
              finish ()
          | Ok _ -> next ()
          | Error e ->
              finish ();
              or_die (Error e)
        in
        next ())
    | "drain" -> (
        Client.send client Proto.Drain;
        let rec next () =
          match Client.recv client with
          | Ok (Proto.Reply { op = "drain"; data }) ->
              Printf.printf "draining: %s\n" (Mcm_util.Jsonw.to_string data);
              finish ()
          | Ok _ -> next ()
          | Error e ->
              finish ();
              or_die (Error e)
        in
        next ())
    | "shutdown" -> (
        Client.send client Proto.Shutdown;
        (* The daemon answers with Bye as it exits. *)
        match Client.recv client with
        | Ok (Proto.Bye _) | Error _ ->
            print_endline "daemon shut down";
            finish ()
        | Ok _ ->
            print_endline "shutdown requested";
            finish ())
    | other -> or_die (Error (Printf.sprintf "unknown action %S (ping|queue|drain|shutdown)" other)))
  in
  let action =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ACTION" ~doc:"ping, queue, drain or shutdown.")
  in
  Cmd.v
    (Cmd.info "admin"
       ~doc:
         "Administer a running daemon: ping it, inspect the queue and in-flight cells, drain \
          admissions, or shut it down gracefully")
    Term.(const run $ socket_req $ action)

(* ------------------------------------------------------------------ *)
(* corpus: generated litmus corpus                                      *)

module Corpus = Mcm_corpus.Corpus
module CShape = Mcm_corpus.Shape
module CAdmit = Mcm_corpus.Admit
module HGrid = Mcm_harness.Grid

let corpus_arg =
  let doc = "Corpus file (written by $(b,corpus generate))." in
  Arg.(value & opt string "corpus.json" & info [ "corpus" ] ~docv:"FILE" ~doc)

let load_corpus path = or_die (Corpus.load ~path)

let corpus_generate_cmd =
  let run shape_spec model_s rmw fence wg_fence bound_s seed ops_s oracle_engine_s cross_check
      shard_s jobs out =
    (* Strict flag parsing in the MCM_* convention: malformed values
       fail loudly, naming the flag. *)
    let shape =
      or_die
        (Result.map_error
           (fun e -> "--shape: " ^ e)
           (CShape.of_spec ~rmw ~fence ~wg_fence shape_spec))
    in
    let model =
      match Model.of_string model_s with
      | Some m -> m
      | None ->
          or_die
            (Error
               (Printf.sprintf "--model: unknown model %S (%s)" model_s
                  (String.concat "|" (List.map Model.name Model.all))))
    in
    let bound =
      Option.map
        (fun s ->
          match int_of_string_opt s with
          | Some n when n > 0 -> n
          | _ -> or_die (Error (Printf.sprintf "--bound: expected a positive integer, got %S" s)))
        bound_s
    in
    let ops =
      match String.lowercase_ascii ops_s with
      | "none" -> []
      | s ->
          List.map
            (fun name ->
              match Mutator.op_of_string name with
              | Some op -> op
              | None ->
                  or_die
                    (Error
                       (Printf.sprintf "--ops: unknown operator %S (%s, or none)" name
                          (String.concat "|" (List.map Mutator.op_name Mutator.all_ops)))))
            (String.split_on_char ',' s)
    in
    let engine =
      match Mcm_oracle.Engine.of_string oracle_engine_s with
      | Some e -> e
      | None ->
          or_die
            (Error
               (Printf.sprintf "--engine: unknown oracle engine %S (%s)" oracle_engine_s
                  (String.concat "|" (List.map Mcm_oracle.Engine.name Mcm_oracle.Engine.all))))
    in
    let shard =
      Option.map
        (fun s ->
          let bad () =
            or_die
              (Error (Printf.sprintf "--shard: expected I/N with 0 <= I < N (e.g. 0/4), got %S" s))
          in
          match String.split_on_char '/' s with
          | [ i_s; n_s ] -> (
              match (int_of_string_opt i_s, int_of_string_opt n_s) with
              | Some k, Some n when n > 0 && 0 <= k && k < n -> (k, n)
              | _ -> bad ())
          | _ -> bad ())
        shard_s
    in
    let meta = { Corpus.shape; model; seed; bound; ops; engine; shard } in
    let t0 = Unix.gettimeofday () in
    let corpus = Corpus.generate ~cross_check ~domains:jobs meta in
    let wall = Unix.gettimeofday () -. t0 in
    let s = corpus.Corpus.stats in
    Printf.printf "corpus version: %s\n" Mcm_corpus.Version.version;
    Printf.printf "shape: %s, model %s, seed %d%s%s\n"
      (Format.asprintf "%a" CShape.pp shape)
      (Model.name model) seed
      (match bound with None -> "" | Some b -> Printf.sprintf ", bound %d" b)
      (match shard with None -> "" | Some (k, n) -> Printf.sprintf ", shard %d/%d" k n);
    Printf.printf
      "programs: %d canonical (of %d raw), %d candidate executions enumerated\n"
      s.CAdmit.programs s.CAdmit.raw s.CAdmit.candidates;
    Printf.printf
      "admitted: %d (%d conformance, %d weak, %d interleaved, %d operator mutants); %d \
       rejected, %d duplicates\n"
      s.CAdmit.admitted s.CAdmit.conformance s.CAdmit.weak s.CAdmit.interleaved
      s.CAdmit.operator_mutants s.CAdmit.rejected s.CAdmit.duplicates;
    if s.CAdmit.uncertified > 0 || s.CAdmit.disagreements > 0 then begin
      Printf.eprintf "mcmutants: admission failed: %d uncertified, %d engine disagreement(s)\n"
        s.CAdmit.uncertified s.CAdmit.disagreements;
      exit 1
    end;
    if cross_check then print_endline "cross-check: both oracle engines agree on every verdict";
    Corpus.save ~path:out corpus;
    Printf.printf "corpus key: %s\nwrote %s\n" (CKey.to_hex (Corpus.key corpus)) out;
    Printf.eprintf "wall time: %.3f s (%.0f candidates/s)\n" wall
      (if wall > 0. then float_of_int s.CAdmit.candidates /. wall else 0.)
  in
  let shape_arg =
    let doc =
      "Shape budget THREADSxEVENTSxLOCS (e.g. $(b,2x4x2)): maximum threads, total \
       instructions and distinct locations to enumerate."
    in
    Arg.(value & opt string "2x4x2" & info [ "shape" ] ~docv:"KxExL" ~doc)
  in
  let model_arg =
    let doc = "Memory consistency model to certify against: sc, sc-per-loc or relacq." in
    Arg.(value & opt string "sc-per-loc" & info [ "model" ] ~docv:"MODEL" ~doc)
  in
  let rmw_arg =
    Arg.(value & flag & info [ "rmw" ] ~doc:"Admit read-modify-writes into the alphabet.")
  in
  let fence_arg = Arg.(value & flag & info [ "fence" ] ~doc:"Admit fences into the alphabet.") in
  let wg_fence_arg =
    Arg.(
      value & flag
      & info [ "wg-fence" ]
          ~doc:
            "Admit workgroup-scope fences into the alphabet (implies nothing about $(b,--fence): \
             the two scopes are independent symbols).")
  in
  let bound_arg =
    let doc =
      "Cap the canonical programs fed to the oracle; beyond it a $(b,--seed)-driven uniform \
       sample is taken."
    in
    Arg.(value & opt (some string) None & info [ "bound" ] ~docv:"N" ~doc)
  in
  let ops_arg =
    let doc =
      "Comma-separated mutation operators applied to the paper suite's conformance tests \
       (sdl, ror, uoi, fsn), or $(b,none)."
    in
    Arg.(value & opt string "sdl,ror,uoi,fsn" & info [ "ops" ] ~docv:"OPS" ~doc)
  in
  let oracle_engine_arg =
    let doc = "Oracle engine for admission: enumerate or propagate." in
    Arg.(value & opt string "propagate" & info [ "engine" ] ~docv:"ENGINE" ~doc)
  in
  let cross_check_arg =
    Arg.(
      value & flag
      & info [ "cross-check" ]
          ~doc:
            "Re-run every admission under the second oracle engine and fail on any verdict \
             difference.")
  in
  let shard_arg =
    let doc =
      "Generate only shard $(i,I) of $(i,N) (e.g. $(b,0/4)): a deterministic, disjoint, \
       union-complete slice of candidate enumeration, so large shapes fan out across processes. \
       Each shard does 1/N of the oracle work; the shard is recorded in the corpus meta and its \
       content key."
    in
    Arg.(value & opt (some string) None & info [ "shard" ] ~docv:"I/N" ~doc)
  in
  let out_arg =
    Arg.(value & opt string "corpus.json" & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "generate"
       ~doc:
         "Enumerate, derive and oracle-certify a litmus corpus (deterministic in its \
          configuration; the output is byte-reproducible)")
    Term.(
      const run $ shape_arg $ model_arg $ rmw_arg $ fence_arg $ wg_fence_arg $ bound_arg
      $ seed_arg $ ops_arg $ oracle_engine_arg $ cross_check_arg $ shard_arg $ jobs_arg $ out_arg)

let corpus_list_cmd =
  let run path =
    let corpus = load_corpus path in
    let t =
      Table.create
        ~aligns:[ Table.Left; Table.Left; Table.Left; Table.Left; Table.Left ]
        [ "Name"; "Polarity"; "Model"; "Origin"; "Skeleton" ]
    in
    List.iter
      (fun (e : CAdmit.entry) ->
        Table.add_row t
          [
            e.CAdmit.test.Litmus.name;
            CAdmit.polarity_name e.CAdmit.polarity;
            Model.name e.CAdmit.test.Litmus.model;
            (match (e.CAdmit.parent, e.CAdmit.op) with
            | Some p, Some op -> op ^ " of " ^ p
            | _ -> "generated");
            e.CAdmit.skeleton;
          ])
      corpus.Corpus.entries;
    Table.print t;
    let s = corpus.Corpus.stats in
    Printf.printf
      "\n%d entries (%d conformance, %d weak, %d interleaved, %d operator mutants)\ncorpus key: \
       %s\n"
      s.CAdmit.admitted s.CAdmit.conformance s.CAdmit.weak s.CAdmit.interleaved
      s.CAdmit.operator_mutants
      (CKey.to_hex (Corpus.key corpus))
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List a corpus file's entries and its content key")
    Term.(const run $ corpus_arg)

let corpus_certify_cmd =
  let run path jobs =
    let corpus = load_corpus path in
    let rechecks = Corpus.recertify ~domains:jobs corpus in
    let bad =
      List.filter
        (fun (r : Corpus.recheck) -> not (r.Corpus.engines_agree && r.Corpus.matches_stored))
        rechecks
    in
    List.iter
      (fun (r : Corpus.recheck) -> Printf.printf "FAIL %s: %s\n" r.Corpus.name r.Corpus.detail)
      bad;
    Printf.printf
      "corpus certify: %d entr%s re-proved under both oracle engines, %d divergence(s)\n"
      (List.length rechecks)
      (if List.length rechecks = 1 then "y" else "ies")
      (List.length bad);
    if bad <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:
         "Re-certify every entry of a corpus under both oracle engines and fail on any \
          disagreement or drift from the stored certificates")
    Term.(const run $ corpus_arg $ jobs_arg)

let corpus_run_cmd =
  let run path device env iterations seed scale jobs engine plan store_dir =
    let corpus = load_corpus path in
    let profile = or_die (find_device device) in
    let env = or_die (parse_env env seed scale) in
    let engine = or_die (find_engine engine) in
    let plan = or_die (find_plan plan) in
    let device = Device.make profile in
    let entries = Array.of_list corpus.Corpus.entries in
    let n = Array.length entries in
    Printf.printf "corpus: %d entries (key %s)\ndevice: %s\nenvironment: %s\n" n
      (CKey.to_hex (Corpus.key corpus))
      (Device.name device)
      (Format.asprintf "%a" Params.pp env);
    let request i =
      Request.make ~engine ~device ~env ~test:entries.(i).CAdmit.test ~iterations ~seed ()
    in
    let t0 = Unix.gettimeofday () in
    let results =
      with_ctx ~plan ~jobs store_dir (fun ctx _journal ->
          HGrid.run ctx (HGrid.make Runner.Rate ~n ~request))
    in
    let wall = Unix.gettimeofday () -. t0 in
    let t =
      Table.create
        ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right ]
        [ "Name"; "Polarity"; "Kills"; "Instances"; "Rate (/s)" ]
    in
    let kills = ref 0 in
    Array.iteri
      (fun i (r : Runner.result) ->
        kills := !kills + r.Runner.kills;
        Table.add_row t
          [
            entries.(i).CAdmit.test.Litmus.name;
            CAdmit.polarity_name entries.(i).CAdmit.polarity;
            string_of_int r.Runner.kills;
            string_of_int r.Runner.instances;
            Table.rate_cell r.Runner.rate;
          ])
      results;
    Table.print t;
    Printf.printf "\n%d cell(s), %d target observation(s) in total\n" n !kills;
    Printf.eprintf "wall time: %.3f s\n" wall
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run every test of a corpus through the campaign pipeline (store-cacheable: cells \
          are content-addressed like any other campaign cell)")
    Term.(
      const run $ corpus_arg $ device_arg $ env_arg $ iterations_arg $ seed_arg $ scale_arg
      $ jobs_arg $ engine_arg $ plan_arg $ store_arg)

let corpus_cmd =
  Cmd.group
    (Cmd.info "corpus"
       ~doc:
         "Generated litmus corpus: template-driven synthesis with oracle-certified admission")
    [ corpus_generate_cmd; corpus_certify_cmd; corpus_list_cmd; corpus_run_cmd ]

(* ------------------------------------------------------------------ *)
(* version: binary + campaign key code version                          *)

(* 1.3.0: first-class memory scopes (key v2, kernel v3, corpus gen2). *)
let binary_version = "1.3.0"

let version_cmd =
  let run json =
    if json then
      print_endline
        (Mcm_util.Jsonw.to_string
           (Mcm_util.Jsonw.Obj
              [
                ("version", Mcm_util.Jsonw.String binary_version);
                ("keyCodeVersion", Mcm_util.Jsonw.String CKey.code_version);
                ("kernelCodeVersion", Mcm_util.Jsonw.Int Mcm_gpu.Kernel.code_version);
                ("corpusVersion", Mcm_util.Jsonw.String Mcm_corpus.Version.version);
                ("protocol", Mcm_util.Jsonw.Int Proto.protocol_version);
                ( "engines",
                  Mcm_util.Jsonw.List
                    (List.map (fun (n, _) -> Mcm_util.Jsonw.String n) Request.engines) );
              ]))
    else begin
      Printf.printf "mcmutants %s\n" binary_version;
      Printf.printf "campaign key code version: %s\n" CKey.code_version;
      Printf.printf "kernel code version: %d\n" Mcm_gpu.Kernel.code_version;
      Printf.printf "corpus generator version: %s\n" Mcm_corpus.Version.version;
      Printf.printf "serve protocol version: %d\n" Proto.protocol_version;
      Printf.printf "engines: %s\n" (String.concat ", " (List.map fst Request.engines))
    end
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Print versions as JSON (includes the serve protocol version, so clients can \
             handshake-check a daemon).")
  in
  Cmd.v
    (Cmd.info "version"
       ~doc:
         "Print the binary version, the campaign store's key code version (a code-version \
          bump is why a store goes cold after an upgrade) and the serve protocol version")
    Term.(const run $ json)

let main =
  let doc = "MC Mutants: mutation testing for memory consistency specifications (ASPLOS '23)" in
  Cmd.group (Cmd.info "mcmutants" ~version:binary_version ~doc)
    [
      list_cmd; show_cmd; enumerate_cmd; run_cmd; parse_cmd; export_cmd; wgsl_cmd; table2_cmd; table3_cmd; fig5_cmd;
      fig6_cmd; table4_cmd; tune_cmd; analysis_cmd; cts_cmd; prune_cmd; emit_suite_cmd; models_cmd;
      oracle_cmd; cache_cmd; serve_cmd; submit_cmd; watch_cmd; report_cmd; admin_cmd;
      corpus_cmd; version_cmd;
    ]

let () = exit (Cmd.eval main)
