lib/litmus/library.ml: Array Instr List Litmus Mcm_memmodel String
