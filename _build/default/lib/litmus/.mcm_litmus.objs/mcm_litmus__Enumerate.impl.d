lib/litmus/enumerate.ml: Array Hashtbl List Litmus Mcm_memmodel
