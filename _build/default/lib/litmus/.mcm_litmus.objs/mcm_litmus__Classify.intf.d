lib/litmus/classify.mli: Litmus
