lib/litmus/library.mli: Litmus
