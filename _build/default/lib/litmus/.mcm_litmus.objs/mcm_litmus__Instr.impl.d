lib/litmus/instr.ml: Format
