lib/litmus/instr.mli: Format
