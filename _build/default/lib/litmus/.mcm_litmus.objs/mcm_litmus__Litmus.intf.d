lib/litmus/litmus.mli: Format Instr Mcm_memmodel
