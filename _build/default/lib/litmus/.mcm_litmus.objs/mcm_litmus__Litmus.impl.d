lib/litmus/litmus.ml: Array Buffer Format Hashtbl Instr List Mcm_memmodel Printf
