lib/litmus/enumerate.mli: Litmus Mcm_memmodel
