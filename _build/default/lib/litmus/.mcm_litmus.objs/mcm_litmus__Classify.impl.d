lib/litmus/classify.ml: Array Enumerate Hashtbl Instr List Litmus Mcm_memmodel
