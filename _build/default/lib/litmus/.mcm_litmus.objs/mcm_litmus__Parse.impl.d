lib/litmus/parse.ml: Array Buffer Enumerate Instr List Litmus Mcm_memmodel Printf String
