(** A textual litmus-test format, parser and printer.

    The format is line-oriented:

    {v
    # comments run to end of line
    test MP-relacq
    model relacq            # sc | sc-per-loc | relacq (default sc-per-loc)
    locations x y           # optional; inferred from use otherwise
    thread P0
      store x 1
      fence
      store y 1
    thread P1
      r0 = load y
      fence
      r1 = load x
    target P1:r0 == 1 && P1:r1 == 0
    v}

    Instructions are [store LOC VALUE], [REG = load LOC],
    [REG = exchange LOC VALUE] (an atomic RMW) and [fence]. The target
    condition is a boolean expression over register atoms [Pn:rK == V]
    and final-memory atoms [LOC == V], with [&&], [||], [!] and
    parentheses. Locations are identifiers; the first three conventionally
    print as [x], [y], [z].

    {!to_source} prints any test back into this format (for generated
    tests the derived target is emitted as a disjunction over its outcome
    set), and [parse (to_source t)] accepts for every test in this
    repository — a property the test suite checks. *)

val parse : string -> (Litmus.t, string) result
(** [parse source] parses one test. Errors carry a line number. *)

val parse_file : string -> (Litmus.t, string) result

val to_source : Litmus.t -> string
(** [to_source t] prints [t] in the surface format. The target condition
    is reconstructed by enumerating [t]'s candidate outcomes and listing
    those satisfying the target — exact for every test whose target
    depends only on observable outcomes (all of them, by construction).
    @raise Invalid_argument if the test is ill-formed. *)
