(** Classifying observed outcomes, as MCS testing tools report them.

    The paper's testing framework buckets every observed outcome of a
    litmus test (the artifact's result JSON counts them per iteration):

    - {e sequential} — explainable by running the threads one after
      another in some order, with no interleaving at all;
    - {e interleaved} — requires interleaving thread execution but is
      still sequentially consistent;
    - {e weak} — allowed by the test's (relaxed) memory model but not by
      sequential consistency;
    - {e forbidden} — outside the test's model: an MCS violation.

    Classification is by exhaustive enumeration, computed once per test
    and reused per outcome. *)

type behaviour = Sequential | Interleaved | Weak | Forbidden

val behaviour_name : behaviour -> string

val classifier : Litmus.t -> Litmus.outcome -> behaviour
(** [classifier t] precomputes the outcome partition for [t] (cost: one
    candidate enumeration plus one run of every thread ordering) and
    returns a constant-time classification function. Outcomes outside
    the candidate space (impossible for well-formed runs) classify as
    [Forbidden]. *)

val sequential_outcomes : Litmus.t -> Litmus.outcome list
(** [sequential_outcomes t] is the set of outcomes produced by executing
    the threads of [t] whole-thread-at-a-time, over every thread
    permutation — the baseline every platform must be able to produce. *)
