type t =
  | Load of { reg : int; loc : int }
  | Store of { loc : int; value : int }
  | Rmw of { reg : int; loc : int; value : int }
  | Fence

let uses_loc = function
  | Load { loc; _ } | Store { loc; _ } | Rmw { loc; _ } -> Some loc
  | Fence -> None

let defines_reg = function
  | Load { reg; _ } | Rmw { reg; _ } -> Some reg
  | Store _ | Fence -> None

let is_memory_access = function Load _ | Store _ | Rmw _ -> true | Fence -> false

let pp ~loc_names fmt = function
  | Load { reg; loc } -> Format.fprintf fmt "r%d = atomicLoad(%s)" reg (loc_names loc)
  | Store { loc; value } -> Format.fprintf fmt "atomicStore(%s, %d)" (loc_names loc) value
  | Rmw { reg; loc; value } ->
      Format.fprintf fmt "r%d = atomicExchange(%s, %d)" reg (loc_names loc) value
  | Fence -> Format.fprintf fmt "storageBarrier()"

let to_string ~loc_names i = Format.asprintf "%a" (pp ~loc_names) i
