(** The litmus-test instruction set — a WGSL-like atomic IR.

    This is the subset of WGSL the paper tests: atomic loads, atomic
    stores, atomic read-modify-writes, and the release/acquire fence
    (WGSL's [storageBarrier] in its earlier, fence-semantics reading).
    Locations and registers are small test-local integers; the testing
    environment maps virtual locations to physical memory at run time
    (Sec. 4.1). *)

type t =
  | Load of { reg : int; loc : int }
      (** [reg := atomicLoad(&mem\[loc\])] *)
  | Store of { loc : int; value : int }
      (** [atomicStore(&mem\[loc\], value)] *)
  | Rmw of { reg : int; loc : int; value : int }
      (** [reg := atomicExchange(&mem\[loc\], value)] — reads the old value
          and writes [value] indivisibly *)
  | Fence  (** release/acquire fence across workgroups *)

val uses_loc : t -> int option
(** [uses_loc i] is the virtual location the instruction touches, [None]
    for fences. *)

val defines_reg : t -> int option
(** [defines_reg i] is the register the instruction writes, if any. *)

val is_memory_access : t -> bool
(** [is_memory_access i] holds for loads, stores and RMWs. *)

val pp : loc_names:(int -> string) -> Format.formatter -> t -> unit
(** Pretty-prints in the paper's style, e.g. ["r0 = atomicLoad(x)"]. *)

val to_string : loc_names:(int -> string) -> t -> string
