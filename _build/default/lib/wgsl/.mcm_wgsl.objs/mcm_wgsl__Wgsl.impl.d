lib/wgsl/wgsl.ml: Array Buffer List Mcm_litmus Mcm_testenv Printf String
