lib/wgsl/wgsl.mli: Mcm_litmus Mcm_testenv
