(** WGSL shader generation.

    The paper's tests ultimately run as WebGPU compute shaders; this
    module emits that WGSL for any litmus test, wrapped in the parallel
    testing environment of Sec. 4.1 — the same structure as the
    published webgpu-litmus artifact:

    - a storage buffer of atomic test locations, spread with the
      [permute_first] coprime multiplier and the memory stride;
    - a results buffer with one slot per captured register (plus the
      final memory readback done host-side);
    - a scratchpad buffer hammered by non-testing workgroups according
      to the stress pattern parameters;
    - per-thread role slices paired through
      [permuted = (id * permute_second) % instances];
    - an optional spin barrier aligning testing threads.

    The generator is deliberately host-agnostic: it produces one
    self-contained shader string per test/environment pair, suitable for
    [device.createShaderModule] in any WebGPU host. *)

val shader : Mcm_litmus.Litmus.t -> env:Mcm_testenv.Params.t -> string
(** [shader test ~env] is the complete WGSL source. The test's threads
    become role slices; registers [r] of thread [t] are written to
    [results.value\[instance * nregs_total + slot(t, r)\]].
    @raise Invalid_argument if the test is ill-formed. *)

val result_slots : Mcm_litmus.Litmus.t -> (int * int * int) list
(** [result_slots test] maps each captured register to its slot:
    [(tid, reg, slot)] triples in slot order — the host-side decoding
    contract for {!shader}'s results buffer. *)

val instruction : loc_exprs:(int -> string) -> Mcm_litmus.Instr.t -> string
(** [instruction ~loc_exprs i] is the WGSL statement for one litmus
    instruction, e.g. ["let r0 = atomicLoad(&test_locations.value[x_0]);"].
    Exposed for tests and documentation. *)

val validate : string -> (unit, string) result
(** [validate src] performs structural checks a WGSL front-end would do
    first: balanced braces and parentheses, a single [@compute] entry
    point, and a declared workgroup size. It is not a WGSL parser, but it
    catches generator regressions. *)
