module Jsonw = Mcm_util.Jsonw
module Jsonp = Mcm_util.Jsonp
module Runner = Mcm_testenv.Runner
module Device = Mcm_gpu.Device
module Merge = Mcm_core.Merge
module Mutator = Mcm_core.Mutator
module Pearson = Mcm_stats.Pearson

type record = {
  category : string;
  env_index : int;
  device : string;
  test : string;
  mutator : string;
  kills : int;
  instances : int;
  iterations : int;
  sim_time_s : float;
  rate : float;
}

let of_runs runs =
  List.map
    (fun (r : Tuning.run) ->
      {
        category = Tuning.category_name r.Tuning.category;
        env_index = r.Tuning.env_index;
        device = Device.name r.Tuning.device;
        test = r.Tuning.test_name;
        mutator = Mutator.kind_name r.Tuning.mutator;
        kills = r.Tuning.result.Runner.kills;
        instances = r.Tuning.result.Runner.instances;
        iterations = r.Tuning.result.Runner.iterations;
        sim_time_s = r.Tuning.result.Runner.sim_time_s;
        rate = r.Tuning.result.Runner.rate;
      })
    runs

let record_to_json r =
  Jsonw.Obj
    [
      ("category", Jsonw.String r.category);
      ("envIndex", Jsonw.Int r.env_index);
      ("device", Jsonw.String r.device);
      ("test", Jsonw.String r.test);
      ("mutator", Jsonw.String r.mutator);
      ("kills", Jsonw.Int r.kills);
      ("instances", Jsonw.Int r.instances);
      ("iterations", Jsonw.Int r.iterations);
      ("simTimeS", Jsonw.Float r.sim_time_s);
      ("rate", Jsonw.Float r.rate);
    ]

let to_json records = Jsonw.Obj [ ("runs", Jsonw.List (List.map record_to_json records)) ]

let record_of_json v =
  let str key = Option.bind (Jsonp.member key v) Jsonp.to_string_opt in
  let num key = Option.bind (Jsonp.member key v) Jsonp.to_float in
  let int key = Option.bind (Jsonp.member key v) Jsonp.to_int in
  match (str "category", int "envIndex", str "device", str "test") with
  | Some category, Some env_index, Some device, Some test ->
      Ok
        {
          category;
          env_index;
          device;
          test;
          mutator = Option.value ~default:"-" (str "mutator");
          kills = Option.value ~default:0 (int "kills");
          instances = Option.value ~default:0 (int "instances");
          iterations = Option.value ~default:0 (int "iterations");
          sim_time_s = Option.value ~default:0. (num "simTimeS");
          rate = Option.value ~default:0. (num "rate");
        }
  | _ -> Error "record missing category/envIndex/device/test"

let of_json v =
  match Jsonp.member "runs" v with
  | None -> Error "missing \"runs\" array"
  | Some runs ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest -> (
            match record_of_json item with Ok r -> go (r :: acc) rest | Error e -> Error e)
      in
      go [] (Jsonp.to_list runs)

let save path records =
  try
    let oc = open_out_bin path in
    Jsonw.to_channel oc (to_json records);
    close_out oc;
    Ok ()
  with Sys_error e -> Error e

let load path = Result.bind (Jsonp.parse_file path) of_json

let distinct field records =
  List.rev
    (List.fold_left
       (fun acc r ->
         let v = field r in
         if List.mem v acc then acc else v :: acc)
       [] records)

let devices records = distinct (fun r -> r.device) records
let tests records = distinct (fun r -> r.test) records

let rate records ~category ~test ~device ~env_index =
  match
    List.find_opt
      (fun r ->
        r.category = category && r.test = test && r.device = device && r.env_index = env_index)
      records
  with
  | Some r -> r.rate
  | None -> 0.

let in_category records category = List.filter (fun r -> r.category = category) records

let mutation_score records ~category =
  let records = in_category records category in
  let device_names = devices records in
  let mutators = distinct (fun r -> r.mutator) records in
  let row label keep =
    let tests_of =
      distinct (fun r -> r.test) (List.filter keep records)
    in
    if tests_of = [] || device_names = [] then (label, 0., 0.)
    else begin
      let per_device device =
        let killed t =
          List.exists (fun r -> keep r && r.test = t && r.device = device && r.kills > 0) records
        in
        let max_rate t =
          List.fold_left
            (fun acc r ->
              if keep r && r.test = t && r.device = device then Float.max acc r.rate else acc)
            0. records
        in
        let n = List.length tests_of in
        ( float_of_int (List.length (List.filter killed tests_of)) /. float_of_int n,
          List.fold_left (fun acc t -> acc +. max_rate t) 0. tests_of /. float_of_int n )
      in
      let scores, rates = List.split (List.map per_device device_names) in
      let avg xs = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs) in
      (label, avg scores, avg rates)
    end
  in
  List.map (fun m -> row m (fun r -> r.mutator = m)) mutators @ [ row "Combined" (fun _ -> true) ]

let merge_score records ~category ~target ~budget =
  let records = in_category records category in
  let device_names = Array.of_list (devices records) in
  let all_tests = tests records in
  let n_envs = 1 + List.fold_left (fun acc r -> max acc r.env_index) (-1) records in
  if all_tests = [] || n_envs = 0 || Array.length device_names = 0 then 0.
  else begin
    let reproducible t =
      Merge.reproducible_on_all
        ~rate:(fun ~env ~device ->
          rate records ~category ~test:t ~device:device_names.(device) ~env_index:env)
        ~n_envs ~n_devices:(Array.length device_names) ~target ~budget
    in
    float_of_int (List.length (List.filter reproducible all_tests))
    /. float_of_int (List.length all_tests)
  end

let correlation_matrix records ~category ~tests =
  let records = in_category records category in
  (* Sample points are (env_index, device) pairs, in a fixed order. *)
  let points =
    List.sort_uniq compare (List.map (fun r -> (r.env_index, r.device)) records)
  in
  let series t =
    Array.of_list
      (List.map
         (fun (env_index, device) -> rate records ~category ~test:t ~device ~env_index)
         points)
  in
  let columns = Array.of_list (List.map series tests) in
  let n = Array.length columns in
  Array.init n (fun i -> Array.init n (fun j -> Pearson.pcc columns.(i) columns.(j)))
