(** Persistent tuning results and their analyses.

    The published artifact stores each tuning run as a JSON file and
    ships an [analysis.py] with three actions — mutation scores, merging
    test environments, and correlation — over those files (Appendix A.6).
    This module is that pipeline: {!of_runs} flattens a sweep into
    records, {!save}/{!load} round-trip them through JSON, and the
    analysis functions reproduce the three actions. *)

(** One (category, environment, device, test) measurement, in a form
    that survives serialisation. *)
type record = {
  category : string;  (** e.g. ["PTE"] — see {!Tuning.category_name} *)
  env_index : int;
  device : string;
  test : string;
  mutator : string;  (** the generating mutator's name, or ["-"] *)
  kills : int;
  instances : int;
  iterations : int;
  sim_time_s : float;
  rate : float;
}

val of_runs : Tuning.run list -> record list
(** Flatten a sweep. *)

val to_json : record list -> Mcm_util.Jsonw.t
val of_json : Mcm_util.Jsonw.t -> (record list, string) result

val save : string -> record list -> (unit, string) result
(** [save path records] writes the JSON file. *)

val load : string -> (record list, string) result
(** [load path] parses a file written by {!save}. *)

val devices : record list -> string list
(** Distinct device names, in first-appearance order. *)

val tests : record list -> string list
(** Distinct test names, in first-appearance order. *)

val rate : record list -> category:string -> test:string -> device:string -> env_index:int -> float
(** Rate lookup; [0.] when absent. *)

(** [analysis.py --action mutation-score]: mutation score and average
    death rate per mutator plus a combined row, for one category,
    averaged across the devices present. Rows are
    [(label, score, avg_rate)]. *)
val mutation_score : record list -> category:string -> (string * float * float) list

(** [analysis.py --action merge]: the fraction of tests whose Alg.-1
    merged environment reaches the ceiling rate on every device. *)
val merge_score : record list -> category:string -> target:float -> budget:float -> float

(** [analysis.py --action correlation]: the Pearson correlation matrix
    between the named tests' rates across environments (and devices) of
    one category. Returns the matrix in the order of [tests]; entries
    are [nan] when degenerate. *)
val correlation_matrix : record list -> category:string -> tests:string list -> float array array
