lib/harness/experiments.ml: Array Float Hashtbl List Mcm_core Mcm_gpu Mcm_litmus Mcm_stats Mcm_testenv Mcm_util Printf Sys Tuning
