lib/harness/tuning.ml: Hashtbl List Mcm_core Mcm_gpu Mcm_litmus Mcm_testenv Mcm_util Sys
