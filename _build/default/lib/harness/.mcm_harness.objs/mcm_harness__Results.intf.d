lib/harness/results.mli: Mcm_util Tuning
