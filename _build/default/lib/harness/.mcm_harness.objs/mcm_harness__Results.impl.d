lib/harness/results.ml: Array Float List Mcm_core Mcm_gpu Mcm_stats Mcm_testenv Mcm_util Option Result Tuning
