lib/harness/experiments.mli: Mcm_core Mcm_util Tuning
