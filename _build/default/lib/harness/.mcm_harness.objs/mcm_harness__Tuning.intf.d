lib/harness/tuning.mli: Mcm_core Mcm_gpu Mcm_testenv
