lib/testenv/assignment.mli: Mcm_gpu Mcm_util Params
