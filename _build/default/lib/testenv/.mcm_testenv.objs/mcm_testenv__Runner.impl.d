lib/testenv/runner.ml: Array Assignment List Mcm_gpu Mcm_litmus Mcm_util Params
