lib/testenv/assignment.ml: Array Mcm_gpu Mcm_util Params
