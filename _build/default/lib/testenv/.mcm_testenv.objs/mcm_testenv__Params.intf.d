lib/testenv/params.mli: Format Mcm_util
