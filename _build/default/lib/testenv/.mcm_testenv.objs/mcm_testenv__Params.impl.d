lib/testenv/params.ml: Float Format Mcm_util
