lib/testenv/runner.mli: Mcm_gpu Mcm_litmus Params
