(** Thread↔test-instance assignment and start-time synthesis (Sec. 4.1).

    In a parallel testing environment every physical testing thread runs
    one role slice of several instances back to back: thread [v] executes
    role 0 of instance [v], then role 1 of instance [perm v], then role 2
    of instance [perm (perm v)], where [perm] is the paper's coprime
    modular permutation [v ↦ v·P mod N]. This pairs every instance's
    roles on distinct, non-repeating threads with no divergent control
    flow.

    The physical start time of a thread encodes the simulated GPU's
    scheduling: workgroups launch in waves of [compute_units], separated
    by the profile's workgroup spacing (shrunk when barrier alignment is
    on), plus a per-CU skew, a per-warp lane offset, and exponential
    jitter (inflated by shuffling, pre-stress and memory-stress traffic).

    In single-instance mode ([Params.Single]) there is exactly one
    instance and its roles are placed in distinct workgroups spread over
    the grid, as prior work does. *)

val physical_start :
  prng:Mcm_util.Prng.t ->
  profile:Mcm_gpu.Profile.t ->
  env:Params.t ->
  wg:int ->
  lane:int ->
  float
(** [physical_start ~prng ~profile ~env ~wg ~lane] is the simulated issue
    time (ns) at which the thread at [(wg, lane)] begins its first
    slice. *)

val role_starts :
  prng:Mcm_util.Prng.t ->
  profile:Mcm_gpu.Profile.t ->
  env:Params.t ->
  slice_instrs:int array ->
  instances:int ->
  float array array
(** [role_starts ~prng ~profile ~env ~slice_instrs ~instances] computes
    [starts] with [starts.(i).(r)] the start time of role [r] of instance
    [i], for one iteration. [slice_instrs.(r)] is the instruction count
    of role [r], which determines how long each slice occupies its
    thread. In parallel mode [instances] must equal the number of testing
    threads; pairing uses [env.permute_second]. *)

val pairing_quality : Params.t -> float
(** How well the pairing permutation spreads thread interactions: [1.0]
    for a non-trivial coprime multiplier, lower for the degenerate
    [v ↦ v] mapping prior work found ineffective. Feeds the weak-memory
    amplification in {!Runner}. *)
