module Prng = Mcm_util.Prng
module Numbers = Mcm_util.Numbers
module Profile = Mcm_gpu.Profile

let warp_width = 32

let physical_start ~prng ~(profile : Profile.t) ~(env : Params.t) ~wg ~lane =
  let align = Params.alignment env in
  let spacing = profile.Profile.workgroup_spacing_ns *. (1. -. (0.85 *. align)) in
  let cus = profile.Profile.compute_units in
  let wave = wg / cus and cu_slot = wg mod cus in
  let cu_offset = spacing /. float_of_int (max 1 cus) in
  let lane_offset = float_of_int (lane / warp_width) *. profile.Profile.instr_latency_ns *. 2. in
  (* Barriers align the testing threads: both the structural spacing and
     the random skew collapse as barrier_pct rises. *)
  let jitter_mean =
    profile.Profile.start_jitter_ns *. Params.jitter_scale env
    *. (1. +. (profile.Profile.stress_jitter_gain *. Params.stress_intensity env))
    *. (1. -. (0.95 *. align))
  in
  (float_of_int wave *. spacing)
  +. (float_of_int cu_slot *. cu_offset)
  +. lane_offset
  +. Prng.exponential prng jitter_mean

let slice_duration (profile : Profile.t) instrs =
  (* A slice occupies its thread for its instructions plus a small
     bookkeeping gap (index arithmetic of the permutation). *)
  float_of_int (instrs + 2) *. profile.Profile.instr_latency_ns

let role_starts ~prng ~(profile : Profile.t) ~(env : Params.t) ~slice_instrs ~instances =
  let roles = Array.length slice_instrs in
  let starts = Array.make_matrix instances roles 0. in
  match (env.Params.mode, env.Params.scope) with
  | Params.Single, Params.Inter_workgroup ->
      (* One instance; roles spread across the workgroup grid. *)
      let wgs = max roles env.Params.testing_workgroups in
      for r = 0 to roles - 1 do
        let wg = r * wgs / roles in
        starts.(0).(r) <- physical_start ~prng ~profile ~env ~wg ~lane:0
      done;
      starts
  | Params.Single, Params.Intra_workgroup ->
      (* The future-work scope: roles are lanes of one workgroup. *)
      for r = 0 to roles - 1 do
        starts.(0).(r) <- physical_start ~prng ~profile ~env ~wg:0 ~lane:(r * warp_width)
      done;
      starts
  | Params.Parallel, scope ->
      let tpw = env.Params.threads_per_workgroup in
      let n = instances in
      (* The multiplier must be coprime to the carrier (all instances for
         inter-workgroup pairing, one workgroup's worth for
         intra-workgroup pairing) for the mapping to permute; when
         scaling changed the carrier, snap to the nearest valid
         multiplier rather than degrade to the identity. *)
      let carrier = match scope with Params.Inter_workgroup -> n | Params.Intra_workgroup -> tpw in
      let p = Numbers.coprime_towards env.Params.permute_second carrier in
      (* Optional shuffle: remap workgroup launch order this iteration. *)
      let shuffle = Prng.bernoulli prng (float_of_int env.Params.shuffle_pct /. 100.) in
      let wg_count = Numbers.ceil_div n tpw in
      let wg_order = Array.init wg_count (fun i -> i) in
      if shuffle then Prng.shuffle_in_place prng wg_order;
      for v = 0 to n - 1 do
        let wg = wg_order.(v / tpw) and lane = v mod tpw in
        let clock = ref (physical_start ~prng ~profile ~env ~wg ~lane) in
        let inst = ref v in
        for r = 0 to roles - 1 do
          starts.(!inst).(r) <- !clock;
          clock := !clock +. slice_duration profile slice_instrs.(r);
          inst :=
            (match scope with
            | Params.Inter_workgroup -> Numbers.permute ~p ~n !inst
            | Params.Intra_workgroup ->
                (* Pair within the instance's own workgroup. *)
                (v / tpw * tpw) + Numbers.permute ~p ~n:carrier (!inst mod tpw))
        done
      done;
      starts

let pairing_quality (env : Params.t) =
  match env.Params.mode with
  | Params.Single -> 1.
  | Params.Parallel -> if env.Params.permute_second > 1 then 1.0 else 0.6
