module Prng = Mcm_util.Prng
module Litmus = Mcm_litmus.Litmus
module Profile = Mcm_gpu.Profile
module Device = Mcm_gpu.Device
module Instance = Mcm_gpu.Instance
module Timing = Mcm_gpu.Timing

type result = {
  kills : int;
  instances : int;
  iterations : int;
  sim_time_s : float;
  rate : float;
}

let amplification (device : Device.t) (env : Params.t) ~roles =
  let profile = device.Device.profile in
  let instances = Params.instances_per_iteration env ~roles in
  let occupancy = Profile.occupancy_amplifier profile ~instances in
  let stress = Profile.stress_amplifier profile ~intensity:(Params.stress_intensity env) in
  (* Intra-workgroup roles communicate through the compute unit's own
     cache level, where propagation is prompt — weak-memory amplification
     halves, while the tighter scheduling (handled by Assignment) makes
     interleavings easier. *)
  let scope_factor = match env.Params.scope with
    | Params.Inter_workgroup -> 1.0
    | Params.Intra_workgroup -> 0.5
  in
  ((occupancy *. Assignment.pairing_quality env
   *. (0.75 +. (0.5 *. Params.location_contention env)))
  +. stress)
  *. scope_factor

type histogram = {
  sequential : int;
  interleaved : int;
  weak : int;
  forbidden : int;
  skipped : int;
}

let run_impl ~on_outcome ~on_skip ~device ~env ~test ~iterations ~seed =
  let profile = device.Device.profile in
  let bugs = Device.effect device in
  let roles = Litmus.nthreads test in
  let instances = Params.instances_per_iteration env ~roles in
  let slice_instrs = Array.map List.length test.Litmus.threads in
  let max_slice = Array.fold_left max 0 slice_instrs in
  let instrs_per_thread =
    (match env.Params.mode with
    | Params.Single -> max_slice
    | Params.Parallel -> Array.fold_left ( + ) 0 slice_instrs)
    + Params.extra_instrs_per_thread env
  in
  let weak =
    Instance.effective_params profile ~amplification:(amplification device env ~roles)
  in
  (* Beyond this separation, roles cannot interact through any modelled
     weak-memory mechanism; see the interface note. *)
  let horizon =
    (float_of_int (Array.fold_left ( + ) 0 slice_instrs) *. weak.Instance.instr_latency_ns *. 2.)
    +. (30. *. (weak.Instance.vis_delay_mean_ns +. weak.Instance.stale_mean_ns))
    +. (4. *. weak.Instance.instr_latency_ns)
  in
  let iteration_ns =
    Timing.iteration_time_ns profile ~workgroups:env.Params.testing_workgroups
      ~threads_per_workgroup:env.Params.threads_per_workgroup ~instrs_per_thread
      ~stress_intensity:(Params.stress_intensity env)
  in
  let kills = ref 0 in
  for it = 0 to iterations - 1 do
    let prng = Prng.create (Prng.mix seed it) in
    let starts = Assignment.role_starts ~prng ~profile ~env ~slice_instrs ~instances in
    for i = 0 to instances - 1 do
      let s = starts.(i) in
      let lo = ref s.(0) and hi = ref s.(0) in
      for r = 1 to roles - 1 do
        if s.(r) < !lo then lo := s.(r);
        if s.(r) > !hi then hi := s.(r)
      done;
      if !hi -. !lo <= horizon then begin
        let outcome = Instance.run ~prng:(Prng.split prng) ~weak ~bugs ~test ~starts:s in
        if test.Litmus.target outcome then incr kills;
        on_outcome outcome
      end
      else on_skip ()
    done
  done;
  let sim_time_s = Timing.to_seconds (float_of_int iterations *. iteration_ns) in
  {
    kills = !kills;
    instances = instances * iterations;
    iterations;
    sim_time_s;
    rate = (if sim_time_s > 0. then float_of_int !kills /. sim_time_s else 0.);
  }

let run ~device ~env ~test ~iterations ~seed =
  run_impl ~on_outcome:ignore ~on_skip:ignore ~device ~env ~test ~iterations ~seed

let run_with_histogram ~device ~env ~test ~iterations ~seed =
  let classify = Mcm_litmus.Classify.classifier test in
  let sequential = ref 0 and interleaved = ref 0 and weak = ref 0 in
  let forbidden = ref 0 and skipped = ref 0 in
  let on_outcome outcome =
    match classify outcome with
    | Mcm_litmus.Classify.Sequential -> incr sequential
    | Mcm_litmus.Classify.Interleaved -> incr interleaved
    | Mcm_litmus.Classify.Weak -> incr weak
    | Mcm_litmus.Classify.Forbidden -> incr forbidden
  in
  let result =
    run_impl ~on_outcome ~on_skip:(fun () -> incr skipped) ~device ~env ~test ~iterations ~seed
  in
  ( result,
    {
      sequential = !sequential;
      interleaved = !interleaved;
      weak = !weak;
      forbidden = !forbidden;
      skipped = !skipped;
    } )
