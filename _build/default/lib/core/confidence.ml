let reproducibility ~kills = if kills <= 0. then 0. else 1. -. exp (-.kills)

let required_kills ~target =
  if target <= 0. || target >= 1. then invalid_arg "Confidence.required_kills: target must be in (0,1)";
  int_of_float (ceil (-.log (1. -. target)))

let ceiling_rate ~target ~budget =
  if budget <= 0. then invalid_arg "Confidence.ceiling_rate: budget must be positive";
  float_of_int (required_kills ~target) /. budget

let budget_for ~target ~rate =
  if rate <= 0. then infinity else float_of_int (required_kills ~target) /. rate

let total_reproducibility ~per_test ~tests = per_test ** float_of_int tests

let meets ~rate ~target ~budget = rate >= ceiling_rate ~target ~budget
