(** The generated MC Mutants test suite (Sec. 3, Tab. 2).

    Running all three mutators yields 20 conformance tests and 32 mutants.
    The suite is generated once and memoised; generation is deterministic
    and every entry's target has been machine-checked by derivation
    (see {!Template}). *)

(** Whether an entry is a conformance test or a mutant, and for mutants,
    which conformance test it was derived from. *)
type role = Conformance | Mutant_of of string

type entry = {
  test : Mcm_litmus.Litmus.t;
  role : role;
  mutator : Mutator.kind;  (** the mutator that generated this entry *)
}

val generate : unit -> (entry list, string) result
(** [generate ()] runs all three mutators. [Error] indicates a generator
    bug; the memoised accessors below raise [Failure] in that case. *)

val all : unit -> entry list
(** Every entry, conformance tests and mutants, in generation order. *)

val conformance_tests : unit -> entry list
(** The 20 conformance tests. *)

val mutants : unit -> entry list
(** The 32 mutants. *)

val mutants_of : string -> entry list
(** [mutants_of conformance_name] lists the mutants derived from the named
    conformance test (1 for mutators 1–2, 3 for mutator 3). *)

val find : string -> entry option
(** Look an entry up by test name (case-insensitive). *)

val table2 : unit -> (string * int * int) list
(** Rows of the paper's Tab. 2: mutator name, conformance-test count,
    mutant count — plus a final ["Combined"] row. *)
