(** Algorithm 1: merging test environments (Sec. 4.2).

    When curating a conformance test suite, one environment must be
    chosen per test that works across devices unknown in advance. Given
    the death rate of a mutant in every (environment, device) pair,
    Algorithm 1 picks the environment that maximises the number of
    devices whose rate reaches the ceiling rate derived from the
    reproducibility target and time budget, breaking ties by the largest
    minimum non-zero rate (which makes the choice {e stable}: loosening
    the target or extending the budget never changes a fully-passing
    choice). *)

type choice = {
  env : int;  (** index of the selected environment *)
  devices_at_ceiling : int;
      (** how many devices meet the ceiling rate under that environment *)
  min_positive_rate : float;
      (** the smallest non-zero death rate across devices, [infinity] if
          every rate is zero *)
}

val ceiling_rate : target:float -> budget:float -> float
(** Line 7 of Alg. 1 — re-exported from {!Confidence.ceiling_rate}. *)

val choose :
  rate:(env:int -> device:int -> float) ->
  n_envs:int ->
  n_devices:int ->
  target:float ->
  budget:float ->
  choice option
(** [choose ~rate ~n_envs ~n_devices ~target ~budget] runs Algorithm 1
    over environments [0 .. n_envs-1] and devices [0 .. n_devices-1].
    Returns [None] when no environment ever killed the mutant (every rate
    zero) — the algorithm's [e_r = ∅] case — or when [n_envs = 0].
    @raise Invalid_argument unless [0 < target < 1] and [budget > 0]. *)

val reproducible_on_all :
  rate:(env:int -> device:int -> float) ->
  n_envs:int ->
  n_devices:int ->
  target:float ->
  budget:float ->
  bool
(** [reproducible_on_all ...] holds when the chosen environment meets the
    ceiling rate on {e every} device — the per-mutant success criterion
    behind Fig. 6's curves. *)
