module Litmus = Mcm_litmus.Litmus

type role = Conformance | Mutant_of of string

type entry = { test : Litmus.t; role : role; mutator : Mutator.kind }

let generate () =
  let ( let* ) = Result.bind in
  List.fold_left
    (fun acc kind ->
      let* entries = acc in
      let* pairs = Mutator.instantiate kind in
      let of_pair p =
        { test = p.Mutator.conformance; role = Conformance; mutator = kind }
        :: List.map
             (fun m -> { test = m; role = Mutant_of p.Mutator.conformance.Litmus.name; mutator = kind })
             p.Mutator.mutants
      in
      Ok (entries @ List.concat_map of_pair pairs))
    (Ok []) Mutator.all_kinds

let memoised =
  lazy
    (match generate () with
    | Ok entries -> entries
    | Error e -> failwith ("Suite generation failed: " ^ e))

let all () = Lazy.force memoised

let conformance_tests () = List.filter (fun e -> e.role = Conformance) (all ())

let mutants () = List.filter (fun e -> match e.role with Mutant_of _ -> true | Conformance -> false) (all ())

let mutants_of name =
  List.filter (fun e -> match e.role with Mutant_of c -> c = name | Conformance -> false) (all ())

let find name =
  let lower = String.lowercase_ascii name in
  List.find_opt (fun e -> String.lowercase_ascii e.test.Litmus.name = lower) (all ())

let table2 () =
  let count kind =
    let entries = List.filter (fun e -> e.mutator = kind) (all ()) in
    let conf = List.length (List.filter (fun e -> e.role = Conformance) entries) in
    (Mutator.kind_name kind, conf, List.length entries - conf)
  in
  let rows = List.map count Mutator.all_kinds in
  let total_conf = List.fold_left (fun acc (_, c, _) -> acc + c) 0 rows in
  let total_mut = List.fold_left (fun acc (_, _, m) -> acc + m) 0 rows in
  rows @ [ ("Combined", total_conf, total_mut) ]
