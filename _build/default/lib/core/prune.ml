module Enumerate = Mcm_litmus.Enumerate

type verdict = { kept : Suite.entry list; pruned : Suite.entry list }

let observable ~implementation t = Enumerate.target_allowed_cat implementation t

let prune ~implementation entries =
  let mutants =
    List.filter
      (fun (e : Suite.entry) -> match e.Suite.role with Suite.Mutant_of _ -> true | _ -> false)
      entries
  in
  let kept, pruned =
    List.partition (fun (e : Suite.entry) -> observable ~implementation e.Suite.test) mutants
  in
  { kept; pruned }

let prune_suite ~implementation () = prune ~implementation (Suite.all ())
