(** MCS Test Confidence (Sec. 4.2).

    If a behaviour of interest was observed [x] times in a testing run,
    the probability that an identical subsequent run observes it at least
    once is [1 - e^(-x)] (Kirkham et al., adopted by the paper). This
    {e reproducibility score} lets a conformance-suite curator trade
    testing time against confidence: a target score [r] and a time budget
    [b] translate into a {e ceiling rate} [ceil(-ln(1-r)) / b] that a
    testing environment's mutant death rate must reach. *)

val reproducibility : kills:float -> float
(** [reproducibility ~kills] is [1 - e^(-kills)], the probability that a
    rerun of the same length observes the behaviour again. [0.] for
    non-positive [kills]. *)

val required_kills : target:float -> int
(** [required_kills ~target] is [ceil(-ln(1-target))] — the observation
    count needed within one budget to reach reproducibility [target].
    E.g. 3 kills give 95%.
    @raise Invalid_argument unless [0 < target < 1]. *)

val ceiling_rate : target:float -> budget:float -> float
(** [ceiling_rate ~target ~budget] is [required_kills ~target ∕ budget]
    (line 7 of Alg. 1): the minimum death rate, in kills per second, at
    which a test run of [budget] seconds reaches the target.
    @raise Invalid_argument unless [budget > 0]. *)

val budget_for : target:float -> rate:float -> float
(** [budget_for ~target ~rate] is the testing time needed to reach the
    target at the given death rate; [infinity] when [rate <= 0]. *)

val total_reproducibility : per_test:float -> tests:int -> float
(** [total_reproducibility ~per_test ~tests] is [per_test ^ tests] — the
    probability that a CTS run reproduces {e all} tests (Sec. 4.2's
    discussion: 95% per test over 20 tests is only 35.8% total). *)

val meets : rate:float -> target:float -> budget:float -> bool
(** [meets ~rate ~target ~budget] tests [rate >= ceiling_rate]. *)
