type choice = { env : int; devices_at_ceiling : int; min_positive_rate : float }

let ceiling_rate = Confidence.ceiling_rate

(* A direct transcription of Algorithm 1. The running best starts as the
   empty environment (n_r = 0, minRate_r = ∞); an environment only
   replaces it with strictly more devices at the ceiling, or as many and a
   strictly larger minimum non-zero rate — so if every environment has
   zero rates everywhere the result stays empty. *)
let choose ~rate ~n_envs ~n_devices ~target ~budget =
  let ceiling = ceiling_rate ~target ~budget in
  let best = ref None in
  let best_n = ref 0 and best_min = ref infinity in
  for e = 0 to n_envs - 1 do
    let n_c = ref 0 and min_c = ref infinity in
    for d = 0 to n_devices - 1 do
      let r = rate ~env:e ~device:d in
      if r >= ceiling then incr n_c;
      if r > 0. then min_c := min !min_c r
    done;
    if !n_c > !best_n || (!n_c = !best_n && !min_c > !best_min) then begin
      best := Some e;
      best_n := !n_c;
      best_min := !min_c
    end
  done;
  match !best with
  | None -> None
  | Some env -> Some { env; devices_at_ceiling = !best_n; min_positive_rate = !best_min }

let reproducible_on_all ~rate ~n_envs ~n_devices ~target ~budget =
  match choose ~rate ~n_envs ~n_devices ~target ~budget with
  | None -> false
  | Some c -> c.devices_at_ceiling = n_devices
