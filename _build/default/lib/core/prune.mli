(** Pruning mutants by implementation observability (Sec. 3.4).

    A mutation score only measures a testing environment when the mutant
    behaviours are observable on the device under test. When the
    implementation's architecture model is stronger than the
    specification — the paper's example is C++ on x86 — unobservable
    mutants must be pruned: they would depress the score no matter how
    good the environment is. Given a precise model of the implementation
    (as a {!Mcm_memmodel.Cat} model, e.g. TSO for x86), a mutant is kept
    exactly when its target behaviour is allowed by that model. *)

type verdict = {
  kept : Suite.entry list;  (** mutants observable on the implementation *)
  pruned : Suite.entry list;  (** mutants the implementation cannot exhibit *)
}

val observable : implementation:Mcm_memmodel.Cat.t -> Mcm_litmus.Litmus.t -> bool
(** [observable ~implementation t] holds when [t]'s target behaviour has
    a consistent candidate execution under the implementation model. *)

val prune : implementation:Mcm_memmodel.Cat.t -> Suite.entry list -> verdict
(** [prune ~implementation entries] splits the mutants of [entries] by
    observability; conformance tests are never pruned and are excluded
    from the result. *)

val prune_suite : implementation:Mcm_memmodel.Cat.t -> unit -> verdict
(** [prune_suite ~implementation ()] prunes the full generated suite. *)
