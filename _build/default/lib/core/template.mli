(** Deriving litmus tests from happens-before cycle templates (Sec. 3).

    A mutator instantiates an abstract cycle template into a concrete
    program; what remains is attaching the {e target behaviour}. This
    module derives targets by exhaustive candidate enumeration instead of
    trusting hand-written postconditions:

    - the {e pattern} of a template is the set of communication edges its
      cycle requires (e.g. [b -com-> c] and [c -com-> a] for Fig. 3a);
    - for a {b conformance} test, the target outcome set is
      {e (outcomes of candidates matching the pattern) minus (outcomes of
      candidates consistent under the MCS)} — observing any of them is
      therefore a definite MCS violation;
    - for a {b mutant}, it is the set of outcomes that, among consistent
      executions, arise {e only} from executions matching the pattern —
      the closely-related behaviour the MCS allows, whose observation
      unambiguously kills the mutant.

    Derivation fails (returns [Error]) when the set is empty: an empty
    conformance set means the cycle is not actually forbidden (a generator
    bug); an empty mutant set means the disruption did not legalise the
    behaviour. The paper's special case — an observer thread is needed
    when a coherence chain is otherwise unobservable — is handled by
    passing a ladder of program variants and taking the first that
    derives. *)

type polarity = Conformance | Mutant
(** Whether the target must be disallowed ([Conformance]) or allowed
    ([Mutant]) under the model. *)

type pattern = Mcm_memmodel.Execution.t -> Mcm_memmodel.Execution.relations -> bool
(** A predicate recognising candidate executions that exhibit the
    template's cycle edges. It receives the candidate and its derived
    relations. Event ids are positional: thread 0's events first, in
    program order, then thread 1's, etc. — appending an observer thread
    never renumbers the test threads' events. *)

val derive :
  name:string ->
  family:string ->
  model:Mcm_memmodel.Model.t ->
  nlocs:int ->
  pattern:pattern ->
  polarity:polarity ->
  Mcm_litmus.Instr.t list array ->
  (Mcm_litmus.Litmus.t, string) result
(** [derive ~name ~family ~model ~nlocs ~pattern ~polarity threads] builds
    the test and computes its target outcome set by enumeration. The
    resulting [target] is membership in that set and [target_desc] lists
    it. Errors when the program is ill-formed or the set is empty. *)

val derive_first :
  name:string ->
  family:string ->
  model:Mcm_memmodel.Model.t ->
  nlocs:int ->
  pattern:pattern ->
  polarity:polarity ->
  Mcm_litmus.Instr.t list array list ->
  (Mcm_litmus.Litmus.t, string) result
(** [derive_first ... variants] tries [derive] on each program variant in
    order (typically: without observer, then with observers of increasing
    size) and returns the first success, or the last error. *)

val observer_ladder :
  ?require_observer:bool ->
  obs_loc:int ->
  Mcm_litmus.Instr.t list array ->
  Mcm_litmus.Instr.t list array list
(** [observer_ladder ~obs_loc threads] is the standard ladder: the program
    as-is, then with an extra thread performing two loads of [obs_loc],
    then three — the observer whose coherent reads witness a chain of
    [co] (Sec. 3.1). With [~require_observer:true] the bare program is
    skipped — the paper always includes an observer when every memory
    event of a one-location test is a plain write. *)
