lib/core/merge.mli:
