lib/core/prune.ml: List Mcm_litmus Suite
