lib/core/confidence.mli:
