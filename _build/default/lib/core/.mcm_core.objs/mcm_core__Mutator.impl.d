lib/core/mutator.ml: Array Hashtbl List Mcm_litmus Mcm_memmodel Result Template
