lib/core/prune.mli: Mcm_litmus Mcm_memmodel Suite
