lib/core/confidence.ml:
