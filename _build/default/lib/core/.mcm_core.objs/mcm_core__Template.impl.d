lib/core/template.ml: Array List Mcm_litmus Mcm_memmodel Printf String
