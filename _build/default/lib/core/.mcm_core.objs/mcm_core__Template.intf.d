lib/core/template.mli: Mcm_litmus Mcm_memmodel
