lib/core/merge.ml: Confidence
