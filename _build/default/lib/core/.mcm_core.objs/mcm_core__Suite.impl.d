lib/core/suite.ml: Lazy List Mcm_litmus Mutator Result String
