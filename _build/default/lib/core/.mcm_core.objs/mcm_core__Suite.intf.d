lib/core/suite.mli: Mcm_litmus Mutator
