lib/core/mutator.mli: Mcm_litmus
