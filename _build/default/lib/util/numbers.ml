let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let coprime a b = gcd a b = 1

let random_coprime g n =
  if n <= 2 then 1
  else
    let rec draw () =
      let p = 1 + Prng.int g (n - 1) in
      if coprime p n then p else draw ()
    in
    draw ()

let coprime_towards p n =
  if n <= 1 then 1
  else begin
    let start =
      let m = p mod n in
      if m <= 0 then 1 else m
    in
    let rec search candidate remaining =
      if remaining = 0 then 1
      else if coprime candidate n then candidate
      else search (if candidate + 1 >= n then 1 else candidate + 1) (remaining - 1)
    in
    search start n
  end

let permute ~p ~n v =
  if n <= 0 then invalid_arg "Numbers.permute: n must be positive";
  v * p mod n

let is_permutation ~p ~n = n > 0 && coprime p n

let ceil_div a b = (a + b - 1) / b
