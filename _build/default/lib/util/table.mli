(** Plain-text table rendering for paper-style reports.

    All experiment drivers print their rows through this module so the
    benches and the CLI share one look: a header row, a rule, and
    right-aligned numeric columns. *)

type align = Left | Right

type t
(** A table under construction. *)

val create : ?aligns:align list -> string list -> t
(** [create headers] starts a table with the given column headers.
    [aligns] defaults to [Left] for the first column and [Right] for the
    rest, which suits "name, number, number, ..." layouts. *)

val add_row : t -> string list -> unit
(** [add_row t cells] appends a row. Rows shorter than the header are padded
    with empty cells; longer rows raise [Invalid_argument]. *)

val add_rule : t -> unit
(** [add_rule t] appends a horizontal rule, e.g. before a totals row. *)

val render : t -> string
(** [render t] is the finished table, newline-terminated. *)

val print : t -> unit
(** [print t] writes [render t] to stdout. *)

val float_cell : ?decimals:int -> float -> string
(** [float_cell x] formats a float for a table cell ([decimals] defaults
    to 2). Infinite and NaN values render as ["inf"]/["-inf"]/["nan"]. *)

val rate_cell : float -> string
(** [rate_cell r] formats a death rate: large rates render as e.g. ["35.2K"],
    small ones with two decimals, zero as ["0"]. *)

val pct_cell : float -> string
(** [pct_cell f] renders fraction [f] as a percentage, e.g.
    [pct_cell 0.836 = "83.6%"]. *)
