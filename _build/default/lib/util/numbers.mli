(** Small number-theory helpers used by the parallel permutation strategy
    of Sec. 4.1 (thread↔test-instance assignment via [(v * p) mod n] with
    [p] coprime to [n]). *)

val gcd : int -> int -> int
(** [gcd a b] is the greatest common divisor of [abs a] and [abs b];
    [gcd 0 0 = 0]. *)

val coprime : int -> int -> bool
(** [coprime a b] is [gcd a b = 1]. *)

val random_coprime : Prng.t -> int -> int
(** [random_coprime g n] is a uniformly chosen [p] in [\[1, n)] with
    [gcd p n = 1]; returns [1] when [n <= 2]. The permutation
    [v -> v * p mod n] is then a bijection on [\[0, n)]. *)

val coprime_towards : int -> int -> int
(** [coprime_towards p n] is the smallest [p' >= p mod n] (wrapping past
    [n], and at least [1]) with [gcd p' n = 1] — used to repair a
    permutation multiplier after the carrier size changed. Returns [1]
    when [n <= 1]. *)

val permute : p:int -> n:int -> int -> int
(** [permute ~p ~n v] is [(v * p) mod n], the paper's low-overhead parallel
    permutation. Requires [n > 0]; values are computed without overflow for
    [n, p < 2^31]. *)

val is_permutation : p:int -> n:int -> bool
(** [is_permutation ~p ~n] checks (by the coprimality criterion) that
    [permute ~p ~n] is a bijection on [\[0, n)]. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is [a / b] rounded up, for positive [b]. *)
