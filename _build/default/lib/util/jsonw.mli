(** A minimal JSON value type and serializer.

    The paper's artifact stores tuning results as JSON; we mirror that so
    experiment output can be saved and diffed. Only writing is needed —
    analyses consume the in-memory records directly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** [to_string v] is the compact JSON encoding of [v]. Strings are escaped
    per RFC 8259; non-finite floats encode as strings ("inf", "nan") since
    JSON has no representation for them. *)

val to_channel : out_channel -> t -> unit
(** [to_channel oc v] writes [to_string v] to [oc]. *)
