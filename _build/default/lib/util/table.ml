type align = Left | Right

type row = Cells of string list | Rule

type t = {
  headers : string list;
  aligns : align list;
  ncols : int;
  mutable rows : row list; (* reversed *)
}

let create ?aligns headers =
  let ncols = List.length headers in
  let aligns =
    match aligns with
    | Some a ->
        if List.length a <> ncols then invalid_arg "Table.create: aligns length mismatch";
        a
    | None -> List.mapi (fun i _ -> if i = 0 then Left else Right) headers
  in
  { headers; aligns; ncols; rows = [] }

let add_row t cells =
  let n = List.length cells in
  if n > t.ncols then invalid_arg "Table.add_row: too many cells";
  let cells = if n < t.ncols then cells @ List.init (t.ncols - n) (fun _ -> "") else cells in
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let render t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.headers) in
  let measure = function
    | Rule -> ()
    | Cells cs -> List.iteri (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c) cs
  in
  List.iter measure rows;
  let pad align width s =
    let n = width - String.length s in
    if n <= 0 then s
    else
      match align with
      | Left -> s ^ String.make n ' '
      | Right -> String.make n ' ' ^ s
  in
  let line cells =
    let padded = List.mapi (fun i (a, c) -> pad a widths.(i) c) (List.combine t.aligns cells) in
    String.concat "  " padded
  in
  let rule () =
    String.concat "--" (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line t.headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (rule ());
  Buffer.add_char buf '\n';
  let emit = function
    | Rule ->
        Buffer.add_string buf (rule ());
        Buffer.add_char buf '\n'
    | Cells cs ->
        Buffer.add_string buf (line cs);
        Buffer.add_char buf '\n'
  in
  List.iter emit rows;
  Buffer.contents buf

let print t = print_string (render t)

let float_cell ?(decimals = 2) x =
  if Float.is_nan x then "nan"
  else if x = Float.infinity then "inf"
  else if x = Float.neg_infinity then "-inf"
  else Printf.sprintf "%.*f" decimals x

let rate_cell r =
  if r = 0. then "0"
  else if r >= 1_000_000. then Printf.sprintf "%.1fM" (r /. 1_000_000.)
  else if r >= 1_000. then Printf.sprintf "%.1fK" (r /. 1_000.)
  else if r >= 1. then Printf.sprintf "%.1f" r
  else Printf.sprintf "%.4f" r

let pct_cell f = Printf.sprintf "%.1f%%" (100. *. f)
