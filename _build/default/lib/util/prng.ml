type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }
let of_int64 s = { state = s }
let copy g = { state = g.state }

(* SplitMix64 (Steele, Lea, Flood 2014): state advances by the 64-bit golden
   ratio; output is the state pushed through two xor-shift-multiply rounds. *)
let next_int64 g =
  g.state <- Int64.add g.state golden;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split g = { state = next_int64 g }

let bits62 g = Int64.to_int (Int64.shift_right_logical (next_int64 g) 2)

let int g n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let bound = n in
  let max62 = (1 lsl 62) - 1 in
  let limit = max62 - (max62 mod bound) in
  let rec draw () =
    let v = bits62 g in
    if v >= limit then draw () else v mod bound
  in
  draw ()

let float g x =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 g) 11) in
  x *. (v /. 9007199254740992.0 (* 2^53 *))

let bool g = Int64.logand (next_int64 g) 1L = 1L

let bernoulli g p = if p <= 0. then false else if p >= 1. then true else float g 1.0 < p

let exponential g mean =
  if mean <= 0. then 0.
  else
    let u = float g 1.0 in
    let u = if u <= 0. then epsilon_float else u in
    -.mean *. log u

let shuffle_in_place g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick g a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int g (Array.length a))

let mix a b =
  let g = { state = Int64.logxor (Int64.of_int a) (Int64.mul (Int64.of_int b) golden) } in
  bits62 g
