(** A small JSON parser (RFC 8259 subset) producing {!Jsonw.t} values.

    The artifact stores tuning results as JSON files; the analysis
    commands read them back through this parser. Supports objects,
    arrays, strings with the standard escapes (including [\uXXXX] for
    the basic multilingual plane), numbers, booleans and null. Numbers
    without a fraction or exponent parse as [Int], everything else as
    [Float]. *)

val parse : string -> (Jsonw.t, string) result
(** [parse s] parses exactly one JSON value (surrounded by optional
    whitespace). The error string reports the byte offset of the first
    problem. *)

val parse_file : string -> (Jsonw.t, string) result
(** [parse_file path] reads and parses a whole file. *)

val member : string -> Jsonw.t -> Jsonw.t option
(** [member key v] looks a key up in an object; [None] for absent keys
    or non-objects. *)

val to_list : Jsonw.t -> Jsonw.t list
(** [to_list v] is the elements of a [List], or [[]] otherwise. *)

val to_float : Jsonw.t -> float option
(** Numeric coercion: [Int] and [Float] both convert. *)

val to_int : Jsonw.t -> int option
val to_string_opt : Jsonw.t -> string option
