lib/util/jsonw.ml: Buffer Char Float List Printf String
