lib/util/jsonw.mli:
