lib/util/jsonp.ml: Buffer Char Jsonw List Printf String
