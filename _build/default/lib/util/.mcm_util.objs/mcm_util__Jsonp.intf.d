lib/util/jsonp.mli: Jsonw
