lib/util/numbers.mli: Prng
