lib/util/prng.mli:
