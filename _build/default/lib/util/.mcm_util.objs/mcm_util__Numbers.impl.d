lib/util/numbers.ml: Prng
