lib/util/table.mli:
