type state = { src : string; mutable pos : int }

exception Parse_error of int * string

let error st msg = raise (Parse_error (st.pos, msg))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some got when got = c -> advance st
  | Some got -> error st (Printf.sprintf "expected %c, got %c" c got)
  | None -> error st (Printf.sprintf "expected %c, got end of input" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else error st ("expected " ^ word)

let parse_string_body st =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> error st "unterminated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if st.pos + 4 > String.length st.src then error st "bad \\u escape";
                let hex = String.sub st.src st.pos 4 in
                st.pos <- st.pos + 4;
                let code =
                  match int_of_string_opt ("0x" ^ hex) with
                  | Some c -> c
                  | None -> error st "bad \\u escape"
                in
                (* Encode the code point as UTF-8 (BMP only). *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
            | c -> error st (Printf.sprintf "bad escape \\%c" c));
            go ())
    | Some c ->
        if Char.code c < 0x20 then error st "control character in string";
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  let rec go () =
    match peek st with
    | Some ('0' .. '9' | '-' | '+') ->
        advance st;
        go ()
    | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  let text = String.sub st.src start (st.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Jsonw.Float f
    | None -> error st ("bad number " ^ text)
  else
    match int_of_string_opt text with
    | Some i -> Jsonw.Int i
    | None -> (
        (* Integer overflow: fall back to float. *)
        match float_of_string_opt text with
        | Some f -> Jsonw.Float f
        | None -> error st ("bad number " ^ text))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '"' ->
      advance st;
      Jsonw.String (parse_string_body st)
  | Some 't' -> literal st "true" (Jsonw.Bool true)
  | Some 'f' -> literal st "false" (Jsonw.Bool false)
  | Some 'n' -> literal st "null" Jsonw.Null
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        Jsonw.List []
      end
      else begin
        let items = ref [ parse_value st ] in
        skip_ws st;
        while peek st = Some ',' do
          advance st;
          items := parse_value st :: !items;
          skip_ws st
        done;
        expect st ']';
        Jsonw.List (List.rev !items)
      end
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Jsonw.Obj []
      end
      else begin
        let field () =
          skip_ws st;
          expect st '"';
          let key = parse_string_body st in
          skip_ws st;
          expect st ':';
          let value = parse_value st in
          skip_ws st;
          (key, value)
        in
        let fields = ref [ field () ] in
        while peek st = Some ',' do
          advance st;
          fields := field () :: !fields
        done;
        expect st '}';
        Jsonw.Obj (List.rev !fields)
      end
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> error st (Printf.sprintf "unexpected character %c" c)

let parse s =
  let st = { src = s; pos = 0 } in
  try
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length s then Error (Printf.sprintf "trailing input at offset %d" st.pos)
    else Ok v
  with Parse_error (pos, msg) -> Error (Printf.sprintf "at offset %d: %s" pos msg)

let parse_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    parse s
  with Sys_error e -> Error e

let member key = function
  | Jsonw.Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function Jsonw.List items -> items | _ -> []

let to_float = function
  | Jsonw.Float f -> Some f
  | Jsonw.Int i -> Some (float_of_int i)
  | _ -> None

let to_int = function Jsonw.Int i -> Some i | _ -> None

let to_string_opt = function Jsonw.String s -> Some s | _ -> None
