(** Simulated kernel timing.

    Death rates (mutant kills per second, Sec. 5.2) need a clock. Each
    testing iteration is one kernel launch; its simulated duration is a
    standard occupancy model: a fixed host-side launch overhead, plus the
    workgroups executing in waves of [compute_units], each wave costing
    the workgroup spacing plus the per-thread work, inflated by memory
    stress ({!Profile.t.stress_slowdown}). *)

val workgroup_duration_ns :
  Profile.t -> threads_per_workgroup:int -> instrs_per_thread:int -> stress_intensity:float -> float
(** Duration of one workgroup's work: the per-thread instruction cost
    times the number of warp slots the workgroup occupies, stretched by
    stress. *)

val iteration_time_ns :
  Profile.t ->
  workgroups:int ->
  threads_per_workgroup:int ->
  instrs_per_thread:int ->
  stress_intensity:float ->
  float
(** Simulated duration of one testing iteration (one kernel launch). *)

val to_seconds : float -> float
(** Nanoseconds to seconds. *)
