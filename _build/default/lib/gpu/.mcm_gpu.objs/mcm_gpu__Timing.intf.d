lib/gpu/timing.mli: Profile
