lib/gpu/instance.mli: Bug Mcm_litmus Mcm_util Profile
