lib/gpu/profile.mli: Format
