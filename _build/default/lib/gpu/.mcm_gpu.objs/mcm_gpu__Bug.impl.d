lib/gpu/bug.ml: List Printf Profile
