lib/gpu/bug.mli: Profile
