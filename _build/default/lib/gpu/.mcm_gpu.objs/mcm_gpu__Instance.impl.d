lib/gpu/instance.ml: Array Bug Float Hashtbl List Mcm_litmus Mcm_util Profile
