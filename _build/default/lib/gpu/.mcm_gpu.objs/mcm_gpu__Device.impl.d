lib/gpu/device.ml: Bug List Profile
