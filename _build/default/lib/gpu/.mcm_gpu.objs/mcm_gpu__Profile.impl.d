lib/gpu/profile.ml: Float Format List String
