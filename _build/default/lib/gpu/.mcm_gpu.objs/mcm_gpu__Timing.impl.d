lib/gpu/timing.ml: Float Mcm_util Profile
