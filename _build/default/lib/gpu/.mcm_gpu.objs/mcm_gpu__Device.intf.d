lib/gpu/device.mli: Bug Profile
