let warp_width = 32

let workgroup_duration_ns (p : Profile.t) ~threads_per_workgroup ~instrs_per_thread ~stress_intensity =
  let warp_slots = Mcm_util.Numbers.ceil_div threads_per_workgroup warp_width in
  let work = float_of_int (instrs_per_thread * warp_slots) *. p.Profile.instr_latency_ns in
  work *. (1. +. (p.Profile.stress_slowdown *. Float.max 0. (Float.min 1. stress_intensity)))

let iteration_time_ns (p : Profile.t) ~workgroups ~threads_per_workgroup ~instrs_per_thread
    ~stress_intensity =
  let waves = max 1 (Mcm_util.Numbers.ceil_div workgroups p.Profile.compute_units) in
  let wg = workgroup_duration_ns p ~threads_per_workgroup ~instrs_per_thread ~stress_intensity in
  p.Profile.kernel_launch_overhead_ns
  +. (float_of_int waves *. (p.Profile.workgroup_spacing_ns +. wg))

let to_seconds ns = ns *. 1e-9
