(** Simulated GPU device profiles.

    The paper evaluates four physical GPUs (Tab. 3). This reproduction has
    no hardware, so each device is a {e profile}: the identity data of
    Tab. 3 plus the parameters of an operational timing/weak-memory model
    (see {!Instance}) and per-vendor {e response curves} describing how
    occupancy and synthetic stress amplify weak behaviour. The response
    curves are calibrated to the paper's qualitative findings:

    - fine-grained interleaving is observable without stress on only one
      device (Intel, Sec. 3.1);
    - single-instance testing cannot expose weakening-[po-loc] behaviour
      on NVIDIA and M1 (Sec. 5.2.2) — weakness there needs occupancy;
    - stress barely helps PTE on NVIDIA, helps on Intel/AMD, and on M1
      raises scores while lowering rates because it slows the kernel;
    - discrete cards run faster overall, giving NVIDIA its very high
      death rates.

    Simulated time is tracked in nanoseconds. *)

type vendor = Nvidia | Amd | Intel | M1

type t = {
  vendor : vendor;
  chip : string;  (** marketing name, per Tab. 3 *)
  short_name : string;  (** the name used in figures: NVIDIA, AMD, Intel, M1 *)
  compute_units : int;  (** CU count, per Tab. 3 *)
  integrated : bool;
  max_threads_per_workgroup : int;
  (* Timing model *)
  instr_latency_ns : float;  (** cost of one atomic access *)
  workgroup_spacing_ns : float;
      (** time between successive workgroup-wave launches; within a wave,
          workgroups start almost together *)
  start_jitter_ns : float;  (** scale of random per-thread start skew *)
  kernel_launch_overhead_ns : float;  (** fixed host-side cost per iteration *)
  (* Weak-memory propensities (per instruction, before amplification) *)
  ooo_base : float;  (** probability an adjacent independent pair reorders *)
  vis_delay_base_ns : float;  (** mean extra store-visibility delay *)
  stale_prob_base : float;  (** probability a load reads a stale snapshot *)
  stale_window_ns : float;  (** mean staleness window *)
  (* Response curves *)
  occupancy_half_instances : float;
      (** test-instance count at which the occupancy amplifier reaches
          half of its maximum — lower means weak behaviour appears at low
          parallelism *)
  occupancy_gain : float;  (** maximum amplification from occupancy *)
  stress_gain : float;  (** maximum amplification from memory stress *)
  stress_slowdown : float;
      (** multiplier on kernel time per unit of stress intensity *)
  stress_jitter_gain : float;
      (** how much stress increases start-time jitter (helps interleaving) *)
}

val nvidia : t
val amd : t
val intel : t
val m1 : t

val all : t list
(** The four study devices, in the paper's order: NVIDIA, AMD, Intel, M1. *)

val find : string -> t option
(** Case-insensitive lookup by [short_name]. *)

val occupancy_amplifier : t -> instances:int -> float
(** [occupancy_amplifier p ~instances] is the saturating amplification of
    weak behaviour contributed by running [instances] concurrent test
    instances: [occupancy_gain · (1 - exp (-instances / half))],
    normalised so one instance on a forgiving device contributes little. *)

val stress_amplifier : t -> intensity:float -> float
(** [stress_amplifier p ~intensity] is the amplification contributed by
    memory-stress intensity in [\[0, 1\]]: [stress_gain · intensity]. *)

val table3 : unit -> (string * string * int * string) list
(** Rows of Tab. 3: vendor, chip, CUs, type (Discrete/Integrated). *)

val pp : Format.formatter -> t -> unit
