(** A simulated device: a profile plus any injected bugs.

    This is the object testing environments run against. A correct device
    is a bare profile; the Table 4 correlation study and the bug-hunt
    example attach {!Bug.paper_bug} injections. *)

type t = {
  profile : Profile.t;
  bugs : Bug.t list;
}

val make : ?bugs:Bug.t list -> Profile.t -> t
(** [make profile] is a correct device; add [~bugs] for a buggy one. *)

val effect : t -> Bug.effect
(** The folded per-instance bug effect. *)

val name : t -> string
(** The profile's short name, suffixed with ["+bugs"] when injections are
    present. *)

val all_correct : unit -> t list
(** The four study devices (Tab. 3), bug-free. *)

val with_paper_bugs : unit -> t list
(** The four study devices, each carrying the bug the paper associates
    with its vendor (M1 remains correct). *)
