type t = { profile : Profile.t; bugs : Bug.t list }

let make ?(bugs = []) profile = { profile; bugs }

let effect d = Bug.effect_of d.bugs

let name d =
  if d.bugs = [] then d.profile.Profile.short_name else d.profile.Profile.short_name ^ "+bugs"

let all_correct () = List.map make Profile.all

let with_paper_bugs () =
  List.map
    (fun p -> match Bug.paper_bug p with None -> make p | Some b -> make ~bugs:[ b ] p)
    Profile.all
