type vendor = Nvidia | Amd | Intel | M1

type t = {
  vendor : vendor;
  chip : string;
  short_name : string;
  compute_units : int;
  integrated : bool;
  max_threads_per_workgroup : int;
  instr_latency_ns : float;
  workgroup_spacing_ns : float;
  start_jitter_ns : float;
  kernel_launch_overhead_ns : float;
  ooo_base : float;
  vis_delay_base_ns : float;
  stale_prob_base : float;
  stale_window_ns : float;
  occupancy_half_instances : float;
  occupancy_gain : float;
  stress_gain : float;
  stress_slowdown : float;
  stress_jitter_gain : float;
}

(* Calibration notes (Sec. 5.2 shapes):
   - NVIDIA: discrete and fast (low latency, low launch overhead), the
     highest death rates; weak behaviour and interleaving need very high
     occupancy (large occupancy_half), and stress adds almost nothing.
   - AMD: discrete, mid rates; both occupancy and stress help.
   - Intel: integrated and slow; the one device where fine-grained
     interleaving shows without stress (tiny workgroup spacing and
     jitter); stress is very effective, letting single-instance
     environments compete with parallel ones.
   - M1: integrated; weakness only at very high occupancy, and stress
     helps scores but slows kernels markedly (rates drop). *)

let nvidia =
  {
    vendor = Nvidia;
    chip = "GeForce RTX 2080";
    short_name = "NVIDIA";
    compute_units = 64;
    integrated = false;
    max_threads_per_workgroup = 256;
    instr_latency_ns = 4.;
    workgroup_spacing_ns = 900.;
    start_jitter_ns = 3_000.;
    kernel_launch_overhead_ns = 150_000.;
    ooo_base = 0.004;
    vis_delay_base_ns = 0.5;
    stale_prob_base = 0.004;
    stale_window_ns = 1.0;
    occupancy_half_instances = 420.;
    occupancy_gain = 34.;
    stress_gain = 0.9;
    stress_slowdown = 0.55;
    stress_jitter_gain = 0.35;
  }

let amd =
  {
    vendor = Amd;
    chip = "Radeon Pro 5500M";
    short_name = "AMD";
    compute_units = 24;
    integrated = false;
    max_threads_per_workgroup = 256;
    instr_latency_ns = 7.;
    workgroup_spacing_ns = 1_300.;
    start_jitter_ns = 2_000.;
    kernel_launch_overhead_ns = 700_000.;
    ooo_base = 0.006;
    vis_delay_base_ns = 1.0;
    stale_prob_base = 0.006;
    stale_window_ns = 8.;
    occupancy_half_instances = 150.;
    occupancy_gain = 12.;
    stress_gain = 20.;
    stress_slowdown = 0.8;
    stress_jitter_gain = 0.8;
  }

let intel =
  {
    vendor = Intel;
    chip = "Iris Plus Graphics";
    short_name = "Intel";
    compute_units = 48;
    integrated = true;
    max_threads_per_workgroup = 256;
    instr_latency_ns = 14.;
    workgroup_spacing_ns = 260.;
    start_jitter_ns = 150.;
    kernel_launch_overhead_ns = 3_000_000.;
    ooo_base = 0.008;
    vis_delay_base_ns = 1.4;
    stale_prob_base = 0.008;
    stale_window_ns = 12.;
    occupancy_half_instances = 60.;
    occupancy_gain = 6.;
    stress_gain = 25.;
    stress_slowdown = 1.1;
    stress_jitter_gain = 1.6;
  }

let m1 =
  {
    vendor = M1;
    chip = "M1";
    short_name = "M1";
    compute_units = 128;
    integrated = true;
    max_threads_per_workgroup = 256;
    instr_latency_ns = 9.;
    workgroup_spacing_ns = 1_700.;
    start_jitter_ns = 4_000.;
    kernel_launch_overhead_ns = 2_000_000.;
    ooo_base = 0.003;
    vis_delay_base_ns = 0.35;
    stale_prob_base = 0.003;
    stale_window_ns = 2.;
    occupancy_half_instances = 900.;
    occupancy_gain = 18.;
    stress_gain = 8.;
    stress_slowdown = 3.2;
    stress_jitter_gain = 0.9;
  }

let all = [ nvidia; amd; intel; m1 ]

let find name =
  let lower = String.lowercase_ascii name in
  List.find_opt (fun p -> String.lowercase_ascii p.short_name = lower) all

let occupancy_amplifier p ~instances =
  if instances <= 0 then 0.
  else p.occupancy_gain *. (1. -. exp (-.float_of_int instances /. p.occupancy_half_instances))

let stress_amplifier p ~intensity =
  let intensity = Float.max 0. (Float.min 1. intensity) in
  p.stress_gain *. intensity

let vendor_name = function Nvidia -> "NVIDIA" | Amd -> "AMD" | Intel -> "Intel" | M1 -> "Apple"

let table3 () =
  List.map
    (fun p ->
      (vendor_name p.vendor, p.chip, p.compute_units, if p.integrated then "Integrated" else "Discrete"))
    all

let pp fmt p =
  Format.fprintf fmt "%s (%s, %d CUs, %s)" p.short_name p.chip p.compute_units
    (if p.integrated then "integrated" else "discrete")
