type evset = All | Reads | Writes | Rmws | Fences

type rel_expr =
  | Po
  | Po_loc
  | Rf
  | Co
  | Fr
  | Com
  | Sw
  | Empty
  | Union of rel_expr * rel_expr
  | Inter of rel_expr * rel_expr
  | Diff of rel_expr * rel_expr
  | Seq of rel_expr * rel_expr
  | Inverse of rel_expr
  | Closure of rel_expr
  | Internal of rel_expr
  | External of rel_expr
  | Restrict of evset * rel_expr * evset

type axiom =
  | Acyclic of string * rel_expr
  | Irreflexive of string * rel_expr
  | Empty_rel of string * rel_expr

type t = { name : string; axioms : axiom list }

let in_set events set i =
  let e = events.(i) in
  match set with
  | All -> true
  | Reads -> Event.is_read e
  | Writes -> Event.is_write e
  | Rmws -> Event.is_rmw e
  | Fences -> Event.is_fence e

let diff r s = Relation.restrict r (fun a b -> not (Relation.mem s a b))

let rec eval_with rels (x : Execution.t) = function
  | Po -> rels.Execution.po
  | Po_loc -> rels.Execution.po_loc
  | Rf -> rels.Execution.rf
  | Co -> rels.Execution.co
  | Fr -> rels.Execution.fr
  | Com -> rels.Execution.com
  | Sw -> rels.Execution.sw
  | Empty -> Relation.empty (Array.length x.Execution.events)
  | Union (a, b) -> Relation.union (eval_with rels x a) (eval_with rels x b)
  | Inter (a, b) -> Relation.inter (eval_with rels x a) (eval_with rels x b)
  | Diff (a, b) -> diff (eval_with rels x a) (eval_with rels x b)
  | Seq (a, b) -> Relation.compose (eval_with rels x a) (eval_with rels x b)
  | Inverse a -> Relation.inverse (eval_with rels x a)
  | Closure a -> Relation.transitive_closure (eval_with rels x a)
  | Internal a ->
      Relation.restrict (eval_with rels x a) (fun i j ->
          x.Execution.events.(i).Event.tid = x.Execution.events.(j).Event.tid)
  | External a ->
      Relation.restrict (eval_with rels x a) (fun i j ->
          x.Execution.events.(i).Event.tid <> x.Execution.events.(j).Event.tid)
  | Restrict (d, a, g) ->
      Relation.restrict (eval_with rels x a) (fun i j ->
          in_set x.Execution.events d i && in_set x.Execution.events g j)

let eval expr x = eval_with (Execution.relations x) x expr

let check_axiom rels x = function
  | Acyclic (_, e) -> Relation.is_acyclic (eval_with rels x e)
  | Irreflexive (_, e) ->
      let r = eval_with rels x e in
      let ok = ref true in
      for i = 0 to Relation.size r - 1 do
        if Relation.mem r i i then ok := false
      done;
      !ok
  | Empty_rel (_, e) -> Relation.cardinal (eval_with rels x e) = 0

let axiom_name = function Acyclic (n, _) | Irreflexive (n, _) | Empty_rel (n, _) -> n

let failing_axiom m x =
  if not (Model.rmw_atomic x) then Some "atomicity"
  else begin
    let rels = Execution.relations x in
    let rec first = function
      | [] -> None
      | ax :: rest -> if check_axiom rels x ax then first rest else Some (axiom_name ax)
    in
    first m.axioms
  end

let consistent m x = failing_axiom m x = None

let sc = { name = "SC"; axioms = [ Acyclic ("sc", Union (Po, Com)) ] }

let sc_per_location =
  { name = "SC-per-loc"; axioms = [ Acyclic ("coherence", Union (Po_loc, Com)) ] }

let relacq =
  {
    name = "rel-acq-SC-per-loc";
    axioms = [ Acyclic ("coherence-relacq", Union (Po_loc, Union (Com, Seq (Po, Seq (Sw, Po))))) ];
  }

(* x86-TSO: preserved program order is po without write-to-read pairs;
   an mfence (our only fence, read as mfence here) restores it. Global
   happens-before uses only external reads-from (store forwarding makes
   internal rf unordered). *)
let tso =
  let ppo = Diff (Po, Restrict (Writes, Po, Reads)) in
  let fence_order = Seq (Restrict (All, Po, Fences), Restrict (Fences, Po, All)) in
  let ghb = Union (ppo, Union (fence_order, Union (External Rf, Union (Co, Fr)))) in
  {
    name = "TSO";
    axioms = [ Acyclic ("coherence", Union (Po_loc, Com)); Acyclic ("ghb", ghb) ];
  }

let all = [ sc; tso; relacq; sc_per_location ]

let find name =
  let lower = String.lowercase_ascii name in
  List.find_opt (fun m -> String.lowercase_ascii m.name = lower) all

let of_model = function
  | Model.Sc -> sc
  | Model.Sc_per_location -> sc_per_location
  | Model.Relacq_sc_per_location -> relacq

let evset_name = function
  | All -> "_"
  | Reads -> "R"
  | Writes -> "W"
  | Rmws -> "RMW"
  | Fences -> "F"

(* Parenthesise by a rough precedence: closure/inverse bind tightest,
   then seq, then inter/diff, then union. *)
let rec expr_to_string = function
  | Po -> "po"
  | Po_loc -> "po-loc"
  | Rf -> "rf"
  | Co -> "co"
  | Fr -> "fr"
  | Com -> "com"
  | Sw -> "sw"
  | Empty -> "0"
  | Union (a, b) -> Printf.sprintf "%s | %s" (expr_to_string a) (expr_to_string b)
  | Inter (a, b) -> Printf.sprintf "%s & %s" (atom a) (atom b)
  | Diff (a, b) -> Printf.sprintf "%s \\ %s" (atom a) (atom b)
  | Seq (a, b) -> Printf.sprintf "%s;%s" (atom a) (atom b)
  | Inverse a -> Printf.sprintf "%s^-1" (atom a)
  | Closure a -> Printf.sprintf "%s+" (atom a)
  | Internal a -> Printf.sprintf "int(%s)" (expr_to_string a)
  | External a -> Printf.sprintf "ext(%s)" (expr_to_string a)
  | Restrict (d, a, g) -> Printf.sprintf "[%s];%s;[%s]" (evset_name d) (atom a) (evset_name g)

and atom e =
  match e with
  | Po | Po_loc | Rf | Co | Fr | Com | Sw | Empty | Inverse _ | Closure _ | Internal _
  | External _ ->
      expr_to_string e
  | Union _ | Inter _ | Diff _ | Seq _ | Restrict _ -> "(" ^ expr_to_string e ^ ")"

let pp fmt m =
  Format.fprintf fmt "@[<v>model %s@," m.name;
  List.iter
    (fun ax ->
      match ax with
      | Acyclic (n, e) -> Format.fprintf fmt "  acyclic %s as %s@," (expr_to_string e) n
      | Irreflexive (n, e) -> Format.fprintf fmt "  irreflexive %s as %s@," (expr_to_string e) n
      | Empty_rel (n, e) -> Format.fprintf fmt "  empty %s as %s@," (expr_to_string e) n)
    m.axioms;
  Format.fprintf fmt "  (plus RMW atomicity)@]"
