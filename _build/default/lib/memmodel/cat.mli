(** Parameterized axiomatic memory models, in the style of the "herding
    cats" framework the paper builds its formalism on (Sec. 2.1 cites
    Alglave et al.'s parameterized models).

    A model is a set of named axioms over relation expressions; a
    relation expression combines the base relations of Tab. 1 with the
    usual algebra (union, intersection, difference, sequencing,
    inverse, transitive closure, internal/external restriction, and
    restriction by event kind). {!consistent} evaluates all axioms over
    a candidate execution, always together with RMW atomicity.

    The predefined models {!sc}, {!sc_per_location} and {!relacq} are
    definitionally equivalent to the direct implementations in {!Model}
    (the test suite checks extensional equality over candidate spaces);
    {!tso} adds the x86-TSO model used by the paper's Sec. 3.4
    discussion of pruning mutants that an implementation cannot
    exhibit. *)

(** Event-kind sets for domain/range restriction. *)
type evset = All | Reads | Writes | Rmws | Fences

(** Relation expressions over one candidate execution. *)
type rel_expr =
  | Po  (** program order *)
  | Po_loc  (** program order restricted to one location *)
  | Rf  (** reads-from *)
  | Co  (** coherence *)
  | Fr  (** from-read *)
  | Com  (** [rf ∪ co ∪ fr] *)
  | Sw  (** synchronizes-with over fences *)
  | Empty
  | Union of rel_expr * rel_expr
  | Inter of rel_expr * rel_expr
  | Diff of rel_expr * rel_expr
  | Seq of rel_expr * rel_expr  (** relational composition [;] *)
  | Inverse of rel_expr
  | Closure of rel_expr  (** transitive closure [+] *)
  | Internal of rel_expr  (** restricted to same-thread pairs *)
  | External of rel_expr  (** restricted to cross-thread pairs *)
  | Restrict of evset * rel_expr * evset
      (** [Restrict (d, r, g)] keeps pairs whose source is in [d] and
          target in [g] — CAT's [\[d\]; r; \[g\]] *)

type axiom =
  | Acyclic of string * rel_expr  (** named acyclicity requirement *)
  | Irreflexive of string * rel_expr
  | Empty_rel of string * rel_expr  (** the relation must be empty *)

type t = {
  name : string;
  axioms : axiom list;
}

val eval : rel_expr -> Execution.t -> Relation.t
(** [eval e x] computes the expression over [x]'s derived relations. *)

val consistent : t -> Execution.t -> bool
(** [consistent m x] checks every axiom of [m] plus RMW atomicity. *)

val failing_axiom : t -> Execution.t -> string option
(** [failing_axiom m x] names the first violated axiom (["atomicity"]
    for an RMW atomicity failure), or [None] when consistent. *)

val sc : t
(** [acyclic (po ∪ com)] — {!Model.Sc}. *)

val sc_per_location : t
(** [acyclic (po-loc ∪ com)] — {!Model.Sc_per_location}. *)

val relacq : t
(** [acyclic (po-loc ∪ com ∪ po;sw;po)] — {!Model.Relacq_sc_per_location}. *)

val tso : t
(** x86-TSO (Owens et al., cited by the paper): SC-per-location plus
    [acyclic (ppo ∪ mfence-order ∪ rfe ∪ co ∪ fr)] where [ppo] is
    program order without write-to-read pairs and fences restore the
    dropped order. Allows store buffering; forbids MP, LB and IRIW
    weaknesses. *)

val all : t list

val find : string -> t option
(** Case-insensitive lookup by model name, e.g. ["tso"]. *)

val of_model : Model.t -> t
(** The CAT formulation of a direct {!Model.t}. *)

val expr_to_string : rel_expr -> string
(** CAT-style rendering, e.g. ["po \\ [W];po;[R]"] for TSO's ppo. *)

val pp : Format.formatter -> t -> unit
(** Prints the model's name and each axiom with its expression. *)
