(** Finite binary relations over event identifiers.

    Candidate executions of litmus tests are tiny (≤ 16 events), so
    relations are dense boolean matrices. This gives O(n³) transitive
    closure and trivially correct set algebra, which is what the MCS
    axioms (acyclicity of unions/compositions of relations) need. *)

type t
(** An immutable relation over the carrier [\[0, size)] — operations never
    mutate their arguments. *)

val empty : int -> t
(** [empty n] is the empty relation over [n] elements.
    @raise Invalid_argument if [n < 0]. *)

val size : t -> int
(** [size r] is the carrier size [r] was created with. *)

val of_list : int -> (int * int) list -> t
(** [of_list n pairs] is the relation containing exactly [pairs].
    @raise Invalid_argument if any index is outside [\[0, n)]. *)

val to_list : t -> (int * int) list
(** [to_list r] lists the pairs of [r] in lexicographic order. *)

val mem : t -> int -> int -> bool
(** [mem r a b] tests whether [a → b] is in [r]. *)

val add : t -> int -> int -> t
(** [add r a b] is [r] with the pair [a → b]. *)

val cardinal : t -> int
(** [cardinal r] is the number of pairs. *)

val union : t -> t -> t
(** [union r s] is [r ∪ s]. Carriers must match. *)

val inter : t -> t -> t
(** [inter r s] is [r ∩ s]. Carriers must match. *)

val compose : t -> t -> t
(** [compose r s] is the relational composition [r ; s]:
    [a → c] iff [∃ b. a →r b ∧ b →s c]. *)

val inverse : t -> t
(** [inverse r] swaps every pair. *)

val restrict : t -> (int -> int -> bool) -> t
(** [restrict r keep] retains only the pairs for which [keep a b]. *)

val transitive_closure : t -> t
(** [transitive_closure r] is the least transitive relation containing
    [r] (Floyd–Warshall). *)

val is_acyclic : t -> bool
(** [is_acyclic r] holds when no element reaches itself through one or more
    steps of [r]. Irreflexive-and-transitive-closure test; a self-loop
    makes the relation cyclic. *)

val is_total_order_on : t -> int list -> bool
(** [is_total_order_on r elems] checks that [r] restricted to [elems] is a
    strict total order (irreflexive, transitive, and any two distinct
    elements comparable). *)

val find_cycle : t -> int list option
(** [find_cycle r] is [Some cycle] — a list of distinct elements
    [e0; e1; ...; ek] with [ei → e(i+1)] and [ek → e0] — when [r] is
    cyclic, [None] otherwise. Used to report the happens-before cycle that
    makes a candidate execution inconsistent. *)

val equal : t -> t -> bool
(** Structural equality of relations over equal carriers. *)

val subset : t -> t -> bool
(** [subset r s] tests [r ⊆ s]. *)

val pp : names:(int -> string) -> Format.formatter -> t -> unit
(** [pp ~names fmt r] prints the pairs using [names] for elements. *)
