lib/memmodel/relation.mli: Format
