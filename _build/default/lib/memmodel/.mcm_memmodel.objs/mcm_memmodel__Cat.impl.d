lib/memmodel/cat.ml: Array Event Execution Format List Model Printf Relation String
