lib/memmodel/model.mli: Execution Relation
