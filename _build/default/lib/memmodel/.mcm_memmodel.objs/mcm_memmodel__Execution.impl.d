lib/memmodel/execution.ml: Array Char Event Format Hashtbl List Printf Relation String
