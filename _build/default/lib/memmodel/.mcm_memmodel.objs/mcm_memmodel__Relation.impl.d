lib/memmodel/relation.ml: Array Format List
