lib/memmodel/model.ml: Array Event Execution List Relation String
