lib/memmodel/event.mli: Format
