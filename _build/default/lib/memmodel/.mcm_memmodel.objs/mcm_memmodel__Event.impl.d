lib/memmodel/event.ml: Format Printf
