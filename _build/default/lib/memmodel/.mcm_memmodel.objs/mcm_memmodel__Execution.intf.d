lib/memmodel/execution.mli: Event Format Relation
