lib/memmodel/cat.mli: Execution Format Model Relation
