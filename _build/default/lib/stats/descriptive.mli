(** Descriptive statistics over float arrays. *)

val mean : float array -> float
(** Arithmetic mean; [nan] on an empty array. *)

val variance : float array -> float
(** Population variance; [nan] on an empty array. *)

val stddev : float array -> float
(** Population standard deviation. *)

val minimum : float array -> float
val maximum : float array -> float

val geometric_mean : float array -> float
(** Geometric mean of positive values; zeros and negatives are skipped;
    [nan] when nothing remains. *)

val median : float array -> float
(** Median (average of middle pair for even lengths); [nan] on empty. *)
