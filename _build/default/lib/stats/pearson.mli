(** Pearson correlation and its significance test (Sec. 5.4, Tab. 4).

    The paper validates MC Mutants by correlating, across random testing
    environments, a mutant's death rate with the rate at which a real bug
    is observed — reporting the Pearson Correlation Coefficient and the
    Student's t-test probability that such a correlation arises by
    chance. *)

val pcc : float array -> float array -> float
(** [pcc xs ys] is the Pearson correlation coefficient of the paired
    samples, in [\[-1, 1\]]. Returns [nan] when lengths differ, fewer
    than two points are given, or either sample has zero variance. *)

val t_statistic : r:float -> n:int -> float
(** [t_statistic ~r ~n] is [r·sqrt((n-2) / (1-r²))], the test statistic
    for the null hypothesis of zero correlation over [n] pairs. *)

val p_value : r:float -> n:int -> float
(** [p_value ~r ~n] is the two-sided probability, under the null
    hypothesis, of a correlation at least as extreme as [r] — computed
    from the Student's t distribution with [n-2] degrees of freedom via
    the regularised incomplete beta function. [nan] when [n < 3] or [r]
    is not finite; [0.] when [|r| = 1]. *)

val incomplete_beta : a:float -> b:float -> x:float -> float
(** The regularised incomplete beta function [I_x(a, b)], evaluated by
    continued fraction (Lentz's algorithm) — exposed for testing. *)
