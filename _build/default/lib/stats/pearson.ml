let pcc xs ys =
  let n = Array.length xs in
  if n <> Array.length ys || n < 2 then Float.nan
  else begin
    let mx = Descriptive.mean xs and my = Descriptive.mean ys in
    let sxy = ref 0. and sxx = ref 0. and syy = ref 0. in
    for i = 0 to n - 1 do
      let dx = xs.(i) -. mx and dy = ys.(i) -. my in
      sxy := !sxy +. (dx *. dy);
      sxx := !sxx +. (dx *. dx);
      syy := !syy +. (dy *. dy)
    done;
    if !sxx = 0. || !syy = 0. then Float.nan else !sxy /. sqrt (!sxx *. !syy)
  end

let t_statistic ~r ~n =
  let df = float_of_int (n - 2) in
  r *. sqrt (df /. (1. -. (r *. r)))

(* Log-gamma via the Lanczos approximation (g = 7, 9 coefficients). *)
let lanczos =
  [|
    0.99999999999980993; 676.5203681218851; -1259.1392167224028; 771.32342877765313;
    -176.61502916214059; 12.507343278686905; -0.13857109526572012; 9.9843695780195716e-6;
    1.5056327351493116e-7;
  |]

let rec lgamma z =
  if z < 0.5 then log (Float.pi /. sin (Float.pi *. z)) -. lgamma (1. -. z)
  else begin
    let z = z -. 1. in
    let acc = ref lanczos.(0) in
    for i = 1 to 8 do
      acc := !acc +. (lanczos.(i) /. (z +. float_of_int i))
    done;
    let t = z +. 7.5 in
    (0.5 *. log (2. *. Float.pi)) +. ((z +. 0.5) *. log t) -. t +. log !acc
  end

(* Regularised incomplete beta by the continued fraction of Numerical
   Recipes (Lentz's method), with the symmetry transformation for
   convergence. *)
let rec incomplete_beta ~a ~b ~x =
  if x <= 0. then 0.
  else if x >= 1. then 1.
  else if x > (a +. 1.) /. (a +. b +. 2.) then 1. -. incomplete_beta ~a:b ~b:a ~x:(1. -. x)
  else begin
    let log_beta = lgamma a +. lgamma b -. lgamma (a +. b) in
    let front = exp ((a *. log x) +. (b *. log (1. -. x)) -. log_beta) /. a in
    (* Lentz's algorithm, as in Numerical Recipes' betacf. *)
    let tiny = 1e-30 in
    let qab = a +. b and qap = a +. 1. and qam = a -. 1. in
    let c = ref 1. in
    let d = ref (1. -. (qab *. x /. qap)) in
    if abs_float !d < tiny then d := tiny;
    d := 1. /. !d;
    let h = ref !d in
    let step numerator =
      d := 1. +. (numerator *. !d);
      if abs_float !d < tiny then d := tiny;
      d := 1. /. !d;
      c := 1. +. (numerator /. !c);
      if abs_float !c < tiny then c := tiny;
      let delta = !d *. !c in
      h := !h *. delta;
      delta
    in
    (try
       for m = 1 to 200 do
         let fm = float_of_int m in
         let m2 = 2. *. fm in
         ignore (step (fm *. (b -. fm) *. x /. ((qam +. m2) *. (a +. m2))));
         let delta = step (-.(a +. fm) *. (qab +. fm) *. x /. ((a +. m2) *. (qap +. m2))) in
         if abs_float (delta -. 1.) < 1e-12 then raise Exit
       done
     with Exit -> ());
    front *. !h
  end

let p_value ~r ~n =
  if n < 3 || not (Float.is_finite r) then Float.nan
  else if abs_float r >= 1. then 0.
  else
    let df = float_of_int (n - 2) in
    let t = t_statistic ~r ~n in
    (* Two-sided p-value from the t CDF: P(|T| > t) = I_{df/(df+t²)}(df/2, 1/2). *)
    incomplete_beta ~a:(df /. 2.) ~b:0.5 ~x:(df /. (df +. (t *. t)))
