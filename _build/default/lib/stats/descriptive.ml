let mean a =
  let n = Array.length a in
  if n = 0 then Float.nan else Array.fold_left ( +. ) 0. a /. float_of_int n

let variance a =
  let n = Array.length a in
  if n = 0 then Float.nan
  else
    let m = mean a in
    Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. a /. float_of_int n

let stddev a = sqrt (variance a)

let minimum a = Array.fold_left Float.min Float.infinity a
let maximum a = Array.fold_left Float.max Float.neg_infinity a

let geometric_mean a =
  let logs = Array.to_list a |> List.filter (fun x -> x > 0.) |> List.map log in
  match logs with
  | [] -> Float.nan
  | _ -> exp (List.fold_left ( +. ) 0. logs /. float_of_int (List.length logs))

let median a =
  let n = Array.length a in
  if n = 0 then Float.nan
  else begin
    let sorted = Array.copy a in
    Array.sort compare sorted;
    if n mod 2 = 1 then sorted.(n / 2) else (sorted.((n / 2) - 1) +. sorted.(n / 2)) /. 2.
  end
