lib/stats/pearson.mli:
