lib/stats/descriptive.mli:
