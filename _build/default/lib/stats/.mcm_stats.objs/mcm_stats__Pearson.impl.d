lib/stats/pearson.ml: Array Descriptive Float
