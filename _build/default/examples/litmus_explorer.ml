(* Litmus explorer: walk the classic tests through the axiomatic
   machinery. For each test this prints the candidate-execution counts,
   the outcomes each memory model allows, and — when the target is
   forbidden — the happens-before cycle that forbids it. It is the
   textbook Sec. 2 of the paper, executable.

   Run with: dune exec examples/litmus_explorer.exe *)

module Model = Mcm_memmodel.Model
module Litmus = Mcm_litmus.Litmus
module Library = Mcm_litmus.Library
module Enumerate = Mcm_litmus.Enumerate
module Table = Mcm_util.Table

let explore test =
  Printf.printf "%s\n%s\n" (String.make 72 '=') (Litmus.to_string test);
  let total, consistent = Enumerate.count_candidates test in
  Printf.printf "candidates: %d total, %d consistent under %s\n" total consistent
    (Model.name test.Litmus.model);
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Left ]
      [ "Model"; "Allowed outcomes"; "Target allowed?"; "Forbidding cycle" ]
  in
  List.iter
    (fun m ->
      let outcomes = Enumerate.consistent_outcomes m test in
      let allowed = Enumerate.target_allowed m test in
      let cycle =
        if allowed then ""
        else match Enumerate.forbidden_cycle { test with Litmus.model = m } with
          | Some c -> c
          | None -> "(target unreachable)"
      in
      Table.add_row t
        [ Model.name m; string_of_int (List.length outcomes); string_of_bool allowed; cycle ])
    Model.all;
  Table.print t;
  print_newline ()

let () =
  (* The two headline tests of Fig. 1 ... *)
  explore Library.corr;
  explore Library.mp_relacq;
  (* ... the classic weak-memory shapes the mutators reconstruct ... *)
  List.iter explore [ Library.mp; Library.lb; Library.sb; Library.s; Library.r; Library.two_plus_two_w ];
  (* ... and the coherence shape behind the Kepler bug. *)
  explore Library.mp_co;
  (* Show every allowed outcome of MP under each model, the worked
     example of Sec. 2.2. *)
  print_endline "MP: allowed outcomes per model";
  List.iter
    (fun m ->
      Printf.printf "  %s:\n" (Model.name m);
      List.iter
        (fun o -> Printf.printf "    %s\n" (Litmus.outcome_to_string o))
        (Enumerate.consistent_outcomes m Library.mp))
    Model.all
