examples/tuning_study.ml: List Mcm_core Mcm_gpu Mcm_litmus Mcm_testenv Mcm_util Option Printf
