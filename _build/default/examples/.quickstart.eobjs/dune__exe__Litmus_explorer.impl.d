examples/litmus_explorer.ml: List Mcm_litmus Mcm_memmodel Mcm_util Printf String
