examples/bug_hunt.ml: Float Format Hashtbl List Mcm_core Mcm_gpu Mcm_litmus Mcm_testenv Mcm_util Option Printf String
