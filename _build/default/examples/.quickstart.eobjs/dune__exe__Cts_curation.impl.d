examples/cts_curation.ml: List Mcm_core Mcm_gpu Mcm_harness Mcm_litmus Mcm_util Printf
