examples/cts_curation.mli:
