examples/quickstart.mli:
