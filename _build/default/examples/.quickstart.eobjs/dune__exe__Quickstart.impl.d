examples/quickstart.ml: Array Mcm_core Mcm_gpu Mcm_litmus Mcm_memmodel Mcm_testenv Printf
