test/test_testenv.mli:
