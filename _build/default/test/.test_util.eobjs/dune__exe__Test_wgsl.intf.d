test/test_wgsl.mli:
