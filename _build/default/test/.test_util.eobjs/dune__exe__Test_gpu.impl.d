test/test_gpu.ml: Alcotest Array List Mcm_gpu Mcm_litmus Mcm_memmodel Mcm_util QCheck QCheck_alcotest
