test/test_memmodel.mli:
