test/test_harness.ml: Alcotest Array Filename Float Lazy List Mcm_core Mcm_gpu Mcm_harness Mcm_litmus Mcm_testenv Mcm_util Result String Sys
