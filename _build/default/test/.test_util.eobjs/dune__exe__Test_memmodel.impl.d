test/test_memmodel.ml: Alcotest Array Format List Mcm_memmodel Printf QCheck QCheck_alcotest Result String
