test/test_util.ml: Alcotest Array Float List Mcm_util Printf QCheck QCheck_alcotest Result String
