test/test_testenv.ml: Alcotest Array Float Format Hashtbl List Mcm_core Mcm_gpu Mcm_litmus Mcm_testenv Mcm_util Option QCheck QCheck_alcotest String
