test/test_core.ml: Alcotest Array Gen List Mcm_core Mcm_litmus Mcm_memmodel Option Printf QCheck QCheck_alcotest
