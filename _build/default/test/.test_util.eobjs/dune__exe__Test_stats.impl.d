test/test_stats.ml: Alcotest Array Float Gen List Mcm_stats QCheck QCheck_alcotest
