test/test_litmus.ml: Alcotest Array List Mcm_litmus Mcm_memmodel Printf Result String
