test/test_wgsl.ml: Alcotest Array List Mcm_core Mcm_litmus Mcm_testenv Mcm_wgsl Printf QCheck QCheck_alcotest Result String
