(* Tests for mcm_stats: descriptive statistics, the Pearson correlation
   coefficient, and the Student's t significance machinery (checked
   against externally computed reference values). *)

module D = Mcm_stats.Descriptive
module P = Mcm_stats.Pearson

let check = Alcotest.(check bool)
let checkf msg expected actual = Alcotest.(check (float 1e-6)) msg expected actual

(* -------------------------------------------------------------------- *)
(* Descriptive                                                            *)

let test_mean () =
  checkf "mean" 2.5 (D.mean [| 1.; 2.; 3.; 4. |]);
  check "empty is nan" true (Float.is_nan (D.mean [||]))

let test_variance_stddev () =
  checkf "variance" 1.25 (D.variance [| 1.; 2.; 3.; 4. |]);
  checkf "stddev" (sqrt 1.25) (D.stddev [| 1.; 2.; 3.; 4. |]);
  checkf "constant variance" 0. (D.variance [| 5.; 5.; 5. |])

let test_min_max () =
  checkf "min" (-1.) (D.minimum [| 3.; -1.; 2. |]);
  checkf "max" 3. (D.maximum [| 3.; -1.; 2. |])

let test_geometric_mean () =
  checkf "geomean" 2. (D.geometric_mean [| 1.; 2.; 4. |]);
  checkf "skips zeros" 2. (D.geometric_mean [| 0.; 1.; 2.; 4. |]);
  check "all non-positive is nan" true (Float.is_nan (D.geometric_mean [| 0.; -3. |]))

let test_median () =
  checkf "odd" 2. (D.median [| 3.; 1.; 2. |]);
  checkf "even" 2.5 (D.median [| 4.; 1.; 2.; 3. |]);
  check "empty is nan" true (Float.is_nan (D.median [||]))

(* -------------------------------------------------------------------- *)
(* Pearson                                                                *)

let test_pcc_perfect () =
  checkf "positive" 1. (P.pcc [| 1.; 2.; 3. |] [| 2.; 4.; 6. |]);
  checkf "negative" (-1.) (P.pcc [| 1.; 2.; 3. |] [| 3.; 2.; 1. |])

let test_pcc_known_value () =
  (* Reference value computed independently. *)
  let xs = [| 1.; 2.; 3.; 4.; 5. |] and ys = [| 2.; 1.; 4.; 3.; 5. |] in
  checkf "r = 0.8" 0.8 (P.pcc xs ys)

let test_pcc_degenerate () =
  check "length mismatch" true (Float.is_nan (P.pcc [| 1. |] [| 1.; 2. |]));
  check "too short" true (Float.is_nan (P.pcc [| 1. |] [| 1. |]));
  check "zero variance" true (Float.is_nan (P.pcc [| 1.; 1. |] [| 1.; 2. |]))

let test_incomplete_beta_reference () =
  (* Reference values: I_0.5(1,1)=0.5; I_0.25(2,3)=67/256; I_x(a,b)
     symmetry. *)
  checkf "uniform" 0.5 (P.incomplete_beta ~a:1. ~b:1. ~x:0.5);
  checkf "I_0.25(2,3)" (67. /. 256.) (P.incomplete_beta ~a:2. ~b:3. ~x:0.25);
  checkf "boundary 0" 0. (P.incomplete_beta ~a:2. ~b:2. ~x:0.);
  checkf "boundary 1" 1. (P.incomplete_beta ~a:2. ~b:2. ~x:1.);
  let a = 3.5 and b = 1.25 and x = 0.4 in
  checkf "symmetry" 1.
    (P.incomplete_beta ~a ~b ~x +. P.incomplete_beta ~a:b ~b:a ~x:(1. -. x))

let test_t_statistic () =
  checkf "r=0 gives t=0" 0. (P.t_statistic ~r:0. ~n:10);
  check "grows with r" true (P.t_statistic ~r:0.9 ~n:10 > P.t_statistic ~r:0.5 ~n:10)

let test_p_value_reference () =
  (* Two-sided p for r over n pairs; references from t tables:
     r=0.5, n=10 -> t=1.633, df=8 -> p ≈ 0.1411. *)
  check "r=0.5 n=10" true (abs_float (P.p_value ~r:0.5 ~n:10 -. 0.1411) < 2e-3);
  checkf "r=0 is 1" 1. (P.p_value ~r:0. ~n:10);
  checkf "|r|=1 is 0" 0. (P.p_value ~r:1. ~n:10);
  check "n<3 nan" true (Float.is_nan (P.p_value ~r:0.5 ~n:2));
  (* The paper's Sec. 5.4 claim: PCC > 0.89 over 150 environments has
     chance probability below 1e-8. *)
  check "paper significance" true (P.p_value ~r:0.893 ~n:150 < 1e-8)

let test_p_value_monotone_in_r () =
  let prev = ref 1.1 in
  List.iter
    (fun r ->
      let p = P.p_value ~r ~n:30 in
      check "decreasing in r" true (p <= !prev);
      prev := p)
    [ 0.; 0.2; 0.4; 0.6; 0.8; 0.95 ]

(* -------------------------------------------------------------------- *)
(* Properties                                                             *)

let finite_floats = QCheck.(list_of_size (Gen.int_range 2 40) (float_range (-1e6) 1e6))

let prop_pcc_bounded =
  QCheck.Test.make ~count:300 ~name:"pcc within [-1, 1]" (QCheck.pair finite_floats finite_floats)
    (fun (xs, ys) ->
      let n = min (List.length xs) (List.length ys) in
      QCheck.assume (n >= 2);
      let take l = Array.of_list (List.filteri (fun i _ -> i < n) l) in
      let r = P.pcc (take xs) (take ys) in
      Float.is_nan r || (r >= -1.0000001 && r <= 1.0000001))

let prop_pcc_symmetric =
  QCheck.Test.make ~count:300 ~name:"pcc is symmetric" (QCheck.pair finite_floats finite_floats)
    (fun (xs, ys) ->
      let n = min (List.length xs) (List.length ys) in
      QCheck.assume (n >= 2);
      let take l = Array.of_list (List.filteri (fun i _ -> i < n) l) in
      let a = P.pcc (take xs) (take ys) and b = P.pcc (take ys) (take xs) in
      (Float.is_nan a && Float.is_nan b) || abs_float (a -. b) < 1e-9)

let prop_pcc_affine_invariant =
  QCheck.Test.make ~count:300 ~name:"pcc invariant under positive affine maps" finite_floats
    (fun xs ->
      QCheck.assume (List.length xs >= 2);
      let a = Array.of_list xs in
      let b = Array.map (fun x -> (3. *. x) +. 7.) a in
      let r = P.pcc a b in
      Float.is_nan r || abs_float (r -. 1.) < 1e-6)

let prop_incomplete_beta_monotone =
  QCheck.Test.make ~count:300 ~name:"incomplete beta monotone in x"
    QCheck.(triple (float_range 0.5 10.) (float_range 0.5 10.) (pair (float_range 0. 1.) (float_range 0. 1.)))
    (fun (a, b, (x1, x2)) ->
      let lo = Float.min x1 x2 and hi = Float.max x1 x2 in
      P.incomplete_beta ~a ~b ~x:lo <= P.incomplete_beta ~a ~b ~x:hi +. 1e-9)

let prop_median_between_bounds =
  QCheck.Test.make ~count:300 ~name:"median within [min, max]" finite_floats (fun xs ->
      QCheck.assume (xs <> []);
      let a = Array.of_list xs in
      let m = D.median a in
      m >= D.minimum a -. 1e-9 && m <= D.maximum a +. 1e-9)

let () =
  Alcotest.run "stats"
    [
      ( "descriptive",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "variance/stddev" `Quick test_variance_stddev;
          Alcotest.test_case "min/max" `Quick test_min_max;
          Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
          Alcotest.test_case "median" `Quick test_median;
        ] );
      ( "pearson",
        [
          Alcotest.test_case "perfect correlation" `Quick test_pcc_perfect;
          Alcotest.test_case "known value" `Quick test_pcc_known_value;
          Alcotest.test_case "degenerate inputs" `Quick test_pcc_degenerate;
          Alcotest.test_case "incomplete beta references" `Quick test_incomplete_beta_reference;
          Alcotest.test_case "t statistic" `Quick test_t_statistic;
          Alcotest.test_case "p-value references" `Quick test_p_value_reference;
          Alcotest.test_case "p-value monotone" `Quick test_p_value_monotone_in_r;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_pcc_bounded; prop_pcc_symmetric; prop_pcc_affine_invariant;
            prop_incomplete_beta_monotone; prop_median_between_bounds;
          ] );
    ]
