(* CTS curation: the Sec. 4.2 story. A conformance test suite needs one
   testing environment per test, fixed at contribution time, effective on
   devices unknown in advance, within a time budget the CI system can
   afford. This example:

     1. tunes parallel environments over the four study devices,
     2. merges them per mutant with Algorithm 1 for a reproducibility
        target,
     3. sweeps the time budget to find the cheapest budget that keeps the
        mutation score at its plateau, and
     4. prints the resulting CTS proposal, including the total suite
        reproducibility (the .95^20 discussion).

   Run with: dune exec examples/cts_curation.exe *)

module Suite = Mcm_core.Suite
module Merge = Mcm_core.Merge
module Confidence = Mcm_core.Confidence
module Litmus = Mcm_litmus.Litmus
module Profile = Mcm_gpu.Profile
module Tuning = Mcm_harness.Tuning
module Experiments = Mcm_harness.Experiments
module Table = Mcm_util.Table

let target = 0.99999

let () =
  let config = Tuning.default_config () in
  let jobs = Mcm_util.Pool.default_domains () in
  Printf.printf "tuning %d parallel environments per category (scale %.3f, %d jobs)...\n%!"
    config.Tuning.n_envs config.Tuning.scale jobs;
  let runs = Tuning.sweep ~ctx:(Mcm_testenv.Request.context ~domains:jobs ()) config in

  (* Budget sweep: where does the PTE mutation score plateau? *)
  print_endline "\nmutation score vs per-test budget (PTE, merged with Alg. 1):";
  let plateau = Experiments.Fig6.score runs Tuning.Pte ~target ~budget:64. in
  let cheapest =
    List.fold_left
      (fun acc budget ->
        let score = Experiments.Fig6.score runs Tuning.Pte ~target ~budget in
        Printf.printf "  %8.4f s -> %s\n" budget (Table.pct_cell score);
        match acc with
        | Some _ -> acc
        | None -> if score >= plateau -. 1e-9 then Some budget else None)
      None Experiments.Fig6.budgets
  in
  let budget = match cheapest with Some b -> b | None -> 64. in
  Printf.printf "\nchosen per-test budget: %g s (plateau score %s)\n" budget
    (Table.pct_cell plateau);

  (* The per-test environment proposal. *)
  let devices = List.map (fun p -> p.Profile.short_name) Profile.all in
  let n_envs = List.length (Tuning.envs_for config Tuning.Pte) in
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      [ "Mutant"; "Env"; "Devices at ceiling"; "Min rate (/s)" ]
  in
  let reproducible = ref 0 in
  List.iter
    (fun (e : Suite.entry) ->
      let name = e.Suite.test.Litmus.name in
      let rate ~env ~device =
        Tuning.rate runs Tuning.Pte ~test:name ~device:(List.nth devices device) ~env_index:env
      in
      match Merge.choose ~rate ~n_envs ~n_devices:(List.length devices) ~target ~budget with
      | None -> Table.add_row t [ name; "-"; "0"; "0" ]
      | Some c ->
          if c.Merge.devices_at_ceiling = List.length devices then incr reproducible;
          Table.add_row t
            [
              name;
              string_of_int c.Merge.env;
              string_of_int c.Merge.devices_at_ceiling;
              Table.rate_cell c.Merge.min_positive_rate;
            ])
    (Suite.mutants ());
  print_newline ();
  Table.print t;

  let n_conf = List.length (Suite.conformance_tests ()) in
  Printf.printf "\n%d/%d mutants reproducible on all four devices\n" !reproducible
    (List.length (Suite.mutants ()));
  Printf.printf "CTS proposal: %d conformance tests x %g s = %g s of testing per run\n" n_conf
    budget
    (budget *. float_of_int n_conf);
  Printf.printf "per-test reproducibility %.5g%% -> whole-suite reproducibility %.4f%%\n"
    (100. *. target)
    (100. *. Confidence.total_reproducibility ~per_test:target ~tests:n_conf);
  Printf.printf "(for contrast, a 95%% per-test target gives only %.1f%% for the suite)\n"
    (100. *. Confidence.total_reproducibility ~per_test:0.95 ~tests:n_conf)
