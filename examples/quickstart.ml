(* Quickstart: author a litmus test, check it against a memory model by
   exhaustive enumeration, then hunt for its behaviour on a simulated GPU
   with a parallel testing environment (PTE).

   Run with: dune exec examples/quickstart.exe *)

module Instr = Mcm_litmus.Instr
module Litmus = Mcm_litmus.Litmus
module Model = Mcm_memmodel.Model
module Enumerate = Mcm_litmus.Enumerate
module Profile = Mcm_gpu.Profile
module Device = Mcm_gpu.Device
module Params = Mcm_testenv.Params
module Runner = Mcm_testenv.Runner
module Request = Mcm_testenv.Request
module Confidence = Mcm_core.Confidence

let () =
  (* 1. Author the CoRR litmus test of Fig. 1a: thread 0 loads x twice,
        thread 1 stores x := 1. The target behaviour — the first load sees
        the new value while the second sees the old — violates coherence. *)
  let corr =
    {
      Litmus.name = "my-CoRR";
      family = "quickstart";
      model = Model.Sc_per_location;
      threads =
        [|
          [ (Instr.load ~reg:0 ~loc:0 ()); (Instr.load ~reg:1 ~loc:0 ()) ];
          [ (Instr.store ~loc:0 ~value:1 ()) ];
        |];
      nlocs = 1;
      target = (fun o -> o.Litmus.regs.(0).(0) = 1 && o.Litmus.regs.(0).(1) = 0);
      target_desc = "r0 = 1 && r1 = 0";
    }
  in
  print_endline (Litmus.to_string corr);

  (* 2. Ask the axiomatic checker whether the target is ever allowed. *)
  Printf.printf "\nallowed under SC-per-location? %b\n"
    (Enumerate.target_allowed Model.Sc_per_location corr);
  (match Enumerate.forbidden_cycle corr with
  | Some cycle -> Printf.printf "forbidden happens-before cycle: %s\n" cycle
  | None -> ());

  (* 3. Mutate by hand: swap thread 0's loads. The same values are now
        allowed — they only need a fine-grained interleaving. *)
  let mutant =
    {
      corr with
      Litmus.name = "my-CoRR-mutant";
      threads =
        [|
          [ (Instr.load ~reg:1 ~loc:0 ()); (Instr.load ~reg:0 ~loc:0 ()) ];
          [ (Instr.store ~loc:0 ~value:1 ()) ];
        |];
    }
  in
  Printf.printf "mutant allowed under SC-per-location? %b\n"
    (Enumerate.target_allowed Model.Sc_per_location mutant);

  (* 4. Kill the mutant on a simulated NVIDIA GPU using a parallel testing
        environment: thousands of test instances per kernel launch, paired
        by the coprime permutation of Sec. 4.1. *)
  let device = Device.make Profile.nvidia in
  let env = Params.scaled Params.pte_baseline 0.02 in
  let result =
    (* The context's domains shard the 10 launches across cores;
       kills/rates are bit-identical to the serial run for any count. *)
    Runner.exec Runner.Rate
      (Request.make ~device ~env ~test:mutant ~iterations:10 ~seed:42 ())
      (Request.context ~domains:(Mcm_util.Pool.default_domains ()) ())
  in
  Printf.printf "\nPTE on %s: %d kills in %d instances (%.4f simulated s, %.0f kills/s)\n"
    (Device.name device) result.Runner.kills result.Runner.instances result.Runner.sim_time_s
    result.Runner.rate;

  (* 5. How confident are we that a rerun reproduces the kill? *)
  Printf.printf "reproducibility score: %.6f\n"
    (Confidence.reproducibility ~kills:(float_of_int result.Runner.kills));
  Printf.printf "time budget for 99.999%% confidence at this rate: %.4f s\n"
    (Confidence.budget_for ~target:0.99999 ~rate:result.Runner.rate);

  (* 6. The same campaign against a single-instance environment shows why
        the paper's parallel strategy matters. *)
  let site =
    Runner.exec Runner.Rate
      (Request.make ~device ~env:Params.site_baseline ~test:mutant ~iterations:100 ~seed:42 ())
      Request.serial
  in
  Printf.printf "\nSITE baseline on %s: %d kills in %d instances (%.0f kills/s)\n"
    (Device.name device) site.Runner.kills site.Runner.instances site.Runner.rate;
  if site.Runner.rate > 0. then
    Printf.printf "PTE speed-up: %.0fx\n" (result.Runner.rate /. site.Runner.rate)
  else print_endline "the SITE baseline never killed the mutant at all"
