(* Tuning study: how individual environment parameters move a mutant's
   death rate and the behaviour mix — the paper's Sec. 4.1/5.2 mechanics,
   one knob at a time, everything else held at the PTE baseline.

   The three sweeps show the three mechanisms:
     - workgroups  -> occupancy: weak behaviours need parallelism;
     - barrier_pct -> alignment: interleavings need temporal overlap;
     - stress      -> contention: amplifies weak memory, but costs time
                      (watch the rate fall on stress-sensitive devices
                      even as the weak fraction rises).

   Run with: dune exec examples/tuning_study.exe *)

module Suite = Mcm_core.Suite
module Litmus = Mcm_litmus.Litmus
module Profile = Mcm_gpu.Profile
module Device = Mcm_gpu.Device
module Params = Mcm_testenv.Params
module Runner = Mcm_testenv.Runner
module Request = Mcm_testenv.Request
module Table = Mcm_util.Table

let iterations = 8
let seed = 2023
let ctx = Request.context ~domains:(Mcm_util.Pool.default_domains ()) ()

let study ~title ~device ~test ~envs =
  Printf.printf "\n%s (device %s, mutant %s)\n" title (Device.name device) test.Litmus.name;
  let t =
    Table.create [ "Setting"; "Kills"; "Rate (/s)"; "Weak"; "Interleaved"; "Sequential" ]
  in
  List.iter
    (fun (label, env) ->
      let r, h =
        Runner.exec Runner.Histogram
          (Request.make ~device ~env ~test ~iterations ~seed ())
          ctx
      in
      let executed = max 1 (r.Runner.instances - h.Runner.skipped) in
      let pct n = Printf.sprintf "%.2f%%" (100. *. float_of_int n /. float_of_int executed) in
      Table.add_row t
        [
          label;
          string_of_int r.Runner.kills;
          Table.rate_cell r.Runner.rate;
          pct h.Runner.weak;
          pct h.Runner.interleaved;
          pct h.Runner.sequential;
        ])
    envs;
  Table.print t

let () =
  let base = Params.scaled Params.pte_baseline 0.02 in
  let mp_co_m = (Option.get (Suite.find "MP-CO-m")).Suite.test in
  let corr_m = (Option.get (Suite.find "CoRR-m")).Suite.test in

  (* 1. Occupancy: shrink the parallel layout down to a single pair. *)
  study ~title:"Occupancy sweep (testing workgroups)" ~device:(Device.make Profile.nvidia)
    ~test:mp_co_m
    ~envs:
      (List.map
         (fun wgs ->
           (Printf.sprintf "%d workgroups" wgs, { base with Params.testing_workgroups = wgs }))
         [ 2; 4; 8; 16; 20 ]);

  (* 2. Alignment: the barrier percentage controls temporal overlap. *)
  study ~title:"Alignment sweep (barrier_pct)" ~device:(Device.make Profile.m1) ~test:corr_m
    ~envs:
      (List.map
         (fun pct -> (Printf.sprintf "barrier %d%%" pct, { base with Params.barrier_pct = pct }))
         [ 0; 25; 50; 75; 100 ]);

  (* 3. Stress: intensity raises the weak fraction but slows the kernel. *)
  study ~title:"Stress sweep (mem_stress)" ~device:(Device.make Profile.intel) ~test:mp_co_m
    ~envs:
      (List.map
         (fun pct ->
           ( Printf.sprintf "stress %d%%" pct,
             { base with Params.mem_stress_pct = pct; mem_stress_iterations = 512 } ))
         [ 0; 25; 50; 75; 100 ]);

  (* 4. The pairing permutation ablation, as a behaviour mix. *)
  study ~title:"Pairing sweep (permute_second)" ~device:(Device.make Profile.amd) ~test:mp_co_m
    ~envs:
      [
        ("identity (v -> v)", { base with Params.permute_second = 1 });
        ("coprime 419", { base with Params.permute_second = 419 });
        ("coprime 1031", { base with Params.permute_second = 1031 });
      ];

  (* 5. Scope: the future-work extension — intra-workgroup testing. *)
  study ~title:"Scope sweep" ~device:(Device.make Profile.m1) ~test:corr_m
    ~envs:
      [
        ("inter-workgroup", base);
        ("intra-workgroup", Params.with_scope base Params.Intra_workgroup);
      ]
