(* Bug hunt: run the full generated conformance suite against the four
   simulated devices carrying their vendor's injected bug (Sec. 5.4), in
   a tuned parallel testing environment, and report which MCS violations
   surface where. This reproduces the paper's discovery narrative: the
   CoRR violation on Intel, the MP-relacq violation on AMD (the bug that
   changed the WebGPU specification), the recreated MP-CO coherence
   violation on NVIDIA Kepler — and a clean bill of health for M1.

   Run with: dune exec examples/bug_hunt.exe *)

module Litmus = Mcm_litmus.Litmus
module Suite = Mcm_core.Suite
module Profile = Mcm_gpu.Profile
module Device = Mcm_gpu.Device
module Bug = Mcm_gpu.Bug
module Params = Mcm_testenv.Params
module Runner = Mcm_testenv.Runner
module Request = Mcm_testenv.Request
module Table = Mcm_util.Table
module Confidence = Mcm_core.Confidence

let iterations = 12
let seed = 7

(* One context for the whole hunt: shard campaign iterations across
   every core; the findings are bit-identical to a serial run. *)
let ctx = Request.context ~domains:(Mcm_util.Pool.default_domains ()) ()

let () =
  let env = Params.scaled Params.pte_baseline 0.02 in
  Printf.printf "Hunting with a parallel testing environment: %s\n\n"
    (Format.asprintf "%a" Params.pp env);
  let table =
    Table.create
      ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right ]
      [ "Device"; "Injected bug"; "Failing tests"; "Violations"; "Best rate (/s)" ]
  in
  let findings = ref [] in
  List.iter
    (fun device ->
      let bug_desc =
        match device.Device.bugs with
        | [] -> "none"
        | bugs -> String.concat "; " (List.map Bug.describe bugs)
      in
      let failures =
        List.filter_map
          (fun (entry : Suite.entry) ->
            let test = entry.Suite.test in
            let r =
              Runner.exec Runner.Rate
                (Request.make ~device ~env ~test ~iterations
                   ~seed:(Mcm_util.Prng.mix seed (Hashtbl.hash test.Litmus.name))
                   ())
                ctx
            in
            if r.Runner.kills > 0 then Some (test.Litmus.name, r) else None)
          (Suite.conformance_tests ())
      in
      let total_violations =
        List.fold_left (fun acc (_, r) -> acc + r.Runner.kills) 0 failures
      in
      let best_rate =
        List.fold_left (fun acc (_, r) -> Float.max acc r.Runner.rate) 0. failures
      in
      Table.add_row table
        [
          Device.name device;
          bug_desc;
          string_of_int (List.length failures);
          string_of_int total_violations;
          Table.rate_cell best_rate;
        ];
      List.iter (fun (name, r) -> findings := (Device.name device, name, r) :: !findings) failures)
    (Device.with_paper_bugs ());
  Table.print table;
  print_newline ();
  if !findings = [] then print_endline "No violations observed — all devices conform."
  else begin
    print_endline "Violation details (conformance test -> disallowed behaviour observed):";
    List.iter
      (fun (device, name, (r : Runner.result)) ->
        let test = (Option.get (Suite.find name)).Suite.test in
        Printf.printf "  %-8s %-12s %6d violations (%s /s)  target: %s\n" device name
          r.Runner.kills (Table.rate_cell r.Runner.rate) test.Litmus.target_desc;
        Printf.printf "           reproducibility of this campaign: %.5f\n"
          (Confidence.reproducibility ~kills:(float_of_int r.Runner.kills)))
      (List.rev !findings)
  end;
  (* Sanity: the correct devices must stay silent. *)
  print_newline ();
  let clean =
    List.for_all
      (fun device ->
        List.for_all
          (fun (entry : Suite.entry) ->
            (Runner.exec Runner.Rate
               (Request.make ~device ~env ~test:entry.Suite.test ~iterations:3 ~seed ())
               Request.serial)
              .Runner.kills = 0)
          (Suite.conformance_tests ()))
      (Device.all_correct ())
  in
  Printf.printf "correct devices stay silent on every conformance test: %b\n" clean
