(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation and times the code that produces them.

   Part 1 prints the reproductions (Tab. 2, Tab. 3, Fig. 5 a-h plus the
   cross-device aggregates of Fig. 5 i-j, Fig. 6, Tab. 4, and the
   Sec. 5.1 tuning-cost comparison) at the configured scale — set
   MCM_SCALE=1.0 MCM_ENVS=150 for the paper's full-size sweep.

   Part 2 times a serial vs parallel tuning sweep (the domain pool's
   speedup) and records it in BENCH_parallel.json; MCM_BENCH_SMOKE=1
   runs only this part at 1 iteration as a fast parallel-path check.

   Part 3 registers one Bechamel micro-benchmark per experiment (plus the
   DESIGN.md ablations) so the cost of each moving part is tracked. *)

module Suite = Mcm_core.Suite
module Merge = Mcm_core.Merge
module Litmus = Mcm_litmus.Litmus
module Enumerate = Mcm_litmus.Enumerate
module Library = Mcm_litmus.Library
module Profile = Mcm_gpu.Profile
module Device = Mcm_gpu.Device
module Gpu_instance = Mcm_gpu.Instance
module Bug = Mcm_gpu.Bug
module Params = Mcm_testenv.Params
module Runner = Mcm_testenv.Runner
module Request = Mcm_testenv.Request
module Tuning = Mcm_harness.Tuning
module Grid = Mcm_harness.Grid
module Experiments = Mcm_harness.Experiments
module Oracle_enum = Mcm_oracle.Enumerate
module Oracle_propagate = Mcm_oracle.Propagate
module Oracle_engine = Mcm_oracle.Engine
module Oracle_certify = Mcm_oracle.Certify
module Oracle_outcome = Mcm_oracle.Outcome
module Table = Mcm_util.Table
module Prng = Mcm_util.Prng
module Pool = Mcm_util.Pool
module Jsonw = Mcm_util.Jsonw
module Pearson = Mcm_stats.Pearson

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-')

(* ------------------------------------------------------------------ *)
(* Part 1: the reproductions                                            *)

let print_reproductions () =
  section "Table 2: mutators and generated tests";
  Table.print (Experiments.table2 ());

  section "Table 3: simulated devices";
  Table.print (Experiments.table3 ());

  let config = Tuning.default_config () in
  Printf.printf
    "\ntuning sweep: %d envs/category, %d SITE iterations, %d PTE iterations, scale %.3f\n%!"
    config.Tuning.n_envs config.Tuning.site_iterations config.Tuning.pte_iterations
    config.Tuning.scale;
  let runs = Tuning.sweep config in

  List.iter
    (fun (title, t) ->
      section ("Figure 5 " ^ title);
      Table.print t)
    (Experiments.Fig5.all_tables runs);

  section "Figure 5 (i)/(j): cross-device aggregates";
  let agg = Table.create [ "Metric"; "SITE-baseline"; "SITE"; "PTE-baseline"; "PTE" ] in
  Table.add_row agg
    ("mutation score"
    :: List.map
         (fun c -> Table.pct_cell (Experiments.Fig5.mutation_score runs c))
         Tuning.all_categories);
  Table.add_row agg
    ("avg death rate (/s)"
    :: List.map
         (fun c -> Table.rate_cell (Experiments.Fig5.avg_death_rate runs c))
         Tuning.all_categories);
  Table.print agg;

  section "Sec. 5.1: simulated tuning cost per category";
  List.iter
    (fun (name, s) -> Printf.printf "  %-14s %12.2f simulated seconds\n" name s)
    (Experiments.Fig5.tuning_time runs);

  section "Figure 6: reproducible mutation score vs per-test time budget";
  Table.print (Experiments.Fig6.table runs);

  section "Table 4: correlation between mutant kills and injected bugs";
  Table.print (Experiments.Table4.table (Experiments.Table4.compute ()));

  section "Ablation: pairing permutation (Sec. 4.1)";
  (* The paper argues the coprime permutation beats the degenerate
     v -> v mapping; compare kill rates with everything else fixed. *)
  let device = Device.make Profile.nvidia in
  let mutant = (Option.get (Suite.find "MP-CO-m")).Suite.test in
  let base_env = Params.scaled Params.pte_baseline config.Tuning.scale in
  let abl = Table.create [ "Pairing"; "Kills"; "Rate (/s)" ] in
  List.iter
    (fun (label, p2) ->
      let env = { base_env with Params.permute_second = p2 } in
      let r = Runner.run ~device ~env ~test:mutant ~iterations:10 ~seed:4242 () in
      Table.add_row abl [ label; string_of_int r.Runner.kills; Table.rate_cell r.Runner.rate ])
    [ ("identity (v -> v)", 1); ("coprime permutation", 1031) ];
  Table.print abl;

  section "Ablation: weak-memory mechanisms (DESIGN.md)";
  (* Disable each operational mechanism in turn and measure which mutants
     each one carries. *)
  let weak_full =
    Gpu_instance.effective_params Profile.nvidia
      ~amplification:(Runner.amplification device base_env ~roles:2)
  in
  let count_kills weak test =
    let g = Prng.create 99 in
    let kills = ref 0 in
    for _ = 1 to 3000 do
      let starts = [| Prng.float g 40.; Prng.float g 40. |] in
      let o = Gpu_instance.run ~prng:(Prng.split g) ~weak ~bugs:Bug.none ~test ~starts () in
      if test.Litmus.target o then incr kills
    done;
    !kills
  in
  let abl_pruning () =
    section "Sec. 3.4: pruning against implementation models";
    let t = Table.create [ "Implementation model"; "Mutants kept"; "Pruned" ] in
    List.iter
      (fun cat ->
        let verdict = Mcm_core.Prune.prune_suite ~implementation:cat () in
        Table.add_row t
          [
            cat.Mcm_memmodel.Cat.name;
            string_of_int (List.length verdict.Mcm_core.Prune.kept);
            string_of_int (List.length verdict.Mcm_core.Prune.pruned);
          ])
      Mcm_memmodel.Cat.all;
    Table.print t
  in
  abl_pruning ();

  let abl2 = Table.create [ "Mechanism configuration"; "CoRR-m"; "MP-CO-m"; "LB-CO-m" ] in
  let corr_m = (Option.get (Suite.find "CoRR-m")).Suite.test in
  let lb_m = (Option.get (Suite.find "LB-CO-m")).Suite.test in
  List.iter
    (fun (label, weak) ->
      Table.add_row abl2
        [
          label;
          string_of_int (count_kills weak corr_m);
          string_of_int (count_kills weak mutant);
          string_of_int (count_kills weak lb_m);
        ])
    [
      ("all mechanisms", weak_full);
      ("no store-visibility delay", { weak_full with Gpu_instance.vis_delay_mean_ns = 0. });
      ("no load staleness", { weak_full with Gpu_instance.p_stale = 0. });
      ("no out-of-order window", { weak_full with Gpu_instance.p_ooo = 0. });
      ( "interleaving only",
        { weak_full with Gpu_instance.vis_delay_mean_ns = 0.; p_stale = 0.; p_ooo = 0. } );
    ];
  Table.print abl2

(* ------------------------------------------------------------------ *)
(* Part 2: the domain-pool speedup benchmark                            *)

(* Serial vs parallel wall-clock over a tuning sweep — the PTE story one
   level up: pack the whole parameter grid into one multicore launch.
   Results are checked bit-identical across domain counts and the
   numbers land in a BENCH_*.json so the perf trajectory is tracked.
   MCM_BENCH_SMOKE=1 shrinks everything to one iteration: a CI-speed
   exercise of the parallel path, not a measurement. *)

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let parallel_bench ~smoke () =
  section "Domain pool: serial vs parallel tuning sweep";
  let config =
    {
      Tuning.n_envs = 3;
      (* 3 Site + 3 Pte + the two baselines = 8 environment grid rows *)
      site_iterations = (if smoke then 1 else 160);
      pte_iterations = (if smoke then 1 else 40);
      scale = 0.02;
      seed = 20230325;
    }
  in
  let devices = [ Device.make Profile.nvidia; Device.make Profile.intel ] in
  let tests =
    List.filter
      (fun (e : Suite.entry) ->
        List.mem e.Suite.test.Litmus.name [ "MP-CO-m"; "CoRR-m"; "MP-relacq-m3" ])
      (Suite.mutants ())
  in
  (* Project each run onto closure-free fields so sweeps can be compared
     with structural equality, floats included — the determinism claim is
     bit-identity, not approximate agreement. *)
  let fingerprint runs =
    List.map
      (fun (r : Tuning.run) -> (r.Tuning.category, r.Tuning.env_index, r.Tuning.test_name, r.Tuning.result))
      runs
  in
  let serial, serial_s = wall (fun () -> Tuning.sweep ~devices ~tests config) in
  let grid_points = List.length serial in
  Printf.printf "  sweep of %d grid points (%d SITE / %d PTE iterations per point)\n"
    grid_points config.Tuning.site_iterations config.Tuning.pte_iterations;
  Printf.printf "  serial                  %8.3f s\n%!" serial_s;
  let rows =
    List.map
      (fun d ->
        let runs, t =
          wall (fun () -> Tuning.sweep ~ctx:(Request.context ~domains:d ()) ~devices ~tests config)
        in
        let identical = fingerprint runs = fingerprint serial in
        let speedup = if t > 0. then serial_s /. t else 0. in
        Printf.printf "  %2d domains              %8.3f s   %5.2fx%s\n%!" d t speedup
          (if identical then "   (bit-identical)" else "   RESULTS DIVERGED");
        (d, t, speedup, identical))
      [ 1; 2; 4; 8 ]
  in
  let json =
    Jsonw.Obj
      [
        ("benchmark", Jsonw.String "domain-pool-sweep-speedup");
        ("smoke", Jsonw.Bool smoke);
        ("cores", Jsonw.Int (Pool.default_domains ()));
        ("grid_points", Jsonw.Int grid_points);
        ("site_iterations", Jsonw.Int config.Tuning.site_iterations);
        ("pte_iterations", Jsonw.Int config.Tuning.pte_iterations);
        ("serial_s", Jsonw.Float serial_s);
        ( "runs",
          Jsonw.List
            (List.map
               (fun (d, t, speedup, identical) ->
                 Jsonw.Obj
                   [
                     ("domains", Jsonw.Int d);
                     ("seconds", Jsonw.Float t);
                     ("speedup", Jsonw.Float speedup);
                     ("identical_to_serial", Jsonw.Bool identical);
                   ])
               rows) );
      ]
  in
  let path =
    match Sys.getenv_opt "MCM_BENCH_OUT" with Some p when p <> "" -> p | _ -> "BENCH_parallel.json"
  in
  let oc = open_out path in
  Jsonw.to_channel oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n%!" path;
  if List.exists (fun (_, _, _, identical) -> not identical) rows then begin
    prerr_endline "bench: parallel sweep diverged from the serial oracle";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Part 2a: the compiled instance kernel benchmark                      *)

(* Three measurements for the compiled kernel path, recorded in
   BENCH_instance.json with the same identical-or-fail contract as the
   other benches:

   1. A standard campaign through both engines — wall-clock, minor-heap
      allocation, and bit-identity of the (result, histogram) pair.
   2. A direct instance loop (no campaign scaffolding): interpreter vs
      kernel instances/sec, plus Gc.quick_stat minor-word deltas proving
      the kernel's steady-state path allocates zero words per instance.
   3. A pool chunking sweep: the same job at chunk 1 vs the derived
      default vs one-chunk-per-domain, bit-identity asserted.

   MCM_BENCH_SMOKE=1 shrinks the counts to a CI-speed functional pass.

   Build-profile caveat: dune's dev profile compiles with -opaque, which
   disables the cross-module inlining of Prng.Raw draws; each draw then
   returns a boxed float and the kernel's steady state allocates ~27
   words/instance. The zero-allocation contract is a release-profile
   property — `make bench-instance` builds with --profile release. *)

let instance_bench ~smoke () =
  section "Compiled kernel: interpreter vs kernel instance throughput";
  let device = Device.make Profile.nvidia in
  let test = (Option.get (Suite.find "MP-relacq-m3")).Suite.test in
  let env = Params.scaled Params.pte_baseline 0.02 in
  let seed = 20230325 in
  let iterations = if smoke then 2 else 40 in
  (* 1. Campaign through both engines. *)
  let campaign engine =
    Gc.full_major ();
    let mw0 = Gc.minor_words () in
    let out, secs =
      wall (fun () ->
          Runner.run_with_histogram ~engine ~device ~env ~test ~iterations ~seed ())
    in
    let minor = Gc.minor_words () -. mw0 in
    (out, secs, minor)
  in
  let ((ir, _) as interp), interp_s, interp_minor = campaign Runner.Interpreter in
  let kernel_out, kernel_s, kernel_minor = campaign Runner.Kernel in
  let identical = kernel_out = interp in
  let executed = ir.Runner.instances in
  let campaign_speedup = if kernel_s > 0. then interp_s /. kernel_s else 0. in
  Printf.printf "  campaign (%d iterations, %d instances)\n" iterations executed;
  Printf.printf "    interpreter engine    %8.3f s   %12.0f minor words\n%!" interp_s
    interp_minor;
  Printf.printf "    kernel engine         %8.3f s   %12.0f minor words   %5.2fx%s\n%!" kernel_s
    kernel_minor campaign_speedup
    (if identical then "   (bit-identical)" else "   RESULTS DIVERGED");
  (* 2. Direct instance loop: the per-instance cost with the campaign
     scaffolding (starts generation, horizon skip) factored out. *)
  let bugs = Device.effect device in
  let roles = Litmus.nthreads test in
  let weak =
    Gpu_instance.effective_params Profile.nvidia
      ~amplification:(Runner.amplification device env ~roles)
  in
  let starts = Array.init roles (fun r -> 2. *. float_of_int r) in
  let runs = if smoke then 5_000 else 300_000 in
  let kernel = Mcm_gpu.Kernel.compile ~weak ~bugs ~test () in
  let ws = Mcm_gpu.Kernel.workspace kernel in
  Mcm_gpu.Kernel.set_parent ws (Prng.create seed);
  let loop_interp () =
    let g = Prng.create seed in
    for _ = 1 to runs do
      ignore (Gpu_instance.run ~prng:(Prng.split g) ~weak ~bugs ~test ~starts ())
    done
  in
  let loop_kernel () =
    for _ = 1 to runs do
      ignore (Mcm_gpu.Kernel.run_next kernel ws ~starts)
    done
  in
  let measure loop =
    (* Warm-up installs any one-time state, then the measured region is
       pure steady state. [Gc.minor_words ()] is the precise allocation
       counter; [Gc.quick_stat]'s minor_words is only refreshed at minor
       collections in native code and can miss a whole batch. *)
    loop ();
    Gc.full_major ();
    let mw0 = Gc.minor_words () in
    let (), secs = wall loop in
    let minor = Gc.minor_words () -. mw0 in
    let rate = if secs > 0. then float_of_int runs /. secs else 0. in
    (secs, rate, minor, minor /. float_of_int runs)
  in
  (* One warm-up [runs] batch per engine keeps the comparison symmetric. *)
  let i_secs, i_rate, _i_minor, i_per = measure loop_interp in
  let k_secs, k_rate, k_minor, k_per = measure loop_kernel in
  let speedup = if k_secs > 0. then i_secs /. k_secs else 0. in
  (* The measured region allocates a handful of words outside the
     instance path itself (the Gc counter boxes); anything growing with
     [runs] is a real leak in the zero-allocation claim. *)
  let zero_alloc = k_minor < 256. in
  Printf.printf "  direct loop (%d instances per engine)\n" runs;
  Printf.printf "    interpreter           %8.3f s   %10.0f inst/s   %8.2f words/inst\n%!"
    i_secs i_rate i_per;
  Printf.printf "    kernel                %8.3f s   %10.0f inst/s   %8.2f words/inst   %5.2fx%s\n%!"
    k_secs k_rate k_per speedup
    (if zero_alloc then "   (zero-alloc)" else "   ALLOCATES");
  (* 3. Pool chunking: identical work, different lock granularity. *)
  let pool_domains = 2 in
  let chunk_runs, default_chunk =
    Pool.with_pool ~domains:pool_domains (fun p ->
        let n = if smoke then 8 else 64 in
        let per_task = if smoke then 50 else 2_000 in
        let f i =
          let g = Prng.create (Prng.mix seed i) in
          let acc = ref 0 in
          for _ = 1 to per_task do
            let o = Gpu_instance.run ~prng:(Prng.split g) ~weak ~bugs ~test ~starts in
            acc := !acc + Hashtbl.hash o
          done;
          !acc
        in
        let serial = Array.init n f in
        let default_chunk = Pool.default_chunk p ~n in
        Printf.printf "  pool chunking at %d domains (default chunk %d)\n%!"
          pool_domains default_chunk;
        ( List.map
            (fun chunk ->
              let a, t = wall (fun () -> Pool.map_array ~chunk p ~n ~f) in
              let same = a = serial in
              Printf.printf "    chunk %-6d           %8.3f s%s\n%!" chunk t
                (if same then "   (bit-identical)" else "   RESULTS DIVERGED");
              (chunk, t, same))
            (List.sort_uniq compare
               [ 1; default_chunk; max 1 (n / pool_domains) ]),
          default_chunk ))
  in
  let stat = Gc.quick_stat () in
  Printf.printf
    "  gc: %.0f minor words, %.0f promoted, %d minor / %d major collections\n%!"
    stat.Gc.minor_words stat.Gc.promoted_words stat.Gc.minor_collections
    stat.Gc.major_collections;
  let all_identical =
    identical && List.for_all (fun (_, _, same) -> same) chunk_runs
  in
  let json =
    Jsonw.Obj
      [
        ("benchmark", Jsonw.String "compiled-instance-kernel");
        ("smoke", Jsonw.Bool smoke);
        ("cores", Jsonw.Int (Pool.default_domains ()));
        ( "campaign",
          Jsonw.Obj
            [
              ("iterations", Jsonw.Int iterations);
              ("instances", Jsonw.Int executed);
              ("interpreter_s", Jsonw.Float interp_s);
              ("kernel_s", Jsonw.Float kernel_s);
              ("interpreter_minor_words", Jsonw.Float interp_minor);
              ("kernel_minor_words", Jsonw.Float kernel_minor);
              ("speedup", Jsonw.Float campaign_speedup);
              ("identical_to_serial", Jsonw.Bool identical);
            ] );
        ( "direct",
          Jsonw.Obj
            [
              ("instances", Jsonw.Int runs);
              ("interpreter_s", Jsonw.Float i_secs);
              ("kernel_s", Jsonw.Float k_secs);
              ("interpreter_instances_per_s", Jsonw.Float i_rate);
              ("kernel_instances_per_s", Jsonw.Float k_rate);
              ("interpreter_minor_words_per_instance", Jsonw.Float i_per);
              ("kernel_minor_words_per_instance", Jsonw.Float k_per);
              ("speedup", Jsonw.Float speedup);
              ("zero_alloc_steady_state", Jsonw.Bool zero_alloc);
            ] );
        ( "pool_chunking",
          Jsonw.Obj
            [
              ("domains", Jsonw.Int pool_domains);
              ("default_chunk", Jsonw.Int default_chunk);
              ( "runs",
                Jsonw.List
                  (List.map
                     (fun (chunk, t, same) ->
                       Jsonw.Obj
                         [
                           ("chunk", Jsonw.Int chunk);
                           ("seconds", Jsonw.Float t);
                           ("identical_to_serial", Jsonw.Bool same);
                         ])
                     chunk_runs) );
            ] );
        ( "gc",
          Jsonw.Obj
            [
              ("minor_words", Jsonw.Float stat.Gc.minor_words);
              ("promoted_words", Jsonw.Float stat.Gc.promoted_words);
              ("minor_collections", Jsonw.Int stat.Gc.minor_collections);
              ("major_collections", Jsonw.Int stat.Gc.major_collections);
            ] );
      ]
  in
  let path =
    match Sys.getenv_opt "MCM_BENCH_INSTANCE_OUT" with
    | Some p when p <> "" -> p
    | _ -> "BENCH_instance.json"
  in
  let oc = open_out path in
  Jsonw.to_channel oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n%!" path;
  if not all_identical then begin
    prerr_endline "bench: kernel engine diverged from the interpreter";
    exit 1
  end;
  if not zero_alloc then begin
    prerr_endline "bench: kernel steady state allocates on the minor heap";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Part 2b: the axiomatic-oracle benchmark                              *)

(* Numbers worth tracking for the oracle: raw enumeration throughput
   (candidate executions consistency-checked per second, on the biggest
   candidate spaces we ship), the domain-pool speedup of the grid
   enumeration that Certify/Soundness fan out, and the engine ladder —
   both engines counting the consistent executions of growing
   Library.ladder rungs, with exact agreement asserted and the
   propagate/enumerate speedup and asymptotic gap recorded, topped by a
   certification race on a rung the brute-force engine cannot finish
   within a 10x budget. Results land in BENCH_oracle.json; bit-identity
   across domain counts and engine agreement are asserted, not assumed.
   MCM_BENCH_SMOKE=1 shrinks the grid to the classic library and the
   ladder to its fast rungs. *)

let oracle_bench ~smoke () =
  section "Axiomatic oracle: enumeration throughput and grid speedup";
  let suite_tests = List.map (fun (e : Suite.entry) -> e.Suite.test) (Suite.all ()) in
  let all_tests = Library.all @ suite_tests in
  let throughput_tests =
    let ranked =
      List.sort (fun a b -> compare (Oracle_enum.count b) (Oracle_enum.count a)) all_tests
    in
    List.filteri (fun i _ -> i < 3) ranked
  in
  let throughput =
    List.map
      (fun t ->
        let total = Oracle_enum.count t in
        let consistent, secs =
          wall (fun () -> Oracle_enum.count_consistent t.Litmus.model t)
        in
        let rate = if secs > 0. then float_of_int total /. secs else 0. in
        Printf.printf "  %-18s %8d candidates  %7d consistent  %12.0f exec/s\n%!"
          t.Litmus.name total consistent rate;
        (t.Litmus.name, total, consistent, secs, rate))
      throughput_tests
  in
  let grid_tests = if smoke then Library.all else all_tests in
  let points = List.concat_map (fun t -> List.map (fun m -> (m, t)) Mcm_memmodel.Model.all) grid_tests in
  let serial, serial_s = wall (fun () -> Oracle_outcome.allowed_grid points) in
  Printf.printf "  allowed-set grid of %d (model, test) points\n" (List.length points);
  Printf.printf "  serial                  %8.3f s\n%!" serial_s;
  let rows =
    List.map
      (fun d ->
        let sets, t = wall (fun () -> Oracle_outcome.allowed_grid ~domains:d points) in
        let identical = List.for_all2 Oracle_outcome.equal sets serial in
        let speedup = if t > 0. then serial_s /. t else 0. in
        Printf.printf "  %2d domains              %8.3f s   %5.2fx%s\n%!" d t speedup
          (if identical then "   (bit-identical)" else "   RESULTS DIVERGED");
        (d, t, speedup, identical))
      (if smoke then [ 2; 4 ] else [ 2; 4; 8 ])
  in
  (* Engine ladder: both engines count the consistent executions of
     growing Library.ladder rungs. Agreement is exact-count equality —
     the engines claim bit-identical streams, so any rung mismatch is a
     correctness failure, not noise. The asymptotic gap is candidate
     space over decision-tree nodes the propagation engine actually
     visits. *)
  Printf.printf "  engine ladder (consistent-execution counts, both engines)\n%!";
  let ladder_rungs =
    List.map
      (fun (stores, loads) ->
        let t = Library.ladder ~stores ~loads in
        let space = Oracle_enum.count t in
        let st = Oracle_propagate.stats t.Litmus.model t in
        let pc, prop_s =
          wall (fun () -> Oracle_engine.count_consistent Oracle_engine.Propagate t.Litmus.model t)
        in
        let ec, enum_s =
          wall (fun () -> Oracle_engine.count_consistent Oracle_engine.Enumerate t.Litmus.model t)
        in
        let agree = pc = ec in
        let speedup = if prop_s > 0. then enum_s /. prop_s else 0. in
        let gap = float_of_int space /. float_of_int (max 1 st.Oracle_propagate.explored) in
        Printf.printf
          "  %-14s %9d candidates  %8d consistent  enum %7.3fs  prop %7.3fs  %6.1fx  gap %5.1fx%s\n%!"
          t.Litmus.name space pc enum_s prop_s speedup gap
          (if agree then "" else "  COUNTS DIVERGED");
        (t, stores, loads, space, st, pc, prop_s, ec, enum_s, speedup, gap, agree))
      (if smoke then [ (1, 1); (1, 2) ] else [ (1, 1); (1, 2); (2, 1) ])
  in
  (* Certification race on the top rung: the propagation engine certifies
     the mutant-style "target allowed, non-vacuous" claim to completion;
     the brute-force engine then gets a 10x wall-clock budget for the
     same witness search. On the full rung (4 threads, 16 instructions,
     2.25e8 candidates) it cannot finish — that asymptotic separation is
     the point of the second engine, so it is recorded here rather than
     asserted away. *)
  let race_stores, race_loads = if smoke then (2, 1) else (2, 2) in
  let race_test = Library.ladder ~stores:race_stores ~loads:race_loads in
  let race_space = Oracle_enum.count race_test in
  let verdict, prop_race_s =
    wall (fun () -> Oracle_certify.mutant ~engine:Oracle_engine.Propagate race_test)
  in
  let budget_s = 10. *. prop_race_s in
  let visited = ref 0 in
  let race_result, enum_race_s =
    let deadline = Unix.gettimeofday () +. budget_s in
    wall (fun () ->
        match
          Oracle_enum.iter race_test ~f:(fun x ->
              incr visited;
              if !visited land 8191 = 0 && Unix.gettimeofday () > deadline then raise Exit;
              if
                Mcm_memmodel.Model.consistent race_test.Litmus.model x
                && race_test.Litmus.target (Litmus.outcome_of_execution race_test x)
              then raise Stdlib.Not_found)
        with
        | () -> "exhausted"
        | exception Stdlib.Not_found -> "found"
        | exception Exit -> "timeout")
  in
  Printf.printf
    "  race %-11s propagate certified (ok=%b) in %.3fs; enumerate got %.3fs and %s after %d of \
     %d candidates (%.3fs)\n%!"
    race_test.Litmus.name verdict.Oracle_certify.ok prop_race_s budget_s race_result !visited
    race_space enum_race_s;
  let engines_agree =
    List.for_all (fun (_, _, _, _, _, _, _, _, _, _, _, agree) -> agree) ladder_rungs
    && verdict.Oracle_certify.ok
    (* an exhausted (not timed-out) enumeration that found no witness
       contradicts the propagation engine's certificate *)
    && race_result <> "exhausted"
  in
  let json =
    Jsonw.Obj
      [
        ("benchmark", Jsonw.String "axiomatic-oracle");
        ("smoke", Jsonw.Bool smoke);
        ("cores", Jsonw.Int (Pool.default_domains ()));
        ( "enumeration",
          Jsonw.List
            (List.map
               (fun (name, total, consistent, secs, rate) ->
                 Jsonw.Obj
                   [
                     ("test", Jsonw.String name);
                     ("candidates", Jsonw.Int total);
                     ("consistent", Jsonw.Int consistent);
                     ("seconds", Jsonw.Float secs);
                     ("executions_per_s", Jsonw.Float rate);
                   ])
               throughput) );
        ("grid_points", Jsonw.Int (List.length points));
        ("grid_serial_s", Jsonw.Float serial_s);
        ( "grid_runs",
          Jsonw.List
            (List.map
               (fun (d, t, speedup, identical) ->
                 Jsonw.Obj
                   [
                     ("domains", Jsonw.Int d);
                     ("seconds", Jsonw.Float t);
                     ("speedup", Jsonw.Float speedup);
                     ("identical_to_serial", Jsonw.Bool identical);
                   ])
               rows) );
        ( "engine_ladder",
          Jsonw.List
            (List.map
               (fun (t, stores, loads, space, st, pc, prop_s, ec, enum_s, speedup, gap, agree) ->
                 Jsonw.Obj
                   [
                     ("test", Jsonw.String t.Litmus.name);
                     ("stores", Jsonw.Int stores);
                     ("loads", Jsonw.Int loads);
                     ("candidates", Jsonw.Int space);
                     ("consistent_propagate", Jsonw.Int pc);
                     ("consistent_enumerate", Jsonw.Int ec);
                     ("propagate_s", Jsonw.Float prop_s);
                     ("enumerate_s", Jsonw.Float enum_s);
                     ("speedup", Jsonw.Float speedup);
                     ("explored", Jsonw.Int st.Oracle_propagate.explored);
                     ("pruned", Jsonw.Int st.Oracle_propagate.pruned);
                     ("asymptotic_gap", Jsonw.Float gap);
                     ("agree", Jsonw.Bool agree);
                   ])
               ladder_rungs) );
        ( "race",
          Jsonw.Obj
            [
              ("test", Jsonw.String race_test.Litmus.name);
              ("threads", Jsonw.Int (Array.length race_test.Litmus.threads));
              ( "instructions",
                Jsonw.Int
                  (Array.fold_left
                     (fun acc th -> acc + List.length th)
                     0 race_test.Litmus.threads) );
              ("candidates", Jsonw.Int race_space);
              ("propagate_certified_ok", Jsonw.Bool verdict.Oracle_certify.ok);
              ("propagate_s", Jsonw.Float prop_race_s);
              ("enumerate_budget_s", Jsonw.Float budget_s);
              ("enumerate_result", Jsonw.String race_result);
              ("enumerate_s", Jsonw.Float enum_race_s);
              ("enumerate_candidates_visited", Jsonw.Int !visited);
            ] );
        ("engines_agree", Jsonw.Bool engines_agree);
      ]
  in
  let path =
    match Sys.getenv_opt "MCM_BENCH_ORACLE_OUT" with
    | Some p when p <> "" -> p
    | _ -> "BENCH_oracle.json"
  in
  let oc = open_out path in
  Jsonw.to_channel oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n%!" path;
  if List.exists (fun (_, _, _, identical) -> not identical) rows then begin
    prerr_endline "bench: sharded oracle grid diverged from the serial enumeration";
    exit 1
  end;
  if not engines_agree then begin
    prerr_endline "bench: the propagation and brute-force oracle engines disagree";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Part 2c: the campaign-store benchmark                                *)

(* Three contracts for the content-addressed store, recorded in
   BENCH_store.json:

   1. Correctness: a sweep through a store (cold or warm) is
      bit-identical to the same sweep without one.
   2. Speed: the warm rerun — every cell served from the store — must be
      at least 10x faster than the cold run (asserted in non-smoke runs;
      smoke runs are too small to measure meaningfully).
   3. Recovery: after a simulated crash (segment truncated mid-record,
      journal left with a torn tail), resuming the sweep repairs the
      store, recomputes only what was lost, and still reproduces the
      uncached sweep bit-identically, leaving a store that passes
      verification. *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun name -> rm_rf (Filename.concat path name)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

module Store = Mcm_campaign.Store
module Journal = Mcm_campaign.Journal

let store_bench ~smoke () =
  section "Campaign store: cold vs warm sweep, crash recovery";
  let config =
    {
      Tuning.n_envs = 2;
      site_iterations = (if smoke then 2 else 160);
      pte_iterations = (if smoke then 1 else 40);
      scale = 0.02;
      seed = 20230325;
    }
  in
  let devices = [ Device.make Profile.nvidia; Device.make Profile.intel ] in
  let tests =
    List.filter
      (fun (e : Suite.entry) ->
        List.mem e.Suite.test.Litmus.name [ "MP-CO-m"; "CoRR-m"; "MP-relacq-m3" ])
      (Suite.mutants ())
  in
  let fingerprint runs =
    List.map
      (fun (r : Tuning.run) ->
        (r.Tuning.category, r.Tuning.env_index, r.Tuning.test_name, r.Tuning.result))
      runs
  in
  let root =
    match Sys.getenv_opt "MCM_BENCH_STORE_DIR" with
    | Some p when p <> "" -> p
    | _ -> "_bench_store"
  in
  rm_rf root;
  let stored_sweep dir =
    Store.with_store dir (fun store ->
        Journal.with_journal (Filename.concat dir "journal.jsonl") (fun journal ->
            Tuning.sweep
              ~ctx:(Request.context ~domains:2 ~store ~journal ())
              ~devices ~tests config))
  in
  (* 1+2. Baseline (no store), cold (fresh store), warm (same store). *)
  let baseline, baseline_s =
    wall (fun () -> Tuning.sweep ~ctx:(Request.context ~domains:2 ()) ~devices ~tests config)
  in
  let baseline_fp = fingerprint baseline in
  let grid_points = List.length baseline in
  Printf.printf "  sweep of %d grid points (%d SITE / %d PTE iterations per point)\n"
    grid_points config.Tuning.site_iterations config.Tuning.pte_iterations;
  Printf.printf "  no store                %8.3f s\n%!" baseline_s;
  let dir = Filename.concat root "sweep" in
  let cold, cold_s = wall (fun () -> stored_sweep dir) in
  let cold_identical = fingerprint cold = baseline_fp in
  Printf.printf "  cold (computes+stores)  %8.3f s%s\n%!" cold_s
    (if cold_identical then "   (bit-identical)" else "   RESULTS DIVERGED");
  let warm, warm_s = wall (fun () -> stored_sweep dir) in
  let warm_identical = fingerprint warm = baseline_fp in
  let warm_speedup = if warm_s > 0. then cold_s /. warm_s else 0. in
  Printf.printf "  warm (all cached)       %8.3f s   %5.1fx%s\n%!" warm_s warm_speedup
    (if warm_identical then "   (bit-identical)" else "   RESULTS DIVERGED");
  (* 3. Crash recovery: populate, corrupt like a SIGKILL would, resume. *)
  let rdir = Filename.concat root "recovery" in
  ignore (stored_sweep rdir);
  let segments =
    Sys.readdir rdir |> Array.to_list
    |> List.filter (fun n -> Filename.check_suffix n ".jsonl" && n <> "journal.jsonl")
    |> List.sort compare
  in
  let last_segment = Filename.concat rdir (List.nth segments (List.length segments - 1)) in
  let content = In_channel.with_open_bin last_segment In_channel.input_all in
  let len = String.length content in
  (* Cut inside a record: drop the tail quarter of the segment, nudging
     the cut off any line boundary so a torn tail is actually present. *)
  let cut =
    let c = max 1 (len * 3 / 4) in
    if content.[c - 1] = '\n' then min (len - 2) (c + 2) else c
  in
  Unix.truncate last_segment cut;
  let jpath = Filename.concat rdir "journal.jsonl" in
  let oc = open_out_gen [ Open_append; Open_wronly; Open_binary ] 0o644 jpath in
  output_string oc "{\"done\":";  (* a torn (newline-less) journal tail *)
  close_out oc;
  let lost =
    Store.with_store dir (fun reference ->
        Store.with_store rdir (fun damaged -> Store.count reference - Store.count damaged))
  in
  Printf.printf "  crash: segment truncated at byte %d/%d, %d cell(s) lost, journal torn\n%!"
    cut len lost;
  let resumed, resume_s = wall (fun () -> stored_sweep rdir) in
  let resumed_identical = fingerprint resumed = baseline_fp in
  let recovery_verify =
    match Store.verify rdir with Ok r -> Store.verify_ok r | Error _ -> false
  in
  Printf.printf "  resume (recomputes %d)  %8.3f s%s%s\n%!" lost resume_s
    (if resumed_identical then "   (bit-identical)" else "   RESULTS DIVERGED")
    (if recovery_verify then "   (store verifies clean)" else "   STORE STILL CORRUPT");
  let json =
    Jsonw.Obj
      [
        ("benchmark", Jsonw.String "campaign-store");
        ("smoke", Jsonw.Bool smoke);
        ("grid_points", Jsonw.Int grid_points);
        ("baseline_s", Jsonw.Float baseline_s);
        ( "cold",
          Jsonw.Obj
            [
              ("seconds", Jsonw.Float cold_s);
              ("identical_to_serial", Jsonw.Bool cold_identical);
            ] );
        ( "warm",
          Jsonw.Obj
            [
              ("seconds", Jsonw.Float warm_s);
              ("speedup_vs_cold", Jsonw.Float warm_speedup);
              ("speedup_target", Jsonw.Float 10.);
              ("identical_to_serial", Jsonw.Bool warm_identical);
            ] );
        ( "recovery",
          Jsonw.Obj
            [
              ("cells_lost", Jsonw.Int lost);
              ("resume_seconds", Jsonw.Float resume_s);
              ("identical_to_serial", Jsonw.Bool resumed_identical);
              ("verifies_clean", Jsonw.Bool recovery_verify);
            ] );
      ]
  in
  let path =
    match Sys.getenv_opt "MCM_BENCH_STORE_OUT" with
    | Some p when p <> "" -> p
    | _ -> "BENCH_store.json"
  in
  let oc = open_out path in
  Jsonw.to_channel oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n%!" path;
  if not (cold_identical && warm_identical && resumed_identical) then begin
    prerr_endline "bench: stored sweep diverged from the uncached sweep";
    exit 1
  end;
  if not recovery_verify then begin
    prerr_endline "bench: store still corrupt after crash recovery";
    exit 1
  end;
  if (not smoke) && warm_speedup < 10. then begin
    Printf.eprintf "bench: warm store speedup %.1fx is below the 10x contract\n" warm_speedup;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Part 2d: the unified-pipeline dispatch benchmark                     *)

(* The request -> plan -> execute pipeline (Request / Runner.exec / Grid
   / Sched) replaced hand-rolled dispatch at every call site. This part
   holds it to its contract: dispatching a grid of campaigns through the
   pipeline costs at most 3% over dispatching the same campaigns
   directly — Runner.run_campaign plus a hand-rolled find/compute/add
   store loop, exactly what call sites did before — with bit-identical
   results in all three regimes: no store, cold store, warm store.

   Timings are min-of-reps; the warm comparison times a batch of sweeps
   per rep because a fully cached sweep is microseconds per cell. The
   overhead assertion only runs in non-smoke mode (one rep over a tiny
   grid measures timer noise, not dispatch cost); bit-identity is
   asserted always. Results land in BENCH_pipeline.json. *)

let pipeline_bench ~smoke () =
  section "Unified pipeline: request -> plan -> execute dispatch overhead";
  let devices = [ Device.make Profile.nvidia; Device.make Profile.intel ] in
  let tests =
    List.filter_map
      (fun name -> Option.map (fun (e : Suite.entry) -> e.Suite.test) (Suite.find name))
      [ "MP-CO-m"; "CoRR-m"; "MP-relacq-m3" ]
  in
  let base = Params.scaled Params.pte_baseline 0.02 in
  let envs =
    List.init
      (if smoke then 2 else 10)
      (fun i -> { base with Params.testing_workgroups = 2 + (2 * i) })
  in
  let iterations = if smoke then 1 else 20 in
  let seed = 20230325 in
  let cells =
    Array.of_list
      (List.concat_map
         (fun device ->
           List.concat_map (fun test -> List.map (fun env -> (device, env, test)) envs) tests)
         devices)
  in
  let n = Array.length cells in
  let cell_seed i = Prng.mix seed i in
  Printf.printf "  grid of %d campaign cells (%d iterations per cell)\n%!" n iterations;
  (* Direct dispatch: the raw engine and a hand-rolled store loop. *)
  let direct_nostore () =
    Array.mapi
      (fun i (device, env, test) ->
        fst
          (Runner.run_campaign ~classify:None ~device ~env ~test ~iterations ~seed:(cell_seed i)
             ()))
      cells
  in
  let direct_store store =
    Array.mapi
      (fun i (device, env, test) ->
        let seed = cell_seed i in
        let key = Runner.cell_key ~kind:"run" ~device ~env ~test ~iterations ~seed () in
        let computed () =
          fst (Runner.run_campaign ~classify:None ~device ~env ~test ~iterations ~seed ())
        in
        match Store.find store key with
        | Some payload -> (
            match Runner.result_of_json payload with Ok r -> r | Error _ -> computed ())
        | None ->
            let r = computed () in
            Store.add store key (Runner.result_to_json r);
            r)
      cells
  in
  (* Unified dispatch: the same grid through the pipeline. *)
  let request i =
    let device, env, test = cells.(i) in
    Request.make ~device ~env ~test ~iterations ~seed:(cell_seed i) ()
  in
  let grid = Grid.make Runner.Rate ~n ~request in
  let unified_nostore () = Grid.run Request.serial grid in
  let unified_store store = Grid.run (Request.context ~store ()) grid in
  (* min-of-reps timing; [prepare] runs outside the timed region. *)
  let time_min ~reps ?(prepare = fun () -> ()) f =
    let best = ref infinity in
    let out = ref None in
    for _ = 1 to reps do
      prepare ();
      let r, t = wall f in
      if t < !best then best := t;
      out := Some r
    done;
    (Option.get !out, !best)
  in
  (* Warm sweeps are too fast for one-shot timing: time [inner] sweeps
     back to back and report per-sweep seconds. *)
  let time_min_batch ~reps ~inner f =
    let best = ref infinity in
    let out = ref None in
    for _ = 1 to reps do
      let (), t = wall (fun () -> for _ = 1 to inner do out := Some (f ()) done) in
      let per = t /. float_of_int inner in
      if per < !best then best := per
    done;
    (Option.get !out, !best)
  in
  let reps = if smoke then 1 else 3 in
  let warm_reps = if smoke then 1 else 5 in
  let warm_inner = if smoke then 2 else 20 in
  let root =
    match Sys.getenv_opt "MCM_BENCH_PIPELINE_DIR" with
    | Some p when p <> "" -> p
    | _ -> "_bench_pipeline"
  in
  rm_rf root;
  let direct_dir = Filename.concat root "direct" in
  let unified_dir = Filename.concat root "unified" in
  let overhead direct_s unified_s =
    if direct_s > 0. then (unified_s -. direct_s) /. direct_s else 0.
  in
  let report label direct_s unified_s identical =
    Printf.printf "  %-9s direct %8.4f s   unified %8.4f s   overhead %+6.2f%%%s\n%!" label
      direct_s unified_s
      (100. *. overhead direct_s unified_s)
      (if identical then "   (bit-identical)" else "   RESULTS DIVERGED")
  in
  (* 1. No store: pure dispatch over the raw engine. *)
  let d_ns, d_ns_s = time_min ~reps direct_nostore in
  let u_ns, u_ns_s = time_min ~reps unified_nostore in
  let ns_identical = u_ns = d_ns in
  report "no store" d_ns_s u_ns_s ns_identical;
  (* 2. Cold store: every cell computed and persisted. *)
  let d_cold, d_cold_s =
    time_min ~reps
      ~prepare:(fun () -> rm_rf direct_dir)
      (fun () -> Store.with_store direct_dir (fun s -> direct_store s))
  in
  let u_cold, u_cold_s =
    time_min ~reps
      ~prepare:(fun () -> rm_rf unified_dir)
      (fun () -> Store.with_store unified_dir (fun s -> unified_store s))
  in
  let cold_identical = d_cold = d_ns && u_cold = d_ns in
  report "cold" d_cold_s u_cold_s cold_identical;
  (* 3. Warm store: every cell served from the stores the cold reps
     left behind (store open + key + find + decode per cell). *)
  let d_warm, d_warm_s =
    time_min_batch ~reps:warm_reps ~inner:warm_inner (fun () ->
        Store.with_store direct_dir (fun s -> direct_store s))
  in
  let u_warm, u_warm_s =
    time_min_batch ~reps:warm_reps ~inner:warm_inner (fun () ->
        Store.with_store unified_dir (fun s -> unified_store s))
  in
  let warm_identical = d_warm = d_ns && u_warm = d_ns in
  report "warm" d_warm_s u_warm_s warm_identical;
  let identical = ns_identical && cold_identical && warm_identical in
  let mode direct_s unified_s =
    Jsonw.Obj
      [
        ("direct_s", Jsonw.Float direct_s);
        ("unified_s", Jsonw.Float unified_s);
        ("overhead", Jsonw.Float (overhead direct_s unified_s));
      ]
  in
  let json =
    Jsonw.Obj
      [
        ("benchmark", Jsonw.String "unified-pipeline-dispatch");
        ("smoke", Jsonw.Bool smoke);
        ("grid_points", Jsonw.Int n);
        ("iterations", Jsonw.Int iterations);
        ("overhead_budget", Jsonw.Float 0.03);
        ("no_store", mode d_ns_s u_ns_s);
        ("cold", mode d_cold_s u_cold_s);
        ("warm", mode d_warm_s u_warm_s);
        ("identical_to_direct", Jsonw.Bool identical);
      ]
  in
  let path =
    match Sys.getenv_opt "MCM_BENCH_PIPELINE_OUT" with
    | Some p when p <> "" -> p
    | _ -> "BENCH_pipeline.json"
  in
  let oc = open_out path in
  Jsonw.to_channel oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n%!" path;
  if not identical then begin
    prerr_endline "bench: unified pipeline diverged from direct dispatch";
    exit 1
  end;
  if not smoke then begin
    let check label direct_s unified_s =
      let o = overhead direct_s unified_s in
      if o > 0.03 then begin
        Printf.eprintf "bench: unified pipeline %s overhead %.2f%% exceeds the 3%% contract\n"
          label (100. *. o);
        exit 1
      end
    in
    check "cold" d_cold_s u_cold_s;
    check "warm" d_warm_s u_warm_s
  end

(* ------------------------------------------------------------------ *)
(* Part 2e: the campaign-service benchmark                              *)

(* Three contracts for `mcmutants serve`, recorded in BENCH_serve.json:

   1. Throughput: two clients splitting a cold grid between them over
      the daemon's socket must aggregate to at least 95% of the
      single-client direct store path (Grid.run with a store) — the
      protocol, fsync-per-cell and scheduling may cost at most 5%.
   2. Dedup: two clients submitting the SAME cold grid concurrently
      cause each distinct cell to execute exactly once.
   3. Warm latency: a fully cached grid answers in under 10 ms per cell
      including the socket round-trip.

   Timing contracts are asserted in non-smoke runs; the functional
   contracts (dedup counts, warm hits) are asserted always. *)

module Proto = Mcm_serve.Proto
module Server = Mcm_serve.Server
module Client = Mcm_serve.Client

let serve_bench ~smoke () =
  section "Campaign service: multi-client daemon vs direct store path";
  let jobs = 2 in
  let devices = [ Device.make Profile.nvidia; Device.make Profile.intel ] in
  let test_names = [ "MP-CO-m"; "CoRR-m"; "MP-relacq-m3" ] in
  let tests =
    List.filter_map
      (fun name -> Option.map (fun (e : Suite.entry) -> e.Suite.test) (Suite.find name))
      test_names
  in
  let base = Params.scaled Params.pte_baseline 0.02 in
  let envs =
    List.init (if smoke then 2 else 4) (fun i -> { base with Params.testing_workgroups = 2 + (2 * i) })
  in
  let iterations = if smoke then 2 else 40 in
  let seed = 20230325 in
  let triples =
    Array.of_list
      (List.concat_map
         (fun device ->
           List.concat_map
             (fun (name, test) -> List.map (fun env -> (device, env, name, test)) envs)
             (List.combine test_names tests))
         devices)
  in
  let n = Array.length triples in
  Printf.printf "  grid of %d campaign cells (%d iterations per cell, %d worker domain(s))\n%!" n
    iterations jobs;
  let cell_seed i = Prng.mix seed i in
  let root =
    match Sys.getenv_opt "MCM_BENCH_SERVE_DIR" with
    | Some p when p <> "" -> p
    | _ -> "_bench_serve"
  in
  rm_rf root;
  Unix.mkdir root 0o755;
  (* 1a. The yardstick: the same cold grid through Grid.run + a store —
     what one client sweeping directly would do. It runs in a forked
     child because creating worker domains in this process would forbid
     the forks the daemon and client phases need (Unix.fork is
     single-domain-only on OCaml 5); the child is timed fork-to-exit,
     the same boundary the serve phase is timed over. *)
  let direct_dir = Filename.concat root "direct" in
  let (), direct_s =
    wall (fun () ->
        match Unix.fork () with
        | 0 ->
            let code =
              try
                let request i =
                  let device, env, _, test = triples.(i) in
                  Request.make ~device ~env ~test ~iterations ~seed:(cell_seed i) ()
                in
                let grid = Grid.make Runner.Rate ~n ~request in
                Store.with_store direct_dir (fun store ->
                    ignore (Grid.run (Request.context ~domains:jobs ~store ()) grid));
                0
              with _ -> 1
            in
            Unix._exit code
        | pid -> (
            match snd (Unix.waitpid [] pid) with
            | Unix.WEXITED 0 -> ()
            | _ ->
                prerr_endline "bench: direct sweep failed";
                exit 1))
  in
  Printf.printf "  direct store path       %8.3f s  (%5.1f cells/s)\n%!" direct_s
    (float_of_int n /. direct_s);
  (* The daemon, forked like the CLI would run it. *)
  let socket = Filename.concat root "serve.sock" in
  let store_dir = Filename.concat root "store" in
  let daemon =
    match Unix.fork () with
    | 0 ->
        let code =
          try
            let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
            Unix.dup2 devnull Unix.stderr;
            ignore
              (Server.run
                 { Server.store_dir; socket_path = socket; port = None; jobs; verbose = false });
            0
          with _ -> 1
        in
        Unix._exit code
    | pid -> pid
  in
  let connect name =
    match Client.connect ~name socket with
    | Ok c -> c
    | Error e ->
        prerr_endline ("bench: connect: " ^ e);
        exit 1
  in
  let mk_cell i =
    let _, env, name, _ = triples.(i) in
    let device, _, _, _ = triples.(i) in
    {
      Proto.c_test = Proto.Name name;
      c_device = String.lowercase_ascii device.Mcm_gpu.Device.profile.Profile.short_name;
      c_bugs = false;
      c_env = env;
      c_iterations = iterations;
      c_seed = cell_seed i;
      c_engine = Request.Kernel;
    }
  in
  let submit_indices client indices =
    match Client.submit ~kind:"run" client (List.map mk_cell indices) with
    | Ok g -> g
    | Error e ->
        prerr_endline ("bench: submit: " ^ e);
        exit 1
  in
  (* A report counter, read over an admin session. *)
  let report_total name =
    let c = connect "bench-report" in
    Client.send c Proto.Report;
    let rec next () =
      match Client.recv c with
      | Ok (Proto.Reply { op = "report"; data }) -> data
      | Ok _ -> next ()
      | Error e ->
          prerr_endline ("bench: report: " ^ e);
          exit 1
    in
    let data = next () in
    Client.close c;
    let module Jsonp = Mcm_util.Jsonp in
    Option.value ~default:(-1)
      (Option.bind (Option.bind (Jsonp.member "totals" data) (Jsonp.member name)) Jsonp.to_int)
  in
  (* 1b. Two clients split the cold grid: child processes so the
     submissions genuinely overlap; the parent times both from fork to
     the second exit. *)
  let halves =
    ( List.init n (fun i -> i) |> List.filter (fun i -> i mod 2 = 0),
      List.init n (fun i -> i) |> List.filter (fun i -> i mod 2 = 1) )
  in
  let fork_client name indices =
    match Unix.fork () with
    | 0 ->
        let code =
          try
            let c = connect name in
            let g = submit_indices c indices in
            Client.close c;
            if Array.length g.Client.cells = List.length indices then 0 else 1
          with _ -> 2
        in
        Unix._exit code
    | pid -> pid
  in
  let reap pid what =
    match snd (Unix.waitpid [] pid) with
    | Unix.WEXITED 0 -> ()
    | _ ->
        Printf.eprintf "bench: %s client failed\n" what;
        exit 1
  in
  let (), serve_s =
    wall (fun () ->
        let a = fork_client "half-a" (fst halves) in
        let b = fork_client "half-b" (snd halves) in
        reap a "first";
        reap b "second")
  in
  let computed_cold = report_total "computed" in
  let serve_vs_direct = if serve_s > 0. then direct_s /. serve_s else 0. in
  Printf.printf "  serve, 2 clients, cold  %8.3f s  (%5.1f cells/s)  %.2fx of direct\n%!" serve_s
    (float_of_int n /. serve_s) serve_vs_direct;
  if computed_cold <> n then begin
    Printf.eprintf "bench: cold halves computed %d cells, expected %d\n" computed_cold n;
    exit 1
  end;
  (* 2. Dedup: both clients submit the SAME grid (fresh seeds, so every
     cell is cold) at the same time; the ledger must show each distinct
     cell computed exactly once. *)
  let dedup_seed = seed + 1 in
  let mk_dedup i = { (mk_cell i) with Proto.c_seed = Prng.mix dedup_seed i } in
  let dedup_indices = List.init (min n (if smoke then 4 else 8)) (fun i -> i) in
  let before = report_total "computed" in
  let fork_dedup name =
    match Unix.fork () with
    | 0 ->
        let code =
          try
            let c = connect name in
            match Client.submit ~kind:"run" c (List.map mk_dedup dedup_indices) with
            | Ok _ ->
                Client.close c;
                0
            | Error _ -> 1
          with _ -> 2
        in
        Unix._exit code
    | pid -> pid
  in
  let a = fork_dedup "dedup-a" in
  let b = fork_dedup "dedup-b" in
  reap a "dedup-a";
  reap b "dedup-b";
  let dedup_computed = report_total "computed" - before in
  let dedup_cells = List.length dedup_indices in
  Printf.printf "  dedup: 2 x %d identical cells -> %d computed\n%!" dedup_cells dedup_computed;
  (* 3. Warm latency: the full grid again, now entirely cached. *)
  let warm_client = connect "warm" in
  let warm, warm_s = wall (fun () -> submit_indices warm_client (List.init n (fun i -> i))) in
  Client.close warm_client;
  let warm_ms_per_cell = 1000. *. warm_s /. float_of_int n in
  Printf.printf "  warm grid               %8.3f s  (%.3f ms/cell, %d/%d hits)\n%!" warm_s
    warm_ms_per_cell warm.Client.hits warm.Client.total;
  (* Shut the daemon down cleanly and reap it. *)
  let c = connect "bench-shutdown" in
  Client.send c Proto.Shutdown;
  (match Client.recv c with Ok _ | Error _ -> ());
  Client.close c;
  (match snd (Unix.waitpid [] daemon) with
  | Unix.WEXITED 0 -> ()
  | _ ->
      prerr_endline "bench: daemon did not exit cleanly";
      exit 1);
  let json =
    Jsonw.Obj
      [
        ("benchmark", Jsonw.String "campaign-service");
        ("smoke", Jsonw.Bool smoke);
        ("grid_points", Jsonw.Int n);
        ("iterations", Jsonw.Int iterations);
        ("direct_s", Jsonw.Float direct_s);
        ( "multi_client",
          Jsonw.Obj
            [
              ("clients", Jsonw.Int 2);
              ("seconds", Jsonw.Float serve_s);
              ("throughput_vs_direct", Jsonw.Float serve_vs_direct);
              ("throughput_floor", Jsonw.Float 0.95);
            ] );
        ( "dedup",
          Jsonw.Obj
            [
              ("submitted", Jsonw.Int (2 * dedup_cells));
              ("distinct", Jsonw.Int dedup_cells);
              ("computed", Jsonw.Int dedup_computed);
            ] );
        ( "warm",
          Jsonw.Obj
            [
              ("seconds", Jsonw.Float warm_s);
              ("ms_per_cell", Jsonw.Float warm_ms_per_cell);
              ("ms_per_cell_budget", Jsonw.Float 10.);
              ("hits", Jsonw.Int warm.Client.hits);
            ] );
      ]
  in
  let path =
    match Sys.getenv_opt "MCM_BENCH_SERVE_OUT" with
    | Some p when p <> "" -> p
    | _ -> "BENCH_serve.json"
  in
  let oc = open_out path in
  Jsonw.to_channel oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n%!" path;
  if dedup_computed <> dedup_cells then begin
    Printf.eprintf "bench: dedup broke — %d distinct cells but %d computed\n" dedup_cells
      dedup_computed;
    exit 1
  end;
  if warm.Client.hits <> n then begin
    Printf.eprintf "bench: warm grid expected %d hits, got %d\n" n warm.Client.hits;
    exit 1
  end;
  if not smoke then begin
    if serve_vs_direct < 0.95 then begin
      Printf.eprintf
        "bench: multi-client throughput %.2fx of the direct path is below the 0.95x contract\n"
        serve_vs_direct;
      exit 1
    end;
    if warm_ms_per_cell > 10. then begin
      Printf.eprintf "bench: warm-hit latency %.2f ms/cell exceeds the 10 ms contract\n"
        warm_ms_per_cell;
      exit 1
    end
  end

(* ------------------------------------------------------------------ *)
(* Part 2f: the mutant-schemata benchmark                               *)

(* The schema plan's contract, recorded in BENCH_schemata.json:

   1. Correctness: a full-matrix sweep under the schema plan (shared
      kernel images, prefab memoization, workspace arena, family-grouped
      dispatch) is bit-identical to the per-cell plan, which compiles
      every cell from scratch — the reference path. Asserted always;
      divergence exits non-zero.
   2. Speed: on a Table 4-shaped matrix in the compile-dominated regime
      (Single-mode environments run one instance per iteration, a seeds
      axis makes whole campaign prefixes recur), the schema plan must be
      at least 2x faster than per-cell compilation. Asserted in
      non-smoke runs; smoke grids are too small to time.
   3. The column API: one [Kernel.Schema] image over a conformance test,
      all its mutants and a bug-injection variant — one compile and one
      workspace for the whole column — replays every variant against
      per-variant [Kernel.compile] with outcome and PRNG-state equality
      checked draw for draw.

   Engine counters (images compiled, schema/prefab reuses, workspace
   reuses) are recorded for the schema run so the reuse the speedup
   claims actually happened is visible in the JSON. *)

module Kernel = Mcm_gpu.Kernel

let schemata_bench ~smoke () =
  section "Mutant schemata: per-cell compilation vs shared images";
  let seed = 20230325 in
  let iterations = 1 in
  let n_envs = if smoke then 2 else 4 in
  let n_seeds = if smoke then 2 else 32 in
  (* The three Table 4 case studies: (vendor, conformance test) columns
     of conf :: mutants, on the vendor's buggy device. *)
  let cases =
    List.map
      (fun (profile, conf_name, _) ->
        let device =
          match Bug.paper_bug profile with
          | Some bug -> Device.make ~bugs:[ bug ] profile
          | None -> Device.make profile
        in
        let conf = (Option.get (Suite.find conf_name)).Suite.test in
        let mutants = List.map (fun (e : Suite.entry) -> e.Suite.test) (Suite.mutants_of conf_name) in
        (conf_name, device, conf :: mutants))
      Experiments.Table4.cases
  in
  (* Single-mode environments execute one instance per iteration, so a
     cell's cost is dominated by the campaign prefix (compile, workspace,
     weak params, horizon) — the work the schema plan memoizes. The
     seeds axis makes full (engine, test, device, env) prefixes recur. *)
  let cells =
    Array.of_list
      (List.concat_map
         (fun (conf_name, device, tests) ->
           let g = Prng.create (Prng.mix seed (Hashtbl.hash conf_name)) in
           let envs =
             List.init n_envs (fun _ -> Params.scaled (Params.random g Params.Single) 0.02)
           in
           List.concat_map
             (fun (test : Litmus.t) ->
               List.concat_map
                 (fun env ->
                   List.init n_seeds (fun s ->
                       let seed =
                         Prng.mix seed (Hashtbl.hash (conf_name, test.Litmus.name, s))
                       in
                       Request.make ~device ~env ~test ~iterations ~seed ()))
                 envs)
             tests)
         cases)
  in
  let n = Array.length cells in
  let col = n_envs * n_seeds in
  let family i = i / col in
  let grid = Grid.make ~family Runner.Rate ~n ~request:(Array.get cells) in
  let sweep plan () = Grid.run (Request.context ~plan ~domains:1 ()) grid in
  Printf.printf
    "  matrix of %d cells (%d columns x %d envs x %d seeds, %d iteration(s), Single mode)\n%!" n
    (n / col) n_envs n_seeds iterations;
  (* Reference results + the schema run's counter delta, before the
     timed reps warm any domain-local cache. *)
  let reference = sweep Request.Per_cell () in
  let s0 = Runner.engine_stats () in
  let schema_res = sweep Request.Schema () in
  let counters = Runner.engine_stats_sub (Runner.engine_stats ()) s0 in
  let identical = schema_res = reference in
  Printf.printf "  schema run: %s\n%!" (Format.asprintf "%a" Runner.pp_engine_stats counters);
  let time_min ~reps f =
    let best = ref infinity in
    for _ = 1 to reps do
      let _, t = wall f in
      if t < !best then best := t
    done;
    !best
  in
  let reps = if smoke then 1 else 10 in
  let per_cell_s = time_min ~reps (sweep Request.Per_cell) in
  let schema_s = time_min ~reps (sweep Request.Schema) in
  let speedup = if schema_s > 0. then per_cell_s /. schema_s else 0. in
  Printf.printf "  per-cell plan           %8.4f s\n%!" per_cell_s;
  Printf.printf "  schema plan             %8.4f s   %5.2fx%s\n%!" schema_s speedup
    (if identical then "   (bit-identical)" else "   RESULTS DIVERGED");
  (* The column API head to head: one schema image + one workspace for
     conf :: mutants :: bug variant, against a fresh compile + workspace
     per variant, outcomes and PRNG states compared draw for draw. *)
  let profile = Profile.nvidia in
  let conf_name = "MP-CO" in
  let conf = (Option.get (Suite.find conf_name)).Suite.test in
  let env = Params.scaled Params.pte_baseline 0.02 in
  let variant_of device (test : Litmus.t) =
    let roles = Litmus.nthreads test in
    let weak =
      Gpu_instance.effective_params device.Device.profile
        ~amplification:(Runner.amplification device env ~roles)
    in
    (weak, Device.effect device, test)
  in
  let correct = Device.make profile in
  let buggy =
    match Bug.paper_bug profile with
    | Some bug -> Device.make ~bugs:[ bug ] profile
    | None -> correct
  in
  let variants =
    Array.of_list
      (variant_of correct conf
       :: List.map
            (fun (e : Suite.entry) -> variant_of correct e.Suite.test)
            (Suite.mutants_of conf_name)
      @ [ variant_of buggy conf ])
  in
  let runs_per_variant = if smoke then 50 else 2_000 in
  let starts_of (test : Litmus.t) =
    Array.init (Litmus.nthreads test) (fun r -> 2. *. float_of_int r)
  in
  let column_agrees = ref true in
  let schema_col_s =
    let (), t =
      wall (fun () ->
          let s = Kernel.Schema.compile ~variants () in
          let ws = Kernel.Schema.workspace s in
          Array.iteri
            (fun v (_, _, test) ->
              let g = Prng.create (Prng.mix seed v) in
              let starts = starts_of test in
              for _ = 1 to runs_per_variant do
                ignore (Kernel.Schema.run s ws ~variant:v ~prng:g ~starts)
              done)
            variants)
    in
    t
  in
  let per_variant_col_s =
    let (), t =
      wall (fun () ->
          Array.iteri
            (fun v (weak, bugs, test) ->
              let k = Kernel.compile ~weak ~bugs ~test () in
              let kws = Kernel.workspace k in
              let g = Prng.create (Prng.mix seed v) in
              let starts = starts_of test in
              for _ = 1 to runs_per_variant do
                ignore (Kernel.run k kws ~prng:g ~starts)
              done)
            variants)
    in
    t
  in
  (* The equality replay (outside the timed regions): both paths from
     one seed, outcome and PRNG state compared after every instance. *)
  let s = Kernel.Schema.compile ~variants () in
  let ws = Kernel.Schema.workspace s in
  Array.iteri
    (fun v (weak, bugs, test) ->
      let k = Kernel.compile ~weak ~bugs ~test () in
      let kws = Kernel.workspace k in
      let gs = Prng.create (Prng.mix seed v) in
      let gk = Prng.create (Prng.mix seed v) in
      let starts = starts_of test in
      for _ = 1 to runs_per_variant do
        let os = Kernel.Schema.run s ws ~variant:v ~prng:gs ~starts in
        let ok = Kernel.run k kws ~prng:gk ~starts in
        if not (os = ok && Prng.state gs = Prng.state gk) then column_agrees := false
      done)
    variants;
  let column_speedup = if schema_col_s > 0. then per_variant_col_s /. schema_col_s else 0. in
  Printf.printf "  column of %d variants, %d runs each\n" (Array.length variants)
    runs_per_variant;
  Printf.printf "    per-variant compile   %8.4f s\n%!" per_variant_col_s;
  Printf.printf "    one schema image      %8.4f s   %5.2fx%s\n%!" schema_col_s column_speedup
    (if !column_agrees then "   (bit-identical, PRNG states equal)"
     else "   RESULTS DIVERGED");
  let all_identical = identical && !column_agrees in
  let json =
    Jsonw.Obj
      [
        ("benchmark", Jsonw.String "mutant-schemata");
        ("smoke", Jsonw.Bool smoke);
        ("kernel_code_version", Jsonw.Int Kernel.code_version);
        ("grid_points", Jsonw.Int n);
        ("columns", Jsonw.Int (n / col));
        ("envs", Jsonw.Int n_envs);
        ("seeds", Jsonw.Int n_seeds);
        ("iterations", Jsonw.Int iterations);
        ("per_cell_s", Jsonw.Float per_cell_s);
        ("schema_s", Jsonw.Float schema_s);
        ("speedup", Jsonw.Float speedup);
        ("speedup_target", Jsonw.Float 2.);
        ("identical_to_per_cell", Jsonw.Bool all_identical);
        ( "engine",
          Jsonw.Obj
            [
              ("kernels_compiled", Jsonw.Int counters.Runner.kernels_compiled);
              ("schema_reuses", Jsonw.Int counters.Runner.schema_reuses);
              ("workspaces_built", Jsonw.Int counters.Runner.workspaces_built);
              ("workspace_reuses", Jsonw.Int counters.Runner.workspace_reuses);
            ] );
        ( "column",
          Jsonw.Obj
            [
              ("variants", Jsonw.Int (Array.length variants));
              ("runs_per_variant", Jsonw.Int runs_per_variant);
              ("per_variant_s", Jsonw.Float per_variant_col_s);
              ("schema_s", Jsonw.Float schema_col_s);
              ("speedup", Jsonw.Float column_speedup);
              ("agrees", Jsonw.Bool !column_agrees);
            ] );
      ]
  in
  let path =
    match Sys.getenv_opt "MCM_BENCH_SCHEMATA_OUT" with
    | Some p when p <> "" -> p
    | _ -> "BENCH_schemata.json"
  in
  let oc = open_out path in
  Jsonw.to_channel oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n%!" path;
  if not all_identical then begin
    prerr_endline "bench: schema plan diverged from per-cell compilation";
    exit 1
  end;
  if (not smoke) && speedup < 2. then begin
    Printf.eprintf "bench: schema plan speedup %.2fx is below the 2x contract\n" speedup;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Part: generated corpus                                               *)

(* Contracts, asserted on every run (exit 1 on violation):

   1. the admission gate is sound by construction — zero uncertified
      entries and zero cross-engine disagreements with the check on;
   2. seeded generation is byte-reproducible: the same configuration
      serializes to the same bytes across domain counts;
   3. a generated corpus is an ordinary campaign — through the schemata
      plan with a store, a warm rerun is served 100% from cache and is
      bit-identical to the cold run.

   The recorded numbers (candidate executions certified per second and
   the admission rate) track the generator's throughput; the campaign
   section tracks that corpus cells stay store-cacheable. *)

module Corpus = Mcm_corpus.Corpus
module CShape = Mcm_corpus.Shape
module CAdmit = Mcm_corpus.Admit

let corpus_bench ~smoke () =
  section "Generated corpus: synthesis, oracle-certified admission, campaign";
  let shape_spec = if smoke then "2x3x2" else "2x5x2" in
  let shape =
    match CShape.of_spec shape_spec with
    | Ok s -> s
    | Error e ->
        Printf.eprintf "bench: bad corpus shape %s: %s\n" shape_spec e;
        exit 1
  in
  let meta = { Corpus.default_meta with Corpus.shape } in
  (* 1. Generation + admission throughput, cross-engine check on. *)
  let corpus, gen_s = wall (fun () -> Corpus.generate ~cross_check:true ~domains:2 meta) in
  let s = corpus.Corpus.stats in
  let candidates_per_s =
    if gen_s > 0. then float_of_int s.CAdmit.candidates /. gen_s else 0.
  in
  let admission_rate =
    if s.CAdmit.programs > 0 then
      float_of_int s.CAdmit.admitted /. float_of_int s.CAdmit.programs
    else 0.
  in
  let engines_agree = s.CAdmit.uncertified = 0 && s.CAdmit.disagreements = 0 in
  Printf.printf
    "  shape %s: %d programs through the gate (%d raw enumerations), %d candidate executions\n"
    shape_spec s.CAdmit.programs s.CAdmit.raw s.CAdmit.candidates;
  Printf.printf
    "  admitted %d (%d conformance, %d weak, %d interleaved, %d operator mutants)\n"
    s.CAdmit.admitted s.CAdmit.conformance s.CAdmit.weak s.CAdmit.interleaved
    s.CAdmit.operator_mutants;
  Printf.printf "  admission              %8.4f s   %8.0f candidates/s, rate %.2f\n"
    gen_s candidates_per_s admission_rate;
  Printf.printf "  cross-engine check     %s\n%!"
    (if engines_agree then "both oracle engines agree on every verdict"
     else
       Printf.sprintf "%d uncertified, %d DISAGREEMENT(S)" s.CAdmit.uncertified
         s.CAdmit.disagreements);
  (* 2. Byte reproducibility across domain counts. *)
  let corpus1 = Corpus.generate ~cross_check:true ~domains:1 meta in
  let reproducible = Corpus.to_string corpus = Corpus.to_string corpus1 in
  Printf.printf "  reproducibility        %s\n%!"
    (if reproducible then "byte-identical across domain counts" else "BYTES DIVERGED");
  (* 3. The corpus as a campaign: schemata plan + store, cold then warm. *)
  let root =
    match Sys.getenv_opt "MCM_BENCH_CORPUS_DIR" with
    | Some p when p <> "" -> p
    | _ -> "_bench_corpus"
  in
  rm_rf root;
  let entries = Array.of_list corpus.Corpus.entries in
  let n = Array.length entries in
  let device = Device.make Profile.nvidia in
  let env = Params.scaled Params.pte_baseline 0.02 in
  let iterations = if smoke then 2 else 20 in
  let request i =
    Request.make ~device ~env ~test:entries.(i).CAdmit.test ~iterations ~seed:20230325 ()
  in
  let grid = Grid.make Runner.Rate ~n ~request in
  let sweep () =
    Store.with_store root (fun store ->
        Grid.run_stats (Request.context ~domains:2 ~store ~plan:Request.Schema ()) grid)
  in
  let (cold_res, _), cold_s = wall sweep in
  let (warm_res, warm_stats), warm_s = wall sweep in
  let warm_hits, warm_misses =
    match warm_stats with
    | Some st -> (st.Mcm_campaign.Sched.hits, st.Mcm_campaign.Sched.misses)
    | None -> (0, n)
  in
  let campaign_identical = warm_res = cold_res in
  let warm_all_hits = warm_hits = n && warm_misses = 0 in
  Printf.printf "  campaign (%d cells, %d iterations, schemata plan + store)\n" n iterations;
  Printf.printf "    cold store           %8.4f s\n" cold_s;
  Printf.printf "    warm store           %8.4f s   %d/%d hit(s)%s\n%!" warm_s warm_hits n
    (if campaign_identical then "   (bit-identical)" else "   RESULTS DIVERGED");
  let json =
    Jsonw.Obj
      [
        ("benchmark", Jsonw.String "corpus");
        ("smoke", Jsonw.Bool smoke);
        ("corpus_version", Jsonw.String Mcm_corpus.Version.version);
        ("shape", Jsonw.String shape_spec);
        ("raw", Jsonw.Int s.CAdmit.raw);
        ("programs", Jsonw.Int s.CAdmit.programs);
        ("candidates", Jsonw.Int s.CAdmit.candidates);
        ("admitted", Jsonw.Int s.CAdmit.admitted);
        ("conformance", Jsonw.Int s.CAdmit.conformance);
        ("weak", Jsonw.Int s.CAdmit.weak);
        ("interleaved", Jsonw.Int s.CAdmit.interleaved);
        ("operator_mutants", Jsonw.Int s.CAdmit.operator_mutants);
        ("generation_s", Jsonw.Float gen_s);
        ("candidates_per_s", Jsonw.Float candidates_per_s);
        ("admission_rate", Jsonw.Float admission_rate);
        ("engines_agree", Jsonw.Bool engines_agree);
        ("reproducible", Jsonw.Bool reproducible);
        ( "campaign",
          Jsonw.Obj
            [
              ("cells", Jsonw.Int n);
              ("iterations", Jsonw.Int iterations);
              ("cold_s", Jsonw.Float cold_s);
              ("warm_s", Jsonw.Float warm_s);
              ("warm_hits", Jsonw.Int warm_hits);
              ("warm_misses", Jsonw.Int warm_misses);
              ("identical", Jsonw.Bool campaign_identical);
            ] );
      ]
  in
  let path =
    match Sys.getenv_opt "MCM_BENCH_CORPUS_OUT" with
    | Some p when p <> "" -> p
    | _ -> "BENCH_corpus.json"
  in
  let oc = open_out path in
  Jsonw.to_channel oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n%!" path;
  if not engines_agree then begin
    prerr_endline "bench: corpus admission verdicts diverged between oracle engines";
    exit 1
  end;
  if not reproducible then begin
    prerr_endline "bench: seeded corpus generation is not byte-reproducible";
    exit 1
  end;
  if not (warm_all_hits && campaign_identical) then begin
    Printf.eprintf
      "bench: corpus campaign cache contract violated (%d/%d warm hits, identical=%B)\n"
      warm_hits n campaign_identical;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Part: memory scopes — BENCH_scope.json                               *)

(* Two contracts behind the scoped semantics:

   1. Both oracle engines compute identical scoped allowed-sets across
      MP/LB/SB, their fence-narrowed variants, and both thread layouts
      (engines_agree) — the scoped sw gate is implemented twice, in
      enumeration filtering and in constraint propagation, and must
      never drift.
   2. The Scope_dropped bug injection is detected exactly when testing
      spans workgroups: a device-scope conformance test kills it
      inter-workgroup, sees nothing intra-workgroup, and a clean device
      never violates. Both execution engines must report bit-identical
      campaigns (identical).

   Any violated contract exits 1. *)

let scope_bench ~smoke () =
  let module Scope = Mcm_memmodel.Scope in
  let module Instr = Mcm_litmus.Instr in
  section "Memory scopes: oracle agreement + scope-drop detection";
  (* 1. Scoped oracle layer, both engines, both layouts. *)
  let narrowed (t : Litmus.t) =
    {
      t with
      Litmus.name = t.Litmus.name ^ "-wg";
      threads =
        Array.map
          (List.map (fun i ->
               if Instr.is_fence i then Instr.with_scope Scope.Workgroup i else i))
          t.Litmus.threads;
    }
  in
  let base = [ Library.mp_relacq; Library.lb_relacq; Library.sb_relacq_rmw ] in
  let tests = base @ List.map narrowed base in
  let layouts = [ Scope.Inter; Scope.Intra ] in
  let allowed_sets engine =
    List.concat_map
      (fun t ->
        List.map
          (fun layout ->
            Oracle_outcome.elements (Oracle_outcome.allowed ~engine ~layout t.Litmus.model t))
          layouts)
      tests
  in
  let enum_sets, enum_s = wall (fun () -> allowed_sets Oracle_engine.Enumerate) in
  let prop_sets, prop_s = wall (fun () -> allowed_sets Oracle_engine.Propagate) in
  let engines_agree = enum_sets = prop_sets in
  Printf.printf "  scoped allowed-sets (%d tests x %d layouts)\n" (List.length tests)
    (List.length layouts);
  Printf.printf "    enumerate            %8.4f s\n" enum_s;
  Printf.printf "    propagate            %8.4f s\n" prop_s;
  Printf.printf "    agreement            %s\n%!"
    (if engines_agree then "bit-identical under both engines" else "ENGINES DIVERGED");
  (* 2. Scope_dropped detection grid: {bugged, clean} devices x
     {inter, intra} workgroup layouts, through both execution engines. *)
  let bugged = Device.make ~bugs:[ Bug.Scope_dropped 1.0 ] Profile.nvidia in
  let clean = Device.make Profile.nvidia in
  let env_inter = Params.scaled Params.pte_baseline 0.05 in
  let env_intra = Params.with_scope env_inter Params.Intra_workgroup in
  let iterations = if smoke then 4 else 100 in
  let detector = Library.mp_relacq in
  let campaign engine =
    List.map
      (fun (device, env) ->
        (Runner.run ~engine ~domains:2 ~device ~env ~test:detector ~iterations ~seed:20230325 ())
          .Runner.kills)
      [ (bugged, env_inter); (bugged, env_intra); (clean, env_inter) ]
  in
  let interp_kills, interp_s = wall (fun () -> campaign Runner.Interpreter) in
  let kernel_kills, kernel_s = wall (fun () -> campaign Runner.Kernel) in
  let identical = interp_kills = kernel_kills in
  let inter_bug, intra_bug, inter_clean =
    match interp_kills with
    | [ a; b; c ] -> (a, b, c)
    | _ -> assert false
  in
  let detected_only_inter = inter_bug > 0 && intra_bug = 0 && inter_clean = 0 in
  Printf.printf "  scope-drop detection (%s, %d iterations)\n" detector.Litmus.name iterations;
  Printf.printf "    bugged, inter-wg     %6d violation(s)%s\n" inter_bug
    (if inter_bug > 0 then "   (bug caught)" else "   BUG MISSED");
  Printf.printf "    bugged, intra-wg     %6d violation(s)%s\n" intra_bug
    (if intra_bug = 0 then "   (invisible, as specified)" else "   FALSE ALARM");
  Printf.printf "    clean,  inter-wg     %6d violation(s)%s\n" inter_clean
    (if inter_clean = 0 then "" else "   FALSE ALARM");
  Printf.printf "    interpreter          %8.4f s\n" interp_s;
  Printf.printf "    kernel               %8.4f s   %s\n%!" kernel_s
    (if identical then "(bit-identical campaigns)" else "RESULTS DIVERGED");
  let json =
    Jsonw.Obj
      [
        ("benchmark", Jsonw.String "scope");
        ("smoke", Jsonw.Bool smoke);
        ("key_code_version", Jsonw.String Mcm_campaign.Key.code_version);
        ("kernel_code_version", Jsonw.Int Mcm_gpu.Kernel.code_version);
        ("corpus_version", Jsonw.String Mcm_corpus.Version.version);
        ( "oracle",
          Jsonw.Obj
            [
              ("tests", Jsonw.Int (List.length tests));
              ("layouts", Jsonw.Int (List.length layouts));
              ("enumerate_s", Jsonw.Float enum_s);
              ("propagate_s", Jsonw.Float prop_s);
            ] );
        ("engines_agree", Jsonw.Bool engines_agree);
        ( "detection",
          Jsonw.Obj
            [
              ("test", Jsonw.String detector.Litmus.name);
              ("iterations", Jsonw.Int iterations);
              ("inter_workgroup_bugged_kills", Jsonw.Int inter_bug);
              ("intra_workgroup_bugged_kills", Jsonw.Int intra_bug);
              ("inter_workgroup_clean_kills", Jsonw.Int inter_clean);
              ("detected_only_inter_workgroup", Jsonw.Bool detected_only_inter);
            ] );
        ("identical", Jsonw.Bool identical);
      ]
  in
  let path =
    match Sys.getenv_opt "MCM_BENCH_SCOPE_OUT" with
    | Some p when p <> "" -> p
    | _ -> "BENCH_scope.json"
  in
  let oc = open_out path in
  Jsonw.to_channel oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n%!" path;
  if not engines_agree then begin
    prerr_endline "bench: scoped allowed-sets diverged between oracle engines";
    exit 1
  end;
  if not identical then begin
    prerr_endline "bench: scope-drop campaigns diverged between execution engines";
    exit 1
  end;
  if not detected_only_inter then begin
    Printf.eprintf
      "bench: scope-drop detection contract violated (inter/bugged %d, intra/bugged %d, \
       inter/clean %d)\n"
      inter_bug intra_bug inter_clean;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Part 3: Bechamel micro-benchmarks                                    *)

open Bechamel
open Toolkit

let bench_tests () =
  let nvidia = Device.make Profile.nvidia in
  let small_env = Params.scaled Params.pte_baseline 0.005 in
  let mutant = (Option.get (Suite.find "MP-relacq-m3")).Suite.test in
  let conf = (Option.get (Suite.find "MP-relacq")).Suite.test in
  let tiny_config =
    { Tuning.n_envs = 2; site_iterations = 10; pte_iterations = 2; scale = 0.005; seed = 1 }
  in
  let weak = Gpu_instance.effective_params Profile.nvidia ~amplification:20. in
  let g = Prng.create 11 in
  [
    (* Table 2: the generator pipeline (templates, derivation by
       enumeration, all three mutators). *)
    Test.make ~name:"table2/suite-generation"
      (Staged.stage (fun () -> ignore (Suite.generate ())));
    (* Table 3 is static; its cost proxy is profile table rendering. *)
    Test.make ~name:"table3/render" (Staged.stage (fun () -> ignore (Experiments.table3 ())));
    (* Fig. 5's unit of work: one testing campaign of one mutant in one
       environment on one device. *)
    Test.make ~name:"fig5/pte-campaign"
      (Staged.stage (fun () ->
           ignore (Runner.run ~device:nvidia ~env:small_env ~test:mutant ~iterations:1 ~seed:3 ())));
    Test.make ~name:"fig5/site-campaign"
      (Staged.stage (fun () ->
           ignore
             (Runner.run ~device:nvidia ~env:Params.site_baseline ~test:mutant ~iterations:10
                ~seed:3 ())));
    (* Fig. 6's unit of work: one Algorithm-1 merge over a rate matrix. *)
    Test.make ~name:"fig6/merge-environments"
      (Staged.stage
         (let table = Array.init 150 (fun e -> Array.init 4 (fun d -> float_of_int (e + d))) in
          fun () ->
            ignore
              (Merge.choose
                 ~rate:(fun ~env ~device -> table.(env).(device))
                 ~n_envs:150 ~n_devices:4 ~target:0.99999 ~budget:64.)));
    (* Table 4's unit of work: a Pearson correlation over 150 pairs. *)
    Test.make ~name:"table4/pearson-150"
      (Staged.stage
         (let xs = Array.init 150 (fun i -> float_of_int i) in
          let ys = Array.init 150 (fun i -> float_of_int (i * i)) in
          fun () -> ignore (Pearson.p_value ~r:(Pearson.pcc xs ys) ~n:150)));
    (* The operational core: a single litmus-test instance execution. *)
    Test.make ~name:"substrate/instance-run"
      (Staged.stage (fun () ->
           ignore
             (Gpu_instance.run ~prng:g ~weak ~bugs:Bug.none ~test:conf ~starts:[| 0.; 10. |] ())));
    (* The axiomatic core: enumerate-and-classify a 6-event test. *)
    Test.make ~name:"substrate/enumerate-mp-relacq"
      (Staged.stage (fun () -> ignore (Enumerate.consistent_outcomes conf.Litmus.model conf)));
    (* The oracle's streaming counterpart of the same enumeration. *)
    Test.make ~name:"oracle/allowed-mp-relacq"
      (Staged.stage (fun () -> ignore (Oracle_outcome.allowed conf.Litmus.model conf)));
    (* One full mutant certificate (witness search + vacuity check). *)
    Test.make ~name:"oracle/certify-mutant"
      (Staged.stage (fun () -> ignore (Mcm_oracle.Certify.mutant mutant)));
    (* The textual format round-trip. *)
    Test.make ~name:"substrate/parse-roundtrip"
      (Staged.stage
         (let src = Mcm_litmus.Parse.to_source conf in
          fun () -> ignore (Mcm_litmus.Parse.parse src)));
    (* WGSL shader emission. *)
    Test.make ~name:"substrate/wgsl-emit"
      (Staged.stage (fun () -> ignore (Mcm_wgsl.Wgsl.shader conf ~env:small_env)));
    (* Outcome classification setup (one enumeration + thread orders). *)
    Test.make ~name:"substrate/classifier-build"
      (Staged.stage (fun () ->
           let classify = Mcm_litmus.Classify.classifier conf in
           ignore (classify (Litmus.empty_outcome conf))));
    (* Sec. 3.4 observability of one mutant under TSO. *)
    Test.make ~name:"prune/observable-under-tso"
      (Staged.stage (fun () ->
           ignore
             (Mcm_core.Prune.observable ~implementation:Mcm_memmodel.Cat.tso mutant)));
    (* A whole miniature tuning sweep (the fig5+fig6 driver). *)
    Test.make ~name:"harness/mini-sweep"
      (Staged.stage (fun () ->
           ignore
             (Tuning.sweep
                ~devices:[ nvidia ]
                ~tests:
                  (List.filter
                     (fun (e : Suite.entry) -> e.Suite.test.Litmus.name = "MP-CO-m")
                     (Suite.mutants ()))
                tiny_config)));
  ]

let run_benchmarks () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false () in
  section "Bechamel micro-benchmarks (ns per run)";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "  %-34s %14.1f ns/run\n%!" name est
          | _ -> Printf.printf "  %-34s (no estimate)\n%!" name)
        analyzed)
    (List.map (fun t -> Test.make_grouped ~name:"" [ t ]) (bench_tests ()))

let () =
  let smoke =
    match Sys.getenv_opt "MCM_BENCH_SMOKE" with
    | None | Some "" | Some "0" -> false
    | Some _ -> true
  in
  (* MCM_BENCH_PART runs a single part — e.g. `make bench-instance` sets
     MCM_BENCH_PART=instance for the kernel bench alone. *)
  match Sys.getenv_opt "MCM_BENCH_PART" with
  | Some "instance" -> instance_bench ~smoke ()
  | Some "parallel" -> parallel_bench ~smoke ()
  | Some "oracle" -> oracle_bench ~smoke ()
  | Some "store" -> store_bench ~smoke ()
  | Some "pipeline" -> pipeline_bench ~smoke ()
  | Some "serve" -> serve_bench ~smoke ()
  | Some "schemata" -> schemata_bench ~smoke ()
  | Some "corpus" -> corpus_bench ~smoke ()
  | Some "scope" -> scope_bench ~smoke ()
  | Some part ->
      Printf.eprintf
        "bench: unknown MCM_BENCH_PART %S \
         (instance|parallel|oracle|store|pipeline|serve|schemata|corpus|scope)\n"
        part;
      exit 2
  | None ->
      (* The instance bench is NOT part of the default runs: its
         zero-allocation contract only holds in the release profile
         (dev builds pass -opaque, defeating the Prng.Raw inlining), so
         it is reached exclusively through `make bench-instance{,-smoke}`,
         which set MCM_BENCH_PART=instance on a --profile release
         build. *)
      if smoke then begin
        (* CI-speed verification: build the suite, exercise the parallel
           sweep at 1 iteration, check bit-identity, skip the slow
           parts. *)
        print_endline "MC Mutants reproduction: smoke bench (MCM_BENCH_SMOKE)";
        parallel_bench ~smoke:true ();
        oracle_bench ~smoke:true ();
        store_bench ~smoke:true ();
        pipeline_bench ~smoke:true ();
        serve_bench ~smoke:true ();
        schemata_bench ~smoke:true ();
        corpus_bench ~smoke:true ();
        scope_bench ~smoke:true ();
        print_endline "smoke ok."
      end
      else begin
        print_endline "MC Mutants reproduction: evaluation harness";
        print_reproductions ();
        parallel_bench ~smoke:false ();
        oracle_bench ~smoke:false ();
        store_bench ~smoke:false ();
        pipeline_bench ~smoke:false ();
        serve_bench ~smoke:false ();
        schemata_bench ~smoke:false ();
        corpus_bench ~smoke:false ();
        scope_bench ~smoke:false ();
        run_benchmarks ();
        print_newline ();
        print_endline "done."
      end
