module Params = Mcm_testenv.Params
module Runner = Mcm_testenv.Runner
module Device = Mcm_gpu.Device
module Suite = Mcm_core.Suite
module Litmus = Mcm_litmus.Litmus
module Prng = Mcm_util.Prng
module Request = Mcm_testenv.Request

type category = Site_baseline | Site | Pte_baseline | Pte

let category_name = function
  | Site_baseline -> "SITE-baseline"
  | Site -> "SITE"
  | Pte_baseline -> "PTE-baseline"
  | Pte -> "PTE"

let all_categories = [ Site_baseline; Site; Pte_baseline; Pte ]

type config = {
  n_envs : int;
  site_iterations : int;
  pte_iterations : int;
  scale : float;
  seed : int;
}

(* Strict environment-variable parsing: a set-but-malformed value is a
   user error and must fail loudly, naming the variable — silently
   falling back to the default produced sweeps at the wrong scale with
   no indication anything was off. *)
let env_var name ~expected parse default =
  match Sys.getenv_opt name with
  | None | Some "" -> default
  | Some v -> (
      match parse v with
      | Some x -> x
      | None ->
          failwith
            (Printf.sprintf "invalid env var %s=%S (expected %s)" name v expected))

let env_float name default = env_var name ~expected:"a float" float_of_string_opt default
let env_int name default = env_var name ~expected:"an int" int_of_string_opt default

let default_config () =
  let scale = env_float "MCM_SCALE" 0.02 in
  {
    n_envs = env_int "MCM_ENVS" (if scale >= 1. then 150 else 16);
    site_iterations = env_int "MCM_SITE_ITERS" (if scale >= 1. then 300 else 120);
    pte_iterations = env_int "MCM_PTE_ITERS" (if scale >= 1. then 100 else 10);
    scale;
    seed = env_int "MCM_SEED" 20230325;
  }

let category_mode = function
  | Site_baseline | Site -> Params.Single
  | Pte_baseline | Pte -> Params.Parallel

let envs_for config category =
  match category with
  | Site_baseline -> [ Params.scaled Params.site_baseline config.scale ]
  | Pte_baseline -> [ Params.scaled Params.pte_baseline config.scale ]
  | Site | Pte ->
      let g = Prng.create (Prng.mix config.seed (Hashtbl.hash (category_name category))) in
      List.init config.n_envs (fun _ ->
          Params.scaled (Params.random g (category_mode category)) config.scale)

let iterations_for config = function
  | Site_baseline | Site -> config.site_iterations
  | Pte_baseline | Pte -> config.pte_iterations

type run = {
  category : category;
  env_index : int;
  env : Params.t;
  device : Device.t;
  test_name : string;
  mutator : Mcm_core.Mutator.kind;
  result : Runner.result;
}

let sweep_key config ~devices ~tests =
  let module Jsonw = Mcm_util.Jsonw in
  Mcm_campaign.Key.of_fields
    [
      ("kind", Jsonw.String "tuning-sweep");
      ("nEnvs", Jsonw.Int config.n_envs);
      ("siteIterations", Jsonw.Int config.site_iterations);
      ("pteIterations", Jsonw.Int config.pte_iterations);
      ("scale", Jsonw.Float config.scale);
      ("seed", Jsonw.Int config.seed);
      ("devices", Jsonw.List (List.map (fun d -> Jsonw.String (Device.name d)) devices));
      ( "tests",
        Jsonw.List
          (List.map
             (fun (e : Suite.entry) -> Jsonw.String e.Suite.test.Litmus.name)
             tests) );
    ]

let sweep ?(ctx = Request.serial) ?devices ?tests config =
  let devices = match devices with Some d -> d | None -> Device.all_correct () in
  let tests = match tests with Some t -> t | None -> Suite.mutants () in
  (* Flatten the category × environment × device × test grid up front:
     every point carries an independent seed, so the points can run on
     any domain in any order and be collected back in grid order. *)
  let grid =
    Array.of_list
      (List.concat_map
         (fun category ->
           let envs = envs_for config category in
           let iterations = iterations_for config category in
           List.concat
             (List.mapi
                (fun env_index env ->
                  List.concat_map
                    (fun device ->
                      List.map (fun entry -> (category, env_index, env, device, entry, iterations))
                        tests)
                    devices)
                envs))
         all_categories)
  in
  let point_args i =
    let category, env_index, env, device, (entry : Suite.entry), iterations = grid.(i) in
    let test = entry.Suite.test in
    let seed =
      Prng.mix config.seed
        (Hashtbl.hash (category_name category, env_index, Device.name device, test.Litmus.name))
    in
    (category, env_index, env, device, entry, iterations, test, seed)
  in
  let request i =
    let _, _, env, device, _, iterations, test, seed = point_args i in
    Request.make ~device ~env ~test ~iterations ~seed ()
  in
  let n = Array.length grid in
  (* Schema families: points sharing (device, test) share a compiled
     image and workspace shape, so grouping miss dispatch by that pair
     keeps pool domains warm. A hash collision merely merges two
     families — grouping is a wall-clock hint, never semantic. *)
  let family i =
    let _, _, _, device, _, _, test, _ = point_args i in
    Hashtbl.hash (Device.name device, test.Litmus.name) land max_int
  in
  (* Only the Runner.result is the memoized payload; the surrounding
     [run] record is reassembled from the grid below. *)
  let results =
    Grid.run ctx
      (Grid.make ~sweep:(sweep_key config ~devices ~tests) ~family Runner.Rate ~n ~request)
  in
  Array.to_list
    (Array.mapi
       (fun i result ->
         let category, env_index, env, device, (entry : Suite.entry), _, test, _ =
           point_args i
         in
         {
           category;
           env_index;
           env;
           device;
           test_name = test.Litmus.name;
           mutator = entry.Suite.mutator;
           result;
         })
       results)

let rate runs category ~test ~device ~env_index =
  match
    List.find_opt
      (fun r ->
        r.category = category && r.test_name = test
        && Device.name r.device = device
        && r.env_index = env_index)
      runs
  with
  | Some r -> r.result.Runner.rate
  | None -> 0.
