module Params = Mcm_testenv.Params
module Runner = Mcm_testenv.Runner
module Device = Mcm_gpu.Device
module Suite = Mcm_core.Suite
module Litmus = Mcm_litmus.Litmus
module Prng = Mcm_util.Prng
module Pool = Mcm_util.Pool

type category = Site_baseline | Site | Pte_baseline | Pte

let category_name = function
  | Site_baseline -> "SITE-baseline"
  | Site -> "SITE"
  | Pte_baseline -> "PTE-baseline"
  | Pte -> "PTE"

let all_categories = [ Site_baseline; Site; Pte_baseline; Pte ]

type config = {
  n_envs : int;
  site_iterations : int;
  pte_iterations : int;
  scale : float;
  seed : int;
}

let env_var_float name default =
  match Sys.getenv_opt name with
  | Some v -> ( match float_of_string_opt v with Some f -> f | None -> default)
  | None -> default

let env_var_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( match int_of_string_opt v with Some i -> i | None -> default)
  | None -> default

let default_config () =
  let scale = env_var_float "MCM_SCALE" 0.02 in
  {
    n_envs = env_var_int "MCM_ENVS" (if scale >= 1. then 150 else 16);
    site_iterations = env_var_int "MCM_SITE_ITERS" (if scale >= 1. then 300 else 120);
    pte_iterations = env_var_int "MCM_PTE_ITERS" (if scale >= 1. then 100 else 10);
    scale;
    seed = env_var_int "MCM_SEED" 20230325;
  }

let category_mode = function
  | Site_baseline | Site -> Params.Single
  | Pte_baseline | Pte -> Params.Parallel

let envs_for config category =
  match category with
  | Site_baseline -> [ Params.scaled Params.site_baseline config.scale ]
  | Pte_baseline -> [ Params.scaled Params.pte_baseline config.scale ]
  | Site | Pte ->
      let g = Prng.create (Prng.mix config.seed (Hashtbl.hash (category_name category))) in
      List.init config.n_envs (fun _ ->
          Params.scaled (Params.random g (category_mode category)) config.scale)

let iterations_for config = function
  | Site_baseline | Site -> config.site_iterations
  | Pte_baseline | Pte -> config.pte_iterations

type run = {
  category : category;
  env_index : int;
  env : Params.t;
  device : Device.t;
  test_name : string;
  mutator : Mcm_core.Mutator.kind;
  result : Runner.result;
}

let sweep ?domains ?devices ?tests config =
  let devices = match devices with Some d -> d | None -> Device.all_correct () in
  let tests = match tests with Some t -> t | None -> Suite.mutants () in
  (* Flatten the category × environment × device × test grid up front:
     every point carries an independent seed, so the points can run on
     any domain in any order and be collected back in grid order. *)
  let grid =
    Array.of_list
      (List.concat_map
         (fun category ->
           let envs = envs_for config category in
           let iterations = iterations_for config category in
           List.concat
             (List.mapi
                (fun env_index env ->
                  List.concat_map
                    (fun device ->
                      List.map (fun entry -> (category, env_index, env, device, entry, iterations))
                        tests)
                    devices)
                envs))
         all_categories)
  in
  let point i =
    let category, env_index, env, device, (entry : Suite.entry), iterations = grid.(i) in
    let test = entry.Suite.test in
    let seed =
      Prng.mix config.seed
        (Hashtbl.hash (category_name category, env_index, Device.name device, test.Litmus.name))
    in
    let result = Runner.run ~device ~env ~test ~iterations ~seed () in
    {
      category;
      env_index;
      env;
      device;
      test_name = test.Litmus.name;
      mutator = entry.Suite.mutator;
      result;
    }
  in
  let n = Array.length grid in
  let results =
    match domains with
    | None | Some 1 -> Array.init n point
    | Some d -> Pool.with_pool ~domains:d (fun pool -> Pool.map_array pool ~n ~f:point)
  in
  Array.to_list results

let rate runs category ~test ~device ~env_index =
  match
    List.find_opt
      (fun r ->
        r.category = category && r.test_name = test
        && Device.name r.device = device
        && r.env_index = env_index)
      runs
  with
  | Some r -> r.result.Runner.rate
  | None -> 0.
