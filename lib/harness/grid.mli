(** The one multi-cell campaign driver.

    A ['a t] is a grid of campaign cells: [n] requests (index →
    {!Mcm_testenv.Request.t}) all executed under the same collector.
    {!run} dispatches it through the execution context —
    {!Mcm_campaign.Sched}'s hit/miss planner when the context carries a
    store (caching, resume journaling, shard-durable checkpoints), a bare
    chunked pool map otherwise — so every driver ([Tuning.sweep],
    [Experiments.Table4], [Mcm_oracle.Soundness.check]) inherits caching,
    resume, deterministic sharding and chunked dispatch uniformly instead
    of re-implementing its own fan-out.

    Cells always compute with {!Mcm_testenv.Request.serial}: the grid
    axis is the parallel unit and store/journal I/O stays in the calling
    domain, matching the {!Mcm_campaign.Store} single-domain contract.
    Results land at their grid index, so [run] is bit-identical for every
    domain count and for warm versus cold stores. *)

type 'a t

val make :
  ?sweep:Mcm_campaign.Key.t ->
  ?family:(int -> int) ->
  'a Mcm_testenv.Runner.collect ->
  n:int ->
  request:(int -> Mcm_testenv.Request.t) ->
  'a t
(** [make collect ~n ~request] is the grid [[| request 0; …;
    request (n-1) |]] under [collect]. [request] must be pure — it is
    called more than once per index (keys, then compute). [sweep], the
    sweep's configuration key, enables resume journaling when the
    context also carries a journal; without it the journal is ignored.
    [family], the schema-family id of a cell (cells of one family share
    a compiled image and memoized campaign prefix), lets
    {!Mcm_campaign.Sched} group misses into columns before dispatch —
    purely a wall-clock optimisation, bit-identical either way. *)

val run : Mcm_testenv.Request.ctx -> 'a t -> 'a array

val run_stats : Mcm_testenv.Request.ctx -> 'a t -> 'a array * Mcm_campaign.Sched.stats option
(** Like {!run}, plus the planner's hit/miss stats ([None] when the
    context has no store — everything was computed). *)

val map : Mcm_testenv.Request.ctx -> n:int -> f:(int -> 'a) -> 'a array
(** The bare store-less dispatch underneath {!run}: [[| f 0; …;
    f (n-1) |]] over the context's domains with its chunking — for grid
    work that is not a campaign cell (e.g. oracle allowed-set
    computation). *)
