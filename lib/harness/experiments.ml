module Table = Mcm_util.Table
module Prng = Mcm_util.Prng
module Request = Mcm_testenv.Request
module Suite = Mcm_core.Suite
module Mutator = Mcm_core.Mutator
module Merge = Mcm_core.Merge
module Litmus = Mcm_litmus.Litmus
module Device = Mcm_gpu.Device
module Profile = Mcm_gpu.Profile
module Bug = Mcm_gpu.Bug
module Params = Mcm_testenv.Params
module Runner = Mcm_testenv.Runner
module Pearson = Mcm_stats.Pearson

let table2 () =
  let t = Table.create [ "Mutator"; "Conformance Tests"; "Mutants" ] in
  let rows = Suite.table2 () in
  List.iter
    (fun (name, conf, mut) ->
      if name = "Combined" then Table.add_rule t;
      Table.add_row t [ name; string_of_int conf; string_of_int mut ])
    rows;
  t

let table3 () =
  let t = Table.create ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Left ]
      [ "Vendor"; "Chip"; "CUs"; "Type" ]
  in
  List.iter
    (fun (vendor, chip, cus, ty) -> Table.add_row t [ vendor; chip; string_of_int cus; ty ])
    (Profile.table3 ());
  t

let device_names = List.map (fun p -> p.Profile.short_name) Profile.all

let mutant_names ?mutator () =
  List.filter_map
    (fun (e : Suite.entry) ->
      match mutator with
      | Some m when e.Suite.mutator <> m -> None
      | _ -> Some e.Suite.test.Litmus.name)
    (Suite.mutants ())

module Fig5 = struct
  let runs_for runs ?mutator ~device category =
    List.filter
      (fun (r : Tuning.run) ->
        r.Tuning.category = category
        && (match mutator with Some m -> r.Tuning.mutator = m | None -> true)
        && Device.name r.Tuning.device = device)
      runs

  let per_device_score runs ?mutator ~device category =
    let names = mutant_names ?mutator () in
    let relevant = runs_for runs ?mutator ~device category in
    let killed name =
      List.exists
        (fun (r : Tuning.run) -> r.Tuning.test_name = name && r.Tuning.result.Runner.kills > 0)
        relevant
    in
    match names with
    | [] -> 0.
    | _ ->
        float_of_int (List.length (List.filter killed names)) /. float_of_int (List.length names)

  let per_device_rate runs ?mutator ~device category =
    let names = mutant_names ?mutator () in
    let relevant = runs_for runs ?mutator ~device category in
    let max_rate name =
      List.fold_left
        (fun acc (r : Tuning.run) ->
          if r.Tuning.test_name = name then Float.max acc r.Tuning.result.Runner.rate else acc)
        0. relevant
    in
    match names with
    | [] -> 0.
    | _ ->
        List.fold_left (fun acc name -> acc +. max_rate name) 0. names
        /. float_of_int (List.length names)

  let average f = List.fold_left (fun acc d -> acc +. f d) 0. device_names
                  /. float_of_int (List.length device_names)

  let mutation_score runs ?mutator ?device category =
    match device with
    | Some d -> per_device_score runs ?mutator ~device:d category
    | None -> average (fun d -> per_device_score runs ?mutator ~device:d category)

  let avg_death_rate runs ?mutator ?device category =
    match device with
    | Some d -> per_device_rate runs ?mutator ~device:d category
    | None -> average (fun d -> per_device_rate runs ?mutator ~device:d category)

  let score_table runs ?mutator () =
    let t = Table.create ([ "Device" ] @ List.map Tuning.category_name Tuning.all_categories) in
    List.iter
      (fun d ->
        Table.add_row t
          (d
          :: List.map
               (fun c -> Table.pct_cell (mutation_score runs ?mutator ~device:d c))
               Tuning.all_categories))
      device_names;
    Table.add_rule t;
    Table.add_row t
      ("All"
      :: List.map (fun c -> Table.pct_cell (mutation_score runs ?mutator c)) Tuning.all_categories);
    t

  let rate_table runs ?mutator () =
    let t = Table.create ([ "Device" ] @ List.map Tuning.category_name Tuning.all_categories) in
    List.iter
      (fun d ->
        Table.add_row t
          (d
          :: List.map
               (fun c -> Table.rate_cell (avg_death_rate runs ?mutator ~device:d c))
               Tuning.all_categories))
      device_names;
    Table.add_rule t;
    Table.add_row t
      ("All"
      :: List.map (fun c -> Table.rate_cell (avg_death_rate runs ?mutator c)) Tuning.all_categories);
    t

  let all_tables runs =
    let per_mutator =
      List.concat_map
        (fun (m, score_title, rate_title) ->
          [
            (score_title, score_table runs ~mutator:m ());
            (rate_title, rate_table runs ~mutator:m ());
          ])
        [
          (Mutator.Reversing_po_loc, "(a) reversing po-loc: mutation score",
           "(b) reversing po-loc: mutant death rate (/s)");
          (Mutator.Weakening_po_loc, "(c) weakening po-loc: mutation score",
           "(d) weakening po-loc: mutant death rate (/s)");
          (Mutator.Weakening_sw, "(e) weakening sw: mutation score",
           "(f) weakening sw: mutant death rate (/s)");
        ]
    in
    per_mutator
    @ [
        ("(g) all mutators: mutation score", score_table runs ());
        ("(h) all mutators: mutant death rate (/s)", rate_table runs ());
      ]

  let tuning_time runs =
    List.map
      (fun c ->
        let total =
          List.fold_left
            (fun acc (r : Tuning.run) ->
              if r.Tuning.category = c then acc +. r.Tuning.result.Runner.sim_time_s else acc)
            0. runs
        in
        (Tuning.category_name c, total))
      Tuning.all_categories
end

module Fig6 = struct
  let budgets = [ 1. /. 1024.; 1. /. 256.; 1. /. 64.; 1. /. 16.; 1. /. 4.; 1.; 4.; 16.; 64. ]

  let targets = [ 0.95; 0.99999 ]

  let score runs category ~target ~budget =
    let names = mutant_names () in
    let n_envs =
      1
      + List.fold_left
          (fun acc (r : Tuning.run) ->
            if r.Tuning.category = category then max acc r.Tuning.env_index else acc)
          (-1) runs
    in
    if n_envs = 0 then 0.
    else begin
      let devices = Array.of_list device_names in
      let reproducible name =
        let rate ~env ~device =
          Tuning.rate runs category ~test:name ~device:devices.(device) ~env_index:env
        in
        Merge.reproducible_on_all ~rate ~n_envs ~n_devices:(Array.length devices) ~target ~budget
      in
      float_of_int (List.length (List.filter reproducible names))
      /. float_of_int (List.length names)
    end

  let budget_label b = if b >= 1. then Printf.sprintf "%.0f" b else Printf.sprintf "1/%.0f" (1. /. b)

  let table runs =
    let headers =
      "Budget (s)"
      :: List.concat_map
           (fun c ->
             List.map
               (fun target -> Printf.sprintf "%s@%g%%" (Tuning.category_name c) (100. *. target))
               targets)
           [ Tuning.Site; Tuning.Pte ]
    in
    let t = Table.create headers in
    List.iter
      (fun b ->
        Table.add_row t
          (budget_label b
          :: List.concat_map
               (fun c ->
                 List.map
                   (fun target -> Table.pct_cell (score runs c ~target ~budget:b))
                   targets)
               [ Tuning.Site; Tuning.Pte ]))
      budgets;
    t
end

module Table4 = struct
  type row = {
    vendor : string;
    failed_test : string;
    mutant_type : string;
    best_mutant : string;
    pcc : float;
    p_value : float;
    n_envs : int;
  }

  (* The three (vendor, conformance test) case studies of Sec. 5.4. *)
  let cases =
    [
      (Profile.intel, "CoRR", "Reversing po-loc");
      (Profile.amd, "MP-relacq", "Weakening sw");
      (Profile.nvidia, "MP-CO", "Weakening po-loc");
    ]

  let compute ?(ctx = Request.serial) ?n_envs ?iterations ?scale ?(seed = 20230325) () =
    let scale = match scale with Some s -> s | None -> Tuning.env_float "MCM_SCALE" 0.02 in
    let n_envs = match n_envs with Some n -> n | None -> if scale >= 1. then 150 else 40 in
    let iterations = match iterations with Some i -> i | None -> if scale >= 1. then 100 else 8 in
    let case_data =
      List.map
        (fun (profile, conf_name, mutant_type) ->
          let device =
            match Bug.paper_bug profile with
            | Some bug -> Device.make ~bugs:[ bug ] profile
            | None -> Device.make profile
          in
          let conf =
            match Suite.find conf_name with
            | Some e -> e.Suite.test
            | None -> failwith ("Table4: unknown test " ^ conf_name)
          in
          let mutants = List.map (fun e -> e.Suite.test) (Suite.mutants_of conf_name) in
          let g = Prng.create (Prng.mix seed (Hashtbl.hash conf_name)) in
          let envs =
            Array.of_list
              (List.init n_envs (fun _ -> Params.scaled (Params.random g Params.Parallel) scale))
          in
          (profile, conf_name, mutant_type, device, conf :: mutants, envs))
        cases
    in
    (* One flat case × (conf :: mutants) × environment grid; each cell's
       seed depends only on its coordinates, so rate vectors are
       identical for any domain count. No sweep key: the case study is
       cheap and shares store directories with tuning sweeps, so it never
       journals. *)
    let cells =
      Array.of_list
        (List.concat_map
           (fun (_, conf_name, _, device, tests, envs) ->
             List.concat_map
               (fun (test : Litmus.t) ->
                 List.init n_envs (fun i ->
                     let seed = Prng.mix seed (Hashtbl.hash (conf_name, test.Litmus.name, i)) in
                     Request.make ~device ~env:envs.(i) ~test ~iterations ~seed ()))
               tests)
           case_data)
    in
    (* Cells are laid out column-major per (case, test): [n_envs]
       consecutive cells share one compiled image and workspace shape,
       so the column index is the natural schema family. *)
    let family i = i / n_envs in
    let results =
      Grid.run ctx
        (Grid.make ~family Runner.Rate ~n:(Array.length cells) ~request:(Array.get cells))
    in
    let off = ref 0 in
    List.map
      (fun (profile, conf_name, mutant_type, _, tests, _) ->
        let rates_of b = Array.init n_envs (fun i -> results.(!off + (b * n_envs) + i).Runner.rate) in
        let conf_rates = rates_of 0 in
        let best, _ =
          List.fold_left
            (fun (acc, b) (mutant : Litmus.t) ->
              let r = Pearson.pcc conf_rates (rates_of b) in
              let r = if Float.is_nan r then -2. else r in
              let acc =
                match acc with
                | Some (_, best_r) when best_r >= r -> acc
                | _ -> Some (mutant.Litmus.name, r)
              in
              (acc, b + 1))
            (None, 1) (List.tl tests)
        in
        off := !off + (List.length tests * n_envs);
        let best_mutant, pcc = match best with Some (n, r) -> (n, r) | None -> ("-", Float.nan) in
        {
          vendor = profile.Profile.short_name;
          failed_test = conf_name;
          mutant_type;
          best_mutant;
          pcc;
          p_value = Pearson.p_value ~r:pcc ~n:n_envs;
          n_envs;
        })
      case_data

  let table rows =
    let t =
      Table.create
        ~aligns:[ Table.Left; Table.Left; Table.Left; Table.Left; Table.Right; Table.Right ]
        [ "Vendor"; "Failed Test"; "Mutant Type"; "Best Mutant"; "PCC"; "p-value" ]
    in
    List.iter
      (fun r ->
        Table.add_row t
          [
            r.vendor;
            r.failed_test;
            r.mutant_type;
            r.best_mutant;
            Table.float_cell ~decimals:3 r.pcc;
            Printf.sprintf "%.2e" r.p_value;
          ])
      rows;
    t
end
