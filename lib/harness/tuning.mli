(** Tuning sweeps over testing environments (Sec. 5.1).

    The paper tunes by running every mutant in 150 randomly generated
    testing environments of each kind — single-instance (SITE) and
    parallel (PTE) — plus the two stress-free baselines, on four devices.
    This module reproduces that sweep at a configurable scale: the
    default shrinks environment sizes, environment counts and iteration
    counts so the whole evaluation runs in seconds, while the structure
    (and the resulting comparisons) match the paper; setting the
    [MCM_SCALE] environment variable to [1.0] runs the full-size sweep. *)

module Params = Mcm_testenv.Params

(** The four environment categories of Sec. 5.1. *)
type category = Site_baseline | Site | Pte_baseline | Pte

val category_name : category -> string
(** ["SITE-baseline"], ["SITE"], ["PTE-baseline"], ["PTE"]. *)

val all_categories : category list

type config = {
  n_envs : int;  (** random environments per tunable category (paper: 150) *)
  site_iterations : int;  (** iterations per SITE run (paper: 300) *)
  pte_iterations : int;  (** iterations per PTE run (paper: 100) *)
  scale : float;  (** environment-size shrink factor in (0, 1] *)
  seed : int;
}

val default_config : unit -> config
(** Bench-scale defaults, overridable through the environment variables
    [MCM_SCALE] (float), [MCM_ENVS], [MCM_SITE_ITERS], [MCM_PTE_ITERS]
    and [MCM_SEED]. A set-but-malformed variable raises [Failure] with a
    message naming the variable — it never silently falls back to the
    default. *)

val env_float : string -> float -> float
val env_int : string -> int -> int
(** [env_float name default] / [env_int name default] read an optional
    environment variable strictly: unset or empty → [default]; set but
    unparseable → [Failure "invalid env var NAME=..."]. Shared by every
    [MCM_*] consumer so the failure mode is uniform. *)

val envs_for : config -> category -> Params.t list
(** The environments of a category: the single scaled baseline, or
    [n_envs] randomly drawn (deterministically from [config.seed])
    scaled environments. *)

(** One (category, environment, device, test) measurement. *)
type run = {
  category : category;
  env_index : int;
  env : Params.t;
  device : Mcm_gpu.Device.t;
  test_name : string;
  mutator : Mcm_core.Mutator.kind;
  result : Mcm_testenv.Runner.result;
}

val sweep_key :
  config -> devices:Mcm_gpu.Device.t list -> tests:Mcm_core.Suite.entry list -> Mcm_campaign.Key.t
(** The content key identifying a sweep's full configuration — what a
    {!Mcm_campaign.Journal} records so a resumed run can check it is
    resuming the {e same} sweep. *)

val sweep :
  ?ctx:Mcm_testenv.Request.ctx ->
  ?devices:Mcm_gpu.Device.t list ->
  ?tests:Mcm_core.Suite.entry list ->
  config ->
  run list
(** [sweep config] runs every category × environment × device × test
    combination as one {!Grid} under [ctx] (default
    {!Mcm_testenv.Request.serial}). [devices] defaults to the four
    correct study devices and [tests] to the 32 mutants of the generated
    suite. Deterministic in [config].

    Every grid point derives its seed independently from [config.seed]
    and results are collected back in grid order, so the returned list is
    identical for every [ctx.domains] value. A context with a store
    routes the grid through {!Mcm_campaign.Sched} — cached cells served
    from disk, misses persisted in durable shards, bit-identical to an
    uncached sweep; with a journal too, progress is checkpointed under
    {!sweep_key}, making a killed sweep resumable with nothing
    replayed. *)

val rate : run list -> category -> test:string -> device:string -> env_index:int -> float
(** Death-rate lookup into a sweep's results; [0.] when absent. *)
