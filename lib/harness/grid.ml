module Pool = Mcm_util.Pool
module Request = Mcm_testenv.Request
module Runner = Mcm_testenv.Runner
module Sched = Mcm_campaign.Sched

type 'a t = {
  collect : 'a Runner.collect;
  n : int;
  request : int -> Request.t;
  sweep : Mcm_campaign.Key.t option;
  family : (int -> int) option;
}

let make ?sweep ?family collect ~n ~request = { collect; n; request; sweep; family }

(* Bare parallel map through the context — the store-less grid dispatch
   every driver used to hand-roll. *)
let map (c : Request.ctx) ~n ~f =
  if n = 0 then [||]
  else if c.Request.domains <= 1 then Array.init n f
  else
    Pool.with_pool ~domains:c.Request.domains (fun pool ->
        Pool.map_array ~chunk:(Request.chunk_for c ~n) pool ~n ~f)

let run_stats (c : Request.ctx) g =
  (* Cells compute serially — the grid axis is the parallel unit, and
     store/journal I/O stays confined to this (the calling) domain. The
     context's plan rides along: it only selects the compile/memoization
     strategy inside the worker domain. *)
  let cell_ctx = { Request.serial with Request.plan = c.Request.plan } in
  let cell i = Runner.exec g.collect (g.request i) cell_ctx in
  match c.Request.store with
  | None -> (map c ~n:g.n ~f:cell, None)
  | Some store ->
      let key i = Request.key ~kind:(Runner.kind g.collect) (g.request i) in
      let journal =
        match (c.Request.journal, g.sweep) with
        | Some j, Some sweep -> Some (j, sweep)
        | _ -> None
      in
      let arr, stats =
        Sched.run ~domains:c.Request.domains ?chunk:c.Request.chunk ?journal ?family:g.family
          ~store ~key ~encode:(Runner.encode g.collect) ~decode:(Runner.decode g.collect)
          ~f:cell ~n:g.n ()
      in
      (arr, Some stats)

let run c g = fst (run_stats c g)
