(** Experiment drivers: one per table and figure of the paper.

    Each driver returns renderable {!Mcm_util.Table.t} values whose rows
    match what the paper reports; the bench executable and the
    [mcmutants] CLI print them. See EXPERIMENTS.md for the paper-vs-
    measured record. *)

module Table : sig
  include module type of Mcm_util.Table
end

val table2 : unit -> Mcm_util.Table.t
(** Tab. 2: conformance tests and mutants per mutator. *)

val table3 : unit -> Mcm_util.Table.t
(** Tab. 3: the simulated device inventory. *)

(** Fig. 5: mutation scores and average mutant death rates, per mutator
    (a–f), combined (g–h), and averaged across devices (i–j). *)
module Fig5 : sig
  val mutation_score :
    Tuning.run list ->
    ?mutator:Mcm_core.Mutator.kind ->
    ?device:string ->
    Tuning.category ->
    float
  (** Fraction of mutants killed in at least one environment of the
      category (restricted to a mutator and/or device when given;
      without [device], the per-device scores are averaged). *)

  val avg_death_rate :
    Tuning.run list ->
    ?mutator:Mcm_core.Mutator.kind ->
    ?device:string ->
    Tuning.category ->
    float
  (** Mean over mutants of each mutant's maximum death rate across the
      category's environments (averaged across devices if none given). *)

  val score_table : Tuning.run list -> ?mutator:Mcm_core.Mutator.kind -> unit -> Mcm_util.Table.t
  (** One of Figs. 5a/5c/5e/5g: rows = devices (plus All), columns = the
      four environment categories, cells = mutation scores. *)

  val rate_table : Tuning.run list -> ?mutator:Mcm_core.Mutator.kind -> unit -> Mcm_util.Table.t
  (** One of Figs. 5b/5d/5f/5h: same layout with death rates. *)

  val all_tables : Tuning.run list -> (string * Mcm_util.Table.t) list
  (** Every Fig. 5 panel, titled (a)–(j). *)

  val tuning_time : Tuning.run list -> (string * float) list
  (** Simulated tuning time per category in seconds — the Sec. 5.1
      tuning-cost comparison. *)
end

(** Fig. 6: mutation score under a single merged per-test environment
    (Alg. 1) as a function of the per-test time budget, for
    reproducibility targets 95% and 99.999%, for SITE and PTE. *)
module Fig6 : sig
  val budgets : float list
  (** The swept per-test budgets in seconds: 4⁻⁵ (≈1/1024 s) … 4³ (64 s). *)

  val targets : float list
  (** 0.95 and 0.99999. *)

  val score :
    Tuning.run list -> Tuning.category -> target:float -> budget:float -> float
  (** Fraction of mutants whose Alg.-1-chosen environment reaches the
      ceiling rate on all four devices. *)

  val table : Tuning.run list -> Mcm_util.Table.t
  (** Rows = budgets, columns = category × target series. *)
end

(** Tab. 4: Pearson correlation between killing a mutant and observing a
    real (injected) bug across random parallel testing environments. *)
module Table4 : sig
  type row = {
    vendor : string;
    failed_test : string;  (** the conformance test revealing the bug *)
    mutant_type : string;  (** the paired mutator's name *)
    best_mutant : string;  (** the mutant variant with the highest PCC *)
    pcc : float;
    p_value : float;  (** Student's t-test significance *)
    n_envs : int;
  }

  val cases : (Mcm_gpu.Profile.t * string * string) list
  (** The three (vendor profile, conformance test, mutator name) case
      studies of Sec. 5.4 — also the matrix shape the schemata bench
      reuses. *)

  val compute :
    ?ctx:Mcm_testenv.Request.ctx ->
    ?n_envs:int ->
    ?iterations:int ->
    ?scale:float ->
    ?seed:int ->
    unit ->
    row list
  (** Runs the correlation study (paper: 150 environments, 100
      iterations; defaults here are bench-scale and read [MCM_SCALE],
      strictly — a malformed value raises). Devices carry their
      {!Mcm_gpu.Bug.paper_bug} injection. The whole study is one {!Grid}
      under [ctx] (default serial): [ctx.domains] fans the
      per-environment campaigns over a {!Mcm_util.Pool} — the rows are
      identical for every value (each campaign is seeded from its grid
      coordinates alone) — and [ctx.store] memoizes each campaign through
      {!Mcm_campaign.Sched}, preserving bit-identity. The study never
      journals ([ctx.journal] is ignored): it is cheap and shares store
      directories with tuning sweeps. *)

  val table : row list -> Mcm_util.Table.t
end
