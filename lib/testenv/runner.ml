module Prng = Mcm_util.Prng
module Pool = Mcm_util.Pool
module Litmus = Mcm_litmus.Litmus
module Profile = Mcm_gpu.Profile
module Device = Mcm_gpu.Device
module Instance = Mcm_gpu.Instance
module Kernel = Mcm_gpu.Kernel
module Timing = Mcm_gpu.Timing
module Scope = Mcm_memmodel.Scope

type engine = Request.engine = Interpreter | Kernel

(* The env's scope axis decides the thread layout the engines see: the
   inter-workgroup environment puts every role in its own workgroup (so
   workgroup-scoped fences cannot order across roles), the
   intra-workgroup environment puts all roles in one. *)
let layout_of_env (env : Params.t) =
  match env.Params.scope with
  | Params.Inter_workgroup -> Scope.Inter
  | Params.Intra_workgroup -> Scope.Intra

type result = {
  kills : int;
  instances : int;
  iterations : int;
  sim_time_s : float;
  rate : float;
}

let amplification (device : Device.t) (env : Params.t) ~roles =
  let profile = device.Device.profile in
  let instances = Params.instances_per_iteration env ~roles in
  let occupancy = Profile.occupancy_amplifier profile ~instances in
  let stress = Profile.stress_amplifier profile ~intensity:(Params.stress_intensity env) in
  (* Intra-workgroup roles communicate through the compute unit's own
     cache level, where propagation is prompt — weak-memory amplification
     halves, while the tighter scheduling (handled by Assignment) makes
     interleavings easier. *)
  let scope_factor = match env.Params.scope with
    | Params.Inter_workgroup -> 1.0
    | Params.Intra_workgroup -> 0.5
  in
  ((occupancy *. Assignment.pairing_quality env
   *. (0.75 +. (0.5 *. Params.location_contention env)))
  +. stress)
  *. scope_factor

type histogram = {
  sequential : int;
  interleaved : int;
  weak : int;
  forbidden : int;
  skipped : int;
}

(* Per-iteration outcome tallies. Iterations are the parallel unit: each
   derives its PRNG independently via [Prng.mix seed it], so tallies from
   any partition of the iteration axis sum to the serial totals exactly —
   integer addition is associative, and nothing else crosses iterations. *)
type tally = {
  t_kills : int;
  t_sequential : int;
  t_interleaved : int;
  t_weak : int;
  t_forbidden : int;
  t_skipped : int;
  t_outcomes : Litmus.outcome list;
      (** distinct outcomes of executed instances, sorted; empty unless
          the campaign collects observations. [tally_add] merges the
          sorted unique lists, so the invariant holds at every fold step
          and partitioning the iteration axis cannot change the result. *)
}

let tally_zero =
  {
    t_kills = 0;
    t_sequential = 0;
    t_interleaved = 0;
    t_weak = 0;
    t_forbidden = 0;
    t_skipped = 0;
    t_outcomes = [];
  }

(* Merge two sorted unique lists into one, dropping duplicates. Linear
   in the output, unlike the concat + terminal [sort_uniq] it replaced,
   which made folding [iterations] tallies quadratic in the total
   observation count. Outcome lists are small (distinct outcomes of one
   test), so the non-tail recursion is fine. *)
let rec merge_uniq a b =
  match (a, b) with
  | [], l | l, [] -> l
  | x :: xs, y :: ys ->
      let c = compare x y in
      if c < 0 then x :: merge_uniq xs b
      else if c > 0 then y :: merge_uniq a ys
      else x :: merge_uniq xs ys

let tally_add a b =
  {
    t_kills = a.t_kills + b.t_kills;
    t_sequential = a.t_sequential + b.t_sequential;
    t_interleaved = a.t_interleaved + b.t_interleaved;
    t_weak = a.t_weak + b.t_weak;
    t_forbidden = a.t_forbidden + b.t_forbidden;
    t_skipped = a.t_skipped + b.t_skipped;
    t_outcomes = merge_uniq a.t_outcomes b.t_outcomes;
  }

(* Per-domain workspace cache. One DLS slot for the whole program —
   campaigns are far more frequent than domains, and keying the cached
   workspace on the kernel's identity means a domain reuses its
   workspace across every iteration of a campaign while a new campaign
   (new kernel) transparently replaces it. A fresh key per campaign
   would leak DLS slots instead. This is the reference (Per_cell)
   path's workspace strategy; the Schema plan uses the arena below. *)
let ws_slot : (Kernel.t * Kernel.workspace) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let workspace_for kernel =
  match Domain.DLS.get ws_slot with
  | Some (k, ws) when k == kernel -> ws
  | _ ->
      let ws = Kernel.workspace kernel in
      Domain.DLS.set ws_slot (Some (kernel, ws));
      ws

(* ------------------------------------------------------------------ *)
(* Cross-cell memoization (the Schema plan).

   Engine-wide counters first: cheap atomics, bumped once per cell or
   per cross-cell reuse (never per instance), read by [engine_stats]. *)

let prefab_hits_c = Atomic.make 0
let workspaces_built_c = Atomic.make 0
let workspace_reuses_c = Atomic.make 0

type engine_stats = {
  kernels_compiled : int;
  schema_reuses : int;
  workspaces_built : int;
  workspace_reuses : int;
}

let engine_stats () =
  {
    kernels_compiled = Kernel.images_built ();
    schema_reuses = Kernel.image_hits () + Atomic.get prefab_hits_c;
    workspaces_built = Atomic.get workspaces_built_c;
    workspace_reuses = Atomic.get workspace_reuses_c;
  }

let engine_stats_sub a b =
  {
    kernels_compiled = a.kernels_compiled - b.kernels_compiled;
    schema_reuses = a.schema_reuses - b.schema_reuses;
    workspaces_built = a.workspaces_built - b.workspaces_built;
    workspace_reuses = a.workspace_reuses - b.workspace_reuses;
  }

let pp_engine_stats fmt s =
  Format.fprintf fmt "%d kernel(s) compiled, %d schema reuse(s), %d workspace reuse(s)"
    s.kernels_compiled s.schema_reuses s.workspace_reuses

(* Per-domain workspace arena: one workspace per kernel *image*, reused
   across every cell whose kernel shares that image (the scratch arrays
   depend only on the image's extents, and [Kernel.adopt] rebinds the
   workspace to the current cell's kernel). Bounded; reset wholesale
   when full — the workspaces are reallocated on demand. *)
let arena_max = 64

let arena_key : (int, Kernel.t * Kernel.workspace) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let arena_workspace k =
  let tbl = Domain.DLS.get arena_key in
  let id = Kernel.image_id k in
  match Hashtbl.find_opt tbl id with
  | Some (k0, ws) when k0 == k -> ws
  | Some (_, ws) ->
      (* Same image, different cell: the cross-cell reuse this arena
         exists for. *)
      Kernel.adopt ws k;
      Atomic.incr workspace_reuses_c;
      Hashtbl.replace tbl id (k, ws);
      ws
  | None ->
      if Hashtbl.length tbl >= arena_max then Hashtbl.reset tbl;
      let ws = Kernel.workspace k in
      Atomic.incr workspaces_built_c;
      Hashtbl.replace tbl id (k, ws);
      ws

(* The memoized campaign prefix: everything [campaign] derives from
   (engine, test, device, env) before touching iterations or seed —
   effective weak params, bug effect, instance counts, slice shapes,
   the horizon, the iteration time, and (for the kernel engine) the
   compiled kernel itself. Cells that differ only in mutation scalars,
   bug flags, iterations or seed reuse one prefab.

   Keyed per domain (no locks) by test name, refined by physical
   equality on the test (its [target] is a closure) and structural
   equality on the device/env records (pure scalar data) — an exact,
   cheap refinement of the canonical prefix identity that
   [Key.prefix_fields] serializes. *)
type prefab = {
  p_test : Litmus.t;
  p_device : Device.t;
  p_env : Params.t;
  p_engine : engine;
  p_bugs : Mcm_gpu.Bug.effect;
  p_instances : int;
  p_slice_instrs : int array;
  p_weak : Instance.weak_params;
  p_horizon : float;
  p_iteration_ns : float;
  p_layout : Scope.layout;
  p_kernel : Kernel.t option;
}

let prefab_max = 512

type prefab_cache = { tbl : (string, prefab list) Hashtbl.t; mutable count : int }

let prefab_key : prefab_cache Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { tbl = Hashtbl.create 64; count = 0 })

let build_prefab ~plan ~engine ~device ~env ~test =
  let profile = device.Device.profile in
  let bugs = Device.effect device in
  let roles = Litmus.nthreads test in
  let instances = Params.instances_per_iteration env ~roles in
  let slice_instrs = Array.map List.length test.Litmus.threads in
  let max_slice = Array.fold_left max 0 slice_instrs in
  let instrs_per_thread =
    (match env.Params.mode with
    | Params.Single -> max_slice
    | Params.Parallel -> Array.fold_left ( + ) 0 slice_instrs)
    + Params.extra_instrs_per_thread env
  in
  let weak =
    Instance.effective_params profile ~amplification:(amplification device env ~roles)
  in
  (* Beyond this separation, roles cannot interact through any modelled
     weak-memory mechanism; see the interface note. *)
  let horizon =
    (float_of_int (Array.fold_left ( + ) 0 slice_instrs) *. weak.Instance.instr_latency_ns *. 2.)
    +. (30. *. (weak.Instance.vis_delay_mean_ns +. weak.Instance.stale_mean_ns))
    +. (4. *. weak.Instance.instr_latency_ns)
  in
  let iteration_ns =
    Timing.iteration_time_ns profile ~workgroups:env.Params.testing_workgroups
      ~threads_per_workgroup:env.Params.threads_per_workgroup ~instrs_per_thread
      ~stress_intensity:(Params.stress_intensity env)
  in
  let layout = layout_of_env env in
  let kernel =
    match engine with
    | Interpreter -> None
    | Kernel ->
        Some
          (match plan with
          | Request.Per_cell -> Kernel.compile ~layout ~weak ~bugs ~test ()
          | Request.Schema -> Kernel.compile_cached ~layout ~weak ~bugs ~test ())
  in
  {
    p_test = test;
    p_device = device;
    p_env = env;
    p_engine = engine;
    p_bugs = bugs;
    p_instances = instances;
    p_slice_instrs = slice_instrs;
    p_weak = weak;
    p_horizon = horizon;
    p_iteration_ns = iteration_ns;
    p_layout = layout;
    p_kernel = kernel;
  }

let prefab_matches p ~engine ~device ~env ~test =
  (* Physical equality first: sweeps share device/env values across
     cells, so the structural compare (polymorphic, over float-bearing
     records) only runs when a cell rebuilt them. *)
  p.p_test == test && p.p_engine = engine
  && (p.p_device == device || p.p_device = device)
  && (p.p_env == env || p.p_env = env)

let prefab_for ~plan ~engine ~device ~env ~test =
  match plan with
  | Request.Per_cell -> build_prefab ~plan ~engine ~device ~env ~test
  | Request.Schema -> (
      let cache = Domain.DLS.get prefab_key in
      let name = test.Litmus.name in
      let bucket = Option.value ~default:[] (Hashtbl.find_opt cache.tbl name) in
      match bucket with
      (* The common sweep pattern holds one (device, env) fixed across a
         run of seeds; keep the bucket move-to-front so that run pays
         one head probe per lookup. *)
      | p :: _ when prefab_matches p ~engine ~device ~env ~test ->
          Atomic.incr prefab_hits_c;
          p
      | bucket -> (
      let hit = List.find_opt (fun p -> prefab_matches p ~engine ~device ~env ~test) bucket in
      match hit with
      | Some p ->
          Atomic.incr prefab_hits_c;
          Hashtbl.replace cache.tbl name (p :: List.filter (fun q -> q != p) bucket);
          p
      | None ->
          if cache.count >= prefab_max then begin
            Hashtbl.reset cache.tbl;
            cache.count <- 0
          end;
          let p = build_prefab ~plan ~engine ~device ~env ~test in
          let bucket = Option.value ~default:[] (Hashtbl.find_opt cache.tbl name) in
          Hashtbl.replace cache.tbl name (p :: bucket);
          cache.count <- cache.count + 1;
          p))

(* Build the campaign's per-iteration function plus the derived constants.
   Everything the returned closure captures is immutable (or, for the
   classifier's table, written before and only read after), so it is safe
   to call from any domain. *)
let campaign ~engine ~plan ~classify ~collect ~device ~env ~test ~seed =
  let pf = prefab_for ~plan ~engine ~device ~env ~test in
  let profile = device.Device.profile in
  let bugs = pf.p_bugs in
  let roles = Litmus.nthreads test in
  let instances = pf.p_instances in
  let slice_instrs = pf.p_slice_instrs in
  let weak = pf.p_weak in
  let horizon = pf.p_horizon in
  let iteration_ns = pf.p_iteration_ns in
  (* The kernel engine compiles the (test, device, env) triple once per
     campaign (Per_cell) or once per image family (Schema); each domain
     then executes every instance against its own reused workspace, so
     the steady-state instance path allocates nothing. Both engines
     consume identical PRNG draws — the kernel's parent stream is the
     iteration PRNG captured after [role_starts], and [run_next] splits
     a child per executed instance exactly as the interpreter arm's
     [Prng.split] does. *)
  let kernel = pf.p_kernel in
  let acquire_ws =
    match plan with Request.Per_cell -> workspace_for | Request.Schema -> arena_workspace
  in
  let run_iteration it =
    let prng = Prng.create (Prng.mix seed it) in
    let starts = Assignment.role_starts ~prng ~profile ~env ~slice_instrs ~instances in
    let exec, keep =
      match kernel with
      | None ->
          ( (fun s ->
              Instance.run ~layout:pf.p_layout ~prng:(Prng.split prng) ~weak ~bugs ~test
                ~starts:s ()),
            fun o -> o )
      | Some k ->
          let ws = acquire_ws k in
          Kernel.set_parent ws prng;
          (* The kernel returns its workspace's reused outcome record;
             snapshot it only when the campaign actually collects. *)
          ((fun s -> Kernel.run_next k ws ~starts:s), fun _ -> Kernel.snapshot ws)
    in
    let kills = ref 0 and skipped = ref 0 in
    let sequential = ref 0 and interleaved = ref 0 and weak_n = ref 0 and forbidden = ref 0 in
    let observed = ref [] in
    for i = 0 to instances - 1 do
      let s = starts.(i) in
      let lo = ref s.(0) and hi = ref s.(0) in
      for r = 1 to roles - 1 do
        if s.(r) < !lo then lo := s.(r);
        if s.(r) > !hi then hi := s.(r)
      done;
      if !hi -. !lo <= horizon then begin
        let outcome = exec s in
        if test.Litmus.target outcome then incr kills;
        if collect then observed := keep outcome :: !observed;
        match classify with
        | None -> ()
        | Some classify -> (
            match classify outcome with
            | Mcm_litmus.Classify.Sequential -> incr sequential
            | Mcm_litmus.Classify.Interleaved -> incr interleaved
            | Mcm_litmus.Classify.Weak -> incr weak_n
            | Mcm_litmus.Classify.Forbidden -> incr forbidden)
      end
      else incr skipped
    done;
    {
      t_kills = !kills;
      t_sequential = !sequential;
      t_interleaved = !interleaved;
      t_weak = !weak_n;
      t_forbidden = !forbidden;
      t_skipped = !skipped;
      t_outcomes = List.sort_uniq compare !observed;
    }
  in
  (run_iteration, instances, iteration_ns)

let run_campaign ?(engine = Kernel) ?(plan = Request.Schema) ?domains ?chunk
    ?(collect = false) ~classify ~device ~env ~test ~iterations ~seed () =
  let run_iteration, instances, iteration_ns =
    campaign ~engine ~plan ~classify ~collect ~device ~env ~test ~seed
  in
  let tally =
    match domains with
    | None | Some 1 ->
        let acc = ref tally_zero in
        for it = 0 to iterations - 1 do
          acc := tally_add !acc (run_iteration it)
        done;
        !acc
    | Some d ->
        Pool.with_pool ~domains:d (fun pool ->
            Pool.map_reduce ?chunk pool ~n:iterations ~map:run_iteration ~fold:tally_add
              ~init:tally_zero)
  in
  let sim_time_s = Timing.to_seconds (float_of_int iterations *. iteration_ns) in
  let result =
    {
      kills = tally.t_kills;
      instances = instances * iterations;
      iterations;
      sim_time_s;
      rate = (if sim_time_s > 0. then float_of_int tally.t_kills /. sim_time_s else 0.);
    }
  in
  (result, tally)

(* ------------------------------------------------------------------ *)
(* Campaign-store integration: cell keys and result codecs.            *)

module Jsonw = Mcm_util.Jsonw
module Jsonp = Mcm_util.Jsonp

let engine_name = Request.engine_name

let cell_key ?(engine = Kernel) ~kind ~device ~env ~test ~iterations ~seed () =
  Request.key ~kind (Request.make ~engine ~device ~env ~test ~iterations ~seed ())

let ( let* ) = Result.bind

(* Jsonw prints non-finite floats as the strings "nan"/"inf"/"-inf", so
   a payload read back from disk carries them as [String]s. *)
let float_of_json = function
  | Jsonw.String "nan" -> Some Float.nan
  | Jsonw.String "inf" -> Some Float.infinity
  | Jsonw.String "-inf" -> Some Float.neg_infinity
  | v -> Jsonp.to_float v

let field name conv v =
  match Option.bind (Jsonp.member name v) conv with
  | Some x -> Ok x
  | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)

let result_to_json r =
  Jsonw.Obj
    [
      ("kills", Jsonw.Int r.kills);
      ("instances", Jsonw.Int r.instances);
      ("iterations", Jsonw.Int r.iterations);
      ("simTimeS", Jsonw.Float r.sim_time_s);
      ("rate", Jsonw.Float r.rate);
    ]

let result_of_json v =
  let* kills = field "kills" Jsonp.to_int v in
  let* instances = field "instances" Jsonp.to_int v in
  let* iterations = field "iterations" Jsonp.to_int v in
  let* sim_time_s = field "simTimeS" float_of_json v in
  let* rate = field "rate" float_of_json v in
  Ok { kills; instances; iterations; sim_time_s; rate }

let histogram_cell_to_json (r, h) =
  Jsonw.Obj
    [
      ("result", result_to_json r);
      ( "histogram",
        Jsonw.Obj
          [
            ("sequential", Jsonw.Int h.sequential);
            ("interleaved", Jsonw.Int h.interleaved);
            ("weak", Jsonw.Int h.weak);
            ("forbidden", Jsonw.Int h.forbidden);
            ("skipped", Jsonw.Int h.skipped);
          ] );
    ]

let histogram_cell_of_json v =
  let* rv = field "result" Option.some v in
  let* r = result_of_json rv in
  let* hv = field "histogram" Option.some v in
  let* sequential = field "sequential" Jsonp.to_int hv in
  let* interleaved = field "interleaved" Jsonp.to_int hv in
  let* weak = field "weak" Jsonp.to_int hv in
  let* forbidden = field "forbidden" Jsonp.to_int hv in
  let* skipped = field "skipped" Jsonp.to_int hv in
  Ok (r, { sequential; interleaved; weak; forbidden; skipped })

let int_array_to_json a = Jsonw.List (Array.to_list (Array.map (fun i -> Jsonw.Int i) a))

let int_array_of_json v =
  match v with
  | Jsonw.List items ->
      let rec go acc = function
        | [] -> Ok (Array.of_list (List.rev acc))
        | x :: rest -> (
            match Jsonp.to_int x with
            | Some i -> go (i :: acc) rest
            | None -> Error "non-integer in array")
      in
      go [] items
  | _ -> Error "expected an array of integers"

let outcome_to_json (o : Litmus.outcome) =
  Jsonw.Obj
    [
      ("regs", Jsonw.List (Array.to_list (Array.map int_array_to_json o.Litmus.regs)));
      ("final", int_array_to_json o.Litmus.final);
    ]

let outcome_of_json v =
  let* regs_v = field "regs" Option.some v in
  let* regs =
    match regs_v with
    | Jsonw.List rows ->
        let rec go acc = function
          | [] -> Ok (Array.of_list (List.rev acc))
          | row :: rest ->
              let* a = int_array_of_json row in
              go (a :: acc) rest
        in
        go [] rows
    | _ -> Error "expected an array of register rows"
  in
  let* final_v = field "final" Option.some v in
  let* final = int_array_of_json final_v in
  Ok { Litmus.regs; final }

let outcomes_cell_to_json (r, outcomes) =
  Jsonw.Obj
    [
      ("result", result_to_json r);
      ("outcomes", Jsonw.List (List.map outcome_to_json outcomes));
    ]

let outcomes_cell_of_json v =
  let* rv = field "result" Option.some v in
  let* r = result_of_json rv in
  let* os_v = field "outcomes" Option.some v in
  let* outcomes =
    match os_v with
    | Jsonw.List items ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | x :: rest ->
              let* o = outcome_of_json x in
              go (o :: acc) rest
        in
        go [] items
    | _ -> Error "expected an array of outcomes"
  in
  Ok (r, outcomes)

(* ------------------------------------------------------------------ *)
(* The unified entry point: one collector-indexed execution function.  *)

type _ collect =
  | Rate : result collect
  | Histogram : (result * histogram) collect
  | Outcomes : (result * Litmus.outcome list) collect

let kind : type a. a collect -> string = function
  | Rate -> "run"
  | Histogram -> "histogram"
  | Outcomes -> "outcomes"

let encode : type a. a collect -> a -> Jsonw.t = function
  | Rate -> result_to_json
  | Histogram -> histogram_cell_to_json
  | Outcomes -> outcomes_cell_to_json

let decode : type a. a collect -> Jsonw.t -> (a, string) Stdlib.result = function
  | Rate -> result_of_json
  | Histogram -> histogram_cell_of_json
  | Outcomes -> outcomes_cell_of_json

let compute : type a. a collect -> Request.t -> ctx:Request.ctx -> a =
 fun c (r : Request.t) ~ctx ->
  let domains = if ctx.Request.domains <= 1 then None else Some ctx.Request.domains in
  let chunk = Request.chunk_for ctx ~n:r.Request.iterations in
  let go ?(collect = false) ~classify () =
    run_campaign ~engine:r.Request.engine ~plan:ctx.Request.plan ?domains ~chunk ~collect
      ~classify ~device:r.Request.device ~env:r.Request.env ~test:r.Request.test
      ~iterations:r.Request.iterations ~seed:r.Request.seed ()
  in
  match c with
  | Rate -> fst (go ~classify:None ())
  | Histogram ->
      let classify = Mcm_litmus.Classify.classifier r.Request.test in
      let result, tally = go ~classify:(Some classify) () in
      ( result,
        {
          sequential = tally.t_sequential;
          interleaved = tally.t_interleaved;
          weak = tally.t_weak;
          forbidden = tally.t_forbidden;
          skipped = tally.t_skipped;
        } )
  | Outcomes ->
      let result, tally = go ~collect:true ~classify:None () in
      (* [t_outcomes] is sorted and unique by the [tally_add] invariant. *)
      (result, tally.t_outcomes)

(* Serve a cell from the store when possible; otherwise compute and
   persist it. A cached payload that no longer decodes (e.g. written by
   a different codec revision under the same [Key.code_version], which
   would be a bug, or hand-edited) is recomputed but NOT re-added:
   first-write-wins, and its key already exists on disk. *)
let exec : type a. a collect -> Request.t -> Request.ctx -> a =
 fun c r ctx ->
  match ctx.Request.store with
  | None -> compute c r ~ctx
  | Some st -> (
      let key = Request.key ~kind:(kind c) r in
      match Mcm_campaign.Store.find st key with
      | Some payload -> (
          match decode c payload with Ok v -> v | Error _ -> compute c r ~ctx)
      | None ->
          let v = compute c r ~ctx in
          Mcm_campaign.Store.add st key (encode c v);
          v)

(* The pre-pipeline entry points, now one-line wrappers over [exec].
   Deprecated: new code should build a [Request.t] and call [exec]. *)

let wrap collect ?(engine = Kernel) ?domains ?store ~device ~env ~test ~iterations ~seed () =
  exec collect
    (Request.make ~engine ~device ~env ~test ~iterations ~seed ())
    (Request.context ?domains ?store ())

let run ?engine = wrap Rate ?engine
let run_with_histogram ?engine = wrap Histogram ?engine
let run_with_outcomes ?engine = wrap Outcomes ?engine
