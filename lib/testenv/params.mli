(** Testing-environment parameters.

    Prior work (Kirkham et al., which the paper builds on) exposes 17
    tunable parameters; this module models all of them, plus the paper's
    own contribution: whether test instances run singly (SITE) or packed
    in parallel across every testing thread (PTE, Sec. 4.1). Random
    instantiation of these parameters is how environments are tuned
    (Sec. 5.1). *)

(** Memory access pattern used by stressing threads. *)
type stress_pattern = Store_store | Store_load | Load_store | Load_load

(** How stressing threads pick their target lines. *)
type stress_strategy = Round_robin | Chunking

(** Single-instance (SITE) or parallel (PTE) testing. *)
type mode = Single | Parallel

(** Which level of the GPU execution hierarchy the test instances span.
    The paper evaluates only {!Inter_workgroup} (Sec. 1.2);
    {!Intra_workgroup} is the extension it leaves to future work —
    instance roles are placed on threads of one workgroup, where
    scheduling is tighter and caches are shared. *)
type scope = Inter_workgroup | Intra_workgroup

type t = {
  mode : mode;
  scope : scope;
  (* 1-2: testing thread layout *)
  testing_workgroups : int;
  threads_per_workgroup : int;
  (* 3-4: scheduling heuristics *)
  shuffle_pct : int;  (** probability (%) that thread ids are shuffled *)
  barrier_pct : int;  (** probability (%) that a barrier aligns test threads *)
  (* 5-10: memory stress from dedicated stressing threads, and
     pre-stress performed by the testing threads themselves *)
  mem_stress_pct : int;
  mem_stress_iterations : int;
  mem_stress_pattern : stress_pattern;
  pre_stress_pct : int;
  pre_stress_iterations : int;
  pre_stress_pattern : stress_pattern;
  (* 11-15: stress memory shape *)
  stress_line_size : int;
  stress_target_lines : int;
  scratch_memory_size : int;
  mem_stride : int;
  stress_strategy : stress_strategy;
  (* 16-17: the coprime multipliers of the parallel permutation *)
  permute_first : int;  (** multiplier for memory-location spreading *)
  permute_second : int;  (** multiplier for thread↔instance pairing *)
}

val site_baseline : t
(** Sec. 5.1's SITE Baseline: one test instance, 32 workgroups, no added
    stress. *)

val pte_baseline : t
(** Sec. 5.1's PTE Baseline: 1024 testing workgroups of 256 threads, no
    added stress. *)

val random : Mcm_util.Prng.t -> mode -> t
(** [random g mode] draws a random environment for tuning, with parameter
    ranges following the published artifact's tuning config. *)

val with_scope : t -> scope -> t
(** [with_scope env s] is [env] testing at scope [s]. *)

val scaled : t -> float -> t
(** [scaled env f] multiplies the thread-layout sizes by [f] (min 1 / 2
    workgroups), used to shrink the paper's full-scale environments to
    bench scale while preserving their structure. *)

(** Derived quantities consumed by the runner. *)

val instances_per_iteration : t -> roles:int -> int
(** Number of test instances per kernel launch: equal to the total
    testing-thread count in [Parallel] mode (each thread runs one role
    slice of [roles] instances back to back, Fig. 4), [1] in [Single]
    mode. *)

val stress_intensity : t -> float
(** Aggregate memory-stress intensity in [\[0,1\]], combining stress
    probability, loop length, access pattern, line contention and
    strategy. Zero for the baselines. *)

val jitter_scale : t -> float
(** Multiplier on the device's start-time jitter induced by shuffling,
    pre-stress and stress traffic. *)

val alignment : t -> float
(** In [\[0,1\]]: how strongly barriers align test-thread starts. *)

val location_contention : t -> float
(** In [\[0,1\]]: how much testing locations share cache lines, from
    [mem_stride] vs [stress_line_size]. *)

val extra_instrs_per_thread : t -> int
(** Expected extra per-thread instructions from pre-stress and stress
    loops — feeds the kernel timing model. *)

val pp : Format.formatter -> t -> unit
val to_json : t -> Mcm_util.Jsonw.t

val of_json : Mcm_util.Jsonw.t -> (t, string) result
(** Inverse of {!to_json} — the wire codec the serve protocol uses to
    ship environments. [of_json (to_json env) = Ok env] for every [env];
    errors name the missing or ill-typed field. *)
