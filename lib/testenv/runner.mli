(** Running litmus tests in a testing environment on a simulated device.

    One call = one testing campaign: [iterations] kernel launches, each
    executing the environment's full complement of test instances,
    counting how many instances exhibit the test's target behaviour
    ({e kills} for mutants, {e violations} for conformance tests) and
    accumulating simulated time for death-rate computation (Sec. 5.2).

    The weak-memory amplification applied to every instance combines the
    device's occupancy response (more concurrent instances → more
    contention), the memory-stress response, the pairing quality of the
    coprime permutation, and location contention from the memory stride —
    the mechanisms Sec. 4.1 credits for PTE's effectiveness and its
    synergy with stress.

    Performance note: instances whose role start times are separated by
    more than the weak-memory horizon (slices plus 30 mean visibility and
    staleness windows) are scored as non-kills without full simulation.
    For every generated target this is exact — each target requires
    cross-thread interaction within the horizon — up to a [e^-30]
    tail approximation of the exponential delays. *)

type engine = Request.engine =
  | Interpreter
      (** {!Mcm_gpu.Instance.run} per instance — the allocation-heavy
          reference implementation, kept for differential testing. *)
  | Kernel
      (** {!Mcm_gpu.Kernel}: the (test, device, env) triple is compiled
          once per campaign and every domain runs instances against a
          reused per-domain workspace, allocation-free in steady state.
          Bit-identical to [Interpreter] — same PRNG draws, same
          outcomes — and the default. *)

type result = {
  kills : int;  (** instances that exhibited the target behaviour *)
  instances : int;  (** total instances executed *)
  iterations : int;  (** kernel launches performed *)
  sim_time_s : float;  (** total simulated testing time, seconds *)
  rate : float;  (** kills per simulated second — the mutant death rate *)
}

val run :
  ?engine:engine ->
  ?domains:int ->
  ?store:Mcm_campaign.Store.t ->
  device:Mcm_gpu.Device.t ->
  env:Params.t ->
  test:Mcm_litmus.Litmus.t ->
  iterations:int ->
  seed:int ->
  unit ->
  result
(** [run ~device ~env ~test ~iterations ~seed ()] executes the campaign.
    Fully deterministic in [seed] (and all other inputs).

    {b Deprecated} — a one-line wrapper over
    [exec Rate (Request.make …) (Request.context …)], kept for existing
    callers; new code should use {!exec}.

    [domains] shards the iteration axis across that many domains of a
    {!Mcm_util.Pool} (default: serial). Each iteration derives its PRNG
    independently via [Prng.mix seed it] and outcome tallies are summed
    with associative integer addition, so the returned [result] is
    {e bit-identical} for every [domains] value — parallelism is purely a
    wall-clock optimisation and can never change what a campaign
    observes.

    [store] memoizes the campaign: its {!cell_key} is looked up first and
    a freshly computed result is persisted. Campaigns are pure in their
    arguments, so a cached result is bit-identical to recomputing it. The
    store handle must belong to the calling domain (see
    {!Mcm_campaign.Store}); the internal iteration pool never touches
    it. *)

val amplification : Mcm_gpu.Device.t -> Params.t -> roles:int -> float
(** The weak-memory amplification the campaign will apply — exposed for
    reports and ablation benches. *)

val layout_of_env : Params.t -> Mcm_memmodel.Scope.layout
(** The thread layout the engines execute under: {!Params.Inter_workgroup}
    environments give every role its own workgroup
    ({!Mcm_memmodel.Scope.Inter}), {!Params.Intra_workgroup} puts all
    roles in one ({!Mcm_memmodel.Scope.Intra}). The oracle must be
    queried at the same layout for its allowed sets to be exact. *)

(** Per-behaviour outcome counts of a campaign, the breakdown MCS testing
    tools report (see {!Mcm_litmus.Classify}). [skipped] counts instances
    short-circuited by the weak-memory horizon; their roles never
    overlapped, so their outcomes are sequential by construction. *)
type histogram = {
  sequential : int;
  interleaved : int;
  weak : int;
  forbidden : int;
  skipped : int;
}

(** {2 The raw engine}

    [run_campaign] is the compute primitive beneath the pipeline: one
    campaign, no request, context, or store involvement. It is what
    {!exec} calls after planning, and what the pipeline-overhead bench
    ([make bench-pipeline]) dispatches directly to hold the unified
    path to its overhead contract. Ordinary callers want {!exec}. *)

(** The raw totals of a campaign, summed over iterations. All fields
    are associative sums (the outcome set is a sorted-unique merge), so
    any partition of the iteration axis folds to the same tally. *)
type tally = {
  t_kills : int;
  t_sequential : int;
  t_interleaved : int;
  t_weak : int;
  t_forbidden : int;
  t_skipped : int;
  t_outcomes : Mcm_litmus.Litmus.outcome list;
      (** distinct outcomes of executed instances, sorted; empty unless
          [collect] was set. *)
}

val run_campaign :
  ?engine:engine ->
  ?plan:Request.plan ->
  ?domains:int ->
  ?chunk:int ->
  ?collect:bool ->
  classify:(Mcm_litmus.Litmus.outcome -> Mcm_litmus.Classify.behaviour) option ->
  device:Mcm_gpu.Device.t ->
  env:Params.t ->
  test:Mcm_litmus.Litmus.t ->
  iterations:int ->
  seed:int ->
  unit ->
  result * tally
(** One campaign, eagerly computed. [classify] fills the behaviour
    buckets ([None] leaves them zero); [collect] (default [false])
    accumulates the observed-outcome set. [domains]/[chunk] shard the
    iteration axis over a transient pool; the tally is bit-identical
    for every sharding.

    [plan] (default {!Request.Schema}) picks the compile/memoization
    strategy: [Per_cell] compiles a fresh kernel and derives the full
    campaign prefix from scratch — the reference path; [Schema] reuses
    the memoized prefix (compiled image, effective weak params,
    instance counts, horizon) and a per-domain workspace arena across
    cells sharing the canonical prefix. The two plans are bit-identical
    in result and tally — memoized values are pure functions of the
    prefix, and shared scratch never influences a PRNG draw (see
    {!Mcm_gpu.Kernel}). *)

(** {2 The unified pipeline}

    [exec] is {e the} way to run a campaign: a {!Request.t} names the
    cell, a {!Request.ctx} supplies execution resources, and a collector
    picks what the campaign returns — which also indexes the persisted
    payload shape, so the three codec pairs collapse into one
    collector-indexed codec ({!kind}/{!encode}/{!decode}). *)

(** What a campaign collects, indexing its return (and payload) type. *)
type _ collect =
  | Rate : result collect  (** kills and death rate only *)
  | Histogram : (result * histogram) collect
      (** plus the per-behaviour outcome classification *)
  | Outcomes : (result * Mcm_litmus.Litmus.outcome list) collect
      (** plus the deduplicated, sorted observed-outcome set *)

val exec : 'a collect -> Request.t -> Request.ctx -> 'a
(** [exec collect request ctx] runs the campaign [request] names.
    Fully deterministic in the request: the result is {e bit-identical}
    for every [ctx.domains]/[ctx.chunk] value (each iteration derives its
    PRNG independently via [Prng.mix seed it]; tallies sum associatively)
    and for warm versus cold [ctx.store] (codecs round-trip exactly).
    When [ctx.store] is set the cell is memoized under
    [Request.key ~kind:(kind collect)]; a cached payload that fails to
    decode is recomputed but not re-stored (first write wins). The store
    handle must belong to the calling domain — worker domains only ever
    compute. [ctx.journal] is ignored here; journaling is a multi-cell
    concern (see {!Mcm_campaign.Sched} and [Mcm_harness.Grid]). *)

val kind : 'a collect -> string
(** The cell-kind string keyed into the store: [Rate] → ["run"],
    [Histogram] → ["histogram"], [Outcomes] → ["outcomes"]. *)

val encode : 'a collect -> 'a -> Mcm_util.Jsonw.t
(** The persisted payload codec of a collector. [decode] inverts
    [encode] exactly — floats round-trip through {!Mcm_util.Jsonw}'s
    [%.17g] printing — which the warm-path bit-identity contract relies
    on. *)

val decode : 'a collect -> Mcm_util.Jsonw.t -> ('a, string) Stdlib.result

val run_with_outcomes :
  ?engine:engine ->
  ?domains:int ->
  ?store:Mcm_campaign.Store.t ->
  device:Mcm_gpu.Device.t ->
  env:Params.t ->
  test:Mcm_litmus.Litmus.t ->
  iterations:int ->
  seed:int ->
  unit ->
  result * Mcm_litmus.Litmus.outcome list
(** {b Deprecated} wrapper over [exec Outcomes] — see {!run}.
    Like {!run} (identical [result] for identical arguments), but also
    returns the deduplicated, sorted list of every outcome observed by an
    executed instance — the observation set the axiomatic oracle checks
    against a model's allowed-outcome set. Skipped instances are not
    collected: their roles never overlapped, so their outcomes are
    sequential by construction (and sequential outcomes are checked
    against the oracle separately). The set is bit-identical for every
    [domains] value. *)

val run_with_histogram :
  ?engine:engine ->
  ?domains:int ->
  ?store:Mcm_campaign.Store.t ->
  device:Mcm_gpu.Device.t ->
  env:Params.t ->
  test:Mcm_litmus.Litmus.t ->
  iterations:int ->
  seed:int ->
  unit ->
  result * histogram
(** {b Deprecated} wrapper over [exec Histogram] — see {!run}.
    Like {!run} (identical [result] for identical arguments), but also
    classifies every executed instance's outcome. The same determinism
    guarantee extends to the histogram: identical buckets for every
    [domains] value. *)

(** {2 Campaign-store integration}

    Runner results are memoization entries of pure functions of their
    cell key; the codecs below define the persisted payloads. Encoding
    then decoding is the identity (floats round-trip exactly through
    {!Mcm_util.Jsonw}'s [%.17g] printing), which the store's warm-path
    bit-identity contract relies on. *)

val engine_name : engine -> string
(** ["interpreter"] or ["kernel"] — the engine component of cell keys. *)

val cell_key :
  ?engine:engine ->
  kind:string ->
  device:Mcm_gpu.Device.t ->
  env:Params.t ->
  test:Mcm_litmus.Litmus.t ->
  iterations:int ->
  seed:int ->
  unit ->
  Mcm_campaign.Key.t
(** The content key of one campaign cell. [kind] distinguishes the
    payload shapes: {!run} stores ["run"], {!run_with_histogram}
    ["histogram"], {!run_with_outcomes} ["outcomes"]. [engine] defaults
    to [Kernel], matching the run functions. *)

(** {2 Engine counters}

    Process-wide compile/memoization totals, reported by sweep drivers
    and [mcmutants report] next to the store's hit/miss stats. Cheap
    atomics bumped per cell (never per instance); monotone, so drivers
    snapshot before/after and {!engine_stats_sub} the two. *)

type engine_stats = {
  kernels_compiled : int;
      (** structural images compiled from scratch ({!Mcm_gpu.Kernel}
          [compile] calls, including cache misses) *)
  schema_reuses : int;
      (** cells served by a memoized image or campaign prefix instead of
          a fresh compilation *)
  workspaces_built : int;  (** workspaces allocated by the schema arena *)
  workspace_reuses : int;
      (** cross-cell workspace rebinds (same image, different cell) *)
}

val engine_stats : unit -> engine_stats
(** The current process-wide totals. *)

val engine_stats_sub : engine_stats -> engine_stats -> engine_stats
(** Field-wise difference, for before/after deltas. *)

val pp_engine_stats : Format.formatter -> engine_stats -> unit
(** ["N kernel(s) compiled, N schema reuse(s), N workspace reuse(s)"]. *)

val result_to_json : result -> Mcm_util.Jsonw.t
val result_of_json : Mcm_util.Jsonw.t -> (result, string) Stdlib.result
val histogram_cell_to_json : result * histogram -> Mcm_util.Jsonw.t
val histogram_cell_of_json : Mcm_util.Jsonw.t -> (result * histogram, string) Stdlib.result
val outcomes_cell_to_json : result * Mcm_litmus.Litmus.outcome list -> Mcm_util.Jsonw.t

val outcomes_cell_of_json :
  Mcm_util.Jsonw.t -> (result * Mcm_litmus.Litmus.outcome list, string) Stdlib.result
