(** Running litmus tests in a testing environment on a simulated device.

    One call = one testing campaign: [iterations] kernel launches, each
    executing the environment's full complement of test instances,
    counting how many instances exhibit the test's target behaviour
    ({e kills} for mutants, {e violations} for conformance tests) and
    accumulating simulated time for death-rate computation (Sec. 5.2).

    The weak-memory amplification applied to every instance combines the
    device's occupancy response (more concurrent instances → more
    contention), the memory-stress response, the pairing quality of the
    coprime permutation, and location contention from the memory stride —
    the mechanisms Sec. 4.1 credits for PTE's effectiveness and its
    synergy with stress.

    Performance note: instances whose role start times are separated by
    more than the weak-memory horizon (slices plus 30 mean visibility and
    staleness windows) are scored as non-kills without full simulation.
    For every generated target this is exact — each target requires
    cross-thread interaction within the horizon — up to a [e^-30]
    tail approximation of the exponential delays. *)

type engine =
  | Interpreter
      (** {!Mcm_gpu.Instance.run} per instance — the allocation-heavy
          reference implementation, kept for differential testing. *)
  | Kernel
      (** {!Mcm_gpu.Kernel}: the (test, device, env) triple is compiled
          once per campaign and every domain runs instances against a
          reused per-domain workspace, allocation-free in steady state.
          Bit-identical to [Interpreter] — same PRNG draws, same
          outcomes — and the default. *)

type result = {
  kills : int;  (** instances that exhibited the target behaviour *)
  instances : int;  (** total instances executed *)
  iterations : int;  (** kernel launches performed *)
  sim_time_s : float;  (** total simulated testing time, seconds *)
  rate : float;  (** kills per simulated second — the mutant death rate *)
}

val run :
  ?engine:engine ->
  ?domains:int ->
  ?store:Mcm_campaign.Store.t ->
  device:Mcm_gpu.Device.t ->
  env:Params.t ->
  test:Mcm_litmus.Litmus.t ->
  iterations:int ->
  seed:int ->
  unit ->
  result
(** [run ~device ~env ~test ~iterations ~seed ()] executes the campaign.
    Fully deterministic in [seed] (and all other inputs).

    [domains] shards the iteration axis across that many domains of a
    {!Mcm_util.Pool} (default: serial). Each iteration derives its PRNG
    independently via [Prng.mix seed it] and outcome tallies are summed
    with associative integer addition, so the returned [result] is
    {e bit-identical} for every [domains] value — parallelism is purely a
    wall-clock optimisation and can never change what a campaign
    observes.

    [store] memoizes the campaign: its {!cell_key} is looked up first and
    a freshly computed result is persisted. Campaigns are pure in their
    arguments, so a cached result is bit-identical to recomputing it. The
    store handle must belong to the calling domain (see
    {!Mcm_campaign.Store}); the internal iteration pool never touches
    it. *)

val amplification : Mcm_gpu.Device.t -> Params.t -> roles:int -> float
(** The weak-memory amplification the campaign will apply — exposed for
    reports and ablation benches. *)

(** Per-behaviour outcome counts of a campaign, the breakdown MCS testing
    tools report (see {!Mcm_litmus.Classify}). [skipped] counts instances
    short-circuited by the weak-memory horizon; their roles never
    overlapped, so their outcomes are sequential by construction. *)
type histogram = {
  sequential : int;
  interleaved : int;
  weak : int;
  forbidden : int;
  skipped : int;
}

val run_with_outcomes :
  ?engine:engine ->
  ?domains:int ->
  ?store:Mcm_campaign.Store.t ->
  device:Mcm_gpu.Device.t ->
  env:Params.t ->
  test:Mcm_litmus.Litmus.t ->
  iterations:int ->
  seed:int ->
  unit ->
  result * Mcm_litmus.Litmus.outcome list
(** Like {!run} (identical [result] for identical arguments), but also
    returns the deduplicated, sorted list of every outcome observed by an
    executed instance — the observation set the axiomatic oracle checks
    against a model's allowed-outcome set. Skipped instances are not
    collected: their roles never overlapped, so their outcomes are
    sequential by construction (and sequential outcomes are checked
    against the oracle separately). The set is bit-identical for every
    [domains] value. *)

val run_with_histogram :
  ?engine:engine ->
  ?domains:int ->
  ?store:Mcm_campaign.Store.t ->
  device:Mcm_gpu.Device.t ->
  env:Params.t ->
  test:Mcm_litmus.Litmus.t ->
  iterations:int ->
  seed:int ->
  unit ->
  result * histogram
(** Like {!run} (identical [result] for identical arguments), but also
    classifies every executed instance's outcome. The same determinism
    guarantee extends to the histogram: identical buckets for every
    [domains] value. *)

(** {2 Campaign-store integration}

    Runner results are memoization entries of pure functions of their
    cell key; the codecs below define the persisted payloads. Encoding
    then decoding is the identity (floats round-trip exactly through
    {!Mcm_util.Jsonw}'s [%.17g] printing), which the store's warm-path
    bit-identity contract relies on. *)

val engine_name : engine -> string
(** ["interpreter"] or ["kernel"] — the engine component of cell keys. *)

val cell_key :
  ?engine:engine ->
  kind:string ->
  device:Mcm_gpu.Device.t ->
  env:Params.t ->
  test:Mcm_litmus.Litmus.t ->
  iterations:int ->
  seed:int ->
  unit ->
  Mcm_campaign.Key.t
(** The content key of one campaign cell. [kind] distinguishes the
    payload shapes: {!run} stores ["run"], {!run_with_histogram}
    ["histogram"], {!run_with_outcomes} ["outcomes"]. [engine] defaults
    to [Kernel], matching the run functions. *)

val result_to_json : result -> Mcm_util.Jsonw.t
val result_of_json : Mcm_util.Jsonw.t -> (result, string) Stdlib.result
val histogram_cell_to_json : result * histogram -> Mcm_util.Jsonw.t
val histogram_cell_of_json : Mcm_util.Jsonw.t -> (result * histogram, string) Stdlib.result
val outcomes_cell_to_json : result * Mcm_litmus.Litmus.outcome list -> Mcm_util.Jsonw.t

val outcomes_cell_of_json :
  Mcm_util.Jsonw.t -> (result * Mcm_litmus.Litmus.outcome list, string) Stdlib.result
