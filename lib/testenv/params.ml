module Prng = Mcm_util.Prng
module Numbers = Mcm_util.Numbers
module Jsonw = Mcm_util.Jsonw

type stress_pattern = Store_store | Store_load | Load_store | Load_load

type stress_strategy = Round_robin | Chunking

type mode = Single | Parallel

type scope = Inter_workgroup | Intra_workgroup

type t = {
  mode : mode;
  scope : scope;
  testing_workgroups : int;
  threads_per_workgroup : int;
  shuffle_pct : int;
  barrier_pct : int;
  mem_stress_pct : int;
  mem_stress_iterations : int;
  mem_stress_pattern : stress_pattern;
  pre_stress_pct : int;
  pre_stress_iterations : int;
  pre_stress_pattern : stress_pattern;
  stress_line_size : int;
  stress_target_lines : int;
  scratch_memory_size : int;
  mem_stride : int;
  stress_strategy : stress_strategy;
  permute_first : int;
  permute_second : int;
}

let site_baseline =
  {
    mode = Single;
    scope = Inter_workgroup;
    testing_workgroups = 32;
    threads_per_workgroup = 1;
    shuffle_pct = 0;
    barrier_pct = 0;
    mem_stress_pct = 0;
    mem_stress_iterations = 0;
    mem_stress_pattern = Store_store;
    pre_stress_pct = 0;
    pre_stress_iterations = 0;
    pre_stress_pattern = Store_store;
    stress_line_size = 64;
    stress_target_lines = 2;
    scratch_memory_size = 2048;
    mem_stride = 1;
    stress_strategy = Round_robin;
    permute_first = 1;
    permute_second = 1;
  }

let pte_baseline =
  {
    site_baseline with
    mode = Parallel;
    testing_workgroups = 1024;
    threads_per_workgroup = 256;
    permute_first = 419;
    permute_second = 1031;
  }

let patterns = [| Store_store; Store_load; Load_store; Load_load |]
let strategies = [| Round_robin; Chunking |]

let random g mode =
  let pow2 lo hi = 1 lsl (lo + Prng.int g (hi - lo + 1)) in
  let pct () = Prng.int g 101 in
  (* Parallel layouts skew large: the point of a PTE is to use the
     device's full thread capacity (Sec. 4.1), and the published tuning
     presets run hundreds of workgroups. *)
  let testing_workgroups =
    match mode with Single -> 2 + Prng.int g 31 | Parallel -> pow2 6 10 (* 64 .. 1024 *)
  in
  let threads_per_workgroup = match mode with Single -> 1 | Parallel -> pow2 5 8 (* 32 .. 256 *) in
  let total = testing_workgroups * threads_per_workgroup in
  {
    mode;
    scope = Inter_workgroup;
    testing_workgroups;
    threads_per_workgroup;
    shuffle_pct = pct ();
    barrier_pct = pct ();
    mem_stress_pct = pct ();
    mem_stress_iterations = pow2 4 10;
    mem_stress_pattern = Prng.pick g patterns;
    pre_stress_pct = pct ();
    pre_stress_iterations = pow2 4 10;
    pre_stress_pattern = Prng.pick g patterns;
    stress_line_size = pow2 2 10;
    stress_target_lines = pow2 0 5;
    scratch_memory_size = pow2 9 12;
    mem_stride = pow2 0 7;
    stress_strategy = Prng.pick g strategies;
    permute_first = Numbers.random_coprime g (max 2 total);
    permute_second = Numbers.random_coprime g (max 2 total);
  }

(* Only the workgroup count shrinks: threads-per-workgroup drives the
   occupancy response curves, and shrinking it too would change which
   devices exhibit weak behaviour at all. *)
let scaled env f =
  if f >= 1. || env.mode = Single then env
  else
    let wgs = max 2 (int_of_float (float_of_int env.testing_workgroups *. f)) in
    { env with testing_workgroups = wgs }

let with_scope env scope = { env with scope }

let instances_per_iteration env ~roles =
  ignore roles;
  (* Every testing thread runs one role slice of [roles] instances back to
     back, so the instance count equals the thread count (Fig. 4: two
     workgroups of 256 threads run 512 instances of a two-thread test). *)
  match env.mode with
  | Single -> 1
  | Parallel -> max 1 (env.testing_workgroups * env.threads_per_workgroup)

let pattern_weight = function
  | Store_store -> 1.0
  | Store_load -> 0.8
  | Load_store -> 0.6
  | Load_load -> 0.4

(* Intensity saturates with loop length, concentrates with few target
   lines, and chunking keeps each thread hammering one line. *)
let stress_intensity env =
  let probability = float_of_int env.mem_stress_pct /. 100. in
  if probability = 0. then 0.
  else
    let length = 1. -. exp (-.float_of_int env.mem_stress_iterations /. 256.) in
    let concentration = 1. /. (1. +. (float_of_int env.stress_target_lines /. 8.)) in
    let strategy = match env.stress_strategy with Chunking -> 1.0 | Round_robin -> 0.85 in
    probability *. length *. concentration *. strategy *. pattern_weight env.mem_stress_pattern

let jitter_scale env =
  let shuffle = float_of_int env.shuffle_pct /. 100. in
  let pre = float_of_int env.pre_stress_pct /. 100. in
  let pre_len = 1. -. exp (-.float_of_int env.pre_stress_iterations /. 256.) in
  1. +. (0.6 *. shuffle) +. (1.2 *. pre *. pre_len *. pattern_weight env.pre_stress_pattern)

let alignment env = float_of_int env.barrier_pct /. 100.

let location_contention env =
  let sharing = float_of_int env.stress_line_size /. float_of_int (max 1 env.mem_stride) in
  Float.min 1. (sharing /. 64.)

let extra_instrs_per_thread env =
  let stress =
    env.mem_stress_pct * env.mem_stress_iterations / 100 * 2
    + (env.pre_stress_pct * env.pre_stress_iterations / 100 * 2)
  in
  min stress 4096

let pattern_name = function
  | Store_store -> "store-store"
  | Store_load -> "store-load"
  | Load_store -> "load-store"
  | Load_load -> "load-load"

let strategy_name = function Round_robin -> "round-robin" | Chunking -> "chunking"

let mode_name = function Single -> "single" | Parallel -> "parallel"

let scope_name = function Inter_workgroup -> "inter-workgroup" | Intra_workgroup -> "intra-workgroup"

let pp fmt env =
  Format.fprintf fmt
    "%s (%s): %d wgs x %d threads, shuffle %d%%, barrier %d%%, stress %d%%x%d %s, pre %d%%x%d %s, lines \
     %dx%d, scratch %d, stride %d, %s, P1=%d, P2=%d"
    (mode_name env.mode) (scope_name env.scope) env.testing_workgroups env.threads_per_workgroup env.shuffle_pct
    env.barrier_pct env.mem_stress_pct env.mem_stress_iterations
    (pattern_name env.mem_stress_pattern) env.pre_stress_pct env.pre_stress_iterations
    (pattern_name env.pre_stress_pattern) env.stress_target_lines env.stress_line_size
    env.scratch_memory_size env.mem_stride
    (strategy_name env.stress_strategy)
    env.permute_first env.permute_second

let to_json env =
  Jsonw.Obj
    [
      ("mode", Jsonw.String (mode_name env.mode));
      ("scope", Jsonw.String (scope_name env.scope));
      ("testingWorkgroups", Jsonw.Int env.testing_workgroups);
      ("threadsPerWorkgroup", Jsonw.Int env.threads_per_workgroup);
      ("shufflePct", Jsonw.Int env.shuffle_pct);
      ("barrierPct", Jsonw.Int env.barrier_pct);
      ("memStressPct", Jsonw.Int env.mem_stress_pct);
      ("memStressIterations", Jsonw.Int env.mem_stress_iterations);
      ("memStressPattern", Jsonw.String (pattern_name env.mem_stress_pattern));
      ("preStressPct", Jsonw.Int env.pre_stress_pct);
      ("preStressIterations", Jsonw.Int env.pre_stress_iterations);
      ("preStressPattern", Jsonw.String (pattern_name env.pre_stress_pattern));
      ("stressLineSize", Jsonw.Int env.stress_line_size);
      ("stressTargetLines", Jsonw.Int env.stress_target_lines);
      ("scratchMemorySize", Jsonw.Int env.scratch_memory_size);
      ("memStride", Jsonw.Int env.mem_stride);
      ("stressStrategy", Jsonw.String (strategy_name env.stress_strategy));
      ("permuteFirst", Jsonw.Int env.permute_first);
      ("permuteSecond", Jsonw.Int env.permute_second);
    ]

(* The wire codec's read half. Field-by-field inverse of [to_json]:
   every field is required and must carry the exact name/type [to_json]
   writes, so a request that round-trips is canonical by construction. *)
let of_json v =
  let module Jsonp = Mcm_util.Jsonp in
  let ( let* ) = Result.bind in
  let int name =
    match Option.bind (Jsonp.member name v) Jsonp.to_int with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "env: missing or non-integer %S" name)
  in
  let str name =
    match Option.bind (Jsonp.member name v) Jsonp.to_string_opt with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "env: missing or non-string %S" name)
  in
  let enum name decode =
    let* s = str name in
    match decode s with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "env: unknown %S value %S" name s)
  in
  let pattern_of_name = function
    | "store-store" -> Some Store_store
    | "store-load" -> Some Store_load
    | "load-store" -> Some Load_store
    | "load-load" -> Some Load_load
    | _ -> None
  in
  let* mode =
    enum "mode" (function "single" -> Some Single | "parallel" -> Some Parallel | _ -> None)
  in
  let* scope =
    enum "scope" (function
      | "inter-workgroup" -> Some Inter_workgroup
      | "intra-workgroup" -> Some Intra_workgroup
      | _ -> None)
  in
  let* testing_workgroups = int "testingWorkgroups" in
  let* threads_per_workgroup = int "threadsPerWorkgroup" in
  let* shuffle_pct = int "shufflePct" in
  let* barrier_pct = int "barrierPct" in
  let* mem_stress_pct = int "memStressPct" in
  let* mem_stress_iterations = int "memStressIterations" in
  let* mem_stress_pattern = enum "memStressPattern" pattern_of_name in
  let* pre_stress_pct = int "preStressPct" in
  let* pre_stress_iterations = int "preStressIterations" in
  let* pre_stress_pattern = enum "preStressPattern" pattern_of_name in
  let* stress_line_size = int "stressLineSize" in
  let* stress_target_lines = int "stressTargetLines" in
  let* scratch_memory_size = int "scratchMemorySize" in
  let* mem_stride = int "memStride" in
  let* stress_strategy =
    enum "stressStrategy" (function
      | "round-robin" -> Some Round_robin
      | "chunking" -> Some Chunking
      | _ -> None)
  in
  let* permute_first = int "permuteFirst" in
  let* permute_second = int "permuteSecond" in
  Ok
    {
      mode;
      scope;
      testing_workgroups;
      threads_per_workgroup;
      shuffle_pct;
      barrier_pct;
      mem_stress_pct;
      mem_stress_iterations;
      mem_stress_pattern;
      pre_stress_pct;
      pre_stress_iterations;
      pre_stress_pattern;
      stress_line_size;
      stress_target_lines;
      scratch_memory_size;
      mem_stride;
      stress_strategy;
      permute_first;
      permute_second;
    }
