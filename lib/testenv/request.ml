module Jsonw = Mcm_util.Jsonw
module Pool = Mcm_util.Pool
module Litmus = Mcm_litmus.Litmus
module Device = Mcm_gpu.Device
module Key = Mcm_campaign.Key

type engine = Interpreter | Kernel

let engine_name = function Interpreter -> "interpreter" | Kernel -> "kernel"

(* The engine registry: every engine the runner can execute, by the name
   that appears in campaign keys and on the CLI. *)
let engines = [ ("interpreter", Interpreter); ("kernel", Kernel) ]

let engine_of_name name = List.assoc_opt (String.lowercase_ascii name) engines

type t = {
  test : Litmus.t;
  device : Device.t;
  env : Params.t;
  iterations : int;
  seed : int;
  engine : engine;
}

let make ?(engine = Kernel) ~device ~env ~test ~iterations ~seed () =
  { test; device; env; iterations; seed; engine }

(* The canonical serialization of a request IS the campaign key payload:
   both go through [Key.cell_fields], so pinning one pins the other. *)
let to_fields ~kind r =
  Key.cell_fields ~kind ~engine:(engine_name r.engine) ~test:r.test ~device:r.device
    ~env:(Params.to_json r.env) ~iterations:r.iterations ~seed:r.seed ()

let to_json ~kind r = Jsonw.Obj (to_fields ~kind r)

let key ~kind r = Key.of_fields (to_fields ~kind r)

let prefix_key r =
  Key.of_fields
    (Key.prefix_fields ~engine:(engine_name r.engine) ~test:r.test ~device:r.device
       ~env:(Params.to_json r.env) ())

type plan = Per_cell | Schema

let plan_name = function Per_cell -> "per-cell" | Schema -> "schema"

(* The plan registry: every compile/memoization strategy the runner can
   execute, by CLI name. *)
let plans = [ ("per-cell", Per_cell); ("schema", Schema) ]

let plan_of_name name = List.assoc_opt (String.lowercase_ascii name) plans

type ctx = {
  domains : int;
  chunk : int option;
  store : Mcm_campaign.Store.t option;
  journal : Mcm_campaign.Journal.t option;
  plan : plan;
}

let serial = { domains = 1; chunk = None; store = None; journal = None; plan = Schema }

let context ?(domains = 1) ?chunk ?store ?journal ?(plan = Schema) () =
  { domains; chunk; store; journal; plan }

let chunk_for c ~n =
  match c.chunk with
  | Some chunk -> max 1 chunk
  | None -> Pool.chunk_for ~domains:c.domains ~n
