(** Campaign cell requests and execution contexts.

    A {!t} names one campaign cell — the unit of measurement in the
    evaluation: run [test] on [device] under [env] for [iterations]
    iterations from [seed], with a given simulation [engine]. Its
    canonical serialization ({!to_fields}/{!to_json}) {e is} the
    {!Mcm_campaign.Key} payload: {!key} hashes exactly those fields, so a
    request pins its store identity and the pinned-vector tests in
    [test/test_pipeline.ml] guard both at once.

    A {!ctx} bundles the execution resources that used to be threaded as
    five separate optional arguments through harness, oracle, CLI, bench
    and examples: the domain count, the pool chunk size, the result
    {!Mcm_campaign.Store} and the sweep {!Mcm_campaign.Journal}. Build it
    once ({!context}) and pass it by value; {!serial} is the zero-resource
    default (one domain, no store). *)

(** {2 Engines} *)

type engine = Interpreter | Kernel

val engine_name : engine -> string
(** ["interpreter"] / ["kernel"] — the names baked into campaign keys. *)

val engines : (string * engine) list
(** The engine registry: every executable engine, by canonical name. *)

val engine_of_name : string -> engine option
(** Case-insensitive lookup in {!engines}. *)

(** {2 Requests} *)

type t = {
  test : Mcm_litmus.Litmus.t;
  device : Mcm_gpu.Device.t;
  env : Params.t;
  iterations : int;
  seed : int;
  engine : engine;
}

val make :
  ?engine:engine ->
  device:Mcm_gpu.Device.t ->
  env:Params.t ->
  test:Mcm_litmus.Litmus.t ->
  iterations:int ->
  seed:int ->
  unit ->
  t
(** [engine] defaults to {!Kernel} (matching the runner). *)

val to_fields : kind:string -> t -> (string * Mcm_util.Jsonw.t) list
(** The canonical field list of the cell, via
    {!Mcm_campaign.Key.cell_fields}. [kind] namespaces the cached payload
    shape (see {!Runner.kind}). *)

val to_json : kind:string -> t -> Mcm_util.Jsonw.t
(** The canonical serialization: [Obj (to_fields ~kind r)]. *)

val key : kind:string -> t -> Mcm_campaign.Key.t
(** The campaign key of the cell — the hash of {!to_fields} with the
    store code version prepended. Byte-identical to what
    {!Mcm_campaign.Key.cell} produces for the same fields. *)

val prefix_key : t -> Mcm_campaign.Key.t
(** The canonical hash of the cell's {e prefix}
    ({!Mcm_campaign.Key.prefix_fields}: everything but the payload kind,
    iteration count and seed). Requests with equal prefix key share all
    of the runner's derived setup — the identity under which
    {!Runner}'s cross-cell memoization and {!Mcm_campaign.Sched}'s
    schema-family grouping operate. *)

(** {2 Plans} *)

(** How the runner compiles and shares per-cell setup across a
    campaign or grid. *)
type plan =
  | Per_cell
      (** The reference path: every cell compiles its own kernel and
          allocates (or single-slot-reuses) its own workspaces —
          exactly the pre-schema behaviour. *)
  | Schema
      (** Mutant-schemata path: cells sharing a structural image reuse
          one compiled image, one workspace arena and the memoized
          campaign prefix (effective weak params, instance counts,
          horizon). Bit-identical to {!Per_cell} by construction;
          differentially tested in [test/test_schema.ml]. *)

val plan_name : plan -> string
(** ["per-cell"] / ["schema"] — the CLI names. Plans do {e not} appear
    in campaign keys: both produce bit-identical results. *)

val plans : (string * plan) list
(** The plan registry, by canonical name. *)

val plan_of_name : string -> plan option
(** Case-insensitive lookup in {!plans}. *)

(** {2 Execution contexts} *)

type ctx = {
  domains : int;  (** worker domains; 1 = serial *)
  chunk : int option;  (** pool dispatch chunk; [None] = {!chunk_for} default *)
  store : Mcm_campaign.Store.t option;  (** memoize cells here *)
  journal : Mcm_campaign.Journal.t option;  (** checkpoint sweeps here *)
  plan : plan;  (** compile/memoization strategy; {!Schema} by default *)
}

val serial : ctx
(** One domain, default chunking, no store, no journal, schema plan. *)

val context :
  ?domains:int ->
  ?chunk:int ->
  ?store:Mcm_campaign.Store.t ->
  ?journal:Mcm_campaign.Journal.t ->
  ?plan:plan ->
  unit ->
  ctx
(** [domains] defaults to 1, [plan] to {!Schema}. *)

val chunk_for : ctx -> n:int -> int
(** The pool dispatch chunk for an [n]-task grid: the context's [chunk]
    if set (clamped to ≥ 1), else {!Mcm_util.Pool.chunk_for} — the single
    place the [n / (4·domains)] default lives. *)
