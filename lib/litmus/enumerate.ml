module Event = Mcm_memmodel.Event
module Execution = Mcm_memmodel.Execution
module Model = Mcm_memmodel.Model

(* All permutations of a list; locations have at most 4 writes so this
   stays tiny. *)
let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y <> x) l in
          List.map (fun p -> x :: p) (permutations rest))
        l

let candidates ?layout t =
  let compiled = Litmus.compile ?layout t in
  let events = compiled.Litmus.events in
  let n = Array.length events in
  let reads = ref [] in
  let writes_by_loc = Hashtbl.create 4 in
  Array.iter
    (fun e ->
      if Event.is_read e then reads := e.Event.id :: !reads;
      if Event.is_write e then
        match Event.loc e with
        | Some l ->
            let cur = try Hashtbl.find writes_by_loc l with Not_found -> [] in
            Hashtbl.replace writes_by_loc l (cur @ [ e.Event.id ])
        | None -> ())
    events;
  let reads = List.rev !reads in
  (* rf choices per read: initial state or any same-location write other
     than the read itself (an RMW cannot read its own write). *)
  let rf_choices r =
    let e = events.(r) in
    match Event.loc e with
    | None -> [ None ]
    | Some l ->
        let ws = try Hashtbl.find writes_by_loc l with Not_found -> [] in
        None :: List.filter_map (fun w -> if w = r then None else Some (Some w)) ws
  in
  let rec assign_rf acc = function
    | [] -> [ List.rev acc ]
    | r :: rest -> List.concat_map (fun c -> assign_rf ((r, c) :: acc) rest) (rf_choices r)
  in
  let rf_assignments = assign_rf [] reads in
  let co_orders =
    let per_loc = Hashtbl.fold (fun l ws acc -> (l, permutations ws) :: acc) writes_by_loc [] in
    let rec product = function
      | [] -> [ [] ]
      | (l, orders) :: rest ->
          let tails = product rest in
          List.concat_map (fun o -> List.map (fun tl -> (l, o) :: tl) tails) orders
    in
    product (List.sort compare per_loc)
  in
  List.concat_map
    (fun rf_pairs ->
      let rf = Array.make n None in
      List.iter (fun (r, c) -> rf.(r) <- c) rf_pairs;
      List.map (fun co -> { Execution.events; rf; co }) co_orders)
    rf_assignments

let consistent_outcomes ?layout m t =
  let outs =
    List.filter_map
      (fun x -> if Model.consistent m x then Some (Litmus.outcome_of_execution t x) else None)
      (candidates ?layout t)
  in
  List.sort_uniq compare outs

let witness ?layout m t =
  List.find_opt
    (fun x -> Model.consistent m x && t.Litmus.target (Litmus.outcome_of_execution t x))
    (candidates ?layout t)

let target_allowed ?layout m t = witness ?layout m t <> None

let target_allowed_cat cat t =
  List.exists
    (fun x ->
      Mcm_memmodel.Cat.consistent cat x && t.Litmus.target (Litmus.outcome_of_execution t x))
    (candidates t)

let consistent_outcomes_cat cat t =
  List.filter_map
    (fun x ->
      if Mcm_memmodel.Cat.consistent cat x then Some (Litmus.outcome_of_execution t x) else None)
    (candidates t)
  |> List.sort_uniq compare

let forbidden_cycle ?layout t =
  if target_allowed ?layout t.Litmus.model t then None
  else
    let exhibiting =
      List.filter
        (fun x -> t.Litmus.target (Litmus.outcome_of_execution t x))
        (candidates ?layout t)
    in
    (* Prefer a candidate whose only problem is the hb cycle (atomicity
       holds), so the reported cycle is the interesting one. *)
    let atomic = List.filter Model.rmw_atomic exhibiting in
    let pool = if atomic <> [] then atomic else exhibiting in
    List.fold_left
      (fun acc x -> match acc with Some _ -> acc | None -> Model.hb_cycle t.Litmus.model x)
      None pool

let count_candidates ?layout t =
  let all = candidates ?layout t in
  let consistent = List.filter (Model.consistent t.Litmus.model) all in
  (List.length all, List.length consistent)
