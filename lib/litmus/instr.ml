module Scope = Mcm_memmodel.Scope

type t =
  | Load of { reg : int; loc : int; scope : Scope.t }
  | Store of { loc : int; value : int; scope : Scope.t }
  | Rmw of { reg : int; loc : int; value : int; scope : Scope.t }
  | Fence of { scope : Scope.t }

let load ?(scope = Scope.Device) ~reg ~loc () = Load { reg; loc; scope }
let store ?(scope = Scope.Device) ~loc ~value () = Store { loc; value; scope }
let rmw ?(scope = Scope.Device) ~reg ~loc ~value () = Rmw { reg; loc; value; scope }
let fence ?(scope = Scope.Device) () = Fence { scope }

let uses_loc = function
  | Load { loc; _ } | Store { loc; _ } | Rmw { loc; _ } -> Some loc
  | Fence _ -> None

let defines_reg = function
  | Load { reg; _ } | Rmw { reg; _ } -> Some reg
  | Store _ | Fence _ -> None

let is_memory_access = function Load _ | Store _ | Rmw _ -> true | Fence _ -> false
let is_fence = function Fence _ -> true | Load _ | Store _ | Rmw _ -> false

let scope = function
  | Load { scope; _ } | Store { scope; _ } | Rmw { scope; _ } | Fence { scope } -> scope

let with_scope s = function
  | Load i -> Load { i with scope = s }
  | Store i -> Store { i with scope = s }
  | Rmw i -> Rmw { i with scope = s }
  | Fence _ -> Fence { scope = s }

(* Device scope is the default and prints exactly as the pre-scope IR
   did, so stored test blobs and goldens for unscoped programs are
   byte-identical. Workgroup scope marks the operation: a [.wg] suffix
   on atomics, and WGSL's own workgroup-scoped barrier for fences. *)
let pp ~loc_names fmt = function
  | Load { reg; loc; scope = Scope.Device } ->
      Format.fprintf fmt "r%d = atomicLoad(%s)" reg (loc_names loc)
  | Load { reg; loc; scope = Scope.Workgroup } ->
      Format.fprintf fmt "r%d = atomicLoad.wg(%s)" reg (loc_names loc)
  | Store { loc; value; scope = Scope.Device } ->
      Format.fprintf fmt "atomicStore(%s, %d)" (loc_names loc) value
  | Store { loc; value; scope = Scope.Workgroup } ->
      Format.fprintf fmt "atomicStore.wg(%s, %d)" (loc_names loc) value
  | Rmw { reg; loc; value; scope = Scope.Device } ->
      Format.fprintf fmt "r%d = atomicExchange(%s, %d)" reg (loc_names loc) value
  | Rmw { reg; loc; value; scope = Scope.Workgroup } ->
      Format.fprintf fmt "r%d = atomicExchange.wg(%s, %d)" reg (loc_names loc) value
  | Fence { scope = Scope.Device } -> Format.fprintf fmt "storageBarrier()"
  | Fence { scope = Scope.Workgroup } -> Format.fprintf fmt "workgroupBarrier()"

let to_string ~loc_names i = Format.asprintf "%a" (pp ~loc_names) i
