module Model = Mcm_memmodel.Model

type behaviour = Sequential | Interleaved | Weak | Forbidden

let behaviour_name = function
  | Sequential -> "sequential"
  | Interleaved -> "interleaved"
  | Weak -> "weak"
  | Forbidden -> "forbidden"

(* Execute the threads one after another in the given order with a plain
   sequential memory: loads read the current value, stores replace it. *)
let run_sequentially test order =
  let memory = Array.make test.Litmus.nlocs 0 in
  let outcome = Litmus.empty_outcome test in
  List.iter
    (fun tid ->
      List.iter
        (fun instr ->
          match instr with
          | Instr.Load { reg; loc; _ } -> outcome.Litmus.regs.(tid).(reg) <- memory.(loc)
          | Instr.Store { loc; value; _ } -> memory.(loc) <- value
          | Instr.Rmw { reg; loc; value; _ } ->
              outcome.Litmus.regs.(tid).(reg) <- memory.(loc);
              memory.(loc) <- value
          | Instr.Fence _ -> ())
        test.Litmus.threads.(tid))
    order;
  Array.blit memory 0 outcome.Litmus.final 0 test.Litmus.nlocs;
  outcome

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y <> x) l in
          List.map (fun p -> x :: p) (permutations rest))
        l

let sequential_outcomes test =
  let tids = List.init (Litmus.nthreads test) (fun i -> i) in
  List.sort_uniq compare (List.map (run_sequentially test) (permutations tids))

let classifier test =
  let sequential = sequential_outcomes test in
  let sc = Enumerate.consistent_outcomes Model.Sc test in
  let allowed = Enumerate.consistent_outcomes test.Litmus.model test in
  let table = Hashtbl.create 32 in
  (* Later insertions must not override stronger classifications, so fill
     from weakest knowledge to strongest. *)
  List.iter
    (fun o ->
      let b =
        if List.mem o sequential then Sequential
        else if List.mem o sc then Interleaved
        else if List.mem o allowed then Weak
        else Forbidden
      in
      Hashtbl.replace table o b)
    (List.sort_uniq compare
       (List.map (Litmus.outcome_of_execution test) (Enumerate.candidates test)));
  fun outcome -> match Hashtbl.find_opt table outcome with Some b -> b | None -> Forbidden
