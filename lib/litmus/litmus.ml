module Event = Mcm_memmodel.Event
module Execution = Mcm_memmodel.Execution
module Scope = Mcm_memmodel.Scope

type outcome = { regs : int array array; final : int array }

type t = {
  name : string;
  family : string;
  model : Mcm_memmodel.Model.t;
  threads : Instr.t list array;
  nlocs : int;
  target : outcome -> bool;
  target_desc : string;
}

let nthreads t = Array.length t.threads

let nregs t =
  let per_thread instrs =
    List.fold_left
      (fun acc i -> match Instr.defines_reg i with Some r -> max acc (r + 1) | None -> acc)
      0 instrs
  in
  Array.map per_thread t.threads

let well_formed t =
  if Array.length t.threads = 0 then Error (Printf.sprintf "test %s has no threads" t.name)
  else begin
    let problem = ref None in
    let note fmt = Printf.ksprintf (fun s -> if !problem = None then problem := Some s) fmt in
    let values = Hashtbl.create 8 in
    Array.iteri
      (fun tid instrs ->
        let written = Hashtbl.create 4 in
        let check i =
          (match Instr.uses_loc i with
          | Some l when l < 0 || l >= t.nlocs ->
              note "thread %d uses location %d >= nlocs %d" tid l t.nlocs
          | _ -> ());
          (match Instr.defines_reg i with
          | Some r ->
              if Hashtbl.mem written r then note "thread %d writes register r%d twice" tid r;
              Hashtbl.replace written r ()
          | None -> ());
          match i with
          | Instr.Store { loc; value; _ } | Instr.Rmw { loc; value; _ } ->
              if value = 0 then note "thread %d stores value 0 (reserved for the initial state)" tid;
              if Hashtbl.mem values (loc, value) then
                note "value %d stored twice to location %d" value loc;
              Hashtbl.replace values (loc, value) ()
          | Instr.Load _ | Instr.Fence _ -> ()
        in
        List.iter check instrs)
      t.threads;
    match !problem with None -> Ok () | Some s -> Error s
  end

type compiled = {
  events : Event.t array;
  reg_of_event : (int * int) option array;
}

let compile ?(layout = Scope.default_layout) t =
  let events = ref [] in
  let regs = ref [] in
  let id = ref 0 in
  Array.iteri
    (fun tid instrs ->
      let wg = Scope.workgroup layout ~tid in
      List.iteri
        (fun idx i ->
          let kind, reg =
            match i with
            | Instr.Load { reg; loc; _ } -> (Event.Read { loc }, Some (tid, reg))
            | Instr.Store { loc; value; _ } -> (Event.Write { loc; value }, None)
            | Instr.Rmw { reg; loc; value; _ } -> (Event.Rmw { loc; value }, Some (tid, reg))
            | Instr.Fence _ -> (Event.Fence, None)
          in
          events := { Event.id = !id; tid; idx; wg; scope = Instr.scope i; kind } :: !events;
          regs := reg :: !regs;
          incr id)
        instrs)
    t.threads;
  { events = Array.of_list (List.rev !events); reg_of_event = Array.of_list (List.rev !regs) }

let empty_outcome t = { regs = Array.map (fun n -> Array.make n 0) (nregs t); final = Array.make t.nlocs 0 }

let outcome_of_execution t (x : Execution.t) =
  let compiled = compile t in
  let out = empty_outcome t in
  Array.iteri
    (fun id binding ->
      match binding with
      | Some (tid, reg) ->
          if Event.is_read compiled.events.(id) then out.regs.(tid).(reg) <- Execution.value_read x id
      | None -> ())
    compiled.reg_of_event;
  List.iter
    (fun (l, order) ->
      match List.rev order with
      | [] -> ()
      | last :: _ -> (
          match Event.written_value x.Execution.events.(last) with
          | Some v -> out.final.(l) <- v
          | None -> ()))
    x.Execution.co;
  out

let loc_name l = match l with 0 -> "x" | 1 -> "y" | 2 -> "z" | n -> "l" ^ string_of_int n

let outcome_to_string o =
  let buf = Buffer.create 32 in
  Array.iteri
    (fun tid rs ->
      Array.iteri (fun r v -> Buffer.add_string buf (Printf.sprintf "t%d.r%d:%d " tid r v)) rs)
    o.regs;
  Buffer.add_string buf "|";
  Array.iteri (fun l v -> Buffer.add_string buf (Printf.sprintf " %s=%d" (loc_name l) v)) o.final;
  Buffer.contents buf

let pp fmt t =
  Format.fprintf fmt "@[<v>%s (family %s, model %s)@," t.name t.family
    (Mcm_memmodel.Model.name t.model);
  Array.iteri
    (fun tid instrs ->
      Format.fprintf fmt "thread %d:@," tid;
      List.iter (fun i -> Format.fprintf fmt "  %a@," (Instr.pp ~loc_names:loc_name) i) instrs)
    t.threads;
  Format.fprintf fmt "target: %s@]" t.target_desc

let to_string t = Format.asprintf "%a" pp t
