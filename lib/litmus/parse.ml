module Model = Mcm_memmodel.Model
module Scope = Mcm_memmodel.Scope

(* ------------------------------------------------------------------ *)
(* Target condition expressions                                         *)

type expr =
  | Const of bool
  | Atom_reg of string * int * int  (* thread name, register, value *)
  | Atom_final of string * int  (* location name, value *)
  | Not of expr
  | And of expr * expr
  | Or of expr * expr

exception Syntax of string

let fail fmt = Printf.ksprintf (fun s -> raise (Syntax s)) fmt

(* Expression lexer: identifiers (including P0:r1 atoms), numbers, and
   the operators ( ) ! && || ==. *)
let lex_expr s =
  let n = String.length s in
  let tokens = ref [] in
  let i = ref 0 in
  let is_word c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' || c = ':'
  in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if c = '(' || c = ')' || c = '!' then begin
      tokens := String.make 1 c :: !tokens;
      incr i
    end
    else if c = '&' || c = '|' || c = '=' then begin
      if !i + 1 < n && s.[!i + 1] = c then begin
        tokens := String.make 2 c :: !tokens;
        i := !i + 2
      end
      else fail "expected %c%c" c c
    end
    else if is_word c then begin
      let start = !i in
      while !i < n && is_word s.[!i] do
        incr i
      done;
      tokens := String.sub s start (!i - start) :: !tokens
    end
    else fail "unexpected character %c in condition" c
  done;
  List.rev !tokens

(* Recursive-descent parser: or <- and (|| and)*; and <- unary (&& unary)*;
   unary <- ! unary | ( or ) | atom == value | true | false. *)
let parse_expr tokens =
  let stream = ref tokens in
  let peek () = match !stream with [] -> None | t :: _ -> Some t in
  let advance () = match !stream with [] -> fail "unexpected end of condition" | _ :: r -> stream := r in
  let expect t =
    match peek () with
    | Some got when got = t -> advance ()
    | Some got -> fail "expected %s, got %s" t got
    | None -> fail "expected %s at end of condition" t
  in
  let atom_of word value =
    match String.index_opt word ':' with
    | Some colon ->
        let thread = String.sub word 0 colon in
        let reg_part = String.sub word (colon + 1) (String.length word - colon - 1) in
        if String.length reg_part < 2 || reg_part.[0] <> 'r' then
          fail "bad register %s (expected rN)" reg_part;
        let reg =
          match int_of_string_opt (String.sub reg_part 1 (String.length reg_part - 1)) with
          | Some r when r >= 0 -> r
          | _ -> fail "bad register %s" reg_part
        in
        Atom_reg (thread, reg, value)
    | None -> Atom_final (word, value)
  in
  let rec parse_or () =
    let left = parse_and () in
    if peek () = Some "||" then begin
      advance ();
      Or (left, parse_or ())
    end
    else left
  and parse_and () =
    let left = parse_unary () in
    if peek () = Some "&&" then begin
      advance ();
      And (left, parse_and ())
    end
    else left
  and parse_unary () =
    match peek () with
    | Some "!" ->
        advance ();
        Not (parse_unary ())
    | Some "(" ->
        advance ();
        let e = parse_or () in
        expect ")";
        e
    | Some "true" ->
        advance ();
        Const true
    | Some "false" ->
        advance ();
        Const false
    | Some word ->
        advance ();
        expect "==";
        let value =
          match peek () with
          | Some v -> (
              advance ();
              match int_of_string_opt v with Some i -> i | None -> fail "bad value %s" v)
          | None -> fail "missing value after =="
        in
        atom_of word value
    | None -> fail "empty condition"
  in
  let e = parse_or () in
  (match !stream with [] -> () | t :: _ -> fail "trailing %s in condition" t);
  e

let rec eval_expr ~thread_index ~loc_index (o : Litmus.outcome) = function
  | Const b -> b
  | Not e -> not (eval_expr ~thread_index ~loc_index o e)
  | And (a, b) -> eval_expr ~thread_index ~loc_index o a && eval_expr ~thread_index ~loc_index o b
  | Or (a, b) -> eval_expr ~thread_index ~loc_index o a || eval_expr ~thread_index ~loc_index o b
  | Atom_reg (thread, reg, value) ->
      let tid = thread_index thread in
      tid < Array.length o.Litmus.regs
      && reg < Array.length o.Litmus.regs.(tid)
      && o.Litmus.regs.(tid).(reg) = value
  | Atom_final (loc, value) ->
      let l = loc_index loc in
      l < Array.length o.Litmus.final && o.Litmus.final.(l) = value

(* ------------------------------------------------------------------ *)
(* Test parsing                                                         *)

type builder = {
  mutable name : string option;
  mutable model : Model.t;
  mutable locations : string list;  (* reversed *)
  mutable threads : (string * Instr.t list) list;  (* reversed; instrs reversed *)
  mutable target : string option;
}

let strip_comment line =
  match String.index_opt line '#' with Some i -> String.sub line 0 i | None -> line

let words line =
  String.split_on_char ' ' (String.map (fun c -> if c = '\t' then ' ' else c) line)
  |> List.filter (fun w -> w <> "")

let loc_id b name =
  let rec find i = function
    | [] -> None
    | l :: rest -> if l = name then Some i else find (i + 1) rest
  in
  let ordered = List.rev b.locations in
  match find 0 ordered with
  | Some i -> i
  | None ->
      b.locations <- name :: b.locations;
      List.length ordered

let parse_reg word =
  if String.length word >= 2 && word.[0] = 'r' then
    match int_of_string_opt (String.sub word 1 (String.length word - 1)) with
    | Some r when r >= 0 -> r
    | _ -> fail "bad register %s" word
  else fail "bad register %s (expected rN)" word

let parse_value word =
  match int_of_string_opt word with Some v -> v | None -> fail "bad value %s" word

(* A trailing [wg]/[dev] token scopes the instruction; absent means
   device scope, and the printer below emits the marker only for
   workgroup scope, so pre-scope sources round-trip byte-identically. *)
let split_scope tokens =
  match List.rev tokens with
  | last :: rest_rev when Scope.of_string last <> None ->
      (List.rev rest_rev, Option.get (Scope.of_string last))
  | _ -> (tokens, Scope.Device)

let parse_instruction b tokens =
  let tokens, scope = split_scope tokens in
  match tokens with
  | [ "store"; loc; value ] -> Instr.Store { loc = loc_id b loc; value = parse_value value; scope }
  | [ "fence" ] -> Instr.Fence { scope }
  | [ reg; "="; "load"; loc ] -> Instr.Load { reg = parse_reg reg; loc = loc_id b loc; scope }
  | [ reg; "="; "exchange"; loc; value ] ->
      Instr.Rmw { reg = parse_reg reg; loc = loc_id b loc; value = parse_value value; scope }
  | _ -> fail "unrecognised instruction: %s" (String.concat " " tokens)

let parse source =
  let b = { name = None; model = Model.Sc_per_location; locations = []; threads = []; target = None } in
  let lines = String.split_on_char '\n' source in
  try
    List.iteri
      (fun lineno line ->
        try
          let line = strip_comment line in
          match words line with
          | [] -> ()
          | "test" :: rest ->
              if b.name <> None then fail "duplicate test line";
              if rest = [] then fail "test needs a name";
              b.name <- Some (String.concat " " rest)
          | [ "model"; m ] -> (
              match Model.of_string m with
              | Some model -> b.model <- model
              | None -> fail "unknown model %s" m)
          | "locations" :: locs -> List.iter (fun l -> ignore (loc_id b l)) locs
          | "thread" :: rest ->
              let name =
                match rest with
                | [] -> Printf.sprintf "P%d" (List.length b.threads)
                | [ n ] -> n
                | _ -> fail "thread takes at most one name"
              in
              if List.mem_assoc name b.threads then fail "duplicate thread %s" name;
              b.threads <- (name, []) :: b.threads
          | "target" :: rest | "exists" :: rest ->
              if b.target <> None then fail "duplicate target line";
              b.target <- Some (String.concat " " rest)
          | tokens -> (
              match b.threads with
              | [] -> fail "instruction before any thread"
              | (name, instrs) :: older ->
                  b.threads <- (name, parse_instruction b tokens :: instrs) :: older)
        with Syntax msg -> fail "line %d: %s" (lineno + 1) msg)
      lines;
    let name = match b.name with Some n -> n | None -> fail "missing test line" in
    let target_src = match b.target with Some t -> t | None -> fail "missing target line" in
    let threads = List.rev_map (fun (n, instrs) -> (n, List.rev instrs)) b.threads in
    if threads = [] then fail "no threads";
    let thread_names = List.map fst threads in
    let expr = parse_expr (lex_expr target_src) in
    let locations = List.rev b.locations in
    let thread_index t =
      let rec find i = function
        | [] -> fail "unknown thread %s in condition" t
        | n :: rest -> if n = t then i else find (i + 1) rest
      in
      find 0 thread_names
    in
    let loc_index l =
      let rec find i = function
        | [] -> fail "unknown location %s in condition" l
        | n :: rest -> if n = l then i else find (i + 1) rest
      in
      find 0 locations
    in
    (* Force resolution errors now, not at evaluation time. *)
    let rec resolve = function
      | Const _ -> ()
      | Not e -> resolve e
      | And (a, c) | Or (a, c) ->
          resolve a;
          resolve c
      | Atom_reg (t, _, _) -> ignore (thread_index t)
      | Atom_final (l, _) -> ignore (loc_index l)
    in
    resolve expr;
    let test =
      {
        Litmus.name;
        family = "parsed";
        model = b.model;
        threads = Array.of_list (List.map snd threads);
        nlocs = List.length locations;
        target = (fun o -> eval_expr ~thread_index ~loc_index o expr);
        target_desc = target_src;
      }
    in
    match Litmus.well_formed test with Ok () -> Ok test | Error e -> Error e
  with Syntax msg -> Error msg

let parse_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    parse s
  with Sys_error e -> Error e

(* ------------------------------------------------------------------ *)
(* Printing                                                             *)

let model_keyword = function
  | Model.Sc -> "sc"
  | Model.Sc_per_location -> "sc-per-loc"
  | Model.Relacq_sc_per_location -> "relacq"

let instruction_source ~loc_names i =
  let body =
    match i with
    | Instr.Store { loc; value; _ } -> Printf.sprintf "store %s %d" (loc_names loc) value
    | Instr.Load { reg; loc; _ } -> Printf.sprintf "r%d = load %s" reg (loc_names loc)
    | Instr.Rmw { reg; loc; value; _ } ->
        Printf.sprintf "r%d = exchange %s %d" reg (loc_names loc) value
    | Instr.Fence _ -> "fence"
  in
  match Instr.scope i with
  | Scope.Device -> body
  | Scope.Workgroup -> body ^ " " ^ Scope.name Scope.Workgroup

let to_source test =
  (match Litmus.well_formed test with
  | Ok () -> ()
  | Error e -> invalid_arg ("Parse.to_source: " ^ e));
  let buf = Buffer.create 512 in
  let loc_names = Litmus.loc_name in
  Buffer.add_string buf (Printf.sprintf "test %s\n" test.Litmus.name);
  Buffer.add_string buf (Printf.sprintf "model %s\n" (model_keyword test.Litmus.model));
  Buffer.add_string buf
    (Printf.sprintf "locations %s\n"
       (String.concat " " (List.init test.Litmus.nlocs loc_names)));
  Array.iteri
    (fun tid instrs ->
      Buffer.add_string buf (Printf.sprintf "thread P%d\n" tid);
      List.iter
        (fun i -> Buffer.add_string buf ("  " ^ instruction_source ~loc_names i ^ "\n"))
        instrs)
    test.Litmus.threads;
  (* Reconstruct the target as the disjunction of satisfying outcomes. *)
  let outcomes =
    List.sort_uniq compare
      (List.map (Litmus.outcome_of_execution test) (Enumerate.candidates test))
  in
  let satisfying = List.filter test.Litmus.target outcomes in
  let conjunction (o : Litmus.outcome) =
    let parts = ref [] in
    Array.iteri
      (fun l v -> parts := Printf.sprintf "%s == %d" (loc_names l) v :: !parts)
      o.Litmus.final;
    Array.iteri
      (fun tid regs ->
        Array.iteri (fun r v -> parts := Printf.sprintf "P%d:r%d == %d" tid r v :: !parts) regs)
      o.Litmus.regs;
    "(" ^ String.concat " && " (List.rev !parts) ^ ")"
  in
  let target =
    match satisfying with
    | [] -> "false"
    | outcomes -> String.concat " || " (List.map conjunction outcomes)
  in
  Buffer.add_string buf (Printf.sprintf "target %s\n" target);
  Buffer.contents buf
