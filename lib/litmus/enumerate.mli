(** Exhaustive candidate-execution enumeration for litmus tests.

    Litmus tests are tiny, so every candidate execution — every choice of
    reads-from for each read and coherence order per location (Sec. 2.2) —
    can be enumerated and checked against an MCS. [?layout] (default
    {!Mcm_memmodel.Scope.Inter}) fixes the workgroup layout events are
    compiled under, which scopes release/acquire synchronisation: under
    [Inter] a workgroup-scoped fence orders nothing across threads. This
    powers the
    machine-checked core invariant of the reproduction: for every generated
    conformance test the target behaviour is {e disallowed} under its MCS,
    and for every mutant it is {e allowed}. *)

val candidates : ?layout:Mcm_memmodel.Scope.layout -> Litmus.t -> Mcm_memmodel.Execution.t list
(** [candidates t] enumerates all well-formed candidate executions of
    [t]: each read/RMW reads from the initial state or any same-location
    write other than itself, and each location's writes take every possible
    coherence order. Consistency is {e not} filtered here. *)

val consistent_outcomes :
  ?layout:Mcm_memmodel.Scope.layout -> Mcm_memmodel.Model.t -> Litmus.t -> Litmus.outcome list
(** [consistent_outcomes m t] is the deduplicated list of register
    outcomes over candidates consistent under [m] — the set of behaviours
    [m] allows [t] to produce. *)

val target_allowed : ?layout:Mcm_memmodel.Scope.layout -> Mcm_memmodel.Model.t -> Litmus.t -> bool
(** [target_allowed m t] holds when some consistent candidate under [m]
    exhibits [t]'s target behaviour. A conformance test must satisfy
    [not (target_allowed t.model t)]; a mutant must satisfy
    [target_allowed t.model t]. *)

val target_allowed_cat : Mcm_memmodel.Cat.t -> Litmus.t -> bool
(** Like {!target_allowed} for a parameterized CAT model — used to
    decide whether a behaviour is {e observable} on an implementation
    whose architecture model is known (Sec. 3.4's pruning, e.g. against
    x86-TSO). *)

val consistent_outcomes_cat : Mcm_memmodel.Cat.t -> Litmus.t -> Litmus.outcome list
(** The outcomes a CAT model allows [t] to produce. *)

val witness :
  ?layout:Mcm_memmodel.Scope.layout ->
  Mcm_memmodel.Model.t ->
  Litmus.t ->
  Mcm_memmodel.Execution.t option
(** [witness m t] is a consistent candidate exhibiting the target, when
    one exists — evidence that the behaviour is allowed. *)

val forbidden_cycle : ?layout:Mcm_memmodel.Scope.layout -> Litmus.t -> string option
(** [forbidden_cycle t] explains why the target is disallowed: it picks a
    candidate exhibiting the target behaviour and reports its
    happens-before cycle under [t.model] (e.g. ["b -> c -> a -> b"]).
    Returns [None] when no candidate exhibits the target at all, or when
    the target is actually allowed. *)

val count_candidates : ?layout:Mcm_memmodel.Scope.layout -> Litmus.t -> int * int
(** [count_candidates t] is [(total, consistent)] under [t.model] — handy
    for reports and sanity checks. *)
