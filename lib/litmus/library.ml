module Model = Mcm_memmodel.Model

let x = 0
let y = 1

(* All library tests are device-scoped (the smart-constructor default):
   their certified statuses predate scopes and must not move. *)
let ld reg loc = Instr.load ~reg ~loc ()
let st loc value = Instr.store ~loc ~value ()
let um reg loc value = Instr.rmw ~reg ~loc ~value ()
let fen = Instr.fence ()

let mk name family model threads nlocs target target_desc =
  { Litmus.name; family; model; threads = Array.of_list threads; nlocs; target; target_desc }

let corr =
  mk "CoRR" "classic" Model.Sc_per_location
    [ [ ld 0 x; ld 1 x ]; [ st x 1 ] ]
    1
    (fun o -> o.Litmus.regs.(0).(0) = 1 && o.Litmus.regs.(0).(1) = 0)
    "t0.r0 = 1 && t0.r1 = 0"

let cowr =
  mk "CoWR" "classic" Model.Sc_per_location
    [ [ st x 1; ld 0 x ]; [ st x 2 ] ]
    1
    (fun o -> o.Litmus.regs.(0).(0) = 2 && o.Litmus.final.(x) = 1)
    "t0.r0 = 2 && x = 1"

let corw =
  mk "CoRW" "classic" Model.Sc_per_location
    [ [ ld 0 x; st x 1 ]; [ st x 2 ] ]
    1
    (fun o -> o.Litmus.regs.(0).(0) = 2 && o.Litmus.final.(x) = 2)
    "t0.r0 = 2 && x = 2"

let coww =
  mk "CoWW" "classic" Model.Sc_per_location
    [
      [ st x 1; st x 2 ];
      [ st x 3 ];
      [ ld 0 x; ld 1 x ];
    ]
    1
    (fun o -> o.Litmus.regs.(2).(0) = 2 && o.Litmus.regs.(2).(1) = 3 && o.Litmus.final.(x) = 1)
    "observer sees 2 then 3 && x = 1"

let mp_threads ~fences =
  let fence l = if fences then [ fen ] @ l else l in
  [
    st x 1 :: fence [ st y 1 ];
    ld 0 y :: fence [ ld 1 x ];
  ]

let mp_target o = o.Litmus.regs.(1).(0) = 1 && o.Litmus.regs.(1).(1) = 0
let mp_desc = "t1.r0 = 1 && t1.r1 = 0"

let mp = mk "MP" "classic" Model.Sc_per_location (mp_threads ~fences:false) 2 mp_target mp_desc

let mp_relacq =
  mk "MP-relacq" "classic" Model.Relacq_sc_per_location (mp_threads ~fences:true) 2 mp_target mp_desc

let mp_co =
  mk "MP-CO" "classic" Model.Sc_per_location
    [
      [ st x 1; st x 2 ];
      [ ld 0 x; ld 1 x ];
    ]
    1
    (fun o -> o.Litmus.regs.(1).(0) = 2 && o.Litmus.regs.(1).(1) = 1)
    "t1.r0 = 2 && t1.r1 = 1"

let lb_threads ~fences =
  let fence l = if fences then [ fen ] @ l else l in
  [
    ld 0 x :: fence [ st y 1 ];
    ld 0 y :: fence [ st x 1 ];
  ]

let lb_target o = o.Litmus.regs.(0).(0) = 1 && o.Litmus.regs.(1).(0) = 1
let lb_desc = "t0.r0 = 1 && t1.r0 = 1"

let lb = mk "LB" "classic" Model.Sc_per_location (lb_threads ~fences:false) 2 lb_target lb_desc

let lb_relacq =
  mk "LB-relacq" "classic" Model.Relacq_sc_per_location (lb_threads ~fences:true) 2 lb_target lb_desc

let sb =
  mk "SB" "classic" Model.Sc_per_location
    [
      [ st x 1; ld 0 y ];
      [ st y 1; ld 0 x ];
    ]
    2
    (fun o -> o.Litmus.regs.(0).(0) = 0 && o.Litmus.regs.(1).(0) = 0)
    "t0.r0 = 0 && t1.r0 = 0"

let sb_relacq_rmw =
  mk "SB-relacq-rmw" "classic" Model.Relacq_sc_per_location
    [
      [ st x 1; fen; um 0 y 1 ];
      [ um 0 y 2; fen; ld 1 x ];
    ]
    2
    (fun o ->
      o.Litmus.regs.(0).(0) = 0 && o.Litmus.regs.(1).(0) = 1 && o.Litmus.regs.(1).(1) = 0)
    "t0.r0 = 0 && t1.r0 = 1 && t1.r1 = 0"

let s_threads ~fences =
  let fence l = if fences then [ fen ] @ l else l in
  [
    st x 2 :: fence [ st y 1 ];
    [ ld 0 y; st x 1 ];
  ]

let s_target o = o.Litmus.regs.(1).(0) = 1 && o.Litmus.final.(x) = 2
let s_desc = "t1.r0 = 1 && x = 2"

let s = mk "S" "classic" Model.Sc_per_location (s_threads ~fences:false) 2 s_target s_desc

let s_relacq =
  (* Thread 1 needs its own fence between the read and the write for the
     release/acquire chain of Fig. 3c. *)
  mk "S-relacq" "classic" Model.Relacq_sc_per_location
    [
      [ st x 2; fen; st y 1 ];
      [ ld 0 y; fen; st x 1 ];
    ]
    2 s_target s_desc

let r =
  mk "R" "classic" Model.Sc_per_location
    [
      [ st x 1; st y 1 ];
      [ st y 2; ld 0 x ];
    ]
    2
    (fun o -> o.Litmus.regs.(1).(0) = 0 && o.Litmus.final.(y) = 2)
    "t1.r0 = 0 && y = 2"

let r_relacq_rmw =
  mk "R-relacq-rmw" "classic" Model.Relacq_sc_per_location
    [
      [ st x 1; fen; st y 1 ];
      [ um 0 y 2; fen; ld 1 x ];
    ]
    2
    (fun o -> o.Litmus.regs.(1).(0) = 1 && o.Litmus.regs.(1).(1) = 0)
    "t1.r0 = 1 && t1.r1 = 0"

let two_plus_two_w =
  mk "2+2W" "classic" Model.Sc_per_location
    [
      [ st x 1; st y 1 ];
      [ st y 2; st x 2 ];
    ]
    2
    (fun o -> o.Litmus.final.(x) = 1 && o.Litmus.final.(y) = 2)
    "x = 1 && y = 2"

let two_plus_two_w_relacq_rmw =
  mk "2+2W-relacq-rmw" "classic" Model.Relacq_sc_per_location
    [
      [ st x 1; fen; st y 1 ];
      [ um 0 y 2; fen; st x 2 ];
    ]
    2
    (fun o -> o.Litmus.regs.(1).(0) = 1 && o.Litmus.final.(x) = 1)
    "t1.r0 = 1 && x = 1"

let z = 2

let iriw =
  mk "IRIW" "classic" Model.Sc_per_location
    [
      [ st x 1 ];
      [ st y 1 ];
      [ ld 0 x; ld 1 y ];
      [ ld 0 y; ld 1 x ];
    ]
    2
    (fun o ->
      o.Litmus.regs.(2).(0) = 1 && o.Litmus.regs.(2).(1) = 0 && o.Litmus.regs.(3).(0) = 1
      && o.Litmus.regs.(3).(1) = 0)
    "t2 sees x first, t3 sees y first"

let wrc =
  mk "WRC" "classic" Model.Sc_per_location
    [
      [ st x 1 ];
      [ ld 0 x; st y 1 ];
      [ ld 0 y; ld 1 x ];
    ]
    2
    (fun o ->
      o.Litmus.regs.(1).(0) = 1 && o.Litmus.regs.(2).(0) = 1 && o.Litmus.regs.(2).(1) = 0)
    "t1.r0 = 1 && t2.r0 = 1 && t2.r1 = 0"

let isa2 =
  mk "ISA2" "classic" Model.Sc_per_location
    [
      [ st x 1; st y 1 ];
      [ ld 0 y; st z 1 ];
      [ ld 0 z; ld 1 x ];
    ]
    3
    (fun o ->
      o.Litmus.regs.(1).(0) = 1 && o.Litmus.regs.(2).(0) = 1 && o.Litmus.regs.(2).(1) = 0)
    "t1.r0 = 1 && t2.r0 = 1 && t2.r1 = 0"

let rwc =
  mk "RWC" "classic" Model.Sc_per_location
    [
      [ st x 1 ];
      [ ld 0 x; ld 1 y ];
      [ st y 1; ld 0 x ];
    ]
    2
    (fun o ->
      o.Litmus.regs.(1).(0) = 1 && o.Litmus.regs.(1).(1) = 0 && o.Litmus.regs.(2).(0) = 0)
    "t1.r0 = 1 && t1.r1 = 0 && t2.r0 = 0"

(* Scalable four-thread store-buffering ladder for benchmarking the
   oracle engines. Deliberately *not* in [all]: its purpose is a
   candidate space that grows as ((stores + loads)! / loads!)^4 × ...,
   not certification coverage, and adding rungs would silently grow the
   golden certification counts. Values are fixed per thread slot
   ([tid * stores + k + 1]) so the builder is free of evaluation-order
   effects and every value is distinct and nonzero. *)
let ladder ~stores ~loads =
  if stores < 1 || loads < 1 then invalid_arg "Library.ladder: stores and loads must be >= 1";
  let thread tid writes_loc reads_loc =
    List.init stores (fun k -> st writes_loc ((tid * stores) + k + 1))
    @ List.init loads (fun i -> ld i reads_loc)
  in
  let t0_first = 1 and t2_first = (2 * stores) + 1 in
  mk
    (Printf.sprintf "ladder-s%d-l%d" stores loads)
    "ladder" Model.Sc_per_location
    [ thread 0 x y; thread 1 x y; thread 2 y x; thread 3 y x ]
    2
    (fun o -> o.Litmus.regs.(0).(0) = t2_first && o.Litmus.regs.(2).(0) = t0_first)
    "t0.r0 = first y-store of t2 && t2.r0 = first x-store of t0"

let all =
  [
    corr; cowr; corw; coww; mp; mp_relacq; mp_co; lb; lb_relacq; sb; sb_relacq_rmw; s; s_relacq;
    r; r_relacq_rmw; two_plus_two_w; two_plus_two_w_relacq_rmw; iriw; wrc; isa2; rwc;
  ]

let find name =
  let lower = String.lowercase_ascii name in
  List.find_opt (fun t -> String.lowercase_ascii t.Litmus.name = lower) all

(* The doc-comment claims of library.mli, machine-readable: these tests'
   targets are disallowed under their own model; every other library
   test's target is allowed. The oracle certifier re-derives each status
   by enumeration and diffs it against this list. *)
let disallowed_targets =
  [
    corr; cowr; corw; coww; mp_relacq; mp_co; lb_relacq; sb_relacq_rmw; s_relacq; r_relacq_rmw;
    two_plus_two_w_relacq_rmw;
  ]

let expectation t =
  if not (List.exists (fun u -> u.Litmus.name = t.Litmus.name) all) then None
  else if List.exists (fun u -> u.Litmus.name = t.Litmus.name) disallowed_targets then
    Some `Disallowed
  else Some `Allowed
