(** The litmus-test instruction set — a WGSL-like atomic IR.

    This is the subset of WGSL the paper tests: atomic loads, atomic
    stores, atomic read-modify-writes, and the release/acquire fence
    (WGSL's [storageBarrier] in its earlier, fence-semantics reading).
    Every instruction carries a memory {!Scope.t}: device scope (the
    default, and exactly the pre-scope semantics) or workgroup scope,
    which only synchronizes within the issuing thread's workgroup.
    Locations and registers are small test-local integers; the testing
    environment maps virtual locations to physical memory at run time
    (Sec. 4.1). *)

module Scope = Mcm_memmodel.Scope

type t =
  | Load of { reg : int; loc : int; scope : Scope.t }
      (** [reg := atomicLoad(&mem\[loc\])] *)
  | Store of { loc : int; value : int; scope : Scope.t }
      (** [atomicStore(&mem\[loc\], value)] *)
  | Rmw of { reg : int; loc : int; value : int; scope : Scope.t }
      (** [reg := atomicExchange(&mem\[loc\], value)] — reads the old value
          and writes [value] indivisibly *)
  | Fence of { scope : Scope.t }
      (** release/acquire fence; device scope orders across workgroups,
          workgroup scope only within one *)

val load : ?scope:Scope.t -> reg:int -> loc:int -> unit -> t
val store : ?scope:Scope.t -> loc:int -> value:int -> unit -> t
val rmw : ?scope:Scope.t -> reg:int -> loc:int -> value:int -> unit -> t
val fence : ?scope:Scope.t -> unit -> t
(** Smart constructors; [scope] defaults to {!Scope.Device}, which is
    the pre-scope behavior of every instruction. *)

val uses_loc : t -> int option
(** [uses_loc i] is the virtual location the instruction touches, [None]
    for fences. *)

val defines_reg : t -> int option
(** [defines_reg i] is the register the instruction writes, if any. *)

val is_memory_access : t -> bool
(** [is_memory_access i] holds for loads, stores and RMWs. *)

val is_fence : t -> bool

val scope : t -> Scope.t
val with_scope : Scope.t -> t -> t

val pp : loc_names:(int -> string) -> Format.formatter -> t -> unit
(** Pretty-prints in the paper's style, e.g. ["r0 = atomicLoad(x)"].
    Device scope prints exactly as the pre-scope IR did; workgroup scope
    adds a [.wg] suffix ([workgroupBarrier()] for fences). *)

val to_string : loc_names:(int -> string) -> t -> string
