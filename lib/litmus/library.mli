(** Hand-written classic litmus tests.

    These are the named tests the paper discusses directly — CoRR and
    MP-relacq from Fig. 1, MP-CO from Sec. 5.4, and the standard
    two-thread four-event weak-memory shapes (MP, LB, SB, S, R, 2+2W) from
    Alglave et al. that the mutators reconstruct. They serve as
    documentation, as example inputs, and as ground truth the generated
    suite (in [Mcm_core]) is cross-checked against.

    Conventions: location 0 is [x], location 1 is [y]; stored values are
    distinct and increase per location; each test's [target] is the weak /
    disallowed behaviour in the paper's figures. Whether the target is
    actually allowed under the test's [model] is checked by enumeration in
    the test suite — e.g. {!corr}'s target is disallowed while {!mp}'s is
    allowed. *)

val corr : Litmus.t
(** Coherence of Read-Read (Fig. 1a): thread 0 reads [x] twice, thread 1
    stores [x=1]; target — first read sees the new value, second the old.
    Disallowed under SC-per-location. *)

val cowr : Litmus.t
(** Coherence write-read: thread 0 stores [x=1] then reads [x]; thread 1
    stores [x=2]; target — the read sees 2 while 1 is coherence-last. *)

val corw : Litmus.t
(** Coherence read-write: thread 0 reads [x] then stores [x=1]; thread 1
    stores [x=2]; target — the read sees 2 and 2 is coherence-last. *)

val coww : Litmus.t
(** Coherence write-write with an observer thread witnessing the
    coherence chain; target — observer sees 2 then 3 while 1 is final. *)

val mp : Litmus.t
(** Message passing, no fences; target — flag read 1, data read 0.
    Allowed under SC-per-location (a weak behaviour). *)

val mp_relacq : Litmus.t
(** Message passing with release/acquire fences (Fig. 1b); same target,
    disallowed under rel-acq-SC-per-location. *)

val mp_co : Litmus.t
(** Message passing through one location (Sec. 5.4): thread 0 stores 1
    then 2; thread 1 reads twice; target — reads see 2 then 1.
    Disallowed under SC-per-location; the NVIDIA Kepler coherence bug. *)

val lb : Litmus.t
(** Load buffering; target — both loads observe the other thread's
    po-later store. Allowed under SC-per-location. *)

val lb_relacq : Litmus.t
(** Load buffering with fences; disallowed under rel-acq. *)

val sb : Litmus.t
(** Store buffering; target — both loads see 0. Allowed. *)

val sb_relacq_rmw : Litmus.t
(** Store buffering where the [y] accesses are RMWs so the fences
    synchronise (Sec. 3.3); disallowed under rel-acq. *)

val s : Litmus.t
(** The S shape; target — message received but thread 1's store loses the
    coherence race. Allowed under SC-per-location. *)

val s_relacq : Litmus.t
(** S with fences; disallowed under rel-acq. *)

val r : Litmus.t
(** The R shape; target — thread 1's store wins coherence yet its load
    sees 0. Allowed under SC-per-location. *)

val r_relacq_rmw : Litmus.t
(** R with the [y] write of thread 1 as an RMW so the fences synchronise;
    disallowed under rel-acq. *)

val two_plus_two_w : Litmus.t
(** 2+2W; target — each location's first store is coherence-last.
    Allowed under SC-per-location. *)

val two_plus_two_w_relacq_rmw : Litmus.t
(** 2+2W with thread 1's [y] write as an RMW; disallowed under rel-acq. *)

(** {2 Multi-thread shapes}

    Beyond the two-thread templates the mutators use, these classic
    three- and four-thread tests exercise the enumerator and simulator
    on wider programs. All of their targets are allowed under
    SC-per-location (they need multi-copy atomicity or cumulativity to
    forbid, which that model does not provide) and disallowed under
    SC. *)

val iriw : Litmus.t
(** Independent Reads of Independent Writes: two writers to different
    locations, two readers observing them in opposite orders. *)

val wrc : Litmus.t
(** Write-to-Read Causality: a write seen by a middleman thread whose
    subsequent flag write is seen by a reader that misses the original
    write. *)

val isa2 : Litmus.t
(** The ISA2 shape: a three-thread message-passing chain through two
    flags, with the final read missing the original data. *)

val rwc : Litmus.t
(** Read-to-Write Causality: a reader observes thread 0's write but not
    thread 2's, while thread 2, after writing, fails to observe
    thread 0's write. *)

val ladder : stores:int -> loads:int -> Litmus.t
(** [ladder ~stores ~loads] is a scalable four-thread store-buffering
    shape for benchmarking the oracle engines: threads 0–1 each store
    [x] [stores] times then load [y] [loads] times; threads 2–3 do the
    opposite. The target — thread 0's first [y] read sees thread 2's
    {e first} store while thread 2's first [x] read sees thread 0's
    {e first} store — is allowed under SC-per-location and (for
    [stores >= 2]) unreachable serially, since a serial thread's
    non-final store is shadowed before any other thread runs. The
    candidate space grows multiplicatively with both knobs, which is the
    point: it separates the engines asymptotically. Not part of {!all}
    ({!expectation} is [None]); raises [Invalid_argument] unless both
    knobs are [>= 1]. *)

val all : Litmus.t list
(** Every test above (excluding {!ladder} rungs). Names are unique. *)

val find : string -> Litmus.t option
(** [find name] looks a test up by (case-insensitive) name. *)

val expectation : Litmus.t -> [ `Allowed | `Disallowed ] option
(** [expectation t] is the documented ground truth for a library test:
    whether its target behaviour is allowed under its own [model], per
    the doc comments above. [None] when [t] is not one of {!all}. The
    axiomatic oracle certifies the library by re-deriving each status
    through exhaustive enumeration and checking it against this. *)
