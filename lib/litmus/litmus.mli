(** Litmus tests: small concurrent programs with a target behaviour.

    A test is a per-thread instruction list, a number of virtual memory
    locations (all zero-initialised), and a {e target behaviour} — a
    predicate over what the run made observable: the registers captured by
    loads and the final value of each location. For a conformance test the
    target is the behaviour {e disallowed} by the test's MCS; for a mutant
    it is the closely-related behaviour that is {e allowed} (Sec. 3).
    Running a test means executing it repeatedly and counting how often
    the target is observed. *)

(** What one run of a litmus test makes observable. *)
type outcome = {
  regs : int array array;
      (** [regs.(tid).(reg)] is the final value of register [reg] of
          thread [tid]; registers never written hold [0] *)
  final : int array;
      (** [final.(loc)] is the last value of each virtual location — the
          value of the coherence-last write, or [0] if never written *)
}

type t = {
  name : string;  (** unique test name, e.g. ["CoRR"] or ["MP-relacq-m2"] *)
  family : string;  (** grouping tag, e.g. a mutator name or ["classic"] *)
  model : Mcm_memmodel.Model.t;
      (** the MCS against which the target behaviour is judged *)
  threads : Instr.t list array;  (** per-thread programs; may include an
      observer thread whose loads witness coherence order *)
  nlocs : int;  (** number of virtual locations, numbered from [0] *)
  target : outcome -> bool;  (** the behaviour of interest *)
  target_desc : string;  (** human-readable rendering of [target] *)
}

val nthreads : t -> int

val nregs : t -> int array
(** [nregs t] is, per thread, one more than the highest register index
    written (or [0] if the thread writes no register). *)

val well_formed : t -> (unit, string) result
(** Checks the invariants the rest of the system relies on: at least one
    thread; every location index below [nlocs]; within a thread each
    register is written at most once (so outcomes are well defined); and
    all written values to one location are distinct and non-zero (the
    paper's "unique increasing value" concretisation, which makes
    reads-from inferable from observed values). *)

(** A litmus program lowered to memory-model events. *)
type compiled = {
  events : Mcm_memmodel.Event.t array;
      (** events in (thread, index) order; ids are positional *)
  reg_of_event : (int * int) option array;
      (** [reg_of_event.(id) = Some (tid, reg)] when event [id] is a
          value-capturing load or RMW bound to [reg] *)
}

val compile : ?layout:Mcm_memmodel.Scope.layout -> t -> compiled
(** [compile ?layout t] lowers every instruction to its event, stamping
    each with its scope and with the issuing thread's workgroup under
    [layout] (default {!Scope.Inter}: one workgroup per thread, the
    pre-scope behavior). *)

val outcome_of_execution : t -> Mcm_memmodel.Execution.t -> outcome
(** [outcome_of_execution t x] reads back registers and final memory from
    a candidate execution of [t] (which must have been built from
    [compile t]'s events); final memory is the value of the last write in
    each location's coherence order. *)

val empty_outcome : t -> outcome
(** [empty_outcome t] is an all-zero outcome with the right shape. *)

val outcome_to_string : outcome -> string
(** Compact rendering like ["r0:1 r1:0 | x=1 y=0"] used in reports. *)

val loc_name : int -> string
(** Locations print as [x], [y], [z], then [l3], [l4], ... *)

val pp : Format.formatter -> t -> unit
(** Prints the whole test in the style of Fig. 1: one block per thread and
    the target condition at the bottom. *)

val to_string : t -> string
