type t = Sc | Sc_per_location | Relacq_sc_per_location

let all = [ Sc; Relacq_sc_per_location; Sc_per_location ]

let name = function
  | Sc -> "SC"
  | Sc_per_location -> "SC-per-loc"
  | Relacq_sc_per_location -> "rel-acq-SC-per-loc"

let of_string s =
  match String.lowercase_ascii s with
  | "sc" -> Some Sc
  | "sc-per-loc" | "sc-per-location" | "coherence" -> Some Sc_per_location
  | "rel-acq-sc-per-loc" | "relacq" | "rel-acq" -> Some Relacq_sc_per_location
  | _ -> None

(* Every model's hb is [base ∪ com], optionally extended with the
   release/acquire ordering [po ; sw ; po]. This decomposition is shared
   with the oracle's propagation engine, which rebuilds the same edge
   set incrementally: the base is fixed per test, and com/po_sw_po grow
   monotonically as rf and co choices are made. *)
let hb_base = function Sc -> `Po | Sc_per_location | Relacq_sc_per_location -> `Po_loc
let hb_includes_sw = function Relacq_sc_per_location -> true | Sc | Sc_per_location -> false

let hb m x =
  let r = Execution.relations x in
  let base =
    match hb_base m with `Po -> r.Execution.po | `Po_loc -> r.Execution.po_loc
  in
  let base =
    if hb_includes_sw m then Relation.union base r.Execution.po_sw_po else base
  in
  Relation.union base r.Execution.com

let rmw_atomic (x : Execution.t) =
  let ok = ref true in
  Array.iteri
    (fun i e ->
      if Event.is_rmw e then
        match Event.loc e with
        | None -> ()
        | Some l ->
            let order = try List.assoc l x.Execution.co with Not_found -> [] in
            let position =
              let rec find k = function
                | [] -> None
                | w :: rest -> if w = i then Some k else find (k + 1) rest
              in
              find 0 order
            in
            let expected =
              match x.Execution.rf.(i) with
              | None -> Some 0
              | Some src ->
                  let rec find k = function
                    | [] -> None
                    | w :: rest -> if w = src then Some (k + 1) else find (k + 1) rest
                  in
                  find 0 order
            in
            if position = None || expected = None || position <> expected then ok := false)
    x.Execution.events;
  !ok

let atomicity_violation (x : Execution.t) =
  let violation = ref None in
  Array.iteri
    (fun i e ->
      if !violation = None && Event.is_rmw e then
        match Event.loc e with
        | None -> ()
        | Some l ->
            let order = try List.assoc l x.Execution.co with Not_found -> [] in
            let index_of w =
              let rec find k = function
                | [] -> None
                | w' :: rest -> if w' = w then Some k else find (k + 1) rest
              in
              find 0 order
            in
            let position = index_of i in
            let expected =
              match x.Execution.rf.(i) with
              | None -> Some 0
              | Some src -> Option.map (fun k -> k + 1) (index_of src)
            in
            if position = None || expected = None || position <> expected then begin
              let name = Execution.event_name x in
              let src =
                match x.Execution.rf.(i) with
                | None -> "the initial state"
                | Some s -> name s
              in
              let co_str = String.concat " -> " ("init" :: List.map name order) in
              violation :=
                Some
                  (Printf.sprintf
                     "RMW %s reads from %s but is not placed immediately after it in co (%s)"
                     (name i) src co_str)
            end)
    x.Execution.events;
  !violation

let consistent m x = rmw_atomic x && Relation.is_acyclic (hb m x)

let hb_cycle m x =
  match Relation.find_cycle (hb m x) with
  | None -> None
  | Some cycle ->
      let names = List.map (Execution.event_name x) cycle in
      let first = match names with [] -> "" | n :: _ -> n in
      Some (String.concat " -> " (names @ [ first ]))

let weaker_or_equal m m' =
  let rank = function Sc_per_location -> 0 | Relacq_sc_per_location -> 1 | Sc -> 2 in
  rank m <= rank m'
