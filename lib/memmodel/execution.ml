type t = {
  events : Event.t array;
  rf : int option array;
  co : (int * int list) list;
}

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

let well_formed x =
  let n = Array.length x.events in
  let ok = ref (Ok ()) in
  let fail fmt = Printf.ksprintf (fun s -> if !ok = Ok () then ok := Error s) fmt in
  if Array.length x.rf <> n then fail "rf array length %d <> %d events" (Array.length x.rf) n;
  Array.iteri (fun i e -> if e.Event.id <> i then fail "event at %d has id %d" i e.Event.id) x.events;
  if !ok = Ok () then begin
    Array.iteri
      (fun i e ->
        if Event.is_read e then
          match x.rf.(i) with
          | None -> ()
          | Some w ->
              if w < 0 || w >= n then fail "rf source %d out of range" w
              else
                let we = x.events.(w) in
                if not (Event.is_write we) then fail "rf source %d is not a write" w
                else if not (Event.same_loc e we) then fail "rf source %d targets another location" w)
      x.events;
    (* co must cover exactly the writes per location. *)
    let locs = Hashtbl.create 8 in
    Array.iter
      (fun e ->
        if Event.is_write e then
          match Event.loc e with
          | Some l ->
              let cur = try Hashtbl.find locs l with Not_found -> [] in
              Hashtbl.replace locs l (e.Event.id :: cur)
          | None -> ())
      x.events;
    let seen = Hashtbl.create 8 in
    List.iter
      (fun (l, order) ->
        if Hashtbl.mem seen l then fail "location %d listed twice in co" l;
        Hashtbl.replace seen l ();
        let expected = try List.sort compare (Hashtbl.find locs l) with Not_found -> [] in
        let got = List.sort compare order in
        if expected <> got then fail "co for location %d does not list exactly its writes" l)
      x.co;
    Hashtbl.iter
      (fun l ids -> if ids <> [] && not (Hashtbl.mem seen l) then fail "location %d missing from co" l)
      locs
  end;
  match !ok with Ok () -> Ok () | Error e -> err "%s" e

let value_read x r =
  let e = x.events.(r) in
  if not (Event.is_read e) then invalid_arg "Execution.value_read: not a read";
  match x.rf.(r) with
  | None -> 0
  | Some w -> (
      match Event.written_value x.events.(w) with
      | Some v -> v
      | None -> invalid_arg "Execution.value_read: rf source writes nothing")

type relations = {
  po : Relation.t;
  po_loc : Relation.t;
  rf : Relation.t;
  co : Relation.t;
  fr : Relation.t;
  com : Relation.t;
  sw : Relation.t;
  po_sw_po : Relation.t;
}

(* po and po_loc depend only on the event array, not on the rf/co
   choices — they are the fixed skeleton every candidate execution of a
   test shares, which is why the propagation engine can seed its
   incremental closure with them before making any choice. *)
let static_po events =
  let n = Array.length events in
  let po = ref (Relation.empty n) in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      let ea = events.(a) and eb = events.(b) in
      if ea.Event.tid = eb.Event.tid && ea.Event.idx < eb.Event.idx then po := Relation.add !po a b
    done
  done;
  let po = !po in
  let po_loc = Relation.restrict po (fun a b -> Event.same_loc events.(a) events.(b)) in
  (po, po_loc)

let relations x =
  let n = Array.length x.events in
  let po, po_loc = static_po x.events in
  let rf = ref (Relation.empty n) in
  Array.iteri
    (fun r src -> match src with Some w when Event.is_read x.events.(r) -> rf := Relation.add !rf w r | _ -> ())
    x.rf;
  let rf = !rf in
  let co = ref (Relation.empty n) in
  let add_chain order =
    let rec pairs = function
      | [] -> ()
      | w :: rest ->
          List.iter (fun w' -> co := Relation.add !co w w') rest;
          pairs rest
    in
    pairs order
  in
  List.iter (fun (_, order) -> add_chain order) x.co;
  let co = !co in
  (* fr: read r (rf source s, possibly initial) -> any write w' to the same
     location with s co-before w'. Initial-state reads are fr-before every
     write to the location. An RMW is never fr-related to its own write. *)
  let fr = ref (Relation.empty n) in
  Array.iteri
    (fun r e ->
      if Event.is_read e then
        match Event.loc e with
        | None -> ()
        | Some l ->
            let order = try List.assoc l x.co with Not_found -> [] in
            let later =
              match x.rf.(r) with
              | None -> order
              | Some s ->
                  let rec after = function
                    | [] -> []
                    | w :: rest -> if w = s then rest else after rest
                  in
                  after order
            in
            List.iter (fun w' -> if w' <> r then fr := Relation.add !fr r w') later)
    x.events;
  let fr = !fr in
  let com = Relation.union rf (Relation.union co fr) in
  (* sw: release fence f_r -> acquire fence f_a, different threads, with a
     write w po-after f_r read by a read r po-before f_a. Scoped: the
     edge only forms when each fence's scope covers the partner's
     workgroup (all-Device reduces to the unscoped definition). *)
  let sw = ref (Relation.empty n) in
  for f_r = 0 to n - 1 do
    if Event.is_fence x.events.(f_r) then
      for f_a = 0 to n - 1 do
        let er = x.events.(f_r) and ea = x.events.(f_a) in
        if
          Event.is_fence ea
          && er.Event.tid <> ea.Event.tid
          && Scope.covers er.Event.scope ~own:er.Event.wg ~other:ea.Event.wg
          && Scope.covers ea.Event.scope ~own:ea.Event.wg ~other:er.Event.wg
        then begin
          let linked = ref false in
          for w = 0 to n - 1 do
            if Relation.mem po f_r w && Event.is_write x.events.(w) then
              for r = 0 to n - 1 do
                if
                  Relation.mem po r f_a
                  && Event.is_read x.events.(r)
                  && x.rf.(r) = Some w
                then linked := true
              done
          done;
          if !linked then sw := Relation.add !sw f_r f_a
        end
      done
  done;
  let sw = !sw in
  let po_sw_po = Relation.compose po (Relation.compose sw po) in
  { po; po_loc; rf; co; fr; com; sw; po_sw_po }

let event_name x i =
  let _ = x in
  if i < 26 then String.make 1 (Char.chr (Char.code 'a' + i)) else "e" ^ string_of_int i

let pp fmt (x : t) =
  Format.fprintf fmt "@[<v>";
  Array.iteri
    (fun i e ->
      Format.fprintf fmt "%s: %a" (event_name x i) Event.pp e;
      (match x.rf.(i) with
      | Some w when Event.is_read e -> Format.fprintf fmt "  rf<- %s" (event_name x w)
      | None when Event.is_read e -> Format.fprintf fmt "  rf<- init"
      | _ -> ());
      Format.fprintf fmt "@,")
    x.events;
  List.iter
    (fun (l, order) ->
      Format.fprintf fmt "co(loc %d): init" l;
      List.iter (fun w -> Format.fprintf fmt " -> %s" (event_name x w)) order;
      Format.fprintf fmt "@,")
    x.co;
  Format.fprintf fmt "@]"
