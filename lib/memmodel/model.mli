(** Memory consistency specifications (paper Sec. 2.1).

    Each model instantiates the happens-before relation [hb] over a
    candidate execution and deems the execution consistent when [hb] is
    acyclic and RMW atomicity holds. The three models are exactly those
    the paper uses:

    - {!Sc}: [hb = po ∪ com] — sequential consistency.
    - {!Sc_per_location}: [hb = po-loc ∪ com] — the coherence baseline
      common to all GPU languages, and WebGPU's model for plain atomics.
    - {!Relacq_sc_per_location}: adds [po ; sw ; po] for release/acquire
      fences — the earlier WGSL model whose over-strength this paper's bug
      report exposed. *)

type t = Sc | Sc_per_location | Relacq_sc_per_location

val all : t list
(** The three models, strongest first. *)

val name : t -> string
(** Short printable name, e.g. ["rel-acq-SC-per-loc"]. *)

val of_string : string -> t option
(** Parses the output of [name] (case-insensitive); also accepts the
    aliases ["sc"], ["coherence"], ["sc-per-loc"], ["relacq"]. *)

val hb_base : t -> [ `Po | `Po_loc ]
(** The choice-independent skeleton of [m]'s happens-before relation:
    full program order for {!Sc}, its same-location restriction for the
    per-location models. Together with {!hb_includes_sw} this is the
    decomposition [hb = base ∪ com (∪ po;sw;po)] that {!hb} computes and
    the oracle's propagation engine rebuilds edge-by-edge. *)

val hb_includes_sw : t -> bool
(** Whether [m]'s happens-before includes the release/acquire ordering
    [po ; sw ; po] (true only for {!Relacq_sc_per_location}). *)

val hb : t -> Execution.t -> Relation.t
(** [hb m x] is the happens-before relation [m] induces over [x]
    (not transitively closed). *)

val rmw_atomic : Execution.t -> bool
(** [rmw_atomic x] checks RMW atomicity: in the coherence order of its
    location, every RMW is placed immediately after the write it reads
    from (first, when it reads the initial state) — no foreign write
    intervenes between an RMW's read and its write. *)

val atomicity_violation : Execution.t -> string option
(** [atomicity_violation x] explains the first RMW-atomicity failure —
    which RMW, what it reads from, and where it sits in the coherence
    order — or [None] exactly when {!rmw_atomic} holds. Complements
    {!hb_cycle} in counter-example reports: an inconsistent candidate
    has a happens-before cycle, an atomicity violation, or both. *)

val consistent : t -> Execution.t -> bool
(** [consistent m x] holds when [hb m x] is acyclic and [rmw_atomic x].
    These are exactly the candidate executions the platform is allowed to
    produce under [m]. *)

val hb_cycle : t -> Execution.t -> string option
(** [hb_cycle m x] renders the happens-before cycle making [x]
    inconsistent (e.g. ["b -> c -> a -> b"]), or [None] if [x] is
    consistent apart from possible atomicity violations. Used in
    counter-example reports. *)

val weaker_or_equal : t -> t -> bool
(** [weaker_or_equal m m'] holds when every execution consistent under
    [m'] is consistent under [m] — i.e. [m] is the weaker (more
    permissive) specification. The three models form a chain:
    SC-per-location ⊇ rel-acq ⊇ SC in permissiveness. *)
