type t = Workgroup | Device

let name = function Workgroup -> "wg" | Device -> "dev"

let of_string = function
  | "wg" | "workgroup" -> Some Workgroup
  | "dev" | "device" -> Some Device
  | _ -> None

let pp fmt s = Format.pp_print_string fmt (name s)

let wider_or_equal a b =
  match (a, b) with
  | Device, _ -> true
  | Workgroup, Workgroup -> true
  | Workgroup, Device -> false

(* How a test's threads map onto workgroups. [Inter] places every thread
   in its own workgroup (the default, and what every pre-scope test
   meant); [Intra] co-locates all threads in workgroup 0, so even
   workgroup-scoped synchronization reaches every partner. *)
type layout = Inter | Intra

let default_layout = Inter
let layout_name = function Inter -> "inter" | Intra -> "intra"

let layout_of_string = function
  | "inter" | "inter-workgroup" -> Some Inter
  | "intra" | "intra-workgroup" -> Some Intra
  | _ -> None

let workgroup layout ~tid = match layout with Inter -> tid | Intra -> 0

(* The scoped-visibility test at the heart of scoped synchronizes-with:
   an operation at [scope] issued from workgroup [own] covers workgroup
   [other] when the scope is device-wide or the workgroups coincide. *)
let covers scope ~own ~other = scope = Device || own = other
