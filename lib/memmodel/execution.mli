(** Candidate executions: events plus the witness relations [rf] and [co].

    A candidate execution fixes, for every read, which write it reads from
    ([rf]; [None] means the zero-initialised initial state) and, per
    location, a coherence order over the writes ([co]; the initial state
    implicitly precedes every write). All other relations of Tab. 1 —
    [po], [po-loc], [fr], [com], [sw] — are derived. *)

type t = {
  events : Event.t array;
      (** all events; [events.(i).id = i] (checked by {!well_formed}) *)
  rf : int option array;
      (** [rf.(r)] for a read/RMW event [r] is [Some w] (it reads the value
          written by event [w]) or [None] (it reads the initial state);
          entries for non-reads are ignored and should be [None] *)
  co : (int * int list) list;
      (** per location, the coherence order over the write/RMW events to
          that location, earliest first; the initial state precedes all *)
}

val well_formed : t -> (unit, string) result
(** [well_formed x] checks the shape invariants: ids are positional; every
    read/RMW has an [rf] entry naming a same-location write (or [None]);
    every location with a write appears exactly once in [co], listing
    exactly the writes to that location. The error string describes the
    first violation. *)

val value_read : t -> int -> int
(** [value_read x r] is the value observed by read/RMW event [r]: the
    written value of its [rf] source, or [0] for the initial state.
    @raise Invalid_argument if [r] is not a read. *)

(** The derived relations of an execution, each over the event carrier. *)
type relations = {
  po : Relation.t;  (** program order: same thread, increasing index *)
  po_loc : Relation.t;  (** [po] restricted to same-location memory events *)
  rf : Relation.t;  (** reads-from: write → read *)
  co : Relation.t;  (** coherence: earlier write → later write, same loc *)
  fr : Relation.t;
      (** from-read: read → write when the read's [rf] source is
          [co]-before the write (initial-state reads are [fr]-before every
          write to the location) *)
  com : Relation.t;  (** communication: [rf ∪ co ∪ fr] *)
  sw : Relation.t;
      (** synchronizes-with over fences: release fence [f_r] → acquire
          fence [f_a] when they are in different threads and some write
          [po]-after [f_r] is read by some read [po]-before [f_a] *)
  po_sw_po : Relation.t;  (** the release/acquire ordering [po ; sw ; po] *)
}

val static_po : Event.t array -> Relation.t * Relation.t
(** [static_po events] is [(po, po_loc)] — the two derived relations
    that depend only on the event array, not on any [rf]/[co] choice.
    They are the fixed skeleton shared by every candidate execution of a
    test; {!relations} is built on top of this, and the oracle's
    propagation engine seeds its incremental closure with it. *)

val relations : t -> relations
(** [relations x] computes every derived relation. Cost is cubic in the
    event count, which is ≤ 16 for litmus tests. *)

val event_name : t -> int -> string
(** [event_name x i] is a short printable name for event [i]
    (letters [a], [b], [c], ... in id order, as in the paper's figures). *)

val pp : Format.formatter -> t -> unit
(** Prints events, [rf] and [co] for debugging and reports. *)
