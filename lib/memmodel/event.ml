type kind =
  | Read of { loc : int }
  | Write of { loc : int; value : int }
  | Rmw of { loc : int; value : int }
  | Fence

type t = { id : int; tid : int; idx : int; wg : int; scope : Scope.t; kind : kind }

let is_read e = match e.kind with Read _ | Rmw _ -> true | Write _ | Fence -> false
let is_write e = match e.kind with Write _ | Rmw _ -> true | Read _ | Fence -> false
let is_fence e = match e.kind with Fence -> true | Read _ | Write _ | Rmw _ -> false
let is_rmw e = match e.kind with Rmw _ -> true | Read _ | Write _ | Fence -> false

let loc e =
  match e.kind with
  | Read { loc } | Write { loc; _ } | Rmw { loc; _ } -> Some loc
  | Fence -> None

let written_value e =
  match e.kind with
  | Write { value; _ } | Rmw { value; _ } -> Some value
  | Read _ | Fence -> None

let same_loc a b =
  match (loc a, loc b) with Some la, Some lb -> la = lb | _ -> false

let loc_name l =
  (* Locations 0, 1, 2... print as x, y, z, then l3, l4, ... *)
  match l with 0 -> "x" | 1 -> "y" | 2 -> "z" | n -> "l" ^ string_of_int n

let pp fmt e =
  (* Device scope is the default and prints unmarked, so pre-scope
     output (goldens, counterexample reports) is byte-identical. *)
  let sc = match e.scope with Scope.Workgroup -> ".wg" | Scope.Device -> "" in
  let body =
    match e.kind with
    | Read { loc } -> Printf.sprintf "R%s %s" sc (loc_name loc)
    | Write { loc; value } -> Printf.sprintf "W%s %s=%d" sc (loc_name loc) value
    | Rmw { loc; value } -> Printf.sprintf "RMW%s %s=%d" sc (loc_name loc) value
    | Fence -> "F" ^ sc
  in
  Format.fprintf fmt "[t%d.%d %s]" e.tid e.idx body

let to_string e = Format.asprintf "%a" pp e
