(** Memory scopes (paper §2; WebGPU/Vulkan workgroup vs device scope).

    Every atomic operation and fence is issued at a scope. A
    device-scoped operation synchronizes with any other workgroup; a
    workgroup-scoped one only reaches threads in the same workgroup.
    The pre-scope semantics of this codebase are exactly the
    all-[Device] special case. *)

type t = Workgroup | Device

val name : t -> string
(** ["wg"] and ["dev"] — the tokens used by the litmus surface syntax. *)

val of_string : string -> t option
(** Inverse of {!name}; also accepts the long forms ["workgroup"] and
    ["device"]. *)

val pp : Format.formatter -> t -> unit

val wider_or_equal : t -> t -> bool
(** [wider_or_equal a b] holds when scope [a] reaches at least as far as
    [b] ([Device] covers everything; [Workgroup] only itself). *)

type layout = Inter | Intra
(** How a test's threads map onto workgroups: [Inter] gives every thread
    its own workgroup (the default — all pre-scope tests behave this
    way); [Intra] co-locates all threads in workgroup 0. *)

val default_layout : layout

val layout_name : layout -> string
val layout_of_string : string -> layout option

val workgroup : layout -> tid:int -> int
(** [workgroup layout ~tid] is the workgroup thread [tid] runs in. *)

val covers : t -> own:int -> other:int -> bool
(** [covers scope ~own ~other]: does an operation at [scope] issued from
    workgroup [own] reach workgroup [other]? True when [scope = Device]
    or [own = other]. Scoped synchronizes-with requires [covers] in both
    directions between the release and acquire sides. *)
