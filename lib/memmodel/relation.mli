(** Finite binary relations over event identifiers.

    Candidate executions of litmus tests are tiny (≤ 16 events), so
    relations are dense boolean matrices. This gives O(n³) transitive
    closure and trivially correct set algebra, which is what the MCS
    axioms (acyclicity of unions/compositions of relations) need. *)

type t
(** An immutable relation over the carrier [\[0, size)] — operations never
    mutate their arguments. *)

val empty : int -> t
(** [empty n] is the empty relation over [n] elements.
    @raise Invalid_argument if [n < 0]. *)

val size : t -> int
(** [size r] is the carrier size [r] was created with. *)

val of_list : int -> (int * int) list -> t
(** [of_list n pairs] is the relation containing exactly [pairs].
    @raise Invalid_argument if any index is outside [\[0, n)]. *)

val to_list : t -> (int * int) list
(** [to_list r] lists the pairs of [r] in lexicographic order. *)

val mem : t -> int -> int -> bool
(** [mem r a b] tests whether [a → b] is in [r]. *)

val add : t -> int -> int -> t
(** [add r a b] is [r] with the pair [a → b]. *)

val cardinal : t -> int
(** [cardinal r] is the number of pairs. *)

val union : t -> t -> t
(** [union r s] is [r ∪ s]. Carriers must match. *)

val inter : t -> t -> t
(** [inter r s] is [r ∩ s]. Carriers must match. *)

val compose : t -> t -> t
(** [compose r s] is the relational composition [r ; s]:
    [a → c] iff [∃ b. a →r b ∧ b →s c]. *)

val inverse : t -> t
(** [inverse r] swaps every pair. *)

val restrict : t -> (int -> int -> bool) -> t
(** [restrict r keep] retains only the pairs for which [keep a b]. *)

val transitive_closure : t -> t
(** [transitive_closure r] is the least transitive relation containing
    [r] (Floyd–Warshall). *)

val is_acyclic : t -> bool
(** [is_acyclic r] holds when no element reaches itself through one or more
    steps of [r]. Irreflexive-and-transitive-closure test; a self-loop
    makes the relation cyclic. *)

val is_total_order_on : t -> int list -> bool
(** [is_total_order_on r elems] checks that [r] restricted to [elems] is a
    strict total order (irreflexive, transitive, and any two distinct
    elements comparable). *)

val find_cycle : t -> int list option
(** [find_cycle r] is [Some cycle] — a list of distinct elements
    [e0; e1; ...; ek] with [ei → e(i+1)] and [ek → e0] — when [r] is
    cyclic, [None] otherwise. Used to report the happens-before cycle that
    makes a candidate execution inconsistent. *)

(** Incremental acyclic reachability, for engines that grow a relation
    one edge at a time and must notice the first edge that closes a
    cycle. The constraint-propagation oracle engine keeps one closure
    per search node: {!Closure.copy} at each branch, {!Closure.add} per
    propagated happens-before edge, and a [false] return prunes the
    whole subtree — sound because every edge it adds is present in every
    completion of the partial execution. *)
module Closure : sig
  type c
  (** A mutable, transitively closed reachability structure over
      [\[0, size)]. Unlike {!t}, operations mutate in place. *)

  val create : int -> c
  (** The empty closure over [n] elements.
      @raise Invalid_argument if [n < 0]. *)

  val size : c -> int
  val copy : c -> c
  (** An independent copy; mutating one never affects the other. *)

  val reaches : c -> int -> int -> bool
  (** [reaches c a b] holds when [b] is reachable from [a] through one or
      more added edges. *)

  val add : c -> int -> int -> bool
  (** [add c a b] inserts the edge [a → b] and re-closes transitively.
      Returns [false] — leaving [c] {e unchanged} — when the edge would
      create a cycle (including [a = b]); [true] otherwise. Adding an
      edge already implied by [c] is a harmless no-op that returns
      [true]. *)

  val of_relation : t -> c option
  (** [of_relation r] closes [r]; [None] when [r] is cyclic. *)

  val to_relation : c -> t
  (** The closure as a {!t} — equals [transitive_closure] of the added
      edges. *)
end

val equal : t -> t -> bool
(** Structural equality of relations over equal carriers. *)

val subset : t -> t -> bool
(** [subset r s] tests [r ⊆ s]. *)

val pp : names:(int -> string) -> Format.formatter -> t -> unit
(** [pp ~names fmt r] prints the pairs using [names] for elements. *)
