type t = { n : int; m : bool array array }

let empty n =
  if n < 0 then invalid_arg "Relation.empty: negative size";
  { n; m = Array.make_matrix n n false }

let size r = r.n

let check_index r i =
  if i < 0 || i >= r.n then invalid_arg "Relation: index out of bounds"

let copy r = { n = r.n; m = Array.map Array.copy r.m }

let of_list n pairs =
  let r = empty n in
  let set (a, b) =
    check_index r a;
    check_index r b;
    r.m.(a).(b) <- true
  in
  List.iter set pairs;
  r

let to_list r =
  let acc = ref [] in
  for a = r.n - 1 downto 0 do
    for b = r.n - 1 downto 0 do
      if r.m.(a).(b) then acc := (a, b) :: !acc
    done
  done;
  !acc

let mem r a b =
  check_index r a;
  check_index r b;
  r.m.(a).(b)

let add r a b =
  check_index r a;
  check_index r b;
  let r' = copy r in
  r'.m.(a).(b) <- true;
  r'

let cardinal r =
  let c = ref 0 in
  Array.iter (fun row -> Array.iter (fun b -> if b then incr c) row) r.m;
  !c

let check_same_size r s =
  if r.n <> s.n then invalid_arg "Relation: carrier size mismatch"

let union r s =
  check_same_size r s;
  let out = empty r.n in
  for a = 0 to r.n - 1 do
    for b = 0 to r.n - 1 do
      out.m.(a).(b) <- r.m.(a).(b) || s.m.(a).(b)
    done
  done;
  out

let inter r s =
  check_same_size r s;
  let out = empty r.n in
  for a = 0 to r.n - 1 do
    for b = 0 to r.n - 1 do
      out.m.(a).(b) <- r.m.(a).(b) && s.m.(a).(b)
    done
  done;
  out

let compose r s =
  check_same_size r s;
  let out = empty r.n in
  for a = 0 to r.n - 1 do
    for b = 0 to r.n - 1 do
      if r.m.(a).(b) then
        for c = 0 to r.n - 1 do
          if s.m.(b).(c) then out.m.(a).(c) <- true
        done
    done
  done;
  out

let inverse r =
  let out = empty r.n in
  for a = 0 to r.n - 1 do
    for b = 0 to r.n - 1 do
      out.m.(b).(a) <- r.m.(a).(b)
    done
  done;
  out

let restrict r keep =
  let out = empty r.n in
  for a = 0 to r.n - 1 do
    for b = 0 to r.n - 1 do
      out.m.(a).(b) <- r.m.(a).(b) && keep a b
    done
  done;
  out

let transitive_closure r =
  let out = copy r in
  for k = 0 to r.n - 1 do
    for a = 0 to r.n - 1 do
      if out.m.(a).(k) then
        for b = 0 to r.n - 1 do
          if out.m.(k).(b) then out.m.(a).(b) <- true
        done
    done
  done;
  out

let is_acyclic r =
  let c = transitive_closure r in
  let cyclic = ref false in
  for a = 0 to r.n - 1 do
    if c.m.(a).(a) then cyclic := true
  done;
  not !cyclic

let is_total_order_on r elems =
  let closed = transitive_closure r in
  let irreflexive = List.for_all (fun a -> not closed.m.(a).(a)) elems in
  let comparable =
    List.for_all
      (fun a ->
        List.for_all (fun b -> a = b || closed.m.(a).(b) || closed.m.(b).(a)) elems)
      elems
  in
  (* Transitivity on the restriction: pairs of the original relation among
     [elems] must already be transitively consistent, which the closure
     check captures together with irreflexivity. *)
  irreflexive && comparable

let find_cycle r =
  (* DFS with colors; on finding a back edge, extract the stack segment. *)
  let color = Array.make r.n 0 in
  (* 0 = white, 1 = on stack, 2 = done *)
  let result = ref None in
  let stack = ref [] in
  let rec visit a =
    if !result = None then begin
      color.(a) <- 1;
      stack := a :: !stack;
      for b = 0 to r.n - 1 do
        if !result = None && r.m.(a).(b) then
          if color.(b) = 1 then begin
            (* Back edge a -> b: the cycle is b ... a on the stack. *)
            let rec take acc = function
              | [] -> acc
              | x :: rest -> if x = b then x :: acc else take (x :: acc) rest
            in
            result := Some (take [] !stack)
          end
          else if color.(b) = 0 then visit b
      done;
      if !result = None then begin
        color.(a) <- 2;
        stack := List.tl !stack
      end
    end
  in
  let a = ref 0 in
  while !result = None && !a < r.n do
    if color.(!a) = 0 then visit !a;
    incr a
  done;
  !result

module Closure = struct
  (* One byte per pair: reach.[a*n+b] <> '\000' iff b is reachable from a
     through one or more edges. Kept transitively closed by [add], so a
     cycle is detected the instant its last edge arrives. *)
  type c = { n : int; reach : Bytes.t }

  let create n =
    if n < 0 then invalid_arg "Relation.Closure.create: negative size";
    { n; reach = Bytes.make (n * n) '\000' }

  let size c = c.n
  let copy c = { c with reach = Bytes.copy c.reach }

  let reaches c a b =
    if a < 0 || a >= c.n || b < 0 || b >= c.n then
      invalid_arg "Relation.Closure: index out of bounds";
    Bytes.unsafe_get c.reach ((a * c.n) + b) <> '\000'

  let add c a b =
    if a < 0 || a >= c.n || b < 0 || b >= c.n then
      invalid_arg "Relation.Closure: index out of bounds";
    if a = b || Bytes.unsafe_get c.reach ((b * c.n) + a) <> '\000' then false
    else begin
      (* Everything that reaches a (plus a itself) now reaches everything
         reached from b (plus b itself). The state is untouched when the
         edge would close a cycle, so the caller can keep using [c]. *)
      for x = 0 to c.n - 1 do
        if x = a || Bytes.unsafe_get c.reach ((x * c.n) + a) <> '\000' then begin
          let row = x * c.n in
          Bytes.unsafe_set c.reach (row + b) '\001';
          for y = 0 to c.n - 1 do
            if Bytes.unsafe_get c.reach ((b * c.n) + y) <> '\000' then
              Bytes.unsafe_set c.reach (row + y) '\001'
          done
        end
      done;
      true
    end

  let of_relation (r : t) =
    let c = create r.n in
    let ok = ref true in
    for a = 0 to r.n - 1 do
      for b = 0 to r.n - 1 do
        if r.m.(a).(b) then if not (add c a b) then ok := false
      done
    done;
    if !ok then Some c else None

  let to_relation c =
    let r = empty c.n in
    for a = 0 to c.n - 1 do
      for b = 0 to c.n - 1 do
        if Bytes.unsafe_get c.reach ((a * c.n) + b) <> '\000' then r.m.(a).(b) <- true
      done
    done;
    r
end

let equal r s = r.n = s.n && r.m = s.m

let subset r s =
  check_same_size r s;
  let ok = ref true in
  for a = 0 to r.n - 1 do
    for b = 0 to r.n - 1 do
      if r.m.(a).(b) && not s.m.(a).(b) then ok := false
    done
  done;
  !ok

let pp ~names fmt r =
  let pairs = to_list r in
  Format.fprintf fmt "{";
  List.iteri
    (fun i (a, b) ->
      if i > 0 then Format.fprintf fmt ", ";
      Format.fprintf fmt "%s->%s" (names a) (names b))
    pairs;
  Format.fprintf fmt "}"
