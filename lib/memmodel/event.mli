(** Memory events, the atoms of candidate executions (paper Tab. 1).

    An execution is a set of events — atomic reads ([R]), atomic writes
    ([W]), atomic read-modify-writes ([RMW]) and release/acquire fences
    ([F]) — plus relations over them. Events carry the thread that issued
    them and their index in that thread's program order. Following the
    paper's simplified WebGPU model there are no non-atomic accesses and no
    memory-order parameters. *)

type kind =
  | Read of { loc : int }  (** atomic load; the value read is given by [rf] *)
  | Write of { loc : int; value : int }  (** atomic store of [value] *)
  | Rmw of { loc : int; value : int }
      (** atomic read-modify-write: reads the old value (via [rf]) and
          writes [value] in one indivisible action *)
  | Fence  (** release/acquire fence *)

type t = {
  id : int;  (** unique within an execution; also the index used by {!Relation} *)
  tid : int;  (** issuing thread *)
  idx : int;  (** position in the issuing thread's program order *)
  wg : int;  (** issuing thread's workgroup (see {!Scope.workgroup}) *)
  scope : Scope.t;  (** memory scope the operation was issued at *)
  kind : kind;
}

val is_read : t -> bool
(** [is_read e] holds for [Read] and [Rmw] events (anything that observes
    a value). *)

val is_write : t -> bool
(** [is_write e] holds for [Write] and [Rmw] events (anything that produces
    a value). *)

val is_fence : t -> bool
(** [is_fence e] holds exactly for [Fence] events. *)

val is_rmw : t -> bool
(** [is_rmw e] holds exactly for [Rmw] events. *)

val loc : t -> int option
(** [loc e] is the memory location of a memory event, [None] for fences. *)

val written_value : t -> int option
(** [written_value e] is the value stored by a [Write] or [Rmw]. *)

val same_loc : t -> t -> bool
(** [same_loc a b] holds when both are memory events on one location. *)

val pp : Format.formatter -> t -> unit
(** [pp fmt e] prints an event like ["W x=1"] or ["RMW y=2"], with thread
    and index, for debugging and counter-example reports. *)

val to_string : t -> string
(** [to_string e] is [pp] rendered to a string. *)
