(** Injectable memory-consistency bugs.

    The paper's validation (Sec. 5.4, Tab. 4) relies on three real bugs.
    Our substitute devices expose the same failure modes as injections,
    each weakening exactly the mechanism whose mutator the paper pairs it
    with:

    - {!Corr_reorder} — same-location load-load reordering, the CoRR
      violation seen through Chrome/Metal on Intel (reversing [po-loc]);
    - {!Fence_weakened} — release/acquire fences silently dropped, the
      AMD Vulkan compiler bug behind MP-relacq (weakening [sw]);
    - {!Coherence_alias} — per-location coherence tracking skipped, the
      NVIDIA Kepler incoherent-cache behaviour behind MP-CO (weakening
      [po-loc]).

    Each carries the probability that one test instance is affected. *)

type t =
  | Corr_reorder of float
      (** with this probability, a same-location load-load pair in one
          thread executes out of order *)
  | Fence_weakened of float
      (** with this probability, each fence of an instance compiles to a
          no-op *)
  | Coherence_alias of float
      (** with this probability, an instance runs without same-location
          coherence enforcement (stale same-location reads, unordered
          same-thread writes) *)
  | Scope_dropped of float
      (** with this probability, each device-scope fence of an instance is
          demoted to workgroup scope — the classic driver bug where
          device-scope synchronization is compiled as if workgroup-scoped.
          Invisible when all threads share a workgroup; a correctness bug
          across workgroups. *)

(** The per-instance effect of the active bug set, consumed by
    {!Instance.run}. *)
type effect = {
  p_corr_reorder : float;
  p_fence_drop : float;
  p_coherence_alias : float;
  p_scope_drop : float;
}

val none : effect
(** A correct implementation: all probabilities zero. *)

val effect_of : t list -> effect
(** [effect_of bugs] folds a bug list into an {!effect}; repeated bugs of
    one kind combine as independent failure chances. *)

val paper_bug : Profile.t -> t option
(** [paper_bug p] is the bug the paper associates with this device's
    vendor — used by the Table 4 correlation study and the bug-hunt
    example: Intel ↦ [Corr_reorder], AMD ↦ [Fence_weakened],
    NVIDIA ↦ [Coherence_alias] (standing in for the Kepler-era part),
    M1 ↦ [None]. *)

val describe : t -> string
