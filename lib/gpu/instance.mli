(** Operational execution of one litmus-test instance.

    This is the heart of the simulated GPU. An instance is one copy of a
    litmus test whose role threads have been mapped to physical threads
    (by the testing environment) and therefore have concrete start times.
    Execution uses a timestamp semantics:

    - each instruction issues at its thread's running clock (instruction
      latency plus jitter);
    - adjacent independent accesses may swap issue order (out-of-order
      window) — the source of load-buffering-style weakness and, under
      the {!Bug.Corr_reorder} injection, of same-location reordering;
    - a store becomes globally visible some exponential delay after
      issue (store buffering / propagation) — the source of MP/SB-style
      weakness; same-thread same-location stores stay in order;
    - a load may read a stale snapshot of memory (bounded staleness);
    - a release/acquire fence caps the visibility delay of earlier
      stores at the fence time and clears staleness of later loads,
      which provably forbids the fenced weak behaviours (unless the
      {!Bug.Fence_weakened} injection drops the fence);
    - per-location coherence is enforced by clamping each thread's reads
      to never go backwards in coherence order (skipped under
      {!Bug.Coherence_alias});
    - an RMW executes at a single instant: it reads the latest visible
      write and its own write becomes visible immediately.

    The coherence order of a location is the visibility order of its
    writes; the outcome reports final values from it. *)

(** Per-instance weak-memory parameters, after a testing environment's
    amplification has been applied. *)
type weak_params = {
  instr_latency_ns : float;
  issue_jitter : float;  (** fractional jitter on per-instruction latency *)
  p_ooo : float;  (** adjacent independent pair reorder probability *)
  vis_delay_mean_ns : float;  (** mean store visibility delay *)
  p_stale : float;  (** probability a load reads a stale snapshot *)
  stale_mean_ns : float;  (** mean staleness window *)
}

val effective_params : Profile.t -> amplification:float -> weak_params
(** [effective_params p ~amplification] scales the profile's base
    propensities by [1 + amplification] (probabilities are clamped to
    0.95). Amplification comes from {!Profile.occupancy_amplifier} and
    {!Profile.stress_amplifier}. *)

val run :
  ?layout:Mcm_memmodel.Scope.layout ->
  prng:Mcm_util.Prng.t ->
  weak:weak_params ->
  bugs:Bug.effect ->
  test:Mcm_litmus.Litmus.t ->
  starts:float array ->
  unit ->
  Mcm_litmus.Litmus.outcome
(** [run ?layout ~prng ~weak ~bugs ~test ~starts ()] executes one
    instance of [test] whose thread [i] begins at simulated time
    [starts.(i)] (ns) and returns the observed outcome. [layout]
    (default {!Scope.Inter}) decides whether workgroup-scoped fences
    reach the other threads: under [Inter] every thread is its own
    workgroup, so a workgroup fence (or a device fence demoted by
    {!Bug.Scope_dropped}) is a no-op; under [Intra] all threads share a
    workgroup and scope never weakens a fence.
    @raise Invalid_argument if [starts] does not have one entry per
    thread. *)
