module Prng = Mcm_util.Prng
module Litmus = Mcm_litmus.Litmus
module Instr = Mcm_litmus.Instr

(* Event kinds as immediates; the order matches Instance.kind. *)
let k_load = 0
let k_store = 1
let k_rmw = 2
let k_fence = 3

type t = {
  test : Litmus.t;
  weak : Instance.weak_params;
  bugs : Bug.effect;
  nthreads : int;
  nlocs : int;
  n : int;  (* total events *)
  ev_kind : int array;
  ev_loc : int array;  (* -1 for fences *)
  ev_value : int array;  (* written value, 0 otherwise *)
  ev_reg : int array;  (* destination register, -1 otherwise *)
  ev_po : int array;  (* index within the issuing thread *)
  ev_thread : int array;
  thread_off : int array;  (* length nthreads + 1; events are grouped by thread *)
  loc_writes : int array array;  (* per location, write event indices in event order *)
}

type workspace = {
  owner : t;
  (* Per-event mutable state (the interpreter's record fields). *)
  time : float array;
  vis : float array;
  active : bool array;
  post_acquire : bool array;
  co_pos : int array;
  (* Per-thread sequences of memory events + active fences, stored in the
     thread's slice of [seq]; [seq_len.(tid)] entries from
     [thread_off.(tid)]. *)
  seq : int array;
  seq_len : int array;
  (* Per-location coherence orders: sorted copies of [loc_writes]. *)
  co : int array array;
  floors : int array;  (* nthreads * nlocs, row-major *)
  last_vis : float array;  (* nlocs scratch for the coherence pass *)
  order : int array;
  outcome : Litmus.outcome;
  parent : Prng.Raw.state;  (* the iteration stream instances split from *)
  rng : Prng.Raw.state;  (* the current instance's stream *)
}

let test k = k.test

let compile ~weak ~bugs ~(test : Litmus.t) =
  let nthreads = Litmus.nthreads test in
  let n = Array.fold_left (fun acc l -> acc + List.length l) 0 test.Litmus.threads in
  let ev_kind = Array.make n 0 in
  let ev_loc = Array.make n (-1) in
  let ev_value = Array.make n 0 in
  let ev_reg = Array.make n (-1) in
  let ev_po = Array.make n 0 in
  let ev_thread = Array.make n 0 in
  let thread_off = Array.make (nthreads + 1) 0 in
  let i = ref 0 in
  Array.iteri
    (fun tid instrs ->
      thread_off.(tid) <- !i;
      List.iteri
        (fun po instr ->
          let kind, loc, value, reg =
            match instr with
            | Instr.Load { reg; loc } -> (k_load, loc, 0, reg)
            | Instr.Store { loc; value } -> (k_store, loc, value, -1)
            | Instr.Rmw { reg; loc; value } -> (k_rmw, loc, value, reg)
            | Instr.Fence -> (k_fence, -1, 0, -1)
          in
          ev_kind.(!i) <- kind;
          ev_loc.(!i) <- loc;
          ev_value.(!i) <- value;
          ev_reg.(!i) <- reg;
          ev_po.(!i) <- po;
          ev_thread.(!i) <- tid;
          incr i)
        instrs)
    test.Litmus.threads;
  thread_off.(nthreads) <- n;
  let loc_writes =
    Array.init test.Litmus.nlocs (fun l ->
        let acc = ref [] in
        for e = n - 1 downto 0 do
          if (ev_kind.(e) = k_store || ev_kind.(e) = k_rmw) && ev_loc.(e) = l then acc := e :: !acc
        done;
        Array.of_list !acc)
  in
  {
    test;
    weak;
    bugs;
    nthreads;
    nlocs = test.Litmus.nlocs;
    n;
    ev_kind;
    ev_loc;
    ev_value;
    ev_reg;
    ev_po;
    ev_thread;
    thread_off;
    loc_writes;
  }

let workspace k =
  {
    owner = k;
    time = Array.make (max 1 k.n) 0.;
    vis = Array.make (max 1 k.n) 0.;
    active = Array.make (max 1 k.n) true;
    post_acquire = Array.make (max 1 k.n) false;
    co_pos = Array.make (max 1 k.n) (-1);
    seq = Array.make (max 1 k.n) 0;
    seq_len = Array.make k.nthreads 0;
    co = Array.map Array.copy k.loc_writes;
    floors = Array.make (max 1 (k.nthreads * k.nlocs)) (-1);
    last_vis = Array.make (max 1 k.nlocs) neg_infinity;
    order = Array.init (max 1 k.n) (fun i -> i);
    outcome = Litmus.empty_outcome k.test;
    parent = Prng.Raw.make ();
    rng = Prng.Raw.make ();
  }

let set_parent ws prng = Prng.Raw.load ws.parent prng

let snapshot ws =
  {
    Litmus.regs = Array.map Array.copy ws.outcome.Litmus.regs;
    final = Array.copy ws.outcome.Litmus.final;
  }

(* One instance, drawing from [ws.rng]. Mirrors Instance.run phase by
   phase; every conditional draw (bernoulli with p outside (0,1),
   exponential with mean <= 0) is reproduced exactly so the two engines
   consume identical PRNG streams. The steady-state path allocates
   nothing: all scratch lives in [ws], the sorts are in-place insertion
   sorts over total orders, and draws go through Prng.Raw. *)
let run_core k ws ~starts =
  if Array.length starts <> k.nthreads then invalid_arg "Kernel.run: starts length mismatch";
  if ws.owner != k then invalid_arg "Kernel.run: workspace belongs to another kernel";
  let weak = k.weak and bugs = k.bugs in
  let rng = ws.rng in
  let n = k.n in
  let nthreads = k.nthreads and nlocs = k.nlocs in
  let ev_kind = k.ev_kind
  and ev_loc = k.ev_loc
  and ev_value = k.ev_value
  and ev_reg = k.ev_reg
  and ev_po = k.ev_po
  and ev_thread = k.ev_thread
  and thread_off = k.thread_off in
  let time = ws.time
  and vis = ws.vis
  and active = ws.active
  and post_acquire = ws.post_acquire
  and co_pos = ws.co_pos
  and seq = ws.seq
  and seq_len = ws.seq_len in
  let coherent = not (Prng.Raw.bernoulli rng bugs.Bug.p_coherence_alias) in
  (* Flatten: per-thread issue clocks; dropped fences become inactive. *)
  for tid = 0 to nthreads - 1 do
    let clock = ref starts.(tid) in
    for i = thread_off.(tid) to thread_off.(tid + 1) - 1 do
      time.(i) <- !clock;
      post_acquire.(i) <- false;
      if ev_kind.(i) = k_fence then
        active.(i) <- not (Prng.Raw.bernoulli rng bugs.Bug.p_fence_drop);
      clock :=
        !clock
        +. (weak.Instance.instr_latency_ns
           *. (1. +. (weak.Instance.issue_jitter *. Prng.Raw.float rng 1.)))
    done
  done;
  (* Per-thread sequences, out-of-order window, acquire marking. *)
  for tid = 0 to nthreads - 1 do
    let off = thread_off.(tid) in
    let len = ref 0 in
    for i = off to thread_off.(tid + 1) - 1 do
      if ev_kind.(i) <> k_fence || active.(i) then begin
        seq.(off + !len) <- i;
        incr len
      end
    done;
    seq_len.(tid) <- !len;
    (* Adjacent memory pairs may swap issue times; swaps are disjoint. *)
    let j = ref 0 in
    while !j + 1 < !len do
      let e1 = seq.(off + !j) and e2 = seq.(off + !j + 1) in
      let swapped =
        ev_kind.(e1) <> k_fence
        && ev_kind.(e2) <> k_fence
        &&
        let swap_p =
          if ev_loc.(e1) <> ev_loc.(e2) then weak.Instance.p_ooo
          else if ev_kind.(e1) = k_load && ev_kind.(e2) = k_load then bugs.Bug.p_corr_reorder
          else 0.
        in
        if Prng.Raw.bernoulli rng swap_p then begin
          let t = time.(e1) in
          time.(e1) <- time.(e2);
          time.(e2) <- t;
          true
        end
        else false
      in
      if swapped then j := !j + 2 else incr j
    done;
    (* Loads after an active fence read fresh memory. *)
    let seen_fence = ref false in
    for s = 0 to !len - 1 do
      let e = seq.(off + s) in
      if ev_kind.(e) = k_fence && active.(e) then seen_fence := true
      else if !seen_fence then post_acquire.(e) <- true
    done
  done;
  (* Store visibility: exponential propagation; RMWs publish instantly. *)
  for i = 0 to n - 1 do
    if ev_kind.(i) = k_store then
      vis.(i) <- time.(i) +. Prng.Raw.exponential rng weak.Instance.vis_delay_mean_ns
    else if ev_kind.(i) = k_rmw then vis.(i) <- time.(i)
  done;
  (* Release fences cap earlier stores' visibility at the fence time. *)
  for tid = 0 to nthreads - 1 do
    let off = thread_off.(tid) in
    let len = seq_len.(tid) in
    for a = 0 to len - 1 do
      let f = seq.(off + a) in
      if ev_kind.(f) = k_fence && active.(f) then
        for b = 0 to len - 1 do
          let e = seq.(off + b) in
          if (ev_kind.(e) = k_store || ev_kind.(e) = k_rmw) && ev_po.(e) < ev_po.(f) then
            if time.(f) < vis.(e) then vis.(e) <- time.(f)
        done
    done
  done;
  (* Coherent same-thread same-location stores publish in order. *)
  if coherent then
    for tid = 0 to nthreads - 1 do
      let off = thread_off.(tid) in
      let len = seq_len.(tid) in
      Array.fill ws.last_vis 0 nlocs neg_infinity;
      for s = 0 to len - 1 do
        let e = seq.(off + s) in
        if ev_kind.(e) = k_store || ev_kind.(e) = k_rmw then begin
          let l = ev_loc.(e) in
          if vis.(e) <= ws.last_vis.(l) then vis.(e) <- ws.last_vis.(l) +. 1e-6;
          ws.last_vis.(l) <- vis.(e)
        end
      done
    done;
  (* Coherence order per location = visibility order of its writes. The
     key (vis, time, event index) is the interpreter's
     (vis, time, thread, po) — a total order, so this insertion sort
     yields the same permutation as any other comparison sort. *)
  for l = 0 to nlocs - 1 do
    let dst = ws.co.(l) in
    let m = Array.length dst in
    Array.blit k.loc_writes.(l) 0 dst 0 m;
    for i = 1 to m - 1 do
      let x = dst.(i) in
      let xv = vis.(x) and xt = time.(x) in
      let j = ref (i - 1) in
      let continue = ref true in
      while !continue && !j >= 0 do
        let y = dst.(!j) in
        let after =
          vis.(y) > xv || (vis.(y) = xv && (time.(y) > xt || (time.(y) = xt && y > x)))
        in
        if after then begin
          dst.(!j + 1) <- y;
          decr j
        end
        else continue := false
      done;
      dst.(!j + 1) <- x
    done;
    for i = 0 to m - 1 do
      co_pos.(dst.(i)) <- i
    done
  done;
  (* Global execution order: (issue time, event index) — total order. *)
  let order = ws.order in
  for i = 0 to n - 1 do
    order.(i) <- i
  done;
  for i = 1 to n - 1 do
    let x = order.(i) in
    let xt = time.(x) in
    let j = ref (i - 1) in
    let continue = ref true in
    while !continue && !j >= 0 do
      let y = order.(!j) in
      if time.(y) > xt || (time.(y) = xt && y > x) then begin
        order.(!j + 1) <- y;
        decr j
      end
      else continue := false
    done;
    order.(!j + 1) <- x
  done;
  (* Reads, in execution order, with per-thread coherence floors. *)
  Array.fill ws.floors 0 (nthreads * nlocs) (-1);
  let out = ws.outcome in
  for t = 0 to nthreads - 1 do
    let regs = out.Litmus.regs.(t) in
    Array.fill regs 0 (Array.length regs) 0
  done;
  Array.fill out.Litmus.final 0 nlocs 0;
  for oi = 0 to n - 1 do
    let i = order.(oi) in
    let kind = ev_kind.(i) in
    if kind = k_store then begin
      if coherent then begin
        let fi = (ev_thread.(i) * nlocs) + ev_loc.(i) in
        if co_pos.(i) > ws.floors.(fi) then ws.floors.(fi) <- co_pos.(i)
      end
    end
    else if kind = k_load || kind = k_rmw then begin
      let eff =
        if kind = k_rmw || post_acquire.(i) then time.(i)
        else if Prng.Raw.bernoulli rng weak.Instance.p_stale then begin
          let d = time.(i) -. Prng.Raw.exponential rng weak.Instance.stale_mean_ns in
          if d > 0. then d else 0.
        end
        else time.(i)
      in
      let self_pos = if kind = k_rmw then co_pos.(i) else -2 in
      let loc = ev_loc.(i) in
      let writes = ws.co.(loc) in
      (* Reverse early-exit scan for the last visible write. *)
      let pos = ref (-1) in
      let w = ref (Array.length writes - 1) in
      while !pos < 0 && !w >= 0 do
        if !w <> self_pos && vis.(writes.(!w)) <= eff then pos := !w;
        decr w
      done;
      let fi = (ev_thread.(i) * nlocs) + loc in
      let pos = if coherent && ws.floors.(fi) > !pos then ws.floors.(fi) else !pos in
      let value = if pos < 0 then 0 else ev_value.(writes.(pos)) in
      if ev_reg.(i) >= 0 then out.Litmus.regs.(ev_thread.(i)).(ev_reg.(i)) <- value;
      if coherent then begin
        if pos > ws.floors.(fi) then ws.floors.(fi) <- pos;
        if kind = k_rmw && co_pos.(i) > ws.floors.(fi) then ws.floors.(fi) <- co_pos.(i)
      end
    end
  done;
  for l = 0 to nlocs - 1 do
    let writes = ws.co.(l) in
    let m = Array.length writes in
    if m > 0 then out.Litmus.final.(l) <- ev_value.(writes.(m - 1))
  done;
  out

let run_next k ws ~starts =
  Prng.Raw.split_into ~child:ws.rng ~parent:ws.parent;
  run_core k ws ~starts

let run k ws ~prng ~starts =
  Prng.Raw.load ws.rng prng;
  let out = run_core k ws ~starts in
  Prng.Raw.store ws.rng prng;
  out
