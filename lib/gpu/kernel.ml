module Prng = Mcm_util.Prng
module Litmus = Mcm_litmus.Litmus
module Instr = Mcm_litmus.Instr
module Scope = Mcm_memmodel.Scope

(* Bump when the kernel's compiled form or execution semantics change in
   a way that should re-key stored campaign results. v1 was the original
   compiled kernel (PR 3, implicit); v2 introduced schema images and
   cross-cell memoization; v3 added the scope lane and scope-aware fence
   semantics. The store's cell keys record this number. *)
let code_version = 3

(* Event kinds as immediates; the order matches Instance.kind. *)
let k_load = 0
let k_store = 1
let k_rmw = 2
let k_fence = 3

(* Scope lane immediates. *)
let s_wg = 0
let s_dev = 1

type t = {
  test : Litmus.t;
  weak : Instance.weak_params;
  bugs : Bug.effect;
  layout : Scope.layout;  (* scalar like [weak]/[bugs]: rebound per cell *)
  image_id : int;  (* identifies the shared structural arrays below *)
  nthreads : int;
  nlocs : int;
  n : int;  (* total events *)
  ev_kind : int array;
  ev_loc : int array;  (* -1 for fences *)
  ev_value : int array;  (* written value, 0 otherwise *)
  ev_reg : int array;  (* destination register, -1 otherwise *)
  ev_po : int array;  (* index within the issuing thread *)
  ev_thread : int array;
  ev_scope : int array;  (* s_dev / s_wg, from the instruction's scope *)
  thread_off : int array;  (* length nthreads + 1; events are grouped by thread *)
  loc_writes : int array array;  (* per location, write event indices in event order *)
}

type workspace = {
  mutable owner : t;
  (* Per-event mutable state (the interpreter's record fields). *)
  time : float array;
  vis : float array;
  active : bool array;
  post_acquire : bool array;
  co_pos : int array;
  (* Per-thread sequences of memory events + active fences, stored in the
     thread's slice of [seq]; [seq_len.(tid)] entries from
     [thread_off.(tid)]. *)
  seq : int array;
  seq_len : int array;
  (* Per-location coherence orders: sorted copies of [loc_writes]. *)
  co : int array array;
  floors : int array;  (* nthreads * nlocs, row-major *)
  last_vis : float array;  (* nlocs scratch for the coherence pass *)
  order : int array;
  outcome : Litmus.outcome;
  parent : Prng.Raw.state;  (* the iteration stream instances split from *)
  rng : Prng.Raw.state;  (* the current instance's stream *)
}

let test k = k.test
let image_id k = k.image_id

(* Compile / reuse counters, shared across domains. *)
let images_built_c = Atomic.make 0
let image_hits_c = Atomic.make 0
let images_built () = Atomic.get images_built_c
let image_hits () = Atomic.get image_hits_c

let next_image_id = Atomic.make 0

let compile ?(layout = Scope.default_layout) ~weak ~bugs ~(test : Litmus.t) () =
  let nthreads = Litmus.nthreads test in
  let n = Array.fold_left (fun acc l -> acc + List.length l) 0 test.Litmus.threads in
  let ev_kind = Array.make n 0 in
  let ev_loc = Array.make n (-1) in
  let ev_value = Array.make n 0 in
  let ev_reg = Array.make n (-1) in
  let ev_po = Array.make n 0 in
  let ev_thread = Array.make n 0 in
  let ev_scope = Array.make n s_dev in
  let thread_off = Array.make (nthreads + 1) 0 in
  let i = ref 0 in
  Array.iteri
    (fun tid instrs ->
      thread_off.(tid) <- !i;
      List.iteri
        (fun po instr ->
          let kind, loc, value, reg =
            match instr with
            | Instr.Load { reg; loc; _ } -> (k_load, loc, 0, reg)
            | Instr.Store { loc; value; _ } -> (k_store, loc, value, -1)
            | Instr.Rmw { reg; loc; value; _ } -> (k_rmw, loc, value, reg)
            | Instr.Fence _ -> (k_fence, -1, 0, -1)
          in
          ev_kind.(!i) <- kind;
          ev_loc.(!i) <- loc;
          ev_value.(!i) <- value;
          ev_reg.(!i) <- reg;
          ev_po.(!i) <- po;
          ev_thread.(!i) <- tid;
          ev_scope.(!i) <- (match Instr.scope instr with Scope.Device -> s_dev | Scope.Workgroup -> s_wg);
          incr i)
        instrs)
    test.Litmus.threads;
  thread_off.(nthreads) <- n;
  let loc_writes =
    Array.init test.Litmus.nlocs (fun l ->
        let acc = ref [] in
        for e = n - 1 downto 0 do
          if (ev_kind.(e) = k_store || ev_kind.(e) = k_rmw) && ev_loc.(e) = l then acc := e :: !acc
        done;
        Array.of_list !acc)
  in
  Atomic.incr images_built_c;
  {
    test;
    weak;
    bugs;
    layout;
    image_id = Atomic.fetch_and_add next_image_id 1;
    nthreads;
    nlocs = test.Litmus.nlocs;
    n;
    ev_kind;
    ev_loc;
    ev_value;
    ev_reg;
    ev_po;
    ev_thread;
    ev_scope;
    thread_off;
    loc_writes;
  }

(* ------------------------------------------------------------------ *)
(* Per-domain image cache: the structural arrays of a compiled kernel
   depend only on the test program, not on [weak]/[bugs], so cells that
   differ only in environment, mutation flags or injected bugs can share
   one image and rebind the scalar fields per cell. Keyed by test name
   with a physical-equality check on the test itself (two distinct
   programs that happen to share a name both compile). Domain-local, so
   no locks; bounded, reset wholesale when full. *)

let image_cache_max = 256

let image_cache_key : (string, Litmus.t * t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let compile_cached ?(layout = Scope.default_layout) ~weak ~bugs ~(test : Litmus.t) () =
  let cache = Domain.DLS.get image_cache_key in
  match Hashtbl.find_opt cache test.Litmus.name with
  | Some (t0, proto) when t0 == test ->
      Atomic.incr image_hits_c;
      { proto with weak; bugs; layout }
  | _ ->
      if Hashtbl.length cache >= image_cache_max then Hashtbl.reset cache;
      let k = compile ~layout ~weak ~bugs ~test () in
      Hashtbl.replace cache test.Litmus.name (test, k);
      k

let workspace k =
  {
    owner = k;
    time = Array.make (max 1 k.n) 0.;
    vis = Array.make (max 1 k.n) 0.;
    active = Array.make (max 1 k.n) true;
    post_acquire = Array.make (max 1 k.n) false;
    co_pos = Array.make (max 1 k.n) (-1);
    seq = Array.make (max 1 k.n) 0;
    seq_len = Array.make k.nthreads 0;
    co = Array.map Array.copy k.loc_writes;
    floors = Array.make (max 1 (k.nthreads * k.nlocs)) (-1);
    last_vis = Array.make (max 1 k.nlocs) neg_infinity;
    order = Array.init (max 1 k.n) (fun i -> i);
    outcome = Litmus.empty_outcome k.test;
    parent = Prng.Raw.make ();
    rng = Prng.Raw.make ();
  }

let adopt ws k =
  if ws.owner.image_id <> k.image_id then
    invalid_arg "Kernel.adopt: workspace compiled from another image";
  ws.owner <- k

let set_parent ws prng = Prng.Raw.load ws.parent prng

let snapshot ws =
  {
    Litmus.regs = Array.map Array.copy ws.outcome.Litmus.regs;
    final = Array.copy ws.outcome.Litmus.final;
  }

(* One instance, drawing from [rng]. Mirrors Instance.run phase by
   phase; every conditional draw (bernoulli with p outside (0,1),
   exponential with mean <= 0) is reproduced exactly so the two engines
   consume identical PRNG streams. The steady-state path allocates
   nothing: all scratch lives in the caller's arrays, the sorts are
   in-place insertion sorts over total orders, and draws go through
   Prng.Raw.

   The scratch arrays are explicit parameters so the classic
   per-kernel [workspace] and a {!Schema} workspace (whose flat arrays
   are shared across variants and sized to the column's maxima) drive
   the identical code. Capacity beyond [k]'s extents is harmless for
   bit-identity: every array is written before it is read within this
   run's extents ([active] only consulted for fences written this pass,
   [co_pos] set by the coherence sort before the reads pass, [floors]
   and [last_vis] filled to exactly nthreads*nlocs / nlocs, [order] and
   [seq] rebuilt in-range), so stale contents beyond the extents never
   influence a draw or an outcome. *)
let exec_core k ~time ~vis ~active ~post_acquire ~co_pos ~seq ~seq_len ~co ~floors ~last_vis
    ~order ~outcome ~rng ~starts =
  let weak = k.weak and bugs = k.bugs in
  let n = k.n in
  let nthreads = k.nthreads and nlocs = k.nlocs in
  let ev_kind = k.ev_kind
  and ev_loc = k.ev_loc
  and ev_value = k.ev_value
  and ev_reg = k.ev_reg
  and ev_po = k.ev_po
  and ev_thread = k.ev_thread
  and thread_off = k.thread_off in
  let coherent = not (Prng.Raw.bernoulli rng bugs.Bug.p_coherence_alias) in
  (* Flatten: per-thread issue clocks; dropped fences become inactive, as
     do fences whose (possibly Scope_dropped-demoted) scope does not
     reach the other threads under this layout. Draw order mirrors
     Instance.run exactly: fence-drop first, then — only for
     device-scope fences — the demotion draw (skipped entirely when
     p_scope_drop = 0, preserving pre-scope streams). *)
  for tid = 0 to nthreads - 1 do
    let clock = ref starts.(tid) in
    for i = thread_off.(tid) to thread_off.(tid + 1) - 1 do
      time.(i) <- !clock;
      post_acquire.(i) <- false;
      if ev_kind.(i) = k_fence then begin
        let dropped = Prng.Raw.bernoulli rng bugs.Bug.p_fence_drop in
        let dev =
          k.ev_scope.(i) = s_dev && not (Prng.Raw.bernoulli rng bugs.Bug.p_scope_drop)
        in
        active.(i) <- (not dropped) && (dev || k.layout = Scope.Intra)
      end;
      clock :=
        !clock
        +. (weak.Instance.instr_latency_ns
           *. (1. +. (weak.Instance.issue_jitter *. Prng.Raw.float rng 1.)))
    done
  done;
  (* Per-thread sequences, out-of-order window, acquire marking. *)
  for tid = 0 to nthreads - 1 do
    let off = thread_off.(tid) in
    let len = ref 0 in
    for i = off to thread_off.(tid + 1) - 1 do
      if ev_kind.(i) <> k_fence || active.(i) then begin
        seq.(off + !len) <- i;
        incr len
      end
    done;
    seq_len.(tid) <- !len;
    (* Adjacent memory pairs may swap issue times; swaps are disjoint. *)
    let j = ref 0 in
    while !j + 1 < !len do
      let e1 = seq.(off + !j) and e2 = seq.(off + !j + 1) in
      let swapped =
        ev_kind.(e1) <> k_fence
        && ev_kind.(e2) <> k_fence
        &&
        let swap_p =
          if ev_loc.(e1) <> ev_loc.(e2) then weak.Instance.p_ooo
          else if ev_kind.(e1) = k_load && ev_kind.(e2) = k_load then bugs.Bug.p_corr_reorder
          else 0.
        in
        if Prng.Raw.bernoulli rng swap_p then begin
          let t = time.(e1) in
          time.(e1) <- time.(e2);
          time.(e2) <- t;
          true
        end
        else false
      in
      if swapped then j := !j + 2 else incr j
    done;
    (* Loads after an active fence read fresh memory. *)
    let seen_fence = ref false in
    for s = 0 to !len - 1 do
      let e = seq.(off + s) in
      if ev_kind.(e) = k_fence && active.(e) then seen_fence := true
      else if !seen_fence then post_acquire.(e) <- true
    done
  done;
  (* Store visibility: exponential propagation; RMWs publish instantly. *)
  for i = 0 to n - 1 do
    if ev_kind.(i) = k_store then
      vis.(i) <- time.(i) +. Prng.Raw.exponential rng weak.Instance.vis_delay_mean_ns
    else if ev_kind.(i) = k_rmw then vis.(i) <- time.(i)
  done;
  (* Release fences cap earlier stores' visibility at the fence time. *)
  for tid = 0 to nthreads - 1 do
    let off = thread_off.(tid) in
    let len = seq_len.(tid) in
    for a = 0 to len - 1 do
      let f = seq.(off + a) in
      if ev_kind.(f) = k_fence && active.(f) then
        for b = 0 to len - 1 do
          let e = seq.(off + b) in
          if (ev_kind.(e) = k_store || ev_kind.(e) = k_rmw) && ev_po.(e) < ev_po.(f) then
            if time.(f) < vis.(e) then vis.(e) <- time.(f)
        done
    done
  done;
  (* Coherent same-thread same-location stores publish in order. *)
  if coherent then
    for tid = 0 to nthreads - 1 do
      let off = thread_off.(tid) in
      let len = seq_len.(tid) in
      Array.fill last_vis 0 nlocs neg_infinity;
      for s = 0 to len - 1 do
        let e = seq.(off + s) in
        if ev_kind.(e) = k_store || ev_kind.(e) = k_rmw then begin
          let l = ev_loc.(e) in
          if vis.(e) <= last_vis.(l) then vis.(e) <- last_vis.(l) +. 1e-6;
          last_vis.(l) <- vis.(e)
        end
      done
    done;
  (* Coherence order per location = visibility order of its writes. The
     key (vis, time, event index) is the interpreter's
     (vis, time, thread, po) — a total order, so this insertion sort
     yields the same permutation as any other comparison sort. *)
  for l = 0 to nlocs - 1 do
    let dst = co.(l) in
    let m = Array.length dst in
    Array.blit k.loc_writes.(l) 0 dst 0 m;
    for i = 1 to m - 1 do
      let x = dst.(i) in
      let xv = vis.(x) and xt = time.(x) in
      let j = ref (i - 1) in
      let continue = ref true in
      while !continue && !j >= 0 do
        let y = dst.(!j) in
        let after =
          vis.(y) > xv || (vis.(y) = xv && (time.(y) > xt || (time.(y) = xt && y > x)))
        in
        if after then begin
          dst.(!j + 1) <- y;
          decr j
        end
        else continue := false
      done;
      dst.(!j + 1) <- x
    done;
    for i = 0 to m - 1 do
      co_pos.(dst.(i)) <- i
    done
  done;
  (* Global execution order: (issue time, event index) — total order. *)
  for i = 0 to n - 1 do
    order.(i) <- i
  done;
  for i = 1 to n - 1 do
    let x = order.(i) in
    let xt = time.(x) in
    let j = ref (i - 1) in
    let continue = ref true in
    while !continue && !j >= 0 do
      let y = order.(!j) in
      if time.(y) > xt || (time.(y) = xt && y > x) then begin
        order.(!j + 1) <- y;
        decr j
      end
      else continue := false
    done;
    order.(!j + 1) <- x
  done;
  (* Reads, in execution order, with per-thread coherence floors. *)
  Array.fill floors 0 (nthreads * nlocs) (-1);
  let out = outcome in
  for t = 0 to nthreads - 1 do
    let regs = out.Litmus.regs.(t) in
    Array.fill regs 0 (Array.length regs) 0
  done;
  Array.fill out.Litmus.final 0 nlocs 0;
  for oi = 0 to n - 1 do
    let i = order.(oi) in
    let kind = ev_kind.(i) in
    if kind = k_store then begin
      if coherent then begin
        let fi = (ev_thread.(i) * nlocs) + ev_loc.(i) in
        if co_pos.(i) > floors.(fi) then floors.(fi) <- co_pos.(i)
      end
    end
    else if kind = k_load || kind = k_rmw then begin
      let eff =
        if kind = k_rmw || post_acquire.(i) then time.(i)
        else if Prng.Raw.bernoulli rng weak.Instance.p_stale then begin
          let d = time.(i) -. Prng.Raw.exponential rng weak.Instance.stale_mean_ns in
          if d > 0. then d else 0.
        end
        else time.(i)
      in
      let self_pos = if kind = k_rmw then co_pos.(i) else -2 in
      let loc = ev_loc.(i) in
      let writes = co.(loc) in
      (* Reverse early-exit scan for the last visible write. *)
      let pos = ref (-1) in
      let w = ref (Array.length writes - 1) in
      while !pos < 0 && !w >= 0 do
        if !w <> self_pos && vis.(writes.(!w)) <= eff then pos := !w;
        decr w
      done;
      let fi = (ev_thread.(i) * nlocs) + loc in
      let pos = if coherent && floors.(fi) > !pos then floors.(fi) else !pos in
      let value = if pos < 0 then 0 else ev_value.(writes.(pos)) in
      if ev_reg.(i) >= 0 then out.Litmus.regs.(ev_thread.(i)).(ev_reg.(i)) <- value;
      if coherent then begin
        if pos > floors.(fi) then floors.(fi) <- pos;
        if kind = k_rmw && co_pos.(i) > floors.(fi) then floors.(fi) <- co_pos.(i)
      end
    end
  done;
  for l = 0 to nlocs - 1 do
    let writes = co.(l) in
    let m = Array.length writes in
    if m > 0 then out.Litmus.final.(l) <- ev_value.(writes.(m - 1))
  done;
  out

let run_core k ws ~starts =
  if Array.length starts <> k.nthreads then invalid_arg "Kernel.run: starts length mismatch";
  if ws.owner != k then invalid_arg "Kernel.run: workspace belongs to another kernel";
  exec_core k ~time:ws.time ~vis:ws.vis ~active:ws.active ~post_acquire:ws.post_acquire
    ~co_pos:ws.co_pos ~seq:ws.seq ~seq_len:ws.seq_len ~co:ws.co ~floors:ws.floors
    ~last_vis:ws.last_vis ~order:ws.order ~outcome:ws.outcome ~rng:ws.rng ~starts

let run_next k ws ~starts =
  Prng.Raw.split_into ~child:ws.rng ~parent:ws.parent;
  run_core k ws ~starts

let run k ws ~prng ~starts =
  Prng.Raw.load ws.rng prng;
  let out = run_core k ws ~starts in
  Prng.Raw.store ws.rng prng;
  out

(* ------------------------------------------------------------------ *)
(* Mutant schemata: one image for a whole column of variants.          *)

type image = t

module Schema = struct
  type t = { kernels : image array }

  (* One shared scratch pool sized to the column's maxima plus the two
     shapes that must match a variant exactly: [co.(v)] mirrors variant
     v's per-location write tables (exec_core takes its loop bounds from
     the destination's length) and [outcome.(v)] is shaped by variant
     v's thread/register/location counts. *)
  type workspace = {
    owner : t;
    time : float array;
    vis : float array;
    active : bool array;
    post_acquire : bool array;
    co_pos : int array;
    seq : int array;
    seq_len : int array;
    co : int array array array;
    floors : int array;
    last_vis : float array;
    order : int array;
    outcome : Litmus.outcome array;
    parent : Prng.Raw.state;
    rng : Prng.Raw.state;
  }

  let compile ?(layout = Scope.default_layout) ~variants () =
    if Array.length variants = 0 then invalid_arg "Kernel.Schema.compile: no variants";
    let kernels =
      Array.map (fun (weak, bugs, test) -> compile_cached ~layout ~weak ~bugs ~test ()) variants
    in
    { kernels }

  let length s = Array.length s.kernels

  let kernel s variant =
    if variant < 0 || variant >= Array.length s.kernels then
      invalid_arg "Kernel.Schema: variant out of range";
    s.kernels.(variant)

  let workspace s =
    let maxf f = Array.fold_left (fun acc k -> max acc (f k)) 1 s.kernels in
    let n = maxf (fun k -> k.n) in
    let nthreads = maxf (fun k -> k.nthreads) in
    let nlocs = maxf (fun k -> k.nlocs) in
    let cells = maxf (fun k -> k.nthreads * k.nlocs) in
    {
      owner = s;
      time = Array.make n 0.;
      vis = Array.make n 0.;
      active = Array.make n true;
      post_acquire = Array.make n false;
      co_pos = Array.make n (-1);
      seq = Array.make n 0;
      seq_len = Array.make nthreads 0;
      co = Array.map (fun k -> Array.map Array.copy k.loc_writes) s.kernels;
      floors = Array.make cells (-1);
      last_vis = Array.make nlocs neg_infinity;
      order = Array.init n (fun i -> i);
      outcome = Array.map (fun k -> Litmus.empty_outcome k.test) s.kernels;
      parent = Prng.Raw.make ();
      rng = Prng.Raw.make ();
    }

  let set_parent ws prng = Prng.Raw.load ws.parent prng

  let run_core s ws ~variant ~starts =
    if variant < 0 || variant >= Array.length s.kernels then
      invalid_arg "Kernel.Schema: variant out of range";
    if ws.owner != s then invalid_arg "Kernel.run: workspace belongs to another kernel";
    let k = s.kernels.(variant) in
    if Array.length starts <> k.nthreads then invalid_arg "Kernel.run: starts length mismatch";
    exec_core k ~time:ws.time ~vis:ws.vis ~active:ws.active ~post_acquire:ws.post_acquire
      ~co_pos:ws.co_pos ~seq:ws.seq ~seq_len:ws.seq_len ~co:ws.co.(variant) ~floors:ws.floors
      ~last_vis:ws.last_vis ~order:ws.order ~outcome:ws.outcome.(variant) ~rng:ws.rng ~starts

  let run_next s ws ~variant ~starts =
    Prng.Raw.split_into ~child:ws.rng ~parent:ws.parent;
    run_core s ws ~variant ~starts

  let run s ws ~variant ~prng ~starts =
    Prng.Raw.load ws.rng prng;
    let out = run_core s ws ~variant ~starts in
    Prng.Raw.store ws.rng prng;
    out

  let snapshot ws ~variant =
    if variant < 0 || variant >= Array.length ws.outcome then
      invalid_arg "Kernel.Schema: variant out of range";
    let out = ws.outcome.(variant) in
    { Litmus.regs = Array.map Array.copy out.Litmus.regs; final = Array.copy out.Litmus.final }
end
