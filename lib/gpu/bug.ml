type t =
  | Corr_reorder of float
  | Fence_weakened of float
  | Coherence_alias of float
  | Scope_dropped of float

type effect = {
  p_corr_reorder : float;
  p_fence_drop : float;
  p_coherence_alias : float;
  p_scope_drop : float;
}

let none = { p_corr_reorder = 0.; p_fence_drop = 0.; p_coherence_alias = 0.; p_scope_drop = 0. }

(* Independent chances combine as 1 - (1-p)(1-q). *)
let combine p q = 1. -. ((1. -. p) *. (1. -. q))

let effect_of bugs =
  List.fold_left
    (fun acc bug ->
      match bug with
      | Corr_reorder p -> { acc with p_corr_reorder = combine acc.p_corr_reorder p }
      | Fence_weakened p -> { acc with p_fence_drop = combine acc.p_fence_drop p }
      | Coherence_alias p -> { acc with p_coherence_alias = combine acc.p_coherence_alias p }
      | Scope_dropped p -> { acc with p_scope_drop = combine acc.p_scope_drop p })
    none bugs

let paper_bug (p : Profile.t) =
  match p.Profile.vendor with
  | Profile.Intel -> Some (Corr_reorder 0.35)
  | Profile.Amd -> Some (Fence_weakened 0.30)
  | Profile.Nvidia -> Some (Coherence_alias 0.50)
  | Profile.M1 -> None

let describe = function
  | Corr_reorder p ->
      Printf.sprintf "same-location load-load reordering (p=%.2f) — the Intel CoRR bug" p
  | Fence_weakened p ->
      Printf.sprintf "release/acquire fences dropped (p=%.2f) — the AMD MP-relacq bug" p
  | Coherence_alias p ->
      Printf.sprintf "per-location coherence not enforced (p=%.2f) — the Kepler MP-CO bug" p
  | Scope_dropped p ->
      Printf.sprintf
        "device-scope operations demoted to workgroup scope (p=%.2f) — the classic driver scope bug" p
