module Prng = Mcm_util.Prng
module Litmus = Mcm_litmus.Litmus
module Instr = Mcm_litmus.Instr
module Scope = Mcm_memmodel.Scope

type weak_params = {
  instr_latency_ns : float;
  issue_jitter : float;
  p_ooo : float;
  vis_delay_mean_ns : float;
  p_stale : float;
  stale_mean_ns : float;
}

let clamp_prob p = Float.min 0.95 p

let effective_params (p : Profile.t) ~amplification =
  let a = 1. +. Float.max 0. amplification in
  {
    instr_latency_ns = p.Profile.instr_latency_ns;
    issue_jitter = 0.3;
    p_ooo = clamp_prob (p.Profile.ooo_base *. a);
    vis_delay_mean_ns = p.Profile.vis_delay_base_ns *. a;
    p_stale = clamp_prob (p.Profile.stale_prob_base *. a);
    stale_mean_ns = p.Profile.stale_window_ns *. a;
  }

(* One flattened event. [po] is the index within the issuing thread;
   fences carry [active = false] when dropped by Fence_weakened. *)
type ev = {
  thread : int;
  po : int;
  kind : kind;
  loc : int;  (* -1 for fences *)
  value : int;  (* written value, 0 otherwise *)
  reg : int;  (* destination register, -1 otherwise *)
  mutable time : float;
  mutable active : bool;
  mutable vis : float;
  mutable co_pos : int;
  mutable post_acquire : bool;
}

and kind = K_load | K_store | K_rmw | K_fence

let is_mem e = e.kind <> K_fence
let is_write e = e.kind = K_store || e.kind = K_rmw

let run ?(layout = Scope.default_layout) ~prng ~weak ~(bugs : Bug.effect) ~(test : Litmus.t) ~starts
    () =
  let nthreads = Litmus.nthreads test in
  if Array.length starts <> nthreads then invalid_arg "Instance.run: starts length mismatch";
  let coherent = not (Prng.bernoulli prng bugs.Bug.p_coherence_alias) in
  (* Flatten to events with issue timestamps; dropped fences become
     inactive no-ops that neither order accesses nor take time. *)
  let events = ref [] in
  Array.iteri
    (fun tid instrs ->
      let clock = ref starts.(tid) in
      List.iteri
        (fun po instr ->
          let mk kind loc value reg active =
            events :=
              {
                thread = tid;
                po;
                kind;
                loc;
                value;
                reg;
                time = !clock;
                active;
                vis = 0.;
                co_pos = -1;
                post_acquire = false;
              }
              :: !events
          in
          (match instr with
          | Instr.Load { reg; loc; _ } -> mk K_load loc 0 reg true
          | Instr.Store { loc; value; _ } -> mk K_store loc value (-1) true
          | Instr.Rmw { reg; loc; value; _ } -> mk K_rmw loc value reg true
          | Instr.Fence { scope } ->
              (* A fence acts only when it survives Fence_weakened AND its
                 (possibly Scope_dropped-demoted) scope reaches the other
                 threads: device scope always, workgroup scope only when
                 the layout co-locates all threads in one workgroup. With
                 p_scope_drop = 0 the demotion draw is never consumed, so
                 pre-scope draw sequences are reproduced exactly. *)
              let dropped = Prng.bernoulli prng bugs.Bug.p_fence_drop in
              let scope =
                if scope = Scope.Device && Prng.bernoulli prng bugs.Bug.p_scope_drop then
                  Scope.Workgroup
                else scope
              in
              let reaches = scope = Scope.Device || layout = Scope.Intra in
              mk K_fence (-1) 0 (-1) ((not dropped) && reaches));
          clock :=
            !clock +. (weak.instr_latency_ns *. (1. +. (weak.issue_jitter *. Prng.float prng 1.))))
        instrs)
    test.Litmus.threads;
  let events = Array.of_list (List.rev !events) in
  let n = Array.length events in
  (* Per-thread program-order sequences of memory events and active
     fences (dropped fences vanish, so accesses around them become
     adjacent and reorderable). *)
  let per_thread = Array.make nthreads [] in
  for i = n - 1 downto 0 do
    let e = events.(i) in
    if is_mem e || e.active then per_thread.(e.thread) <- e :: per_thread.(e.thread)
  done;
  Array.iter
    (fun seq ->
      (* Out-of-order window: adjacent memory pairs may swap issue times —
         different locations with probability p_ooo, same-location load
         pairs only under the Corr_reorder injection. Active fences are
         part of the sequence, so no access crosses one; and swaps are
         disjoint (after a swap the next pair is skipped), so no two
         same-location accesses can pass each other transitively. *)
      let rec ooo = function
        | e1 :: (e2 :: rest2 as rest) ->
            let swapped =
              is_mem e1 && is_mem e2
              &&
              let swap_p =
                if e1.loc <> e2.loc then weak.p_ooo
                else if e1.kind = K_load && e2.kind = K_load then bugs.Bug.p_corr_reorder
                else 0.
              in
              if Prng.bernoulli prng swap_p then begin
                let t = e1.time in
                e1.time <- e2.time;
                e2.time <- t;
                true
              end
              else false
            in
            if swapped then ooo rest2 else ooo rest
        | [] | [ _ ] -> ()
      in
      ooo seq;
      (* Acquire side: loads program-order after an active fence read
         fresh memory (no staleness). *)
      let seen_fence = ref false in
      List.iter
        (fun e ->
          if e.kind = K_fence && e.active then seen_fence := true
          else if !seen_fence then e.post_acquire <- true)
        seq)
    per_thread;
  (* Store visibility: exponential propagation delay; RMWs publish
     instantly; release fences cap earlier stores' visibility; coherent
     same-thread same-location stores publish in order. *)
  Array.iter
    (fun e ->
      if e.kind = K_store then e.vis <- e.time +. Prng.exponential prng weak.vis_delay_mean_ns
      else if e.kind = K_rmw then e.vis <- e.time)
    events;
  Array.iter
    (fun seq ->
      List.iter
        (fun f ->
          if f.kind = K_fence && f.active then
            List.iter
              (fun e -> if is_write e && e.po < f.po then e.vis <- Float.min e.vis f.time)
              seq)
        seq)
    per_thread;
  if coherent then
    Array.iter
      (fun seq ->
        let last_vis = Hashtbl.create 2 in
        List.iter
          (fun e ->
            if is_write e then begin
              (match Hashtbl.find_opt last_vis e.loc with
              | Some v when e.vis <= v -> e.vis <- v +. 1e-6
              | _ -> ());
              Hashtbl.replace last_vis e.loc e.vis
            end)
          seq)
      per_thread;
  (* Coherence order per location = visibility order of its writes.
     (thread, po) is a final tiebreak so the order is total: exact
     (vis, time) ties — possible only in degenerate configurations —
     resolve to program order instead of sort-algorithm happenstance,
     which is what lets the compiled kernel reproduce this order
     bit-identically with a different sort. *)
  let co = Array.make test.Litmus.nlocs [||] in
  for l = 0 to test.Litmus.nlocs - 1 do
    let writes =
      Array.of_list (List.filter (fun e -> is_write e && e.loc = l) (Array.to_list events))
    in
    Array.sort
      (fun a b -> compare (a.vis, a.time, a.thread, a.po) (b.vis, b.time, b.thread, b.po))
      writes;
    Array.iteri (fun i e -> e.co_pos <- i) writes;
    co.(l) <- writes
  done;
  (* Reads, processed in global execution order with per-thread coherence
     floors (a thread's view of a location never moves backwards in co). *)
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> compare (events.(i).time, i) (events.(j).time, j)) order;
  let floors = Array.make_matrix nthreads test.Litmus.nlocs (-1) in
  let outcome = Litmus.empty_outcome test in
  (* Highest co position visible at [eff]: scan from the co tail and stop
     at the first hit — identical result to a full forward scan, but the
     common case (the latest write is already visible) exits in one
     probe. *)
  let last_visible_pos loc eff ~self_pos =
    let writes = co.(loc) in
    let best = ref (-1) in
    let i = ref (Array.length writes - 1) in
    while !best < 0 && !i >= 0 do
      if !i <> self_pos && writes.(!i).vis <= eff then best := !i;
      decr i
    done;
    !best
  in
  Array.iter
    (fun i ->
      let e = events.(i) in
      match e.kind with
      | K_fence -> ()
      | K_store ->
          if coherent then floors.(e.thread).(e.loc) <- max floors.(e.thread).(e.loc) e.co_pos
      | K_load | K_rmw ->
          let eff =
            if e.kind = K_rmw || e.post_acquire then e.time
            else if Prng.bernoulli prng weak.p_stale then
              Float.max 0. (e.time -. Prng.exponential prng weak.stale_mean_ns)
            else e.time
          in
          let self_pos = if e.kind = K_rmw then e.co_pos else -2 in
          let pos = last_visible_pos e.loc eff ~self_pos in
          let pos = if coherent then max pos floors.(e.thread).(e.loc) else pos in
          let value = if pos < 0 then 0 else (co.(e.loc)).(pos).value in
          if e.reg >= 0 then outcome.Litmus.regs.(e.thread).(e.reg) <- value;
          if coherent then begin
            floors.(e.thread).(e.loc) <- max floors.(e.thread).(e.loc) pos;
            if e.kind = K_rmw then
              floors.(e.thread).(e.loc) <- max floors.(e.thread).(e.loc) e.co_pos
          end)
    order;
  for l = 0 to test.Litmus.nlocs - 1 do
    let writes = co.(l) in
    if Array.length writes > 0 then outcome.Litmus.final.(l) <- writes.(Array.length writes - 1).value
  done;
  outcome
