(** Compile-once, run-many instance kernels.

    {!Instance.run} re-flattens the litmus ADT into freshly allocated
    event records, per-thread lists and hashtables on every instance. A
    campaign executes the {e same} [(test, weak, bugs)] triple millions
    of times, so this module compiles the triple once into a flat
    structure-of-arrays template ({!t}) and runs each instance against a
    reusable per-domain {!workspace} holding all mutable scratch — the
    steady-state per-instance path allocates nothing on the OCaml heap.

    {b Bit-identity contract.} [run] consumes exactly the same PRNG
    draws in exactly the same order as {!Instance.run} and applies the
    same total-order tie-breaks in the coherence/visibility sorts, so
    its outcomes are bit-identical to the interpreter's. The interpreter
    remains the reference implementation; [test/test_kernel.ml] checks
    the equivalence by differential property testing. {!Schema} and
    {!compile_cached} share {e immutable} structural arrays between
    kernels and reuse {e over-sized} scratch between variants; neither
    sharing can influence a draw or an outcome (every scratch array is
    written before it is read within a run's extents), so they inherit
    the same contract, checked by [test/test_schema.ml]. *)

val code_version : int
(** Version of the kernel's compiled form and execution semantics,
    recorded in store cell keys so results computed by different kernel
    generations are content-addressed distinctly. v1 = the original
    compiled kernel; v2 = schema images + cross-cell memoization; v3 =
    scope lane + scope-aware fence semantics. *)

type t
(** A compiled template: int-array event descriptions
    (kind/loc/value/reg/po/thread), per-thread slice offsets into the
    flat event array, and per-location write-index tables — all
    immutable and shareable across domains — plus the scalar
    [weak]/[bugs] parameters of this cell. Kernels produced by
    {!compile_cached} for the same test share one {e image} (the
    structural arrays) and differ only in the scalars. *)

type workspace
(** Mutable per-instance scratch (issue/visibility times, coherence
    positions and orders, floors matrix, order buffer, the reused
    outcome record, PRNG states). One per domain — not thread-safe. *)

val compile :
  ?layout:Mcm_memmodel.Scope.layout ->
  weak:Instance.weak_params ->
  bugs:Bug.effect ->
  test:Mcm_litmus.Litmus.t ->
  unit ->
  t
(** [compile ?layout ~weak ~bugs ~test ()] builds the template from
    scratch. [layout] (default {!Scope.Inter}) is a per-cell scalar like
    [weak]/[bugs]; it governs whether workgroup-scoped fences act (see
    {!Instance.run}). This is the reference path: one fresh image per
    call. Do this once per campaign, not per instance. *)

val compile_cached :
  ?layout:Mcm_memmodel.Scope.layout ->
  weak:Instance.weak_params ->
  bugs:Bug.effect ->
  test:Mcm_litmus.Litmus.t ->
  unit ->
  t
(** Like {!compile}, but memoizes the image (the expensive structural
    flattening and write tables, which depend only on [test]) in a
    bounded domain-local cache keyed by test name + physical identity,
    so cells differing only in environment, layout, mutation scalars or
    bug flags rebind the scalars onto one shared image. Bit-identical to
    {!compile} — the image is immutable. *)

val test : t -> Mcm_litmus.Litmus.t
(** The litmus test the kernel was compiled from. *)

val image_id : t -> int
(** Identity of the kernel's structural image. Kernels with equal
    [image_id] physically share their event arrays and write tables, so
    a workspace sized for one fits the other exactly (see {!adopt}). *)

val workspace : t -> workspace
(** A fresh workspace sized for [t]. Allocate once per domain and reuse
    for every instance that domain executes. *)

val adopt : workspace -> t -> unit
(** [adopt ws k] rebinds [ws] to [k] so it can be reused across cells
    that share an image (e.g. kernels from {!compile_cached} differing
    only in [weak]/[bugs]).

    @raise Invalid_argument if [ws]'s owner has a different
    {!image_id}. *)

val set_parent : workspace -> Mcm_util.Prng.t -> unit
(** [set_parent ws prng] captures [prng]'s current state as the
    iteration-level parent stream that {!run_next} splits children
    from. [prng] itself is not advanced. *)

val run_next : t -> workspace -> starts:float array -> Mcm_litmus.Litmus.outcome
(** [run_next k ws ~starts] splits the next child stream off the parent
    set by {!set_parent} (advancing the stored parent exactly as
    [Instance.run ~prng:(Prng.split parent)] would advance [parent])
    and executes one instance. The returned outcome is [ws]'s reused
    record — copy it with {!snapshot} before the next run if it must
    survive. Allocation-free in steady state. *)

val run :
  t -> workspace -> prng:Mcm_util.Prng.t -> starts:float array -> Mcm_litmus.Litmus.outcome
(** [run k ws ~prng ~starts] is a drop-in for
    [Instance.run ~prng ~weak ~bugs ~test ~starts]: it consumes draws
    directly from [prng] (whose state is synced back afterwards, so
    callers can assert both engines drained identical draws via
    {!Mcm_util.Prng.state}). The returned outcome is [ws]'s reused
    record.

    @raise Invalid_argument if [starts] doesn't match the test's thread
    count or [ws] belongs to a different kernel. *)

val snapshot : workspace -> Mcm_litmus.Litmus.outcome
(** A deep copy of the workspace's current outcome. *)

type image = t
(** Alias for referring to single-variant kernels from inside
    {!Schema}'s signature. *)

val images_built : unit -> int
(** Process-wide count of structural images compiled from scratch (every
    {!compile} call, including {!compile_cached} misses). *)

val image_hits : unit -> int
(** Process-wide count of {!compile_cached} calls answered by a cached
    image. *)

(** Mutant schemata: a conformance test and all of its variants
    (mutants, bug-injection points) compiled into {e one} shared
    structure, each selected at run time by a variant index — one
    compilation pass and one warm workspace per column instead of one
    per cell.

    The schema workspace pools the flat scratch arrays at the column's
    maximum extents and keeps only the shape-exact pieces (per-location
    coherence buffers, the outcome record) per variant, so switching
    variant between runs costs nothing. Running variant [v] through a
    schema consumes the same PRNG draws and produces bit-identical
    outcomes to compiling variant [v] alone with {!compile} and running
    it in its own workspace. *)
module Schema : sig
  type nonrec t
  (** A compiled column of variants. Images are obtained through
      {!compile_cached}, so schemas over overlapping variant sets share
      structural arrays. *)

  type workspace
  (** Shared mutable scratch for the whole column. One per domain — not
      thread-safe. *)

  val compile :
    ?layout:Mcm_memmodel.Scope.layout ->
    variants:(Instance.weak_params * Bug.effect * Mcm_litmus.Litmus.t) array ->
    unit ->
    t
  (** [compile ?layout ~variants ()] compiles every [(weak, bugs, test)]
      variant of the column into one schema; [layout] applies to the
      whole column.

      @raise Invalid_argument if [variants] is empty. *)

  val length : t -> int
  (** Number of variants in the column. *)

  val kernel : t -> int -> image
  (** [kernel s v] is variant [v]'s kernel — the same value a
      {!compile_cached} of that variant would return, usable with the
      top-level [workspace]/[run] API.

      @raise Invalid_argument if [v] is out of range. *)

  val set_parent : workspace -> Mcm_util.Prng.t -> unit
  (** As the top-level {!val:set_parent}: the parent stream is shared by
      all variants, matching a runner that interleaves variants within
      one iteration. *)

  val workspace : t -> workspace
  (** A fresh workspace sized for the column's maxima. *)

  val run_next : t -> workspace -> variant:int -> starts:float array -> Mcm_litmus.Litmus.outcome
  (** As the top-level {!val:run_next}, for the selected variant. *)

  val run :
    t ->
    workspace ->
    variant:int ->
    prng:Mcm_util.Prng.t ->
    starts:float array ->
    Mcm_litmus.Litmus.outcome
  (** As the top-level {!val:run}, for the selected variant: bit-identical
      to running the variant's own {!compile}d kernel.

      @raise Invalid_argument if [variant] is out of range, [starts]
      doesn't match the variant's thread count, or [ws] belongs to a
      different schema. *)

  val snapshot : workspace -> variant:int -> Mcm_litmus.Litmus.outcome
  (** A deep copy of the variant's current outcome. *)
end
