(** Compile-once, run-many instance kernels.

    {!Instance.run} re-flattens the litmus ADT into freshly allocated
    event records, per-thread lists and hashtables on every instance. A
    campaign executes the {e same} [(test, weak, bugs)] triple millions
    of times, so this module compiles the triple once into a flat
    structure-of-arrays template ({!t}) and runs each instance against a
    reusable per-domain {!workspace} holding all mutable scratch — the
    steady-state per-instance path allocates nothing on the OCaml heap.

    {b Bit-identity contract.} [run] consumes exactly the same PRNG
    draws in exactly the same order as {!Instance.run} and applies the
    same total-order tie-breaks in the coherence/visibility sorts, so
    its outcomes are bit-identical to the interpreter's. The interpreter
    remains the reference implementation; [test/test_kernel.ml] checks
    the equivalence by differential property testing. *)

type t
(** An immutable compiled template: int-array event descriptions
    (kind/loc/value/reg/po/thread), per-thread slice offsets into the
    flat event array, and per-location write-index tables. Shareable
    across domains. *)

type workspace
(** Mutable per-instance scratch (issue/visibility times, coherence
    positions and orders, floors matrix, order buffer, the reused
    outcome record, PRNG states). One per domain — not thread-safe. *)

val compile : weak:Instance.weak_params -> bugs:Bug.effect -> test:Mcm_litmus.Litmus.t -> t
(** [compile ~weak ~bugs ~test] builds the template. Do this once per
    campaign, not per instance. *)

val test : t -> Mcm_litmus.Litmus.t
(** The litmus test the kernel was compiled from. *)

val workspace : t -> workspace
(** A fresh workspace sized for [t]. Allocate once per domain and reuse
    for every instance that domain executes. *)

val set_parent : workspace -> Mcm_util.Prng.t -> unit
(** [set_parent ws prng] captures [prng]'s current state as the
    iteration-level parent stream that {!run_next} splits children
    from. [prng] itself is not advanced. *)

val run_next : t -> workspace -> starts:float array -> Mcm_litmus.Litmus.outcome
(** [run_next k ws ~starts] splits the next child stream off the parent
    set by {!set_parent} (advancing the stored parent exactly as
    [Instance.run ~prng:(Prng.split parent)] would advance [parent])
    and executes one instance. The returned outcome is [ws]'s reused
    record — copy it with {!snapshot} before the next run if it must
    survive. Allocation-free in steady state. *)

val run :
  t -> workspace -> prng:Mcm_util.Prng.t -> starts:float array -> Mcm_litmus.Litmus.outcome
(** [run k ws ~prng ~starts] is a drop-in for
    [Instance.run ~prng ~weak ~bugs ~test ~starts]: it consumes draws
    directly from [prng] (whose state is synced back afterwards, so
    callers can assert both engines drained identical draws via
    {!Mcm_util.Prng.state}). The returned outcome is [ws]'s reused
    record.

    @raise Invalid_argument if [starts] doesn't match the test's thread
    count or [ws] belongs to a different kernel. *)

val snapshot : workspace -> Mcm_litmus.Litmus.outcome
(** A deep copy of the workspace's current outcome. *)
