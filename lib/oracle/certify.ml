module Model = Mcm_memmodel.Model
module Litmus = Mcm_litmus.Litmus
module Library = Mcm_litmus.Library
module Classify = Mcm_litmus.Classify
module Suite = Mcm_core.Suite
module Mutator = Mcm_core.Mutator
module Pool = Mcm_util.Pool
module Jsonw = Mcm_util.Jsonw

type verdict = {
  test : string;
  model : Model.t;
  role : string;
  ok : bool;
  detail : string;
}

type report = { verdicts : verdict list; failures : int }

(* Evidence that a disallowed target is *meaningfully* disallowed: some
   candidate exhibits it (so the behaviour is expressible), and every
   such candidate is inconsistent. Returns the forbidden cycle (or
   atomicity violation) of an exhibiting candidate, preferring one whose
   only defect is the cycle. *)
let forbidden_evidence ?layout m t =
  let exhibiting =
    Enumerate.fold ?layout t ~init:[] ~f:(fun acc x ->
        if t.Litmus.target (Litmus.outcome_of_execution t x) then x :: acc else acc)
  in
  match exhibiting with
  | [] -> Error "vacuous: no candidate execution exhibits the target at all"
  | xs -> (
      let atomic = List.filter Model.rmw_atomic xs in
      let pool = if atomic <> [] then atomic else xs in
      match List.filter_map (Model.hb_cycle m) pool with
      | cycle :: _ -> Ok (Printf.sprintf "forbidden hb cycle: %s" cycle)
      | [] -> (
          match List.filter_map Model.atomicity_violation xs with
          | v :: _ -> Ok ("RMW atomicity violation: " ^ v)
          | [] -> Error "exhibiting candidates are neither cyclic nor atomicity-violating"))

let conformance ?engine ?layout t =
  let m = t.Litmus.model in
  let base = { test = t.Litmus.name; model = m; role = "conformance"; ok = false; detail = "" } in
  match Outcome.witness ?engine ?layout m t with
  | Some x ->
      {
        base with
        detail =
          Printf.sprintf "target is ALLOWED under %s (witness: %s) but must be disallowed"
            (Model.name m)
            (Litmus.outcome_to_string (Litmus.outcome_of_execution t x));
      }
  | None -> (
      match forbidden_evidence ?layout m t with
      | Ok evidence -> { base with ok = true; detail = evidence }
      | Error reason -> { base with detail = reason })

let mutant ?engine ?layout ?(role = "mutant") t =
  let m = t.Litmus.model in
  let base = { test = t.Litmus.name; model = m; role; ok = false; detail = "" } in
  match Outcome.witness ?engine ?layout m t with
  | None ->
      {
        base with
        detail =
          Printf.sprintf "target is DISALLOWED under %s but a mutant's target must be allowed"
            (Model.name m);
      }
  | Some x -> (
      (* Non-vacuity: a serial (whole-thread-at-a-time) execution must
         not exhibit the target, or the mutant dies for free. *)
      match List.find_opt t.Litmus.target (Classify.sequential_outcomes t) with
      | Some o ->
          {
            base with
            detail =
              Printf.sprintf "vacuous: serial execution already exhibits the target (%s)"
                (Litmus.outcome_to_string o);
          }
      | None ->
          {
            base with
            ok = true;
            detail =
              Printf.sprintf "allowed; witness: %s"
                (Litmus.outcome_to_string (Litmus.outcome_of_execution t x));
          })

let of_verdicts verdicts =
  { verdicts; failures = List.length (List.filter (fun v -> not v.ok) verdicts) }

(* Shard one verdict function over an input array via the domain pool;
   map_array stores results positionally, so the report order (and hence
   the whole report) is independent of the domain count. *)
let grid ?domains ~f inputs =
  let arr = Array.of_list inputs in
  let verdicts =
    match domains with
    | None | Some 1 -> Array.to_list (Array.init (Array.length arr) (fun i -> f arr.(i)))
    | Some d ->
        Pool.with_pool ~domains:d (fun pool ->
            Array.to_list (Pool.map_array pool ~n:(Array.length arr) ~f:(fun i -> f arr.(i))))
  in
  of_verdicts verdicts

let suite ?engine ?domains () =
  grid ?domains (Suite.all ()) ~f:(fun (e : Suite.entry) ->
      match e.Suite.role with
      | Suite.Conformance -> conformance ?engine e.Suite.test
      | Suite.Mutant_of parent ->
          let v = mutant ?engine ~role:("mutant of " ^ parent) e.Suite.test in
          if v.ok then
            { v with detail = v.detail ^ "; disruption: " ^ Mutator.disruption e.Suite.mutator }
          else v)

let library ?engine ?domains () =
  grid ?domains Library.all ~f:(fun t ->
      match Library.expectation t with
      | Some `Disallowed -> { (conformance ?engine t) with role = "library" }
      | Some `Allowed | None -> (
          let m = t.Litmus.model in
          let base = { test = t.Litmus.name; model = m; role = "library"; ok = false; detail = "" } in
          match Outcome.witness ?engine m t with
          | Some x ->
              {
                base with
                ok = true;
                detail =
                  Printf.sprintf "allowed; witness: %s"
                    (Litmus.outcome_to_string (Litmus.outcome_of_execution t x));
              }
          | None ->
              {
                base with
                detail =
                  Printf.sprintf "target is DISALLOWED under %s but the library documents it allowed"
                    (Model.name m);
              }))

let verdict_to_json v =
  Jsonw.Obj
    [
      ("test", Jsonw.String v.test);
      ("model", Jsonw.String (Model.name v.model));
      ("role", Jsonw.String v.role);
      ("ok", Jsonw.Bool v.ok);
      ("detail", Jsonw.String v.detail);
    ]

let report_to_json r =
  Jsonw.Obj
    [
      ("certified", Jsonw.Int (List.length r.verdicts - r.failures));
      ("failures", Jsonw.Int r.failures);
      ("verdicts", Jsonw.List (List.map verdict_to_json r.verdicts));
    ]

let pp_report fmt r =
  List.iter
    (fun v ->
      if not v.ok then
        Format.fprintf fmt "FAIL %-24s (%s, %s): %s@." v.test v.role (Model.name v.model) v.detail)
    r.verdicts;
  Format.fprintf fmt "%d/%d certificates ok@."
    (List.length r.verdicts - r.failures)
    (List.length r.verdicts)
