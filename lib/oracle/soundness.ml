module Model = Mcm_memmodel.Model
module Litmus = Mcm_litmus.Litmus
module Library = Mcm_litmus.Library
module Classify = Mcm_litmus.Classify
module Suite = Mcm_core.Suite
module Device = Mcm_gpu.Device
module Params = Mcm_testenv.Params
module Runner = Mcm_testenv.Runner
module Request = Mcm_testenv.Request
module Grid = Mcm_harness.Grid
module Jsonw = Mcm_util.Jsonw

type violation = {
  v_test : string;
  v_device : string;
  v_env : string;
  v_outcome : Litmus.outcome;
  v_explanation : string;
}

type point = {
  p_test : string;
  p_model : Model.t;
  p_device : string;
  p_env : string;
  p_instances : int;
  p_distinct : int;
  p_violations : violation list;
}

type report = {
  points : point list;
  sequential_violations : violation list;
  total_instances : int;
  total_violations : int;
}

let default_envs ?(scale = 0.02) () =
  [
    ("site-baseline", Params.site_baseline);
    (Printf.sprintf "pte-baseline@%g" scale, Params.scaled Params.pte_baseline scale);
  ]

let default_tests () =
  let suite = List.map (fun (e : Suite.entry) -> e.Suite.test) (Suite.all ()) in
  let names = List.map (fun t -> t.Litmus.name) suite in
  suite @ List.filter (fun t -> not (List.mem t.Litmus.name names)) Library.all

let explain ?engine ?layout t o =
  match Outcome.counterexample ?engine ?layout t.Litmus.model t o with
  | Some e -> e
  | None -> "(outcome is allowed — explanation requested in error)"

(* The content key identifying a full soundness matrix — the journal's
   sweep identity when a check is resumable. *)
let check_key_resolved ~iterations ~seed ~devices ~envs ~tests =
  Mcm_campaign.Key.of_fields
    [
      ("kind", Jsonw.String "oracle-soundness");
      ("iterations", Jsonw.Int iterations);
      ("seed", Jsonw.Int seed);
      ("devices", Jsonw.List (List.map (fun d -> Jsonw.String (Device.name d)) devices));
      ( "envs",
        Jsonw.List
          (List.map
             (fun (name, env) ->
               Jsonw.Obj [ ("name", Jsonw.String name); ("params", Params.to_json env) ])
             envs) );
      ( "tests",
        Jsonw.List
          (Array.to_list (Array.map (fun t -> Jsonw.String t.Litmus.name) tests)) );
    ]

let check_key ?(iterations = 2) ?(seed = 20230325) ?devices ?envs ?tests () =
  let devices = match devices with Some d -> d | None -> Device.all_correct () in
  let envs = match envs with Some e -> e | None -> default_envs () in
  let tests = match tests with Some t -> t | None -> default_tests () in
  check_key_resolved ~iterations ~seed ~devices ~envs ~tests:(Array.of_list tests)

let check ?engine ?(ctx = Request.serial) ?(iterations = 2) ?(seed = 20230325) ?devices ?envs
    ?tests () =
  let devices = match devices with Some d -> d | None -> Device.all_correct () in
  let envs = match envs with Some e -> e | None -> default_envs () in
  let tests = match tests with Some t -> t | None -> default_tests () in
  let tests = Array.of_list tests in
  (* Each env fixes a thread layout; the oracle must be queried at the
     same layout the engines execute under or scoped fences would make
     its allowed sets inexact (an intra-workgroup run of a
     workgroup-fenced test allows strictly fewer outcomes). *)
  let layouts = List.sort_uniq compare (List.map (fun (_, env) -> Runner.layout_of_env env) envs) in
  let layouts = if layouts = [] then [ Mcm_memmodel.Scope.default_layout ] else layouts in
  (* Stage 1, one task per (test, layout): the allowed set under the
     test's own model, plus the serial-outcome check covering skipped
     instances. Not a campaign cell (no simulation), so it uses the bare
     grid map. *)
  let nlayouts = List.length layouts in
  let layout_arr = Array.of_list layouts in
  let stage1 =
    Grid.map ctx ~n:(Array.length tests * nlayouts) ~f:(fun i ->
        let t = tests.(i / nlayouts) in
        let layout = layout_arr.(i mod nlayouts) in
        let allowed = Outcome.allowed ?engine ~layout t.Litmus.model t in
        let seq_violations =
          List.filter_map
            (fun o ->
              if Outcome.mem allowed o then None
              else
                Some
                  {
                    v_test = t.Litmus.name;
                    v_device = "-";
                    v_env = "-";
                    v_outcome = o;
                    v_explanation = explain ?engine ~layout t o;
                  })
            (List.sort_uniq compare (Classify.sequential_outcomes t))
        in
        (allowed, seq_violations))
  in
  let allowed_for ti layout =
    let rec idx j = if layout_arr.(j) = layout then j else idx (j + 1) in
    fst stage1.((ti * nlayouts) + idx 0)
  in
  let sequential_violations = List.concat_map snd (Array.to_list stage1) in
  (* Stage 2, one task per (test × device × env) grid point. *)
  let grid =
    Array.of_list
      (List.concat
         (List.mapi
            (fun ti _ ->
              List.concat_map
                (fun device -> List.map (fun (env_name, env) -> (ti, device, env_name, env)) envs)
                devices)
            (Array.to_list tests)))
  in
  (* Stage 2's memoized payload is the raw campaign cell — (result,
     observed outcomes) — so cached cells replay the exact observations;
     the violation analysis below reruns on either path. *)
  let request i =
    let ti, device, _env_name, env = grid.(i) in
    Request.make ~device ~env ~test:tests.(ti) ~iterations ~seed ()
  in
  let cells =
    Grid.run ctx
      (Grid.make
         ~sweep:(check_key_resolved ~iterations ~seed ~devices ~envs ~tests)
         Runner.Outcomes ~n:(Array.length grid) ~request)
  in
  let points =
    Array.mapi
      (fun gi (result, observed) ->
        let ti, device, env_name, env = grid.(gi) in
        let t = tests.(ti) in
        let allowed = allowed_for ti (Runner.layout_of_env env) in
        let violations =
          List.filter_map
            (fun o ->
              if Outcome.mem allowed o then None
              else
                Some
                  {
                    v_test = t.Litmus.name;
                    v_device = Device.name device;
                    v_env = env_name;
                    v_outcome = o;
                    v_explanation = explain ?engine ~layout:(Runner.layout_of_env env) t o;
                  })
            observed
        in
        {
          p_test = t.Litmus.name;
          p_model = t.Litmus.model;
          p_device = Device.name device;
          p_env = env_name;
          p_instances = result.Runner.instances;
          p_distinct = List.length observed;
          p_violations = violations;
        })
      cells
  in
  let points = Array.to_list points in
  {
    points;
    sequential_violations;
    total_instances = List.fold_left (fun acc p -> acc + p.p_instances) 0 points;
    total_violations =
      List.fold_left (fun acc p -> acc + List.length p.p_violations) 0 points
      + List.length sequential_violations;
  }

let ok r = r.total_violations = 0

let violation_to_json v =
  Jsonw.Obj
    [
      ("test", Jsonw.String v.v_test);
      ("device", Jsonw.String v.v_device);
      ("env", Jsonw.String v.v_env);
      ("outcome", Outcome.outcome_to_json v.v_outcome);
      ("explanation", Jsonw.String v.v_explanation);
    ]

let report_to_json r =
  Jsonw.Obj
    [
      ("grid_points", Jsonw.Int (List.length r.points));
      ("instances", Jsonw.Int r.total_instances);
      ("violations", Jsonw.Int r.total_violations);
      ( "points",
        Jsonw.List
          (List.map
             (fun p ->
               Jsonw.Obj
                 [
                   ("test", Jsonw.String p.p_test);
                   ("model", Jsonw.String (Model.name p.p_model));
                   ("device", Jsonw.String p.p_device);
                   ("env", Jsonw.String p.p_env);
                   ("instances", Jsonw.Int p.p_instances);
                   ("distinct_outcomes", Jsonw.Int p.p_distinct);
                   ("violations", Jsonw.List (List.map violation_to_json p.p_violations));
                 ])
             r.points) );
      ("sequential_violations", Jsonw.List (List.map violation_to_json r.sequential_violations));
    ]

let pp_violation fmt v =
  Format.fprintf fmt "UNSOUND %s on %s in %s: observed %s@.        %s@." v.v_test v.v_device
    v.v_env
    (Litmus.outcome_to_string v.v_outcome)
    v.v_explanation

let pp_report fmt r =
  List.iter (fun p -> List.iter (pp_violation fmt) p.p_violations) r.points;
  List.iter (pp_violation fmt) r.sequential_violations;
  Format.fprintf fmt "%d grid points, %d instances, %d violations@." (List.length r.points)
    r.total_instances r.total_violations
