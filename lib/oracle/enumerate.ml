module Event = Mcm_memmodel.Event
module Execution = Mcm_memmodel.Execution
module Model = Mcm_memmodel.Model
module Litmus = Mcm_litmus.Litmus

(* The candidate space of a compiled test: which events observe values,
   and which writes each location offers them. Locations are kept as a
   sorted assoc list so the enumeration order is deterministic. *)
type space = {
  events : Event.t array;
  reads : int list;  (* read/RMW event ids, ascending *)
  writes_by_loc : (int * int list) list;  (* per location, write ids in id order *)
}

let space ?layout t =
  let compiled = Litmus.compile ?layout t in
  let events = compiled.Litmus.events in
  let reads = ref [] and by_loc = Hashtbl.create 4 in
  Array.iter
    (fun e ->
      if Event.is_read e then reads := e.Event.id :: !reads;
      if Event.is_write e then
        match Event.loc e with
        | Some l ->
            let cur = try Hashtbl.find by_loc l with Not_found -> [] in
            Hashtbl.replace by_loc l (cur @ [ e.Event.id ])
        | None -> ())
    events;
  {
    events;
    reads = List.rev !reads;
    writes_by_loc = List.sort compare (Hashtbl.fold (fun l ws acc -> (l, ws) :: acc) by_loc []);
  }

(* rf choices of read [r]: the initial state, or any same-location write
   other than the read itself (an RMW cannot read its own write). *)
let rf_choices sp r =
  match Event.loc sp.events.(r) with
  | None -> [ None ]
  | Some l ->
      let ws = try List.assoc l sp.writes_by_loc with Not_found -> [] in
      None :: List.filter_map (fun w -> if w = r then None else Some (Some w)) ws

let fold ?layout t ~init ~f =
  let sp = space ?layout t in
  let n = Array.length sp.events in
  let rf = Array.make n None in
  let acc = ref init in
  (* Depth-first over per-location coherence orders; at the leaves, emit
     one candidate owning fresh rf/co structures. *)
  let rec over_co locs co_acc =
    match locs with
    | [] ->
        acc := f !acc { Execution.events = sp.events; rf = Array.copy rf; co = List.rev co_acc }
    | (l, ws) :: rest ->
        let rec perms chosen remaining =
          if remaining = [] then over_co rest ((l, List.rev chosen) :: co_acc)
          else
            List.iter
              (fun w -> perms (w :: chosen) (List.filter (fun w' -> w' <> w) remaining))
              remaining
        in
        perms [] ws
  in
  let rec over_rf = function
    | [] -> over_co sp.writes_by_loc []
    | r :: rest ->
        List.iter
          (fun c ->
            rf.(r) <- c;
            over_rf rest)
          (rf_choices sp r)
  in
  over_rf sp.reads;
  !acc

let iter ?layout t ~f = fold ?layout t ~init:() ~f:(fun () x -> f x)

let fold_consistent ?layout m t ~init ~f =
  fold ?layout t ~init ~f:(fun acc x -> if Model.consistent m x then f acc x else acc)

let count ?layout t =
  let sp = space ?layout t in
  let factorial k =
    let rec go acc i = if i <= 1 then acc else go (acc * i) (i - 1) in
    go 1 k
  in
  List.fold_left (fun acc r -> acc * List.length (rf_choices sp r)) 1 sp.reads
  * List.fold_left (fun acc (_, ws) -> acc * factorial (List.length ws)) 1 sp.writes_by_loc

let count_consistent ?layout m t = fold_consistent ?layout m t ~init:0 ~f:(fun k _ -> k + 1)
