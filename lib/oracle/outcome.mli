(** Allowed-outcome sets: the oracle's answer for one (model, test) pair.

    Projecting the consistent candidate executions of a litmus test onto
    what a run makes observable — final registers and final memory —
    yields the {e exact} set of outcomes the model allows the test to
    produce. This set is the oracle every consumer checks against: the
    simulator is sound iff every outcome it ever produces is a member
    ({!Soundness}), and a mutant is valid iff its target intersects the
    set while its conformance twin's target does not ({!Certify}).

    Every query takes an [?engine] selector ({!Engine.t}, default
    {!Engine.default}[ = Propagate]). The two engines produce
    bit-identical results — same sets, same witnesses — so the selector
    is purely a cost knob; [Enumerate] stays available as the
    brute-force differential reference. *)

type set
(** A canonical (sorted, duplicate-free) set of outcomes. Two [set]s
    computed in any order — serially or sharded across a domain pool —
    are structurally equal iff they contain the same outcomes. *)

val allowed :
  ?engine:Engine.t ->
  ?layout:Mcm_memmodel.Scope.layout ->
  Mcm_memmodel.Model.t ->
  Mcm_litmus.Litmus.t ->
  set
(** [allowed m t] visits every candidate execution of [t] consistent
    under [m] (through [engine]) and projects them onto outcomes. *)

val allowed_grid :
  ?engine:Engine.t ->
  ?layout:Mcm_memmodel.Scope.layout ->
  ?domains:int ->
  (Mcm_memmodel.Model.t * Mcm_litmus.Litmus.t) list ->
  set list
(** [allowed_grid ~domains points] is [List.map (fun (m, t) -> allowed m t)]
    with the grid points sharded across a {!Mcm_util.Pool} of [domains]
    domains (default: serial). Results are positionally aligned with the
    input and bit-identical for every [domains] value. *)

val elements : set -> Mcm_litmus.Litmus.outcome list
(** The outcomes, in canonical order. *)

val of_outcomes : Mcm_litmus.Litmus.outcome list -> set
(** Canonicalise an arbitrary outcome list (sort, dedup). *)

val size : set -> int
val mem : set -> Mcm_litmus.Litmus.outcome -> bool
val subset : set -> set -> bool
val equal : set -> set -> bool

val target_allowed :
  ?engine:Engine.t ->
  ?layout:Mcm_memmodel.Scope.layout ->
  Mcm_memmodel.Model.t ->
  Mcm_litmus.Litmus.t ->
  bool
(** [target_allowed m t] holds when some consistent candidate under [m]
    exhibits [t]'s target behaviour. Short-circuits at the first
    witness rather than building the full set. *)

val witness :
  ?engine:Engine.t ->
  ?layout:Mcm_memmodel.Scope.layout ->
  Mcm_memmodel.Model.t ->
  Mcm_litmus.Litmus.t ->
  Mcm_memmodel.Execution.t option
(** [witness m t] is a consistent candidate exhibiting the target, when
    one exists — the evidence attached to "allowed" certificates. Both
    engines visit consistent candidates in the same order, so the
    returned witness is engine-independent. *)

val counterexample :
  ?engine:Engine.t ->
  ?layout:Mcm_memmodel.Scope.layout ->
  Mcm_memmodel.Model.t ->
  Mcm_litmus.Litmus.t ->
  Mcm_litmus.Litmus.outcome ->
  string option
(** [counterexample m t o] explains why outcome [o] is {e not} allowed
    under [m]: the happens-before cycle (via {!Mcm_memmodel.Model.hb_cycle})
    or RMW-atomicity violation of a candidate producing [o] — preferring
    a candidate whose only defect is the cycle — or a note that no
    rf/co assignment produces [o] at all. [None] when [o] is allowed. *)

val outcome_to_json : Mcm_litmus.Litmus.outcome -> Mcm_util.Jsonw.t
(** One outcome as [{"regs": [[...]], "final": [...]}]. *)

val to_json : set -> Mcm_util.Jsonw.t
(** The set as a JSON list of {!outcome_to_json} objects. *)

val pp : Format.formatter -> set -> unit
(** One outcome per line, rendered by {!Mcm_litmus.Litmus.outcome_to_string}. *)
