type t = Enumerate | Propagate

let all = [ Enumerate; Propagate ]
let default = Propagate
let name = function Enumerate -> "enumerate" | Propagate -> "propagate"

let of_string s =
  match String.lowercase_ascii s with
  | "enumerate" | "brute" | "brute-force" -> Some Enumerate
  | "propagate" | "propagation" | "prune" -> Some Propagate
  | _ -> None

let fold_consistent ?layout engine m t ~init ~f =
  match engine with
  | Enumerate -> Enumerate.fold_consistent ?layout m t ~init ~f
  | Propagate -> Propagate.fold_consistent ?layout m t ~init ~f

let iter_consistent ?layout engine m t ~f =
  match engine with
  | Enumerate ->
      Enumerate.iter ?layout t ~f:(fun x -> if Mcm_memmodel.Model.consistent m x then f x)
  | Propagate -> Propagate.iter_consistent ?layout m t ~f

let count_consistent ?layout engine m t =
  match engine with
  | Enumerate -> Enumerate.count_consistent ?layout m t
  | Propagate -> Propagate.count_consistent ?layout m t
