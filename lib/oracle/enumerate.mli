(** The oracle's candidate-execution enumerator.

    The axiomatic oracle needs to walk {e every} candidate execution of a
    litmus test — every reads-from assignment (including reads from the
    zero-initialised initial state) crossed with every per-location
    coherence order — and filter it through a consistency predicate.
    {!Mcm_litmus.Enumerate.candidates} materialises that whole set as a
    list; this module is the streaming replacement the oracle is built
    on: depth-first generation with a fold, so nothing is retained
    beyond the accumulator and candidate spaces in the hundreds of
    thousands stay flat in memory.

    Every entry point takes [?layout] (default
    {!Mcm_memmodel.Scope.Inter}), the workgroup layout the test is
    compiled under; it decides which fence pairs can synchronise when
    fences carry workgroup scope.

    Candidate counts are exactly
    [Π_reads (1 + same-location writes other than the read itself)
     × Π_locations (writes to the location)!]
    — {!count} computes this product analytically, without enumerating.

    Each execution handed to [f] owns its [rf] array and [co] list, so
    consumers may retain it (e.g. as a witness) without aliasing the
    enumerator's scratch state. *)

(** The candidate space of a compiled test: which events choose rf
    sources, and which writes each location offers them. This record is
    the {e shared decision tree} of both oracle engines: {!Propagate}
    builds it through the same functions, so its pruned search visits
    the surviving leaves in exactly the order {!fold} visits them —
    which is what makes the two engines' witness choices (not just their
    outcome sets) bit-identical. *)
type space = {
  events : Mcm_memmodel.Event.t array;
  reads : int list;  (** read/RMW event ids, ascending *)
  writes_by_loc : (int * int list) list;
      (** per location (ascending), write ids in id order *)
}

val space : ?layout:Mcm_memmodel.Scope.layout -> Mcm_litmus.Litmus.t -> space
(** [space t] compiles [t] and lays out its candidate space. *)

val rf_choices : space -> int -> int option list
(** [rf_choices sp r] is read [r]'s choice list, in decision order: the
    initial state first ([None]), then every same-location write other
    than [r] itself in id order (an RMW cannot read its own write). *)

val fold :
  ?layout:Mcm_memmodel.Scope.layout ->
  Mcm_litmus.Litmus.t ->
  init:'a ->
  f:('a -> Mcm_memmodel.Execution.t -> 'a) ->
  'a
(** [fold t ~init ~f] folds [f] over every candidate execution of [t],
    in a fixed deterministic order. Consistency is {e not} filtered. *)

val iter :
  ?layout:Mcm_memmodel.Scope.layout ->
  Mcm_litmus.Litmus.t ->
  f:(Mcm_memmodel.Execution.t -> unit) ->
  unit
(** [iter t ~f] is [fold] ignoring the accumulator. Exceptions raised by
    [f] escape, which is how {!Outcome.witness} exits early. *)

val fold_consistent :
  ?layout:Mcm_memmodel.Scope.layout ->
  Mcm_memmodel.Model.t ->
  Mcm_litmus.Litmus.t ->
  init:'a ->
  f:('a -> Mcm_memmodel.Execution.t -> 'a) ->
  'a
(** [fold_consistent m t] restricts {!fold} to the candidates consistent
    under [m] — the executions the platform is allowed to produce. *)

val count : ?layout:Mcm_memmodel.Scope.layout -> Mcm_litmus.Litmus.t -> int
(** [count t] is the size of [t]'s candidate space, computed from the
    choice product without enumerating. Agrees with counting via
    {!fold}. *)

val count_consistent :
  ?layout:Mcm_memmodel.Scope.layout -> Mcm_memmodel.Model.t -> Mcm_litmus.Litmus.t -> int
(** [count_consistent m t] enumerates and counts the candidates
    consistent under [m]. *)
