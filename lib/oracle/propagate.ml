module Event = Mcm_memmodel.Event
module Execution = Mcm_memmodel.Execution
module Relation = Mcm_memmodel.Relation
module Model = Mcm_memmodel.Model
module Litmus = Mcm_litmus.Litmus
module Scope = Mcm_memmodel.Scope
module Closure = Relation.Closure

type stats = { explored : int; pruned : int; consistent : int }

(* The engine walks the same decision tree as Enumerate — rf choices for
   the reads in ascending id order, then per-location coherence
   permutations — but carries an incrementally closed happens-before
   relation and cuts a subtree the moment a definite edge closes a
   cycle or a coherence slot an RMW needs is taken.

   Soundness of every pruning step rests on one invariant: each edge
   added at a partial assignment is present in hb of EVERY completion of
   that assignment (po/po-loc are fixed; rf, co-chain, fr and po;sw;po
   edges only ever accumulate as choices are made). A cycle among
   definite edges is therefore a cycle in every completion, and the
   subtree contains no consistent execution.

   Completeness at the leaves: the accumulated edges span exactly the
   transitive closure of Model.hb (the co chain generates all co pairs;
   every fr pair is added when its target write is placed after the
   read's already-placed source, or up front for initial-state reads),
   and the placement checks enforce precisely Model.rmw_atomic. So a
   leaf is reached iff Model.consistent holds — no final check is
   needed, and the surviving leaves stream in exactly the order
   Enumerate.fold_consistent produces them. *)

let search ?layout m t ~on_leaf =
  let sp = Enumerate.space ?layout t in
  let events = sp.Enumerate.events in
  let n = Array.length events in
  let po, po_loc = Execution.static_po events in
  let base = match Model.hb_base m with `Po -> po | `Po_loc -> po_loc in
  let root =
    match Closure.of_relation base with
    | Some c -> c
    | None -> invalid_arg "Propagate: program order is cyclic"
  in
  let writes_of l = try List.assoc l sp.Enumerate.writes_by_loc with Not_found -> [] in
  let readers_of =
    let tbl = Hashtbl.create 4 in
    List.iter
      (fun r ->
        match Event.loc events.(r) with
        | Some l -> Hashtbl.replace tbl l (Hashtbl.find_opt tbl l |> Option.value ~default:[] |> fun rs -> rs @ [ r ])
        | None -> ())
      sp.Enumerate.reads;
    fun l -> Option.value ~default:[] (Hashtbl.find_opt tbl l)
  in
  let rmws_of l = List.filter (fun w -> Event.is_rmw events.(w)) (writes_of l) in
  (* Same-location RMWs assigned before [r] in the rf stage: two of them
     choosing the same source can never both sit immediately after it in
     co, so the conflict prunes at assignment time. *)
  let earlier_rmws r =
    match Event.loc events.(r) with
    | None -> []
    | Some l -> List.filter (fun r' -> r' < r) (rmws_of l)
  in
  (* Release/acquire synchronisation: assigning rf(r) = Some w activates
     sw(f_r, f_a) for every fence pair with po(f_r, w) and po(r, f_a) in
     distinct threads, contributing the po;sw;po edges precomputed
     here. Monotone in the rf choices, hence safe to add eagerly. *)
  let sw_triggers =
    if not (Model.hb_includes_sw m) then [||]
    else begin
      let triggers = Array.make (n * n) [] in
      for f_r = 0 to n - 1 do
        if Event.is_fence events.(f_r) then
          for f_a = 0 to n - 1 do
            let er = events.(f_r) and ea = events.(f_a) in
            if
              Event.is_fence ea
              && er.Event.tid <> ea.Event.tid
              && Scope.covers er.Event.scope ~own:er.Event.wg ~other:ea.Event.wg
              && Scope.covers ea.Event.scope ~own:ea.Event.wg ~other:er.Event.wg
            then begin
              let posw = ref [] in
              for a = 0 to n - 1 do
                if Relation.mem po a f_r then
                  for c = 0 to n - 1 do
                    if Relation.mem po f_a c then posw := (a, c) :: !posw
                  done
              done;
              if !posw <> [] then
                for w = 0 to n - 1 do
                  if Relation.mem po f_r w && Event.is_write events.(w) then
                    for r = 0 to n - 1 do
                      if Relation.mem po r f_a && Event.is_read events.(r) then
                        triggers.((w * n) + r) <- !posw @ triggers.((w * n) + r)
                    done
                done
            end
          done
      done;
      Array.map (List.sort_uniq compare) triggers
    end
  in
  let rf = Array.make n None in
  let explored = ref 0 and pruned = ref 0 and consistent = ref 0 in
  let apply_rf cl r choice =
    (not (Event.is_rmw events.(r) && List.exists (fun r' -> rf.(r') = choice) (earlier_rmws r)))
    &&
    match choice with
    | Some w ->
        Closure.add cl w r
        && (Array.length sw_triggers = 0
           || List.for_all (fun (a, c) -> Closure.add cl a c) sw_triggers.((w * n) + r))
    | None -> (
        (* An initial-state read is fr-before every write to its
           location, whatever co turns out to be. *)
        match Event.loc events.(r) with
        | None -> true
        | Some l -> List.for_all (fun w' -> w' = r || Closure.add cl r w') (writes_of l))
  in
  (* Placing write [w] next in location [l]'s coherence order, after the
     (reversed) prefix [chosen]. Fails when the slot belongs to an RMW
     reading from the current tail, when [w] is an RMW that must sit
     elsewhere, or when a co/fr edge closes a cycle. *)
  let place cl l chosen w =
    let expected_src = match chosen with [] -> None | last :: _ -> Some last in
    (not (List.exists (fun m' -> m' <> w && rf.(m') = expected_src) (rmws_of l)))
    && (not (Event.is_rmw events.(w)) || rf.(w) = expected_src)
    && (match chosen with [] -> true | last :: _ -> Closure.add cl last w)
    && List.for_all
         (fun r ->
           r = w
           ||
           match rf.(r) with
           | Some s when List.mem s chosen -> Closure.add cl r w
           | _ -> true)
         (readers_of l)
  in
  let emit co_acc =
    incr consistent;
    on_leaf { Execution.events; rf = Array.copy rf; co = List.rev co_acc }
  in
  let rec over_co locs co_acc cl =
    match locs with
    | [] -> emit co_acc
    | (l, ws) :: rest ->
        let rec perms chosen remaining cl =
          if remaining = [] then over_co rest ((l, List.rev chosen) :: co_acc) cl
          else
            List.iter
              (fun w ->
                incr explored;
                let cl' = Closure.copy cl in
                if place cl' l chosen w then
                  perms (w :: chosen) (List.filter (fun w' -> w' <> w) remaining) cl'
                else incr pruned)
              remaining
        in
        perms [] ws cl
  and over_rf reads cl =
    match reads with
    | [] -> over_co sp.Enumerate.writes_by_loc [] cl
    | r :: rest ->
        List.iter
          (fun choice ->
            incr explored;
            rf.(r) <- choice;
            let cl' = Closure.copy cl in
            if apply_rf cl' r choice then over_rf rest cl' else incr pruned)
          (Enumerate.rf_choices sp r)
  in
  over_rf sp.Enumerate.reads root;
  { explored = !explored; pruned = !pruned; consistent = !consistent }

let fold_consistent ?layout m t ~init ~f =
  let acc = ref init in
  let (_ : stats) = search ?layout m t ~on_leaf:(fun x -> acc := f !acc x) in
  !acc

let iter_consistent ?layout m t ~f =
  let (_ : stats) = search ?layout m t ~on_leaf:f in
  ()

let count_consistent ?layout m t =
  (* The walk itself counts leaves; no execution needs retaining. *)
  (search ?layout m t ~on_leaf:ignore).consistent

let stats ?layout m t = search ?layout m t ~on_leaf:ignore
