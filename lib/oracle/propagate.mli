(** The constraint-propagation oracle engine.

    {!Enumerate} certifies by brute force: materialise every reads-from
    assignment × coherence permutation, then filter through
    {!Mcm_memmodel.Model.consistent}. Its cost is the full candidate
    product, which explodes with threads × instructions. This engine
    walks the {e same} decision tree — rf choices for the reads in id
    order, then per-location coherence permutations, through the shared
    {!Enumerate.space} — but interleaves generation with incremental
    consistency checking: after every choice it propagates the
    happens-before edges that choice makes definite (rf, the coherence
    chain, from-read edges whose source is settled, release/acquire
    [po;sw;po] edges) into a transitively closed reachability structure
    ({!Mcm_memmodel.Relation.Closure}), and prunes the entire subtree
    the moment a cycle closes or an RMW's coherence slot is taken.

    {b Pruning invariant}: every edge propagated at a partial assignment
    belongs to the happens-before relation of {e every} completion of
    that assignment, so a pruned subtree contains no consistent
    execution; and at a leaf the propagated edges span exactly the
    transitive closure of [Model.hb] while the placement checks enforce
    exactly [Model.rmw_atomic]. Hence the leaves reached are precisely
    the consistent candidates, {e in the order} {!Enumerate.fold} visits
    them — outcome sets, witness choices and fold orders are
    bit-identical to the brute-force engine, which stays available as
    the differential reference. *)

type stats = {
  explored : int;  (** decision-tree nodes visited (rf choices + placements) *)
  pruned : int;  (** subtrees cut by constraint propagation *)
  consistent : int;  (** consistent executions reached *)
}

val fold_consistent :
  ?layout:Mcm_memmodel.Scope.layout ->
  Mcm_memmodel.Model.t ->
  Mcm_litmus.Litmus.t ->
  init:'a ->
  f:('a -> Mcm_memmodel.Execution.t -> 'a) ->
  'a
(** [fold_consistent m t] folds over exactly the candidates consistent
    under [m], in {!Enumerate.fold}'s order. Each execution handed to
    [f] owns its [rf]/[co] structures and may be retained. Agrees with
    {!Enumerate.fold_consistent} execution-for-execution. *)

val iter_consistent :
  ?layout:Mcm_memmodel.Scope.layout ->
  Mcm_memmodel.Model.t ->
  Mcm_litmus.Litmus.t ->
  f:(Mcm_memmodel.Execution.t -> unit) ->
  unit
(** [iter_consistent m t] is {!fold_consistent} ignoring the
    accumulator. Exceptions raised by [f] escape, which is how
    {!Outcome.witness} exits at the first hit. *)

val count_consistent :
  ?layout:Mcm_memmodel.Scope.layout -> Mcm_memmodel.Model.t -> Mcm_litmus.Litmus.t -> int
(** [count_consistent m t] counts the consistent candidates without
    materialising them. Agrees with {!Enumerate.count_consistent}. *)

val stats :
  ?layout:Mcm_memmodel.Scope.layout -> Mcm_memmodel.Model.t -> Mcm_litmus.Litmus.t -> stats
(** [stats m t] runs the search and reports how much of the candidate
    space was actually visited — the pruning factor
    [Enumerate.count t / explored] is the engine's asymptotic win. *)
