(** Simulator soundness: every observed outcome must be axiomatically allowed.

    The operational GPU simulator ({!Mcm_gpu.Instance}, driven by
    {!Mcm_testenv.Runner}) is the stand-in for real hardware, so the
    whole evaluation silently assumes it never produces an execution the
    test's memory consistency specification forbids. This module turns
    that assumption into a checked property: replay testing campaigns
    across a matrix of device profiles and environment parameters,
    collect every outcome any executed instance produced, and assert
    membership in the oracle's allowed-outcome set for the test's model.
    A violation is reported with a counter-example trace — the forbidden
    happens-before cycle (or RMW-atomicity violation) of a candidate
    execution producing that outcome.

    Two coverage notes. Instances skipped by the runner's weak-memory
    horizon are sequential by construction; {!check} covers them by
    separately asserting every whole-thread-at-a-time serial outcome is
    allowed. And the check is expected to {e fail} on a device carrying
    a {!Mcm_gpu.Bug} injection — that is how the checker itself is
    tested. *)

type violation = {
  v_test : string;
  v_device : string;
  v_env : string;
  v_outcome : Mcm_litmus.Litmus.outcome;
  v_explanation : string;  (** counter-example trace, via {!Outcome.counterexample} *)
}

(** One grid point: a campaign of [test] on [device] in [env]. *)
type point = {
  p_test : string;
  p_model : Mcm_memmodel.Model.t;
  p_device : string;
  p_env : string;
  p_instances : int;  (** instances executed or skipped in the campaign *)
  p_distinct : int;  (** distinct outcomes observed *)
  p_violations : violation list;  (** observed outcomes outside the allowed set *)
}

type report = {
  points : point list;
  sequential_violations : violation list;
      (** serial outcomes outside a test's allowed set — covers instances
          the runner skips as non-overlapping (their [v_device]/[v_env]
          are ["-"]) *)
  total_instances : int;
  total_violations : int;  (** grid violations plus sequential violations *)
}

val default_envs : ?scale:float -> unit -> (string * Mcm_testenv.Params.t) list
(** The default environment axis: the SITE baseline and the PTE baseline
    scaled by [scale] (default [0.02], the bench/test scale). *)

val default_tests : unit -> Mcm_litmus.Litmus.t list
(** The full shipped library: every generated suite entry (conformance
    tests and mutants) plus every classic library test not shadowed by a
    suite test of the same name. *)

val check_key :
  ?iterations:int ->
  ?seed:int ->
  ?devices:Mcm_gpu.Device.t list ->
  ?envs:(string * Mcm_testenv.Params.t) list ->
  ?tests:Mcm_litmus.Litmus.t list ->
  unit ->
  Mcm_campaign.Key.t
(** The content key identifying a full soundness matrix (defaults match
    {!check}). This is the sweep identity a {!Mcm_campaign.Journal}
    records, letting a CLI validate that [--resume] targets the same
    check before re-entering it. *)

val check :
  ?engine:Engine.t ->
  ?ctx:Mcm_testenv.Request.ctx ->
  ?iterations:int ->
  ?seed:int ->
  ?devices:Mcm_gpu.Device.t list ->
  ?envs:(string * Mcm_testenv.Params.t) list ->
  ?tests:Mcm_litmus.Litmus.t list ->
  unit ->
  report
(** [check ()] runs the full soundness matrix: for every test, compute
    the allowed-outcome set under the test's own model and check the
    serial outcomes; then for every (test × device × env) grid point run
    a campaign of [iterations] kernel launches (default 2, seed default
    20230325) under the [Mcm_testenv.Runner.Outcomes] collector and
    check every observed outcome. [engine] selects the oracle engine
    behind the allowed sets and counter-example membership checks
    (default {!Engine.default}); reports are engine-independent, so
    {!check_key} deliberately excludes it — cached shards are shared
    across engines. Devices default to the four correct
    study profiles. Both stages run as [Mcm_harness.Grid]s under [ctx]
    (default serial): [ctx.domains] fans the grid out — one domain task
    per grid point — with a bit-identical report for every value;
    [ctx.store] memoizes the grid campaigns through
    {!Mcm_campaign.Sched} (the stored payload is each campaign's raw
    observation set, so violation analysis always reruns against the
    current oracle); [ctx.journal] (with a store) checkpoints progress
    under {!check_key} so a killed check resumes without replaying
    completed shards. *)

val ok : report -> bool
(** [ok r] holds when the report carries no violation. *)

val report_to_json : report -> Mcm_util.Jsonw.t
val pp_report : Format.formatter -> report -> unit
(** Prints every violation with its counter-example trace, then a
    one-line summary. *)
