(** Mutant-validity certification.

    The mutation-testing methodology silently assumes two things about
    every generated test: a conformance test's target really is
    {e disallowed} under its MCS (observing it is a definite violation),
    and a mutant's target really is {e allowed} (a correct platform may
    produce it, so a good testing environment should). This module
    re-proves both by independent exhaustive enumeration — it shares no
    code path with the {!Mcm_core.Template} derivation that produced the
    targets — and rejects {e vacuous} mutants whose target a purely
    serial execution could exhibit (such a target would "die" without
    any scheduling or weak-memory interaction, certifying nothing).

    Every certificate carries evidence: a consistent witness execution's
    outcome for "allowed", a forbidden happens-before cycle (or RMW
    atomicity violation) for "disallowed".

    The [?engine] selector ({!Engine.t}, default [Propagate]) picks the
    consistent-execution engine behind the witness searches; verdicts
    are engine-independent because the engines agree candidate-for-
    candidate. The vacuity and forbidden-cycle evidence scans always run
    on the brute-force enumeration — they need {e inconsistent}
    candidates, which {!Propagate} prunes by design. *)

type verdict = {
  test : string;  (** test name *)
  model : Mcm_memmodel.Model.t;  (** the MCS certified against *)
  role : string;  (** ["conformance"], ["mutant of X"] or ["library"] *)
  ok : bool;
  detail : string;  (** evidence, or the reason for failure *)
}

type report = {
  verdicts : verdict list;  (** one per certified test, input order *)
  failures : int;  (** number of verdicts with [ok = false] *)
}

val conformance :
  ?engine:Engine.t -> ?layout:Mcm_memmodel.Scope.layout -> Mcm_litmus.Litmus.t -> verdict
(** [conformance t] certifies that [t]'s target is disallowed under
    [t.model] and non-vacuous (some candidate execution — necessarily
    inconsistent — exhibits it). Evidence: the forbidden cycle. *)

val mutant :
  ?engine:Engine.t ->
  ?layout:Mcm_memmodel.Scope.layout ->
  ?role:string ->
  Mcm_litmus.Litmus.t ->
  verdict
(** [mutant t] certifies that [t]'s target is allowed under [t.model]
    (evidence: a witness outcome) and non-vacuous: no whole-thread-
    at-a-time serial execution exhibits it, so killing the mutant
    requires genuine interleaving or weak-memory behaviour. *)

val suite : ?engine:Engine.t -> ?domains:int -> unit -> report
(** [suite ()] certifies the entire generated suite
    ({!Mcm_core.Suite.all}): every conformance test via {!conformance},
    every mutant via {!mutant} — proving each mutator product flips its
    targeted behaviour from disallowed (edge intact) to allowed (edge
    disrupted, see {!Mcm_core.Mutator.disruption}). [domains] shards
    the per-test work across a {!Mcm_util.Pool}; the report is
    bit-identical for every value. *)

val library : ?engine:Engine.t -> ?domains:int -> unit -> report
(** [library ()] certifies every hand-written classic test against its
    documented status ({!Mcm_litmus.Library.expectation}): enumeration
    must find the target allowed (with witness) or disallowed (with
    cycle) exactly as the library claims. *)

val report_to_json : report -> Mcm_util.Jsonw.t
val pp_report : Format.formatter -> report -> unit
(** Prints failing verdicts in full and a one-line summary. *)
