module Model = Mcm_memmodel.Model
module Execution = Mcm_memmodel.Execution
module Litmus = Mcm_litmus.Litmus
module Pool = Mcm_util.Pool
module Jsonw = Mcm_util.Jsonw

type set = Litmus.outcome list (* sorted with [compare], duplicate-free *)

let of_outcomes l = List.sort_uniq compare l
let elements s = s
let size = List.length
let mem s o = List.mem o s
let subset a b = List.for_all (fun o -> mem b o) a
let equal (a : set) (b : set) = a = b

let allowed ?(engine = Engine.default) ?layout m t =
  Engine.fold_consistent ?layout engine m t ~init:[] ~f:(fun acc x ->
      Litmus.outcome_of_execution t x :: acc)
  |> of_outcomes

let allowed_grid ?(engine = Engine.default) ?layout ?domains points =
  let arr = Array.of_list points in
  let compute i =
    let m, t = arr.(i) in
    allowed ~engine ?layout m t
  in
  match domains with
  | None | Some 1 -> List.init (Array.length arr) compute
  | Some d ->
      Pool.with_pool ~domains:d (fun pool ->
          Array.to_list (Pool.map_array pool ~n:(Array.length arr) ~f:compute))

exception Found of Execution.t

let witness ?(engine = Engine.default) ?layout m t =
  match
    Engine.iter_consistent ?layout engine m t ~f:(fun x ->
        if t.Litmus.target (Litmus.outcome_of_execution t x) then raise (Found x))
  with
  | () -> None
  | exception Found x -> Some x

let target_allowed ?engine ?layout m t = witness ?engine ?layout m t <> None

let counterexample ?engine ?layout m t o =
  if mem (allowed ?engine ?layout m t) o then None
  else
    let producing =
      Enumerate.fold ?layout t ~init:[] ~f:(fun acc x ->
          if Litmus.outcome_of_execution t x = o then x :: acc else acc)
    in
    match producing with
    | [] ->
        Some
          (Printf.sprintf "outcome %s is outside the candidate space: no rf/co assignment produces it"
             (Litmus.outcome_to_string o))
    | xs -> (
        (* Prefer a candidate whose only defect is the hb cycle, so the
           report shows the interesting violation. *)
        let atomic = List.filter Model.rmw_atomic xs in
        let pool = if atomic <> [] then atomic else xs in
        match List.filter_map (Model.hb_cycle m) pool with
        | cycle :: _ ->
            Some (Printf.sprintf "forbidden %s happens-before cycle: %s" (Model.name m) cycle)
        | [] -> (
            match List.filter_map Model.atomicity_violation xs with
            | v :: _ -> Some ("RMW atomicity violation: " ^ v)
            | [] -> Some "inconsistent, but no cycle or atomicity violation found (oracle bug?)"))

let outcome_to_json (o : Litmus.outcome) =
  Jsonw.Obj
    [
      ( "regs",
        Jsonw.List
          (Array.to_list
             (Array.map
                (fun regs -> Jsonw.List (Array.to_list (Array.map (fun v -> Jsonw.Int v) regs)))
                o.Litmus.regs)) );
      ("final", Jsonw.List (Array.to_list (Array.map (fun v -> Jsonw.Int v) o.Litmus.final)));
      ("pretty", Jsonw.String (Litmus.outcome_to_string o));
    ]

let to_json s = Jsonw.List (List.map outcome_to_json s)

let pp fmt s =
  List.iter (fun o -> Format.fprintf fmt "%s@." (Litmus.outcome_to_string o)) s
