(** Oracle engine selection.

    The oracle has two interchangeable engines over the same candidate
    space: {!Enumerate}, the brute-force reference that visits every
    candidate and filters through [Model.consistent], and {!Propagate},
    the constraint-propagation engine that prunes inconsistent subtrees
    as choices are made. Both produce bit-identical consistent-execution
    streams (same executions, same order — see {!Propagate}), so engine
    choice is purely a cost decision; {!Outcome}, {!Certify} and
    {!Soundness} default to [Propagate] and keep [Enumerate] available
    as the always-on differential reference. *)

type t = Enumerate | Propagate

val all : t list
val default : t
(** [Propagate]. *)

val name : t -> string
(** ["enumerate"] / ["propagate"] — the CLI and JSON spelling. *)

val of_string : string -> t option
(** Parses [name] output (case-insensitive); also accepts the aliases
    ["brute"], ["brute-force"], ["propagation"], ["prune"]. *)

val fold_consistent :
  ?layout:Mcm_memmodel.Scope.layout ->
  t ->
  Mcm_memmodel.Model.t ->
  Mcm_litmus.Litmus.t ->
  init:'a ->
  f:('a -> Mcm_memmodel.Execution.t -> 'a) ->
  'a
(** Dispatches to the selected engine's consistent fold. *)

val iter_consistent :
  ?layout:Mcm_memmodel.Scope.layout ->
  t ->
  Mcm_memmodel.Model.t ->
  Mcm_litmus.Litmus.t ->
  f:(Mcm_memmodel.Execution.t -> unit) ->
  unit
(** Dispatches to the selected engine's consistent iteration; exceptions
    raised by [f] escape (used for first-witness early exit). *)

val count_consistent :
  ?layout:Mcm_memmodel.Scope.layout -> t -> Mcm_memmodel.Model.t -> Mcm_litmus.Litmus.t -> int
(** Dispatches to the selected engine's consistent count. *)
