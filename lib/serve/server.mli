(** The campaign daemon: a multi-client service over the store.

    [run config] opens the campaign store as its single writer, listens
    on a Unix-domain socket (and optionally a loopback TCP port), and
    serves the {!Proto} protocol to any number of concurrent clients:

    - {e warm hits} — cells whose key is already in the store — are
      answered instantly at submit time, without touching the queue;
    - {e misses} are deduplicated against identical cells already queued
      or running (across all clients: the second submitter joins the
      first's cell as a waiter and both receive the one result), then
      queued and executed one cell at a time, each campaign fanning its
      iterations over [jobs] worker domains;
    - {e fairness}: the next cell to run is picked from the eligible
      client with the highest queued priority, ties broken
      least-recently-served, FIFO within a client — one client's huge
      grid cannot starve another's small one;
    - every computed cell is appended to the store and fsynced before
      its results are delivered, so a SIGKILL loses at most the cell in
      flight and a restarted daemon serves everything already computed
      as warm hits;
    - results stream back incrementally as cells finish; [Watch]
      subscribers additionally receive [Progress] events.

    The event loop is single-threaded: socket I/O and cell execution
    interleave in one domain (the store handle never leaves it — the
    same single-domain discipline {!Mcm_campaign.Sched} enforces), with
    worker domains doing compute only. A client that disconnects takes
    its interest with it: its waiters are dropped, and a queued cell
    nobody waits for anymore is cancelled instead of executed.

    Admin lifecycle ({!Proto.client_msg}): [Report] and [Queue] inspect
    the service, [Drain] stops admissions while finishing queued work,
    [Shutdown] (or SIGTERM/SIGINT) flushes the store, farewells every
    client and returns from [run]. *)

type config = {
  store_dir : string;  (** campaign store directory (created if needed) *)
  socket_path : string;  (** Unix-domain socket path *)
  port : int option;  (** also listen on 127.0.0.1:port *)
  jobs : int;  (** worker domains per campaign *)
  verbose : bool;  (** per-event logging on stderr *)
}

type summary = {
  served : int;  (** results delivered from the store (warm hits) *)
  computed : int;  (** cells executed by this daemon *)
  joined : int;  (** submissions deduplicated onto in-flight cells *)
  sessions : int;  (** client connections accepted *)
}

val run : ?on_ready:(unit -> unit) -> config -> summary
(** Serve until [Shutdown]/SIGTERM/SIGINT. [on_ready] fires once the
    sockets are bound and listening (before the first accept). Raises
    [Failure] if the socket path is in use by a live daemon or the store
    writer lock is held. *)
