(** The campaign service wire protocol.

    Line-delimited JSON (JSONL): every message is one compact JSON
    object followed by ['\n'], written with {!Mcm_util.Jsonw} and parsed
    with {!Mcm_util.Jsonp} — the same codecs the store uses, so the
    protocol inherits their escaping rules (control characters as
    [\uXXXX], non-finite floats as the strings ["nan"]/["inf"]/["-inf"])
    and their round-trip stability: [to_line (of_line l) = l] for every
    line this module emits.

    Clients speak {!client_msg}; the daemon answers with {!server_msg}
    events. A session opens with [Hello]/[Welcome], whose protocol and
    {!Mcm_campaign.Key.code_version} fields let a client refuse a daemon
    it cannot trust (a key-version mismatch means the daemon's cache
    keys are computed differently — results would be valid but never
    shared).

    A {!cell} is a campaign-cell descriptor: unlike
    {!Mcm_testenv.Request.to_json} (whose test serialization is a
    one-way content blob), it names the test (suite/library name, or an
    inline litmus source for tests the daemon has never seen) so the
    daemon can reconstruct the full {!Mcm_testenv.Request.t} — and
    therefore the store key — server-side. *)

val protocol_version : int
(** Bumped on any wire-incompatible change. *)

(** {2 Campaign-cell descriptors} *)

type test_ref =
  | Name of string  (** resolved against the generated suite, then the classic library *)
  | Source of string  (** inline textual litmus source ({!Mcm_litmus.Parse}) *)

type cell = {
  c_test : test_ref;
  c_device : string;  (** device profile short name (nvidia|amd|intel|m1) *)
  c_bugs : bool;  (** inject the profile's paper bug *)
  c_env : Mcm_testenv.Params.t;
  c_iterations : int;
  c_seed : int;
  c_engine : Mcm_testenv.Request.engine;
}

(** {2 Messages} *)

type client_msg =
  | Hello of { client : string; protocol : int }
  | Submit of { id : string; kind : string; priority : int; cells : cell list }
      (** [id] is the client's correlation id for the whole grid; [kind]
          selects the collector payload shape (["run"], ["histogram"],
          ["outcomes"]); higher [priority] runs first. *)
  | Watch  (** subscribe to [Progress] events *)
  | Report  (** per-test/per-device/per-env service counters *)
  | Queue  (** queued and in-flight cell listing *)
  | Drain  (** stop accepting new submissions; finish what is queued *)
  | Shutdown  (** graceful stop: flush the store, farewell every client *)
  | Ping

type server_msg =
  | Welcome of { protocol : int; key_version : string; server : string }
  | Ack of { id : string; total : int; hits : int; queued : int; joined : int }
      (** submission receipt: of [total] cells, [hits] answered from the
          store instantly, [joined] deduplicated onto identical cells
          already queued or running (possibly by other clients), and
          [queued] newly enqueued. *)
  | Result of { id : string; cell : int; key : string; cached : bool; payload : Mcm_util.Jsonw.t }
      (** one cell's result payload (the store payload, verbatim).
          [cached] is false iff this daemon computed it just now. *)
  | Done of { id : string }  (** every cell of submission [id] has been delivered *)
  | Progress of { queued : int; inflight : int; clients : int; served : int; computed : int }
  | Reply of { op : string; data : Mcm_util.Jsonw.t }  (** [Report]/[Queue] answers *)
  | Pong
  | Bye of { reason : string }
  | Error of { id : string option; message : string }

(** {2 Codecs} *)

val cell_to_json : cell -> Mcm_util.Jsonw.t
val cell_of_json : Mcm_util.Jsonw.t -> (cell, string) result

val client_to_json : client_msg -> Mcm_util.Jsonw.t
val client_of_json : Mcm_util.Jsonw.t -> (client_msg, string) result
val server_to_json : server_msg -> Mcm_util.Jsonw.t
val server_of_json : Mcm_util.Jsonw.t -> (server_msg, string) result

val client_to_line : client_msg -> string
(** Compact JSON plus the trailing newline. *)

val server_to_line : server_msg -> string

val client_of_line : string -> (client_msg, string) result
(** Parses one line (with or without its newline). *)

val server_of_line : string -> (server_msg, string) result

(** {2 Framing}

    Incremental line splitter for the receive side of a socket: feed it
    chunks as they arrive, get back the complete lines they finish. A
    partial trailing line is buffered until its newline arrives. *)
module Frame : sig
  type t

  val create : unit -> t

  val feed : t -> string -> string list
  (** [feed t chunk] returns the complete lines (newline stripped)
      terminated within [chunk], oldest first. *)

  val pending : t -> int
  (** Bytes buffered waiting for a newline. *)
end
