module Jsonw = Mcm_util.Jsonw
module Key = Mcm_campaign.Key
module Store = Mcm_campaign.Store
module Suite = Mcm_core.Suite
module Library = Mcm_litmus.Library
module Litmus = Mcm_litmus.Litmus
module Parse = Mcm_litmus.Parse
module Profile = Mcm_gpu.Profile
module Device = Mcm_gpu.Device
module Bug = Mcm_gpu.Bug
module Params = Mcm_testenv.Params
module Request = Mcm_testenv.Request
module Runner = Mcm_testenv.Runner

type config = {
  store_dir : string;
  socket_path : string;
  port : int option;
  jobs : int;
  verbose : bool;
}

type summary = { served : int; computed : int; joined : int; sessions : int }

(* ------------------------------------------------------------------ *)
(* Connections, submissions, jobs                                       *)

type conn = {
  fd : Unix.file_descr;
  cid : int;
  peer : string;
  frame : Proto.Frame.t;
  out : Buffer.t;  (** bytes queued for this client *)
  mutable out_off : int;  (** bytes of [out] already written *)
  mutable cname : string;
  mutable alive : bool;
  mutable watching : bool;
  mutable pending : job list;  (** jobs this client owns, FIFO (newest last) *)
  mutable last_dispatch : int;  (** global dispatch tick of its last served job *)
}

and submission = { sid : string; sconn : conn; mutable remaining : int }

and waiter = { wsub : submission; wcell : int }

and job = {
  jkey : Key.t;
  jkind : string;
  jrequest : Request.t;
  jlabel : string * string * string;  (** test, device, env labels for inspection *)
  jseq : int;  (** admission order, the FIFO tiebreak *)
  mutable jpriority : int;  (** max over every submission that joined *)
  mutable jowner : conn;
  mutable jwaiters : waiter list;
  mutable jrunning : bool;
}

(* One service: all mutable daemon state, confined to the loop domain. *)
type state = {
  cfg : config;
  store : Store.t;
  listeners : Unix.file_descr list;
  mutable conns : conn list;  (** accept order *)
  jobs : (Key.t, job) Hashtbl.t;  (** queued or running cells, by key *)
  mutable seq : int;
  mutable tick : int;  (** dispatch counter, feeds [last_dispatch] *)
  mutable accepting : bool;  (** false once draining *)
  mutable stopping : bool;
  started : float;
  (* cumulative service counters *)
  mutable n_sessions : int;
  mutable n_submissions : int;
  mutable n_cells : int;
  mutable n_hits : int;
  mutable n_joined : int;
  mutable n_computed : int;
  rows : (string * string * string, row) Hashtbl.t;  (** report ledger *)
}

and row = {
  mutable r_cells : int;
  mutable r_hits : int;
  mutable r_joined : int;
  mutable r_computed : int;
  mutable r_kills : int;
  mutable r_instances : int;
  mutable r_sim_time : float;
}

let log st fmt =
  if st.cfg.verbose then Printf.eprintf ("serve: " ^^ fmt ^^ "\n%!")
  else Printf.ifprintf stderr fmt

(* ------------------------------------------------------------------ *)
(* Cell resolution: wire descriptor -> request + labels                 *)

let env_label (env : Params.t) =
  Printf.sprintf "%s:%dx%d%s"
    (match env.Params.mode with Params.Single -> "site" | Params.Parallel -> "pte")
    env.Params.testing_workgroups env.Params.threads_per_workgroup
    (if env.Params.mem_stress_pct > 0 then Printf.sprintf "+stress%d" env.Params.mem_stress_pct
     else "")

let resolve_cell (c : Proto.cell) =
  let ( let* ) = Result.bind in
  let* test =
    match c.Proto.c_test with
    | Proto.Name name -> (
        match Suite.find name with
        | Some e -> Ok e.Suite.test
        | None -> (
            match Library.find name with
            | Some t -> Ok t
            | None -> Error (Printf.sprintf "unknown test %S" name)))
    | Proto.Source src -> (
        match Parse.parse src with
        | Ok t -> Ok t
        | Error e -> Error (Printf.sprintf "litmus source: %s" e))
  in
  let* profile =
    match Profile.find c.Proto.c_device with
    | Some p -> Ok p
    | None -> Error (Printf.sprintf "unknown device %S" c.Proto.c_device)
  in
  let* device =
    if not c.Proto.c_bugs then Ok (Device.make profile)
    else
      match Bug.paper_bug profile with
      | Some b -> Ok (Device.make ~bugs:[ b ] profile)
      | None -> Error (Printf.sprintf "device %S has no paper bug to inject" c.Proto.c_device)
  in
  let request =
    Request.make ~engine:c.Proto.c_engine ~device ~env:c.Proto.c_env ~test:test
      ~iterations:c.Proto.c_iterations ~seed:c.Proto.c_seed ()
  in
  let dlabel = profile.Profile.short_name ^ if c.Proto.c_bugs then "+bug" else "" in
  Ok (request, (test.Litmus.name, dlabel, env_label c.Proto.c_env))

let kinds = [ "run"; "histogram"; "outcomes" ]

(* Compute one cell eagerly in the loop domain (workers only ever run
   campaign iterations) and return the store payload. The context
   deliberately carries no store: the daemon owns persistence so it can
   fsync before delivering, and so first-write-wins is enforced in one
   place. *)
let compute_payload ~jobs request = function
  | "run" ->
      Runner.encode Runner.Rate
        (Runner.exec Runner.Rate request (Request.context ~domains:jobs ()))
  | "histogram" ->
      Runner.encode Runner.Histogram
        (Runner.exec Runner.Histogram request (Request.context ~domains:jobs ()))
  | "outcomes" ->
      Runner.encode Runner.Outcomes
        (Runner.exec Runner.Outcomes request (Request.context ~domains:jobs ()))
  | kind -> failwith ("Mcm_serve.Server: unvalidated kind " ^ kind)

(* ------------------------------------------------------------------ *)
(* Ledger                                                               *)

let row_of st label =
  match Hashtbl.find_opt st.rows label with
  | Some r -> r
  | None ->
      let r =
        {
          r_cells = 0;
          r_hits = 0;
          r_joined = 0;
          r_computed = 0;
          r_kills = 0;
          r_instances = 0;
          r_sim_time = 0.;
        }
      in
      Hashtbl.add st.rows label r;
      r

(* Outcome summary from a payload: every kind embeds the campaign
   [result] fields at top level (see Runner's codecs). *)
let tally_payload r payload =
  let module Jsonp = Mcm_util.Jsonp in
  let int name = Option.value ~default:0 (Option.bind (Jsonp.member name payload) Jsonp.to_int) in
  let flt name =
    Option.value ~default:0. (Option.bind (Jsonp.member name payload) Jsonp.to_float)
  in
  r.r_kills <- r.r_kills + int "kills";
  r.r_instances <- r.r_instances + int "instances";
  r.r_sim_time <- r.r_sim_time +. flt "simTimeS"

(* ------------------------------------------------------------------ *)
(* Output plumbing                                                      *)

let enqueue conn msg = if conn.alive then Buffer.add_string conn.out (Proto.server_to_line msg)

let queued_jobs st =
  Hashtbl.fold (fun _ j acc -> if j.jrunning then acc else j :: acc) st.jobs []

let progress_event ?(inflight = 0) st =
  Proto.Progress
    {
      queued = List.length (queued_jobs st);
      inflight;
      clients = List.length (List.filter (fun c -> c.alive) st.conns);
      served = st.n_hits;
      computed = st.n_computed;
    }

let broadcast_progress ?inflight st =
  let ev = progress_event ?inflight st in
  List.iter (fun c -> if c.alive && c.watching then enqueue c ev) st.conns

(* ------------------------------------------------------------------ *)
(* Submission handling                                                  *)

let deliver_result st waiter ~key ~cached payload =
  let sub = waiter.wsub in
  enqueue sub.sconn
    (Proto.Result
       { id = sub.sid; cell = waiter.wcell; key = Key.to_hex key; cached; payload });
  sub.remaining <- sub.remaining - 1;
  if sub.remaining = 0 then enqueue sub.sconn (Proto.Done { id = sub.sid });
  ignore st

let handle_submit st conn ~id ~kind ~priority cells =
  if not st.accepting then
    enqueue conn (Proto.Error { id = Some id; message = "daemon is draining; not accepting new submissions" })
  else if not (List.mem kind kinds) then
    enqueue conn
      (Proto.Error
         {
           id = Some id;
           message = Printf.sprintf "unknown kind %S (run|histogram|outcomes)" kind;
         })
  else begin
    (* Resolve every cell before admitting any: a submission is atomic. *)
    let resolved =
      List.mapi
        (fun i c ->
          match resolve_cell c with
          | Ok rc -> Ok rc
          | Error e -> Error (Printf.sprintf "cell %d: %s" i e))
        cells
    in
    match List.find_opt Result.is_error resolved with
    | Some (Error e) -> enqueue conn (Proto.Error { id = Some id; message = e })
    | _ ->
        let resolved = List.map Result.get_ok resolved in
        let total = List.length resolved in
        let sub = { sid = id; sconn = conn; remaining = total } in
        let hits = ref 0 and queued = ref 0 and joined = ref 0 in
        st.n_submissions <- st.n_submissions + 1;
        (* Ack first: the client learns the hit/miss/join split before
           the result stream starts. Results for warm hits follow
           immediately in the same flush. *)
        let actions =
          List.mapi
            (fun i (request, label) ->
              let key = Request.key ~kind request in
              st.n_cells <- st.n_cells + 1;
              let row = row_of st label in
              row.r_cells <- row.r_cells + 1;
              match Store.find st.store key with
              | Some payload ->
                  incr hits;
                  st.n_hits <- st.n_hits + 1;
                  row.r_hits <- row.r_hits + 1;
                  `Hit (i, key, payload)
              | None -> (
                  match Hashtbl.find_opt st.jobs key with
                  | Some job ->
                      incr joined;
                      st.n_joined <- st.n_joined + 1;
                      row.r_joined <- row.r_joined + 1;
                      `Join (i, job)
                  | None ->
                      incr queued;
                      `Queue (i, key, request, label)))
            resolved
        in
        enqueue conn
          (Proto.Ack { id; total; hits = !hits; queued = !queued; joined = !joined });
        List.iter
          (function
            | `Hit (i, key, payload) ->
                deliver_result st { wsub = sub; wcell = i } ~key ~cached:true payload
            | `Join (i, job) ->
                job.jwaiters <- { wsub = sub; wcell = i } :: job.jwaiters;
                if priority > job.jpriority then job.jpriority <- priority
            | `Queue (i, key, request, label) -> (
                (* Two identical cells inside one submission dedup too:
                   the first created the job, later ones join it. *)
                match Hashtbl.find_opt st.jobs key with
                | Some job -> job.jwaiters <- { wsub = sub; wcell = i } :: job.jwaiters
                | None ->
                    st.seq <- st.seq + 1;
                    let job =
                      {
                        jkey = key;
                        jkind = kind;
                        jrequest = request;
                        jlabel = label;
                        jseq = st.seq;
                        jpriority = priority;
                        jowner = conn;
                        jwaiters = [ { wsub = sub; wcell = i } ];
                        jrunning = false;
                      }
                    in
                    Hashtbl.add st.jobs key job;
                    conn.pending <- conn.pending @ [ job ]))
          actions;
        log st "submit %s from %s: %d cell(s), %d hit, %d queued, %d joined" id conn.cname
          total !hits !queued !joined;
        broadcast_progress st
  end

(* ------------------------------------------------------------------ *)
(* Fair scheduling                                                      *)

let job_eligible j = (not j.jrunning) && j.jwaiters <> []

(* Prune cancelled work (every waiter disconnected) from a client's
   FIFO; the jobs table entry goes with it. *)
let prune_pending st conn =
  conn.pending <-
    List.filter
      (fun j ->
        if j.jwaiters = [] && not j.jrunning then begin
          Hashtbl.remove st.jobs j.jkey;
          log st "cancel %s (%s): no waiters left" (Key.to_hex j.jkey)
            (let t, _, _ = j.jlabel in
             t);
          false
        end
        else true)
      conn.pending

(* The next cell to execute: the eligible client with the highest
   queued priority, least-recently-served first among equals; within
   the client, highest priority then admission order. *)
let pick_job st =
  List.iter (fun c -> prune_pending st c) st.conns;
  let best_of conn =
    List.fold_left
      (fun acc j ->
        if not (job_eligible j) then acc
        else
          match acc with
          | Some b when (b.jpriority, -b.jseq) >= (j.jpriority, -j.jseq) -> acc
          | _ -> Some j)
      None conn.pending
  in
  let candidates =
    List.filter_map
      (fun c -> match best_of c with Some j when c.alive -> Some (c, j) | _ -> None)
      st.conns
  in
  match candidates with
  | [] -> None
  | _ ->
      let best =
        List.fold_left
          (fun acc (c, j) ->
            match acc with
            | None -> Some (c, j)
            | Some (bc, bj) ->
                if (j.jpriority, -c.last_dispatch) > (bj.jpriority, -bc.last_dispatch) then
                  Some (c, j)
                else acc)
          None candidates
      in
      best

let execute_job st conn job =
  st.tick <- st.tick + 1;
  conn.last_dispatch <- st.tick;
  job.jrunning <- true;
  broadcast_progress ~inflight:1 st;
  let t, d, e = job.jlabel in
  log st "compute %s: %s on %s in %s (%d waiter(s))" (Key.to_hex job.jkey) t d e
    (List.length job.jwaiters);
  let payload = compute_payload ~jobs:st.cfg.jobs job.jrequest job.jkind in
  (* Durability before delivery: the record is on disk and fsynced
     before any client learns the result, so a crash right after a
     reply never loses a cell a client saw. *)
  Store.add st.store job.jkey payload;
  Store.flush st.store;
  st.n_computed <- st.n_computed + 1;
  let row = row_of st job.jlabel in
  row.r_computed <- row.r_computed + 1;
  tally_payload row payload;
  Hashtbl.remove st.jobs job.jkey;
  job.jrunning <- false;
  conn.pending <- List.filter (fun j -> j != job) conn.pending;
  (* Waiters joined newest-first; deliver in submission order. *)
  List.iter
    (fun w -> deliver_result st w ~key:job.jkey ~cached:false payload)
    (List.rev job.jwaiters);
  job.jwaiters <- [];
  broadcast_progress st

(* ------------------------------------------------------------------ *)
(* Admin replies                                                        *)

let report_json st =
  let rows =
    Hashtbl.fold
      (fun (test, device, env) r acc ->
        Jsonw.Obj
          [
            ("test", Jsonw.String test);
            ("device", Jsonw.String device);
            ("env", Jsonw.String env);
            ("cells", Jsonw.Int r.r_cells);
            ("hits", Jsonw.Int r.r_hits);
            ("joined", Jsonw.Int r.r_joined);
            ("computed", Jsonw.Int r.r_computed);
            ("kills", Jsonw.Int r.r_kills);
            ("instances", Jsonw.Int r.r_instances);
            ("simTimeS", Jsonw.Float r.r_sim_time);
          ]
        :: acc)
      st.rows []
  in
  (* Deterministic order for clients that diff reports. *)
  let key_of = function
    | Jsonw.Obj (("test", Jsonw.String t) :: ("device", Jsonw.String d) :: ("env", Jsonw.String e) :: _)
      ->
        (t, d, e)
    | _ -> ("", "", "")
  in
  let rows = List.sort (fun a b -> compare (key_of a) (key_of b)) rows in
  Jsonw.Obj
    [
      ("uptimeS", Jsonw.Float (Unix.gettimeofday () -. st.started));
      ("store", Jsonw.Obj [ ("dir", Jsonw.String (Store.dir st.store));
                            ("records", Jsonw.Int (Store.count st.store)) ]);
      ( "totals",
        Jsonw.Obj
          [
            ("sessions", Jsonw.Int st.n_sessions);
            ("submissions", Jsonw.Int st.n_submissions);
            ("cells", Jsonw.Int st.n_cells);
            ("hits", Jsonw.Int st.n_hits);
            ("joined", Jsonw.Int st.n_joined);
            ("computed", Jsonw.Int st.n_computed);
          ] );
      (* Process-wide engine counters: schema-image and prefix/workspace
         reuse across everything this daemon computed so far. *)
      ( "engine",
        let e = Runner.engine_stats () in
        Jsonw.Obj
          [
            ("kernelsCompiled", Jsonw.Int e.Runner.kernels_compiled);
            ("schemaReuses", Jsonw.Int e.Runner.schema_reuses);
            ("workspacesBuilt", Jsonw.Int e.Runner.workspaces_built);
            ("workspaceReuses", Jsonw.Int e.Runner.workspace_reuses);
          ] );
      ("rows", Jsonw.List rows);
    ]

let queue_json st =
  let job_json j =
    let t, d, e = j.jlabel in
    Jsonw.Obj
      [
        ("key", Jsonw.String (Key.to_hex j.jkey));
        ("kind", Jsonw.String j.jkind);
        ("test", Jsonw.String t);
        ("device", Jsonw.String d);
        ("env", Jsonw.String e);
        ("priority", Jsonw.Int j.jpriority);
        ("waiters", Jsonw.Int (List.length j.jwaiters));
        ("client", Jsonw.String j.jowner.cname);
      ]
  in
  let queued, inflight =
    Hashtbl.fold
      (fun _ j (q, f) -> if j.jrunning then (q, j :: f) else (j :: q, f))
      st.jobs ([], [])
  in
  let by_seq = List.sort (fun a b -> compare a.jseq b.jseq) in
  Jsonw.Obj
    [
      ("draining", Jsonw.Bool (not st.accepting));
      ("queued", Jsonw.List (List.map job_json (by_seq queued)));
      ("inflight", Jsonw.List (List.map job_json (by_seq inflight)));
    ]

(* ------------------------------------------------------------------ *)
(* Connection lifecycle                                                 *)

let drop_conn st conn reason =
  if conn.alive then begin
    conn.alive <- false;
    log st "disconnect %s (%s)" conn.cname reason;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    (* Its interest goes with it: remove its waiters everywhere; a
       queued job that keeps waiters from other clients is re-homed to
       the first of them so fairness still accounts it to a live
       client. *)
    Hashtbl.iter
      (fun _ j ->
        j.jwaiters <- List.filter (fun w -> w.wsub.sconn != conn) j.jwaiters;
        if j.jowner == conn && j.jwaiters <> [] then begin
          let heir = (List.hd j.jwaiters).wsub.sconn in
          j.jowner <- heir;
          heir.pending <- heir.pending @ [ j ]
        end)
      st.jobs;
    conn.pending <- [];
    List.iter (fun c -> prune_pending st c) st.conns
  end

let handle_msg st conn msg =
  match msg with
  | Proto.Hello { client; protocol } ->
      conn.cname <- (if client = "" then conn.peer else client);
      if protocol <> Proto.protocol_version then begin
        enqueue conn
          (Proto.Error
             {
               id = None;
               message =
                 Printf.sprintf "protocol mismatch: daemon speaks %d, client sent %d"
                   Proto.protocol_version protocol;
             });
        enqueue conn (Proto.Bye { reason = "protocol mismatch" })
      end
      else
        enqueue conn
          (Proto.Welcome
             {
               protocol = Proto.protocol_version;
               key_version = Key.code_version;
               server = "mcmutants";
             })
  | Proto.Submit { id; kind; priority; cells } -> handle_submit st conn ~id ~kind ~priority cells
  | Proto.Watch ->
      conn.watching <- true;
      enqueue conn (progress_event st)
  | Proto.Report -> enqueue conn (Proto.Reply { op = "report"; data = report_json st })
  | Proto.Queue -> enqueue conn (Proto.Reply { op = "queue"; data = queue_json st })
  | Proto.Drain ->
      st.accepting <- false;
      log st "drain requested by %s" conn.cname;
      enqueue conn
        (Proto.Reply
           {
             op = "drain";
             data = Jsonw.Obj [ ("queued", Jsonw.Int (List.length (queued_jobs st))) ];
           })
  | Proto.Shutdown ->
      log st "shutdown requested by %s" conn.cname;
      st.stopping <- true
  | Proto.Ping -> enqueue conn Proto.Pong

let handle_line st conn line =
  if String.trim line <> "" then
    match Proto.client_of_line line with
    | Ok msg -> handle_msg st conn msg
    | Error e -> enqueue conn (Proto.Error { id = None; message = "bad message: " ^ e })

(* ------------------------------------------------------------------ *)
(* Sockets                                                              *)

let listen_unix path =
  (* A leftover socket file from a SIGKILLed daemon would make bind fail
     forever; only a socket that answers is a live daemon. *)
  (if Sys.file_exists path then
     let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
     match Unix.connect probe (Unix.ADDR_UNIX path) with
     | () ->
         Unix.close probe;
         failwith
           (Printf.sprintf
              "Mcm_serve: %s is in use by a live daemon; shut it down or pick another socket"
              path)
     | exception Unix.Unix_error _ ->
         Unix.close probe;
         Sys.remove path);
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let listen_tcp port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  fd

let flush_out st conn =
  let len = Buffer.length conn.out in
  if conn.alive && len > conn.out_off then begin
    let data = Buffer.to_bytes conn.out in
    match Unix.write conn.fd data conn.out_off (len - conn.out_off) with
    | n ->
        conn.out_off <- conn.out_off + n;
        if conn.out_off = len then begin
          Buffer.clear conn.out;
          conn.out_off <- 0
        end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        drop_conn st conn "write failed"
  end

let read_chunk st conn =
  let buf = Bytes.create 65536 in
  match Unix.read conn.fd buf 0 (Bytes.length buf) with
  | 0 -> drop_conn st conn "eof"
  | n ->
      List.iter
        (fun line -> if conn.alive then handle_line st conn line)
        (Proto.Frame.feed conn.frame (Bytes.sub_string buf 0 n))
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> drop_conn st conn "reset"

(* ------------------------------------------------------------------ *)
(* The daemon                                                           *)

let run ?(on_ready = fun () -> ()) cfg =
  let stop_signal = ref false in
  let previous_handlers =
    List.map
      (fun s ->
        (s, Sys.signal s (Sys.Signal_handle (fun _ -> stop_signal := true))))
      [ Sys.sigterm; Sys.sigint ]
  in
  let previous_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let restore_signals () =
    List.iter (fun (s, h) -> Sys.set_signal s h) previous_handlers;
    Sys.set_signal Sys.sigpipe previous_pipe
  in
  let store = Store.open_store cfg.store_dir in
  List.iter (fun w -> Printf.eprintf "serve: store: %s\n%!" w) (Store.warnings store);
  let unix_listener = listen_unix cfg.socket_path in
  let tcp_listener = Option.map listen_tcp cfg.port in
  let listeners = unix_listener :: Option.to_list tcp_listener in
  let st =
    {
      cfg;
      store;
      listeners;
      conns = [];
      jobs = Hashtbl.create 64;
      seq = 0;
      tick = 0;
      accepting = true;
      stopping = false;
      started = Unix.gettimeofday ();
      n_sessions = 0;
      n_submissions = 0;
      n_cells = 0;
      n_hits = 0;
      n_joined = 0;
      n_computed = 0;
      rows = Hashtbl.create 64;
    }
  in
  let next_cid = ref 0 in
  let accept_on listener =
    match Unix.accept ~cloexec:true listener with
    | fd, addr ->
        Unix.set_nonblock fd;
        incr next_cid;
        st.n_sessions <- st.n_sessions + 1;
        let peer =
          match addr with
          | Unix.ADDR_UNIX _ -> Printf.sprintf "unix#%d" !next_cid
          | Unix.ADDR_INET (ip, port) ->
              Printf.sprintf "%s:%d" (Unix.string_of_inet_addr ip) port
        in
        let conn =
          {
            fd;
            cid = !next_cid;
            peer;
            frame = Proto.Frame.create ();
            out = Buffer.create 1024;
            out_off = 0;
            cname = peer;
            alive = true;
            watching = false;
            pending = [];
            last_dispatch = 0;
          }
        in
        st.conns <- st.conns @ [ conn ];
        log st "accept %s" peer
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  in
  Printf.eprintf "serve: listening on %s%s (store %s, %d job(s))\n%!" cfg.socket_path
    (match cfg.port with Some p -> Printf.sprintf " and 127.0.0.1:%d" p | None -> "")
    cfg.store_dir cfg.jobs;
  on_ready ();
  let cleanup_dead () =
    st.conns <- List.filter (fun c -> c.alive || Buffer.length c.out > 0) st.conns
  in
  (try
     while not st.stopping do
       if !stop_signal then st.stopping <- true
       else begin
         cleanup_dead ();
         let client_fds = List.filter_map (fun c -> if c.alive then Some c.fd else None) st.conns in
         let write_fds =
           List.filter_map
             (fun c -> if c.alive && Buffer.length c.out > c.out_off then Some c.fd else None)
             st.conns
         in
         let work_pending = pick_job st <> None in
         let timeout = if work_pending then 0. else 0.5 in
         let readable, writable, _ =
           try Unix.select (st.listeners @ client_fds) write_fds [] timeout
           with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
         in
         List.iter (fun l -> if List.mem l readable then accept_on l) st.listeners;
         List.iter
           (fun c -> if c.alive && List.mem c.fd readable then read_chunk st c)
           st.conns;
         List.iter
           (fun c -> if c.alive && List.mem c.fd writable then flush_out st c)
           st.conns;
         (* One cell per iteration: compute interleaves with I/O so a
            submission arriving mid-grid can still join in-flight
            cells. *)
         (match pick_job st with
         | Some (conn, job) -> execute_job st conn job
         | None -> ());
         List.iter (fun c -> flush_out st c) st.conns
       end
     done
   with e ->
     restore_signals ();
     (try Store.close store with _ -> ());
     List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) st.listeners;
     (try Sys.remove cfg.socket_path with Sys_error _ -> ());
     raise e);
  (* Graceful exit: fail the waiters of anything still queued, farewell
     every client, push the last bytes out, release the store. *)
  Hashtbl.iter
    (fun _ j ->
      List.iter
        (fun w ->
          enqueue w.wsub.sconn
            (Proto.Error { id = Some w.wsub.sid; message = "daemon shut down before this cell ran" }))
        j.jwaiters)
    st.jobs;
  List.iter (fun c -> enqueue c (Proto.Bye { reason = "shutdown" })) st.conns;
  List.iter
    (fun c ->
      (* Final flush is best-effort but persistent: give each client one
         blocking-ish drain so Bye/Error actually leave the machine. *)
      (try Unix.clear_nonblock c.fd with Unix.Unix_error _ -> ());
      flush_out st c;
      (try Unix.close c.fd with Unix.Unix_error _ -> ());
      c.alive <- false)
    (List.filter (fun c -> c.alive) st.conns);
  Store.close store;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) st.listeners;
  (try Sys.remove cfg.socket_path with Sys_error _ -> ());
  restore_signals ();
  log st "shutdown: %d session(s), %d hit(s), %d computed, %d joined" st.n_sessions st.n_hits
    st.n_computed st.n_joined;
  { served = st.n_hits; computed = st.n_computed; joined = st.n_joined; sessions = st.n_sessions }
