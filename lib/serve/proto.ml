module Jsonw = Mcm_util.Jsonw
module Jsonp = Mcm_util.Jsonp
module Params = Mcm_testenv.Params
module Request = Mcm_testenv.Request

let protocol_version = 1

type test_ref = Name of string | Source of string

type cell = {
  c_test : test_ref;
  c_device : string;
  c_bugs : bool;
  c_env : Params.t;
  c_iterations : int;
  c_seed : int;
  c_engine : Request.engine;
}

type client_msg =
  | Hello of { client : string; protocol : int }
  | Submit of { id : string; kind : string; priority : int; cells : cell list }
  | Watch
  | Report
  | Queue
  | Drain
  | Shutdown
  | Ping

type server_msg =
  | Welcome of { protocol : int; key_version : string; server : string }
  | Ack of { id : string; total : int; hits : int; queued : int; joined : int }
  | Result of { id : string; cell : int; key : string; cached : bool; payload : Jsonw.t }
  | Done of { id : string }
  | Progress of { queued : int; inflight : int; clients : int; served : int; computed : int }
  | Reply of { op : string; data : Jsonw.t }
  | Pong
  | Bye of { reason : string }
  | Error of { id : string option; message : string }

(* ------------------------------------------------------------------ *)
(* Field accessors over parsed JSON                                     *)

let ( let* ) = Result.bind

let str_field name v =
  match Option.bind (Jsonp.member name v) Jsonp.to_string_opt with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing or non-string %S" name)

let int_field name v =
  match Option.bind (Jsonp.member name v) Jsonp.to_int with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "missing or non-integer %S" name)

let bool_field name v =
  match Jsonp.member name v with
  | Some (Jsonw.Bool b) -> Ok b
  | _ -> Error (Printf.sprintf "missing or non-boolean %S" name)

let json_field name v =
  match Jsonp.member name v with
  | Some j -> Ok j
  | None -> Error (Printf.sprintf "missing field %S" name)

(* ------------------------------------------------------------------ *)
(* Cells                                                                *)

let cell_to_json c =
  let test =
    match c.c_test with
    | Name n -> Jsonw.Obj [ ("name", Jsonw.String n) ]
    | Source s -> Jsonw.Obj [ ("litmus", Jsonw.String s) ]
  in
  Jsonw.Obj
    [
      ("test", test);
      ("device", Jsonw.String c.c_device);
      ("bugs", Jsonw.Bool c.c_bugs);
      ("env", Params.to_json c.c_env);
      ("iterations", Jsonw.Int c.c_iterations);
      ("seed", Jsonw.Int c.c_seed);
      ("engine", Jsonw.String (Request.engine_name c.c_engine));
    ]

let cell_of_json v =
  let* test_obj = json_field "test" v in
  let* c_test =
    match
      ( Option.bind (Jsonp.member "name" test_obj) Jsonp.to_string_opt,
        Option.bind (Jsonp.member "litmus" test_obj) Jsonp.to_string_opt )
    with
    | Some n, _ -> Ok (Name n)
    | None, Some s -> Ok (Source s)
    | None, None -> Error "cell \"test\" needs a \"name\" or \"litmus\" field"
  in
  let* c_device = str_field "device" v in
  let* c_bugs = bool_field "bugs" v in
  let* env_json = json_field "env" v in
  let* c_env = Params.of_json env_json in
  let* c_iterations = int_field "iterations" v in
  let* c_seed = int_field "seed" v in
  let* engine_name = str_field "engine" v in
  let* c_engine =
    match Request.engine_of_name engine_name with
    | Some e -> Ok e
    | None -> Error (Printf.sprintf "unknown engine %S" engine_name)
  in
  Ok { c_test; c_device; c_bugs; c_env; c_iterations; c_seed; c_engine }

(* ------------------------------------------------------------------ *)
(* Client messages                                                      *)

let client_to_json = function
  | Hello { client; protocol } ->
      Jsonw.Obj
        [
          ("op", Jsonw.String "hello");
          ("client", Jsonw.String client);
          ("protocol", Jsonw.Int protocol);
        ]
  | Submit { id; kind; priority; cells } ->
      Jsonw.Obj
        [
          ("op", Jsonw.String "submit");
          ("id", Jsonw.String id);
          ("kind", Jsonw.String kind);
          ("priority", Jsonw.Int priority);
          ("cells", Jsonw.List (List.map cell_to_json cells));
        ]
  | Watch -> Jsonw.Obj [ ("op", Jsonw.String "watch") ]
  | Report -> Jsonw.Obj [ ("op", Jsonw.String "report") ]
  | Queue -> Jsonw.Obj [ ("op", Jsonw.String "queue") ]
  | Drain -> Jsonw.Obj [ ("op", Jsonw.String "drain") ]
  | Shutdown -> Jsonw.Obj [ ("op", Jsonw.String "shutdown") ]
  | Ping -> Jsonw.Obj [ ("op", Jsonw.String "ping") ]

let client_of_json v =
  let* op = str_field "op" v in
  match op with
  | "hello" ->
      let* client = str_field "client" v in
      let* protocol = int_field "protocol" v in
      Ok (Hello { client; protocol })
  | "submit" ->
      let* id = str_field "id" v in
      let* kind = str_field "kind" v in
      let* priority = int_field "priority" v in
      let* cells_json = json_field "cells" v in
      let rec decode_all i acc = function
        | [] -> Ok (List.rev acc)
        | c :: rest -> (
            match cell_of_json c with
            | Ok cell -> decode_all (i + 1) (cell :: acc) rest
            | Error e -> Error (Printf.sprintf "cell %d: %s" i e))
      in
      let* cells = decode_all 0 [] (Jsonp.to_list cells_json) in
      Ok (Submit { id; kind; priority; cells })
  | "watch" -> Ok Watch
  | "report" -> Ok Report
  | "queue" -> Ok Queue
  | "drain" -> Ok Drain
  | "shutdown" -> Ok Shutdown
  | "ping" -> Ok Ping
  | other -> Error (Printf.sprintf "unknown op %S" other)

(* ------------------------------------------------------------------ *)
(* Server messages                                                      *)

let server_to_json = function
  | Welcome { protocol; key_version; server } ->
      Jsonw.Obj
        [
          ("ev", Jsonw.String "welcome");
          ("protocol", Jsonw.Int protocol);
          ("keyVersion", Jsonw.String key_version);
          ("server", Jsonw.String server);
        ]
  | Ack { id; total; hits; queued; joined } ->
      Jsonw.Obj
        [
          ("ev", Jsonw.String "ack");
          ("id", Jsonw.String id);
          ("total", Jsonw.Int total);
          ("hits", Jsonw.Int hits);
          ("queued", Jsonw.Int queued);
          ("joined", Jsonw.Int joined);
        ]
  | Result { id; cell; key; cached; payload } ->
      Jsonw.Obj
        [
          ("ev", Jsonw.String "result");
          ("id", Jsonw.String id);
          ("cell", Jsonw.Int cell);
          ("key", Jsonw.String key);
          ("cached", Jsonw.Bool cached);
          ("payload", payload);
        ]
  | Done { id } -> Jsonw.Obj [ ("ev", Jsonw.String "done"); ("id", Jsonw.String id) ]
  | Progress { queued; inflight; clients; served; computed } ->
      Jsonw.Obj
        [
          ("ev", Jsonw.String "progress");
          ("queued", Jsonw.Int queued);
          ("inflight", Jsonw.Int inflight);
          ("clients", Jsonw.Int clients);
          ("served", Jsonw.Int served);
          ("computed", Jsonw.Int computed);
        ]
  | Reply { op; data } ->
      Jsonw.Obj [ ("ev", Jsonw.String "reply"); ("op", Jsonw.String op); ("data", data) ]
  | Pong -> Jsonw.Obj [ ("ev", Jsonw.String "pong") ]
  | Bye { reason } -> Jsonw.Obj [ ("ev", Jsonw.String "bye"); ("reason", Jsonw.String reason) ]
  | Error { id; message } ->
      Jsonw.Obj
        (("ev", Jsonw.String "error")
        :: (match id with Some id -> [ ("id", Jsonw.String id) ] | None -> [])
        @ [ ("message", Jsonw.String message) ])

let server_of_json v =
  let* ev = str_field "ev" v in
  match ev with
  | "welcome" ->
      let* protocol = int_field "protocol" v in
      let* key_version = str_field "keyVersion" v in
      let* server = str_field "server" v in
      Ok (Welcome { protocol; key_version; server })
  | "ack" ->
      let* id = str_field "id" v in
      let* total = int_field "total" v in
      let* hits = int_field "hits" v in
      let* queued = int_field "queued" v in
      let* joined = int_field "joined" v in
      Ok (Ack { id; total; hits; queued; joined })
  | "result" ->
      let* id = str_field "id" v in
      let* cell = int_field "cell" v in
      let* key = str_field "key" v in
      let* cached = bool_field "cached" v in
      let* payload = json_field "payload" v in
      Ok (Result { id; cell; key; cached; payload })
  | "done" ->
      let* id = str_field "id" v in
      Ok (Done { id })
  | "progress" ->
      let* queued = int_field "queued" v in
      let* inflight = int_field "inflight" v in
      let* clients = int_field "clients" v in
      let* served = int_field "served" v in
      let* computed = int_field "computed" v in
      Ok (Progress { queued; inflight; clients; served; computed })
  | "reply" ->
      let* op = str_field "op" v in
      let* data = json_field "data" v in
      Ok (Reply { op; data })
  | "pong" -> Ok Pong
  | "bye" ->
      let* reason = str_field "reason" v in
      Ok (Bye { reason })
  | "error" ->
      let id = Option.bind (Jsonp.member "id" v) Jsonp.to_string_opt in
      let* message = str_field "message" v in
      Ok (Error { id; message })
  | other -> Error (Printf.sprintf "unknown ev %S" other)

(* ------------------------------------------------------------------ *)
(* Lines and framing                                                    *)

let client_to_line m = Jsonw.to_string (client_to_json m) ^ "\n"
let server_to_line m = Jsonw.to_string (server_to_json m) ^ "\n"

let strip_newline line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\n' then String.sub line 0 (n - 1) else line

let of_line decode line =
  match Jsonp.parse (strip_newline line) with Error e -> Result.Error e | Ok v -> decode v

let client_of_line line = of_line client_of_json line
let server_of_line line = of_line server_of_json line

module Frame = struct
  type t = { mutable buf : Buffer.t }

  let create () = { buf = Buffer.create 256 }

  let feed t chunk =
    Buffer.add_string t.buf chunk;
    let content = Buffer.contents t.buf in
    let lines = ref [] in
    let pos = ref 0 in
    let len = String.length content in
    let continue = ref true in
    while !continue do
      match String.index_from_opt content !pos '\n' with
      | Some i when i < len ->
          lines := String.sub content !pos (i - !pos) :: !lines;
          pos := i + 1
      | _ -> continue := false
    done;
    if !pos > 0 then begin
      let rest = String.sub content !pos (len - !pos) in
      Buffer.clear t.buf;
      Buffer.add_string t.buf rest
    end;
    List.rev !lines

  let pending t = Buffer.length t.buf
end
