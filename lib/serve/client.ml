module Jsonw = Mcm_util.Jsonw
module Key = Mcm_campaign.Key

type t = {
  fd : Unix.file_descr;
  frame : Proto.Frame.t;
  mutable queue : string list;  (** complete lines read but not yet consumed *)
  mutable proto : int;
  mutable keyv : string;
  mutable closed : bool;
}

let protocol t = t.proto
let key_version t = t.keyv

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let send t msg =
  let line = Proto.client_to_line msg in
  let len = String.length line in
  let sent = ref 0 in
  while !sent < len do
    sent := !sent + Unix.write_substring t.fd line !sent (len - !sent)
  done

let recv t =
  (* Serve queued lines first: one read can deliver several messages
     (ack + warm-hit results + done arrive in a single flush) and every
     one of them must reach the caller, in order. *)
  let rec next () =
    match t.queue with
    | line :: rest -> (
        t.queue <- rest;
        match Proto.server_of_line line with
        | Ok msg -> Ok msg
        | Error e -> Error ("bad server message: " ^ e))
    | [] -> (
        let buf = Bytes.create 65536 in
        match Unix.read t.fd buf 0 (Bytes.length buf) with
        | 0 -> Error "connection closed by daemon"
        | n ->
            t.queue <- Proto.Frame.feed t.frame (Bytes.sub_string buf 0 n);
            next ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            Error "timed out waiting for the daemon"
        | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))
  in
  next ()

let handshake ?(name = "mcmutants") ?(check_key = true) t =
  send t (Proto.Hello { client = name; protocol = Proto.protocol_version });
  match recv t with
  | Ok (Proto.Welcome { protocol; key_version; server = _ }) ->
      t.proto <- protocol;
      t.keyv <- key_version;
      if check_key && key_version <> Key.code_version then
        Error
          (Printf.sprintf
             "daemon key code version %s differs from this binary's %s: cached results would \
              not be shared (upgrade one side, or pass --no-check-key)"
             key_version Key.code_version)
      else Ok t
  | Ok (Proto.Error { message; _ }) -> Error ("daemon refused the handshake: " ^ message)
  | Ok _ -> Error "daemon sent an unexpected first message"
  | Error e -> Error ("handshake failed: " ^ e)

let dial ?(retry_for = 5.) ?(timeout = 120.) make_socket addr =
  let deadline = Unix.gettimeofday () +. retry_for in
  let rec attempt () =
    let fd = make_socket () in
    match Unix.connect fd addr with
    | () ->
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
        Ok fd
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when Unix.gettimeofday () < deadline ->
        Unix.close fd;
        Unix.sleepf 0.05;
        attempt ()
    | exception Unix.Unix_error (e, _, _) ->
        Unix.close fd;
        Error (Unix.error_message e)
  in
  attempt ()

let connect ?name ?retry_for ?timeout ?check_key path =
  match
    dial ?retry_for ?timeout
      (fun () -> Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0)
      (Unix.ADDR_UNIX path)
  with
  | Error e -> Error (Printf.sprintf "%s: %s" path e)
  | Ok fd ->
      let t = { fd; frame = Proto.Frame.create (); queue = []; proto = 0; keyv = ""; closed = false } in
      let r = handshake ?name ?check_key t in
      (match r with Error _ -> close t | Ok _ -> ());
      r

let connect_tcp ?name ?retry_for ?timeout ?check_key ~host ~port () =
  match
    let addr =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
        | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
        | _ -> failwith ("cannot resolve " ^ host))
    in
    dial ?retry_for ?timeout
      (fun () -> Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0)
      (Unix.ADDR_INET (addr, port))
  with
  | Error e -> Error (Printf.sprintf "%s:%d: %s" host port e)
  | Ok fd ->
      let t = { fd; frame = Proto.Frame.create (); queue = []; proto = 0; keyv = ""; closed = false } in
      let r = handshake ?name ?check_key t in
      (match r with Error _ -> close t | Ok _ -> ());
      r
  | exception Failure e -> Error e

type cell_result = { key : string; cached : bool; payload : Jsonw.t }

type grid_result = {
  total : int;
  hits : int;
  queued : int;
  joined : int;
  cells : cell_result array;
}

let submission_counter = ref 0

let submit ?(priority = 0) ?(on_event = fun _ -> ()) ~kind t cells =
  incr submission_counter;
  let id = Printf.sprintf "sub-%d-%d" (Unix.getpid ()) !submission_counter in
  send t (Proto.Submit { id; kind; priority; cells });
  let n = List.length cells in
  let results = Array.make n None in
  let ack = ref None in
  let rec wait () =
    match recv t with
    | Error e -> Error e
    | Ok msg -> (
        on_event msg;
        match msg with
        | Proto.Ack { id = aid; total; hits; queued; joined } when aid = id ->
            ack := Some (total, hits, queued, joined);
            wait ()
        | Proto.Result { id = rid; cell; key; cached; payload } when rid = id ->
            if cell >= 0 && cell < n then results.(cell) <- Some { key; cached; payload };
            wait ()
        | Proto.Done { id = did } when did = id -> (
            match !ack with
            | None -> Error "daemon completed the grid without acknowledging it"
            | Some (total, hits, queued, joined) ->
                if Array.exists Option.is_none results then
                  Error "daemon reported done with cells missing"
                else
                  Ok { total; hits; queued; joined; cells = Array.map Option.get results })
        | Proto.Error { id = Some eid; message } when eid = id -> Error message
        | Proto.Error { id = None; message } -> Error message
        | Proto.Bye { reason } -> Error ("daemon said goodbye: " ^ reason)
        | _ -> wait () (* progress and unrelated events stream through *))
  in
  wait ()
