(** A blocking client for the campaign daemon.

    Wraps one socket session: connect (with retries while the daemon is
    still starting), the [Hello]/[Welcome] handshake — refusing a daemon
    whose protocol or {!Mcm_campaign.Key.code_version} differs, so a
    client never trusts cache keys computed under different semantics —
    and line-framed send/receive of {!Proto} messages. {!submit} drives
    a whole grid: send, stream, collect.

    Used by the [mcmutants submit]/[watch]/[report]/[admin] subcommands,
    the serve tests and the serve benchmark. *)

type t

val connect :
  ?name:string ->
  ?retry_for:float ->
  ?timeout:float ->
  ?check_key:bool ->
  string ->
  (t, string) result
(** [connect path] dials the Unix-domain socket at [path] and performs
    the handshake. [retry_for] keeps retrying a refused/absent socket
    for that many seconds (default 5 — covers a daemon that is still
    binding); [timeout] bounds every receive (default 120 s);
    [check_key] (default true) fails the handshake if the daemon's key
    code version differs from this binary's. *)

val connect_tcp :
  ?name:string ->
  ?retry_for:float ->
  ?timeout:float ->
  ?check_key:bool ->
  host:string ->
  port:int ->
  unit ->
  (t, string) result

val protocol : t -> int
val key_version : t -> string
(** The daemon's handshake answers. *)

val send : t -> Proto.client_msg -> unit
(** Write one message (blocking). *)

val recv : t -> (Proto.server_msg, string) result
(** Read the next message (blocking, up to the connect [timeout]).
    [Error] on EOF, timeout or an unparseable line. *)

val close : t -> unit

(** {2 Grid submission} *)

type cell_result = {
  key : string;  (** 16-hex store key *)
  cached : bool;  (** served from the store (true) or computed now *)
  payload : Mcm_util.Jsonw.t;  (** the store payload, verbatim *)
}

type grid_result = {
  total : int;
  hits : int;  (** warm hits at submit time *)
  queued : int;  (** cells this submission put in the queue *)
  joined : int;  (** cells deduplicated onto in-flight work *)
  cells : cell_result array;  (** indexed like the submitted list *)
}

val submit :
  ?priority:int ->
  ?on_event:(Proto.server_msg -> unit) ->
  kind:string ->
  t ->
  Proto.cell list ->
  (grid_result, string) result
(** [submit ~kind t cells] sends the grid and blocks until every cell's
    result arrived ([Done]), returning the acknowledgement split and the
    per-cell payloads. [on_event] observes every raw event as it
    streams. [Error] on a daemon-side rejection, disconnect, or
    timeout. *)
