(** A crash-safe sweep checkpoint log.

    The {!Store} memoizes individual cells; the journal records which
    {e sweep} those cells belong to and how far it got, so a killed
    campaign can be resumed knowingly: the header names the sweep (by
    its configuration {!Key.t}) and its cell count, progress records
    mark completed-cell counts after every flushed shard, and a final
    record marks completion. Every append is fsynced — journal writes
    are rare (one per shard), and losing one must not be possible after
    {!Sched} has reported the shard durable.

    Recovery mirrors the store: a torn tail (partial record without its
    newline) is ignored and truncated on the next {!start}, and a
    malformed complete line is skipped. Resuming replays nothing — the
    resumed sweep re-plans against the store, where every cell of every
    journaled shard is already present, so tallies are bit-identical to
    an uninterrupted run. *)

type t

type header = {
  sweep : Key.t;  (** content hash of the sweep configuration *)
  cells : int;  (** total cells in the sweep grid *)
}

val open_ : string -> t
(** [open_ path] loads the journal at [path] (absent files load empty),
    applying the recovery rules above. *)

val path : t -> string

val header : t -> header option
(** The sweep this journal belongs to, if any run was started. *)

val progress : t -> int
(** Highest completed-cell count on record (0 on a fresh journal). *)

val finished : t -> bool
(** Whether a completion record was written. *)

val start : t -> sweep:Key.t -> cells:int -> [ `Fresh | `Resumed of int ]
(** [start t ~sweep ~cells] begins (or resumes) a sweep. If the loaded
    header matches [sweep] and [cells] and the sweep is unfinished, the
    journal is kept and [`Resumed progress] is returned; otherwise the
    file is truncated, a fresh header is written, and [`Fresh] is
    returned. *)

val record : t -> done_:int -> unit
(** Append (fsynced) a progress record: [done_] cells are durably in
    the store. Call only after the corresponding {!Store.flush}. *)

val finish : t -> unit
(** Append (fsynced) the completion record. *)

val close : t -> unit
val with_journal : string -> (t -> 'a) -> 'a
