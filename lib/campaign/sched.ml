module Jsonw = Mcm_util.Jsonw
module Pool = Mcm_util.Pool

type stats = { total : int; hits : int; misses : int; decode_failures : int }

let pp_stats fmt s =
  Format.fprintf fmt "%d cell(s): %d cached, %d computed%s" s.total s.hits s.misses
    (if s.decode_failures > 0 then
       Printf.sprintf " (%d cached payload(s) failed to decode and were recomputed)"
         s.decode_failures
     else "")

let default_shard = 32

let plan store ~key ~n =
  Array.init n (fun i ->
      match Store.find store (key i) with Some v -> `Hit v | None -> `Miss)

let run ?domains ?pool ?shard ?chunk ?journal ?family ~store ~key ~encode ~decode ~f ~n () =
  let shard = max 1 (Option.value shard ~default:default_shard) in
  let keys = Array.init n key in
  let cached = Array.map (Store.find store) keys in
  (* Decode hits up front, in the caller: a stale or corrupt payload
     demotes its cell to a miss (recomputed, not re-stored). *)
  let decode_failures = ref 0 in
  let decoded =
    Array.map
      (fun payload ->
        match payload with
        | None -> None
        | Some v -> (
            match decode v with
            | Ok b -> Some b
            | Error _ ->
                incr decode_failures;
                None))
      cached
  in
  let miss_idx =
    Array.of_seq
      (Seq.filter (fun i -> Option.is_none decoded.(i)) (Seq.init n Fun.id))
  in
  (* Group misses by schema family so consecutive shard slots — and
     hence, with contiguous chunking, each pool domain's slice — share
     compiled images, memoized prefixes and warm workspaces. The sort is
     stable, so cells within a family keep grid order; results still
     land at their original index and the stats are unchanged, making
     grouping invisible except in wall clock. *)
  (match family with
  | None -> ()
  | Some fam ->
      let keyed = Array.map (fun i -> (fam i, i)) miss_idx in
      Array.stable_sort (fun (a, _) (b, _) -> compare (a : int) b) keyed;
      Array.iteri (fun j (_, i) -> miss_idx.(j) <- i) keyed);
  let misses = Array.length miss_idx in
  let hits = n - misses in
  (match journal with
  | None -> ()
  | Some (j, sweep) -> ignore (Journal.start j ~sweep ~cells:n));
  let results : 'b option array = Array.copy decoded in
  if Array.length miss_idx > 0 then begin
    let use_pool k =
      match pool with
      | Some p -> k p
      | None -> Pool.with_pool ?domains k
    in
    use_pool (fun p ->
        let m = Array.length miss_idx in
        let done_ = ref (n - m) in
        let off = ref 0 in
        while !off < m do
          let count = min shard (m - !off) in
          let base = !off in
          (* Workers compute only; the store and journal writes below
             happen in this (the submitting) domain. *)
          let fresh = Pool.map_array ?chunk p ~n:count ~f:(fun j -> f miss_idx.(base + j)) in
          for j = 0 to count - 1 do
            let i = miss_idx.(base + j) in
            results.(i) <- Some fresh.(j);
            (* Only store cells that were absent — a decode failure's key
               is already on disk and first-write-wins must hold. *)
            if Option.is_none cached.(i) then Store.add store keys.(i) (encode fresh.(j))
          done;
          Store.flush store;
          done_ := !done_ + count;
          (match journal with
          | None -> ()
          | Some (j, _) -> Journal.record j ~done_:!done_);
          off := !off + count
        done)
  end;
  (match journal with
  | None -> ()
  | Some (j, _) ->
      (* Every cell is durable by now (hits were already on disk, misses
         were flushed per shard) — record full progress even on an
         all-hit run where no shard wrote, then mark the sweep done. *)
      Journal.record j ~done_:n;
      Journal.finish j);
  let out =
    Array.map
      (function
        | Some b -> b
        | None -> assert false (* every miss was computed above *))
      results
  in
  (out, { total = n; hits; misses; decode_failures = !decode_failures })
